# Convenience targets; scripts/check.sh is the source of truth for the
# pre-PR gate.

.PHONY: build test lint lint-report check check-short cover exps bench-engine bench-live bench-proto bench-cluster bench-replay bench-snap bench-stampede

build:
	go build ./...

test:
	go test ./...

# rwplint: the repo's determinism/correctness static analysis. Also
# enforced inside `make test` by internal/analysis/selfcheck_test.go;
# run it directly for per-finding output.
lint:
	go run ./cmd/rwplint ./...

# Per-rule finding/suppression counts, recorded in
# results/lint_report.txt so suppression drift shows up in review
# diffs. Fails like `make lint` if any finding is unsuppressed.
lint-report:
	mkdir -p results
	go run ./cmd/rwplint -report ./... | tee results/lint_report.txt

# The pre-PR gate: build, vet, rwplint, tests, race tests.
check:
	scripts/check.sh

# Same gate without the -race pass (for quick iteration).
check-short:
	scripts/check.sh -short

# Per-package statement coverage, recorded in results/coverage.txt so
# coverage drift shows up in review diffs.
cover:
	mkdir -p results
	go test -cover ./... | tee results/coverage.txt

# Regenerate the paper's tables at CI scale.
exps:
	go run ./cmd/rwpexp -scale quick

# Measure sequential-vs-parallel wall clock of the experiment engine;
# records results/engine_speedup.txt.
bench-engine:
	scripts/bench_engine.sh

# Measure the live KV cache's RWP-vs-LRU read-hit rate per workload
# profile; records results/live_hitrate.txt and fails if RWP's geomean
# drops below LRU.
bench-live:
	scripts/bench_live.sh

# Measure the binary protocol against HTTP on the same loadgen stream;
# records results/proto_bench.txt and fails if the batched pipelined
# binary path falls below 2x HTTP throughput.
bench-proto:
	scripts/bench_proto.sh

# Run the deterministic cluster bench (single node vs static 3-node vs
# shard-manager replication); records results/cluster_bench.txt and
# fails if the managed leg models below the static leg.
bench-cluster:
	scripts/bench_cluster.sh

# Replay one recorded request journal through every transport (direct,
# HTTP, binary protocol, 3-node cluster), timing each leg; records
# results/replay_bench.txt and fails if any leg's stats are not
# byte-identical to the recorded run.
bench-replay:
	scripts/bench_replay.sh

# Measure the warm-restart snapshot subsystem: encode/restore
# microbenches, snapshot size, and the cluster warm-catch-up vs
# cold-reset comparison; records results/snap_bench.txt and fails if
# warm catch-up does not strictly cut backend loads.
bench-snap:
	scripts/bench_snap.sh

# Score the stampede defenses (coalescing, negative caching) by
# backend Loader calls under adversarial miss storms; records
# results/stampede_bench.txt and fails unless every defended leg
# strictly cuts backend loads.
bench-stampede:
	scripts/bench_stampede.sh
