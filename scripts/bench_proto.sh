#!/usr/bin/env sh
# bench_proto.sh — measure the binary protocol against HTTP on the same
# deterministic loadgen stream (cmd/rwpserve -proto-bench): throughput
# in ops/s plus p50/p99 latency for each leg. Both legs replay the
# identical op sequence against identically configured caches over real
# loopback sockets, so the delta is pure transport cost. Writes
# results/proto_bench.txt so regressions show up in review diffs.
#
# The timings are wall clock, so unlike the hit-rate numbers they vary
# by host — the gate below asserts only the ratio, which is stable.
#
# Usage: scripts/bench_proto.sh [ops]
set -eu

cd "$(dirname "$0")/.."

ops=${1:-20000}
out=results/proto_bench.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwpserve" ./cmd/rwpserve

echo ">> rwpserve -proto-bench (binary protocol vs HTTP)"
{
    echo "# binary protocol vs HTTP transport bench (cmd/rwpserve -proto-bench)"
    echo "# wall-clock numbers vary by host; the gate asserts the ratio only"
    "$work/rwpserve" -proto-bench -proto-ops "$ops"
} | tee "$out"

# The tentpole's acceptance bar: the batched pipelined binary path must
# move the same op stream at >= 2x HTTP's throughput.
awk '/^binary\/http throughput ratio:/ { if ($4 + 0 < 2.0) bad = 1; seen = 1 }
     END { exit (bad || !seen) }' "$out" || {
    echo 'bench_proto.sh: FAIL: binary throughput below 2x HTTP (or no ratio line)' >&2
    exit 1
}

# Allocation baselines for the zero-alloc read-path work. The direct
# get-hit and frame-read numbers are deterministic, so they are pinned
# exactly (they mirror the AllocsPerRun tests in internal/live and
# internal/live/proto); the end-to-end TCP number spans client, server
# goroutine, and codecs, so only its presence is asserted here — it is
# recorded for trend.
awk '/^allocs\/op live get-hit \(direct\):/  { direct = $5; seen_d = 1 }
     /^allocs\/op proto frame read:/         { fread = $5;  seen_f = 1 }
     /^allocs\/op tcp get-hit \(e2e\):/      { seen_e = 1 }
     END { exit !(seen_d && seen_f && seen_e && direct == "1.0" && fread == "0.0") }' "$out" || {
    echo 'bench_proto.sh: FAIL: allocs/op lines missing or off baseline (want direct=1.0, frame read=0.0)' >&2
    exit 1
}
