#!/usr/bin/env sh
# bench_cluster.sh — run the deterministic cluster bench (cmd/rwpcluster
# -bench): one node vs three static nodes vs three nodes under the
# shard-manager replication loop, on a hot-shard stream (all hot keys on
# one ring shard). Writes results/cluster_bench.txt so regressions show
# up in review diffs.
#
# The gated numbers are deterministic models clocked by op counts, not
# wall time: modeled read throughput (reads per busiest-node load unit)
# and the late-window p99 service cost. Wall-ms is printed for
# orientation only.
#
# Usage: scripts/bench_cluster.sh [ops]
set -eu

cd "$(dirname "$0")/.."

ops=${1:-120000}
out=results/cluster_bench.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwpcluster" ./cmd/rwpcluster

echo ">> rwpcluster -bench (single vs static vs managed)"
{
    echo "# cluster bench (cmd/rwpcluster -bench): replication vs static partitioning"
    echo "# model-xput and late-p99 are deterministic; wall-ms varies by host and is ungated"
    "$work/rwpcluster" -bench -bench-ops "$ops"
} | tee "$out"

# The acceptance bar: the managed cluster must model at least the
# static cluster's read throughput AND no worse a late-window p99 —
# replicating the hot shard has to pay for itself.
awk -F'[= ]+' '/^gate:/ {
        seen = 1
        if ($6 + 0 < $4 + 0) bad = 1        # managed model < static model
        if ($11 + 0 > $9 + 0) bad = 1       # managed late-p99 > static late-p99
    }
    END { exit (bad || !seen) }' "$out" || {
    echo 'bench_cluster.sh: FAIL: managed leg below static (model-xput or late-p99), or no gate line' >&2
    exit 1
}
