#!/usr/bin/env sh
# check.sh — the pre-PR gate. Every change must pass this locally before
# review; CI needs nothing beyond it (the rwplint determinism suite runs
# inside `go test` via internal/analysis/selfcheck_test.go).
#
#   tier-1:  go build ./... && go test ./...
#   extras:  go vet, rwplint (explicit, for readable output), -race
#
# Usage: scripts/check.sh [-short]   (-short skips the -race pass)
set -eu

cd "$(dirname "$0")/.."

short=0
[ "${1:-}" = "-short" ] && short=1

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> go run ./cmd/rwplint ./...'
go run ./cmd/rwplint ./...

echo '>> go test ./...'
go test ./...

if [ "$short" = 0 ]; then
    echo '>> go test -race ./...'
    go test -race ./...
fi

echo 'check.sh: all gates passed'
