#!/usr/bin/env sh
# check.sh — the pre-PR gate. Every change must pass this locally before
# review; CI needs nothing beyond it (the rwplint determinism suite runs
# inside `go test` via internal/analysis/selfcheck_test.go).
#
#   tier-1:  go build ./... && go test ./...
#   extras:  go vet, rwplint (explicit, for readable output), -race
#
# Usage: scripts/check.sh [-short]   (-short skips the -race pass)
set -eu

cd "$(dirname "$0")/.."

short=0
[ "${1:-}" = "-short" ] && short=1

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> go run ./cmd/rwplint ./...'
go run ./cmd/rwplint ./...

echo '>> go test ./...'
go test ./...

# Fuzz seed corpora: replay every checked-in seed (testdata/fuzz/ plus
# the F.Add seeds) through the wire-protocol fuzz targets so a corpus
# regression fails the gate without needing a fuzzing run.
echo '>> go test -run=Fuzz ./internal/live/proto'
go test -run=Fuzz ./internal/live/proto

if [ "$short" = 0 ]; then
    echo '>> go test -race ./...'
    go test -race ./...
else
    # Even the short gate race-checks the packages built for
    # concurrency: the live cache's multi-goroutine stress test and the
    # binary-protocol server under concurrent pipelined clients.
    echo '>> go test -race -short -run Stress ./internal/live/... ./cmd/rwpserve'
    go test -race -short -run Stress ./internal/live/... ./cmd/rwpserve
fi

# Engine smoke: run one experiment twice against the same cache dir.
# The second run must be a pure cache replay (executed=0) and its
# stdout must be byte-identical to the first — the parallel engine's
# user-facing contract, end to end through the real binary.
echo '>> engine smoke: warm-cache resume is a byte-identical replay'
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go run ./cmd/rwpexp -scale quick -exp E3 -j 4 -cache-dir "$smoke/cache" \
    >"$smoke/cold.out" 2>"$smoke/cold.err"
go run ./cmd/rwpexp -scale quick -exp E3 -j 4 -cache-dir "$smoke/cache" \
    >"$smoke/warm.out" 2>"$smoke/warm.err"
cmp "$smoke/cold.out" "$smoke/warm.out" || {
    echo 'check.sh: FAIL: warm-cache stdout differs from cold run' >&2
    exit 1
}
grep -q 'engine: .* executed=0 ' "$smoke/warm.err" || {
    echo 'check.sh: FAIL: warm-cache run re-executed jobs:' >&2
    grep 'engine:' "$smoke/warm.err" >&2 || true
    exit 1
}

# Journal smoke: two cold runs with -metrics-dir must produce
# byte-identical run journals (the observability determinism contract:
# canonical JSONL, sorted keys, fixed record order). No shared cache
# dir — journals are only written when a job actually executes, so a
# warm-cache replay would legitimately write none.
echo '>> journal smoke: two cold runs write byte-identical journals'
go run ./cmd/rwpexp -scale quick -exp E3 -j 4 -metrics-dir "$smoke/m1" \
    >/dev/null 2>&1
go run ./cmd/rwpexp -scale quick -exp E3 -j 1 -metrics-dir "$smoke/m2" \
    >/dev/null 2>&1
[ -n "$(ls "$smoke/m1"/*.jsonl 2>/dev/null)" ] || {
    echo 'check.sh: FAIL: -metrics-dir produced no journals' >&2
    exit 1
}
for j in "$smoke/m1"/*.jsonl; do
    cmp "$j" "$smoke/m2/$(basename "$j")" || {
        echo "check.sh: FAIL: journal $(basename "$j") differs between runs" >&2
        exit 1
    }
done

# Live-cache smoke: a seeded loadgen burst through the real rwpserve
# binary must print bit-identical /stats JSON on every run AND at every
# shard count — the live subsystem's determinism contract (sharding
# moves lock boundaries, not behavior).
echo '>> live smoke: rwpserve -selftest is shard-count invariant'
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf >"$smoke/live1.json"
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf >"$smoke/live2.json"
cmp "$smoke/live1.json" "$smoke/live2.json" || {
    echo 'check.sh: FAIL: rwpserve -selftest differs between identical runs' >&2
    exit 1
}
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 32 \
    -profile mcf >"$smoke/live32.json"
cmp "$smoke/live1.json" "$smoke/live32.json" || {
    echo 'check.sh: FAIL: rwpserve -selftest differs between -shards 1 and 32' >&2
    exit 1
}

# Stampede smoke: the defenses must not perturb sequential runs —
# coalescing only collapses genuinely concurrent work, so a
# single-goroutine selftest with -coalesce (and a finite lease) prints
# the exact live-smoke bytes. Then the negative cache: an adversarial
# scan flood with -neg-ops is deterministic across runs AND shard
# counts, and actually records absence verdicts (nonzero NegInserts).
echo '>> stampede smoke: -coalesce is bit-identical; adv:scan -neg-ops is deterministic'
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -coalesce -lease-ops 64 >"$smoke/coalesce.json"
cmp "$smoke/live1.json" "$smoke/coalesce.json" || {
    echo 'check.sh: FAIL: -coalesce perturbed a single-goroutine selftest' >&2
    exit 1
}
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile adv:scan -coalesce -neg-ops 64 >"$smoke/neg1.json"
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 32 \
    -profile adv:scan -coalesce -neg-ops 64 >"$smoke/neg32.json"
cmp "$smoke/neg1.json" "$smoke/neg32.json" || {
    echo 'check.sh: FAIL: adv:scan -neg-ops differs between -shards 1 and 32' >&2
    exit 1
}
if grep -q '"NegInserts": 0,' "$smoke/neg1.json"; then
    echo 'check.sh: FAIL: adv:scan -neg-ops recorded no absence verdicts' >&2
    exit 1
fi

# Transport smoke: the same burst through the binary protocol (batched
# MGET/MPUT frames, pipelined 8 deep) must print the same bytes — the
# transport-equivalence contract through the real binary.
echo '>> transport smoke: -selftest is transport invariant (tcp == direct)'
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -transport tcp -batch 64 -pipeline 8 >"$smoke/livetcp.json"
cmp "$smoke/live1.json" "$smoke/livetcp.json" || {
    echo 'check.sh: FAIL: rwpserve -selftest differs between tcp and direct transports' >&2
    exit 1
}

# Warm-restart smoke: snapshot a 12k-op selftest, resume it to 20k with
# -restore/-selftest-skip at different shard counts — the printed stats
# must be byte-identical to the uninterrupted 20k-op run
# ($smoke/live1.json from the live smoke). Then the fixed point:
# restoring and re-snapshotting with zero ops (skip == selftest) must
# reproduce the snapshot file byte-for-byte. Finally, a truncated
# snapshot must log 'starting cold' and produce the cold-run bytes with
# exit 0 — corruption never panics and never serves partial state.
echo '>> restart smoke: snapshot/restore equivalence across shard counts'
go run ./cmd/rwpserve -selftest 12000 -sets 256 -ways 8 -shards 4 \
    -profile mcf -snapshot "$smoke/warm.snap" >/dev/null
for sh in 1 32; do
    go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards "$sh" \
        -profile mcf -restore "$smoke/warm.snap" -selftest-skip 12000 \
        >"$smoke/resumed$sh.json" 2>"$smoke/resumed$sh.err"
    cmp "$smoke/live1.json" "$smoke/resumed$sh.json" || {
        echo "check.sh: FAIL: restored run (-shards $sh) differs from uninterrupted run" >&2
        exit 1
    }
    if grep -q 'starting cold' "$smoke/resumed$sh.err"; then
        echo "check.sh: FAIL: restore (-shards $sh) fell back to a cold start:" >&2
        cat "$smoke/resumed$sh.err" >&2
        exit 1
    fi
done
go run ./cmd/rwpserve -selftest 12000 -sets 256 -ways 8 -shards 32 \
    -profile mcf -restore "$smoke/warm.snap" -selftest-skip 12000 \
    -snapshot "$smoke/warm2.snap" >/dev/null
cmp "$smoke/warm.snap" "$smoke/warm2.snap" || {
    echo 'check.sh: FAIL: restore + re-snapshot is not a fixed point' >&2
    exit 1
}
head -c 256 "$smoke/warm.snap" >"$smoke/trunc.snap"
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -restore "$smoke/trunc.snap" \
    >"$smoke/coldstart.json" 2>"$smoke/coldstart.err"
cmp "$smoke/live1.json" "$smoke/coldstart.json" || {
    echo 'check.sh: FAIL: corrupt-snapshot run differs from the cold run' >&2
    exit 1
}
grep -q 'starting cold' "$smoke/coldstart.err" || {
    echo 'check.sh: FAIL: corrupt snapshot did not log the cold-start fallback' >&2
    exit 1
}

# Cluster smoke: the 3-node merged stats document must be bit-identical
# across runs, across ring-shard counts (the ring only moves whole set
# ranges between nodes), AND to the single-node rwpserve run above at
# the same geometry/profile/seed — the cluster is a partitioning of the
# single-node run, not an approximation. $smoke/live1.json is the
# rwpserve baseline produced by the live smoke.
echo '>> cluster smoke: rwpcluster -selftest merges to the single-node bytes'
go run ./cmd/rwpcluster -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -ring-shards 16 >"$smoke/cluster1.json"
go run ./cmd/rwpcluster -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -ring-shards 16 >"$smoke/cluster2.json"
cmp "$smoke/cluster1.json" "$smoke/cluster2.json" || {
    echo 'check.sh: FAIL: rwpcluster -selftest differs between identical runs' >&2
    exit 1
}
go run ./cmd/rwpcluster -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -ring-shards 64 -mode pipe >"$smoke/cluster64.json"
cmp "$smoke/cluster1.json" "$smoke/cluster64.json" || {
    echo 'check.sh: FAIL: rwpcluster -selftest differs across -ring-shards/-mode' >&2
    exit 1
}
cmp "$smoke/live1.json" "$smoke/cluster1.json" || {
    echo 'check.sh: FAIL: cluster merged stats differ from single-node rwpserve' >&2
    exit 1
}

# Record/replay smoke: re-run the live burst with -record; capture must
# not perturb the run (stats == the unrecorded live smoke), replaying
# the journal over any transport must reproduce those bytes, and
# re-recording at a different shard count must reproduce the journal
# itself — the replay equivalence contract (DESIGN.md §14) through the
# real binaries. $smoke/live1.json is the rwpserve baseline from the
# live smoke above.
echo '>> replay smoke: record -> replay reproduces the stats bytes'
go run ./cmd/rwpserve -selftest 20000 -sets 256 -ways 8 -shards 4 \
    -profile mcf -record "$smoke/reqs.jsonl" >"$smoke/recorded.json"
cmp "$smoke/live1.json" "$smoke/recorded.json" || {
    echo 'check.sh: FAIL: -record perturbed the selftest stats' >&2
    exit 1
}
go run ./cmd/rwpreplay -in "$smoke/reqs.jsonl" -sets 256 -ways 8 \
    -shards 8 >"$smoke/replay-direct.json"
cmp "$smoke/live1.json" "$smoke/replay-direct.json" || {
    echo 'check.sh: FAIL: direct replay differs from the recorded run' >&2
    exit 1
}
go run ./cmd/rwpreplay -in "$smoke/reqs.jsonl" -sets 256 -ways 8 \
    -shards 2 -transport tcp -batch 64 -pipeline 8 >"$smoke/replay-tcp.json"
cmp "$smoke/live1.json" "$smoke/replay-tcp.json" || {
    echo 'check.sh: FAIL: tcp replay differs from the recorded run' >&2
    exit 1
}
go run ./cmd/rwpreplay -in "$smoke/reqs.jsonl" -sets 256 -ways 8 \
    -shards 1 -transport cluster -nodes 3 -ring-shards 16 \
    >"$smoke/replay-cluster.json"
cmp "$smoke/live1.json" "$smoke/replay-cluster.json" || {
    echo 'check.sh: FAIL: 3-node cluster replay differs from the recorded run' >&2
    exit 1
}
go run ./cmd/rwpreplay -in "$smoke/reqs.jsonl" -sets 256 -ways 8 \
    -shards 16 -record "$smoke/rerec.jsonl" >/dev/null
cmp "$smoke/reqs.jsonl" "$smoke/rerec.jsonl" || {
    echo 'check.sh: FAIL: re-recorded journal differs from the input journal' >&2
    exit 1
}

# Managed cluster smoke: with the replication control loop on, the run
# (merged stats + shard-window journal) must still be bit-identical
# across reruns — the manager is op-count clocked, not wall clocked.
echo '>> cluster smoke: managed run is deterministic'
go run ./cmd/rwpcluster -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -ring-shards 16 -manager -window 1024 -hot 128 -cold 16 \
    -windows-out "$smoke/win1.jsonl" >"$smoke/managed1.json"
go run ./cmd/rwpcluster -selftest 20000 -sets 256 -ways 8 -shards 1 \
    -profile mcf -ring-shards 16 -manager -window 1024 -hot 128 -cold 16 \
    -windows-out "$smoke/win2.jsonl" >"$smoke/managed2.json"
cmp "$smoke/managed1.json" "$smoke/managed2.json" || {
    echo 'check.sh: FAIL: managed rwpcluster stats differ between identical runs' >&2
    exit 1
}
cmp "$smoke/win1.jsonl" "$smoke/win2.jsonl" || {
    echo 'check.sh: FAIL: managed shard-window journals differ between identical runs' >&2
    exit 1
}

echo 'check.sh: all gates passed'
