#!/usr/bin/env sh
# bench_engine.sh — measure the experiment engine's parallel speedup:
# the full quick-scale suite at -j 1 vs -j $(nproc), cold cache both
# times, wall-clock only (results are byte-identical by construction —
# verified here with cmp as a bonus). Writes results/engine_speedup.txt.
#
# Usage: scripts/bench_engine.sh [jobs]   (default: nproc)
set -eu

cd "$(dirname "$0")/.."

jobs=${1:-$(nproc 2>/dev/null || echo 4)}
out=results/engine_speedup.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# Build once so `go run` startup cost doesn't pollute either timing.
go build -o "$work/rwpexp" ./cmd/rwpexp

echo ">> rwpexp -scale quick -j 1"
s=$(date +%s)
"$work/rwpexp" -scale quick -j 1 >"$work/j1.out" 2>/dev/null
t1=$(( $(date +%s) - s ))

echo ">> rwpexp -scale quick -j $jobs"
s=$(date +%s)
"$work/rwpexp" -scale quick -j "$jobs" >"$work/jN.out" 2>/dev/null
tN=$(( $(date +%s) - s ))

cmp "$work/j1.out" "$work/jN.out" || {
    echo "bench_engine.sh: FAIL: -j 1 and -j $jobs stdout differ" >&2
    exit 1
}

{
    echo "# engine speedup: cmd/rwpexp -scale quick, full suite, cold cache"
    echo "# host: $(uname -sm), $(nproc 2>/dev/null || echo '?') CPUs, go $(go env GOVERSION)"
    echo "-j 1      ${t1}s"
    echo "-j $jobs      ${tN}s"
    awk -v a="$t1" -v b="$tN" 'BEGIN {
        if (b > 0) printf "speedup   %.2fx\n", a / b
        else       print  "speedup   (run too fast to time at 1s resolution)"
    }'
    echo "stdout    byte-identical across -j values (cmp)"
} | tee "$out"
