#!/usr/bin/env sh
# bench_live.sh — measure the live KV cache's read-hit rate under each
# cache-sensitive workload profile's deterministic loadgen stream, once
# with per-set LRU and once with per-set RWP (cmd/rwpserve -bench, in
# process, single-goroutine: every number is reproducible bit for bit).
# Writes results/live_hitrate.txt so RWP-vs-LRU drift shows up in
# review diffs.
#
# Usage: scripts/bench_live.sh
set -eu

cd "$(dirname "$0")/.."

out=results/live_hitrate.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwpserve" ./cmd/rwpserve

echo ">> rwpserve -bench (RWP vs LRU read-hit rate per profile)"
{
    echo "# live cache RWP vs LRU read-hit rate (cmd/rwpserve -bench)"
    echo "# deterministic: same numbers on every run and every host"
    "$work/rwpserve" -bench
} | tee "$out"

# The paper's claim, live: RWP must not lose to LRU on the geomean of
# read-hit-rate ratios over the cache-sensitive profiles.
awk '$1 == "geomean" && $2 + 0 > 0 { if ($2 + 0 < 1.0) bad = 1 } END { exit bad }' "$out" || {
    echo 'bench_live.sh: FAIL: RWP read-hit geomean below LRU' >&2
    exit 1
}

# Orientation section (appended after the gate — the adversarial
# profiles are stampede stressors, not cache-sensitive workloads, and
# must not move the RWP-vs-LRU geomean): the same RWP-vs-LRU comparison
# under the adv:* streams. The stampede defenses themselves are scored
# by scripts/bench_stampede.sh.
echo ">> rwpserve -bench (adversarial profiles, ungated orientation)"
{
    echo ""
    echo "# adversarial stampede profiles (orientation only, not gated):"
    "$work/rwpserve" -bench -bench-profiles adv:zipf,adv:flash,adv:scan,adv:write
} | tee -a "$out"