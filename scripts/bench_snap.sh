#!/usr/bin/env sh
# bench_snap.sh — measure the warm-restart snapshot subsystem. Writes
# results/snap_bench.txt so regressions show up in review diffs.
#
# Three sections:
#   1. Go microbenches: snapshot encode and full restore on a warm
#      12k-op cache (internal/live).
#   2. Snapshot size for the standard smoke geometry (orientation).
#   3. The cluster catch-up bench (cmd/rwpcluster -catchup-bench): the
#      same managed hotspot run with warm snapshot catch-up vs forced
#      cold resets. Replica decisions are routing-side functions of the
#      stream, so both legs apply identical commands; summed backend
#      Loads isolate the refill cost that catch-up removes.
#
# The gate (enforced by the rwpcluster binary and re-checked here):
# identical commands across legs, warm catch-ups actually ran, and
# warm backend loads strictly below cold.
#
# Usage: scripts/bench_snap.sh [ops]
set -eu

cd "$(dirname "$0")/.."

ops=${1:-120000}
out=results/snap_bench.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwpserve" ./cmd/rwpserve
go build -o "$work/rwpcluster" ./cmd/rwpcluster

echo ">> snapshot encode/restore microbenches"
{
    echo "# snapshot bench: encode/restore cost, snapshot size, and warm catch-up savings"
    echo "# go test -bench on a 12k-op warm cache (internal/live):"
    go test -run '^$' -bench 'BenchmarkSnapshotEncode|BenchmarkRestoreSnapshot' \
        -benchtime 2x ./internal/live | grep -E 'Benchmark|^ok'
    echo ""
    echo "# snapshot size at the smoke geometry (12k mcf ops, 256x8):"
    "$work/rwpserve" -selftest 12000 -sets 256 -ways 8 -shards 4 \
        -profile mcf -snapshot "$work/warm.snap" >/dev/null
    wc -c <"$work/warm.snap" | awk '{printf "snapshot bytes: %d\n", $1}'
    echo ""
    echo "# cluster catch-up: warm snapshot transfer vs cold reset + Loader refill"
} | tee "$out"

echo ">> rwpcluster -catchup-bench (warm vs cold replica adds)"
"$work/rwpcluster" -catchup-bench -bench-ops "$ops" | tee -a "$out"

# Re-assert the gate from the recorded output: warm loads strictly
# below cold, with at least one warm catch-up and identical command
# streams (the binary exits nonzero on violation; this guards the
# recorded file itself).
awk -F'[= ]+' '/^gate: backend-loads/ {
        seen = 1
        if ($4 + 0 >= $6 + 0) bad = 1      # warm loads not below cold
        if ($8 + 0 == 0) bad = 1           # no warm catch-ups ran
        if ($13 + 0 != $15 + 0) bad = 1    # command streams diverged
    }
    END { exit (bad || !seen) }' "$out" || {
    echo 'bench_snap.sh: FAIL: warm catch-up gate does not hold in recorded output' >&2
    exit 1
}
