#!/usr/bin/env sh
# bench_replay.sh — measure journal replay throughput (cmd/rwpreplay)
# per transport on one recorded request stream: record a deterministic
# selftest burst, then replay it direct, over HTTP, over the binary
# protocol, and through a 3-node cluster, timing each leg. Writes
# results/replay_bench.txt so transport-cost drift shows up in review
# diffs.
#
# The timings are wall clock and vary by host; the gate asserts only
# the replay equivalence contract (every leg's stats byte-identical to
# the recorded run), which is host-independent.
#
# Usage: scripts/bench_replay.sh [ops]
set -eu

cd "$(dirname "$0")/.."

ops=${1:-50000}
out=results/replay_bench.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwpserve" ./cmd/rwpserve
go build -o "$work/rwpreplay" ./cmd/rwpreplay

echo ">> recording $ops-op selftest burst"
"$work/rwpserve" -selftest "$ops" -sets 256 -ways 8 -shards 4 \
    -profile mcf -record "$work/reqs.jsonl" >"$work/recorded.json"

# leg <name> <rwpreplay args...>: replay, time it, gate the bytes.
leg() {
    name=$1
    shift
    start=$(date +%s.%N)
    "$work/rwpreplay" -in "$work/reqs.jsonl" -sets 256 -ways 8 "$@" \
        >"$work/$name.json"
    end=$(date +%s.%N)
    cmp "$work/recorded.json" "$work/$name.json" || {
        echo "bench_replay.sh: FAIL: $name replay differs from the recorded run" >&2
        exit 1
    }
    awk -v ops="$ops" -v s="$start" -v e="$end" -v n="$name" \
        'BEGIN { d = e - s; printf "replay %-12s %8.3f s %12.0f ops/s\n", n, d, ops / d }'
}

echo ">> replaying through each transport"
{
    echo "# journal replay throughput per transport (cmd/rwpreplay, $ops ops)"
    echo "# wall-clock numbers vary by host; the gate asserts byte-identity only"
    leg direct -shards 4
    leg http -shards 4 -transport http
    leg tcp -shards 4 -transport tcp -batch 64 -pipeline 8
    leg cluster -shards 1 -transport cluster -nodes 3 -ring-shards 32
} | tee "$out"

echo "bench_replay.sh: all legs byte-identical to the recorded run"
