#!/usr/bin/env sh
# bench_stampede.sh — score the live cache's stampede defenses by the
# number a backend operator cares about: Loader calls. Writes
# results/stampede_bench.txt so regressions show up in review diffs.
#
# The bench itself (cmd/rwpserve -stampede-bench) runs three scenarios
# undefended vs defended and gates internally — defended backend loads
# strictly below undefended in every scenario, else nonzero exit:
#   flash-storm   synchronized miss storms on one hot key (coalescing)
#   absent-flood  the same storms on a key the backend lacks
#                 (coalescing + one flood-spanning negative verdict)
#   scan-neg      a cyclic sweep of the absent keyspace (negative
#                 caching answers revisits inside the verdict window)
#
# Every leg is deterministic (storms by miss-count rendezvous, the scan
# by construction), so the recorded file is stable run to run; this
# script re-runs the bench and cmp-checks that claim too.
#
# Usage: scripts/bench_stampede.sh [scan-ops]
set -eu

cd "$(dirname "$0")/.."

ops=${1:-20000}
out=results/stampede_bench.txt
mkdir -p results

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwpserve" ./cmd/rwpserve

echo ">> rwpserve -stampede-bench (undefended vs defended backend loads)"
{
    echo "# stampede bench: backend Loader calls, undefended vs defended"
    "$work/rwpserve" -stampede-bench -stampede-ops "$ops"
} | tee "$out"

echo ">> determinism: a second run must be byte-identical"
{
    echo "# stampede bench: backend Loader calls, undefended vs defended"
    "$work/rwpserve" -stampede-bench -stampede-ops "$ops"
} >"$work/again.txt"
cmp "$out" "$work/again.txt" || {
    echo 'bench_stampede.sh: FAIL: bench output is not deterministic' >&2
    exit 1
}

# Belt and braces: the binary already gates (nonzero exit on any FAIL);
# guard the recorded file itself against hand edits or tee failures.
grep -q 'GATE flash-storm: .*: PASS' "$out" &&
    grep -q 'GATE absent-flood: .*: PASS' "$out" &&
    grep -q 'GATE scan-neg: .*: PASS' "$out" || {
    echo 'bench_stampede.sh: FAIL: recorded output lacks three PASS gates' >&2
    exit 1
}
