// Package report renders experiment results as aligned ASCII tables (the
// format EXPERIMENTS.md and the CLIs print) and as CSV for downstream
// plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// New returns an empty table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded, long rows rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row with %d cells in a %d-column table", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRule appends a horizontal rule row (rendered as dashes).
func (t *Table) AddRule() {
	t.Rows = append(t.Rows, nil)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			// Left-align the first column, right-align the rest
			// (numeric convention).
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.Rows {
		if row == nil {
			writeRow(rule)
			continue
		}
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (title and rules omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if row == nil {
			continue
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders to a string (for tests and embedding).
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}

// F formats a float with the given decimals.
func F(x float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, x)
}

// Pct formats a ratio as a signed percent delta over 1.0.
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}

// I formats an integer.
func I[T ~int | ~int64 | ~uint64 | ~uint](v T) string {
	return fmt.Sprintf("%d", v)
}
