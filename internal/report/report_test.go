package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "bench", "ipc", "mpki")
	tb.AddRow("mcf", "0.42", "12.3")
	tb.AddRow("libquantum", "0.31", "30.1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// All data lines must have equal length (alignment).
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows unaligned:\n%s", out)
	}
	if !strings.Contains(out, "libquantum") || !strings.Contains(out, "30.1") {
		t.Fatalf("content missing:\n%s", out)
	}
}

func TestAddRuleAndNote(t *testing.T) {
	tb := New("x", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRule()
	tb.AddRow("geomean", "1.5")
	tb.Note = "hello"
	out := tb.String()
	if !strings.Contains(out, "note: hello") {
		t.Fatalf("note missing:\n%s", out)
	}
	if strings.Count(out, "---") < 2 {
		t.Fatalf("rule missing:\n%s", out)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("x", "a", "b", "c")
	tb.AddRow("only")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("row padded to %d cells, want 3", got)
	}
}

func TestOverlongRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New("x", "a").AddRow("1", "2")
}

func TestRenderCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow("x,y", "2") // comma must be quoted
	tb.AddRule()          // rules skipped in CSV
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Error("F wrong")
	}
	if Pct(1.14) != "+14.0%" {
		t.Errorf("Pct = %q", Pct(1.14))
	}
	if I(42) != "42" || I(uint64(7)) != "7" {
		t.Error("I wrong")
	}
}
