package probe

import (
	"encoding/json"
	"fmt"
	"sort"
)

// CostHist is an exact sparse histogram of integer service costs: a
// cost-sorted bucket list with one counter per distinct cost. Costs in
// this module are deterministic models (queue-depth proxies in the
// cluster router, the live cache's modeled backing-store costs), so
// their value domain is tiny and an exact histogram is both cheap and
// bit-reproducible — no sampling, no floating point, no approximation
// to drift between runs.
//
// Every mutation keeps Buckets sorted by ascending Cost, which gives
// the order-independent encoding the stats documents need: merging two
// histograms bucket-by-bucket (Add) is commutative, and the JSON form
// (MarshalJSON) is a [[cost,count],...] array in cost order — never a
// JSON object, whose keys would sort lexicographically ("10" < "2")
// and break the numeric order a reader expects.
//
// The zero value is an empty histogram, ready to use.
type CostHist struct {
	Buckets []CostBucket
}

// CostBucket is one (cost, count) pair.
type CostBucket struct {
	Cost  int
	Count uint64
}

// Observe records one cost observation. Negative costs panic: every
// cost model in this module produces values >= 0, so a negative cost
// is a caller bug, not data.
func (h *CostHist) Observe(cost int) { h.add(cost, 1) }

// add merges count observations of cost, keeping Buckets sorted.
func (h *CostHist) add(cost int, count uint64) {
	if cost < 0 {
		panic("probe: negative cost")
	}
	if count == 0 {
		return
	}
	i := sort.Search(len(h.Buckets), func(i int) bool { return h.Buckets[i].Cost >= cost })
	if i < len(h.Buckets) && h.Buckets[i].Cost == cost {
		h.Buckets[i].Count += count
		return
	}
	h.Buckets = append(h.Buckets, CostBucket{})
	copy(h.Buckets[i+1:], h.Buckets[i:])
	h.Buckets[i] = CostBucket{Cost: cost, Count: count}
}

// Add merges o into h bucket by bucket. Addition is commutative and
// associative, so merging per-set, per-shard, or per-node histograms in
// any order yields the same histogram — the property the cluster's
// merged stats document rests on.
func (h *CostHist) Add(o CostHist) {
	for _, b := range o.Buckets {
		h.add(b.Cost, b.Count)
	}
}

// N returns the total observation count.
func (h CostHist) N() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b.Count
	}
	return n
}

// Percentile returns the exact p-th percentile (1 <= p <= 100) by the
// nearest-rank method: the smallest cost c such that at least
// ceil(n*p/100) observations are <= c. An empty histogram returns 0.
func (h CostHist) Percentile(p int) int {
	if p < 1 || p > 100 {
		panic("probe: percentile out of range")
	}
	n := h.N()
	if n == 0 {
		return 0
	}
	rank := (n*uint64(p) + 99) / 100
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Cost
		}
	}
	return h.Buckets[len(h.Buckets)-1].Cost
}

// Diff returns h minus prev bucket-wise. It is the delta view a poller
// wants between two cumulative snapshots of the same histogram; it
// panics if prev is not a bucket-wise prefix-sum of h (a count would
// have to run backwards, which cumulative histograms never do).
func (h CostHist) Diff(prev CostHist) CostHist {
	var out CostHist
	i := 0
	for _, b := range h.Buckets {
		var prevCount uint64
		if i < len(prev.Buckets) && prev.Buckets[i].Cost == b.Cost {
			prevCount = prev.Buckets[i].Count
			i++
		}
		if prevCount > b.Count {
			panic("probe: CostHist.Diff against a non-prefix histogram")
		}
		if d := b.Count - prevCount; d > 0 {
			out.add(b.Cost, d)
		}
	}
	if i != len(prev.Buckets) {
		// A bucket present earlier vanished later; cumulative counts
		// never run backwards, so the snapshots are unrelated.
		panic("probe: CostHist.Diff against a non-prefix histogram")
	}
	return out
}

// Reset empties the histogram, keeping the bucket capacity for reuse.
func (h *CostHist) Reset() { h.Buckets = h.Buckets[:0] }

// MarshalJSON encodes the histogram as [[cost,count],...] in ascending
// cost order. An empty histogram encodes as [] (never null) so the
// stats documents stay byte-identical whether the zero value was nil
// or a reset slice.
func (h CostHist) MarshalJSON() ([]byte, error) {
	out := make([][2]uint64, len(h.Buckets))
	for i, b := range h.Buckets {
		out[i] = [2]uint64{uint64(b.Cost), b.Count}
	}
	if out == nil {
		out = [][2]uint64{}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the MarshalJSON form, rejecting out-of-order
// or duplicate costs — a histogram is canonical data, not a log.
func (h *CostHist) UnmarshalJSON(data []byte) error {
	var pairs [][2]uint64
	if err := json.Unmarshal(data, &pairs); err != nil {
		return err
	}
	h.Buckets = h.Buckets[:0]
	for i, p := range pairs {
		if i > 0 && int(p[0]) <= h.Buckets[len(h.Buckets)-1].Cost {
			return fmt.Errorf("probe: cost histogram not in ascending cost order at %d", p[0])
		}
		h.Buckets = append(h.Buckets, CostBucket{Cost: int(p[0]), Count: p[1]})
	}
	return nil
}
