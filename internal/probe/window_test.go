package probe

import (
	"bytes"
	"strings"
	"testing"
)

func sampleWindows() []ShardWindow {
	return []ShardWindow{
		{Window: 0, Shard: 0, Reads: 900, Writes: 100, P99Cost: 37, Replicas: 1},
		{Window: 0, Shard: 1, Reads: 12, Writes: 3, P99Cost: 2, Replicas: 1},
		{Window: 1, Shard: 0, Reads: 850, Writes: 150, P99Cost: 31, Replicas: 2},
		{Window: 1, Shard: 1, Reads: 0, Writes: 0, P99Cost: 0, Replicas: 1},
	}
}

func TestShardWindowsRoundTrip(t *testing.T) {
	in := sampleWindows()
	var buf bytes.Buffer
	if err := WriteShardWindows(&buf, "hotspot nodes=3", 1024, in); err != nil {
		t.Fatal(err)
	}
	desc, ops, out, err := ReadShardWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if desc != "hotspot nodes=3" || ops != 1024 {
		t.Fatalf("header round-trip: desc %q window_ops %d", desc, ops)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d windows, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("window %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestShardWindowsCanonicalBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteShardWindows(&a, "run", 512, sampleWindows()); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardWindows(&b, "run", 512, sampleWindows()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of the same windows differ")
	}
	// Canonical form: sorted object keys on every line.
	first, _, _ := strings.Cut(a.String(), "\n")
	if !strings.HasPrefix(first, `{"desc":`) {
		t.Fatalf("header line not canonical: %s", first)
	}
}

// TestShardWindowsEmpty: a run that closes no windows journals just
// the header, and the reader hands back the header fields with zero
// windows — not an error (an empty window log is a valid run).
func TestShardWindowsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShardWindows(&buf, "idle", 256, nil); err != nil {
		t.Fatal(err)
	}
	desc, ops, ws, err := ReadShardWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if desc != "idle" || ops != 256 || len(ws) != 0 {
		t.Fatalf("empty journal round-trip: desc=%q ops=%d windows=%d", desc, ops, len(ws))
	}
}

// TestShardWindowsSingleOp: the smallest non-trivial window — one read
// on one shard — survives the round trip exactly, including the
// degenerate p99 (a single observation is every percentile).
func TestShardWindowsSingleOp(t *testing.T) {
	var h CostHist
	h.Observe(0) // the op's queue-depth cost: first op of the window
	in := []ShardWindow{{Window: 0, Shard: 0, Reads: 1, Writes: 0, P99Cost: h.Percentile(99), Replicas: 1}}
	var buf bytes.Buffer
	if err := WriteShardWindows(&buf, "one-op", 1, in); err != nil {
		t.Fatal(err)
	}
	_, _, out, err := ReadShardWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("single-op window round-trip: %+v", out)
	}
}

// TestShardWindowsCorruptionDetected: truncating the journal
// mid-record or flipping structural bytes must fail the decode — the
// cluster's replay guarantees depend on never consuming a damaged
// window log silently.
func TestShardWindowsCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShardWindows(&buf, "run", 512, sampleWindows()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Mid-record truncations at several depths into the final line
	// (cutting only the trailing newline leaves a complete record, so
	// start at two bytes).
	for _, cut := range []int{2, 5, 20} {
		if _, _, _, err := ReadShardWindows(strings.NewReader(good[:len(good)-cut])); err == nil {
			t.Errorf("truncation by %d bytes decoded without error", cut)
		}
	}

	// Bit-flips that corrupt structure: the record discriminator, the
	// schema string, and an object brace.
	flips := map[string]string{
		"record type":  strings.Replace(good, `"t":"window"`, `"t":"wind0w"`, 1),
		"schema":       strings.Replace(good, WindowSchema, "rwp-cluster-windows-v2", 1),
		"object brace": strings.Replace(good, `{"p99_cost"`, `["p99_cost"`, 1),
	}
	for name, bad := range flips {
		if bad == good {
			t.Fatalf("%s: corruption did not apply", name)
		}
		if _, _, _, err := ReadShardWindows(strings.NewReader(bad)); err == nil {
			t.Errorf("%s corruption decoded without error", name)
		}
	}
}

func TestShardWindowsRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no header":      `{"t":"window","window":0,"shard":0,"reads":1,"writes":0,"p99_cost":1,"replicas":1}`,
		"unknown type":   `{"schema":"rwp-cluster-windows-v1","t":"header","window_ops":8,"desc":""}` + "\n" + `{"t":"mystery"}`,
		"wrong schema":   `{"schema":"rwp-journal-v1","t":"header","window_ops":8,"desc":""}`,
		"malformed json": `{"t":"header"`,
	}
	for name, in := range cases {
		if _, _, _, err := ReadShardWindows(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
