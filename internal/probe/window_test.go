package probe

import (
	"bytes"
	"strings"
	"testing"
)

func sampleWindows() []ShardWindow {
	return []ShardWindow{
		{Window: 0, Shard: 0, Reads: 900, Writes: 100, P99Cost: 37, Replicas: 1},
		{Window: 0, Shard: 1, Reads: 12, Writes: 3, P99Cost: 2, Replicas: 1},
		{Window: 1, Shard: 0, Reads: 850, Writes: 150, P99Cost: 31, Replicas: 2},
		{Window: 1, Shard: 1, Reads: 0, Writes: 0, P99Cost: 0, Replicas: 1},
	}
}

func TestShardWindowsRoundTrip(t *testing.T) {
	in := sampleWindows()
	var buf bytes.Buffer
	if err := WriteShardWindows(&buf, "hotspot nodes=3", 1024, in); err != nil {
		t.Fatal(err)
	}
	desc, ops, out, err := ReadShardWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if desc != "hotspot nodes=3" || ops != 1024 {
		t.Fatalf("header round-trip: desc %q window_ops %d", desc, ops)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d windows, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("window %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestShardWindowsCanonicalBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteShardWindows(&a, "run", 512, sampleWindows()); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardWindows(&b, "run", 512, sampleWindows()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of the same windows differ")
	}
	// Canonical form: sorted object keys on every line.
	first, _, _ := strings.Cut(a.String(), "\n")
	if !strings.HasPrefix(first, `{"desc":`) {
		t.Fatalf("header line not canonical: %s", first)
	}
}

func TestShardWindowsRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no header":      `{"t":"window","window":0,"shard":0,"reads":1,"writes":0,"p99_cost":1,"replicas":1}`,
		"unknown type":   `{"schema":"rwp-cluster-windows-v1","t":"header","window_ops":8,"desc":""}` + "\n" + `{"t":"mystery"}`,
		"wrong schema":   `{"schema":"rwp-journal-v1","t":"header","window_ops":8,"desc":""}`,
		"malformed json": `{"t":"header"`,
	}
	for name, in := range cases {
		if _, _, _, err := ReadShardWindows(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
