// Package probe is the simulator's deterministic instrumentation layer.
//
// A Probe receives typed events from the cache model (fills, hits and
// misses split by class and by clean/dirty partition, evictions with
// their source partition, bypasses), from the replacement policies
// (RWP's predictor retargeting the dirty-partition size, RRP's bypass
// verdicts, set-dueling leader flips) and from the simulation driver
// (interval boundaries with occupancy snapshots). The concrete
// Recorder aggregates them into per-interval time series and run-level
// histograms, and journal.go serializes a Recorder as a canonical
// JSONL "run journal" that cmd/rwpstat can load and render.
//
// Two guarantees, both enforced by tier-1 tests:
//
//   - Attaching a probe never changes a sim.Result bit: probes only
//     observe — no event handler feeds back into the mechanism under
//     test (internal/sim/probe_test.go).
//   - A nil probe costs nothing on the hot path: every emission site
//     is guarded by an `if p != nil` check and constructs its event
//     struct only inside the guard, so the disabled path is a single
//     predictable branch and allocation-free. The rwplint `probesafe`
//     rule machine-checks the guard at every call site under
//     internal/.
//
// The package deliberately imports nothing from the simulator so that
// every layer (cache, policy, sim, runner) can emit events without
// import cycles.
package probe

// Class mirrors cache.Class (demand load, demand store, writeback)
// without importing internal/cache; the numeric values are identical
// and NumClasses bounds event arrays.
type Class uint8

const (
	// Load is a demand load (cache.DemandLoad).
	Load Class = iota
	// Store is a demand store (cache.DemandStore).
	Store
	// WB is a writeback arriving from the level above (cache.Writeback).
	WB
	// NumClasses sizes per-class arrays.
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Load:
		return "load"
	case Store:
		return "store"
	case WB:
		return "writeback"
	default:
		return "class?"
	}
}

// AccessEvent fires once per cache access, hit or miss.
type AccessEvent struct {
	// Level is the cache level name ("LLC", "L2", ...).
	Level string
	// Class is the request class.
	Class Class
	// Hit is true when the line was present.
	Hit bool
	// LineDirty is the hit line's dirty bit *before* the access (the
	// data-array view of the dirty partition); always false on a miss.
	LineDirty bool
}

// FillEvent fires after a missing line is installed.
type FillEvent struct {
	Level string
	Class Class
	// Dirty is true when the line is installed dirty (it joins the
	// dirty partition at birth).
	Dirty bool
}

// EvictEvent fires when a valid line is replaced.
type EvictEvent struct {
	Level string
	// Class is the class of the incoming access that forced the
	// eviction.
	Class Class
	// Dirty is the victim's dirty bit — the eviction's source
	// partition; a dirty victim becomes a writeback to the level below.
	Dirty bool
}

// BypassEvent fires when a policy declines to cache a missing line.
type BypassEvent struct {
	Level string
	Class Class
}

// RetargetEvent fires when RWP's predictor repartitions the cache.
type RetargetEvent struct {
	// Interval is the 1-based repartitioning count.
	Interval uint64
	// Target is the new dirty-partition size in ways.
	Target int
	// Accesses is the policy's access count at the boundary.
	Accesses uint64
}

// PolicyEvent is a policy-internal decision worth counting: RRP bypass
// verdicts, set-dueling leader flips. Policy and Kind must be constant
// strings at the emission site (no per-event formatting on the hot
// path).
type PolicyEvent struct {
	// Policy names the emitting mechanism ("rrp", "duel", ...).
	Policy string
	// Kind names the decision ("bypass", "flip", ...).
	Kind string
	// Value carries the decision's operand (a predictor counter, a
	// PSEL value).
	Value int64
}

// IntervalEvent is the simulation driver's per-window snapshot, emitted
// every Window() measured accesses after warmup.
type IntervalEvent struct {
	// Index is the 0-based interval number.
	Index int
	// EndAccess is the measured-access count at the window's end.
	EndAccess uint64
	// Instructions and Cycles are cumulative over the measured region
	// (summed over cores in multiprogrammed runs).
	Instructions uint64
	Cycles       uint64
	// LLCReadMisses is cumulative over the measured region.
	LLCReadMisses uint64
	// DirtyTarget is RWP's dirty-partition target, or -1 when the LLC
	// policy is not RWP-based.
	DirtyTarget int
	// DirtyLines and ValidLines are the LLC's current totals — the
	// *actual* partition occupancy the target is steering.
	DirtyLines int
	ValidLines int
}

// Probe receives instrumentation events. Implementations must not
// mutate any simulator state; all methods are called from the single
// simulation goroutine of one run.
type Probe interface {
	// Window returns the number of measured accesses per interval
	// sample; 0 disables IntervalEnd events.
	Window() uint64
	// CacheAccess fires on every access at an instrumented level.
	CacheAccess(ev AccessEvent)
	// CacheFill fires after a fill.
	CacheFill(ev FillEvent)
	// CacheEvict fires when a valid line is replaced.
	CacheEvict(ev EvictEvent)
	// CacheBypass fires when a fill is bypassed.
	CacheBypass(ev BypassEvent)
	// Retarget fires when RWP repartitions.
	Retarget(ev RetargetEvent)
	// Policy fires on policy-internal decisions.
	Policy(ev PolicyEvent)
	// IntervalEnd fires every Window() measured accesses.
	IntervalEnd(ev IntervalEvent)
}

// Instrumentable is implemented by components that accept a probe
// (policies, caches, hierarchies). SetProbe must be called before the
// run starts and may be called with nil to detach.
type Instrumentable interface {
	SetProbe(p Probe)
}
