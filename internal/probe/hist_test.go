package probe

import (
	"encoding/json"
	"reflect"
	"testing"
)

func histFrom(costs ...int) CostHist {
	var h CostHist
	for _, c := range costs {
		h.Observe(c)
	}
	return h
}

func TestCostHistEmpty(t *testing.T) {
	var h CostHist
	if h.N() != 0 {
		t.Fatalf("empty N = %d", h.N())
	}
	if got := h.Percentile(99); got != 0 {
		t.Fatalf("empty p99 = %d, want 0", got)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[]" {
		t.Fatalf("empty histogram encodes as %s, want []", b)
	}
}

func TestCostHistSingleObservation(t *testing.T) {
	h := histFrom(7)
	if h.N() != 1 {
		t.Fatalf("N = %d", h.N())
	}
	for _, p := range []int{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 7 {
			t.Fatalf("p%d = %d, want 7", p, got)
		}
	}
}

func TestCostHistPercentiles(t *testing.T) {
	var h CostHist
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 9; i++ {
		h.Observe(4)
	}
	h.Observe(16)
	cases := map[int]int{1: 1, 50: 1, 90: 1, 91: 4, 99: 4, 100: 16}
	for p, want := range cases {
		if got := h.Percentile(p); got != want {
			t.Errorf("p%d = %d, want %d", p, got, want)
		}
	}
}

// TestCostHistMergeCommutative pins the property the cluster's merged
// stats document and the shard-window journaling rest on: merging
// histograms in any order — and in any grouping — yields identical
// buckets.
func TestCostHistMergeCommutative(t *testing.T) {
	parts := []CostHist{
		histFrom(1, 1, 16, 4, 1),
		histFrom(20, 1),
		{}, // an idle shard contributes an empty histogram
		histFrom(4, 4, 4),
	}
	var fwd CostHist
	for _, p := range parts {
		fwd.Add(p)
	}
	var rev CostHist
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Add(parts[i])
	}
	var pairwise CostHist
	var left, right CostHist
	left.Add(parts[0])
	left.Add(parts[3])
	right.Add(parts[2])
	right.Add(parts[1])
	pairwise.Add(right)
	pairwise.Add(left)
	if !reflect.DeepEqual(fwd.Buckets, rev.Buckets) || !reflect.DeepEqual(fwd.Buckets, pairwise.Buckets) {
		t.Fatalf("merge order changed the histogram:\nfwd  %+v\nrev  %+v\npair %+v", fwd.Buckets, rev.Buckets, pairwise.Buckets)
	}
	if fwd.N() != 10 {
		t.Fatalf("merged N = %d, want 10", fwd.N())
	}
}

func TestCostHistJSONRoundTrip(t *testing.T) {
	h := histFrom(16, 1, 1, 4)
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[[1,2],[4,1],[16,1]]" {
		t.Fatalf("encoded %s", b)
	}
	var back CostHist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Buckets, back.Buckets) {
		t.Fatalf("round trip: %+v vs %+v", h.Buckets, back.Buckets)
	}
	// Canonical data: out-of-order or duplicate costs are rejected.
	for _, bad := range []string{"[[4,1],[1,2]]", "[[1,1],[1,2]]"} {
		if err := json.Unmarshal([]byte(bad), &back); err == nil {
			t.Errorf("%s decoded without error", bad)
		}
	}
}

func TestCostHistDiff(t *testing.T) {
	prev := histFrom(1, 1, 4)
	cur := histFrom(1, 1, 4)
	cur.Observe(1)
	cur.Observe(16)
	d := cur.Diff(prev)
	if !reflect.DeepEqual(d.Buckets, []CostBucket{{Cost: 1, Count: 1}, {Cost: 16, Count: 1}}) {
		t.Fatalf("diff = %+v", d.Buckets)
	}
	if got := cur.Diff(cur).N(); got != 0 {
		t.Fatalf("self-diff N = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("diff against a non-prefix histogram did not panic")
		}
	}()
	prev.Diff(cur) // counts would run backwards
}

func TestCostHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost did not panic")
		}
	}()
	var h CostHist
	h.Observe(-1)
}

// TestCostHistNearestRankExact: with one observation of each cost
// 1..100, pXX is exactly XX — the nearest-rank definition with no
// interpolation. This coverage moved here when the cluster router's
// Digest was folded into CostHist.
func TestCostHistNearestRankExact(t *testing.T) {
	var h CostHist
	for i := 1; i <= 100; i++ {
		h.Observe(i)
	}
	for _, p := range []int{1, 50, 99, 100} {
		if got := h.Percentile(p); got != p {
			t.Errorf("p%d = %d, want %d", p, got, p)
		}
	}
}

// TestCostHistSkewedTail: a heavy tail below the p99 rank must not
// drag the percentile up.
func TestCostHistSkewedTail(t *testing.T) {
	var h CostHist
	for i := 0; i < 990; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	if got := h.Percentile(50); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	// rank(p99) = ceil(1000*99/100) = 990 → still the 1s.
	if got := h.Percentile(99); got != 1 {
		t.Errorf("p99 = %d, want 1", got)
	}
	if got := h.Percentile(100); got != 500 {
		t.Errorf("p100 = %d, want 500", got)
	}
}

// TestCostHistResetRefill: Reset clears observations but the histogram
// remains usable.
func TestCostHistResetRefill(t *testing.T) {
	var h CostHist
	h.Observe(7)
	h.Reset()
	if h.N() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("after Reset: N=%d p99=%d", h.N(), h.Percentile(99))
	}
	h.Observe(3)
	if got := h.Percentile(99); got != 3 {
		t.Fatalf("p99 after refill = %d, want 3", got)
	}
}

// TestCostHistInsertOrderIrrelevant: percentiles depend only on the
// multiset of observations, not arrival order.
func TestCostHistInsertOrderIrrelevant(t *testing.T) {
	var a, b CostHist
	vals := []int{9, 1, 4, 4, 7, 2, 9, 9, 0, 3}
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	for p := 1; p <= 100; p++ {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%d differs across insert order", p)
		}
	}
}
