package probe

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleReqEvents() []ReqEvent {
	return []ReqEvent{
		{Put: true, Key: "k0", Value: []byte{0x00, 0xff, 'a'}, Set: 3, Outcome: OutcomeInsert, Cost: 2},
		{Key: "k0", Set: 3, Outcome: OutcomeHit, Cost: 1},
		{Key: "absent", Set: 9, Outcome: OutcomeMiss, Cost: 16},
		{Put: true, Key: "k0", Value: []byte("v2"), Set: 3, Outcome: OutcomeOverwrite, Cost: 1},
		{Key: "loaded", Set: 1, Outcome: OutcomeFill, Cost: 20},
	}
}

func writeReqLog(t *testing.T, desc string, evs []ReqEvent) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewReqLogWriter(&buf, desc)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.ReqEvent(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReqLogRoundTrip(t *testing.T) {
	in := sampleReqEvents()
	data := writeReqLog(t, "profile=mcf seed=0 n=5", in)
	desc, out, err := ReadReqLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if desc != "profile=mcf seed=0 n=5" {
		t.Fatalf("desc %q", desc)
	}
	// Get events carry no value on the wire; normalize for comparison.
	want := append([]ReqEvent(nil), in...)
	for i := range want {
		if !want[i].Put {
			want[i].Value = nil
		}
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, want)
	}
}

func TestReqLogCanonicalBytes(t *testing.T) {
	a := writeReqLog(t, "run", sampleReqEvents())
	b := writeReqLog(t, "run", sampleReqEvents())
	if !bytes.Equal(a, b) {
		t.Fatal("two recordings of the same stream differ")
	}
	first, _, _ := strings.Cut(string(a), "\n")
	if !strings.HasPrefix(first, `{"desc":`) {
		t.Fatalf("header line not canonical: %s", first)
	}
}

func TestReqLogWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewReqLogWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	w.ReqEvent(ReqEvent{Key: "k", Outcome: OutcomeMiss, Cost: 16})
	w.ReqEvent(ReqEvent{Put: true, Key: "k", Outcome: OutcomeInsert, Cost: 2})
	if w.Count() != 2 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReqLogClassDerivation(t *testing.T) {
	if got := (ReqEvent{}).Class(); got != Load {
		t.Fatalf("Get class = %v", got)
	}
	if got := (ReqEvent{Put: true}).Class(); got != Store {
		t.Fatalf("Put class = %v", got)
	}
}

func TestReqLogRejectsBadInput(t *testing.T) {
	header := `{"desc":"","schema":"rwp-reqlog-v1","t":"header"}`
	rec0 := `{"class":"load","cost":1,"key":"k","op":"get","outcome":"hit","seq":0,"set":0,"t":"req"}`
	cases := map[string]string{
		"no header":      rec0,
		"wrong schema":   `{"desc":"","schema":"rwp-journal-v1","t":"header"}`,
		"unknown type":   header + "\n" + `{"t":"mystery"}`,
		"malformed json": header + "\n" + `{"t":"req"`,
		"seq gap":        header + "\n" + strings.Replace(rec0, `"seq":0`, `"seq":1`, 1),
		"op/class clash": header + "\n" + strings.Replace(rec0, `"class":"load"`, `"class":"store"`, 1),
		"bad value hex":  header + "\n" + `{"class":"store","cost":2,"key":"k","op":"put","outcome":"insert","seq":0,"set":0,"t":"req","value":"zz"}`,
	}
	for name, in := range cases {
		if _, _, err := ReadReqLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// The unmodified pair must parse — otherwise the rejection cases
	// above prove nothing.
	if _, evs, err := ReadReqLog(strings.NewReader(header + "\n" + rec0)); err != nil || len(evs) != 1 {
		t.Fatalf("control journal failed to parse: %v (%d events)", err, len(evs))
	}
}

// TestReqLogTruncationDetected: cutting the journal mid-record is a
// decode error (the canonical line no longer parses); cutting at a
// line boundary drops trailing records, which the sequence numbers
// leave detectable to any consumer that knows the expected count.
func TestReqLogTruncationDetected(t *testing.T) {
	data := writeReqLog(t, "run", sampleReqEvents())
	if _, _, err := ReadReqLog(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Fatal("mid-record truncation decoded without error")
	}
}
