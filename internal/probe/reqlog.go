package probe

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ReqLogSchema versions the request-stream journal: the live cache's
// capture of every Get/Put it served, one canonical JSONL line per
// operation. Like the run journal it is op-count clocked — records are
// numbered by a sequence counter, never timestamped — so recording the
// same deterministic stream twice (or at a different lock-shard count)
// yields byte-identical journals, and replaying one reproduces the
// original run's stats byte for byte (cmd/rwpreplay closes that loop).
const ReqLogSchema = "rwp-reqlog-v1"

// Request outcomes, as the live cache classifies them. They mirror the
// HTTP X-Cache header values: a Get is a hit, a fill (Loader
// backfill), or a miss; a Put is an overwrite or an insert.
const (
	OutcomeHit       = "hit"
	OutcomeFill      = "fill"
	OutcomeMiss      = "miss"
	OutcomeOverwrite = "overwrite"
	OutcomeInsert    = "insert"
)

// ReqEvent is one observed cache operation: what was asked (op, key,
// value), where it landed (the global set index — shard-layout
// independent), and what happened (outcome plus the deterministic
// modeled service cost). Value is the Put payload and nil for Gets; a
// sink must not retain it past the call.
type ReqEvent struct {
	Put     bool
	Key     string
	Value   []byte
	Set     int
	Outcome string
	Cost    int
}

// Class returns the paper's access class for the event ("load" for
// Gets, "store" for Puts) — the same split the run journal's class
// counters use.
func (e ReqEvent) Class() Class {
	if e.Put {
		return Store
	}
	return Load
}

// ReqProbe consumes request events. Like Probe, call sites in
// instrumented code must be nil-guarded (the probesafe lint enforces
// the naming convention: any interface named *Probe is held to it).
type ReqProbe interface {
	ReqEvent(ev ReqEvent)
}

// reqHeader identifies a request journal.
type reqHeader struct {
	T      string `json:"t"` // "header"
	Schema string `json:"schema"`
	Desc   string `json:"desc"`
}

// reqRecord is the JSONL form of one ReqEvent. Class is redundant with
// Op by construction; the reader cross-checks them, which catches
// single-field corruption that still parses.
type reqRecord struct {
	T       string `json:"t"` // "req"
	Seq     uint64 `json:"seq"`
	Op      string `json:"op"`    // "get" | "put"
	Class   string `json:"class"` // "load" | "store"
	Key     string `json:"key"`
	Set     int    `json:"set"`
	Outcome string `json:"outcome"`
	Cost    int    `json:"cost"`
	Value   string `json:"value,omitempty"` // hex Put payload; absent for Gets
}

// ReqLogWriter streams request events to w as a canonical reqlog
// journal. It is safe for concurrent use: a mutex orders the records
// (concurrent serving interleaves nondeterministically, but every
// journal it writes is well formed; single-goroutine runs — the
// deterministic harnesses — journal in exact stream order). Errors are
// sticky and surfaced by Close.
type ReqLogWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	seq uint64
	err error
}

// NewReqLogWriter writes the journal header to w and returns the
// writer. The caller owns w and closes it after Close.
func NewReqLogWriter(w io.Writer, desc string) (*ReqLogWriter, error) {
	rw := &ReqLogWriter{bw: bufio.NewWriter(w)}
	line, err := canonicalLine(reqHeader{T: "header", Schema: ReqLogSchema, Desc: desc})
	if err != nil {
		return nil, err
	}
	if _, err := rw.bw.Write(append(line, '\n')); err != nil {
		return nil, err
	}
	return rw, nil
}

// ReqEvent implements ReqProbe: append one record.
func (w *ReqLogWriter) ReqEvent(ev ReqEvent) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	rec := reqRecord{
		T: "req", Seq: w.seq, Key: ev.Key, Set: ev.Set,
		Outcome: ev.Outcome, Cost: ev.Cost,
	}
	if ev.Put {
		rec.Op, rec.Class = "put", Store.String()
		rec.Value = hex.EncodeToString(ev.Value)
	} else {
		rec.Op, rec.Class = "get", Load.String()
	}
	line, err := canonicalLine(rec)
	if err != nil {
		w.err = err
		return
	}
	// The mutex exists to order record emission; the write belongs
	// inside it or concurrent events would interleave bytes.
	//rwplint:allow lockheld — the journal writer's lock is what serializes the I/O
	if _, err := w.bw.Write(append(line, '\n')); err != nil {
		w.err = err
		return
	}
	w.seq++
}

// Close flushes the journal and returns the first error the writer
// hit, if any. It does not close the underlying io.Writer.
func (w *ReqLogWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	//rwplint:allow lockheld — final flush under the same ordering lock as every record write
	return w.bw.Flush()
}

// Count returns the number of records written so far.
func (w *ReqLogWriter) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ReadReqLog decodes a request journal. It is strict the way every
// journal reader here is — unknown schemas, unknown record types,
// malformed lines, gaps in the sequence, and op/class disagreements
// are all errors, because a journal is versioned data whose replay
// must reproduce a run exactly or not at all.
func ReadReqLog(r io.Reader) (desc string, evs []ReqEvent, err error) {
	sc := bufio.NewScanner(r)
	// Values can reach the transport's 1 MiB cap, which doubles in hex.
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var disc struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return "", nil, fmt.Errorf("probe: reqlog line %d: %w", lineNo, err)
		}
		switch disc.T {
		case "header":
			var h reqHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return "", nil, fmt.Errorf("probe: reqlog line %d: %w", lineNo, err)
			}
			if h.Schema != ReqLogSchema {
				return "", nil, fmt.Errorf("probe: reqlog schema %q, want %q", h.Schema, ReqLogSchema)
			}
			desc, sawHeader = h.Desc, true
		case "req":
			var rec reqRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return "", nil, fmt.Errorf("probe: reqlog line %d: %w", lineNo, err)
			}
			if rec.Seq != uint64(len(evs)) {
				return "", nil, fmt.Errorf("probe: reqlog line %d: seq %d, want %d (journal truncated or reordered)", lineNo, rec.Seq, len(evs))
			}
			ev := ReqEvent{Key: rec.Key, Set: rec.Set, Outcome: rec.Outcome, Cost: rec.Cost}
			switch {
			case rec.Op == "get" && rec.Class == Load.String():
			case rec.Op == "put" && rec.Class == Store.String():
				ev.Put = true
				v, err := hex.DecodeString(rec.Value)
				if err != nil {
					return "", nil, fmt.Errorf("probe: reqlog line %d: value: %w", lineNo, err)
				}
				ev.Value = v
			default:
				return "", nil, fmt.Errorf("probe: reqlog line %d: op %q / class %q disagree", lineNo, rec.Op, rec.Class)
			}
			evs = append(evs, ev)
		default:
			return "", nil, fmt.Errorf("probe: reqlog line %d: unknown record type %q", lineNo, disc.T)
		}
	}
	if err := sc.Err(); err != nil {
		return "", nil, fmt.Errorf("probe: reading reqlog: %w", err)
	}
	if !sawHeader {
		return "", nil, fmt.Errorf("probe: reqlog has no header")
	}
	return desc, evs, nil
}
