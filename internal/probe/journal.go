package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JournalSchema versions the run-journal encoding. Bump it whenever a
// record's meaning or layout changes so old journals are rejected
// instead of misread.
const JournalSchema = "rwp-journal-v1"

// A run journal is a JSONL stream: one flat JSON object per line, each
// carrying a "t" discriminator. Lines are canonical — object keys are
// sorted and floats use Go's shortest round-trip encoding — so two
// journals of the same run are byte-identical, which check.sh and the
// runner tests enforce with cmp/bytes.Equal. Record order is fixed:
// header, results (one per core), classes, evictions, costs (live-path
// runs only), retargets, policy counters, intervals.

// Header identifies the job a journal belongs to.
type Header struct {
	T      string `json:"t"` // "header"
	Schema string `json:"schema"`
	Kind   string `json:"kind"` // runner job kind ("single", "multi")
	Desc   string `json:"desc"` // human-readable job description
	Window uint64 `json:"window"`
}

// ResultRecord is one core's headline result, copied from sim.Result
// by the journal writer so a row of an experiment table can be
// re-derived from the journal alone.
type ResultRecord struct {
	T            string  `json:"t"` // "result"
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	IPC          float64 `json:"ipc"`
	ReadMPKI     float64 `json:"read_mpki"`
	TotalMPKI    float64 `json:"total_mpki"`
	WBPKI        float64 `json:"wbpki"`
	Instructions uint64  `json:"instructions"`
}

// classRecord is one request class's run-level counters.
type classRecord struct {
	T          string `json:"t"` // "class"
	Class      string `json:"class"`
	Accesses   uint64 `json:"accesses"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	HitsClean  uint64 `json:"hits_clean"`
	HitsDirty  uint64 `json:"hits_dirty"`
	Fills      uint64 `json:"fills"`
	FillsDirty uint64 `json:"fills_dirty"`
	Bypasses   uint64 `json:"bypasses"`
}

// evictRecord is the eviction split by source partition.
type evictRecord struct {
	T     string `json:"t"` // "evictions"
	Clean uint64 `json:"clean"`
	Dirty uint64 `json:"dirty"`
}

// retargetRecord is one predictor decision.
type retargetRecord struct {
	T        string `json:"t"` // "retarget"
	Interval uint64 `json:"interval"`
	Target   int    `json:"target"`
	Accesses uint64 `json:"accesses"`
}

// costsRecord is the run's service-cost histogram (live-path runs
// only; the trace simulator has no service-cost model).
type costsRecord struct {
	T    string   `json:"t"` // "costs"
	Hist CostHist `json:"hist"`
}

// policyRecord is one (policy, kind) decision counter.
type policyRecord struct {
	T      string `json:"t"` // "policy"
	Policy string `json:"policy"`
	Kind   string `json:"kind"`
	Count  uint64 `json:"count"`
	Last   int64  `json:"last"`
}

// intervalRecord is one window of the time series.
type intervalRecord struct {
	T            string `json:"t"` // "interval"
	Index        int    `json:"index"`
	EndAccess    uint64 `json:"end_access"`
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	ReadMisses   uint64 `json:"read_misses"`
	DirtyTarget  int    `json:"dirty_target"`
	DirtyLines   int    `json:"dirty_lines"`
	ValidLines   int    `json:"valid_lines"`
}

// Journal is a fully decoded run journal.
type Journal struct {
	Header     Header
	Results    []ResultRecord
	Classes    [NumClasses]ClassCounters
	EvictClean uint64
	EvictDirty uint64
	Retargets  []RetargetEvent
	Policies   []PolicyCount
	Intervals  []IntervalEvent
	Costs      CostHist
}

// FinalTarget returns the last retarget decision, or -1 when the
// predictor never fired.
func (j *Journal) FinalTarget() int {
	if len(j.Retargets) == 0 {
		return -1
	}
	return j.Retargets[len(j.Retargets)-1].Target
}

// canonicalLine marshals a flat record with sorted object keys. The
// struct is marshaled once for the values, re-read as raw fields so
// integers keep their exact text, and marshaled again as a map (Go
// sorts map keys), yielding one canonical line per record.
func canonicalLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return json.Marshal(m)
}

// WriteJournal serializes one run — its identity, per-core results and
// the recorder's aggregates — as canonical JSONL.
func WriteJournal(w io.Writer, h Header, results []ResultRecord, rec *Recorder) error {
	bw := bufio.NewWriter(w)
	h.T = "header"
	h.Schema = JournalSchema
	h.Window = rec.Window()
	emit := func(v any) error {
		line, err := canonicalLine(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := emit(h); err != nil {
		return err
	}
	for _, r := range results {
		r.T = "result"
		if err := emit(r); err != nil {
			return err
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		cc := rec.Classes[c]
		if err := emit(classRecord{
			T: "class", Class: c.String(),
			Accesses: cc.Accesses, Hits: cc.Hits, Misses: cc.Misses,
			HitsClean: cc.HitsClean, HitsDirty: cc.HitsDirty,
			Fills: cc.Fills, FillsDirty: cc.FillsDirty, Bypasses: cc.Bypasses,
		}); err != nil {
			return err
		}
	}
	if err := emit(evictRecord{T: "evictions", Clean: rec.EvictClean, Dirty: rec.EvictDirty}); err != nil {
		return err
	}
	// Emitted only when a source observed costs, so simulator journals
	// (which have no service-cost model) keep their exact bytes.
	if rec.Costs.N() > 0 {
		if err := emit(costsRecord{T: "costs", Hist: rec.Costs}); err != nil {
			return err
		}
	}
	for _, rt := range rec.Retargets {
		if err := emit(retargetRecord{T: "retarget", Interval: rt.Interval, Target: rt.Target, Accesses: rt.Accesses}); err != nil {
			return err
		}
	}
	for _, pc := range rec.PolicyCounts {
		if err := emit(policyRecord{T: "policy", Policy: pc.Policy, Kind: pc.Kind, Count: pc.Count, Last: pc.Last}); err != nil {
			return err
		}
	}
	for _, iv := range rec.Intervals {
		if err := emit(intervalRecord{
			T: "interval", Index: iv.Index, EndAccess: iv.EndAccess,
			Instructions: iv.Instructions, Cycles: iv.Cycles,
			ReadMisses: iv.LLCReadMisses, DirtyTarget: iv.DirtyTarget,
			DirtyLines: iv.DirtyLines, ValidLines: iv.ValidLines,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// classIndex maps a class name back to its index.
func classIndex(name string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("probe: unknown class %q", name)
}

// ReadJournal decodes a canonical JSONL journal. It rejects unknown
// schemas and malformed lines; unknown record types are an error too —
// a journal is versioned data, not a log to be skimmed.
func ReadJournal(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var j Journal
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var disc struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
		}
		switch disc.T {
		case "header":
			if err := json.Unmarshal(line, &j.Header); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			if j.Header.Schema != JournalSchema {
				return nil, fmt.Errorf("probe: journal schema %q, want %q", j.Header.Schema, JournalSchema)
			}
		case "result":
			var rec ResultRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.Results = append(j.Results, rec)
		case "class":
			var rec classRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			c, err := classIndex(rec.Class)
			if err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.Classes[c] = ClassCounters{
				Accesses: rec.Accesses, Hits: rec.Hits, Misses: rec.Misses,
				HitsClean: rec.HitsClean, HitsDirty: rec.HitsDirty,
				Fills: rec.Fills, FillsDirty: rec.FillsDirty, Bypasses: rec.Bypasses,
			}
		case "evictions":
			var rec evictRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.EvictClean, j.EvictDirty = rec.Clean, rec.Dirty
		case "costs":
			var rec costsRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.Costs = rec.Hist
		case "retarget":
			var rec retargetRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.Retargets = append(j.Retargets, RetargetEvent{Interval: rec.Interval, Target: rec.Target, Accesses: rec.Accesses})
		case "policy":
			var rec policyRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.Policies = append(j.Policies, PolicyCount{Policy: rec.Policy, Kind: rec.Kind, Count: rec.Count, Last: rec.Last})
		case "interval":
			var rec intervalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("probe: journal line %d: %w", lineNo, err)
			}
			j.Intervals = append(j.Intervals, IntervalEvent{
				Index: rec.Index, EndAccess: rec.EndAccess,
				Instructions: rec.Instructions, Cycles: rec.Cycles,
				LLCReadMisses: rec.ReadMisses, DirtyTarget: rec.DirtyTarget,
				DirtyLines: rec.DirtyLines, ValidLines: rec.ValidLines,
			})
		default:
			return nil, fmt.Errorf("probe: journal line %d: unknown record type %q", lineNo, disc.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("probe: reading journal: %w", err)
	}
	if j.Header.Schema == "" {
		return nil, fmt.Errorf("probe: journal has no header")
	}
	return &j, nil
}
