package probe

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// fill populates a recorder with a small, representative event stream.
func fill(r *Recorder) {
	r.CacheAccess(AccessEvent{Level: "LLC", Class: Load, Hit: true, LineDirty: false})
	r.CacheAccess(AccessEvent{Level: "LLC", Class: Load, Hit: true, LineDirty: true})
	r.CacheAccess(AccessEvent{Level: "LLC", Class: Load, Hit: false})
	r.CacheAccess(AccessEvent{Level: "LLC", Class: Store, Hit: false})
	r.CacheAccess(AccessEvent{Level: "LLC", Class: WB, Hit: true, LineDirty: true})
	r.CacheFill(FillEvent{Level: "LLC", Class: Load, Dirty: false})
	r.CacheFill(FillEvent{Level: "LLC", Class: WB, Dirty: true})
	r.CacheEvict(EvictEvent{Level: "LLC", Class: Load, Dirty: true})
	r.CacheEvict(EvictEvent{Level: "LLC", Class: Store, Dirty: false})
	r.CacheBypass(BypassEvent{Level: "LLC", Class: WB})
	r.Retarget(RetargetEvent{Interval: 1, Target: 5, Accesses: 100_000})
	r.Retarget(RetargetEvent{Interval: 2, Target: 3, Accesses: 200_000})
	r.Policy(PolicyEvent{Policy: "rrp", Kind: "bypass", Value: 0})
	r.Policy(PolicyEvent{Policy: "rrp", Kind: "bypass", Value: 1})
	r.Policy(PolicyEvent{Policy: "duel", Kind: "flip", Value: 512})
	r.IntervalEnd(IntervalEvent{Index: 0, EndAccess: 100_000, Instructions: 90_000,
		Cycles: 200_000, LLCReadMisses: 1200, DirtyTarget: 5, DirtyLines: 700, ValidLines: 2048})
	r.IntervalEnd(IntervalEvent{Index: 1, EndAccess: 200_000, Instructions: 180_000,
		Cycles: 410_000, LLCReadMisses: 2100, DirtyTarget: 3, DirtyLines: 400, ValidLines: 2048})
}

func TestRecorderAggregates(t *testing.T) {
	r := NewRecorder(0)
	if r.Window() != DefaultWindow {
		t.Fatalf("Window() = %d, want default %d", r.Window(), DefaultWindow)
	}
	fill(r)
	ld := r.Classes[Load]
	if ld.Accesses != 3 || ld.Hits != 2 || ld.Misses != 1 {
		t.Errorf("load counters = %+v", ld)
	}
	if ld.HitsClean != 1 || ld.HitsDirty != 1 {
		t.Errorf("load hit partition split = clean %d dirty %d, want 1/1", ld.HitsClean, ld.HitsDirty)
	}
	if ld.Fills != 1 || r.Classes[WB].FillsDirty != 1 {
		t.Errorf("fill counters wrong: load %+v wb %+v", ld, r.Classes[WB])
	}
	if r.EvictClean != 1 || r.EvictDirty != 1 || r.Evictions() != 2 {
		t.Errorf("evictions = clean %d dirty %d", r.EvictClean, r.EvictDirty)
	}
	if r.Classes[WB].Bypasses != 1 {
		t.Errorf("wb bypasses = %d, want 1", r.Classes[WB].Bypasses)
	}
	if got := r.FinalTarget(); got != 3 {
		t.Errorf("FinalTarget = %d, want 3", got)
	}
	if len(r.PolicyCounts) != 2 {
		t.Fatalf("policy counts = %+v", r.PolicyCounts)
	}
	if pc := r.PolicyCounts[0]; pc.Policy != "rrp" || pc.Count != 2 || pc.Last != 1 {
		t.Errorf("rrp counter = %+v", pc)
	}
	if len(r.Intervals) != 2 {
		t.Fatalf("intervals = %d, want 2", len(r.Intervals))
	}
	empty := NewRecorder(7)
	if empty.Window() != 7 {
		t.Errorf("Window() = %d, want 7", empty.Window())
	}
	if empty.FinalTarget() != -1 {
		t.Errorf("empty FinalTarget = %d, want -1", empty.FinalTarget())
	}
}

func journalBytes(t *testing.T) []byte {
	t.Helper()
	r := NewRecorder(100_000)
	fill(r)
	var buf bytes.Buffer
	err := WriteJournal(&buf,
		Header{Kind: "single", Desc: "gcc/rwp"},
		[]ResultRecord{{Workload: "gcc", Policy: "rwp", IPC: 1.25, ReadMPKI: 3.5,
			TotalMPKI: 5.0, WBPKI: 1.75, Instructions: 180_000}},
		r)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJournalRoundTrip(t *testing.T) {
	b := journalBytes(t)
	j, err := ReadJournal(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if j.Header.Schema != JournalSchema || j.Header.Kind != "single" || j.Header.Desc != "gcc/rwp" {
		t.Errorf("header = %+v", j.Header)
	}
	if j.Header.Window != 100_000 {
		t.Errorf("window = %d", j.Header.Window)
	}
	if len(j.Results) != 1 || j.Results[0].Workload != "gcc" || j.Results[0].IPC != 1.25 { //rwplint:allow floateq — exact JSON round-trip is the property under test
		t.Errorf("results = %+v", j.Results)
	}
	want := NewRecorder(100_000)
	fill(want)
	if !reflect.DeepEqual(j.Classes, want.Classes) {
		t.Errorf("classes:\n got %+v\nwant %+v", j.Classes, want.Classes)
	}
	if j.EvictClean != want.EvictClean || j.EvictDirty != want.EvictDirty {
		t.Errorf("evictions = %d/%d", j.EvictClean, j.EvictDirty)
	}
	if !reflect.DeepEqual(j.Retargets, want.Retargets) {
		t.Errorf("retargets = %+v", j.Retargets)
	}
	if !reflect.DeepEqual(j.Policies, want.PolicyCounts) {
		t.Errorf("policies = %+v", j.Policies)
	}
	if !reflect.DeepEqual(j.Intervals, want.Intervals) {
		t.Errorf("intervals = %+v", j.Intervals)
	}
	if j.FinalTarget() != 3 {
		t.Errorf("FinalTarget = %d", j.FinalTarget())
	}
}

func TestJournalCanonical(t *testing.T) {
	a, b := journalBytes(t), journalBytes(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same run journal differ")
	}
	// Every line must be a flat JSON object with sorted keys — the
	// "canonical" in canonical JSONL.
	for i, line := range strings.Split(strings.TrimRight(string(a), "\n"), "\n") {
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not a JSON object: %v", i+1, err)
		}
		var keys []string
		dec := json.NewDecoder(strings.NewReader(line))
		if _, err := dec.Token(); err != nil { // consume '{'
			t.Fatal(err)
		}
		for dec.More() {
			tok, err := dec.Token()
			if err != nil {
				t.Fatal(err)
			}
			if k, ok := tok.(string); ok {
				keys = append(keys, k)
			}
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				t.Fatal(err)
			}
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("line %d keys not sorted: %v", i+1, keys)
		}
	}
}

func TestJournalRejectsDefects(t *testing.T) {
	if _, err := ReadJournal(strings.NewReader("")); err == nil {
		t.Error("empty journal accepted")
	}
	if _, err := ReadJournal(strings.NewReader(`{"t":"header","schema":"rwp-journal-v999"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ReadJournal(strings.NewReader(`{"t":"martian"}`)); err == nil {
		t.Error("unknown record type accepted")
	}
	if _, err := ReadJournal(strings.NewReader("not json")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadJournal(strings.NewReader(`{"t":"class","class":"warp"}`)); err == nil {
		t.Error("unknown class name accepted")
	}
}
