package probe

// DefaultWindow is the interval width (in measured accesses) used by
// the experiment engine's journals: 100k accesses matches RWP's default
// repartitioning interval, so each sample spans roughly one predictor
// decision.
const DefaultWindow = 100_000

// ClassCounters aggregates one request class at one level.
type ClassCounters struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	HitsClean  uint64 // hits on clean lines (clean-partition hits)
	HitsDirty  uint64 // hits on dirty lines (dirty-partition hits)
	Fills      uint64
	FillsDirty uint64 // fills installing a dirty line
	Bypasses   uint64
}

// Add accumulates o into c. Aggregators (internal/live merges one
// Recorder per shard) use it to combine recorders order-independently.
func (c *ClassCounters) Add(o ClassCounters) {
	c.Accesses += o.Accesses
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.HitsClean += o.HitsClean
	c.HitsDirty += o.HitsDirty
	c.Fills += o.Fills
	c.FillsDirty += o.FillsDirty
	c.Bypasses += o.Bypasses
}

// PolicyCount is one (policy, kind) decision counter plus the last
// observed value.
type PolicyCount struct {
	Policy string
	Kind   string
	Count  uint64
	Last   int64
}

// Recorder is the concrete Probe: it aggregates events into run-level
// counters, per-interval samples and the retarget history. A Recorder
// observes exactly one run and is not safe for concurrent use (the
// simulator is single-goroutine per run; the parallel engine attaches
// one Recorder per job).
type Recorder struct {
	window uint64

	// Classes is indexed by Class; only events from the instrumented
	// level (the LLC, in the standard wiring) are counted.
	Classes [NumClasses]ClassCounters

	// EvictClean/EvictDirty count evictions by source partition.
	EvictClean uint64
	EvictDirty uint64

	// Retargets is the predictor's decision history in emission order.
	Retargets []RetargetEvent

	// PolicyCounts aggregates policy-internal decisions. The slice is
	// small (a handful of distinct policy/kind pairs) and append-ordered
	// by first emission, which is deterministic for a deterministic run.
	PolicyCounts []PolicyCount

	// Intervals is the per-window time series in emission order.
	Intervals []IntervalEvent

	// Costs is the histogram of modeled per-op service costs, where a
	// source provides them (the live cache observes one per Get/Put;
	// the trace simulator leaves it empty). Merging histograms is
	// commutative, so aggregated recorders stay order-independent.
	Costs CostHist
}

// NewRecorder returns a Recorder sampling every window measured
// accesses; window 0 selects DefaultWindow.
func NewRecorder(window uint64) *Recorder {
	if window == 0 {
		window = DefaultWindow
	}
	return &Recorder{window: window}
}

// Window implements Probe.
func (r *Recorder) Window() uint64 { return r.window }

// CacheAccess implements Probe.
func (r *Recorder) CacheAccess(ev AccessEvent) {
	c := &r.Classes[ev.Class]
	c.Accesses++
	if ev.Hit {
		c.Hits++
		if ev.LineDirty {
			c.HitsDirty++
		} else {
			c.HitsClean++
		}
	} else {
		c.Misses++
	}
}

// CacheFill implements Probe.
func (r *Recorder) CacheFill(ev FillEvent) {
	c := &r.Classes[ev.Class]
	c.Fills++
	if ev.Dirty {
		c.FillsDirty++
	}
}

// CacheEvict implements Probe.
func (r *Recorder) CacheEvict(ev EvictEvent) {
	if ev.Dirty {
		r.EvictDirty++
	} else {
		r.EvictClean++
	}
}

// CacheBypass implements Probe.
func (r *Recorder) CacheBypass(ev BypassEvent) {
	r.Classes[ev.Class].Bypasses++
}

// Retarget implements Probe.
func (r *Recorder) Retarget(ev RetargetEvent) {
	r.Retargets = append(r.Retargets, ev)
}

// Policy implements Probe.
func (r *Recorder) Policy(ev PolicyEvent) {
	for i := range r.PolicyCounts {
		pc := &r.PolicyCounts[i]
		if pc.Policy == ev.Policy && pc.Kind == ev.Kind {
			pc.Count++
			pc.Last = ev.Value
			return
		}
	}
	r.PolicyCounts = append(r.PolicyCounts, PolicyCount{
		Policy: ev.Policy, Kind: ev.Kind, Count: 1, Last: ev.Value,
	})
}

// IntervalEnd implements Probe.
func (r *Recorder) IntervalEnd(ev IntervalEvent) {
	r.Intervals = append(r.Intervals, ev)
}

// FinalTarget returns the last retarget decision, or -1 when the
// predictor never fired (non-RWP policies, short runs).
func (r *Recorder) FinalTarget() int {
	if len(r.Retargets) == 0 {
		return -1
	}
	return r.Retargets[len(r.Retargets)-1].Target
}

// Evictions returns the total eviction count.
func (r *Recorder) Evictions() uint64 { return r.EvictClean + r.EvictDirty }
