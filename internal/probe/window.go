package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WindowSchema versions the cluster shard-window journal. Windows are
// keyed by operation count — never wall clock — so a journal is a pure
// function of the routed stream and the shard-manager's decisions can
// be reproduced bit-identically from it (internal/cluster pins that
// with a replay test).
const WindowSchema = "rwp-cluster-windows-v1"

// ShardWindow is one ring shard's load sample over one op-count
// window, as observed by the cluster router: op-rate split by class,
// the p99 of the deterministic per-op service costs (queue-depth
// proxy, see internal/cluster), and the shard's replica count at the
// window boundary. The shard manager consumes exactly these records —
// nothing else — which is what makes its decisions replayable.
type ShardWindow struct {
	// Window is the 0-based window index (window boundaries fall every
	// WindowOps routed operations).
	Window int
	// Shard is the ring shard index.
	Shard int
	// Reads and Writes count the shard's routed operations in the
	// window (a write to R replicas counts once — it is one stream op).
	Reads  uint64
	Writes uint64
	// P99Cost is the 99th percentile of the shard's read service costs
	// in the window (0 when the shard saw no reads).
	P99Cost int
	// Replicas is the shard's replica count at the window's end, before
	// the manager acts on this window.
	Replicas int
}

// windowHeader identifies a shard-window journal.
type windowHeader struct {
	T         string `json:"t"` // "header"
	Schema    string `json:"schema"`
	Desc      string `json:"desc"`
	WindowOps int    `json:"window_ops"`
}

// windowRecord is the JSONL form of one ShardWindow.
type windowRecord struct {
	T        string `json:"t"` // "window"
	Window   int    `json:"window"`
	Shard    int    `json:"shard"`
	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	P99Cost  int    `json:"p99_cost"`
	Replicas int    `json:"replicas"`
}

// WriteShardWindows serializes a cluster run's shard-window log as
// canonical JSONL (sorted keys, fixed record order), the same
// discipline as the run journals: two logs of the same run are
// byte-identical. desc labels the run; windowOps is the op-count
// window width.
func WriteShardWindows(w io.Writer, desc string, windowOps int, ws []ShardWindow) error {
	bw := bufio.NewWriter(w)
	emit := func(v any) error {
		line, err := canonicalLine(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := emit(windowHeader{T: "header", Schema: WindowSchema, Desc: desc, WindowOps: windowOps}); err != nil {
		return err
	}
	for _, s := range ws {
		if err := emit(windowRecord{
			T: "window", Window: s.Window, Shard: s.Shard,
			Reads: s.Reads, Writes: s.Writes,
			P99Cost: s.P99Cost, Replicas: s.Replicas,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadShardWindows decodes a shard-window journal, rejecting unknown
// schemas and record types — like the run journals, it is versioned
// data, not a log to be skimmed.
func ReadShardWindows(r io.Reader) (desc string, windowOps int, ws []ShardWindow, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var disc struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			return "", 0, nil, fmt.Errorf("probe: windows line %d: %w", lineNo, err)
		}
		switch disc.T {
		case "header":
			var h windowHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return "", 0, nil, fmt.Errorf("probe: windows line %d: %w", lineNo, err)
			}
			if h.Schema != WindowSchema {
				return "", 0, nil, fmt.Errorf("probe: windows schema %q, want %q", h.Schema, WindowSchema)
			}
			desc, windowOps, sawHeader = h.Desc, h.WindowOps, true
		case "window":
			var rec windowRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return "", 0, nil, fmt.Errorf("probe: windows line %d: %w", lineNo, err)
			}
			ws = append(ws, ShardWindow{
				Window: rec.Window, Shard: rec.Shard,
				Reads: rec.Reads, Writes: rec.Writes,
				P99Cost: rec.P99Cost, Replicas: rec.Replicas,
			})
		default:
			return "", 0, nil, fmt.Errorf("probe: windows line %d: unknown record type %q", lineNo, disc.T)
		}
	}
	if err := sc.Err(); err != nil {
		return "", 0, nil, fmt.Errorf("probe: reading windows: %w", err)
	}
	if !sawHeader {
		return "", 0, nil, fmt.Errorf("probe: windows journal has no header")
	}
	return desc, windowOps, ws, nil
}
