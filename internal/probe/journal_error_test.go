package probe

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// validHeader is a line ReadJournal accepts, used as a prefix where a
// test needs decoding to get past the header.
const validHeader = `{"desc":"d","kind":"single","schema":"` + JournalSchema + `","t":"header","window":100}` + "\n"

func TestReadJournalDecodeErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		input string
		want  string // substring of the error
	}{
		{"empty input", "", "no header"},
		{"blank lines only", "\n\n\n", "no header"},
		{"malformed json", "{not json}\n", "line 1"},
		{"missing header", `{"t":"evictions","clean":1,"dirty":2}` + "\n", "no header"},
		{"wrong schema", `{"schema":"rwp-journal-v0","t":"header"}` + "\n", `schema "rwp-journal-v0"`},
		{"unknown record type", validHeader + `{"t":"bogus"}` + "\n", `unknown record type "bogus"`},
		{"unknown class", validHeader + `{"t":"class","class":"prefetch"}` + "\n", `unknown class "prefetch"`},
		{"type mismatch in record", validHeader + `{"t":"retarget","interval":"three"}` + "\n", "line 2"},
		{"malformed second line", validHeader + "{]\n", "line 2"},
		{"bad result record", validHeader + `{"t":"result","ipc":"fast"}` + "\n", "line 2"},
		{"bad evictions record", validHeader + `{"t":"evictions","clean":-1}` + "\n", "line 2"},
		{"bad policy record", validHeader + `{"t":"policy","count":"many"}` + "\n", "line 2"},
		{"bad interval record", validHeader + `{"t":"interval","index":"first"}` + "\n", "line 2"},
		{"bad header types", `{"t":"header","schema":5}` + "\n", "line 1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j, err := ReadJournal(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("ReadJournal accepted %q: %+v", tc.input, j)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// errReader fails after yielding its prefix, exercising the scanner
// error path.
type errReader struct {
	prefix io.Reader
	err    error
	done   bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if !r.done {
		n, err := r.prefix.Read(p)
		if err == io.EOF {
			r.done = true
			return n, nil
		}
		return n, err
	}
	return 0, r.err
}

func TestReadJournalReaderError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	_, err := ReadJournal(&errReader{prefix: strings.NewReader(validHeader), err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("ReadJournal error = %v, want wrapped %v", err, sentinel)
	}
}

func TestReadJournalOversizedLine(t *testing.T) {
	// The scanner caps lines at 4 MiB; a longer line must surface as an
	// error, not a silent truncation.
	long := validHeader + `{"t":"policy","kind":"` + strings.Repeat("x", 5*1024*1024) + `"}` + "\n"
	if _, err := ReadJournal(strings.NewReader(long)); err == nil {
		t.Fatal("ReadJournal accepted a 5MiB line")
	}
}

func TestReadJournalBlankLinesBetweenRecords(t *testing.T) {
	// Blank lines are tolerated (line numbers still count them).
	input := validHeader + "\n" + `{"t":"evictions","clean":3,"dirty":4}` + "\n"
	j, err := ReadJournal(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if j.EvictClean != 3 || j.EvictDirty != 4 {
		t.Fatalf("evictions = %d/%d", j.EvictClean, j.EvictDirty)
	}
}
