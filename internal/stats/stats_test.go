package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if !almost(AMean(xs), 7.0/3) {
		t.Errorf("AMean = %v", AMean(xs))
	}
	if !almost(GeoMean(xs), 2) {
		t.Errorf("GeoMean = %v", GeoMean(xs))
	}
	if !almost(HMean(xs), 3/(1+0.5+0.25)) {
		t.Errorf("HMean = %v", HMean(xs))
	}
}

// TestEmptyMeans pins the documented sentinel: every mean returns
// exactly EmptyMean for both nil and zero-length slices.
func TestEmptyMeans(t *testing.T) {
	for _, m := range []struct {
		name string
		mean func([]float64) float64
	}{{"AMean", AMean}, {"GeoMean", GeoMean}, {"HMean", HMean}} {
		name, mean := m.name, m.mean
		for _, xs := range [][]float64{nil, {}} {
			if got := mean(xs); got != EmptyMean { //rwplint:allow floateq — exact: the empty sentinel is exactly EmptyMean
				t.Errorf("%s(%v) = %v, want EmptyMean (%v)", name, xs, got, EmptyMean)
			}
		}
	}
}

func TestMeanInequality(t *testing.T) {
	// Property: HMean <= GeoMean <= AMean for positive inputs.
	f := func(raw [5]uint16) bool {
		xs := make([]float64, 5)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		h, g, a := HMean(xs), GeoMean(xs), AMean(xs)
		return h <= g+1e-9 && g <= a+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestSpeedup(t *testing.T) {
	if !almost(Speedup(1.05, 1.0), 1.05) {
		t.Error("Speedup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero base accepted")
		}
	}()
	Speedup(1, 0)
}

func TestPerKilo(t *testing.T) {
	if !almost(PerKilo(5, 1000), 5) {
		t.Errorf("PerKilo = %v", PerKilo(5, 1000))
	}
	if PerKilo(5, 0) != 0 { //rwplint:allow floateq — exact: zero-instruction MPKI is exactly 0
		t.Error("PerKilo with zero instructions must be 0")
	}
}

func TestMultiprogramMetrics(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 1.0}
	if !almost(Throughput(shared), 1.5) {
		t.Error("Throughput wrong")
	}
	if !almost(WeightedSpeedup(shared, alone), 1.5) {
		t.Error("WeightedSpeedup wrong")
	}
	// Harmonic of 0.5 and 1.0 = 2/(2+1) = 2/3.
	if !almost(HarmonicSpeedup(shared, alone), 2.0/3) {
		t.Errorf("HarmonicSpeedup = %v", HarmonicSpeedup(shared, alone))
	}
}

func TestWeightedSpeedupMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestPercent(t *testing.T) {
	if got := Percent(1.05); got != "+5.0%" {
		t.Errorf("Percent(1.05) = %q", got)
	}
	if got := Percent(0.97); got != "-3.0%" {
		t.Errorf("Percent(0.97) = %q", got)
	}
}
