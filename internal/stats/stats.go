// Package stats provides the summary metrics used throughout the
// evaluation: means (arithmetic, geometric, harmonic), speedups, MPKI,
// and the multiprogrammed metrics (throughput, weighted speedup,
// harmonic-mean fairness) from the paper's 4-core experiments.
package stats

import (
	"fmt"
	"math"
)

// EmptyMean is what every mean in this package returns for an empty
// (or nil) slice. A mean over nothing is mathematically undefined; the
// evaluation pipeline prefers a well-defined sentinel over a panic so
// that an experiment with a filtered-out benchmark set renders "0.000"
// rows instead of crashing mid-suite. Callers that must distinguish
// "empty" from a true zero should check len() themselves — no positive
// measurement set can produce a 0 mean.
const EmptyMean = 0.0

// GeoMean returns the geometric mean of xs. It panics on non-positive
// inputs (speedups and IPCs are positive by construction) and returns
// EmptyMean for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return EmptyMean
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// AMean returns the arithmetic mean (EmptyMean for empty input).
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return EmptyMean
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HMean returns the harmonic mean. It panics on non-positive inputs
// and returns EmptyMean for an empty slice.
func HMean(xs []float64) float64 {
	if len(xs) == 0 {
		return EmptyMean
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: HMean of non-positive value %v", x))
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Speedup returns the relative performance of `ipc` over `base` (1.0 =
// equal). It panics if base is non-positive.
func Speedup(ipc, base float64) float64 {
	if base <= 0 {
		panic(fmt.Sprintf("stats: Speedup with non-positive base %v", base))
	}
	return ipc / base
}

// PerKilo normalizes events to per-thousand-instructions (e.g. MPKI).
func PerKilo(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(instructions)
}

// Throughput is the sum of per-core IPCs (the paper's "system
// throughput" for the +6 % 4-core headline).
func Throughput(ipcs []float64) float64 {
	sum := 0.0
	for _, x := range ipcs {
		sum += x
	}
	return sum
}

// WeightedSpeedup is Σ IPC_shared[i] / IPC_alone[i].
func WeightedSpeedup(shared, alone []float64) float64 {
	if len(shared) != len(alone) {
		panic("stats: WeightedSpeedup length mismatch")
	}
	sum := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			panic(fmt.Sprintf("stats: alone IPC %v must be positive", alone[i]))
		}
		sum += shared[i] / alone[i]
	}
	return sum
}

// HarmonicSpeedup is the harmonic mean of per-core relative slowdowns —
// the fairness-oriented multiprogram metric.
func HarmonicSpeedup(shared, alone []float64) float64 {
	if len(shared) != len(alone) {
		panic("stats: HarmonicSpeedup length mismatch")
	}
	rel := make([]float64, len(shared))
	for i := range shared {
		if alone[i] <= 0 || shared[i] <= 0 {
			panic("stats: HarmonicSpeedup requires positive IPCs")
		}
		rel[i] = shared[i] / alone[i]
	}
	return HMean(rel)
}

// Percent renders a ratio as a signed percent delta over 1.0:
// Percent(1.05) = "+5.0%".
func Percent(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
