package cache

import (
	"testing"
	"testing/quick"

	"rwp/internal/mem"
)

// fifoPolicy is a minimal self-contained policy for exercising the cache
// model without importing internal/policy (avoiding an import cycle in
// tests).
type fifoPolicy struct {
	r    StateReader
	next []int
}

func (p *fifoPolicy) Name() string { return "fifo-test" }
func (p *fifoPolicy) Attach(r StateReader) {
	p.r = r
	p.next = make([]int, r.NumSets())
}
func (p *fifoPolicy) OnHit(int, int, AccessInfo) {}
func (p *fifoPolicy) Victim(set int, _ AccessInfo) (int, bool) {
	for w := 0; w < p.r.Ways(); w++ {
		if !p.r.State(set, w).Valid {
			return w, false
		}
	}
	w := p.next[set]
	p.next[set] = (w + 1) % p.r.Ways()
	return w, false
}
func (p *fifoPolicy) OnEvict(int, int, AccessInfo) {}
func (p *fifoPolicy) OnFill(int, int, AccessInfo)  {}

// bypassAllPolicy bypasses every fill.
type bypassAllPolicy struct{ fifoPolicy }

func (p *bypassAllPolicy) Victim(int, AccessInfo) (int, bool) { return 0, true }

func testCache(t *testing.T, sizeBytes, ways int, p Policy) *Cache {
	t.Helper()
	c, err := New(Config{Name: "test", SizeBytes: sizeBytes, Ways: ways, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "x", SizeBytes: 4096, Ways: 4, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.Sets() != 16 {
		t.Fatalf("Sets() = %d, want 16", good.Sets())
	}
	bad := []Config{
		{SizeBytes: 4096, Ways: 0, LineSize: 64},
		{SizeBytes: 4096, Ways: 4, LineSize: 60},
		{SizeBytes: 4000, Ways: 4, LineSize: 64},
		{SizeBytes: 4096 * 3, Ways: 4, LineSize: 64}, // 48 sets, not a power of two
		{SizeBytes: 0, Ways: 4, LineSize: 64},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewRejectsNilPolicy(t *testing.T) {
	if _, err := New(Config{Name: "x", SizeBytes: 4096, Ways: 4, LineSize: 64}, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := testCache(t, 4096, 4, &fifoPolicy{})
	line := mem.LineAddr(0x100)
	res := c.Access(line, 0, DemandLoad, 0)
	if res.Hit {
		t.Fatal("cold access hit")
	}
	res = c.Access(line, 0, DemandLoad, 0)
	if !res.Hit {
		t.Fatal("second access missed")
	}
	st := c.Stats()
	if st.Accesses[DemandLoad] != 2 || st.Hits[DemandLoad] != 1 || st.Misses[DemandLoad] != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// testCacheSingleSet builds a one-set cache of the given associativity.
func testCacheSingleSet(t *testing.T, ways int, p Policy) *Cache {
	t.Helper()
	return testCache(t, 64*ways, ways, p)
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	c := testCacheSingleSet(t, 2, &fifoPolicy{})
	// Fill way 0 dirty, way 1 clean.
	c.Access(1, 0, DemandStore, 0)
	c.Access(2, 0, DemandLoad, 0)
	// Third distinct line evicts way 0 (FIFO), which is dirty.
	res := c.Access(3, 0, DemandLoad, 0)
	if res.Hit {
		t.Fatal("expected miss")
	}
	if !res.Writeback || res.WritebackLine != 1 {
		t.Fatalf("expected writeback of line 1, got %+v", res)
	}
	// Fourth distinct line evicts way 1, which is clean.
	res = c.Access(4, 0, DemandLoad, 0)
	if res.Writeback {
		t.Fatalf("clean eviction produced writeback: %+v", res)
	}
	st := c.Stats()
	if st.Evictions != 2 || st.DirtyEvict != 1 {
		t.Fatalf("eviction stats wrong: %+v", st)
	}
}

func TestStoreHitDirtiesLine(t *testing.T) {
	c := testCacheSingleSet(t, 2, &fifoPolicy{})
	c.Access(1, 0, DemandLoad, 0) // fill clean
	set, way, ok := c.Lookup(1)
	if !ok || c.State(set, way).Dirty {
		t.Fatal("load fill should be clean")
	}
	c.Access(1, 0, DemandStore, 0) // store hit
	if !c.State(set, way).Dirty {
		t.Fatal("store hit did not dirty the line")
	}
}

func TestWritebackClassFillsDirty(t *testing.T) {
	c := testCacheSingleSet(t, 2, &fifoPolicy{})
	c.Access(7, 0, Writeback, 0)
	set, way, ok := c.Lookup(7)
	if !ok {
		t.Fatal("writeback miss did not allocate")
	}
	if !c.State(set, way).Dirty {
		t.Fatal("writeback fill must be dirty")
	}
}

func TestBypass(t *testing.T) {
	c := testCacheSingleSet(t, 2, &bypassAllPolicy{})
	res := c.Access(1, 0, DemandLoad, 0)
	if res.Hit || !res.Bypassed {
		t.Fatalf("expected bypass, got %+v", res)
	}
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("bypassed line was cached")
	}
	st := c.Stats()
	if st.Bypasses != 1 || st.Fills != 0 {
		t.Fatalf("bypass stats wrong: %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := testCacheSingleSet(t, 2, &fifoPolicy{})
	c.Access(1, 0, DemandStore, 0)
	dirty, present := c.Invalidate(1)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", dirty, present)
	}
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("line present after invalidate")
	}
	dirty, present = c.Invalidate(1)
	if present || dirty {
		t.Fatal("invalidating an absent line reported presence")
	}
}

func TestSetIndexDistribution(t *testing.T) {
	c := testCache(t, 4096, 4, &fifoPolicy{}) // 16 sets
	for i := 0; i < 16; i++ {
		if got := c.SetIndex(mem.LineAddr(i)); got != i {
			t.Fatalf("SetIndex(%d) = %d", i, got)
		}
	}
	if got := c.SetIndex(mem.LineAddr(16)); got != 0 {
		t.Fatalf("SetIndex(16) = %d, want 0", got)
	}
}

func TestStatsInvariantsQuick(t *testing.T) {
	// Property: for any access stream, hits+misses == accesses per class,
	// fills+bypasses == total misses, valid lines per set <= ways, and no
	// duplicate tags within a set.
	f := func(ops []uint16) bool {
		c := testCache(t, 2048, 4, &fifoPolicy{}) // 8 sets
		for _, op := range ops {
			line := mem.LineAddr(op % 512)
			class := Class(op % 3)
			c.Access(line, mem.Addr(op), class, 0)
		}
		st := c.Stats()
		for cl := 0; cl < 3; cl++ {
			if st.Hits[cl]+st.Misses[cl] != st.Accesses[cl] {
				return false
			}
		}
		if st.Fills+st.Bypasses != st.TotalMisses() {
			return false
		}
		for s := 0; s < c.NumSets(); s++ {
			if c.ValidWays(s) > c.Ways() {
				return false
			}
			seen := map[mem.LineAddr]bool{}
			for w := 0; w < c.Ways(); w++ {
				ls := c.State(s, w)
				if !ls.Valid {
					continue
				}
				if seen[ls.Tag] {
					return false
				}
				seen[ls.Tag] = true
				if c.SetIndex(ls.Tag) != s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyWaysMatchesState(t *testing.T) {
	c := testCache(t, 1024, 4, &fifoPolicy{}) // 4 sets
	c.Access(0, 0, DemandStore, 0)
	c.Access(4, 0, DemandStore, 0) // same set 0
	c.Access(8, 0, DemandLoad, 0)
	if got := c.DirtyWays(0); got != 2 {
		t.Fatalf("DirtyWays = %d, want 2", got)
	}
	if got := c.ValidWays(0); got != 3 {
		t.Fatalf("ValidWays = %d, want 3", got)
	}
}

func TestResetStats(t *testing.T) {
	c := testCacheSingleSet(t, 2, &fifoPolicy{})
	c.Access(1, 0, DemandLoad, 0)
	c.ResetStats()
	if c.Stats().TotalAccesses() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	// State survives reset: the line is still cached.
	if res := c.Access(1, 0, DemandLoad, 0); !res.Hit {
		t.Fatal("cache contents lost on stats reset")
	}
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.Accesses[DemandLoad] = 3
	a.Misses[DemandLoad] = 1
	b.Accesses[DemandLoad] = 2
	b.DirtyEvict = 5
	a.Add(b)
	if a.Accesses[DemandLoad] != 5 || a.DirtyEvict != 5 || a.Misses[DemandLoad] != 1 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestClassPredicates(t *testing.T) {
	if !DemandLoad.IsRead() || DemandLoad.IsWrite() {
		t.Error("DemandLoad predicates wrong")
	}
	if DemandStore.IsRead() || !DemandStore.IsWrite() {
		t.Error("DemandStore predicates wrong")
	}
	if Writeback.IsRead() || !Writeback.IsWrite() {
		t.Error("Writeback predicates wrong")
	}
	if DemandLoad.String() != "load" || Writeback.String() != "writeback" {
		t.Error("Class strings wrong")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio(DemandLoad) != 0 { //rwplint:allow floateq — exact: zero-access ratio is exactly 0
		t.Fatal("zero-access miss ratio must be 0")
	}
	s.Accesses[DemandLoad] = 4
	s.Misses[DemandLoad] = 1
	if s.MissRatio(DemandLoad) != 0.25 { //rwplint:allow floateq — exact: 1/4 is exactly representable
		t.Fatalf("MissRatio = %v", s.MissRatio(DemandLoad))
	}
}
