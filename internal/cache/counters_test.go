package cache

import (
	"testing"
	"testing/quick"

	"rwp/internal/mem"
)

// recount computes valid/dirty counts from scratch for comparison with
// the incrementally maintained counters.
func recount(c *Cache, set int) (valid, dirty int) {
	for w := 0; w < c.Ways(); w++ {
		ls := c.State(set, w)
		if !ls.Valid {
			continue
		}
		valid++
		if ls.Dirty {
			dirty++
		}
	}
	return valid, dirty
}

func TestIncrementalCountersMatchRecountQuick(t *testing.T) {
	// Property: after any access/invalidate sequence, the O(1) counters
	// agree with a full rescan in every set, for both store semantics.
	f := func(ops []uint16, storeFillsClean bool) bool {
		cfg := Config{Name: "t", SizeBytes: 2048, Ways: 4, LineSize: 64,
			StoreFillsClean: storeFillsClean}
		c, err := New(cfg, &fifoPolicy{})
		if err != nil {
			return false
		}
		for _, op := range ops {
			line := mem.LineAddr(op % 256)
			switch op % 5 {
			case 4:
				c.Invalidate(line)
			default:
				c.Access(line, mem.Addr(op), Class(op%3), 0)
			}
		}
		for s := 0; s < c.NumSets(); s++ {
			v, d := recount(c, s)
			if c.ValidWays(s) != v || c.DirtyWays(s) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreFillsCleanSemantics(t *testing.T) {
	cfg := Config{Name: "llc", SizeBytes: 64 * 2, Ways: 2, LineSize: 64, StoreFillsClean: true}
	c, err := New(cfg, &fifoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Demand-store miss fills clean.
	c.Access(1, 0x10, DemandStore, 0)
	set, way, ok := c.Lookup(1)
	if !ok || c.State(set, way).Dirty {
		t.Fatal("RFO fill must be clean under StoreFillsClean")
	}
	// Demand-store hit does not dirty either.
	c.Access(1, 0x20, DemandStore, 0)
	if c.State(set, way).Dirty {
		t.Fatal("store hit dirtied an RFO line under StoreFillsClean")
	}
	// The eventual writeback does dirty it.
	c.Access(1, 0x30, Writeback, 0)
	if !c.State(set, way).Dirty {
		t.Fatal("writeback did not dirty the line")
	}
	if c.State(set, way).PC != 0x30 {
		t.Fatal("writeback PC not recorded")
	}
	if c.DirtyWays(set) != 1 {
		t.Fatalf("dirty count %d", c.DirtyWays(set))
	}
}

func TestFirstLevelSemanticsUnchanged(t *testing.T) {
	// Default (StoreFillsClean=false): stores dirty immediately.
	c, err := New(Config{Name: "l1", SizeBytes: 64 * 2, Ways: 2, LineSize: 64}, &fifoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1, 0x10, DemandStore, 0)
	set, way, _ := c.Lookup(1)
	if !c.State(set, way).Dirty {
		t.Fatal("store fill must be dirty at the first level")
	}
}
