// Package cache implements the set-associative, write-back, write-allocate
// cache model at the heart of the simulator, together with the replacement
// policy hook interface that every mechanism in this repo (LRU, DIP,
// DRRIP, SHiP, UCP, RWP, RRP) plugs into.
//
// The model is a tag store only: no data is carried, as in trace-driven
// LLC studies (CMP$im and successors). Accesses are classified as demand
// loads, demand stores, or writebacks arriving from an upper level; the
// distinction matters because the paper's whole premise is that lines that
// serve loads are critical while lines that only absorb writes are not.
package cache

import (
	"fmt"

	"rwp/internal/mem"
	"rwp/internal/probe"
)

// Class is the kind of request arriving at a cache level.
type Class uint8

const (
	// DemandLoad is a read that a core is waiting on.
	DemandLoad Class = iota
	// DemandStore is a write-allocate fill triggered by a store.
	DemandStore
	// Writeback is a dirty eviction arriving from the level above; it is
	// never on the critical path.
	Writeback
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case DemandLoad:
		return "load"
	case DemandStore:
		return "store"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsRead reports whether the access reads the line's data (only demand
// loads do).
func (c Class) IsRead() bool { return c == DemandLoad }

// IsWrite reports whether the access dirties the line.
func (c Class) IsWrite() bool { return c == DemandStore || c == Writeback }

// AccessInfo carries everything a replacement policy may condition on.
type AccessInfo struct {
	// Line is the line address being accessed.
	Line mem.LineAddr
	// PC is the program counter of the triggering instruction (zero for
	// writebacks, which have no single PC).
	PC mem.Addr
	// Class is the request class.
	Class Class
	// Core identifies the requesting core in shared caches (0 for
	// single-core runs and for writebacks tagged by their owner).
	Core int
}

// LineState is the externally visible state of one way.
type LineState struct {
	Tag   mem.LineAddr
	Valid bool
	Dirty bool
	// Core is the core that last filled or wrote the line (for shared-
	// cache accounting and per-core partitioning policies).
	Core int
	// PC is the program counter that filled or last wrote the line. It
	// travels with dirty evictions (Result.WritebackPC) so lower levels
	// can index PC-based predictors (RRP) on writebacks — the kind of
	// plumbing that makes RRP "complex" in the paper's terms.
	PC mem.Addr
}

// StateReader gives policies read access to the tag store they manage.
type StateReader interface {
	// NumSets returns the number of sets.
	NumSets() int
	// Ways returns the associativity.
	Ways() int
	// State returns the state of the given way.
	State(set, way int) LineState
	// ValidWays returns the number of valid lines in set (O(1)).
	ValidWays(set int) int
	// DirtyWays returns the number of valid dirty lines in set (O(1)).
	DirtyWays(set int) int
}

// Policy is the replacement/insertion/bypass mechanism of a cache.
//
// The cache calls exactly one of OnHit or (Victim, then OnFill) per
// access; OnEvict runs before OnFill when the victim way held a valid
// line. A policy that returns bypass=true from Victim sees neither
// OnEvict nor OnFill for that access.
type Policy interface {
	// Name returns a short identifier used in reports.
	Name() string
	// Attach hands the policy its cache's geometry and state view. It is
	// called exactly once, before any other method.
	Attach(r StateReader)
	// OnHit is invoked when ai hits way in set.
	OnHit(set, way int, ai AccessInfo)
	// Victim picks the way to evict for a fill of ai into set, or
	// requests a bypass (the line is not cached). Invalid ways should be
	// preferred by every sane policy; the cache does not enforce it.
	Victim(set int, ai AccessInfo) (way int, bypass bool)
	// OnEvict is invoked when the valid line in the given way is about to
	// be replaced (or invalidated).
	OnEvict(set, way int, ai AccessInfo)
	// OnFill is invoked after ai's line has been installed in way.
	OnFill(set, way int, ai AccessInfo)
}

// Stats counts cache events. Hits+Misses per class always equals the
// class's access count; Fills+Bypasses equals total misses.
type Stats struct {
	Accesses   [3]uint64 // indexed by Class
	Hits       [3]uint64
	Misses     [3]uint64
	Fills      uint64
	Bypasses   uint64
	Evictions  uint64
	DirtyEvict uint64 // evictions that produced a writeback to below
}

// ReadMisses returns demand-load misses — the quantity RWP minimizes.
func (s Stats) ReadMisses() uint64 { return s.Misses[DemandLoad] }

// ReadAccesses returns demand-load accesses.
func (s Stats) ReadAccesses() uint64 { return s.Accesses[DemandLoad] }

// TotalAccesses sums accesses over all classes.
func (s Stats) TotalAccesses() uint64 {
	return s.Accesses[DemandLoad] + s.Accesses[DemandStore] + s.Accesses[Writeback]
}

// TotalMisses sums misses over all classes.
func (s Stats) TotalMisses() uint64 {
	return s.Misses[DemandLoad] + s.Misses[DemandStore] + s.Misses[Writeback]
}

// TotalHits sums hits over all classes.
func (s Stats) TotalHits() uint64 {
	return s.Hits[DemandLoad] + s.Hits[DemandStore] + s.Hits[Writeback]
}

// MissRatio returns misses/accesses for the given class (0 if no accesses).
func (s Stats) MissRatio(c Class) float64 {
	if s.Accesses[c] == 0 {
		return 0
	}
	return float64(s.Misses[c]) / float64(s.Accesses[c])
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	for i := 0; i < 3; i++ {
		s.Accesses[i] += o.Accesses[i]
		s.Hits[i] += o.Hits[i]
		s.Misses[i] += o.Misses[i]
	}
	s.Fills += o.Fills
	s.Bypasses += o.Bypasses
	s.Evictions += o.Evictions
	s.DirtyEvict += o.DirtyEvict
}

// Config describes a cache level.
type Config struct {
	// Name labels the level in reports ("L1D", "LLC", ...).
	Name string
	// SizeBytes is the total capacity; must be Ways*LineSize*2^k.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineSize is the block size in bytes; must be a power of two.
	LineSize int
	// StoreFillsClean selects lower-level semantics for demand stores:
	// the store's data is absorbed by the level above (an RFO), so a
	// DemandStore here neither dirties on hit nor fills dirty — the
	// modified data arrives later as a Writeback. False (the zero value)
	// is first-level semantics: stores write this cache directly.
	StoreFillsClean bool
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineSize) }

// Validate checks the config for internal consistency.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d must be a positive power of two", c.Name, c.LineSize)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.Ways*c.LineSize) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*line (%d)", c.Name, c.SizeBytes, c.Ways*c.LineSize)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets is not a power of two", c.Name, sets)
	}
	return nil
}

// Result reports what an access did.
type Result struct {
	// Hit is true if the line was present.
	Hit bool
	// Bypassed is true if the policy declined to cache a missing line.
	Bypassed bool
	// WritebackLine holds the evicted dirty line when Writeback is true;
	// the caller (hierarchy) forwards it to the level below.
	WritebackLine mem.LineAddr
	// WritebackPC is the PC that last wrote the evicted dirty line.
	WritebackPC mem.Addr
	// Writeback is true when the fill evicted a dirty line.
	Writeback bool
}

// Cache is a single tag-store level.
type Cache struct {
	cfg    Config
	shift  uint
	mask   uint64
	lines  []LineState // sets*ways, row-major by set
	valid  []int16     // per-set valid-line count
	dirty  []int16     // per-set dirty-line count
	policy Policy
	stats  Stats
	// probe receives instrumentation events; nil (the default) disables
	// them at the cost of one branch per event site.
	probe probe.Probe
}

// New builds a cache with the given geometry and policy. The policy is
// attached before New returns.
func New(cfg Config, p Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("cache %s: nil policy", cfg.Name)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	c := &Cache{
		cfg:   cfg,
		shift: shift,
		mask:  uint64(cfg.Sets() - 1),
		lines: make([]LineState, cfg.Sets()*cfg.Ways),
		valid: make([]int16, cfg.Sets()),
		dirty: make([]int16, cfg.Sets()),
	}
	c.policy = p
	p.Attach(c)
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.shift }

// NumSets implements StateReader.
func (c *Cache) NumSets() int { return int(c.mask) + 1 } //rwplint:allow ctrwidth — bounded: mask = Sets()-1 and Sets is an int

// Ways implements StateReader.
func (c *Cache) Ways() int { return c.cfg.Ways }

// State implements StateReader.
func (c *Cache) State(set, way int) LineState { return c.lines[set*c.cfg.Ways+way] }

// Stats returns a copy of the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (used after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Policy returns the attached policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetProbe attaches an instrumentation probe (nil detaches). Probes
// observe only: attaching one never changes any Result or Stats bit.
func (c *Cache) SetProbe(p probe.Probe) { c.probe = p }

// TotalDirty returns the number of valid dirty lines across all sets —
// the dirty partition's actual occupancy (O(sets), for interval
// snapshots).
func (c *Cache) TotalDirty() int {
	n := 0
	for _, d := range c.dirty {
		n += int(d)
	}
	return n
}

// TotalValid returns the number of valid lines across all sets.
func (c *Cache) TotalValid() int {
	n := 0
	for _, v := range c.valid {
		n += int(v)
	}
	return n
}

// SetIndex maps a line address to its set.
func (c *Cache) SetIndex(line mem.LineAddr) int { return int(uint64(line) & c.mask) } //rwplint:allow ctrwidth — bounded: masked to [0, NumSets)

// Lookup reports whether line is present, without updating any state.
func (c *Cache) Lookup(line mem.LineAddr) (set, way int, ok bool) {
	set = c.SetIndex(line)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if ls := &c.lines[base+w]; ls.Valid && ls.Tag == line {
			return set, w, true
		}
	}
	return set, -1, false
}

// Access performs one reference of the given class against the cache,
// applying write-allocate on demand-store misses and allocate-on-writeback
// for writeback misses (non-inclusive victim-style handling: a writeback
// that misses is installed dirty).
func (c *Cache) Access(line mem.LineAddr, pc mem.Addr, class Class, core int) Result {
	ai := AccessInfo{Line: line, PC: pc, Class: class, Core: core}
	dirtying := class == Writeback || (class == DemandStore && !c.cfg.StoreFillsClean)
	c.stats.Accesses[class]++
	set, way, ok := c.Lookup(line)
	if ok {
		c.stats.Hits[class]++
		ls := &c.lines[set*c.cfg.Ways+way]
		if c.probe != nil {
			c.probe.CacheAccess(probe.AccessEvent{Level: c.cfg.Name, Class: probe.Class(class), Hit: true, LineDirty: ls.Dirty})
		}
		if dirtying {
			if !ls.Dirty {
				c.dirty[set]++
			}
			ls.Dirty = true
			ls.Core = core
			ls.PC = pc
		}
		c.policy.OnHit(set, way, ai)
		return Result{Hit: true}
	}
	c.stats.Misses[class]++
	if c.probe != nil {
		c.probe.CacheAccess(probe.AccessEvent{Level: c.cfg.Name, Class: probe.Class(class), Hit: false})
	}
	victim, bypass := c.policy.Victim(set, ai)
	if bypass {
		c.stats.Bypasses++
		if c.probe != nil {
			c.probe.CacheBypass(probe.BypassEvent{Level: c.cfg.Name, Class: probe.Class(class)})
		}
		return Result{Bypassed: true}
	}
	if victim < 0 || victim >= c.cfg.Ways {
		panic(fmt.Sprintf("cache %s: policy %s returned victim way %d (assoc %d)",
			c.cfg.Name, c.policy.Name(), victim, c.cfg.Ways))
	}
	var res Result
	ls := &c.lines[set*c.cfg.Ways+victim]
	if ls.Valid {
		c.stats.Evictions++
		if c.probe != nil {
			c.probe.CacheEvict(probe.EvictEvent{Level: c.cfg.Name, Class: probe.Class(class), Dirty: ls.Dirty})
		}
		if ls.Dirty {
			c.stats.DirtyEvict++
			c.dirty[set]--
			res.Writeback = true
			res.WritebackLine = ls.Tag
			res.WritebackPC = ls.PC
		}
		c.policy.OnEvict(set, victim, ai)
	} else {
		c.valid[set]++
	}
	*ls = LineState{Tag: line, Valid: true, Dirty: dirtying, Core: core, PC: pc}
	if ls.Dirty {
		c.dirty[set]++
	}
	c.stats.Fills++
	if c.probe != nil {
		c.probe.CacheFill(probe.FillEvent{Level: c.cfg.Name, Class: probe.Class(class), Dirty: ls.Dirty})
	}
	c.policy.OnFill(set, victim, ai)
	return res
}

// Invalidate removes the line if present, returning whether it was dirty.
// The policy sees an OnEvict with a zero-class AccessInfo.
func (c *Cache) Invalidate(line mem.LineAddr) (wasDirty, wasPresent bool) {
	set, way, ok := c.Lookup(line)
	if !ok {
		return false, false
	}
	ls := &c.lines[set*c.cfg.Ways+way]
	dirty := ls.Dirty
	c.stats.Evictions++
	if dirty {
		c.stats.DirtyEvict++
		c.dirty[set]--
	}
	c.valid[set]--
	c.policy.OnEvict(set, way, AccessInfo{Line: line})
	*ls = LineState{}
	return dirty, true
}

// DirtyWays implements StateReader: the number of valid dirty lines in
// set, maintained incrementally (O(1)). Partitioning policies query it on
// every victim selection.
func (c *Cache) DirtyWays(set int) int { return int(c.dirty[set]) }

// ValidWays implements StateReader: the number of valid lines in set,
// maintained incrementally (O(1)).
func (c *Cache) ValidWays(set int) int { return int(c.valid[set]) }
