package hier

import (
	"testing"
	"testing/quick"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

// TestWriteConservationQuick checks the hierarchy-wide write invariant:
// every DRAM write originates from exactly one store (a store dirties a
// line once per residency chain, and the dirty bit travels down without
// duplication), so DRAM writes can never exceed the number of stores.
// The RFO-fills-clean fix exists precisely because this bound was
// violated (each written line reached DRAM twice).
func TestWriteConservationQuick(t *testing.T) {
	small := func() Config {
		cfg := DefaultConfig()
		cfg.L1.SizeBytes = 4 << 10
		cfg.L2.SizeBytes = 16 << 10
		cfg.LLC.SizeBytes = 64 << 10
		return cfg
	}
	f := func(ops []uint32, polIdx uint8) bool {
		policies := []string{"lru", "rwp", "rrp", "drrip"}
		cfg := small()
		cfg.LLCPolicy = policies[int(polIdx)%len(policies)]
		h, err := New(cfg)
		if err != nil {
			return false
		}
		stores := uint64(0)
		for i, op := range ops {
			addr := mem.Addr(op%(1<<18)) * 64
			if op%3 == 0 {
				h.Store(0, uint64(i), addr, mem.Addr(op%128)*4)
				stores++
			} else {
				h.Load(0, uint64(i), addr, mem.Addr(op%128)*4)
			}
		}
		return h.DRAM().Stats().Writes <= stores
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackChainDepth verifies that a dirty line evicted from L1
// cascades correctly: L2 absorbs it; when L2 overflows the line arrives
// at the LLC as a writeback; when the LLC evicts it, DRAM gets exactly
// one write.
func TestWritebackChainDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 64 * 8 // 1 set
	cfg.L2.SizeBytes = 64 * 8
	cfg.LLC.SizeBytes = 64 * 16
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Store(0, 0, 0, 0x99)
	// Push through L1 only: line lands dirty in L2.
	for i := 1; i <= 8; i++ {
		h.Load(0, uint64(i*100), mem.Addr(i)*64, 0x10)
	}
	if got := h.L2(0).Stats().Accesses[cache.Writeback]; got != 1 {
		t.Fatalf("L2 saw %d writebacks, want 1", got)
	}
	if got := h.LLC().Stats().Accesses[cache.Writeback]; got != 0 {
		t.Fatalf("LLC saw %d writebacks too early", got)
	}
	// Push through L2: line reaches the LLC dirty.
	for i := 9; i <= 16; i++ {
		h.Load(0, uint64(i*100), mem.Addr(i)*64, 0x10)
	}
	if got := h.LLC().Stats().Accesses[cache.Writeback]; got != 1 {
		t.Fatalf("LLC saw %d writebacks, want 1", got)
	}
	if got := h.DRAM().Stats().Writes; got != 0 {
		t.Fatalf("DRAM written too early: %d", got)
	}
	// Push through the LLC: exactly one DRAM write.
	for i := 17; i <= 40; i++ {
		h.Load(0, uint64(i*100), mem.Addr(i)*64, 0x10)
	}
	if got := h.DRAM().Stats().Writes; got != 1 {
		t.Fatalf("DRAM writes = %d, want exactly 1", got)
	}
}

// TestRFOThenWritebackSingleDRAMWrite reproduces the double-write bug
// scenario end to end under RWP (which evicts dirty lines aggressively):
// a stream of stores must produce at most one DRAM write per line.
func TestRFOThenWritebackSingleDRAMWrite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 8 << 10
	cfg.L2.SizeBytes = 32 << 10
	cfg.LLC.SizeBytes = 128 << 10
	cfg.LLCPolicy = "rwp"
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	for i := 0; i < n; i++ {
		h.Store(0, uint64(i*4), mem.Addr(i)*64, 0x70) // write-once stream
	}
	writes := h.DRAM().Stats().Writes
	if writes > n {
		t.Fatalf("%d DRAM writes for %d written lines: write duplication", writes, n)
	}
}
