package hier

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

func TestValidateMoreErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.L1.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid L1 accepted")
	}
	bad = DefaultConfig()
	bad.L1Lat = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
	bad = DefaultConfig()
	bad.DRAM.Latency = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid DRAM accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestLineShift(t *testing.T) {
	h := mustNew(t, DefaultConfig())
	if h.LineShift() != 6 {
		t.Fatalf("LineShift = %d, want 6 (64 B lines)", h.LineShift())
	}
}

func TestBypassedWritebackReachesDRAM(t *testing.T) {
	// Under RRP with a trained write-only PC, LLC-bypassed writebacks
	// must still land in DRAM (write-through on bypass).
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 4 << 10
	cfg.L2.SizeBytes = 16 << 10
	cfg.LLC.SizeBytes = 1 << 20 // 1024 sets: training sets stay a minority
	cfg.LLCPolicy = "rrp"
	h := mustNew(t, cfg)
	for i := 0; i < 100_000; i++ {
		h.Store(0, uint64(i*4), mem.Addr(i)*64, 0xdead0)
	}
	llc := h.LLC().Stats()
	if llc.Bypasses == 0 {
		t.Fatal("RRP never bypassed a write-only stream")
	}
	dram := h.DRAM().Stats()
	// All evicted dirty data must be accounted: writes = LLC dirty
	// evictions + bypassed writes.
	if dram.Writes == 0 {
		t.Fatal("no DRAM writes despite store stream")
	}
	if dram.Writes < llc.Bypasses/2 {
		t.Fatalf("DRAM writes %d implausibly low for %d bypasses", dram.Writes, llc.Bypasses)
	}
}

func TestWritebackHitDoesNotRecurse(t *testing.T) {
	// A writeback that hits in L2 must not propagate to the LLC.
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 64 * 8 // 1 set
	h := mustNew(t, cfg)
	h.Store(0, 0, 0, 0x99) // line 0 dirty in L1, resident in L2
	// Evict from L1; L2 still holds the line → writeback hit at L2.
	for i := 1; i <= 8; i++ {
		h.Load(0, uint64(i*100), mem.Addr(i)*64*64, 0x10)
	}
	if got := h.L2(0).Stats().Hits[cache.Writeback]; got != 1 {
		t.Fatalf("L2 writeback hits = %d, want 1", got)
	}
	if got := h.LLC().Stats().Accesses[cache.Writeback]; got != 0 {
		t.Fatalf("LLC saw %d writebacks for an L2-resident line", got)
	}
}
