package hier

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"

	// Register the non-baseline policies in the shared registry.
	_ "rwp/internal/core"
	_ "rwp/internal/rrp"
	_ "rwp/internal/ucp"
)

func mustNew(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	bad = DefaultConfig()
	bad.L1.LineSize = 32
	if err := bad.Validate(); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	bad = DefaultConfig()
	bad.LLCPolicy = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty policy accepted")
	}
	bad = DefaultConfig()
	bad.LLCPolicy = "no-such-policy"
	if _, err := New(bad); err == nil {
		t.Error("unknown policy accepted by New")
	}
}

func TestLatenciesByHitLevel(t *testing.T) {
	h := mustNew(t, DefaultConfig())
	addr := mem.Addr(0x10000)

	// Cold: miss everywhere → DRAM latency dominates.
	lat := h.Load(0, 0, addr, 0x400)
	if lat < h.Config().DRAM.Latency {
		t.Fatalf("cold load latency %d < DRAM latency", lat)
	}
	// Now resident in L1.
	if lat := h.Load(0, 1000, addr, 0x400); lat != h.Config().L1Lat {
		t.Fatalf("L1 hit latency %d, want %d", lat, h.Config().L1Lat)
	}
}

func TestL2HitLatency(t *testing.T) {
	cfg := DefaultConfig()
	h := mustNew(t, cfg)
	// Fill line, then evict it from L1 only by touching many same-set
	// lines (L1 is 64 sets 8 ways; lines 64 apart share an L1 set).
	base := mem.Addr(0)
	h.Load(0, 0, base, 0x400)
	for i := 1; i <= 8; i++ {
		h.Load(0, uint64(i*1000), base+mem.Addr(i*64*64), 0x400)
	}
	lat := h.Load(0, 100000, base, 0x400)
	want := cfg.L1Lat + cfg.L2Lat
	if lat != want {
		t.Fatalf("L2 hit latency %d, want %d", lat, want)
	}
}

func TestLLCSeesOnlyPrivateMisses(t *testing.T) {
	h := mustNew(t, DefaultConfig())
	addr := mem.Addr(0x40)
	for i := 0; i < 100; i++ {
		h.Load(0, uint64(i*10), addr, 0x400)
	}
	// One cold miss reached the LLC; 99 L1 hits did not.
	if got := h.LLC().Stats().Accesses[cache.DemandLoad]; got != 1 {
		t.Fatalf("LLC saw %d demand loads, want 1", got)
	}
	if got := h.L1(0).Stats().Hits[cache.DemandLoad]; got != 99 {
		t.Fatalf("L1 hits = %d, want 99", got)
	}
}

func TestDirtyDataReachesDRAMExactlyOnce(t *testing.T) {
	// Write a line, then force it down every level; the write must reach
	// DRAM exactly once (one writeback), not be lost and not duplicated.
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 64 * 8 // 1 set, 8 ways
	cfg.L2.SizeBytes = 64 * 8
	cfg.LLC.SizeBytes = 64 * 16
	h := mustNew(t, cfg)

	h.Store(0, 0, 0, 0x500) // dirty line 0
	// Evict through all levels with a long stream of loads.
	for i := 1; i <= 64; i++ {
		h.Load(0, uint64(i*1000), mem.Addr(i*64), 0x400)
	}
	if got := h.DRAM().Stats().Writes; got != 1 {
		t.Fatalf("DRAM writes = %d, want exactly 1", got)
	}
}

func TestWritebackCarriesStorePC(t *testing.T) {
	// The LLC must see writebacks with the PC of the dirtying store.
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 64 * 8
	cfg.L2.SizeBytes = 64 * 8
	cfg.LLCPolicy = "rrp" // PC-consuming policy must not break
	h := mustNew(t, cfg)
	h.Store(0, 0, 0, 0xabc0)
	for i := 1; i <= 32; i++ {
		h.Load(0, uint64(i*1000), mem.Addr(i*64), 0x400)
	}
	// The dirty line was written back into the LLC.
	if got := h.LLC().Stats().Accesses[cache.Writeback]; got == 0 {
		t.Fatal("LLC saw no writebacks")
	}
	// Its LLC copy (if resident) must carry the store PC.
	if set, way, ok := h.LLC().Lookup(0); ok {
		if pc := h.LLC().State(set, way).PC; pc != 0xabc0 {
			t.Fatalf("LLC line PC = %#x, want 0xabc0", pc)
		}
	}
}

func TestWritebacksAreNotCritical(t *testing.T) {
	// A store's completion latency must not include downstream writeback
	// handling beyond buffering.
	cfg := DefaultConfig()
	h := mustNew(t, cfg)
	lat := h.Store(0, 0, 0x1000, 0x500)
	if lat < cfg.DRAM.Latency {
		t.Fatalf("cold store (write-allocate) latency %d; expected a fill", lat)
	}
	// Store hit is L1-fast.
	if lat := h.Store(0, 1000, 0x1000, 0x500); lat != cfg.L1Lat {
		t.Fatalf("store hit latency %d, want %d", lat, cfg.L1Lat)
	}
}

func TestMulticorePrivacy(t *testing.T) {
	h := mustNew(t, MulticoreConfig(2))
	h.Load(0, 0, 0x40, 0x400)
	// Core 1's private caches must not contain core 0's line.
	if _, _, ok := h.L1(1).Lookup(mem.Addr(0x40).DefaultLine()); ok {
		t.Fatal("core 1 L1 contains core 0's fill")
	}
	// But the shared LLC does.
	if _, _, ok := h.LLC().Lookup(mem.Addr(0x40).DefaultLine()); !ok {
		t.Fatal("shared LLC missing the fill")
	}
	// Core 1 loading the same line hits in LLC (cheaper than DRAM).
	lat := h.Load(1, 1000, 0x40, 0x400)
	want := h.Config().L1Lat + h.Config().L2Lat + h.Config().LLCLat
	if lat != want {
		t.Fatalf("cross-core LLC hit latency %d, want %d", lat, want)
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	h := mustNew(t, DefaultConfig())
	h.Load(0, 0, 0x40, 0x400)
	h.ResetStats()
	if h.LLC().Stats().TotalAccesses() != 0 || h.DRAM().Stats().Reads != 0 {
		t.Fatal("stats not reset")
	}
	if lat := h.Load(0, 10, 0x40, 0x400); lat != h.Config().L1Lat {
		t.Fatal("cache contents lost on stats reset")
	}
}

func TestEveryPolicyRunsInHierarchy(t *testing.T) {
	for _, pol := range []string{"lru", "dip", "drrip", "ship", "rwp", "rrp", "ucp"} {
		cfg := DefaultConfig()
		cfg.LLC.SizeBytes = 64 << 10 // small for speed
		cfg.LLCPolicy = pol
		h := mustNew(t, cfg)
		for i := 0; i < 50000; i++ {
			a := mem.Addr(i*64*7) % (1 << 22)
			if i%3 == 0 {
				h.Store(0, uint64(i*4), a, 0x500)
			} else {
				h.Load(0, uint64(i*4), a, 0x400)
			}
		}
		llc := h.LLC().Stats()
		if llc.TotalAccesses() == 0 {
			t.Errorf("%s: LLC never accessed", pol)
		}
		for cl := 0; cl < 3; cl++ {
			if llc.Hits[cl]+llc.Misses[cl] != llc.Accesses[cl] {
				t.Errorf("%s: class %d stats inconsistent", pol, cl)
			}
		}
	}
}
