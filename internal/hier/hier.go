// Package hier assembles the memory hierarchy: per-core private L1D and
// L2 caches over a shared last-level cache and a DRAM channel.
//
// Levels are non-inclusive and write-back/write-allocate. Dirty evictions
// propagate down as Writeback-class accesses, carrying the PC of the
// dirtying store (cache.Result.WritebackPC) so PC-indexed LLC policies
// (RRP) can classify them. Demand misses propagate down as their own
// class, so the LLC — where the interesting policies live — sees demand
// loads, demand stores (RFO fills) and writebacks distinctly, matching
// the paper's access taxonomy.
package hier

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/dram"
	"rwp/internal/mem"
	"rwp/internal/policy"
	"rwp/internal/probe"
)

// Config describes a hierarchy. LLCPolicy names a registered policy; the
// private levels always use LRU (as in the paper — only the LLC policy is
// under study).
type Config struct {
	Cores     int
	L1        cache.Config
	L2        cache.Config
	LLC       cache.Config
	L1Lat     uint64
	L2Lat     uint64
	LLCLat    uint64
	DRAM      dram.Config
	LLCPolicy string
}

// DefaultConfig returns the paper-style single-core system: 32 KiB/8-way
// L1D, 256 KiB/8-way L2, 2 MiB/16-way LLC, 200-cycle DRAM.
func DefaultConfig() Config {
	return Config{
		Cores:     1,
		L1:        cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineSize: 64},
		L2:        cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineSize: 64},
		LLC:       cache.Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, LineSize: 64},
		L1Lat:     3,
		L2Lat:     12,
		LLCLat:    30,
		DRAM:      dram.DefaultConfig(),
		LLCPolicy: "lru",
	}
}

// MulticoreConfig returns the paper-style 4-core system: private L1/L2
// per core and a 4 MiB/16-way shared LLC.
func MulticoreConfig(cores int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.LLC.SizeBytes = 4 << 20
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("hier: Cores %d must be positive", c.Cores)
	}
	for _, cc := range []cache.Config{c.L1, c.L2, c.LLC} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.L1.LineSize != c.L2.LineSize || c.L2.LineSize != c.LLC.LineSize {
		return fmt.Errorf("hier: line sizes differ across levels")
	}
	if c.L1Lat == 0 || c.L2Lat == 0 || c.LLCLat == 0 {
		return fmt.Errorf("hier: level latencies must be positive")
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.LLCPolicy == "" {
		return fmt.Errorf("hier: empty LLC policy name")
	}
	return nil
}

// private is one core's L1D+L2 pair.
type private struct {
	l1 *cache.Cache
	l2 *cache.Cache
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg   Config
	priv  []private
	llc   *cache.Cache
	dram  *dram.DRAM
	shift uint
	// llcReadMiss attributes shared-LLC demand-load misses to the
	// requesting core (the shared cache.Stats cannot).
	llcReadMiss []uint64
}

// New builds a hierarchy. The LLC policy is constructed fresh from the
// registry; private levels get fresh LRU instances.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Below the first level, demand-store misses are RFO fetches: the
	// modified data lives in L1 and arrives later as a writeback.
	cfg.L2.StoreFillsClean = true
	cfg.LLC.StoreFillsClean = true
	llcPol, err := policy.New(cfg.LLCPolicy)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New(cfg.LLC, llcPol)
	if err != nil {
		return nil, err
	}
	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, llc: llc, dram: d, shift: llc.LineShift(),
		llcReadMiss: make([]uint64, cfg.Cores)}
	for i := 0; i < cfg.Cores; i++ {
		l1p, err := policy.New("lru")
		if err != nil {
			return nil, err
		}
		l1, err := cache.New(cfg.L1, l1p)
		if err != nil {
			return nil, err
		}
		l2p, err := policy.New("lru")
		if err != nil {
			return nil, err
		}
		l2, err := cache.New(cfg.L2, l2p)
		if err != nil {
			return nil, err
		}
		h.priv = append(h.priv, private{l1: l1, l2: l2})
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LLC exposes the shared cache (for stats and policy introspection).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// SetProbe attaches a probe to the LLC and, when the LLC policy is
// itself instrumentable, to the policy. Private levels stay silent —
// the studied mechanisms all live at the LLC.
func (h *Hierarchy) SetProbe(p probe.Probe) {
	h.llc.SetProbe(p)
	if ip, ok := h.llc.Policy().(probe.Instrumentable); ok {
		ip.SetProbe(p)
	}
}

// DRAM exposes the memory channel.
func (h *Hierarchy) DRAM() *dram.DRAM { return h.dram }

// L1 returns core i's L1D.
func (h *Hierarchy) L1(core int) *cache.Cache { return h.priv[core].l1 }

// L2 returns core i's L2.
func (h *Hierarchy) L2(core int) *cache.Cache { return h.priv[core].l2 }

// LineShift returns log2(line size).
func (h *Hierarchy) LineShift() uint { return h.shift }

// ResetStats zeroes every level's counters (after warmup). Cache contents
// and policy state survive.
func (h *Hierarchy) ResetStats() {
	for i := range h.priv {
		h.priv[i].l1.ResetStats()
		h.priv[i].l2.ResetStats()
	}
	h.llc.ResetStats()
	h.dram.ResetStats()
	for i := range h.llcReadMiss {
		h.llcReadMiss[i] = 0
	}
}

// LLCReadMisses returns the shared-LLC demand-load misses attributed to
// the given core since the last stats reset.
func (h *Hierarchy) LLCReadMisses(core int) uint64 { return h.llcReadMiss[core] }

// llcAccess performs one access at the LLC, forwarding any dirty eviction
// to DRAM. It returns whether the access hit and whether it was bypassed.
func (h *Hierarchy) llcAccess(now uint64, line mem.LineAddr, pc mem.Addr, class cache.Class, core int) cache.Result {
	res := h.llc.Access(line, pc, class, core)
	if class == cache.DemandLoad && !res.Hit && core >= 0 && core < len(h.llcReadMiss) {
		h.llcReadMiss[core]++
	}
	if res.Writeback {
		h.dram.Write(now)
	}
	if res.Bypassed && class != cache.DemandLoad {
		// A bypassed write goes straight to memory.
		h.dram.Write(now)
	}
	return res
}

// l2Access performs one access at a core's L2, recursing to the LLC on
// miss and forwarding L2 dirty evictions down as LLC writebacks. It
// returns the latency from `now` until the data is available to the L1.
func (h *Hierarchy) l2Access(now uint64, core int, line mem.LineAddr, pc mem.Addr, class cache.Class) uint64 {
	p := &h.priv[core]
	res := p.l2.Access(line, pc, class, core)
	lat := h.cfg.L2Lat
	if !res.Hit {
		if class == cache.Writeback {
			// Writeback allocated (or bypass-impossible: L2 is LRU);
			// eviction handling below. No latency contribution: the
			// writeback is off the critical path.
			lat = 0
		} else {
			llcRes := h.llcAccess(now+h.cfg.L2Lat, line, pc, class, core)
			switch {
			case llcRes.Hit:
				lat = h.cfg.L2Lat + h.cfg.LLCLat
			default:
				// Miss or bypass: data comes from DRAM.
				done := h.dram.Read(now + h.cfg.L2Lat + h.cfg.LLCLat)
				lat = done - now
			}
		}
	} else if class == cache.Writeback {
		lat = 0
	}
	if res.Writeback {
		h.llcAccess(now+lat, res.WritebackLine, res.WritebackPC, cache.Writeback, core)
	}
	return lat
}

// Load performs a demand load for core at cycle now, returning the load-
// to-use latency in cycles.
func (h *Hierarchy) Load(core int, now uint64, addr mem.Addr, pc mem.Addr) uint64 {
	line := addr.Line(h.shift)
	p := &h.priv[core]
	res := p.l1.Access(line, pc, cache.DemandLoad, core)
	if res.Hit {
		return h.cfg.L1Lat
	}
	lat := h.cfg.L1Lat + h.l2Access(now+h.cfg.L1Lat, core, line, pc, cache.DemandLoad)
	if res.Writeback {
		h.l2Access(now+lat, core, res.WritebackLine, res.WritebackPC, cache.Writeback)
	}
	return lat
}

// Store performs a demand store for core at cycle now, returning the
// cycles until the store leaves the store buffer.
func (h *Hierarchy) Store(core int, now uint64, addr mem.Addr, pc mem.Addr) uint64 {
	line := addr.Line(h.shift)
	p := &h.priv[core]
	res := p.l1.Access(line, pc, cache.DemandStore, core)
	if res.Hit {
		return h.cfg.L1Lat
	}
	lat := h.cfg.L1Lat + h.l2Access(now+h.cfg.L1Lat, core, line, pc, cache.DemandStore)
	if res.Writeback {
		h.l2Access(now+lat, core, res.WritebackLine, res.WritebackPC, cache.Writeback)
	}
	return lat
}
