// Package recency implements exact per-set recency stacks (true-LRU
// ordering) shared by the LRU-family policies (internal/policy), the RWP
// partitioned victim selection (internal/core) and the shadow-tag
// stack-distance samplers.
//
// A Stack holds the ways of one cache set ordered from most- to
// least-recently used; a Table packs one Stack per set into a single
// allocation.
package recency

import "fmt"

// MaxWays bounds the associativity a stack can track (ways are stored as
// bytes).
const MaxWays = 256

// Table maintains a recency ordering of ways for every set of a cache.
// Position 0 is MRU; position ways-1 is LRU. A fresh Table orders way 0
// as MRU through way ways-1 as LRU.
type Table struct {
	ways  int
	order []uint8 // sets*ways entries: order[set*ways+pos] = way at recency pos
}

// NewTable builds a Table for sets×ways.
func NewTable(sets, ways int) *Table {
	if sets <= 0 || ways <= 0 || ways > MaxWays {
		panic(fmt.Sprintf("recency: invalid geometry %dx%d", sets, ways))
	}
	t := &Table{ways: ways, order: make([]uint8, sets*ways)}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			t.order[s*ways+w] = uint8(w)
		}
	}
	return t
}

// Ways returns the per-set associativity.
func (t *Table) Ways() int { return t.ways }

// Sets returns the number of sets.
func (t *Table) Sets() int { return len(t.order) / t.ways }

func (t *Table) row(set int) []uint8 {
	return t.order[set*t.ways : (set+1)*t.ways]
}

// Dist returns the stack distance of way in set: 0 if MRU, ways-1 if LRU.
func (t *Table) Dist(set, way int) int {
	row := t.row(set)
	for i, w := range row {
		if int(w) == way {
			return i
		}
	}
	panic(fmt.Sprintf("recency: way %d not in set %d", way, set))
}

// Touch promotes way to MRU, preserving the relative order of the others.
func (t *Table) Touch(set, way int) {
	row := t.row(set)
	pos := -1
	for i, w := range row {
		if int(w) == way {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("recency: way %d not in set %d", way, set))
	}
	copy(row[1:pos+1], row[:pos])
	row[0] = uint8(way)
}

// InsertLRU demotes way to the LRU position, preserving the relative
// order of the others (the LIP insertion point).
func (t *Table) InsertLRU(set, way int) {
	row := t.row(set)
	pos := -1
	for i, w := range row {
		if int(w) == way {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("recency: way %d not in set %d", way, set))
	}
	copy(row[pos:], row[pos+1:])
	row[t.ways-1] = uint8(way)
}

// LRU returns the least-recently-used way of set.
func (t *Table) LRU(set int) int { return int(t.row(set)[t.ways-1]) }

// MRU returns the most-recently-used way of set.
func (t *Table) MRU(set int) int { return int(t.row(set)[0]) }

// At returns the way at recency position pos (0 = MRU).
func (t *Table) At(set, pos int) int { return int(t.row(set)[pos]) }

// LeastRecent returns the least-recently-used way of set among ways for
// which keep returns true, or -1 if none qualifies. RWP uses this to find
// the LRU line of the clean (or dirty) partition.
func (t *Table) LeastRecent(set int, keep func(way int) bool) int {
	row := t.row(set)
	for i := t.ways - 1; i >= 0; i-- {
		if w := int(row[i]); keep(w) {
			return w
		}
	}
	return -1
}
