package recency

import (
	"testing"
	"testing/quick"

	"rwp/internal/xrand"
)

func TestFreshOrder(t *testing.T) {
	tab := NewTable(4, 8)
	if tab.Ways() != 8 || tab.Sets() != 4 {
		t.Fatalf("geometry wrong: %dx%d", tab.Sets(), tab.Ways())
	}
	for s := 0; s < 4; s++ {
		if tab.MRU(s) != 0 || tab.LRU(s) != 7 {
			t.Fatalf("set %d fresh order wrong: mru=%d lru=%d", s, tab.MRU(s), tab.LRU(s))
		}
		for w := 0; w < 8; w++ {
			if tab.Dist(s, w) != w {
				t.Fatalf("fresh dist of way %d = %d", w, tab.Dist(s, w))
			}
		}
	}
}

func TestTouchPromotes(t *testing.T) {
	tab := NewTable(1, 4)
	tab.Touch(0, 2)
	// Expect order 2,0,1,3
	want := []int{2, 0, 1, 3}
	for pos, w := range want {
		if tab.At(0, pos) != w {
			t.Fatalf("pos %d = %d, want %d", pos, tab.At(0, pos), w)
		}
	}
	tab.Touch(0, 3)
	want = []int{3, 2, 0, 1}
	for pos, w := range want {
		if tab.At(0, pos) != w {
			t.Fatalf("after second touch pos %d = %d, want %d", pos, tab.At(0, pos), w)
		}
	}
}

func TestTouchMRUIsNoop(t *testing.T) {
	tab := NewTable(1, 4)
	tab.Touch(0, 1)
	before := []int{tab.At(0, 0), tab.At(0, 1), tab.At(0, 2), tab.At(0, 3)}
	tab.Touch(0, 1)
	for pos, w := range before {
		if tab.At(0, pos) != w {
			t.Fatal("touching the MRU way changed the order")
		}
	}
}

func TestInsertLRU(t *testing.T) {
	tab := NewTable(1, 4)
	tab.InsertLRU(0, 0)
	want := []int{1, 2, 3, 0}
	for pos, w := range want {
		if tab.At(0, pos) != w {
			t.Fatalf("pos %d = %d, want %d", pos, tab.At(0, pos), w)
		}
	}
	if tab.LRU(0) != 0 {
		t.Fatal("InsertLRU did not put way at LRU")
	}
}

func TestLRUStackProperty(t *testing.T) {
	// Property: Touch moves the touched way to distance 0, increments by
	// one the distance of every way previously more recent than it, and
	// leaves all others unchanged.
	f := func(ops []uint8) bool {
		const ways = 8
		tab := NewTable(1, ways)
		dist := func() [ways]int {
			var d [ways]int
			for w := 0; w < ways; w++ {
				d[w] = tab.Dist(0, w)
			}
			return d
		}
		for _, op := range ops {
			w := int(op) % ways
			before := dist()
			tab.Touch(0, w)
			after := dist()
			if after[w] != 0 {
				return false
			}
			for v := 0; v < ways; v++ {
				if v == w {
					continue
				}
				if before[v] < before[w] {
					if after[v] != before[v]+1 {
						return false
					}
				} else if after[v] != before[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderIsAlwaysPermutation(t *testing.T) {
	rng := xrand.New(42)
	tab := NewTable(2, 16)
	for i := 0; i < 10000; i++ {
		set := rng.Intn(2)
		w := rng.Intn(16)
		if rng.Intn(2) == 0 {
			tab.Touch(set, w)
		} else {
			tab.InsertLRU(set, w)
		}
		var seen [16]bool
		for pos := 0; pos < 16; pos++ {
			w := tab.At(set, pos)
			if seen[w] {
				t.Fatalf("iteration %d: way %d appears twice", i, w)
			}
			seen[w] = true
		}
	}
}

func TestLeastRecent(t *testing.T) {
	tab := NewTable(1, 4)
	// Fresh order: 0 MRU ... 3 LRU.
	got := tab.LeastRecent(0, func(w int) bool { return w%2 == 0 })
	if got != 2 {
		t.Fatalf("LRU even way = %d, want 2", got)
	}
	got = tab.LeastRecent(0, func(w int) bool { return false })
	if got != -1 {
		t.Fatalf("empty predicate returned %d, want -1", got)
	}
	got = tab.LeastRecent(0, func(w int) bool { return true })
	if got != tab.LRU(0) {
		t.Fatal("LeastRecent(true) != LRU")
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable(0, 4) did not panic")
		}
	}()
	NewTable(0, 4)
}
