package exps

import (
	"strings"
	"testing"
)

// tiny is a test-sized scale: enough accesses to warm the predictors and
// observe direction, small enough to keep the package test fast.
var tiny = Scale{Name: "tiny", Warmup: 60_000, Measure: 200_000, Mixes: 1, E8Phase: 300_000}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 { // E1..E11 + A1..A4
		t.Fatalf("%d experiments registered, want 15", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestE1Shape(t *testing.T) {
	s := NewSuite(tiny)
	tb, res, err := s.E1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 20 {
		t.Fatalf("E1 covered %d benchmarks", len(res.Rows))
	}
	for _, r := range res.Rows {
		sum := r.ReadOnly + r.ReadWrite + r.WriteOnly
		if r.Evicted > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%s: fractions sum to %v", r.Bench, sum)
		}
	}
	// The motivation must hold: a substantial mean write-only fraction.
	if res.MeanWriteOnly < 0.15 {
		t.Errorf("mean write-only fraction %.3f; motivation too weak", res.MeanWriteOnly)
	}
	if !strings.Contains(tb.String(), "write-only") {
		t.Error("table missing write-only column")
	}
}

func TestE2CriticalityShape(t *testing.T) {
	s := NewSuite(tiny)
	_, res, err := s.E2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// At DRAM-scale latency (200 cycles) loads must lose far more than
	// stores; at extreme latencies the store buffer legitimately
	// saturates too, so the asymmetry is checked where buffering holds.
	var p200 *E2Point
	for i := range res.Points {
		if res.Points[i].Latency == 200 {
			p200 = &res.Points[i]
		}
	}
	if p200 == nil {
		t.Fatal("no 200-cycle point")
	}
	if p200.LoadLoss < 2*p200.StoreLoss {
		t.Fatalf("load loss %.2f vs store loss %.2f: criticality asymmetry missing",
			p200.LoadLoss, p200.StoreLoss)
	}
	// Loss must be monotone in latency for loads.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].LoadLoss+1e-9 < res.Points[i-1].LoadLoss {
			t.Fatal("load loss not monotone in latency")
		}
	}
}

func TestE3HeadlineDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	_, res, err := s.E3()
	if err != nil {
		t.Fatal(err)
	}
	if res.GeoSensitive <= 1.02 {
		t.Fatalf("sensitive geomean %.4f; RWP must clearly beat LRU", res.GeoSensitive)
	}
	if res.GeoAll <= 1.0 {
		t.Fatalf("all-suite geomean %.4f; RWP must not lose overall", res.GeoAll)
	}
	// Insensitive benchmarks must be ~unaffected.
	if res.GeoInsensitive < 0.97 || res.GeoInsensitive > 1.03 {
		t.Fatalf("insensitive geomean %.4f; should be ~1.0", res.GeoInsensitive)
	}
	if len(res.Rows) != len(s.allBenches()) {
		t.Fatalf("%d rows for %d benches", len(res.Rows), len(s.allBenches()))
	}
}

func TestE5OverheadClaim(t *testing.T) {
	s := NewSuite(tiny)
	_, res, err := s.E5()
	if err != nil {
		t.Fatal(err)
	}
	if res.RWPOverRRP <= 0 || res.RWPOverRRP > 0.10 {
		t.Fatalf("RWP/RRP state ratio %.4f, want (0, 0.10] (paper 0.054)", res.RWPOverRRP)
	}
	if res.RWPKiB > 8 {
		t.Fatalf("RWP costs %.1f KiB", res.RWPKiB)
	}
	if len(res.Breakdowns) < 5 {
		t.Fatal("missing mechanisms in E5")
	}
}

func TestE8PartitionAdapts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	_, res, err := s.E8()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 (dirty reads) must demand a larger dirty partition than the
	// steady state of a write-once-dominated profile.
	if res.Phase1Mean < 2 {
		t.Fatalf("phase-1 dirty target %.2f; dirty-read phase not recognized", res.Phase1Mean)
	}
	if res.PerBench["lbm"] > res.PerBench["cactusADM"] {
		t.Fatalf("lbm target %.2f > cactusADM %.2f; ordering wrong",
			res.PerBench["lbm"], res.PerBench["cactusADM"])
	}
}

func TestE7MixDrawing(t *testing.T) {
	s := NewSuite(tiny)
	mixes := s.e7DrawMixes(8)
	if len(mixes) != 8 {
		t.Fatalf("%d mixes", len(mixes))
	}
	sens := map[string]bool{}
	for _, n := range s.sensitive() {
		sens[n] = true
	}
	for _, m := range mixes {
		if len(m) != 4 {
			t.Fatalf("mix size %d", len(m))
		}
		seen := map[string]bool{}
		nSens := 0
		for _, b := range m {
			if seen[b] {
				t.Fatalf("duplicate %s in mix %v", b, m)
			}
			seen[b] = true
			if sens[b] {
				nSens++
			}
		}
		if nSens < 2 {
			t.Fatalf("mix %v has %d sensitive members, want >= 2", m, nSens)
		}
	}
	// Deterministic.
	again := s.e7DrawMixes(8)
	for i := range mixes {
		for j := range mixes[i] {
			if mixes[i][j] != again[i][j] {
				t.Fatal("mix drawing not deterministic")
			}
		}
	}
}

func TestRunnerMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	a, err := s.runSingle("povray", "lru", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.runSingle("povray", "lru", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoized run differs")
	}
	st := s.Eng.Stats()
	if st.Executed != 1 {
		t.Fatalf("engine executed %d jobs, want 1 (duplicate must coalesce)", st.Executed)
	}
	if st.Coalesced != 1 {
		t.Fatalf("engine coalesced %d submissions, want 1", st.Coalesced)
	}
}

func TestInsensitiveIsComplement(t *testing.T) {
	s := NewSuite(tiny)
	all := len(s.allBenches())
	if len(s.sensitive())+len(s.insensitive()) != all {
		t.Fatal("sensitive + insensitive != all")
	}
	// A restricted suite scopes every list.
	s.Benches = []string{"sphinx3", "povray"}
	if len(s.allBenches()) != 2 || len(s.sensitive()) != 1 || len(s.insensitive()) != 1 {
		t.Fatalf("restricted suite lists wrong: all=%v sens=%v insens=%v",
			s.allBenches(), s.sensitive(), s.insensitive())
	}
}
