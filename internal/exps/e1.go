package exps

import (
	"rwp/internal/cache"
	"rwp/internal/hier"
	"rwp/internal/policy"
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/workload"
)

// E1 — motivation: what fraction of LLC lines ever serve a read?
//
// Every evicted LLC line is classified by its lifetime usage: read-only
// (served reads, never written), read+written, or write-only (never
// served a read — pure writeback/store residue LRU wastes space on).
// The paper's Figure-1 observation is that write-only lines are a large
// fraction in many applications.

// E1Row is one benchmark's classification.
type E1Row struct {
	Bench     string
	Evicted   uint64
	ReadOnly  float64 // fractions of evicted lines
	ReadWrite float64
	WriteOnly float64
}

// E1Result is the full experiment outcome.
type E1Result struct {
	Rows []E1Row
	// MeanWriteOnly is the arithmetic-mean write-only fraction.
	MeanWriteOnly float64
}

// lineClassifier wraps LRU and classifies lines at eviction. It is
// registered as "e1-classifier" so the standard hierarchy constructor can
// build it.
type lineClassifier struct {
	policy.LRU
	r        cache.StateReader
	wasRead  []bool
	wasWrite []bool

	readOnly  uint64
	readWrite uint64
	writeOnly uint64
}

func (p *lineClassifier) Name() string { return "e1-classifier" }

func (p *lineClassifier) Attach(r cache.StateReader) {
	p.LRU.Attach(r)
	p.r = r
	n := r.NumSets() * r.Ways()
	p.wasRead = make([]bool, n)
	p.wasWrite = make([]bool, n)
}

func (p *lineClassifier) idx(set, way int) int { return set*p.r.Ways() + way }

func (p *lineClassifier) OnHit(set, way int, ai cache.AccessInfo) {
	p.LRU.OnHit(set, way, ai)
	i := p.idx(set, way)
	if ai.Class.IsRead() {
		p.wasRead[i] = true
	} else {
		p.wasWrite[i] = true
	}
}

func (p *lineClassifier) OnEvict(set, way int, ai cache.AccessInfo) {
	p.LRU.OnEvict(set, way, ai)
	i := p.idx(set, way)
	switch {
	case p.wasRead[i] && p.wasWrite[i]:
		p.readWrite++
	case p.wasRead[i]:
		p.readOnly++
	default:
		p.writeOnly++
	}
}

func (p *lineClassifier) OnFill(set, way int, ai cache.AccessInfo) {
	p.LRU.OnFill(set, way, ai)
	i := p.idx(set, way)
	// The fill itself is the line's first use.
	p.wasRead[i] = ai.Class.IsRead()
	p.wasWrite[i] = ai.Class.IsWrite()
}

func init() {
	policy.Register("e1-classifier", func() cache.Policy { return &lineClassifier{} })
}

// e1Out is one benchmark's eviction-class counts (the cached result of
// the "e1" job kind).
type e1Out struct {
	ReadOnly  uint64
	ReadWrite uint64
	WriteOnly uint64
}

// planE1 enqueues one benchmark's classification run.
func (s *Suite) planE1(bench string, total uint64) *runner.Future[e1Out] {
	cfg := hier.DefaultConfig()
	cfg.LLCPolicy = "e1-classifier"
	key, err := runner.NewKey("e1", bench, struct {
		Bench string
		Total uint64
		Cfg   hier.Config
	}{bench, total, cfg})
	if err != nil {
		return runner.Failed[e1Out](err)
	}
	return runner.Submit(s.Eng, key, func() (e1Out, error) {
		prof, err := workload.Get(bench)
		if err != nil {
			return e1Out{}, err
		}
		h, err := hier.New(cfg)
		if err != nil {
			return e1Out{}, err
		}
		src := prof.NewSource()
		for i := uint64(0); i < total; i++ {
			a, err := src.Next()
			if err != nil {
				return e1Out{}, err
			}
			if a.Kind.IsRead() {
				h.Load(0, i, a.Addr, a.PC)
			} else {
				h.Store(0, i, a.Addr, a.PC)
			}
		}
		cl := h.LLC().Policy().(*lineClassifier)
		return e1Out{ReadOnly: cl.readOnly, ReadWrite: cl.readWrite, WriteOnly: cl.writeOnly}, nil
	})
}

// E1 runs the classification over every benchmark.
func (s *Suite) E1() (*report.Table, E1Result, error) {
	var res E1Result
	total := s.Scale.Warmup + s.Scale.Measure
	futs := make([]*runner.Future[e1Out], 0, len(s.allBenches()))
	for _, bench := range s.allBenches() {
		futs = append(futs, s.planE1(bench, total))
	}
	for i, bench := range s.allBenches() {
		cl, err := futs[i].Wait()
		if err != nil {
			return nil, res, err
		}
		ev := cl.ReadOnly + cl.ReadWrite + cl.WriteOnly
		row := E1Row{Bench: bench, Evicted: ev}
		if ev > 0 {
			row.ReadOnly = float64(cl.ReadOnly) / float64(ev)
			row.ReadWrite = float64(cl.ReadWrite) / float64(ev)
			row.WriteOnly = float64(cl.WriteOnly) / float64(ev)
		}
		res.Rows = append(res.Rows, row)
		res.MeanWriteOnly += row.WriteOnly
	}
	if len(res.Rows) > 0 {
		res.MeanWriteOnly /= float64(len(res.Rows))
	}

	t := report.New("E1: LLC line lifetime classification (fractions of evicted lines)",
		"bench", "evicted", "read-only", "read+write", "write-only")
	for _, r := range res.Rows {
		t.AddRow(r.Bench, report.I(r.Evicted), report.F(r.ReadOnly, 3),
			report.F(r.ReadWrite, 3), report.F(r.WriteOnly, 3))
	}
	t.AddRule()
	t.AddRow("amean", "", "", "", report.F(res.MeanWriteOnly, 3))
	t.Note = "write-only lines never serve a read: capacity LRU wastes, RWP reclaims"
	return t, res, nil
}
