package exps

import (
	"fmt"
	"testing"

	"rwp/internal/policy"
)

func TestAblationVariantsRegistered(t *testing.T) {
	var names []string
	for _, d := range a1StaticTargets {
		names = append(names, fmt.Sprintf("rwp-static-%d", d))
	}
	for _, n := range a2SamplerCounts {
		names = append(names, fmt.Sprintf("rwp-samp-%d", n))
	}
	for _, iv := range a3Intervals {
		names = append(names, fmt.Sprintf("rwp-int-%d", iv/1000))
	}
	for _, dc := range a3Decays {
		names = append(names, fmt.Sprintf("rwp-decay-%d", dc))
	}
	for _, n := range names {
		p, err := policy.New(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if p.Name() != "rwp" {
			t.Fatalf("%s built %q", n, p.Name())
		}
	}
}

func TestStaticVariantIsReallyStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	// A static all-dirty split must behave differently from static
	// no-dirty on a write-once-polluted workload: target 16 protects the
	// junk, target 0 evicts it.
	r0, err := s.runSingle("sphinx3", "rwp-static-0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := s.runSingle("sphinx3", "rwp-static-16", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.ReadMPKI >= r16.ReadMPKI {
		t.Fatalf("static-0 ReadMPKI %.2f >= static-16 %.2f; partition bound has no effect",
			r0.ReadMPKI, r16.ReadMPKI)
	}
}

func TestDynamicTracksGoodStaticOnOneBench(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	dyn, err := s.runSingle("sphinx3", "rwp", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := s.runSingle("sphinx3", "rwp-static-16", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.IPC <= worst.IPC {
		t.Fatalf("dynamic IPC %.3f <= all-dirty static %.3f", dyn.IPC, worst.IPC)
	}
}
