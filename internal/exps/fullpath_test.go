package exps

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsOnRestrictedSuite drives every registered
// experiment end to end on a four-benchmark scope at the tiny scale, so
// the full code path of each table — sweeps, ablation variants, the
// 4-core driver — is exercised in CI without the full suite's cost.
func TestEveryExperimentRunsOnRestrictedSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	s.Benches = []string{"sphinx3", "gcc", "povray", "lbm"} // 2 sensitive + 2 insensitive
	for _, e := range Registry() {
		tb, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := tb.String()
		if !strings.Contains(out, "==") || len(out) < 80 {
			t.Fatalf("%s produced an implausibly small table:\n%s", e.ID, out)
		}
		// Every table must render to CSV as well.
		var sb strings.Builder
		if err := tb.RenderCSV(&sb); err != nil {
			t.Fatalf("%s: CSV: %v", e.ID, err)
		}
	}
}

func TestAblationDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(tiny)
	s.Benches = []string{"sphinx3", "gcc"}
	_, a1, err := s.A1()
	if err != nil {
		t.Fatal(err)
	}
	// On a two-benchmark scope a single static split can legitimately win
	// (both workloads may want the same d, and statics pay no training
	// transient at tiny scale); the dynamic predictor only needs to stay
	// in the same league here. The across-suite claim is A1 at full scale.
	if a1.DynamicGeo < 0.90*a1.BestStatic {
		t.Fatalf("dynamic %.4f far below best static %.4f", a1.DynamicGeo, a1.BestStatic)
	}
	if a1.DynamicGeo <= 1.0 {
		t.Fatalf("dynamic predictor gained nothing: %.4f", a1.DynamicGeo)
	}
	// An all-dirty static split must clearly trail the dynamic one on
	// write-once-polluted workloads.
	if a1.StaticGeo[16] >= a1.DynamicGeo {
		t.Fatalf("static-16 %.4f >= dynamic %.4f", a1.StaticGeo[16], a1.DynamicGeo)
	}
	_, a2, err := s.A2()
	if err != nil {
		t.Fatal(err)
	}
	// More samplers must not be catastrophically worse than fewer.
	if a2.Geo[128] < 0.9*a2.Geo[4] {
		t.Fatalf("128 samplers (%.4f) much worse than 4 (%.4f)", a2.Geo[128], a2.Geo[4])
	}
}
