package exps

import (
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// A4 — evaluation of the RWPB extension (writeback bypass at dirty
// target 0): does routing predicted-useless writebacks around the LLC
// buy anything beyond plain RWP, and what does it do to memory write
// traffic?

// A4Row is one benchmark's RWP-vs-RWPB comparison.
type A4Row struct {
	Bench       string
	RWPSpeedup  float64 // over LRU
	RWPBSpeedup float64
	RWPWBPKI    float64
	RWPBWBPKI   float64
}

// A4Result is the experiment outcome.
type A4Result struct {
	Rows []A4Row
	// GeoRWP and GeoRWPB are geomean speedups over LRU (sensitive set).
	GeoRWP  float64
	GeoRWPB float64
}

// A4 runs the comparison.
func (s *Suite) A4() (*report.Table, A4Result, error) {
	var res A4Result
	type plan struct {
		bench         string
		lru, rwp, byp *runner.Future[sim.Result]
	}
	var plans []plan
	for _, bench := range s.sensitive() {
		plans = append(plans, plan{
			bench: bench,
			lru:   s.planSingle(bench, "lru", 0, 0),
			rwp:   s.planSingle(bench, "rwp", 0, 0),
			byp:   s.planSingle(bench, "rwpb", 0, 0),
		})
	}
	var spW, spB []float64
	for _, p := range plans {
		bench := p.bench
		lru, err := p.lru.Wait()
		if err != nil {
			return nil, res, err
		}
		w, err := p.rwp.Wait()
		if err != nil {
			return nil, res, err
		}
		b, err := p.byp.Wait()
		if err != nil {
			return nil, res, err
		}
		row := A4Row{
			Bench:       bench,
			RWPSpeedup:  stats.Speedup(w.IPC, lru.IPC),
			RWPBSpeedup: stats.Speedup(b.IPC, lru.IPC),
			RWPWBPKI:    w.WBPKI,
			RWPBWBPKI:   b.WBPKI,
		}
		res.Rows = append(res.Rows, row)
		spW = append(spW, row.RWPSpeedup)
		spB = append(spB, row.RWPBSpeedup)
	}
	res.GeoRWP = stats.GeoMean(spW)
	res.GeoRWPB = stats.GeoMean(spB)

	t := report.New("A4: RWPB extension (writeback bypass at target 0) vs RWP",
		"bench", "rwp speedup", "rwpb speedup", "rwp WBPKI", "rwpb WBPKI")
	for _, r := range res.Rows {
		t.AddRow(r.Bench, report.Pct(r.RWPSpeedup), report.Pct(r.RWPBSpeedup),
			report.F(r.RWPWBPKI, 2), report.F(r.RWPBWBPKI, 2))
	}
	t.AddRule()
	t.AddRow("geomean", report.Pct(res.GeoRWP), report.Pct(res.GeoRWPB))
	t.Note = "bypass spares the LLC churn of dead writebacks; DRAM writes are unchanged " +
		"(a dead dirty line reaches memory either way)"
	return t, res, nil
}
