package exps

import "testing"

// TestSensitivityLabelsMatchMeasurement validates the CacheSensitive
// flags the way the paper defines the subset: a benchmark is
// cache-sensitive iff growing the LLC measurably reduces its read
// misses. Every declared label must agree with a 1 MiB → 8 MiB sweep.
func TestSensitivityLabelsMatchMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy: 2 runs per benchmark")
	}
	s := NewSuite(tiny)
	sens := make(map[string]bool)
	for _, n := range s.sensitive() {
		sens[n] = true
	}
	for _, bench := range s.allBenches() {
		small, err := s.runSingle(bench, "lru", 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		big, err := s.runSingle(bench, "lru", 8<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		delta := small.ReadMPKI - big.ReadMPKI
		rel := 0.0
		if small.ReadMPKI > 0 {
			rel = delta / small.ReadMPKI
		}
		// Sensitive: at least 2 MPKI and 20% of misses recoverable by
		// capacity. Insensitive: below both thresholds.
		measured := delta > 2 && rel > 0.20
		if measured != sens[bench] {
			t.Errorf("%s: declared sensitive=%v but measured ΔrdMPKI=%.2f (%.0f%%) [1MiB=%.2f 8MiB=%.2f]",
				bench, sens[bench], delta, rel*100, small.ReadMPKI, big.ReadMPKI)
		}
	}
}
