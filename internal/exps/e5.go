package exps

import (
	"rwp/internal/core"
	"rwp/internal/hier"
	"rwp/internal/overhead"
	"rwp/internal/policy"
	"rwp/internal/report"
	"rwp/internal/rrp"
)

// E5 — storage overhead of each mechanism on the paper-scale LLC,
// computed bit-exactly from the implemented structures. Paper target:
// RWP needs only 5.4 % of RRP's state.

// E5Result is the experiment outcome.
type E5Result struct {
	Breakdowns []overhead.Breakdown
	// RWPOverRRP is RWP's state as a fraction of RRP's.
	RWPOverRRP float64
	// RWPKiB is RWP's absolute cost.
	RWPKiB float64
}

// E5 computes the accounting.
func (s *Suite) E5() (*report.Table, E5Result, error) {
	llc := hier.DefaultConfig().LLC
	bds := []overhead.Breakdown{
		overhead.LRU(llc),
		overhead.DIP(llc, policy.DefaultPSELBits),
		overhead.DRRIP(llc, policy.DefaultRRPVBits, policy.DefaultPSELBits),
		overhead.SHiP(llc, policy.DefaultRRPVBits, policy.DefaultSHCTBits, 3),
		overhead.RWP(llc, core.DefaultConfig()),
		overhead.RRP(llc, rrp.DefaultConfig()),
	}
	res := E5Result{Breakdowns: bds}
	var rwpB, rrpB overhead.Breakdown
	for _, b := range bds {
		switch b.Name {
		case "rwp":
			rwpB = b
		case "rrp":
			rrpB = b
		}
	}
	res.RWPOverRRP = overhead.Ratio(rwpB, rrpB)
	res.RWPKiB = float64(rwpB.TotalBits()) / 8192

	t := report.New("E5: mechanism state overhead (2 MiB 16-way LLC)",
		"mechanism", "bits", "KiB", "vs RRP")
	for _, b := range bds {
		t.AddRow(b.Name, report.I(b.TotalBits()),
			report.F(float64(b.TotalBits())/8192, 2),
			report.F(overhead.Ratio(b, rrpB)*100, 1)+"%")
	}
	t.Note = "paper target: RWP = 5.4% of RRP's state"
	return t, res, nil
}
