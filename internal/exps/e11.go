package exps

import (
	"fmt"

	"rwp/internal/hier"
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/workload"
	"rwp/internal/xrand"
)

// E11 — beyond the paper: core-count scaling. The paper evaluates 1 and
// 4 cores; this experiment sweeps 2/4/8 cores with the shared LLC scaled
// at 1 MiB per core and a fixed pair of cache-sensitive members per mix,
// so the sweep exposes RWP's benefit window: contended at small shared
// caches, absorbed once capacity swallows the read working sets anyway.

// E11Point is one core count's outcome.
type E11Point struct {
	Cores int
	// MeanThroughputVsLRU is amean over mixes of RWP/LRU throughput.
	MeanThroughputVsLRU float64
}

// E11Result is the sweep outcome.
type E11Result struct {
	Points []E11Point
}

// e11DrawMix draws one n-benchmark mix: half sensitive, half from the
// compute-bound pool, deterministic per (n, index).
func (s *Suite) e11DrawMix(rng *xrand.RNG, n int) []string {
	sens := s.sensitive()
	var fits []string
	for _, b := range s.insensitive() {
		if p, err := workload.Get(b); err == nil && p.MemIntensity < 0.3 {
			fits = append(fits, b)
		}
	}
	if len(fits) == 0 {
		fits = s.insensitive()
	}
	mix := make([]string, 0, n)
	used := map[string]bool{}
	add := func(pool []string) {
		// Prefer an unused member of pool; fall back to any unused
		// benchmark so small restricted suites cannot hang the draw.
		try := func(cands []string) bool {
			avail := 0
			for _, b := range cands {
				if !used[b] {
					avail++
				}
			}
			if avail == 0 {
				return false
			}
			for {
				b := cands[rng.Intn(len(cands))]
				if !used[b] {
					mix = append(mix, b)
					used[b] = true
					return true
				}
			}
		}
		if try(pool) || try(s.allBenches()) {
			return
		}
		mix = append(mix, pool[rng.Intn(len(pool))]) // degenerate: reuse
	}
	// Exactly two sensitive members regardless of core count: the read
	// pressure is held constant while the shared capacity grows with n,
	// exposing where the partitioning benefit saturates.
	for len(mix) < n {
		if len(mix) < 2 && len(used) < len(sens) {
			add(sens)
		} else {
			add(fits)
		}
	}
	return mix
}

// E11 runs the scaling sweep. The number of mixes per core count scales
// down with core count to keep runtime bounded.
func (s *Suite) E11() (*report.Table, E11Result, error) {
	var res E11Result
	rng := xrand.New(0xE11)
	mixesPer := s.Scale.Mixes
	if mixesPer > 4 {
		mixesPer = 4
	}
	coreCounts := []int{2, 4, 8}
	// Plan: the mixes are drawn first (one shared rng stream, so the
	// draw order — and therefore the mixes — match the sequential path
	// exactly), then every (mix, policy) run is enqueued.
	type mixPlan struct {
		mix      []string
		lru, rwp *runner.Future[sim.MultiResult]
	}
	plans := make(map[int][]mixPlan)
	for _, cores := range coreCounts {
		for m := 0; m < mixesPer; m++ {
			mix := s.e11DrawMix(rng, cores)
			opt := sim.DefaultOptions()
			opt.Hier = hier.MulticoreConfig(cores)
			opt.Hier.LLC.SizeBytes = cores << 20 // 1 MiB per core
			opt.Warmup = s.Scale.Warmup
			opt.Measure = s.Scale.Measure
			optLRU, optRWP := opt, opt
			optLRU.Hier.LLCPolicy = "lru"
			optRWP.Hier.LLCPolicy = "rwp"
			plans[cores] = append(plans[cores], mixPlan{
				mix: mix,
				lru: s.Eng.Multi(mix, optLRU),
				rwp: s.Eng.Multi(mix, optRWP),
			})
		}
	}
	for _, cores := range coreCounts {
		var ratios []float64
		for _, mp := range plans[cores] {
			lru, err := mp.lru.Wait()
			if err != nil {
				return nil, res, fmt.Errorf("exps: E11 %d-core mix %v: %w", cores, mp.mix, err)
			}
			rwp, err := mp.rwp.Wait()
			if err != nil {
				return nil, res, fmt.Errorf("exps: E11 %d-core mix %v: %w", cores, mp.mix, err)
			}
			ratios = append(ratios, rwp.Throughput()/lru.Throughput())
		}
		sum := 0.0
		for _, r := range ratios {
			sum += r
		}
		res.Points = append(res.Points, E11Point{
			Cores:               cores,
			MeanThroughputVsLRU: sum / float64(len(ratios)),
		})
	}

	t := report.New("E11: RWP vs LRU throughput by core count (1 MiB shared LLC per core)",
		"cores", "amean throughput vs LRU")
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%d", p.Cores), report.Pct(p.MeanThroughputVsLRU))
	}
	t.Note = "fixed 2-sensitive pressure, capacity grows with cores: the benefit " +
		"window closes once the shared LLC swallows the read working sets under LRU too"
	return t, res, nil
}
