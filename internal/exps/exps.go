// Package exps implements the paper's evaluation: one experiment per
// table/figure (see DESIGN.md §5 for the index). Each experiment returns
// both a typed result and a rendered table; cmd/rwpexp regenerates
// EXPERIMENTS.md from them and bench_test.go exposes each as a benchmark.
//
// Experiments execute through a shared internal/runner engine in two
// phases: plan (enqueue every simulation of the experiment as a job —
// the plan* helpers return futures) and collect (Wait on the futures in
// the experiment's own deterministic order and aggregate). The engine
// coalesces duplicate jobs, so, e.g., the LRU baselines computed for E3
// are reused by E4 and E9, runs them on a bounded worker pool, and can
// persist results across processes (cmd/rwpexp -j/-cache-dir).
package exps

import (
	"fmt"
	"sort"

	"rwp/internal/hier"
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/workload"
)

// Scale selects run lengths: Quick for tests, Full for the recorded
// results in EXPERIMENTS.md.
type Scale struct {
	Name    string
	Warmup  uint64
	Measure uint64
	// Mixes is the number of 4-core combinations in E7.
	Mixes int
	// E8Phase is the per-phase access count in the partition-dynamics
	// experiment.
	E8Phase uint64
}

// Quick is the CI-sized scale.
var Quick = Scale{Name: "quick", Warmup: 100_000, Measure: 400_000, Mixes: 5, E8Phase: 400_000}

// Full is the scale used for the recorded EXPERIMENTS.md numbers.
var Full = Scale{Name: "full", Warmup: 400_000, Measure: 1_600_000, Mixes: 10, E8Phase: 1_500_000}

// Suite runs experiments at one scale through a shared engine.
type Suite struct {
	Scale Scale
	// Benches optionally restricts the benchmark set (for tests and
	// focused sweeps); nil means the full registered suite.
	Benches []string
	// Eng executes and memoizes every simulation job.
	Eng *runner.Engine
}

// NewSuite returns a Suite at the given scale over the full suite, with
// a default engine (GOMAXPROCS workers, no disk cache).
func NewSuite(scale Scale) *Suite {
	return NewSuiteEngine(scale, runner.NewDefault())
}

// NewSuiteEngine returns a Suite executing on the given engine
// (cmd/rwpexp injects one configured from -j/-cache-dir with a wall
// clock and progress observer).
func NewSuiteEngine(scale Scale, eng *runner.Engine) *Suite {
	return &Suite{Scale: scale, Eng: eng}
}

// singleOptions builds single-core options for a policy with overridable
// LLC geometry.
func (s *Suite) singleOptions(policy string, llcBytes, ways int) sim.Options {
	opt := sim.DefaultOptions()
	opt.Hier.LLCPolicy = policy
	if llcBytes > 0 {
		opt.Hier.LLC.SizeBytes = llcBytes
	}
	if ways > 0 {
		opt.Hier.LLC.Ways = ways
	}
	opt.Warmup = s.Scale.Warmup
	opt.Measure = s.Scale.Measure
	return opt
}

// planSingle enqueues one single-core run on the engine (phase one of
// plan/collect); duplicate requests coalesce onto one job.
func (s *Suite) planSingle(bench, policy string, llcBytes, ways int) *runner.Future[sim.Result] {
	return s.Eng.Single(bench, s.singleOptions(policy, llcBytes, ways))
}

// runSingle plans and immediately waits for one single-core run — the
// synchronous convenience for callers outside a plan/collect pair.
func (s *Suite) runSingle(bench, policy string, llcBytes, ways int) (sim.Result, error) {
	r, err := s.planSingle(bench, policy, llcBytes, ways).Wait()
	if err != nil {
		return sim.Result{}, fmt.Errorf("exps: %s/%s: %w", bench, policy, err)
	}
	return r, nil
}

// planMulti enqueues one multiprogrammed run on the standard multi-core
// geometry (one workload per core, in mix order).
func (s *Suite) planMulti(benches []string, policy string, cores int) *runner.Future[sim.MultiResult] {
	return s.Eng.Multi(benches, s.multiOptions(policy, cores))
}

// allBenches returns the benchmark names in scope, sorted.
func (s *Suite) allBenches() []string {
	if s.Benches == nil {
		return workload.Names()
	}
	out := append([]string(nil), s.Benches...)
	sort.Strings(out)
	return out
}

// sensitive returns the in-scope cache-sensitive benchmark names.
func (s *Suite) sensitive() []string {
	var out []string
	for _, n := range s.allBenches() {
		if p, err := workload.Get(n); err == nil && p.CacheSensitive {
			out = append(out, n)
		}
	}
	return out
}

// insensitive returns the in-scope complement of the sensitive set.
func (s *Suite) insensitive() []string {
	var out []string
	for _, n := range s.allBenches() {
		if p, err := workload.Get(n); err == nil && !p.CacheSensitive {
			out = append(out, n)
		}
	}
	return out
}

// Experiment couples an id with a runner producing the table that
// regenerates the corresponding paper figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite) (*report.Table, error)
}

// Registry lists every experiment in display order: the paper's tables
// and figures (E1–E10), the extensions (E11, A4) and the design-choice
// ablations (A1–A3).
func Registry() []Experiment {
	return []Experiment{
		{"E1", "LLC line lifetime classification (motivation, Fig. 1 analogue)",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E1(); return t, err }},
		{"E2", "Read vs write miss criticality (motivation, Fig. 2 analogue)",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E2(); return t, err }},
		{"E3", "Single-core speedup of RWP over LRU (Fig. 6/7 analogue)",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E3(); return t, err }},
		{"E4", "RWP vs DIP/DRRIP/SHiP/RRP (Fig. 8 analogue)",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E4(); return t, err }},
		{"E5", "State overhead of each mechanism (Table 2 analogue)",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E5(); return t, err }},
		{"E6", "LLC size sensitivity 1/2/4/8 MiB",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E6(); return t, err }},
		{"E7", "4-core shared-LLC throughput and weighted speedup",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E7(); return t, err }},
		{"E8", "Dirty-partition dynamics across program phases",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E8(); return t, err }},
		{"E9", "Writeback traffic: RWP vs LRU",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E9(); return t, err }},
		{"E10", "Associativity sensitivity 8/16/32 ways",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E10(); return t, err }},
		{"A1", "Ablation: dynamic predictor vs every static partition",
			func(s *Suite) (*report.Table, error) { t, _, err := s.A1(); return t, err }},
		{"A2", "Ablation: sampler set count",
			func(s *Suite) (*report.Table, error) { t, _, err := s.A2(); return t, err }},
		{"A3", "Ablation: repartitioning interval and decay",
			func(s *Suite) (*report.Table, error) { t, _, err := s.A3(); return t, err }},
		{"E11", "Extension: RWP vs LRU throughput by core count",
			func(s *Suite) (*report.Table, error) { t, _, err := s.E11(); return t, err }},
		{"A4", "Extension: RWPB writeback bypass vs RWP",
			func(s *Suite) (*report.Table, error) { t, _, err := s.A4(); return t, err }},
	}
}

// multiOptions builds the 4-core options.
func (s *Suite) multiOptions(policy string, cores int) sim.Options {
	opt := sim.DefaultOptions()
	opt.Hier = hier.MulticoreConfig(cores)
	opt.Hier.LLCPolicy = policy
	opt.Warmup = s.Scale.Warmup
	opt.Measure = s.Scale.Measure
	return opt
}
