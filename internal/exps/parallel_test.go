package exps

import (
	"testing"

	"rwp/internal/runner"
)

// parallelBenches is the restricted scope for the worker-count sweep:
// two sensitive and two insensitive benchmarks, as in the full-path
// test.
var parallelBenches = []string{"sphinx3", "gcc", "povray", "lbm"}

// e3Table renders E3 on a suite executing over the given engine.
func e3Table(t *testing.T, eng *runner.Engine) string {
	t.Helper()
	s := NewSuiteEngine(tiny, eng)
	s.Benches = parallelBenches
	tb, _, err := s.E3()
	if err != nil {
		t.Fatal(err)
	}
	return tb.String()
}

// TestTablesBitIdenticalAcrossWorkers runs a representative experiment
// at -j 1, -j 4 and -j 8 and asserts byte-identical rendered tables:
// worker count and completion order must never leak into results.
func TestTablesBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var base string
	for i, workers := range []int{1, 4, 8} {
		eng, err := runner.New(runner.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := e3Table(t, eng)
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("-j %d table differs from -j 1:\n-j 1:\n%s\n-j %d:\n%s", workers, base, workers, got)
		}
	}
}

// TestTablesBitIdenticalAfterResume renders the same experiment from a
// cold cache and again from the warm cache (a crash-resume in
// miniature): the resumed run must execute nothing and render the
// byte-identical table.
func TestTablesBitIdenticalAfterResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	cold, err := runner.New(runner.Config{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	base := e3Table(t, cold)
	if st := cold.Stats(); st.Executed == 0 || st.DiskPuts != st.Executed {
		t.Fatalf("cold run stats %+v: every executed job must be persisted", st)
	}
	warm, err := runner.New(runner.Config{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := e3Table(t, warm)
	if st := warm.Stats(); st.Executed != 0 {
		t.Fatalf("resumed run executed %d jobs, want 0 (full cache hit); stats %+v", st.Executed, st)
	}
	if got != base {
		t.Errorf("resumed table differs:\ncold:\n%s\nwarm:\n%s", base, got)
	}
}
