package exps

import (
	"fmt"

	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
	"rwp/internal/workload"
	"rwp/internal/xrand"
)

// E7 — the 4-core experiment: throughput (Σ IPC) and weighted speedup of
// RWP against LRU, DIP, DRRIP and UCP on randomly drawn 4-benchmark
// mixes. Paper targets: RWP improves throughput by ~6 % over LRU and
// outperforms the other mechanisms.

// E7Policies lists the compared shared-LLC mechanisms.
var E7Policies = []string{"lru", "dip", "tadip", "drrip", "ucp", "rwp"}

// E7Mix is one 4-benchmark combination's outcome.
type E7Mix struct {
	Benches []string
	// Throughput[policy] is Σ per-core IPC.
	Throughput map[string]float64
	// Weighted[policy] is the weighted speedup vs running alone under
	// LRU on the same shared-LLC geometry.
	Weighted map[string]float64
}

// E7Result is the experiment outcome.
type E7Result struct {
	Mixes []E7Mix
	// MeanThroughputVsLRU[policy] is amean over mixes of
	// throughput(policy)/throughput(lru).
	MeanThroughputVsLRU map[string]float64
	// MeanWeightedVsLRU[policy] is the same for weighted speedup.
	MeanWeightedVsLRU map[string]float64
}

// e7DrawMixes deterministically samples n 4-benchmark mixes: two
// cache-sensitive members and two from the compute-bound pool. This is
// the regime the paper's 4-core evaluation highlights — shared capacity
// contended between read working sets and write traffic. Mixes whose
// aggregate footprint swamps the LLC several times over degenerate into
// pure thrash, where insertion policy (BIP/DIP), not read-write
// partitioning, is the operative mechanism; E11 covers the
// over-subscription regime explicitly.
func (s *Suite) e7DrawMixes(n int) [][]string {
	rng := xrand.New(0xE7)
	sens := s.sensitive()
	// The "fits" pool is the compute-bound insensitive subset: streamers
	// (insensitive but memory-hungry) are excluded.
	var fits []string
	for _, b := range s.insensitive() {
		if p, err := workload.Get(b); err == nil && p.MemIntensity < 0.3 {
			fits = append(fits, b)
		}
	}
	if len(fits) == 0 {
		fits = s.insensitive()
	}
	var mixes [][]string
	for len(mixes) < n {
		mix := make([]string, 0, 4)
		used := map[string]bool{}
		add := func(pool []string) {
			// Prefer an unused member of pool; fall back to any unused
			// benchmark so small restricted suites cannot hang the draw.
			try := func(cands []string) bool {
				avail := 0
				for _, b := range cands {
					if !used[b] {
						avail++
					}
				}
				if avail == 0 {
					return false
				}
				for {
					b := cands[rng.Intn(len(cands))]
					if !used[b] {
						mix = append(mix, b)
						used[b] = true
						return true
					}
				}
			}
			if try(pool) || try(s.allBenches()) {
				return
			}
			mix = append(mix, pool[rng.Intn(len(pool))]) // degenerate: reuse
		}
		add(sens)
		add(sens)
		add(fits)
		add(fits)
		mixes = append(mixes, mix)
	}
	return mixes
}

// e7PlanAlone enqueues a benchmark's solo run on the shared-LLC
// geometry under LRU; the engine coalesces the job across mixes.
func (s *Suite) e7PlanAlone(bench string) *runner.Future[sim.Result] {
	return s.planSingle(bench, "lru", 4<<20, 0)
}

// E7 runs the multiprogrammed comparison.
func (s *Suite) E7() (*report.Table, E7Result, error) {
	res := E7Result{
		MeanThroughputVsLRU: make(map[string]float64),
		MeanWeightedVsLRU:   make(map[string]float64),
	}
	mixes := s.e7DrawMixes(s.Scale.Mixes)
	// Plan: every solo baseline and every (mix, policy) 4-core run is
	// enqueued before anything is collected.
	type mixPlan struct {
		alone []*runner.Future[sim.Result]
		runs  map[string]*runner.Future[sim.MultiResult]
	}
	plans := make([]mixPlan, len(mixes))
	for mi, mix := range mixes {
		mp := mixPlan{runs: make(map[string]*runner.Future[sim.MultiResult])}
		for _, b := range mix {
			mp.alone = append(mp.alone, s.e7PlanAlone(b))
		}
		for _, pol := range E7Policies {
			mp.runs[pol] = s.planMulti(mix, pol, 4)
		}
		plans[mi] = mp
	}
	// Collect in mix order.
	for mi, mix := range mixes {
		alone := make([]float64, len(mix))
		for i := range mix {
			a, err := plans[mi].alone[i].Wait()
			if err != nil {
				return nil, res, err
			}
			alone[i] = a.IPC
		}
		m := E7Mix{
			Benches:    mix,
			Throughput: make(map[string]float64),
			Weighted:   make(map[string]float64),
		}
		for _, pol := range E7Policies {
			mr, err := plans[mi].runs[pol].Wait()
			if err != nil {
				return nil, res, fmt.Errorf("exps: E7 mix %v policy %s: %w", mix, pol, err)
			}
			m.Throughput[pol] = mr.Throughput()
			m.Weighted[pol] = stats.WeightedSpeedup(mr.IPCs, alone)
		}
		res.Mixes = append(res.Mixes, m)
	}
	for _, pol := range E7Policies {
		var tp, ws []float64
		for _, m := range res.Mixes {
			tp = append(tp, m.Throughput[pol]/m.Throughput["lru"])
			ws = append(ws, m.Weighted[pol]/m.Weighted["lru"])
		}
		res.MeanThroughputVsLRU[pol] = stats.AMean(tp)
		res.MeanWeightedVsLRU[pol] = stats.AMean(ws)
	}

	cols := append([]string{"mix"}, E7Policies...)
	t := report.New("E7: 4-core throughput normalized to LRU (4 MiB shared LLC)", cols...)
	for i, m := range res.Mixes {
		row := []string{fmt.Sprintf("mix%02d %v", i, m.Benches)}
		for _, pol := range E7Policies {
			row = append(row, report.Pct(m.Throughput[pol]/m.Throughput["lru"]))
		}
		t.AddRow(row...)
	}
	t.AddRule()
	tpRow := []string{"amean throughput"}
	wsRow := []string{"amean wtd speedup"}
	for _, pol := range E7Policies {
		tpRow = append(tpRow, report.Pct(res.MeanThroughputVsLRU[pol]))
		wsRow = append(wsRow, report.Pct(res.MeanWeightedVsLRU[pol]))
	}
	t.AddRow(tpRow...)
	t.AddRow(wsRow...)
	t.Note = "paper targets: RWP ~+6% throughput over LRU, best of the compared mechanisms"
	return t, res, nil
}
