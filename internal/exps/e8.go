package exps

import (
	"fmt"

	"rwp/internal/core"
	"rwp/internal/hier"
	"rwp/internal/report"
	"rwp/internal/workload"
)

// E8 — partition dynamics: the dirty-partition target must adapt to
// program phases. A two-phase composite runs a dirty-read-heavy phase
// (producer-consumer dominant) followed by a clean-read phase (pointer
// chase + write-once); the recorded per-interval targets should be
// high in phase one and collapse in phase two.

// E8Result is the experiment outcome.
type E8Result struct {
	// History is the dirty-target trajectory across both phases.
	History []int
	// Phase1Mean and Phase2Mean average the targets within each phase.
	Phase1Mean float64
	Phase2Mean float64
	// PerBench[bench] is the mean steady-state target per benchmark.
	PerBench map[string]float64
	// BenchOrder preserves display order for PerBench.
	BenchOrder []string
}

// e8Feed pushes n accesses from src into h on core 0.
func e8Feed(h *hier.Hierarchy, src *workload.Source, n uint64, now *uint64) error {
	for i := uint64(0); i < n; i++ {
		a, err := src.Next()
		if err != nil {
			return err
		}
		if a.Kind.IsRead() {
			h.Load(0, *now, a.Addr, a.PC)
		} else {
			h.Store(0, *now, a.Addr, a.PC)
		}
		*now++
	}
	return nil
}

// E8 runs the dynamics experiment.
func (s *Suite) E8() (*report.Table, E8Result, error) {
	res := E8Result{PerBench: make(map[string]float64)}

	// Two-phase composite.
	cfg := hier.DefaultConfig()
	cfg.LLCPolicy = "rwp"
	h, err := hier.New(cfg)
	if err != nil {
		return nil, res, err
	}
	rwp, ok := h.LLC().Policy().(*core.RWP)
	if !ok {
		return nil, res, fmt.Errorf("exps: LLC policy is not RWP")
	}
	dirtyPhase, err := workload.Get("cactusADM")
	if err != nil {
		return nil, res, err
	}
	cleanPhase, err := workload.Get("mcf")
	if err != nil {
		return nil, res, err
	}
	now := uint64(0)
	if err := e8Feed(h, dirtyPhase.NewSource(), s.Scale.E8Phase, &now); err != nil {
		return nil, res, err
	}
	cut := len(rwp.History())
	if err := e8Feed(h, cleanPhase.NewSource(), s.Scale.E8Phase, &now); err != nil {
		return nil, res, err
	}
	res.History = rwp.History()
	if cut == 0 || cut >= len(res.History) {
		return nil, res, fmt.Errorf("exps: E8 needs intervals in both phases (cut=%d, total=%d); increase E8Phase", cut, len(res.History))
	}
	for i, d := range res.History {
		if i < cut {
			res.Phase1Mean += float64(d)
		} else {
			res.Phase2Mean += float64(d)
		}
	}
	res.Phase1Mean /= float64(cut)
	res.Phase2Mean /= float64(len(res.History) - cut)

	// Per-benchmark steady-state targets for representative profiles.
	res.BenchOrder = []string{"cactusADM", "GemsFDTD", "mcf", "sphinx3", "lbm", "povray"}
	for _, bench := range res.BenchOrder {
		prof, err := workload.Get(bench)
		if err != nil {
			return nil, res, err
		}
		hb, err := hier.New(cfg)
		if err != nil {
			return nil, res, err
		}
		rb := hb.LLC().Policy().(*core.RWP)
		n := uint64(0)
		if err := e8Feed(hb, prof.NewSource(), s.Scale.E8Phase, &n); err != nil {
			return nil, res, err
		}
		hist := rb.History()
		if len(hist) == 0 {
			res.PerBench[bench] = float64(rb.TargetDirty())
			continue
		}
		// Mean over the second half (steady state).
		sum, cnt := 0.0, 0
		for _, d := range hist[len(hist)/2:] {
			sum += float64(d)
			cnt++
		}
		res.PerBench[bench] = sum / float64(cnt)
	}

	t := report.New("E8: dirty-partition target dynamics (16-way LLC)",
		"scenario", "mean dirty ways")
	t.AddRow("phase 1 (cactusADM: dirty lines serve reads)", report.F(res.Phase1Mean, 2))
	t.AddRow("phase 2 (mcf: clean reads + write-once)", report.F(res.Phase2Mean, 2))
	t.AddRule()
	for _, b := range res.BenchOrder {
		t.AddRow("steady state: "+b, report.F(res.PerBench[b], 2))
	}
	t.Note = "the predictor grows the dirty partition only when dirty lines serve reads"
	return t, res, nil
}
