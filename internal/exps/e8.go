package exps

import (
	"fmt"
	"strings"

	"rwp/internal/core"
	"rwp/internal/hier"
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/workload"
)

// E8 — partition dynamics: the dirty-partition target must adapt to
// program phases. A two-phase composite runs a dirty-read-heavy phase
// (producer-consumer dominant) followed by a clean-read phase (pointer
// chase + write-once); the recorded per-interval targets should be
// high in phase one and collapse in phase two.

// E8Result is the experiment outcome.
type E8Result struct {
	// History is the dirty-target trajectory across both phases.
	History []int
	// Phase1Mean and Phase2Mean average the targets within each phase.
	Phase1Mean float64
	Phase2Mean float64
	// PerBench[bench] is the mean steady-state target per benchmark.
	PerBench map[string]float64
	// BenchOrder preserves display order for PerBench.
	BenchOrder []string
}

// e8Feed pushes n accesses from src into h on core 0.
func e8Feed(h *hier.Hierarchy, src *workload.Source, n uint64, now *uint64) error {
	for i := uint64(0); i < n; i++ {
		a, err := src.Next()
		if err != nil {
			return err
		}
		if a.Kind.IsRead() {
			h.Load(0, *now, a.Addr, a.PC)
		} else {
			h.Store(0, *now, a.Addr, a.PC)
		}
		*now++
	}
	return nil
}

// e8FeedOut is one feed job's recorded predictor behavior (the cached
// result type of the "e8feed" job kind).
type e8FeedOut struct {
	// History is the dirty-target trajectory across all phases.
	History []int
	// Cut is the history length after the first phase.
	Cut int
	// Target is the final dirty target (for runs too short to record
	// any interval).
	Target int
}

// planE8Feed enqueues one feed job: each named profile is streamed n
// accesses, in order, through one fresh RWP hierarchy.
func (s *Suite) planE8Feed(cfg hier.Config, phases []string, n uint64) *runner.Future[e8FeedOut] {
	key, err := runner.NewKey("e8feed", strings.Join(phases, "+"), struct {
		Phases []string
		N      uint64
		Cfg    hier.Config
	}{phases, n, cfg})
	if err != nil {
		return runner.Failed[e8FeedOut](err)
	}
	return runner.Submit(s.Eng, key, func() (e8FeedOut, error) {
		h, err := hier.New(cfg)
		if err != nil {
			return e8FeedOut{}, err
		}
		rwp, ok := h.LLC().Policy().(*core.RWP)
		if !ok {
			return e8FeedOut{}, fmt.Errorf("exps: LLC policy is not RWP")
		}
		var out e8FeedOut
		now := uint64(0)
		for i, name := range phases {
			prof, err := workload.Get(name)
			if err != nil {
				return e8FeedOut{}, err
			}
			if err := e8Feed(h, prof.NewSource(), n, &now); err != nil {
				return e8FeedOut{}, err
			}
			if i == 0 {
				out.Cut = len(rwp.History())
			}
		}
		out.History = rwp.History()
		out.Target = rwp.TargetDirty()
		return out, nil
	})
}

// E8 runs the dynamics experiment.
func (s *Suite) E8() (*report.Table, E8Result, error) {
	res := E8Result{PerBench: make(map[string]float64)}

	// Plan: the two-phase composite plus every per-benchmark feed.
	cfg := hier.DefaultConfig()
	cfg.LLCPolicy = "rwp"
	composite := s.planE8Feed(cfg, []string{"cactusADM", "mcf"}, s.Scale.E8Phase)
	res.BenchOrder = []string{"cactusADM", "GemsFDTD", "mcf", "sphinx3", "lbm", "povray"}
	perBench := make([]*runner.Future[e8FeedOut], len(res.BenchOrder))
	for i, bench := range res.BenchOrder {
		perBench[i] = s.planE8Feed(cfg, []string{bench}, s.Scale.E8Phase)
	}

	// Collect: composite phase means first.
	comp, err := composite.Wait()
	if err != nil {
		return nil, res, err
	}
	res.History = comp.History
	cut := comp.Cut
	if cut == 0 || cut >= len(res.History) {
		return nil, res, fmt.Errorf("exps: E8 needs intervals in both phases (cut=%d, total=%d); increase E8Phase", cut, len(res.History))
	}
	for i, d := range res.History {
		if i < cut {
			res.Phase1Mean += float64(d)
		} else {
			res.Phase2Mean += float64(d)
		}
	}
	res.Phase1Mean /= float64(cut)
	res.Phase2Mean /= float64(len(res.History) - cut)

	// Per-benchmark steady-state targets for representative profiles.
	for i, bench := range res.BenchOrder {
		out, err := perBench[i].Wait()
		if err != nil {
			return nil, res, err
		}
		if len(out.History) == 0 {
			res.PerBench[bench] = float64(out.Target)
			continue
		}
		// Mean over the second half (steady state).
		sum, cnt := 0.0, 0
		for _, d := range out.History[len(out.History)/2:] {
			sum += float64(d)
			cnt++
		}
		res.PerBench[bench] = sum / float64(cnt)
	}

	t := report.New("E8: dirty-partition target dynamics (16-way LLC)",
		"scenario", "mean dirty ways")
	t.AddRow("phase 1 (cactusADM: dirty lines serve reads)", report.F(res.Phase1Mean, 2))
	t.AddRow("phase 2 (mcf: clean reads + write-once)", report.F(res.Phase2Mean, 2))
	t.AddRule()
	for _, b := range res.BenchOrder {
		t.AddRow("steady state: "+b, report.F(res.PerBench[b], 2))
	}
	t.Note = "the predictor grows the dirty partition only when dirty lines serve reads"
	return t, res, nil
}
