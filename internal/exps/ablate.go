package exps

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/core"
	"rwp/internal/policy"
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// Ablations of RWP's design choices (DESIGN.md §5, A1–A3). Each variant
// is a parameterized RWP registered under a derived policy name so the
// standard hierarchy/runner machinery applies unchanged. Ablation runs
// use the cache-sensitive subset, where the choices actually matter.

// a1StaticTargets are the fixed dirty-partition sizes A1 compares against
// the dynamic predictor (16-way LLC).
var a1StaticTargets = []int{0, 2, 4, 8, 12, 16}

// a2SamplerCounts sweeps the number of shadowed sets.
var a2SamplerCounts = []int{4, 8, 16, 32, 64, 128}

// a3Intervals sweeps the repartitioning period (accesses).
var a3Intervals = []uint64{25_000, 50_000, 100_000, 200_000, 400_000}

// a3Decays sweeps the histogram decay shift at the default interval.
var a3Decays = []uint{0, 1, 2}

func registerVariant(name string, cfg core.Config) {
	policy.Register(name, func() cache.Policy { return core.New(cfg) })
}

func init() {
	for _, d := range a1StaticTargets {
		cfg := core.DefaultConfig()
		cfg.Interval = 1 << 62 // never repartition: static split
		cfg.InitialDirtyTarget = d
		registerVariant(fmt.Sprintf("rwp-static-%d", d), cfg)
	}
	for _, n := range a2SamplerCounts {
		cfg := core.DefaultConfig()
		cfg.SamplerSets = n
		registerVariant(fmt.Sprintf("rwp-samp-%d", n), cfg)
	}
	for _, iv := range a3Intervals {
		cfg := core.DefaultConfig()
		cfg.Interval = iv
		registerVariant(fmt.Sprintf("rwp-int-%d", iv/1000), cfg)
	}
	for _, dc := range a3Decays {
		cfg := core.DefaultConfig()
		cfg.DecayShift = dc
		registerVariant(fmt.Sprintf("rwp-decay-%d", dc), cfg)
	}
}

// geoPlan is one policy's planned sensitive-set sweep: futures for the
// policy and LRU-baseline runs, collected later in bench order. The
// shared LRU baselines coalesce in the engine across every variant of
// an ablation, so planning all variants before collecting any lets the
// whole sweep execute in parallel.
type geoPlan struct {
	pairs []geoPair
}

type geoPair struct {
	lru, pol *runner.Future[sim.Result]
}

// planGeoOverLRU enqueues a policy's sensitive-set runs.
func (s *Suite) planGeoOverLRU(policyName string) *geoPlan {
	p := &geoPlan{}
	for _, bench := range s.sensitive() {
		p.pairs = append(p.pairs, geoPair{
			lru: s.planSingle(bench, "lru", 0, 0),
			pol: s.planSingle(bench, policyName, 0, 0),
		})
	}
	return p
}

// geo collects the planned runs into a geomean speedup over LRU.
func (p *geoPlan) geo() (float64, error) {
	var sp []float64
	for _, pr := range p.pairs {
		lru, err := pr.lru.Wait()
		if err != nil {
			return 0, err
		}
		r, err := pr.pol.Wait()
		if err != nil {
			return 0, err
		}
		sp = append(sp, stats.Speedup(r.IPC, lru.IPC))
	}
	return stats.GeoMean(sp), nil
}

// A1Result compares static partitions against the dynamic predictor.
type A1Result struct {
	// StaticGeo[d] is the geomean speedup of a fixed dirty target d.
	StaticGeo map[int]float64
	// DynamicGeo is the standard adaptive RWP.
	DynamicGeo float64
	// BestStatic is the best fixed target's geomean.
	BestStatic float64
}

// A1 — is the dynamic predictor actually necessary? No single static
// split should match it across the suite (each benchmark wants a
// different partition, per E8).
func (s *Suite) A1() (*report.Table, A1Result, error) {
	res := A1Result{StaticGeo: make(map[int]float64)}
	staticPlans := make(map[int]*geoPlan)
	for _, d := range a1StaticTargets {
		staticPlans[d] = s.planGeoOverLRU(fmt.Sprintf("rwp-static-%d", d))
	}
	dynPlan := s.planGeoOverLRU("rwp")
	for _, d := range a1StaticTargets {
		g, err := staticPlans[d].geo()
		if err != nil {
			return nil, res, err
		}
		res.StaticGeo[d] = g
		if g > res.BestStatic {
			res.BestStatic = g
		}
	}
	g, err := dynPlan.geo()
	if err != nil {
		return nil, res, err
	}
	res.DynamicGeo = g

	t := report.New("A1: dynamic partition predictor vs static splits (sensitive set)",
		"configuration", "geomean speedup vs LRU")
	for _, d := range a1StaticTargets {
		t.AddRow(fmt.Sprintf("static dirty=%d of 16", d), report.Pct(res.StaticGeo[d]))
	}
	t.AddRule()
	t.AddRow("dynamic (RWP)", report.Pct(res.DynamicGeo))
	t.Note = "the predictor tracks the best static split untuned; unlike static-0 " +
		"it also wins on dirty-reuse benchmarks (cactusADM, bzip2) where " +
		"evict-written-first backfires"
	return t, res, nil
}

// A2Result sweeps the sampler size.
type A2Result struct {
	Geo map[int]float64 // sampler sets → geomean speedup
}

// A2 — how many shadow sets does the predictor need?
func (s *Suite) A2() (*report.Table, A2Result, error) {
	res := A2Result{Geo: make(map[int]float64)}
	plans := make(map[int]*geoPlan)
	for _, n := range a2SamplerCounts {
		plans[n] = s.planGeoOverLRU(fmt.Sprintf("rwp-samp-%d", n))
	}
	for _, n := range a2SamplerCounts {
		g, err := plans[n].geo()
		if err != nil {
			return nil, res, err
		}
		res.Geo[n] = g
	}
	t := report.New("A2: sampler set count (sensitive set)",
		"sampler sets", "geomean speedup vs LRU")
	for _, n := range a2SamplerCounts {
		t.AddRow(report.I(n), report.Pct(res.Geo[n]))
	}
	t.Note = "paper-scale is 32; gains should saturate well before that"
	return t, res, nil
}

// A3Result sweeps interval and decay.
type A3Result struct {
	IntervalGeo map[uint64]float64
	DecayGeo    map[uint]float64
}

// A3 — how sensitive is RWP to its repartitioning cadence and history
// decay?
func (s *Suite) A3() (*report.Table, A3Result, error) {
	res := A3Result{
		IntervalGeo: make(map[uint64]float64),
		DecayGeo:    make(map[uint]float64),
	}
	ivPlans := make(map[uint64]*geoPlan)
	for _, iv := range a3Intervals {
		ivPlans[iv] = s.planGeoOverLRU(fmt.Sprintf("rwp-int-%d", iv/1000))
	}
	dcPlans := make(map[uint]*geoPlan)
	for _, dc := range a3Decays {
		dcPlans[dc] = s.planGeoOverLRU(fmt.Sprintf("rwp-decay-%d", dc))
	}
	for _, iv := range a3Intervals {
		g, err := ivPlans[iv].geo()
		if err != nil {
			return nil, res, err
		}
		res.IntervalGeo[iv] = g
	}
	for _, dc := range a3Decays {
		g, err := dcPlans[dc].geo()
		if err != nil {
			return nil, res, err
		}
		res.DecayGeo[dc] = g
	}
	t := report.New("A3: repartitioning interval and histogram decay (sensitive set)",
		"configuration", "geomean speedup vs LRU")
	for _, iv := range a3Intervals {
		t.AddRow(fmt.Sprintf("interval %dk accesses", iv/1000), report.Pct(res.IntervalGeo[iv]))
	}
	t.AddRule()
	for _, dc := range a3Decays {
		t.AddRow(fmt.Sprintf("decay shift %d (interval 100k)", dc), report.Pct(res.DecayGeo[dc]))
	}
	t.Note = "RWP should be robust across a wide cadence range"
	return t, res, nil
}
