package exps

import (
	"rwp/internal/report"
	"rwp/internal/stats"
)

// E9 — writeback traffic: favoring read-serving lines means evicting
// dirty lines earlier, so RWP could in principle inflate memory write
// traffic. The paper verifies it does not explode; this experiment
// reports DRAM writebacks per kilo-instruction for LRU vs RWP.

// E9Row is one benchmark's traffic comparison.
type E9Row struct {
	Bench    string
	LRUWBPKI float64
	RWPWBPKI float64
}

// E9Result is the experiment outcome.
type E9Result struct {
	Rows []E9Row
	// MeanRatio is amean of RWP/LRU writeback ratios over benchmarks
	// with non-negligible write traffic.
	MeanRatio float64
}

// E9 runs the comparison.
func (s *Suite) E9() (*report.Table, E9Result, error) {
	var res E9Result
	var ratios []float64
	for _, bench := range s.allBenches() {
		lru, err := s.runSingle(bench, "lru", 0, 0)
		if err != nil {
			return nil, res, err
		}
		rwp, err := s.runSingle(bench, "rwp", 0, 0)
		if err != nil {
			return nil, res, err
		}
		row := E9Row{Bench: bench, LRUWBPKI: lru.WBPKI, RWPWBPKI: rwp.WBPKI}
		res.Rows = append(res.Rows, row)
		if lru.WBPKI > 0.1 {
			ratios = append(ratios, rwp.WBPKI/lru.WBPKI)
		}
	}
	res.MeanRatio = stats.AMean(ratios)

	t := report.New("E9: DRAM writebacks per kilo-instruction",
		"bench", "LRU WBPKI", "RWP WBPKI", "ratio")
	for _, r := range res.Rows {
		ratio := "-"
		if r.LRUWBPKI > 0.1 {
			ratio = report.F(r.RWPWBPKI/r.LRUWBPKI, 2)
		}
		t.AddRow(r.Bench, report.F(r.LRUWBPKI, 2), report.F(r.RWPWBPKI, 2), ratio)
	}
	t.AddRule()
	t.AddRow("amean ratio", "", "", report.F(res.MeanRatio, 2))
	t.Note = "paper: RWP's extra writeback traffic stays modest"
	return t, res, nil
}
