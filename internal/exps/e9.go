package exps

import (
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// E9 — writeback traffic: favoring read-serving lines means evicting
// dirty lines earlier, so RWP could in principle inflate memory write
// traffic. The paper verifies it does not explode; this experiment
// reports DRAM writebacks per kilo-instruction for LRU vs RWP.

// E9Row is one benchmark's traffic comparison.
type E9Row struct {
	Bench    string
	LRUWBPKI float64
	RWPWBPKI float64
}

// E9Result is the experiment outcome.
type E9Result struct {
	Rows []E9Row
	// MeanRatio is amean of RWP/LRU writeback ratios over benchmarks
	// with non-negligible write traffic.
	MeanRatio float64
}

// E9 runs the comparison.
func (s *Suite) E9() (*report.Table, E9Result, error) {
	var res E9Result
	type plan struct {
		bench    string
		lru, rwp *runner.Future[sim.Result]
	}
	var plans []plan
	for _, bench := range s.allBenches() {
		plans = append(plans, plan{
			bench: bench,
			lru:   s.planSingle(bench, "lru", 0, 0),
			rwp:   s.planSingle(bench, "rwp", 0, 0),
		})
	}
	var ratios []float64
	for _, p := range plans {
		bench := p.bench
		lru, err := p.lru.Wait()
		if err != nil {
			return nil, res, err
		}
		rwp, err := p.rwp.Wait()
		if err != nil {
			return nil, res, err
		}
		row := E9Row{Bench: bench, LRUWBPKI: lru.WBPKI, RWPWBPKI: rwp.WBPKI}
		res.Rows = append(res.Rows, row)
		if lru.WBPKI > 0.1 {
			ratios = append(ratios, rwp.WBPKI/lru.WBPKI)
		}
	}
	res.MeanRatio = stats.AMean(ratios)

	t := report.New("E9: DRAM writebacks per kilo-instruction",
		"bench", "LRU WBPKI", "RWP WBPKI", "ratio")
	for _, r := range res.Rows {
		ratio := "-"
		if r.LRUWBPKI > 0.1 {
			ratio = report.F(r.RWPWBPKI/r.LRUWBPKI, 2)
		}
		t.AddRow(r.Bench, report.F(r.LRUWBPKI, 2), report.F(r.RWPWBPKI, 2), ratio)
	}
	t.AddRule()
	t.AddRow("amean ratio", "", "", report.F(res.MeanRatio, 2))
	t.Note = "paper: RWP's extra writeback traffic stays modest"
	return t, res, nil
}
