package exps

import (
	"fmt"

	"rwp/internal/report"
	"rwp/internal/stats"
)

// E10 — associativity sensitivity: RWP partitions ways, so its benefit
// could depend on how many there are. The sweep holds capacity at 2 MiB
// and varies associativity 8/16/32.

// E10Point is one associativity's outcome.
type E10Point struct {
	Ways int
	Geo  float64
}

// E10Result is the sweep outcome.
type E10Result struct {
	Points []E10Point
}

// E10 runs the sweep.
func (s *Suite) E10() (*report.Table, E10Result, error) {
	var res E10Result
	for _, ways := range []int{8, 16, 32} {
		var sp []float64
		for _, bench := range s.sensitive() {
			lru, err := s.runSingle(bench, "lru", 0, ways)
			if err != nil {
				return nil, res, err
			}
			rwp, err := s.runSingle(bench, "rwp", 0, ways)
			if err != nil {
				return nil, res, err
			}
			sp = append(sp, stats.Speedup(rwp.IPC, lru.IPC))
		}
		res.Points = append(res.Points, E10Point{Ways: ways, Geo: stats.GeoMean(sp)})
	}

	t := report.New("E10: RWP vs LRU geomean speedup by associativity (2 MiB LLC, sensitive set)",
		"ways", "geomean speedup")
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%d", p.Ways), report.Pct(p.Geo))
	}
	t.Note = "paper: RWP is robust across associativities"
	return t, res, nil
}
