package exps

import (
	"fmt"

	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// E10 — associativity sensitivity: RWP partitions ways, so its benefit
// could depend on how many there are. The sweep holds capacity at 2 MiB
// and varies associativity 8/16/32.

// E10Point is one associativity's outcome.
type E10Point struct {
	Ways int
	Geo  float64
}

// E10Result is the sweep outcome.
type E10Result struct {
	Points []E10Point
}

// E10 runs the sweep.
func (s *Suite) E10() (*report.Table, E10Result, error) {
	var res E10Result
	waysSweep := []int{8, 16, 32}
	type pair struct{ lru, rwp *runner.Future[sim.Result] }
	plans := make(map[int][]pair)
	for _, ways := range waysSweep {
		for _, bench := range s.sensitive() {
			plans[ways] = append(plans[ways], pair{
				lru: s.planSingle(bench, "lru", 0, ways),
				rwp: s.planSingle(bench, "rwp", 0, ways),
			})
		}
	}
	for _, ways := range waysSweep {
		var sp []float64
		for _, p := range plans[ways] {
			lru, err := p.lru.Wait()
			if err != nil {
				return nil, res, err
			}
			rwp, err := p.rwp.Wait()
			if err != nil {
				return nil, res, err
			}
			sp = append(sp, stats.Speedup(rwp.IPC, lru.IPC))
		}
		res.Points = append(res.Points, E10Point{Ways: ways, Geo: stats.GeoMean(sp)})
	}

	t := report.New("E10: RWP vs LRU geomean speedup by associativity (2 MiB LLC, sensitive set)",
		"ways", "geomean speedup")
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%d", p.Ways), report.Pct(p.Geo))
	}
	t.Note = "paper: RWP is robust across associativities"
	return t, res, nil
}
