package exps

import (
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// E4 — mechanism comparison on the cache-sensitive subset: RWP against
// DIP, DRRIP, SHiP and the paper's own RRP upper bound, plus this repo's
// RWPB extension (RWP with writeback bypass at target 0). Paper targets:
// RWP beats DIP/DRRIP and lands within 3 % of RRP.

// E4Policies lists the compared mechanisms in display order.
var E4Policies = []string{"lru", "dip", "drrip", "ship", "rwp", "rwpb", "rrp"}

// E4Result is the experiment outcome.
type E4Result struct {
	// Geo[policy] is the geomean speedup over LRU on the sensitive set.
	Geo map[string]float64
	// GeoAll[policy] is the geomean over the whole suite (the paper's
	// "within 3 % of RRP" is an all-suite comparison, heavily diluted by
	// the insensitive benchmarks).
	GeoAll map[string]float64
	// PerBench[bench][policy] is the per-benchmark speedup (sensitive
	// set only).
	PerBench map[string]map[string]float64
	// RWPvsRRP is geoAll(rwp)/geoAll(rrp): how close RWP gets to RRP.
	RWPvsRRP float64
}

// E4 runs the comparison.
func (s *Suite) E4() (*report.Table, E4Result, error) {
	res := E4Result{
		Geo:      make(map[string]float64),
		GeoAll:   make(map[string]float64),
		PerBench: make(map[string]map[string]float64),
	}
	sens := make(map[string]bool)
	for _, n := range s.sensitive() {
		sens[n] = true
	}
	// Plan every (bench, policy) run — note "lru" is both the baseline
	// and a member of E4Policies; the engine coalesces the duplicate.
	futs := make(map[string]map[string]*runner.Future[sim.Result])
	for _, bench := range s.allBenches() {
		futs[bench] = make(map[string]*runner.Future[sim.Result])
		futs[bench]["lru"] = s.planSingle(bench, "lru", 0, 0)
		for _, pol := range E4Policies {
			futs[bench][pol] = s.planSingle(bench, pol, 0, 0)
		}
	}
	speedups := make(map[string][]float64)
	speedupsAll := make(map[string][]float64)
	for _, bench := range s.allBenches() {
		lru, err := futs[bench]["lru"].Wait()
		if err != nil {
			return nil, res, err
		}
		if sens[bench] {
			res.PerBench[bench] = make(map[string]float64)
		}
		for _, pol := range E4Policies {
			r, err := futs[bench][pol].Wait()
			if err != nil {
				return nil, res, err
			}
			sp := stats.Speedup(r.IPC, lru.IPC)
			speedupsAll[pol] = append(speedupsAll[pol], sp)
			if sens[bench] {
				res.PerBench[bench][pol] = sp
				speedups[pol] = append(speedups[pol], sp)
			}
		}
	}
	for _, pol := range E4Policies {
		res.Geo[pol] = stats.GeoMean(speedups[pol])
		res.GeoAll[pol] = stats.GeoMean(speedupsAll[pol])
	}
	res.RWPvsRRP = res.GeoAll["rwp"] / res.GeoAll["rrp"]

	cols := append([]string{"bench"}, E4Policies...)
	t := report.New("E4: speedup over LRU on the cache-sensitive set", cols...)
	for _, bench := range s.sensitive() {
		row := []string{bench}
		for _, pol := range E4Policies {
			row = append(row, report.Pct(res.PerBench[bench][pol]))
		}
		t.AddRow(row...)
	}
	t.AddRule()
	grow := []string{"geomean (sensitive)"}
	garow := []string{"geomean (all suite)"}
	for _, pol := range E4Policies {
		grow = append(grow, report.Pct(res.Geo[pol]))
		garow = append(garow, report.Pct(res.GeoAll[pol]))
	}
	t.AddRow(grow...)
	t.AddRow(garow...)
	t.Note = "paper targets: RWP > DIP/DRRIP; RWP within 3% of RRP all-suite (here rwp/rrp = " +
		report.Pct(res.RWPvsRRP) + ")"
	return t, res, nil
}
