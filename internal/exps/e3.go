package exps

import (
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// E3 — the headline single-core result: RWP speedup over LRU, per
// benchmark, with geometric means over the full suite and over the
// cache-sensitive subset. Paper targets: +5 % all-suite, +14 % sensitive.

// E3Row is one benchmark's comparison.
type E3Row struct {
	Bench     string
	Sensitive bool
	LRUIPC    float64
	RWPIPC    float64
	Speedup   float64
	LRUMPKI   float64 // read MPKI
	RWPMPKI   float64
}

// E3Result is the experiment outcome.
type E3Result struct {
	Rows []E3Row
	// GeoAll is the geomean speedup across every benchmark.
	GeoAll float64
	// GeoSensitive is the geomean over the cache-sensitive subset.
	GeoSensitive float64
	// GeoInsensitive is the geomean over the rest.
	GeoInsensitive float64
}

// E3 runs the comparison.
func (s *Suite) E3() (*report.Table, E3Result, error) {
	var res E3Result
	sens := make(map[string]bool)
	for _, n := range s.sensitive() {
		sens[n] = true
	}
	// Plan: enqueue the whole run set before collecting anything.
	type plan struct {
		bench    string
		lru, rwp *runner.Future[sim.Result]
	}
	var plans []plan
	for _, bench := range s.allBenches() {
		plans = append(plans, plan{
			bench: bench,
			lru:   s.planSingle(bench, "lru", 0, 0),
			rwp:   s.planSingle(bench, "rwp", 0, 0),
		})
	}
	// Collect in the deterministic bench order, never completion order.
	var all, sensOnly, insens []float64
	for _, p := range plans {
		bench := p.bench
		lru, err := p.lru.Wait()
		if err != nil {
			return nil, res, err
		}
		rwp, err := p.rwp.Wait()
		if err != nil {
			return nil, res, err
		}
		row := E3Row{
			Bench:     bench,
			Sensitive: sens[bench],
			LRUIPC:    lru.IPC,
			RWPIPC:    rwp.IPC,
			Speedup:   stats.Speedup(rwp.IPC, lru.IPC),
			LRUMPKI:   lru.ReadMPKI,
			RWPMPKI:   rwp.ReadMPKI,
		}
		res.Rows = append(res.Rows, row)
		all = append(all, row.Speedup)
		if row.Sensitive {
			sensOnly = append(sensOnly, row.Speedup)
		} else {
			insens = append(insens, row.Speedup)
		}
	}
	res.GeoAll = stats.GeoMean(all)
	res.GeoSensitive = stats.GeoMean(sensOnly)
	res.GeoInsensitive = stats.GeoMean(insens)

	t := report.New("E3: single-core RWP vs LRU (2 MiB 16-way LLC)",
		"bench", "class", "LRU IPC", "RWP IPC", "speedup", "LRU rdMPKI", "RWP rdMPKI")
	for _, r := range res.Rows {
		class := "insens"
		if r.Sensitive {
			class = "SENS"
		}
		t.AddRow(r.Bench, class, report.F(r.LRUIPC, 3), report.F(r.RWPIPC, 3),
			report.Pct(r.Speedup), report.F(r.LRUMPKI, 2), report.F(r.RWPMPKI, 2))
	}
	t.AddRule()
	t.AddRow("geomean (all)", "", "", "", report.Pct(res.GeoAll))
	t.AddRow("geomean (sensitive)", "", "", "", report.Pct(res.GeoSensitive))
	t.AddRow("geomean (insensitive)", "", "", "", report.Pct(res.GeoInsensitive))
	t.Note = "paper targets: +5% all-suite, +14% cache-sensitive"
	return t, res, nil
}
