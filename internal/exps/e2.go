package exps

import (
	"rwp/internal/cpu"
	"rwp/internal/report"
)

// E2 — motivation: read misses stall the core, write misses do not.
//
// A synthetic instruction stream issues one memory access every
// `gap` instructions; every access has the same latency. One run makes
// them all loads, the other all stores. IPC versus latency shows loads
// degrading toward memory-bound while stores stay near the ideal — the
// paper's Figure-2-style criticality argument, produced directly by the
// core model's window/store-buffer mechanics.

// E2Point is one (latency, IPC-load, IPC-store) sample.
type E2Point struct {
	Latency   uint64
	LoadIPC   float64
	StoreIPC  float64
	IdealIPC  float64
	LoadLoss  float64 // 1 - LoadIPC/IdealIPC
	StoreLoss float64
}

// E2Result is the sweep outcome.
type E2Result struct {
	Points []E2Point
}

// e2Run executes the synthetic stream on a fresh core.
func e2Run(latency uint64, loads bool, accesses int, gap uint64) float64 {
	core, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		panic(err) // default config is valid by construction
	}
	ic := uint64(0)
	for i := 0; i < accesses; i++ {
		ic += gap
		if loads {
			core.Load(ic, latency)
		} else {
			core.Store(ic, latency)
		}
	}
	st := core.Finish(ic + gap)
	return st.IPC()
}

// E2 sweeps access latency for all-load and all-store streams.
func (s *Suite) E2() (*report.Table, E2Result, error) {
	const accesses = 50_000
	const gap = 20
	ideal := e2Run(1, true, accesses, gap)
	var res E2Result
	for _, lat := range []uint64{10, 30, 50, 100, 200, 400} {
		p := E2Point{
			Latency:  lat,
			LoadIPC:  e2Run(lat, true, accesses, gap),
			StoreIPC: e2Run(lat, false, accesses, gap),
			IdealIPC: ideal,
		}
		p.LoadLoss = 1 - p.LoadIPC/ideal
		p.StoreLoss = 1 - p.StoreIPC/ideal
		res.Points = append(res.Points, p)
	}

	t := report.New("E2: IPC vs access latency — loads stall, stores buffer",
		"latency", "load IPC", "store IPC", "load loss", "store loss")
	for _, p := range res.Points {
		t.AddRow(report.I(p.Latency), report.F(p.LoadIPC, 3), report.F(p.StoreIPC, 3),
			report.F(p.LoadLoss*100, 1)+"%", report.F(p.StoreLoss*100, 1)+"%")
	}
	t.Note = "one access per 20 instructions; 4-wide core, 128-entry window, 32-entry store buffer"
	return t, res, nil
}
