package exps

import (
	"rwp/internal/report"
	"rwp/internal/runner"
	"rwp/internal/sim"
	"rwp/internal/stats"
)

// E6 — cache-size sensitivity: RWP's geomean speedup over LRU on the
// sensitive set at 1/2/4/8 MiB LLCs. The paper reports gains persisting
// across sizes (largest where the read working set straddles capacity).

// E6Point is one size's outcome.
type E6Point struct {
	LLCBytes int
	Geo      float64
}

// E6Result is the sweep outcome.
type E6Result struct {
	Points []E6Point
}

// E6 runs the sweep.
func (s *Suite) E6() (*report.Table, E6Result, error) {
	var res E6Result
	sizes := []int{1 << 20, 2 << 20, 4 << 20, 8 << 20}
	type pair struct{ lru, rwp *runner.Future[sim.Result] }
	plans := make(map[int][]pair)
	for _, size := range sizes {
		for _, bench := range s.sensitive() {
			plans[size] = append(plans[size], pair{
				lru: s.planSingle(bench, "lru", size, 0),
				rwp: s.planSingle(bench, "rwp", size, 0),
			})
		}
	}
	for _, size := range sizes {
		var sp []float64
		for _, p := range plans[size] {
			lru, err := p.lru.Wait()
			if err != nil {
				return nil, res, err
			}
			rwp, err := p.rwp.Wait()
			if err != nil {
				return nil, res, err
			}
			sp = append(sp, stats.Speedup(rwp.IPC, lru.IPC))
		}
		res.Points = append(res.Points, E6Point{LLCBytes: size, Geo: stats.GeoMean(sp)})
	}

	t := report.New("E6: RWP vs LRU geomean speedup by LLC size (sensitive set)",
		"LLC size", "geomean speedup")
	for _, p := range res.Points {
		t.AddRow(report.F(float64(p.LLCBytes)/(1<<20), 0)+" MiB", report.Pct(p.Geo))
	}
	t.Note = "paper: gains persist across sizes, peaking where working sets straddle capacity"
	return t, res, nil
}
