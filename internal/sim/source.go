package sim

import (
	"fmt"

	"rwp/internal/cpu"
	"rwp/internal/hier"
	"rwp/internal/stats"
	"rwp/internal/trace"
)

// RunSource executes an arbitrary access stream (e.g. a decoded trace
// file) on a single-core system. The stream ends either at
// opt.Warmup+opt.Measure accesses or at trace end, whichever comes
// first; a trace shorter than the warmup is an error. The Workload label
// is the caller's name for the stream.
func RunSource(name string, src trace.Source, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if opt.Hier.Cores != 1 {
		return Result{}, fmt.Errorf("sim: RunSource needs a 1-core hierarchy, got %d", opt.Hier.Cores)
	}
	h, err := hier.New(opt.Hier)
	if err != nil {
		return Result{}, err
	}
	core, err := cpu.New(opt.CPU)
	if err != nil {
		return Result{}, err
	}

	var warmEndIC, warmEndCycles uint64
	var warmCore cpu.Stats
	var lastIC uint64
	warmed := false
	total := opt.Warmup + opt.Measure
	for i := uint64(0); i < total; i++ {
		a, err := src.Next()
		if err == trace.ErrEnd {
			if !warmed {
				return Result{}, fmt.Errorf("sim: trace %s ended during warmup (%d accesses)", name, i)
			}
			break
		}
		if err != nil {
			return Result{}, fmt.Errorf("sim: trace %s: %w", name, err)
		}
		step(core, h, 0, a)
		lastIC = a.IC
		if i+1 == opt.Warmup {
			h.ResetStats()
			snap := core.Stats()
			warmEndIC, warmEndCycles = snap.Instructions, snap.Cycles
			warmCore = snap
			warmed = true
		}
	}
	if !warmed {
		return Result{}, fmt.Errorf("sim: trace %s shorter than warmup", name)
	}
	final := core.Finish(lastIC + 1)
	res := Result{
		Workload: name,
		Policy:   opt.Hier.LLCPolicy,
		L1:       h.L1(0).Stats(),
		L2:       h.L2(0).Stats(),
		LLC:      h.LLC().Stats(),
		DRAM:     h.DRAM().Stats(),
	}
	res.Core = cpu.Stats{
		Instructions: final.Instructions - warmEndIC,
		Cycles:       final.Cycles - warmEndCycles,
		Loads:        final.Loads - warmCore.Loads,
		Stores:       final.Stores - warmCore.Stores,
		LoadStalls:   final.LoadStalls - warmCore.LoadStalls,
		StoreStalls:  final.StoreStalls - warmCore.StoreStalls,
	}
	res.Instructions = res.Core.Instructions
	res.IPC = res.Core.IPC()
	res.ReadMPKI = stats.PerKilo(res.LLC.ReadMisses(), res.Instructions)
	res.TotalMPKI = stats.PerKilo(res.LLC.TotalMisses(), res.Instructions)
	res.WBPKI = stats.PerKilo(res.DRAM.Writes, res.Instructions)
	return res, nil
}
