package sim

import (
	"reflect"
	"testing"

	"rwp/internal/hier"
	"rwp/internal/probe"
	"rwp/internal/workload"
)

// TestProbeBitIdentitySingle is the load-bearing observability test:
// attaching a Recorder must not change a single Result bit, for every
// studied policy family (plain stacks, partitioned, PC-indexed bypass,
// set dueling).
func TestProbeBitIdentitySingle(t *testing.T) {
	prof, err := workload.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"lru", "rwp", "rwpb", "rrp", "dip"} {
		t.Run(pol, func(t *testing.T) {
			opt := fastOptions(pol)
			bare, err := RunSingle(prof, opt)
			if err != nil {
				t.Fatal(err)
			}
			rec := probe.NewRecorder(50_000)
			probed, err := RunSingleProbe(prof, opt, rec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bare, probed) {
				t.Fatalf("probe changed the result:\n bare %+v\nprobed %+v", bare, probed)
			}
			// Also: nil probe through the probe entry point is the bare run.
			nilRun, err := RunSingleProbe(prof, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bare, nilRun) {
				t.Fatal("nil probe changed the result")
			}
		})
	}
}

func TestProbeBitIdentityMulti(t *testing.T) {
	profs := make([]workload.Profile, 2)
	for i, n := range []string{"gcc", "lbm"} {
		p, err := workload.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		profs[i] = p
	}
	opt := fastOptions("rwp")
	opt.Hier = hier.MulticoreConfig(2)
	opt.Hier.LLCPolicy = "rwp"
	opt.Warmup = 20_000
	opt.Measure = 80_000
	bare, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec := probe.NewRecorder(20_000)
	probed, err := RunMultiProbe(profs, opt, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, probed) {
		t.Fatalf("probe changed the multi result:\n bare %+v\nprobed %+v", bare, probed)
	}
	if len(rec.Intervals) == 0 {
		t.Fatal("recorder saw no intervals")
	}
}

// TestProbeMatchesMeasuredStats pins the probe's aggregates to the
// cache's own measured-region counters: the probe attaches at the warmup
// boundary, so both views must agree exactly.
func TestProbeMatchesMeasuredStats(t *testing.T) {
	prof, err := workload.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions("rwp")
	rec := probe.NewRecorder(50_000)
	res, err := RunSingleProbe(prof, opt, rec)
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses, accesses uint64
	for c := probe.Class(0); c < probe.NumClasses; c++ {
		cc := rec.Classes[c]
		hits += cc.Hits
		misses += cc.Misses
		accesses += cc.Accesses
	}
	if hits != res.LLC.TotalHits() || misses != res.LLC.TotalMisses() {
		t.Fatalf("probe hits/misses %d/%d, LLC stats %d/%d",
			hits, misses, res.LLC.TotalHits(), res.LLC.TotalMisses())
	}
	if accesses != res.LLC.TotalAccesses() {
		t.Fatalf("probe accesses %d, LLC stats %d", accesses, res.LLC.TotalAccesses())
	}
	if rec.Evictions() != res.LLC.Evictions {
		t.Fatalf("probe evictions %d, LLC stats %d", rec.Evictions(), res.LLC.Evictions)
	}
	if rec.EvictDirty != res.LLC.DirtyEvict {
		t.Fatalf("probe dirty evictions %d, LLC stats %d", rec.EvictDirty, res.LLC.DirtyEvict)
	}
	// RWP repartitions every 100k accesses; a 300k-access measured region
	// must produce retargets, and every target must be a legal way count.
	if len(rec.Retargets) == 0 {
		t.Fatal("no retarget events from rwp")
	}
	ways := opt.Hier.LLC.Ways
	for _, rt := range rec.Retargets {
		if rt.Target < 0 || rt.Target > ways {
			t.Fatalf("retarget target %d out of [0,%d]", rt.Target, ways)
		}
	}
	if len(rec.Intervals) != 6 {
		t.Fatalf("intervals = %d, want 6 (300k measured / 50k window)", len(rec.Intervals))
	}
	for i, iv := range rec.Intervals {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
		if iv.ValidLines == 0 || iv.DirtyLines > iv.ValidLines {
			t.Fatalf("interval %d occupancy dirty %d valid %d", i, iv.DirtyLines, iv.ValidLines)
		}
		if iv.DirtyTarget < 0 || iv.DirtyTarget > ways {
			t.Fatalf("interval %d dirty target %d", i, iv.DirtyTarget)
		}
	}
}

// TestProbeWindowZeroDisablesIntervals: a zero window means no
// IntervalEnd events while counters still aggregate.
func TestProbeWindowZeroDisablesIntervals(t *testing.T) {
	prof, err := workload.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rec := &probe.Recorder{} // zero value: Window() == 0
	if _, err := RunSingleProbe(prof, fastOptions("lru"), rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Intervals) != 0 {
		t.Fatalf("zero-window recorder got %d intervals", len(rec.Intervals))
	}
	if rec.Classes[probe.Load].Accesses == 0 {
		t.Fatal("zero-window recorder aggregated nothing")
	}
}
