package sim

import (
	"fmt"

	"rwp/internal/core"
	"rwp/internal/cpu"
	"rwp/internal/hier"
	"rwp/internal/stats"
	"rwp/internal/trace"
)

// llcDirtyTarget returns RWP's dirty-partition target at the LLC, or -1
// when the LLC policy is not RWP-based.
func llcDirtyTarget(h *hier.Hierarchy) int {
	switch p := h.LLC().Policy().(type) {
	case *core.RWP:
		return p.TargetDirty()
	case *core.RWPB:
		return p.TargetDirty()
	default:
		return -1
	}
}

// Interval is one measurement window of a time-series run.
type Interval struct {
	// EndAccess is the access count (from measurement start) at the
	// window's end.
	EndAccess uint64
	// IPC over the window.
	IPC float64
	// ReadMPKI over the window.
	ReadMPKI float64
	// DirtyTarget is RWP's dirty-partition target at the window's end,
	// or -1 when the LLC policy is not RWP-based.
	DirtyTarget int
}

// RunSourceIntervals is RunSource with a per-window time series: every
// `window` measured accesses it records IPC, read MPKI and (for RWP) the
// dirty-partition target. window must be positive.
func RunSourceIntervals(name string, src trace.Source, opt Options, window uint64) (Result, []Interval, error) {
	if window == 0 {
		return Result{}, nil, fmt.Errorf("sim: interval window must be positive")
	}
	if err := opt.Validate(); err != nil {
		return Result{}, nil, err
	}
	if opt.Hier.Cores != 1 {
		return Result{}, nil, fmt.Errorf("sim: RunSourceIntervals needs a 1-core hierarchy")
	}
	h, err := hier.New(opt.Hier)
	if err != nil {
		return Result{}, nil, err
	}
	cpuCore, err := cpu.New(opt.CPU)
	if err != nil {
		return Result{}, nil, err
	}
	var series []Interval
	var warmEndIC, warmEndCycles uint64
	var warmCore cpu.Stats
	var winIC, winCycles, winMisses uint64
	var lastIC uint64
	warmed := false
	total := opt.Warmup + opt.Measure
	for i := uint64(0); i < total; i++ {
		a, err := src.Next()
		if err == trace.ErrEnd {
			if !warmed {
				return Result{}, nil, fmt.Errorf("sim: trace %s ended during warmup", name)
			}
			break
		}
		if err != nil {
			return Result{}, nil, fmt.Errorf("sim: trace %s: %w", name, err)
		}
		step(cpuCore, h, 0, a)
		lastIC = a.IC
		if i+1 == opt.Warmup {
			h.ResetStats()
			snap := cpuCore.Stats()
			warmEndIC, warmEndCycles = snap.Instructions, snap.Cycles
			warmCore = snap
			winIC, winCycles = snap.Instructions, snap.Cycles
			warmed = true
			continue
		}
		if warmed {
			measured := i + 1 - opt.Warmup
			if measured%window == 0 {
				snap := cpuCore.Stats()
				misses := h.LLC().Stats().ReadMisses()
				insts := snap.Instructions - winIC
				cycles := snap.Cycles - winCycles
				iv := Interval{EndAccess: measured, DirtyTarget: llcDirtyTarget(h)}
				if cycles > 0 {
					iv.IPC = float64(insts) / float64(cycles)
				}
				iv.ReadMPKI = stats.PerKilo(misses-winMisses, insts)
				series = append(series, iv)
				winIC, winCycles, winMisses = snap.Instructions, snap.Cycles, misses
			}
		}
	}
	if !warmed {
		return Result{}, nil, fmt.Errorf("sim: trace %s shorter than warmup", name)
	}
	final := cpuCore.Finish(lastIC + 1)
	res := Result{
		Workload: name,
		Policy:   opt.Hier.LLCPolicy,
		L1:       h.L1(0).Stats(),
		L2:       h.L2(0).Stats(),
		LLC:      h.LLC().Stats(),
		DRAM:     h.DRAM().Stats(),
	}
	res.Core = cpu.Stats{
		Instructions: final.Instructions - warmEndIC,
		Cycles:       final.Cycles - warmEndCycles,
		Loads:        final.Loads - warmCore.Loads,
		Stores:       final.Stores - warmCore.Stores,
		LoadStalls:   final.LoadStalls - warmCore.LoadStalls,
		StoreStalls:  final.StoreStalls - warmCore.StoreStalls,
	}
	res.Instructions = res.Core.Instructions
	res.IPC = res.Core.IPC()
	res.ReadMPKI = stats.PerKilo(res.LLC.ReadMisses(), res.Instructions)
	res.TotalMPKI = stats.PerKilo(res.LLC.TotalMisses(), res.Instructions)
	res.WBPKI = stats.PerKilo(res.DRAM.Writes, res.Instructions)
	return res, series, nil
}
