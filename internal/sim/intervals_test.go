package sim

import (
	"testing"

	"rwp/internal/workload"
)

func TestRunSourceIntervalsSeries(t *testing.T) {
	prof, err := workload.Get("cactusADM")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions("rwp")
	res, series, err := RunSourceIntervals("cactusADM", prof.NewSource(), opt, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	want := int(opt.Measure / 50_000)
	if len(series) != want {
		t.Fatalf("%d intervals, want %d", len(series), want)
	}
	for i, iv := range series {
		if iv.EndAccess != uint64(i+1)*50_000 {
			t.Fatalf("interval %d ends at %d", i, iv.EndAccess)
		}
		if iv.IPC <= 0 {
			t.Fatalf("interval %d has IPC %v", i, iv.IPC)
		}
		if iv.DirtyTarget < 0 || iv.DirtyTarget > 16 {
			t.Fatalf("interval %d dirty target %d", i, iv.DirtyTarget)
		}
	}
	if res.IPC <= 0 {
		t.Fatal("overall result empty")
	}
}

func TestRunSourceIntervalsNonRWPTargetsAreMinusOne(t *testing.T) {
	prof, _ := workload.Get("gcc")
	opt := fastOptions("lru")
	_, series, err := RunSourceIntervals("gcc", prof.NewSource(), opt, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range series {
		if iv.DirtyTarget != -1 {
			t.Fatalf("LRU run reported dirty target %d", iv.DirtyTarget)
		}
	}
}

func TestRunSourceIntervalsValidation(t *testing.T) {
	prof, _ := workload.Get("gcc")
	opt := fastOptions("lru")
	if _, _, err := RunSourceIntervals("x", prof.NewSource(), opt, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	opt.Hier.Cores = 2
	if _, _, err := RunSourceIntervals("x", prof.NewSource(), opt, 1000); err == nil {
		t.Fatal("multicore hierarchy accepted")
	}
}

func TestIntervalsAggregateMatchesPlainRun(t *testing.T) {
	// The overall result of an interval run must equal the plain run.
	prof, _ := workload.Get("astar")
	opt := fastOptions("rwp")
	plain, err := RunSingle(prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	withIv, _, err := RunSourceIntervals("astar", prof.NewSource(), opt, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if plain.IPC != withIv.IPC || plain.ReadMPKI != withIv.ReadMPKI { //rwplint:allow floateq — exact: bit-identity determinism check
		t.Fatalf("interval run diverged: IPC %v vs %v", plain.IPC, withIv.IPC)
	}
}
