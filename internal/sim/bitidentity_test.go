package sim

import (
	"reflect"
	"testing"

	"rwp/internal/workload"
)

// bitIdentityExps is a small experiment suite mixing policies and
// workloads, including a shared-LLC multiprogram run.
type bitIdentityExp struct {
	bench  string
	policy string
}

var bitIdentityExps = []bitIdentityExp{
	{"gcc", "lru"},
	{"astar", "rwp"},
	{"mcf", "dip"},
}

func runBitIdentityExp(t *testing.T, e bitIdentityExp) Result {
	t.Helper()
	prof, err := workload.Get(e.bench)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions(e.policy)
	opt.Warmup = 50_000
	opt.Measure = 150_000
	res, err := RunSingle(prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunTwiceBitIdentical is the runtime counterpart of the rwplint
// static determinism rules: the same Options must produce bit-identical
// full Results — every counter, not just headline metrics — regardless
// of how many times or in which order the experiments are evaluated.
func TestRunTwiceBitIdentical(t *testing.T) {
	first := make([]Result, len(bitIdentityExps))
	for i, e := range bitIdentityExps {
		first[i] = runBitIdentityExp(t, e)
	}
	// Same options, second evaluation.
	for i, e := range bitIdentityExps {
		if got := runBitIdentityExp(t, e); !reflect.DeepEqual(got, first[i]) {
			t.Errorf("%s/%s: second run differs from first:\n  first:  %+v\n  second: %+v", e.bench, e.policy, first[i], got)
		}
	}
	// Reversed experiment evaluation order: earlier runs must leave no
	// state behind (shared registries, package-level caches, pools).
	for i := len(bitIdentityExps) - 1; i >= 0; i-- {
		e := bitIdentityExps[i]
		if got := runBitIdentityExp(t, e); !reflect.DeepEqual(got, first[i]) {
			t.Errorf("%s/%s: reversed-order run differs:\n  first:    %+v\n  reversed: %+v", e.bench, e.policy, first[i], got)
		}
	}
}

// TestRunMultiBitIdentical extends the guarantee to the interleaved
// multi-core path, whose core-picking loop is the most order-sensitive
// code in the simulator.
func TestRunMultiBitIdentical(t *testing.T) {
	profs := make([]workload.Profile, 0, 2)
	for _, name := range []string{"sphinx3", "gobmk"} {
		p, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		profs = append(profs, p)
	}
	opt := fastOptions("rwp")
	opt.Hier.Cores = 2
	opt.Warmup = 50_000
	opt.Measure = 150_000
	a, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multi-core runs differ:\n  a: %+v\n  b: %+v", a, b)
	}
}
