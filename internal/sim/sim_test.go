package sim

import (
	"testing"

	"rwp/internal/hier"
	"rwp/internal/workload"
)

// fastOptions shrinks the system and run length for test speed while
// keeping the capacity relationships (footprint vs LLC) meaningful.
func fastOptions(policy string) Options {
	opt := DefaultOptions()
	opt.Hier.LLCPolicy = policy
	opt.Warmup = 100_000
	opt.Measure = 300_000
	return opt
}

func TestRunSingleSmoke(t *testing.T) {
	prof, err := workload.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSingle(prof, fastOptions("lru"))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > float64(DefaultOptions().CPU.Width) {
		t.Fatalf("IPC %v out of range", res.IPC)
	}
	if res.Instructions == 0 || res.Core.Cycles == 0 {
		t.Fatalf("empty measured region: %+v", res.Core)
	}
	if res.LLC.TotalAccesses() == 0 {
		t.Fatal("LLC never touched")
	}
	if res.Workload != "gcc" || res.Policy != "lru" {
		t.Fatalf("labels wrong: %q %q", res.Workload, res.Policy)
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	prof, _ := workload.Get("astar")
	a, err := RunSingle(prof, fastOptions("rwp"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSingle(prof, fastOptions("rwp"))
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.LLC != b.LLC || a.Core != b.Core { //rwplint:allow floateq — exact: bit-identity determinism check
		t.Fatal("same-options runs differ")
	}
}

func TestValidation(t *testing.T) {
	prof, _ := workload.Get("gcc")
	opt := fastOptions("lru")
	opt.Measure = 0
	if _, err := RunSingle(prof, opt); err == nil {
		t.Error("zero measure accepted")
	}
	opt = fastOptions("lru")
	opt.Hier.Cores = 2
	if _, err := RunSingle(prof, opt); err == nil {
		t.Error("multi-core hierarchy accepted by RunSingle")
	}
	if _, err := RunMulti(nil, fastOptions("lru")); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestMemIntensityDrivesIPC(t *testing.T) {
	// A compute-bound profile must achieve much higher IPC than a
	// memory-bound streaming one.
	light, _ := workload.Get("povray")
	heavy, _ := workload.Get("libquantum")
	lr, err := RunSingle(light, fastOptions("lru"))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := RunSingle(heavy, fastOptions("lru"))
	if err != nil {
		t.Fatal(err)
	}
	if lr.IPC < 2*hr.IPC {
		t.Fatalf("compute-bound IPC %v not ≫ streaming IPC %v", lr.IPC, hr.IPC)
	}
}

func TestRWPImprovesReadMissesOnSensitiveWorkload(t *testing.T) {
	prof, _ := workload.Get("mcf")
	lru, err := RunSingle(prof, fastOptions("lru"))
	if err != nil {
		t.Fatal(err)
	}
	rwp, err := RunSingle(prof, fastOptions("rwp"))
	if err != nil {
		t.Fatal(err)
	}
	if rwp.ReadMPKI >= lru.ReadMPKI {
		t.Fatalf("RWP ReadMPKI %.3f >= LRU %.3f on mcf", rwp.ReadMPKI, lru.ReadMPKI)
	}
	if rwp.IPC <= lru.IPC {
		t.Fatalf("RWP IPC %.4f <= LRU %.4f on mcf", rwp.IPC, lru.IPC)
	}
}

func TestRunMultiSmoke(t *testing.T) {
	names := []string{"gcc", "povray", "libquantum", "astar"}
	profs := make([]workload.Profile, len(names))
	for i, n := range names {
		p, err := workload.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		profs[i] = p
	}
	opt := fastOptions("lru")
	opt.Hier = hier.MulticoreConfig(4)
	opt.Hier.LLCPolicy = "lru"
	opt.Warmup = 50_000
	opt.Measure = 150_000
	res, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("%d per-core results", len(res.PerCore))
	}
	for i, r := range res.PerCore {
		if r.IPC <= 0 {
			t.Fatalf("core %d IPC %v", i, r.IPC)
		}
		if r.Workload != names[i] {
			t.Fatalf("core %d workload %q", i, r.Workload)
		}
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	profs := make([]workload.Profile, 2)
	for i, n := range []string{"gcc", "lbm"} {
		p, _ := workload.Get(n)
		profs[i] = p
	}
	opt := fastOptions("rwp")
	opt.Hier = hier.MulticoreConfig(2)
	opt.Hier.LLCPolicy = "rwp"
	opt.Warmup = 20_000
	opt.Measure = 80_000
	a, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPCs {
		if a.IPCs[i] != b.IPCs[i] { //rwplint:allow floateq — exact: bit-identity determinism check
			t.Fatal("multi-core run not deterministic")
		}
	}
}

func TestSharedLLCContentionHurts(t *testing.T) {
	// gcc alone vs gcc sharing the LLC with three streamers: shared IPC
	// must drop.
	prof, _ := workload.Get("gcc")
	aloneOpt := fastOptions("lru")
	aloneOpt.Hier = hier.MulticoreConfig(1)
	aloneOpt.Hier.LLCPolicy = "lru"
	alone, err := RunSingle(prof, aloneOpt)
	if err != nil {
		t.Fatal(err)
	}

	names := []string{"gcc", "libquantum", "lbm", "milc"}
	profs := make([]workload.Profile, len(names))
	for i, n := range names {
		p, _ := workload.Get(n)
		profs[i] = p
	}
	opt := fastOptions("lru")
	opt.Hier = hier.MulticoreConfig(4)
	opt.Hier.LLCPolicy = "lru"
	opt.Warmup = 50_000
	opt.Measure = 150_000
	shared, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if shared.PerCore[0].IPC >= alone.IPC {
		t.Fatalf("gcc shared IPC %v >= alone IPC %v", shared.PerCore[0].IPC, alone.IPC)
	}
}

func TestRunMultiPerCoreMPKI(t *testing.T) {
	// A cache-hungry core must show a higher per-core LLC read MPKI than
	// a compute-bound one in the same mix.
	profs := make([]workload.Profile, 2)
	for i, n := range []string{"libquantum", "povray"} {
		p, _ := workload.Get(n)
		profs[i] = p
	}
	opt := fastOptions("lru")
	opt.Hier = hier.MulticoreConfig(2)
	opt.Hier.LLCPolicy = "lru"
	opt.Warmup = 30_000
	opt.Measure = 120_000
	res, err := RunMulti(profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].ReadMPKI <= res.PerCore[1].ReadMPKI {
		t.Fatalf("streamer MPKI %.2f <= compute-bound MPKI %.2f",
			res.PerCore[0].ReadMPKI, res.PerCore[1].ReadMPKI)
	}
	if res.PerCore[1].ReadMPKI > 1 {
		t.Fatalf("povray MPKI %.2f, want ~0", res.PerCore[1].ReadMPKI)
	}
}
