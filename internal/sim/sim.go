// Package sim drives workloads through the core timing model and the
// memory hierarchy: single-core runs for the paper's per-benchmark
// figures and interleaved multi-core runs for the shared-LLC experiments.
//
// Runs are deterministic: the same Options produce bit-identical Results.
package sim

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/cpu"
	"rwp/internal/dram"
	"rwp/internal/hier"
	"rwp/internal/mem"
	"rwp/internal/probe"
	"rwp/internal/stats"
	"rwp/internal/trace"
	"rwp/internal/workload"

	// Register every evaluated policy in the shared registry.
	_ "rwp/internal/core"
	_ "rwp/internal/rrp"
	_ "rwp/internal/ucp"
)

// Options configures a run.
type Options struct {
	// Hier is the memory-system configuration (its LLCPolicy field names
	// the mechanism under test).
	Hier hier.Config
	// CPU is the core model configuration.
	CPU cpu.Config
	// Warmup is the number of memory accesses (per core) to run before
	// statistics reset.
	Warmup uint64
	// Measure is the number of memory accesses (per core) in the
	// measured region.
	Measure uint64
}

// DefaultOptions returns the single-core configuration used by the
// experiment suite.
func DefaultOptions() Options {
	return Options{
		Hier:    hier.DefaultConfig(),
		CPU:     cpu.DefaultConfig(),
		Warmup:  500_000,
		Measure: 2_000_000,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if err := o.Hier.Validate(); err != nil {
		return err
	}
	if err := o.CPU.Validate(); err != nil {
		return err
	}
	if o.Measure == 0 {
		return fmt.Errorf("sim: Measure must be positive")
	}
	return nil
}

// Result summarizes one core's measured region.
type Result struct {
	Workload string
	Policy   string

	Core cpu.Stats
	L1   cache.Stats
	L2   cache.Stats
	LLC  cache.Stats
	DRAM dram.Stats

	// IPC over the measured region.
	IPC float64
	// Instructions in the measured region.
	Instructions uint64
	// ReadMPKI is LLC demand-load misses per kilo-instruction.
	ReadMPKI float64
	// TotalMPKI is all LLC misses per kilo-instruction.
	TotalMPKI float64
	// WBPKI is DRAM writebacks per kilo-instruction.
	WBPKI float64
}

// RunSingle executes one workload on a single-core system.
func RunSingle(prof workload.Profile, opt Options) (Result, error) {
	return runSingle(prof, opt, nil)
}

// RunSingleProbe is RunSingle with an attached probe. The probe is wired
// to the hierarchy at the warmup boundary, so its aggregates cover
// exactly the measured region (matching Result's stats); every
// p.Window() measured accesses it additionally receives an IntervalEnd
// snapshot. Attaching a probe never changes the Result — the probe only
// observes (enforced by probe_test.go).
func RunSingleProbe(prof workload.Profile, opt Options, p probe.Probe) (Result, error) {
	return runSingle(prof, opt, p)
}

func runSingle(prof workload.Profile, opt Options, p probe.Probe) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if opt.Hier.Cores != 1 {
		return Result{}, fmt.Errorf("sim: RunSingle needs a 1-core hierarchy, got %d", opt.Hier.Cores)
	}
	h, err := hier.New(opt.Hier)
	if err != nil {
		return Result{}, err
	}
	core, err := cpu.New(opt.CPU)
	if err != nil {
		return Result{}, err
	}
	src := prof.NewSource()
	var window uint64
	if p != nil {
		window = p.Window()
		if opt.Warmup == 0 {
			h.SetProbe(p)
		}
	}

	var warmEndIC, warmEndCycles uint64
	var warmCore cpu.Stats
	var lastIC uint64
	var winIdx int
	total := opt.Warmup + opt.Measure
	for i := uint64(0); i < total; i++ {
		a, err := src.Next()
		if err != nil {
			return Result{}, fmt.Errorf("sim: workload %s: %w", prof.Name, err)
		}
		step(core, h, 0, a)
		lastIC = a.IC
		if i+1 == opt.Warmup {
			h.ResetStats()
			snap := core.Stats()
			warmEndIC, warmEndCycles = snap.Instructions, snap.Cycles
			warmCore = snap
			if p != nil {
				h.SetProbe(p)
			}
		}
		if p != nil && window > 0 && i+1 > opt.Warmup {
			measured := i + 1 - opt.Warmup
			if measured%window == 0 {
				snap := core.Stats()
				p.IntervalEnd(probe.IntervalEvent{
					Index:         winIdx,
					EndAccess:     measured,
					Instructions:  snap.Instructions - warmEndIC,
					Cycles:        snap.Cycles - warmEndCycles,
					LLCReadMisses: h.LLC().Stats().ReadMisses(),
					DirtyTarget:   llcDirtyTarget(h),
					DirtyLines:    h.LLC().TotalDirty(),
					ValidLines:    h.LLC().TotalValid(),
				})
				winIdx++
			}
		}
	}
	final := core.Finish(lastIC + 1)
	res := Result{
		Workload: prof.Name,
		Policy:   opt.Hier.LLCPolicy,
		L1:       h.L1(0).Stats(),
		L2:       h.L2(0).Stats(),
		LLC:      h.LLC().Stats(),
		DRAM:     h.DRAM().Stats(),
	}
	res.Core = cpu.Stats{
		Instructions: final.Instructions - warmEndIC,
		Cycles:       final.Cycles - warmEndCycles,
		Loads:        final.Loads - warmCore.Loads,
		Stores:       final.Stores - warmCore.Stores,
		LoadStalls:   final.LoadStalls - warmCore.LoadStalls,
		StoreStalls:  final.StoreStalls - warmCore.StoreStalls,
	}
	res.Instructions = res.Core.Instructions
	res.IPC = res.Core.IPC()
	res.ReadMPKI = stats.PerKilo(res.LLC.ReadMisses(), res.Instructions)
	res.TotalMPKI = stats.PerKilo(res.LLC.TotalMisses(), res.Instructions)
	res.WBPKI = stats.PerKilo(res.DRAM.Writes, res.Instructions)
	return res, nil
}

// step feeds one access through the core and hierarchy in the canonical
// order: advance issue to the access's IC, query the hierarchy at the
// issue cycle, then charge the core.
func step(core *cpu.Core, h *hier.Hierarchy, coreID int, a mem.Access) {
	core.AdvanceTo(a.IC)
	now := core.Now()
	if a.Kind.IsRead() {
		lat := h.Load(coreID, now, a.Addr, a.PC)
		core.Load(a.IC, lat)
	} else {
		lat := h.Store(coreID, now, a.Addr, a.PC)
		core.Store(a.IC, lat)
	}
}

// MultiResult summarizes a multiprogrammed run.
type MultiResult struct {
	Policy string
	// PerCore holds each core's measured-region result, in mix order.
	PerCore []Result
	// IPCs is the per-core IPC vector (convenience copy).
	IPCs []float64
}

// Throughput is Σ per-core IPC.
func (m MultiResult) Throughput() float64 { return stats.Throughput(m.IPCs) }

// RunMulti executes one workload per core on a shared-LLC system. Cores
// advance in lockstep by simulated time (the core with the smallest local
// clock issues next), which is how trace-driven CMP studies interleave
// independent streams. Cores that finish their measured quota keep
// running — still generating interference — until every core has
// finished; their extra work is not counted.
func RunMulti(profs []workload.Profile, opt Options) (MultiResult, error) {
	return runMulti(profs, opt, nil)
}

// RunMultiProbe is RunMulti with an attached probe. The probe is wired
// to the shared LLC once every core has finished warming, so aggregates
// cover the same region as the measured LLC deltas; IntervalEnd fires
// every p.Window() globally measured accesses with instruction and cycle
// counts summed over cores.
func RunMultiProbe(profs []workload.Profile, opt Options, p probe.Probe) (MultiResult, error) {
	return runMulti(profs, opt, p)
}

func runMulti(profs []workload.Profile, opt Options, p probe.Probe) (MultiResult, error) {
	n := len(profs)
	if n == 0 {
		return MultiResult{}, fmt.Errorf("sim: empty mix")
	}
	if opt.Hier.Cores != n {
		return MultiResult{}, fmt.Errorf("sim: hierarchy has %d cores for a %d-workload mix", opt.Hier.Cores, n)
	}
	if err := opt.Validate(); err != nil {
		return MultiResult{}, err
	}
	h, err := hier.New(opt.Hier)
	if err != nil {
		return MultiResult{}, err
	}

	type coreState struct {
		core       *cpu.Core
		src        *workload.Source
		done       uint64 // accesses completed
		lastIC     uint64
		warmIC     uint64
		warmCyc    uint64
		warmSnap   cpu.Stats
		l1Snap     cache.Stats
		l2Snap     cache.Stats
		llcRMWarm  uint64 // per-core LLC read misses at warmup end
		llcRMFinal uint64 // captured when the core's counted region ends
	}
	states := make([]*coreState, n)
	for i, p := range profs {
		c, err := cpu.New(opt.CPU)
		if err != nil {
			return MultiResult{}, err
		}
		states[i] = &coreState{core: c, src: p.NewSource()}
	}
	total := opt.Warmup + opt.Measure
	llcWarm := cache.Stats{}
	warmDone := 0
	var window uint64
	if p != nil {
		window = p.Window()
	}
	if p != nil && opt.Warmup == 0 {
		warmDone = n
		h.SetProbe(p)
	}
	var measured uint64
	var winIdx int

	finished := 0
	for finished < n {
		// Pick the least-advanced core still under quota; finished cores
		// continue only while any counted core lags them (interference).
		best := -1
		var bestCycle uint64
		for i, st := range states {
			if st.done >= total {
				continue
			}
			if best == -1 || st.core.Now() < bestCycle {
				best, bestCycle = i, st.core.Now()
			}
		}
		if best == -1 {
			break
		}
		st := states[best]
		a, err := st.src.Next()
		if err != nil {
			return MultiResult{}, fmt.Errorf("sim: workload %s: %w", profs[best].Name, err)
		}
		step(st.core, h, best, a)
		st.lastIC = a.IC
		st.done++
		if st.done == opt.Warmup {
			snap := st.core.Stats()
			st.warmIC, st.warmCyc = snap.Instructions, snap.Cycles
			st.warmSnap = snap
			st.l1Snap = h.L1(best).Stats()
			st.l2Snap = h.L2(best).Stats()
			st.llcRMWarm = h.LLCReadMisses(best)
			warmDone++
			if warmDone == n {
				llcWarm = h.LLC().Stats()
				h.DRAM().ResetStats()
				if p != nil {
					h.SetProbe(p)
				}
			}
		}
		if p != nil && window > 0 && warmDone == n && st.done > opt.Warmup {
			measured++
			if measured%window == 0 {
				var insts, cycles uint64
				for _, s2 := range states {
					snap := s2.core.Stats()
					insts += snap.Instructions - s2.warmIC
					cycles += snap.Cycles - s2.warmCyc
				}
				p.IntervalEnd(probe.IntervalEvent{
					Index:         winIdx,
					EndAccess:     measured,
					Instructions:  insts,
					Cycles:        cycles,
					LLCReadMisses: h.LLC().Stats().ReadMisses() - llcWarm.ReadMisses(),
					DirtyTarget:   llcDirtyTarget(h),
					DirtyLines:    h.LLC().TotalDirty(),
					ValidLines:    h.LLC().TotalValid(),
				})
				winIdx++
			}
		}
		if st.done == total {
			st.llcRMFinal = h.LLCReadMisses(best)
			finished++
		}
	}

	res := MultiResult{Policy: opt.Hier.LLCPolicy}
	llcEnd := h.LLC().Stats()
	llcMeasured := subStats(llcEnd, llcWarm)
	for i, st := range states {
		final := st.core.Finish(st.lastIC + 1)
		r := Result{
			Workload: profs[i].Name,
			Policy:   opt.Hier.LLCPolicy,
			L1:       subStats(h.L1(i).Stats(), st.l1Snap),
			L2:       subStats(h.L2(i).Stats(), st.l2Snap),
			LLC:      llcMeasured,
			DRAM:     h.DRAM().Stats(),
		}
		r.Core = cpu.Stats{
			Instructions: final.Instructions - st.warmIC,
			Cycles:       final.Cycles - st.warmCyc,
			Loads:        final.Loads - st.warmSnap.Loads,
			Stores:       final.Stores - st.warmSnap.Stores,
			LoadStalls:   final.LoadStalls - st.warmSnap.LoadStalls,
			StoreStalls:  final.StoreStalls - st.warmSnap.StoreStalls,
		}
		r.Instructions = r.Core.Instructions
		r.IPC = r.Core.IPC()
		r.ReadMPKI = stats.PerKilo(st.llcRMFinal-st.llcRMWarm, r.Instructions)
		res.PerCore = append(res.PerCore, r)
		res.IPCs = append(res.IPCs, r.IPC)
	}
	return res, nil
}

// subStats returns a-b fieldwise (measured-region deltas).
func subStats(a, b cache.Stats) cache.Stats {
	var out cache.Stats
	for i := 0; i < 3; i++ {
		out.Accesses[i] = a.Accesses[i] - b.Accesses[i]
		out.Hits[i] = a.Hits[i] - b.Hits[i]
		out.Misses[i] = a.Misses[i] - b.Misses[i]
	}
	out.Fills = a.Fills - b.Fills
	out.Bypasses = a.Bypasses - b.Bypasses
	out.Evictions = a.Evictions - b.Evictions
	out.DirtyEvict = a.DirtyEvict - b.DirtyEvict
	return out
}

// Ensure trace is linked (Source contract documentation references it).
var _ trace.Source = (*workload.Source)(nil)
