package sim

import (
	"testing"

	"rwp/internal/trace"
	"rwp/internal/workload"
)

func TestRunSourceMatchesRunSingle(t *testing.T) {
	// Feeding the generator's own stream through RunSource must produce
	// exactly the same result as RunSingle.
	prof, err := workload.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions("rwp")
	direct, err := RunSingle(prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	viaSource, err := RunSource("gcc", prof.NewSource(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if direct.IPC != viaSource.IPC || direct.LLC != viaSource.LLC { //rwplint:allow floateq — exact: bit-identity determinism check
		t.Fatalf("RunSource diverged from RunSingle: IPC %v vs %v", direct.IPC, viaSource.IPC)
	}
}

func TestRunSourceShortTraceFails(t *testing.T) {
	prof, _ := workload.Get("gcc")
	opt := fastOptions("lru")
	short := trace.NewLimit(prof.NewSource(), opt.Warmup/2)
	if _, err := RunSource("short", short, opt); err == nil {
		t.Fatal("trace shorter than warmup accepted")
	}
}

func TestRunSourceTruncatedMeasureIsOK(t *testing.T) {
	prof, _ := workload.Get("gcc")
	opt := fastOptions("lru")
	// Trace covers warmup plus half the measure window: allowed.
	src := trace.NewLimit(prof.NewSource(), opt.Warmup+opt.Measure/2)
	res, err := RunSource("truncated", src, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Instructions == 0 {
		t.Fatalf("bad truncated result: %+v", res)
	}
}

func TestRunSourceRejectsMulticoreConfig(t *testing.T) {
	prof, _ := workload.Get("gcc")
	opt := fastOptions("lru")
	opt.Hier.Cores = 2
	if _, err := RunSource("x", prof.NewSource(), opt); err == nil {
		t.Fatal("multicore hierarchy accepted")
	}
}
