package cluster

import (
	"bytes"
	"testing"

	"rwp/internal/probe"
)

func testManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(ManagerConfig{Window: 1024, HotReads: 500, ColdReads: 50, HotP99: 0, MaxReplicas: 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerDecide(t *testing.T) {
	m := testManager(t)
	ws := []probe.ShardWindow{
		{Window: 0, Shard: 0, Reads: 900, Replicas: 1},  // hot → add
		{Window: 0, Shard: 1, Reads: 10, Replicas: 1},   // cold, already minimal → nothing
		{Window: 0, Shard: 2, Reads: 10, Replicas: 2},   // cold, replicated → drop
		{Window: 0, Shard: 3, Reads: 200, Replicas: 1},  // warm → nothing
		{Window: 0, Shard: 4, Reads: 900, Replicas: 3},  // hot, at node cap → nothing
		{Window: 0, Shard: 5, Reads: 600, Replicas: 2},  // hot, room to grow → add
	}
	got := m.Decide(ws, 3)
	want := []Command{
		{AddReplica, 0},
		{DropReplica, 2},
		{AddReplica, 5},
	}
	if len(got) != len(want) {
		t.Fatalf("Decide = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("command %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestManagerHotP99Gate(t *testing.T) {
	m, err := NewManager(ManagerConfig{Window: 1024, HotReads: 500, ColdReads: 50, HotP99: 8})
	if err != nil {
		t.Fatal(err)
	}
	ws := []probe.ShardWindow{
		{Shard: 0, Reads: 900, P99Cost: 2, Replicas: 1}, // busy but not congested
		{Shard: 1, Reads: 900, P99Cost: 9, Replicas: 1}, // busy and congested → add
	}
	got := m.Decide(ws, 4)
	if len(got) != 1 || got[0] != (Command{AddReplica, 1}) {
		t.Fatalf("Decide with p99 gate = %v, want only add shard 1", got)
	}
}

func TestManagerMaxReplicasCap(t *testing.T) {
	m, err := NewManager(ManagerConfig{Window: 1024, HotReads: 500, ColdReads: 50, MaxReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ws := []probe.ShardWindow{{Shard: 0, Reads: 900, Replicas: 2}}
	if got := m.Decide(ws, 5); len(got) != 0 {
		t.Fatalf("Decide past MaxReplicas = %v, want none", got)
	}
}

func TestManagerConfigValidation(t *testing.T) {
	bad := []ManagerConfig{
		{Window: 0, HotReads: 10, ColdReads: 1},
		{Window: 64, HotReads: 10, ColdReads: 10},
		{Window: 64, HotReads: 10, ColdReads: 20},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestManagerReplayFromJournal pins the determinism contract end to
// end: serialize a window log with the probe codec, read it back, and
// the manager's decision stream over the decoded windows matches the
// decisions over the originals exactly.
func TestManagerReplayFromJournal(t *testing.T) {
	m := testManager(t)
	ws := []probe.ShardWindow{
		{Window: 0, Shard: 0, Reads: 800, Writes: 100, P99Cost: 5, Replicas: 1},
		{Window: 0, Shard: 1, Reads: 20, Writes: 2, P99Cost: 1, Replicas: 1},
		{Window: 1, Shard: 0, Reads: 700, Writes: 90, P99Cost: 4, Replicas: 2},
		{Window: 1, Shard: 1, Reads: 30, Writes: 1, P99Cost: 1, Replicas: 2},
	}
	var buf bytes.Buffer
	if err := probe.WriteShardWindows(&buf, "replay", 1024, ws); err != nil {
		t.Fatal(err)
	}
	_, _, decoded, err := probe.ReadShardWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Decide window by window, as the live router does.
	decideBy := func(all []probe.ShardWindow) []Command {
		var out []Command
		for _, win := range []int{0, 1} {
			var batch []probe.ShardWindow
			for _, w := range all {
				if w.Window == win {
					batch = append(batch, w)
				}
			}
			out = append(out, m.Decide(batch, 3)...)
		}
		return out
	}
	live, replayed := decideBy(ws), decideBy(decoded)
	if len(live) != len(replayed) {
		t.Fatalf("replayed %d commands, live %d", len(replayed), len(live))
	}
	for i := range live {
		if live[i] != replayed[i] {
			t.Fatalf("command %d: live %v, replayed %v", i, live[i], replayed[i])
		}
	}
	if len(live) == 0 {
		t.Fatal("scenario produced no commands — test is vacuous")
	}
}
