package cluster

import (
	"fmt"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
	"rwp/internal/probe"
)

// NodeConn is the per-node transport the router drives: the pipelined
// subset of proto.Client, which satisfies it directly. directConn
// (cluster.go) satisfies it too, executing synchronously against an
// in-process cache — the differential tests run both and demand
// identical merged stats, which is the transport-equivalence contract
// extended to the cluster layer.
type NodeConn interface {
	QueueGet(key string) error
	QueuePut(key string, val []byte) error
	QueueMGet(keys []string) error
	QueueMPut(kvs []proto.KV) error
	Depth() int
	Flush() ([]proto.Reply, error)
	Stats() ([]byte, error)
	Close() error
}

var _ NodeConn = (*proto.Client)(nil)

// Resetter purges a node's global cache-set range [lo, hi), returning
// the number of entries purged. In-process nodes bind it to
// live.Cache.ResetRange; it is what makes replica adds safe — a node
// re-entering a shard's replica set may hold values that missed
// interim writes, so its range starts cold and refills through the
// node's Loader.
type Resetter func(lo, hi int) int

// Snapshotter captures a node's global cache-set range [lo, hi) as
// snapshot bytes (internal/snap format). In-process nodes bind it to
// live.Cache.SnapBytes, remote nodes to proto.Client.SnapRange.
type Snapshotter func(lo, hi int) ([]byte, error)

// Restorer applies snapshot bytes to a node with catch-up semantics —
// entries and policy state installed for the snapshot's range, the
// node's own counters kept — returning entries purged. In-process
// nodes bind it to live.Cache.RestoreBytes, remote nodes to
// proto.Client.Restore.
type Restorer func(data []byte) (int, error)

// ClientConfig wires a router.
type ClientConfig struct {
	// Ring maps keys to shards and shards to nodes. The router owns it
	// (replica sets mutate at window boundaries).
	Ring *Ring
	// Conns holds one transport per ring node, index-aligned.
	Conns []NodeConn
	// Resetters is index-aligned with Conns; required when Manager is
	// set, optional (nil) otherwise — it is the unconditional fallback
	// for replica adds. Remote TCP nodes bind proto.Client.ResetRange.
	Resetters []Resetter
	// Snapshotters and Restorers, when wired (both non-empty,
	// index-aligned with Conns), upgrade replica adds from cold resets
	// to warm catch-up: the new replica receives the shard primary's
	// state snapshot instead of refilling every resident key through
	// its Loader. Any transfer failure falls back to the Resetter, so
	// correctness (read-your-write) never depends on them.
	Snapshotters []Snapshotter
	Restorers    []Restorer
	// Manager, when non-nil, runs the replication control loop at
	// window boundaries.
	Manager *Manager
	// Window is the op-count window width for load sampling when no
	// Manager is wired (0 = sample only at Finish). With a Manager, the
	// manager's own window wins — sampling and deciding share a clock.
	Window int
	// Pipeline bounds queued ops between flushes during Replay (<= 0
	// selects DefaultPipeline). Keep the implied burst bytes in the tens
	// of KiB — see proto.Client.Flush.
	Pipeline int
}

// DefaultPipeline is the Replay flush depth in routed operations.
const DefaultPipeline = 32

// Client routes key-value operations across the cluster. Reads go to
// one rendezvous-picked replica of the key's shard; writes go to every
// replica, so replication changes only where reads land, never what
// they observe. It is not safe for concurrent use.
//
// The client is also the cluster's load sensor: every routed op lands
// in an op-count window (per-shard read/write counters plus a digest
// of deterministic service costs), and at each window boundary the
// windows are journaled and — when a Manager is wired — turned into
// replica commands. The service cost of an op is the serving node's
// in-window op count at routing time: a pure congestion proxy that is
// a function of the stream alone, so p99s, decisions, and therefore
// entire cluster runs are bit-reproducible.
type Client struct {
	ring      *Ring
	conns     []NodeConn
	reset     []Resetter
	snap      []Snapshotter
	restore   []Restorer
	mgr       *Manager
	windowOps int
	pipeline  int

	// catchupSnaps and catchupResets count how replica adds were
	// satisfied: a warm snapshot transfer from the shard primary, or
	// the cold-reset fallback.
	catchupSnaps  int
	catchupResets int

	// Current-window state, all op-count clocked.
	window    int
	opsInWin  int
	reads     []uint64         // per shard
	writes    []uint64         // per shard
	costs     []probe.CostHist // per shard: exact service-cost histograms
	nodeLoad  []uint64         // per node: ops routed this window (cost proxy)
	sinceFlsh int              // ops queued since the last flushAll

	// Run log.
	windows    []probe.ShardWindow
	applied    []Command
	totalOps   uint64
	totalReads uint64
	makespan   uint64 // sum over closed windows of max per-node load
}

// NewClient validates cfg and builds a router.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("cluster: nil ring")
	}
	if len(cfg.Conns) != len(cfg.Ring.Nodes()) {
		return nil, fmt.Errorf("cluster: %d conns for %d ring nodes", len(cfg.Conns), len(cfg.Ring.Nodes()))
	}
	if cfg.Manager != nil {
		if len(cfg.Resetters) != len(cfg.Conns) {
			return nil, fmt.Errorf("cluster: manager requires one resetter per node")
		}
		for i, r := range cfg.Resetters {
			if r == nil {
				return nil, fmt.Errorf("cluster: manager requires a resetter for node %d", i)
			}
		}
	}
	if len(cfg.Snapshotters) != 0 && len(cfg.Snapshotters) != len(cfg.Conns) {
		return nil, fmt.Errorf("cluster: %d snapshotters for %d conns", len(cfg.Snapshotters), len(cfg.Conns))
	}
	if len(cfg.Restorers) != 0 && len(cfg.Restorers) != len(cfg.Conns) {
		return nil, fmt.Errorf("cluster: %d restorers for %d conns", len(cfg.Restorers), len(cfg.Conns))
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = DefaultPipeline
	}
	windowOps := cfg.Window
	if cfg.Manager != nil {
		windowOps = cfg.Manager.Config().Window
	}
	c := &Client{
		ring:      cfg.Ring,
		conns:     cfg.Conns,
		reset:     cfg.Resetters,
		snap:      cfg.Snapshotters,
		restore:   cfg.Restorers,
		mgr:       cfg.Manager,
		windowOps: windowOps,
		pipeline:  cfg.Pipeline,
		reads:     make([]uint64, cfg.Ring.Shards()),
		writes:    make([]uint64, cfg.Ring.Shards()),
		costs:     make([]probe.CostHist, cfg.Ring.Shards()),
		nodeLoad:  make([]uint64, len(cfg.Conns)),
	}
	return c, nil
}

// Ring returns the router's ring (replica sets reflect applied
// commands).
func (c *Client) Ring() *Ring { return c.ring }

// accountRead records a read of shard s served by node n and returns
// nothing; the service cost is the node's pre-increment in-window load.
func (c *Client) accountRead(s, n int) {
	c.costs[s].Observe(int(c.nodeLoad[n]))
	c.nodeLoad[n]++
	c.reads[s]++
	c.totalReads++
	c.tick()
}

// accountWrite records a write to shard s fanned to nodes ns: one
// stream op, one unit of load on every replica.
func (c *Client) accountWrite(s int, ns []int) {
	for _, n := range ns {
		c.nodeLoad[n]++
	}
	c.writes[s]++
	c.tick()
}

// tick advances the op clock; the boundary is processed by the public
// entry points (see boundary), after the op is safely queued.
func (c *Client) tick() {
	c.totalOps++
	c.opsInWin++
}

// boundary closes the window once the op clock crosses it. The
// boundary must not tear a pipelined burst: every queued op belongs to
// the closing window, so the wire is drained before the replica sets
// move. This is what keeps direct and pipe modes bit-identical — both
// apply all window-W ops before any window-W replica command. A batch
// op that overshoots the boundary lands whole in the closing window
// (batches are atomic with respect to windows).
func (c *Client) boundary() error {
	if c.mgrWindow() == 0 || c.opsInWin < c.mgrWindow() {
		return nil
	}
	if err := c.flushAll(); err != nil {
		return err
	}
	c.closeWindow(true)
	return nil
}

// mgrWindow returns the op-count window width (0 = windowing by
// explicit Finish only).
func (c *Client) mgrWindow() int { return c.windowOps }

// closeWindow emits the current window's shard samples, optionally
// consults the manager, applies its commands, and resets the window
// state. Samples cover every shard — idle replicated shards must be
// visible or the manager could never collapse them.
func (c *Client) closeWindow(decide bool) {
	var maxLoad uint64
	for _, l := range c.nodeLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	c.makespan += maxLoad
	start := len(c.windows)
	for s := 0; s < c.ring.Shards(); s++ {
		c.windows = append(c.windows, probe.ShardWindow{
			Window: c.window, Shard: s,
			Reads: c.reads[s], Writes: c.writes[s],
			P99Cost:  c.costs[s].Percentile(99),
			Replicas: c.ring.ReplicaCount(s),
		})
	}
	if decide && c.mgr != nil {
		for _, cmd := range c.mgr.Decide(c.windows[start:], len(c.conns)) {
			c.apply(cmd)
		}
	}
	for s := range c.reads {
		c.reads[s], c.writes[s] = 0, 0
		c.costs[s].Reset()
	}
	for n := range c.nodeLoad {
		c.nodeLoad[n] = 0
	}
	c.window++
	c.opsInWin = 0
}

// apply executes one manager command against the ring, bringing a
// newly added replica's set range up to date (see syncReplica).
func (c *Client) apply(cmd Command) {
	switch cmd.Kind {
	case AddReplica:
		n, ok := c.ring.AddReplica(cmd.Shard)
		if !ok {
			return
		}
		lo, hi := c.ring.SetRange(cmd.Shard)
		c.syncReplica(cmd.Shard, n, lo, hi)
	case DropReplica:
		if _, ok := c.ring.DropReplica(cmd.Shard); !ok {
			return
		}
	}
	c.applied = append(c.applied, cmd)
}

// syncReplica brings the just-added replica n of shard up to date:
// warm catch-up — the shard primary's state snapshot transferred and
// installed — when the hooks are wired, a cold reset otherwise or on
// any transfer failure. Both paths drop whatever stale entries n held,
// so read-your-write holds either way; catch-up just replaces the
// Loader-refill cost of every future read with one bulk transfer.
// AddReplica appends to the replica set, so the primary is a
// previously-serving node, never n itself. Called only from apply —
// after boundary's flushAll, so the transports' pipelines are empty
// and the chunked transfer cannot tear a burst.
func (c *Client) syncReplica(shard, n, lo, hi int) {
	if p := c.ring.Primary(shard); c.canCatchup(p, n) {
		if data, err := c.snap[p](lo, hi); err == nil {
			if _, err := c.restore[n](data); err == nil {
				c.catchupSnaps++
				return
			}
		}
	}
	c.reset[n](lo, hi)
	c.catchupResets++
}

// canCatchup reports whether both transfer hooks exist for the
// primary/replica pair.
func (c *Client) canCatchup(p, n int) bool {
	return len(c.snap) != 0 && len(c.restore) != 0 && c.snap[p] != nil && c.restore[n] != nil
}

// CatchupCounts reports how replica adds were satisfied so far:
// warm snapshot transfers and cold-reset fallbacks.
func (c *Client) CatchupCounts() (snaps, resets int) {
	return c.catchupSnaps, c.catchupResets
}

// flushAll drains every node connection in node order.
func (c *Client) flushAll() error {
	for i, conn := range c.conns {
		if conn.Depth() == 0 {
			continue
		}
		if _, err := conn.Flush(); err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	c.sinceFlsh = 0
	return nil
}

// queueRead routes one read and queues it (no flush).
func (c *Client) queueRead(key string) (node int, err error) {
	h := live.HashKey(key)
	s := c.ring.Shard(h)
	n := c.ring.ReadNode(s, h)
	if err := c.conns[n].QueueGet(key); err != nil {
		return n, err
	}
	c.sinceFlsh++
	c.accountRead(s, n)
	return n, nil
}

// queueWrite routes one write to every replica and queues it.
func (c *Client) queueWrite(key string, val []byte) (primary int, err error) {
	s := c.ring.KeyShard(key)
	ns := c.ring.Replicas(s)
	for _, n := range ns {
		if err := c.conns[n].QueuePut(key, val); err != nil {
			return ns[0], err
		}
		c.sinceFlsh++
	}
	c.accountWrite(s, ns)
	return ns[0], nil
}

// Replay streams ops through the cluster pipelined: route, queue,
// flush every Pipeline queued requests (and at every window boundary),
// discarding replies. It is the bulk driver behind selftests and
// benches.
func (c *Client) Replay(ops []loadgen.Op) error {
	for _, op := range ops {
		var err error
		if op.Put {
			_, err = c.queueWrite(op.Key, op.Value)
		} else {
			_, err = c.queueRead(op.Key)
		}
		if err != nil {
			return err
		}
		if err := c.boundary(); err != nil {
			return err
		}
		if c.sinceFlsh >= c.pipeline {
			if err := c.flushAll(); err != nil {
				return err
			}
		}
	}
	return c.flushAll()
}

// Get routes one read synchronously.
func (c *Client) Get(key string) (proto.GetResult, error) {
	if err := c.flushAll(); err != nil {
		return proto.GetResult{}, err
	}
	n, err := c.queueRead(key)
	if err != nil {
		return proto.GetResult{}, err
	}
	replies, err := c.conns[n].Flush()
	if err != nil {
		return proto.GetResult{}, err
	}
	c.sinceFlsh = 0
	return replies[len(replies)-1].Get, c.boundary()
}

// Put routes one write synchronously, reporting the primary replica's
// inserted flag.
func (c *Client) Put(key string, val []byte) (bool, error) {
	if err := c.flushAll(); err != nil {
		return false, err
	}
	primary, err := c.queueWrite(key, val)
	if err != nil {
		return false, err
	}
	var inserted bool
	for _, n := range c.ring.Replicas(c.ring.KeyShard(key)) {
		replies, err := c.conns[n].Flush()
		if err != nil {
			return false, err
		}
		if n == primary {
			inserted = replies[len(replies)-1].Inserted
		}
	}
	c.sinceFlsh = 0
	return inserted, c.boundary()
}

// MGet fans a batch read across the cluster in one frame per involved
// node and merges the per-node replies back into request order.
func (c *Client) MGet(keys []string) ([]proto.GetResult, error) {
	if err := c.flushAll(); err != nil {
		return nil, err
	}
	batchKeys := make([][]string, len(c.conns))
	batchIdx := make([][]int, len(c.conns))
	for i, key := range keys {
		h := live.HashKey(key)
		s := c.ring.Shard(h)
		n := c.ring.ReadNode(s, h)
		batchKeys[n] = append(batchKeys[n], key)
		batchIdx[n] = append(batchIdx[n], i)
		c.accountRead(s, n)
	}
	out := make([]proto.GetResult, len(keys))
	for n, ks := range batchKeys {
		if len(ks) == 0 {
			continue
		}
		if err := c.conns[n].QueueMGet(ks); err != nil {
			return nil, err
		}
		replies, err := c.conns[n].Flush()
		if err != nil {
			return nil, err
		}
		gets := replies[len(replies)-1].Gets
		if len(gets) != len(ks) {
			return nil, fmt.Errorf("cluster: node %d returned %d results for %d keys", n, len(gets), len(ks))
		}
		for j, g := range gets {
			out[batchIdx[n][j]] = g
		}
	}
	return out, c.boundary()
}

// MPut fans a batch write to every involved replica in one frame per
// node, merging inserted flags (from each key's primary) into request
// order.
func (c *Client) MPut(kvs []proto.KV) ([]bool, error) {
	if err := c.flushAll(); err != nil {
		return nil, err
	}
	batch := make([][]proto.KV, len(c.conns))
	primIdx := make([][]int, len(c.conns)) // orig index when this node is the key's primary, else -1
	for i, kv := range kvs {
		s := c.ring.KeyShard(kv.Key)
		ns := c.ring.Replicas(s)
		for _, n := range ns {
			batch[n] = append(batch[n], kv)
			orig := -1
			if n == ns[0] {
				orig = i
			}
			primIdx[n] = append(primIdx[n], orig)
		}
		c.accountWrite(s, ns)
	}
	out := make([]bool, len(kvs))
	for n, b := range batch {
		if len(b) == 0 {
			continue
		}
		if err := c.conns[n].QueueMPut(b); err != nil {
			return nil, err
		}
		replies, err := c.conns[n].Flush()
		if err != nil {
			return nil, err
		}
		ins := replies[len(replies)-1].Inserts
		if len(ins) != len(b) {
			return nil, fmt.Errorf("cluster: node %d returned %d inserts for %d pairs", n, len(ins), len(b))
		}
		for j, flag := range ins {
			if orig := primIdx[n][j]; orig >= 0 {
				out[orig] = flag
			}
		}
	}
	return out, c.boundary()
}

// Finish drains the wire and closes a trailing partial window (emitted
// in the journal, but never fed to the manager — decisions happen only
// on full windows). Call it once after the last op.
func (c *Client) Finish() error {
	if err := c.flushAll(); err != nil {
		return err
	}
	if c.opsInWin > 0 {
		c.closeWindow(false)
	}
	return nil
}

// Windows returns the journaled shard-window log so far.
func (c *Client) Windows() []probe.ShardWindow { return c.windows }

// AppliedCommands returns the replica commands applied so far, in
// order.
func (c *Client) AppliedCommands() []Command { return c.applied }

// TotalOps returns the routed op count.
func (c *Client) TotalOps() uint64 { return c.totalOps }

// TotalReads returns the routed read count.
func (c *Client) TotalReads() uint64 { return c.totalReads }

// Makespan returns the modeled parallel completion time in load units:
// the sum over closed windows of the busiest node's in-window load.
// totalReads/Makespan is the bench's deterministic read-throughput
// model — replicating a hot shard lowers the busiest node's share, so
// the model rewards exactly what the manager is supposed to achieve.
func (c *Client) Makespan() uint64 { return c.makespan }
