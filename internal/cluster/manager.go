package cluster

import (
	"fmt"

	"rwp/internal/probe"
)

// ManagerConfig tunes the shard manager's replication policy.
type ManagerConfig struct {
	// Window is the decision cadence in routed operations: the router
	// closes a window and consults the manager every Window ops.
	Window int
	// HotReads marks a shard hot: at least this many reads in a window.
	HotReads uint64
	// ColdReads marks a shard cold: at most this many reads in a window.
	ColdReads uint64
	// HotP99 additionally requires the shard's windowed p99 service cost
	// to reach this value before replicating (0 disables the check, so
	// read volume alone triggers growth).
	HotP99 int
	// MaxReplicas caps a shard's replica set (<= 0 means no cap beyond
	// the node count).
	MaxReplicas int
}

// DefaultManagerConfig returns the harness's baseline policy: decide
// every 4096 ops, replicate shards drawing more than half the window's
// fair share of reads, and collapse shards that have gone quiet.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{Window: 4096, HotReads: 512, ColdReads: 64, HotP99: 0, MaxReplicas: 0}
}

// Validate reports the first nonsensical field.
func (c ManagerConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("cluster: manager window %d must be positive", c.Window)
	}
	if c.ColdReads >= c.HotReads {
		return fmt.Errorf("cluster: cold threshold %d must be below hot threshold %d", c.ColdReads, c.HotReads)
	}
	return nil
}

// CommandKind is a manager decision type.
type CommandKind int

const (
	// AddReplica grows the shard's replica set by one node.
	AddReplica CommandKind = iota
	// DropReplica shrinks it by one non-primary node.
	DropReplica
)

func (k CommandKind) String() string {
	if k == AddReplica {
		return "add-replica"
	}
	return "drop-replica"
}

// Command is one replica-set change the manager wants applied at a
// window boundary.
type Command struct {
	Kind  CommandKind
	Shard int
}

// Manager is the DynamicCache-style control loop, reduced to its
// deterministic core: a stateless policy over per-shard windowed load
// samples. Hot read-heavy shards gain replicas (reads rendezvous-pick
// one replica, so R replicas serve ~R× the read throughput); shards
// that cool off drop back, freeing the memory those replicas pinned.
// Writes always go to every replica, so replication never changes
// observable contents — only where reads land.
//
// Decide is a pure function of the window samples, which is the whole
// point: the samples are journaled (probe.WriteShardWindows), and
// replaying a journal through the same config reproduces the decision
// stream bit-for-bit.
type Manager struct {
	cfg ManagerConfig
}

// NewManager validates cfg and builds a manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg}, nil
}

// Config returns the manager's policy.
func (m *Manager) Config() ManagerConfig { return m.cfg }

// Decide maps one window's shard samples to replica commands. ws must
// be in ascending shard order (the router emits it that way); the
// output command order follows the input order, so the decision stream
// is deterministic. nodes is the cluster size — the hard replica cap.
func (m *Manager) Decide(ws []probe.ShardWindow, nodes int) []Command {
	maxRep := nodes
	if m.cfg.MaxReplicas > 0 && m.cfg.MaxReplicas < maxRep {
		maxRep = m.cfg.MaxReplicas
	}
	var cmds []Command
	for _, w := range ws {
		switch {
		case w.Reads >= m.cfg.HotReads &&
			(m.cfg.HotP99 == 0 || w.P99Cost >= m.cfg.HotP99) &&
			w.Replicas < maxRep:
			cmds = append(cmds, Command{Kind: AddReplica, Shard: w.Shard})
		case w.Reads <= m.cfg.ColdReads && w.Replicas > 1:
			cmds = append(cmds, Command{Kind: DropReplica, Shard: w.Shard})
		}
	}
	return cmds
}
