// Package cluster turns the single-node live cache into a multi-node
// service: a consistent-hash ring maps keys to shards and shards to
// node sets, a routing client fans pipelined batches across per-node
// binary-protocol connections, and a deterministic shard manager grows
// and shrinks each shard's replica set from op-count-windowed load
// samples.
//
// Everything here is clocked by operation counts — never wall time —
// and every random-looking choice (virtual-node placement, rendezvous
// replica picks) is a seeded xrand stream, so a cluster run is a pure
// function of (topology, op stream): the differential tests demand
// that a merged cluster stats document is byte-identical to a
// single-node run over the same stream.
package cluster

import (
	"fmt"
	"sort"

	"rwp/internal/live"
	"rwp/internal/xrand"
)

// Ring is the cluster's consistent-hash ring. Keys map to shards by
// cache-set index — a ring shard is a contiguous range of the cache's
// global sets, so one shard's entire op stream lands on one node (at
// replication one) and per-shard stats can be summed back into the
// exact single-node document. Shards map to nodes by classic
// virtual-node consistent hashing, so joins and leaves move only the
// shards adjacent to the changed node's points.
//
// Ring is not safe for concurrent use; the routing client owns it.
type Ring struct {
	sets         int
	shards       int
	setsPerShard int
	mask         uint64

	nodes    []string
	nodeHash []uint64 // live.HashKey(nodes[i])

	points     []vpoint // sorted virtual-node points
	shardPoint []uint64 // one ring point per shard

	replicas [][]int // per shard, node indices, primary first
}

// vpoint is one virtual node: a point on the 64-bit ring owned by a
// node.
type vpoint struct {
	point uint64
	node  int
}

// DefaultVnodes is the virtual-node count per node. 64 points keeps
// the largest node's shard share within a few percent of fair at the
// cluster sizes the tests pin (1–5 nodes).
const DefaultVnodes = 64

// New builds a ring over the given cache geometry and nodes. sets is
// the cache's total set count (a power of two, identical on every
// node); shards is the ring shard count and must divide sets; nodeIDs
// must be non-empty and unique; vnodes <= 0 selects DefaultVnodes.
// Every shard starts at one replica (its primary).
func New(sets, shards int, nodeIDs []string, vnodes int) (*Ring, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cluster: sets %d is not a positive power of two", sets)
	}
	if shards <= 0 || sets%shards != 0 {
		return nil, fmt.Errorf("cluster: shards %d does not divide sets %d", shards, sets)
	}
	if len(nodeIDs) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		sets:         sets,
		shards:       shards,
		setsPerShard: sets / shards,
		mask:         uint64(sets - 1),
		nodes:        append([]string(nil), nodeIDs...),
		nodeHash:     make([]uint64, len(nodeIDs)),
		shardPoint:   make([]uint64, shards),
		replicas:     make([][]int, shards),
	}
	for i, id := range r.nodes {
		for j := 0; j < i; j++ {
			if r.nodes[j] == id {
				return nil, fmt.Errorf("cluster: duplicate node id %q", id)
			}
		}
		r.nodeHash[i] = live.HashKey(id)
		// Each node's virtual points are a seeded stream of its own id
		// hash: a node contributes the same points in every topology, which
		// is what makes joins and leaves move only adjacent shards.
		rng := xrand.New(r.nodeHash[i])
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, vpoint{point: rng.Uint64(), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].point != r.points[b].point {
			return r.points[a].point < r.points[b].point
		}
		return r.points[a].node < r.points[b].node
	})
	for s := 0; s < shards; s++ {
		// The shard's ring position is independent of the node set — only
		// a function of its index — so it is stable across joins/leaves.
		r.shardPoint[s] = xrand.New(uint64(s)).Uint64()
		r.replicas[s] = []int{r.owner(r.shardPoint[s])}
	}
	return r, nil
}

// owner returns the node owning point p: the node of the first virtual
// point at or clockwise-after p, wrapping at the top of the ring.
func (r *Ring) owner(p uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= p })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Shards returns the ring shard count.
func (r *Ring) Shards() int { return r.shards }

// Nodes returns the node ids (do not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// Shard maps a key hash (live.HashKey) to its ring shard. The shard is
// derived from the cache-set index the key lands in, so all keys of
// one cache set share a shard.
func (r *Ring) Shard(h uint64) int {
	return int(h&r.mask) / r.setsPerShard
}

// KeyShard maps a key to its ring shard.
func (r *Ring) KeyShard(key string) int { return r.Shard(live.HashKey(key)) }

// SetRange returns the half-open global cache-set range [lo, hi)
// backing shard s.
func (r *Ring) SetRange(s int) (lo, hi int) {
	lo = s * r.setsPerShard
	return lo, lo + r.setsPerShard
}

// Primary returns shard s's primary node index.
func (r *Ring) Primary(s int) int { return r.replicas[s][0] }

// Replicas returns a copy of shard s's replica set, primary first.
func (r *Ring) Replicas(s int) []int {
	return append([]int(nil), r.replicas[s]...)
}

// ReplicaCount returns shard s's replica count.
func (r *Ring) ReplicaCount(s int) int { return len(r.replicas[s]) }

// rendezvous weighs node n for placement key h: a
// highest-random-weight draw whose seed mixes the two identities, so
// every (key, node) pair gets an independent, reproducible weight.
func (r *Ring) rendezvous(h uint64, n int) uint64 {
	return xrand.New(h ^ r.nodeHash[n]).Uint64()
}

// ReadNode picks the replica serving a read of key hash h on shard s:
// the rendezvous-highest replica, ties to the lower node index. With
// one replica this is the primary; with more, distinct keys spread
// deterministically across the replica set.
func (r *Ring) ReadNode(s int, h uint64) int {
	best, bestW := r.replicas[s][0], uint64(0)
	for i, n := range r.replicas[s] {
		w := r.rendezvous(h, n)
		if i == 0 || w > bestW || (w == bestW && n < best) {
			best, bestW = n, w
		}
	}
	return best
}

// AddReplica grows shard s's replica set by the rendezvous-best node
// not yet serving it (ties to the lower index). It reports the chosen
// node and false when every node already serves the shard.
func (r *Ring) AddReplica(s int) (node int, ok bool) {
	cur := r.replicas[s]
	best, bestW, found := -1, uint64(0), false
	for n := range r.nodes {
		if containsInt(cur, n) {
			continue
		}
		w := r.rendezvous(r.shardPoint[s], n)
		if !found || w > bestW || (w == bestW && n < best) {
			best, bestW, found = n, w, true
		}
	}
	if !found {
		return -1, false
	}
	r.replicas[s] = append(cur, best)
	return best, true
}

// DropReplica shrinks shard s's replica set by its rendezvous-worst
// non-primary replica — the reverse of AddReplica's order, so
// add-then-drop restores the previous set. It reports the removed node
// and false when only the primary remains.
func (r *Ring) DropReplica(s int) (node int, ok bool) {
	cur := r.replicas[s]
	if len(cur) <= 1 {
		return -1, false
	}
	worstI := 1
	for i := 2; i < len(cur); i++ {
		wi, ww := r.rendezvous(r.shardPoint[s], cur[i]), r.rendezvous(r.shardPoint[s], cur[worstI])
		if wi < ww || (wi == ww && cur[i] > cur[worstI]) {
			worstI = i
		}
	}
	node = cur[worstI]
	r.replicas[s] = append(cur[:worstI], cur[worstI+1:]...)
	return node, true
}

// PrimaryMap returns every shard's primary node index — the golden
// vectors pin this mapping and the remap tests diff it across
// topologies.
func (r *Ring) PrimaryMap() []int {
	m := make([]int, r.shards)
	for s := range m {
		m[s] = r.replicas[s][0]
	}
	return m
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
