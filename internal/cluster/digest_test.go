package cluster

import "testing"

func TestDigestPercentiles(t *testing.T) {
	d := NewDigest()
	if got := d.Percentile(99); got != 0 {
		t.Fatalf("empty digest p99 = %d, want 0", got)
	}
	// 1..100, one each: pXX is exactly XX by nearest rank.
	for i := 1; i <= 100; i++ {
		d.Add(i)
	}
	for _, p := range []int{1, 50, 99, 100} {
		if got := d.Percentile(p); got != p {
			t.Errorf("p%d = %d, want %d", p, got, p)
		}
	}
	if d.N() != 100 {
		t.Errorf("N = %d, want 100", d.N())
	}
}

func TestDigestSkewedTail(t *testing.T) {
	d := NewDigest()
	for i := 0; i < 990; i++ {
		d.Add(1)
	}
	for i := 0; i < 10; i++ {
		d.Add(500)
	}
	if got := d.Percentile(50); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	// rank(p99) = ceil(1000*99/100) = 990 → still the 1s.
	if got := d.Percentile(99); got != 1 {
		t.Errorf("p99 = %d, want 1", got)
	}
	if got := d.Percentile(100); got != 500 {
		t.Errorf("p100 = %d, want 500", got)
	}
}

func TestDigestReset(t *testing.T) {
	d := NewDigest()
	d.Add(7)
	d.Reset()
	if d.N() != 0 || d.Percentile(99) != 0 {
		t.Fatalf("after Reset: N=%d p99=%d", d.N(), d.Percentile(99))
	}
	d.Add(3)
	if got := d.Percentile(99); got != 3 {
		t.Fatalf("p99 after refill = %d, want 3", got)
	}
}

func TestDigestDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	vals := []int{9, 1, 4, 4, 7, 2, 9, 9, 0, 3}
	for _, v := range vals {
		a.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Add(vals[i])
	}
	for p := 1; p <= 100; p++ {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%d differs across insert order", p)
		}
	}
}
