package cluster

import (
	"bytes"
	"io"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/backend"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
	"rwp/internal/probe"
)

// probeWrite/probeRead adapt the window codec for the round-trip test.
func probeWrite(w io.Writer, ws []probe.ShardWindow) error {
	return probe.WriteShardWindows(w, "cluster test", 1024, ws)
}

func probeRead(r io.Reader) ([]probe.ShardWindow, error) {
	_, _, ws, err := probe.ReadShardWindows(r)
	return ws, err
}

// testCacheConfig is the shared per-node geometry: small enough to
// force evictions under the test streams, RWP policy with probes on so
// the merged document exercises every section.
func testCacheConfig() live.Config {
	return live.Config{
		Sets: 256, Ways: 4, Shards: 4,
		Policy: "rwp", RWP: live.DefaultRWPConfig(),
		Loader: loadgen.Loader(32),
		Record: true,
	}
}

func testStream(t *testing.T, n int) []loadgen.Op {
	t.Helper()
	h, err := loadgen.NewHotspot(loadgen.HotspotConfig{
		HotKeys: 16, ColdKeys: 4096,
		HotFrac: 0.7, WriteFrac: 0.25,
		ValueSize: 32, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h.Ops(n)
}

func harnessIDs(k int) []string {
	ids := make([]string, k)
	for i := range ids {
		ids[i] = "node" + string(rune('0'+i))
	}
	return ids
}

// TestClusterMatchesSingleNode is the cluster layer's transport-
// equivalence anchor: a replication-factor-1 cluster (manager off) at
// any node count and any ring-shard count produces a merged stats
// document byte-identical to one node absorbing the whole stream. This
// holds because a ring shard is a contiguous cache-set range and each
// set's entire op subsequence lands on exactly one node.
func TestClusterMatchesSingleNode(t *testing.T) {
	ops := testStream(t, 20000)
	single, err := live.New(testCacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		loadgen.Apply(single, op)
	}
	want, err := single.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 3, 5} {
		for _, ringShards := range []int{16, 64} {
			h, err := NewHarness(HarnessConfig{
				NodeIDs:    harnessIDs(nodes),
				RingShards: ringShards,
				Cache:      testCacheConfig(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Client().Replay(ops); err != nil {
				t.Fatal(err)
			}
			got, err := h.MergedStatsJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("nodes=%d ringShards=%d: merged stats differ from single node\nmerged: %s\nsingle: %s",
					nodes, ringShards, got, want)
			}
			if err := h.Close(); err != nil {
				t.Errorf("nodes=%d ringShards=%d: Close: %v", nodes, ringShards, err)
			}
		}
	}
}

// TestPipeEqualsDirect runs the same managed stream through the
// synchronous direct transport and through real pipelined binary
// connections, demanding identical merged documents, window journals,
// and applied replica commands — the wire adds framing, never
// behavior.
func TestPipeEqualsDirect(t *testing.T) {
	ops := testStream(t, 12000)
	run := func(mode Mode) (*Cluster, []byte) {
		mgr, err := NewManager(ManagerConfig{Window: 1024, HotReads: 128, ColdReads: 16})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHarness(HarnessConfig{
			NodeIDs:    harnessIDs(3),
			RingShards: 16,
			Cache:      testCacheConfig(),
			Mode:       mode,
			Manager:    mgr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Client().Replay(ops); err != nil {
			t.Fatal(err)
		}
		if err := h.Client().Finish(); err != nil {
			t.Fatal(err)
		}
		doc, err := h.MergedStatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return h, doc
	}
	hd, docD := run(Direct)
	hp, docP := run(Pipe)
	if !bytes.Equal(docD, docP) {
		t.Errorf("direct and pipe merged stats differ:\ndirect: %s\npipe: %s", docD, docP)
	}
	wd, wp := hd.Client().Windows(), hp.Client().Windows()
	if len(wd) != len(wp) {
		t.Fatalf("window journals differ in length: %d vs %d", len(wd), len(wp))
	}
	for i := range wd {
		if wd[i] != wp[i] {
			t.Fatalf("window record %d differs: %+v vs %+v", i, wd[i], wp[i])
		}
	}
	cd, cp := hd.Client().AppliedCommands(), hp.Client().AppliedCommands()
	if len(cd) != len(cp) {
		t.Fatalf("applied commands differ in length: %d vs %d", len(cd), len(cp))
	}
	for i := range cd {
		if cd[i] != cp[i] {
			t.Fatalf("command %d differs: %v vs %v", i, cd[i], cp[i])
		}
	}
	if len(cd) == 0 {
		t.Error("managed run applied no replica commands — test stream too tame")
	}
	sd, rd := hd.Client().CatchupCounts()
	sp, rp := hp.Client().CatchupCounts()
	if sd != sp || rd != rp {
		t.Errorf("catch-up counts differ: direct %d/%d, pipe %d/%d", sd, rd, sp, rp)
	}
	if sd == 0 {
		t.Error("managed run performed no warm catch-ups — replica adds took the cold fallback")
	}
	if err := hd.Close(); err != nil {
		t.Errorf("direct Close: %v", err)
	}
	if err := hp.Close(); err != nil {
		t.Errorf("pipe Close: %v", err)
	}
}

// TestManagedRunBitIdentical pins whole-run determinism with the
// control loop active: two identical managed runs produce identical
// merged documents, journals, and decision streams.
func TestManagedRunBitIdentical(t *testing.T) {
	ops := testStream(t, 12000)
	doOne := func() ([]byte, []Command) {
		mgr, err := NewManager(ManagerConfig{Window: 1024, HotReads: 128, ColdReads: 16})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHarness(HarnessConfig{
			NodeIDs:    harnessIDs(3),
			RingShards: 16,
			Cache:      testCacheConfig(),
			Manager:    mgr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Client().Replay(ops); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		doc, err := h.MergedStatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return doc, h.Client().AppliedCommands()
	}
	docA, cmdA := doOne()
	docB, cmdB := doOne()
	if !bytes.Equal(docA, docB) {
		t.Error("two identical managed runs produced different merged stats")
	}
	if len(cmdA) != len(cmdB) {
		t.Fatalf("command streams differ in length: %d vs %d", len(cmdA), len(cmdB))
	}
	for i := range cmdA {
		if cmdA[i] != cmdB[i] {
			t.Fatalf("command %d differs: %v vs %v", i, cmdA[i], cmdB[i])
		}
	}
}

// TestBatchFanout pins MGet/MPut routing: batches split per node and
// the merged results come back in request order with single-op
// semantics.
func TestBatchFanout(t *testing.T) {
	h, err := NewHarness(HarnessConfig{
		NodeIDs:    harnessIDs(3),
		RingShards: 16,
		Cache:      testCacheConfig(),
		Mode:       Pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	cl := h.Client()

	kvs := make([]proto.KV, 64)
	keys := make([]string, 64)
	for i := range kvs {
		keys[i] = loadgen.HotKey(i)
		kvs[i] = proto.KV{Key: keys[i], Value: loadgen.Value(keys[i], 32)}
	}
	ins, err := cl.MPut(kvs)
	if err != nil {
		t.Fatal(err)
	}
	for i, flag := range ins {
		if !flag {
			t.Errorf("MPut %d: fresh key not inserted", i)
		}
	}
	ins, err = cl.MPut(kvs)
	if err != nil {
		t.Fatal(err)
	}
	for i, flag := range ins {
		if flag {
			t.Errorf("MPut %d: overwrite reported as insert", i)
		}
	}
	got, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("MGet returned %d results for %d keys", len(got), len(keys))
	}
	for i, g := range got {
		if g.Status != proto.StatusHit {
			t.Errorf("MGet %d (%s): status %v, want hit", i, keys[i], g.Status)
		}
		if !bytes.Equal(g.Value, kvs[i].Value) {
			t.Errorf("MGet %d (%s): wrong value", i, keys[i])
		}
	}
	// A key no node has ever seen, with the loader on: fill.
	res, err := cl.MGet([]string{"never-written"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != proto.StatusFill {
		t.Errorf("unseen key status %v, want fill", res[0].Status)
	}
}

// TestReadYourWriteAcrossReplicaChurn is the replication-safety test:
// writes fan to every replica, and a node re-entering a shard's
// replica set is reset cold so it refills through the shared backing
// store — a reader can never observe a value older than the last write
// routed through the cluster, no matter how the manager moved replicas
// in between.
func TestReadYourWriteAcrossReplicaChurn(t *testing.T) {
	store := backend.NewMap()
	cfg := testCacheConfig()
	cfg.Loader = store.Loader()
	mgr, err := NewManager(ManagerConfig{Window: 64, HotReads: 32, ColdReads: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(HarnessConfig{
		NodeIDs:    harnessIDs(3),
		RingShards: 16,
		Cache:      cfg,
		Manager:    mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	cl := h.Client()

	const k = "churn-key"
	shard := h.Ring().KeyShard(k)
	write := func(val string) {
		store.Put(k, []byte(val))
		if _, err := cl.Put(k, []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	readMustSee := func(val string, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			g, err := cl.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(g.Value, []byte(val)) {
				t.Fatalf("read %d of %q = %q (status %v), want %q (replicas %v)",
					i, k, g.Value, g.Status, val, h.Ring().Replicas(shard))
			}
		}
	}
	// Off-shard keys to cool the hot shard down without touching it.
	var coolKeys []string
	for i := 0; len(coolKeys) < 16; i++ {
		key := loadgen.ColdKey(i)
		if h.Ring().KeyShard(key) != shard {
			coolKeys = append(coolKeys, key)
		}
	}
	cool := func(windows int) {
		for i := 0; i < windows*64; i++ {
			if _, err := cl.Get(coolKeys[i%len(coolKeys)]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Heat the shard: the manager must replicate it.
	write("v1")
	readMustSee("v1", 200)
	if got := h.Ring().ReplicaCount(shard); got < 2 {
		t.Fatalf("hot shard not replicated: %d replicas", got)
	}
	// Writes reach every replica: rendezvous-spread reads all see v2.
	write("v2")
	readMustSee("v2", 100)

	// Cool down: replicas collapse back to the primary.
	cool(6)
	if got := h.Ring().ReplicaCount(shard); got != 1 {
		t.Fatalf("cold shard kept %d replicas", got)
	}
	// Write while unreplicated: the dropped nodes now hold stale v2.
	write("v3")
	// Re-heat: the re-added replica must come back cold and refill from
	// the store, not serve its stale copy.
	readMustSee("v3", 200)
	if got := h.Ring().ReplicaCount(shard); got < 2 {
		t.Fatalf("re-heated shard not replicated: %d replicas", got)
	}
	readMustSee("v3", 100)

	var adds, drops int
	for _, cmd := range cl.AppliedCommands() {
		if cmd.Shard != shard {
			continue
		}
		if cmd.Kind == AddReplica {
			adds++
		} else {
			drops++
		}
	}
	if adds < 2 || drops < 1 {
		t.Errorf("expected add/drop/re-add churn on shard %d, got %d adds %d drops (commands %v)",
			shard, adds, drops, cl.AppliedCommands())
	}
}

// TestCatchupCutsBackendLoads is the catch-up payoff test: the same
// managed stream run with warm catch-up and with the cold-reset
// baseline. The manager's decision stream is identical (service costs
// are routing-side, independent of cache contents), so the only
// difference is how re-added replicas warm up — and the warm run must
// spend strictly fewer backend Loads while preserving the same merged
// read-your-write semantics the churn test pins.
func TestCatchupCutsBackendLoads(t *testing.T) {
	ops := testStream(t, 12000)
	run := func(noCatchup bool) (*Cluster, uint64) {
		mgr, err := NewManager(ManagerConfig{Window: 1024, HotReads: 128, ColdReads: 16})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHarness(HarnessConfig{
			NodeIDs:    harnessIDs(3),
			RingShards: 16,
			Cache:      testCacheConfig(),
			Manager:    mgr,
			NoCatchup:  noCatchup,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Client().Replay(ops); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		var loads uint64
		for _, c := range h.Caches() {
			loads += c.Stats().Loads
		}
		return h, loads
	}
	hw, warmLoads := run(false)
	hc, coldLoads := run(true)

	snaps, resets := hw.Client().CatchupCounts()
	if snaps == 0 || resets != 0 {
		t.Fatalf("warm run: %d catch-ups, %d fallbacks — wiring broken", snaps, resets)
	}
	if s, r := hc.Client().CatchupCounts(); s != 0 || r == 0 {
		t.Fatalf("cold run: %d catch-ups, %d resets — NoCatchup ignored", s, r)
	}
	// Identical decision streams: the comparison is apples to apples.
	cw, cc := hw.Client().AppliedCommands(), hc.Client().AppliedCommands()
	if len(cw) != len(cc) {
		t.Fatalf("decision streams diverged: %d vs %d commands", len(cw), len(cc))
	}
	for i := range cw {
		if cw[i] != cc[i] {
			t.Fatalf("command %d differs: %v vs %v", i, cw[i], cc[i])
		}
	}
	if warmLoads >= coldLoads {
		t.Errorf("catch-up did not cut backend loads: warm %d, cold-reset %d", warmLoads, coldLoads)
	}
	t.Logf("backend loads: catch-up %d, cold reset %d (saved %d)", warmLoads, coldLoads, coldLoads-warmLoads)
}

// TestWindowJournalRoundTrip writes a run's window log through the
// probe codec and replays the manager over it, matching the live
// decision stream — the journal really is sufficient to reproduce the
// control loop.
func TestWindowJournalRoundTrip(t *testing.T) {
	ops := testStream(t, 8000)
	mgr, err := NewManager(ManagerConfig{Window: 1024, HotReads: 128, ColdReads: 16})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(HarnessConfig{
		NodeIDs:    harnessIDs(3),
		RingShards: 16,
		Cache:      testCacheConfig(),
		Manager:    mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Client().Replay(ops); err != nil {
		t.Fatal(err)
	}
	if err := h.Client().Finish(); err != nil {
		t.Fatal(err)
	}
	ws := h.Client().Windows()
	if len(ws) == 0 {
		t.Fatal("no windows journaled")
	}
	var buf bytes.Buffer
	if err := probeWrite(&buf, ws); err != nil {
		t.Fatal(err)
	}
	decoded, err := probeRead(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(ws) {
		t.Fatalf("decoded %d windows, journaled %d", len(decoded), len(ws))
	}
	for i := range ws {
		if decoded[i] != ws[i] {
			t.Fatalf("window %d: decoded %+v, journaled %+v", i, decoded[i], ws[i])
		}
	}
}
