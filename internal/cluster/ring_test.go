package cluster

import (
	"testing"

	"rwp/internal/live"
)

// ringNodes returns the canonical test node ids n0..n{k-1}.
func ringNodes(k int) []string {
	ids := make([]string, k)
	for i := range ids {
		ids[i] = "n" + string(rune('0'+i))
	}
	return ids
}

// TestRingGoldenVectors pins the shard→primary mapping at three
// cluster sizes. These are generated-then-frozen: any change to the
// hash, the virtual-node streams, or the ownership rule shows up here
// before it silently re-shuffles a deployed cluster.
func TestRingGoldenVectors(t *testing.T) {
	golden := map[int][]int{
		1: {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		3: {0, 2, 1, 0, 1, 1, 2, 2, 0, 0, 1, 0, 1, 1, 1, 1},
		5: {0, 3, 1, 0, 1, 1, 3, 2, 0, 4, 4, 0, 4, 4, 1, 1},
	}
	for _, k := range []int{1, 3, 5} {
		r, err := New(256, 16, ringNodes(k), 64)
		if err != nil {
			t.Fatal(err)
		}
		got := r.PrimaryMap()
		want := golden[k]
		for s := range want {
			if got[s] != want[s] {
				t.Fatalf("nodes=%d: primary map %v, want golden %v", k, got, want)
			}
		}
	}
}

// TestRingRemapMinimality pins the consistent-hashing contract: a join
// moves at most 2/N of the shards, a leave likewise, and every move
// involves the changed node — no shard migrates between two untouched
// nodes.
func TestRingRemapMinimality(t *testing.T) {
	const sets, shards = 256, 16
	t.Run("join", func(t *testing.T) {
		before, err := New(sets, shards, ringNodes(3), 64)
		if err != nil {
			t.Fatal(err)
		}
		after, err := New(sets, shards, ringNodes(4), 64)
		if err != nil {
			t.Fatal(err)
		}
		bm, am := before.PrimaryMap(), after.PrimaryMap()
		moved := 0
		for s := range bm {
			if am[s] != bm[s] {
				moved++
				if am[s] != 3 {
					t.Errorf("shard %d moved %d→%d, not to the joining node", s, bm[s], am[s])
				}
			}
		}
		if moved == 0 {
			t.Error("join moved no shards — the new node serves nothing")
		}
		if max := 2 * shards / 4; moved > max {
			t.Errorf("join moved %d shards, want <= %d", moved, max)
		}
	})
	t.Run("leave", func(t *testing.T) {
		before, err := New(sets, shards, ringNodes(5), 64)
		if err != nil {
			t.Fatal(err)
		}
		after, err := New(sets, shards, ringNodes(4), 64)
		if err != nil {
			t.Fatal(err)
		}
		bm, am := before.PrimaryMap(), after.PrimaryMap()
		moved := 0
		for s := range bm {
			if am[s] != bm[s] {
				moved++
				if bm[s] != 4 {
					t.Errorf("shard %d moved %d→%d but node 4 left", s, bm[s], am[s])
				}
			}
		}
		if max := 2 * shards / 5; moved > max {
			t.Errorf("leave moved %d shards, want <= %d", moved, max)
		}
	})
}

// TestRingShardPartition checks key→shard mapping: the shard is the
// key's cache-set range, every set belongs to exactly one shard, and
// the mapping agrees with live.HashKey masking.
func TestRingShardPartition(t *testing.T) {
	r, err := New(256, 16, ringNodes(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]int, 256)
	for s := 0; s < r.Shards(); s++ {
		lo, hi := r.SetRange(s)
		for g := lo; g < hi; g++ {
			covered[g]++
		}
	}
	for g, n := range covered {
		if n != 1 {
			t.Fatalf("set %d covered by %d shards", g, n)
		}
	}
	for i := 0; i < 1000; i++ {
		key := "key-" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		h := live.HashKey(key)
		s := r.KeyShard(key)
		lo, hi := r.SetRange(s)
		if g := int(h & 255); g < lo || g >= hi {
			t.Fatalf("key %q: set %d outside shard %d range [%d,%d)", key, g, s, lo, hi)
		}
	}
}

// TestRingReplicaLifecycle covers add/drop determinism: adds pick a
// stable node order, reads stay on the primary at one replica and
// spread at two, and add-then-drop restores the original set.
func TestRingReplicaLifecycle(t *testing.T) {
	r, err := New(256, 16, ringNodes(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	const s = 0
	orig := r.Replicas(s)
	if len(orig) != 1 || orig[0] != r.Primary(s) {
		t.Fatalf("initial replicas %v, want just the primary", orig)
	}
	if got := r.ReadNode(s, 12345); got != r.Primary(s) {
		t.Fatalf("single-replica read on node %d, want primary %d", got, r.Primary(s))
	}

	n1, ok := r.AddReplica(s)
	if !ok || n1 == r.Primary(s) {
		t.Fatalf("AddReplica = (%d, %v)", n1, ok)
	}
	// Reads now spread: across many key hashes both replicas serve some.
	seen := map[int]int{}
	for h := uint64(0); h < 512; h++ {
		seen[r.ReadNode(s, h*0x9e3779b97f4a7c15)]++
	}
	if len(seen) != 2 || seen[r.Primary(s)] == 0 || seen[n1] == 0 {
		t.Fatalf("two-replica read spread %v over primary %d and replica %d", seen, r.Primary(s), n1)
	}
	// Writes-to-all invariant is the router's job; the ring only promises
	// ReadNode stays inside the replica set.
	for h := uint64(0); h < 64; h++ {
		if n := r.ReadNode(s, h); !containsInt(r.Replicas(s), n) {
			t.Fatalf("ReadNode %d outside replica set %v", n, r.Replicas(s))
		}
	}

	n2, ok := r.AddReplica(s)
	if !ok || n2 == n1 || n2 == r.Primary(s) {
		t.Fatalf("second AddReplica = (%d, %v)", n2, ok)
	}
	if _, ok := r.AddReplica(s); ok {
		t.Fatal("AddReplica succeeded with every node already serving")
	}

	if n, ok := r.DropReplica(s); !ok || n == r.Primary(s) {
		t.Fatalf("DropReplica = (%d, %v)", n, ok)
	}
	if n, ok := r.DropReplica(s); !ok || n == r.Primary(s) {
		t.Fatalf("second DropReplica = (%d, %v)", n, ok)
	}
	if got := r.Replicas(s); len(got) != 1 || got[0] != orig[0] {
		t.Fatalf("replicas after drops %v, want original %v", got, orig)
	}
	if _, ok := r.DropReplica(s); ok {
		t.Fatal("DropReplica removed the primary")
	}
}

// TestRingDeterministicAcrossBuilds pins that two rings built from the
// same inputs agree on everything the router consults.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	a, err := New(1024, 64, ringNodes(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1024, 64, ringNodes(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	am, bm := a.PrimaryMap(), b.PrimaryMap()
	for s := range am {
		if am[s] != bm[s] {
			t.Fatalf("shard %d primaries differ: %d vs %d", s, am[s], bm[s])
		}
		a.AddReplica(s)
		b.AddReplica(s)
		for h := uint64(0); h < 16; h++ {
			if a.ReadNode(s, h) != b.ReadNode(s, h) {
				t.Fatalf("shard %d hash %d: read nodes differ", s, h)
			}
		}
	}
}

func TestRingValidation(t *testing.T) {
	cases := []struct {
		name   string
		sets   int
		shards int
		nodes  []string
	}{
		{"sets not power of two", 100, 10, ringNodes(1)},
		{"shards not dividing sets", 256, 7, ringNodes(1)},
		{"zero shards", 256, 0, ringNodes(1)},
		{"no nodes", 256, 16, nil},
		{"duplicate nodes", 256, 16, []string{"a", "a"}},
	}
	for _, tc := range cases {
		if _, err := New(tc.sets, tc.shards, tc.nodes, 8); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
