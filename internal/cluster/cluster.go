package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"rwp/internal/live"
	"rwp/internal/live/proto"
	"rwp/internal/probe"
)

// Mode selects the harness transport.
type Mode string

const (
	// Direct executes ops synchronously against the in-process caches —
	// single-goroutine, the reference semantics.
	Direct Mode = "direct"
	// Pipe runs each node behind proto.ServeConn over a net.Pipe and
	// routes through real pipelined proto.Clients — the wire semantics.
	// The differential tests demand both modes produce identical merged
	// stats documents.
	Pipe Mode = "pipe"
)

// HarnessConfig assembles an in-process cluster.
type HarnessConfig struct {
	// NodeIDs names the nodes (ring identity; also the journal labels).
	NodeIDs []string
	// RingShards and Vnodes shape the ring (see New).
	RingShards int
	Vnodes     int
	// Cache is the per-node cache geometry; every node gets an
	// identical, independent instance.
	Cache live.Config
	// Mode selects direct or pipe transport (empty = Direct).
	Mode Mode
	// Manager optionally wires the replication control loop.
	Manager *Manager
	// Window is the manager-less load-sampling window (see ClientConfig).
	Window int
	// Pipeline is the router's flush depth (see ClientConfig).
	Pipeline int
	// NoCatchup disables warm replica catch-up: newly added replicas
	// reset cold and refill through their Loaders — the pre-snapshot
	// behavior the catch-up benchmark compares against.
	NoCatchup bool
}

// Cluster is an in-process multi-node cache: N independent live
// caches, a ring, and a routing client over direct or piped
// connections. It exists for selftests, differential tests, and the
// deterministic bench; the real-socket deployment is cmd/rwpcluster
// against rwpserve -tcp processes.
type Cluster struct {
	cfg    HarnessConfig
	ring   *Ring
	caches []*live.Cache
	client *Client
	conns  []NodeConn

	wg      sync.WaitGroup
	srvErrs []error // per node, written by the server goroutine (pipe mode)
}

// NewHarness builds and wires the cluster.
func NewHarness(cfg HarnessConfig) (*Cluster, error) {
	if len(cfg.NodeIDs) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if cfg.Mode == "" {
		cfg.Mode = Direct
	}
	if cfg.Mode != Direct && cfg.Mode != Pipe {
		return nil, fmt.Errorf("cluster: unknown mode %q", cfg.Mode)
	}
	ring, err := New(cfg.Cache.Sets, cfg.RingShards, cfg.NodeIDs, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	h := &Cluster{
		cfg:     cfg,
		ring:    ring,
		caches:  make([]*live.Cache, len(cfg.NodeIDs)),
		conns:   make([]NodeConn, len(cfg.NodeIDs)),
		srvErrs: make([]error, len(cfg.NodeIDs)),
	}
	resetters := make([]Resetter, len(cfg.NodeIDs))
	snapshotters := make([]Snapshotter, len(cfg.NodeIDs))
	restorers := make([]Restorer, len(cfg.NodeIDs))
	for i := range cfg.NodeIDs {
		c, err := live.New(cfg.Cache)
		if err != nil {
			return nil, err
		}
		h.caches[i] = c
		resetters[i] = c.ResetRange
		switch cfg.Mode {
		case Direct:
			h.conns[i] = &directConn{cache: c}
			snapshotters[i] = c.SnapBytes
			restorers[i] = c.RestoreBytes
		case Pipe:
			cliEnd, srvEnd := net.Pipe()
			h.wg.Add(1)
			go func(i int, conn net.Conn) {
				defer h.wg.Done()
				h.srvErrs[i] = proto.ServeConn(conn, h.caches[i])
			}(i, srvEnd)
			cli := proto.NewClient(cliEnd)
			h.conns[i] = cli
			// Catch-up rides the same connection as the data path; the
			// router only transfers at window boundaries, after
			// flushAll, so the chunked exchange never meets a pipeline.
			snapshotters[i] = cli.SnapRange
			restorers[i] = cli.Restore
		}
	}
	if cfg.NoCatchup {
		snapshotters, restorers = nil, nil
	}
	h.client, err = NewClient(ClientConfig{
		Ring:         ring,
		Conns:        h.conns,
		Resetters:    resetters,
		Snapshotters: snapshotters,
		Restorers:    restorers,
		Manager:      cfg.Manager,
		Window:       cfg.Window,
		Pipeline:     cfg.Pipeline,
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Client returns the routing client.
func (h *Cluster) Client() *Client { return h.client }

// Ring returns the cluster's ring.
func (h *Cluster) Ring() *Ring { return h.ring }

// Caches exposes the per-node caches (tests and journal writers only;
// going around the router on a live cluster breaks the write-to-all
// invariant).
func (h *Cluster) Caches() []*live.Cache { return h.caches }

// Close drains the router and tears the transports down. In pipe mode
// it waits for every server loop to exit and reports the first server
// error (a peer-close is clean and reports nil).
func (h *Cluster) Close() error {
	err := h.client.Finish()
	for _, conn := range h.conns {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	h.wg.Wait()
	for _, serr := range h.srvErrs {
		if serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// MergedSnapshot assembles the cluster's merged stats document: each
// ring shard's set range summed from the shard's primary node (every
// set counted exactly once), probe counters summed across all nodes.
// At replication factor one this equals a single-node Snapshot over
// the same op stream byte for byte; with replication it remains the
// deterministic primary view (replica reads land in the probe section,
// not the per-set counters).
func (h *Cluster) MergedSnapshot() live.StatsPayload {
	p := h.caches[0].StatsSnapshot()
	var merged live.Stats
	for s := 0; s < h.ring.Shards(); s++ {
		lo, hi := h.ring.SetRange(s)
		st := h.caches[h.ring.Primary(s)].StatsRange(lo, hi)
		merged.Add(st)
	}
	p.Stats = merged
	p.Probe = h.mergedProbe()
	return p
}

// mergedProbe sums every node's probe section (nil when recording is
// off — the geometry is identical across nodes, so it is all or none).
func (h *Cluster) mergedProbe() *live.ProbeView {
	var out *live.ProbeView
	for _, c := range h.caches {
		v := live.NewProbeView(c.ProbeStats())
		if v == nil {
			return nil
		}
		if out == nil {
			out = &live.ProbeView{}
		}
		out.Load.Add(v.Load)
		out.Store.Add(v.Store)
		out.EvictClean += v.EvictClean
		out.EvictDirty += v.EvictDirty
	}
	return out
}

// MergedStatsJSON renders the merged document through the same
// renderer as every single-node transport.
func (h *Cluster) MergedStatsJSON() ([]byte, error) {
	var buf []byte
	w := writerFunc(func(p []byte) (int, error) {
		buf = append(buf, p...)
		return len(p), nil
	})
	if err := live.WritePayload(w, h.MergedSnapshot()); err != nil {
		return nil, err
	}
	return buf, nil
}

// writerFunc adapts a function to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// WriteNodeJournals writes one probe run journal per node under dir
// (node-<id>.jsonl), labelled with the node id. It requires the caches
// to be built with Config.Record. rwpstat merges them into the cluster
// table.
func (h *Cluster) WriteNodeJournals(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, c := range h.caches {
		rec := c.ProbeStats()
		if rec == nil {
			return fmt.Errorf("cluster: node %s has no probe recorder (set Cache.Record)", h.cfg.NodeIDs[i])
		}
		path := filepath.Join(dir, "node-"+h.cfg.NodeIDs[i]+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		hErr := probe.WriteJournal(f, probe.Header{
			Kind: "cluster-node",
			Desc: "node " + h.cfg.NodeIDs[i],
		}, nil, rec)
		if cErr := f.Close(); hErr == nil {
			hErr = cErr
		}
		if hErr != nil {
			return fmt.Errorf("cluster: journal %s: %w", path, hErr)
		}
	}
	return nil
}

// directConn is the synchronous NodeConn: ops execute against the
// in-process cache at queue time, replies accumulate until Flush.
// Because node caches share no state, applying ops at queue time and
// at flush time are indistinguishable — which is exactly why direct
// and pipe runs produce identical merged stats.
type directConn struct {
	cache   *live.Cache
	replies []proto.Reply
}

func (d *directConn) QueueGet(key string) error {
	d.replies = append(d.replies, proto.Reply{Op: proto.OpGet, Get: d.get(key)})
	return nil
}

func (d *directConn) QueuePut(key string, val []byte) error {
	ins := d.cache.Put(key, val)
	d.replies = append(d.replies, proto.Reply{Op: proto.OpPut, Inserted: ins})
	return nil
}

func (d *directConn) QueueMGet(keys []string) error {
	gets := make([]proto.GetResult, len(keys))
	for i, k := range keys {
		gets[i] = d.get(k)
	}
	d.replies = append(d.replies, proto.Reply{Op: proto.OpMGet, Gets: gets})
	return nil
}

func (d *directConn) QueueMPut(kvs []proto.KV) error {
	ins := make([]bool, len(kvs))
	for i, kv := range kvs {
		ins[i] = d.cache.Put(kv.Key, kv.Value)
	}
	d.replies = append(d.replies, proto.Reply{Op: proto.OpMPut, Inserts: ins})
	return nil
}

// get mirrors proto's backendGet status mapping exactly.
func (d *directConn) get(key string) proto.GetResult {
	val, hit := d.cache.Get(key)
	switch {
	case hit:
		return proto.GetResult{Status: proto.StatusHit, Value: val}
	case val != nil:
		return proto.GetResult{Status: proto.StatusFill, Value: val}
	default:
		return proto.GetResult{Status: proto.StatusMiss}
	}
}

func (d *directConn) Depth() int { return len(d.replies) }

func (d *directConn) Flush() ([]proto.Reply, error) {
	r := d.replies
	d.replies = nil
	return r, nil
}

func (d *directConn) Stats() ([]byte, error) { return d.cache.StatsJSON() }

func (d *directConn) Close() error { return nil }
