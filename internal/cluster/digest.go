package cluster

import "sort"

// Digest accumulates integer service costs and answers exact
// percentile queries. Costs here are deterministic queue-depth proxies
// (see Client), small non-negative integers, so an exact
// sparse-histogram digest is both cheap and bit-reproducible — no
// sampling, no floating point, no approximation to drift between runs.
type Digest struct {
	counts map[int]uint64
	n      uint64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{counts: make(map[int]uint64)} }

// Add records one cost observation. Negative costs panic: the cost
// model only produces depths >= 0, so a negative value is a router bug.
func (d *Digest) Add(cost int) {
	if cost < 0 {
		panic("cluster: negative cost")
	}
	d.counts[cost]++
	d.n++
}

// N returns the number of observations.
func (d *Digest) N() uint64 { return d.n }

// Percentile returns the exact p-th percentile (1 <= p <= 100) by the
// nearest-rank method: the smallest cost c such that at least
// ceil(n*p/100) observations are <= c. An empty digest returns 0.
func (d *Digest) Percentile(p int) int {
	if p < 1 || p > 100 {
		panic("cluster: percentile out of range")
	}
	if d.n == 0 {
		return 0
	}
	rank := (d.n*uint64(p) + 99) / 100
	// Histogram keys in ascending cost order; map iteration order is not
	// observable in the result because we sort first.
	costs := make([]int, 0, len(d.counts))
	for c := range d.counts {
		costs = append(costs, c)
	}
	sort.Ints(costs)
	var cum uint64
	for _, c := range costs {
		cum += d.counts[c]
		if cum >= rank {
			return c
		}
	}
	return costs[len(costs)-1]
}

// Reset clears the digest for the next window, keeping its capacity.
func (d *Digest) Reset() {
	for c := range d.counts {
		delete(d.counts, c)
	}
	d.n = 0
}
