package workload

import (
	"strings"
	"testing"
)

func TestProfileValidateErrors(t *testing.T) {
	good := Profile{
		Name: "x", Seed: 1, MemIntensity: 0.2,
		Components: []ComponentSpec{{Weight: 1, Behavior: Zipf, Lines: 100, ReadRatio: 0.5}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"zero intensity", func(p *Profile) { p.MemIntensity = 0 }},
		{"intensity > 1", func(p *Profile) { p.MemIntensity = 1.5 }},
		{"no components", func(p *Profile) { p.Components = nil }},
		{"zero weight", func(p *Profile) { p.Components[0].Weight = 0 }},
		{"zero lines", func(p *Profile) { p.Components[0].Lines = 0 }},
		{"bad read ratio", func(p *Profile) { p.Components[0].ReadRatio = 1.5 }},
		{"unknown behavior", func(p *Profile) { p.Components[0].Behavior = Behavior(99) }},
	}
	for _, c := range cases {
		p := good
		p.Components = append([]ComponentSpec(nil), good.Components...)
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBehaviorString(t *testing.T) {
	cases := map[Behavior]string{
		Stream:           "stream",
		PointerChase:     "chase",
		Zipf:             "zipf",
		WriteOnce:        "write-once",
		ProducerConsumer: "prod-cons",
		Stack:            "stack",
		Behavior(42):     "behavior(42)",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", b, got, want)
		}
	}
}

func TestWithSeedChangesStreamOnly(t *testing.T) {
	base, err := Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	shifted := base.WithSeed(5)
	if shifted.Seed != base.Seed+5 {
		t.Fatal("seed not offset")
	}
	if shifted.Name != base.Name || shifted.MemIntensity != base.MemIntensity { //rwplint:allow floateq — exact: copied field, bitwise identity
		t.Fatal("WithSeed changed profile identity")
	}
	// Different concrete streams.
	a, _ := base.NewSource().Next()
	b, _ := shifted.NewSource().Next()
	s1, s2 := base.NewSource(), shifted.NewSource()
	same := true
	for i := 0; i < 50; i++ {
		x, _ := s1.Next()
		y, _ := s2.Next()
		if x != y {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seed offset produced identical streams (first: %v vs %v)", a, b)
	}
	// Mutating the copy's components must not touch the registry.
	shifted.Components[0].Weight = 999
	again, _ := Get("gcc")
	if again.Components[0].Weight == 999 { //rwplint:allow floateq — exact: assigned sentinel constant, no arithmetic
		t.Fatal("WithSeed aliased the registered component slice")
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		register(Profile{
			Name: "gcc", Seed: 1, MemIntensity: 0.2,
			Components: []ComponentSpec{{Weight: 1, Behavior: Zipf, Lines: 10}},
		})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid profile registration did not panic")
			}
		}()
		register(Profile{Name: "broken"})
	}()
}

func TestProdConsLagClamping(t *testing.T) {
	// Lag beyond the ring is clamped, negative lag becomes zero.
	c := newProdConsComp(0, 1024, 256, 1, 99, 0x400000) // ring=4, lag clamped to 3
	if c.lag != 3 {
		t.Fatalf("lag = %d, want 3", c.lag)
	}
	c = newProdConsComp(0, 1024, 256, 1, -5, 0x400000)
	if c.lag != 0 {
		t.Fatalf("negative lag = %d, want 0", c.lag)
	}
	// Tiny footprint still yields a 2-block ring.
	c = newProdConsComp(0, 100, 256, 1, 0, 0x400000)
	if c.ringBlocks != 2 {
		t.Fatalf("ring = %d, want 2", c.ringBlocks)
	}
}

func TestSharedPCPoolPresence(t *testing.T) {
	// ~20% of accesses must carry shared library PCs, split by kind.
	p, _ := Get("bzip2")
	src := p.NewSource()
	shared, total := 0, 20000
	for i := 0; i < total; i++ {
		a, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if a.PC >= sharedLoadPCBase && a.PC < sharedLoadPCBase+4*sharedPCPool {
			if !a.Kind.IsRead() {
				t.Fatal("store carried a shared load PC")
			}
			shared++
		}
		if a.PC >= sharedStorePCBase && a.PC < sharedStorePCBase+4*sharedPCPool {
			if !a.Kind.IsWrite() {
				t.Fatal("load carried a shared store PC")
			}
			shared++
		}
	}
	frac := float64(shared) / float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("shared-PC fraction %.3f, want ~0.20", frac)
	}
}

func TestSuiteHasAll29SPECNames(t *testing.T) {
	want := []string{
		"perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
		"libquantum", "h264ref", "omnetpp", "astar", "xalancbmk",
		"bwaves", "gamess", "milc", "zeusmp", "gromacs", "cactusADM",
		"leslie3d", "namd", "dealII", "soplex", "povray", "calculix",
		"GemsFDTD", "tonto", "lbm", "wrf", "sphinx3",
	}
	if len(want) != 29 {
		t.Fatal("test list wrong")
	}
	names := strings.Join(Names(), " ")
	for _, n := range want {
		if !strings.Contains(names, n) {
			t.Errorf("missing SPEC CPU2006 profile %q", n)
		}
	}
	if len(Names()) != 29 {
		t.Errorf("suite has %d profiles, want exactly 29", len(Names()))
	}
}
