package workload

import (
	"rwp/internal/mem"
	"rwp/internal/xrand"
)

// lineBytes converts a line index within a region to a byte address with
// a small random-ish intra-line offset left at zero (offsets are
// irrelevant to line-granular caches).
func lineAddr(base mem.Addr, line int) mem.Addr {
	return base + mem.Addr(line)*mem.DefaultLineSize
}

// pcAt returns the i-th PC of a component's pool.
func pcAt(pcBase mem.Addr, i int) mem.Addr {
	return pcBase + mem.Addr(i%pcPoolSize)*4
}

// streamComp scans its region sequentially with a stride, wrapping; each
// access is a read with probability readRatio.
type streamComp struct {
	base      mem.Addr
	lines     int
	stride    int
	pos       int
	readRatio float64
	rng       *xrand.RNG
	pcBase    mem.Addr
}

func (c *streamComp) next() (mem.Addr, mem.Kind, mem.Addr) {
	addr := lineAddr(c.base, c.pos)
	c.pos = (c.pos + c.stride) % c.lines
	kind := mem.Store
	pc := pcAt(c.pcBase, 1)
	if c.rng.Chance(c.readRatio) {
		kind = mem.Load
		pc = pcAt(c.pcBase, 0)
	}
	return addr, kind, pc
}

// chaseComp follows a fixed random permutation cycle: a dependent-load
// pointer chase touching every line of the footprint once per lap.
type chaseComp struct {
	base   mem.Addr
	next_  []uint32
	cur    uint32
	pcBase mem.Addr
}

func newChaseComp(rng *xrand.RNG, base mem.Addr, lines int, pcBase mem.Addr) *chaseComp {
	// Build a single cycle over [0, lines) via Sattolo's algorithm.
	perm := make([]uint32, lines)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for i := lines - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// next_[perm[i]] = perm[i+1] forms the cycle.
	next := make([]uint32, lines)
	for i := 0; i < lines; i++ {
		next[perm[i]] = perm[(i+1)%lines]
	}
	return &chaseComp{base: base, next_: next, pcBase: pcBase}
}

func (c *chaseComp) next() (mem.Addr, mem.Kind, mem.Addr) {
	addr := lineAddr(c.base, int(c.cur))
	c.cur = c.next_[c.cur]
	return addr, mem.Load, pcAt(c.pcBase, 0)
}

// zipfComp draws lines from a Zipf popularity distribution: a hot head
// with a long cold tail, reads with probability readRatio.
type zipfComp struct {
	base      mem.Addr
	z         *xrand.Zipf
	readRatio float64
	rng       *xrand.RNG
	pcBase    mem.Addr
}

func (c *zipfComp) next() (mem.Addr, mem.Kind, mem.Addr) {
	// Scatter ranks over the region so popularity is not spatially
	// correlated with set index (rank*2654435761 mod region hashes, but a
	// simple odd multiplier keeps it bijective over the footprint).
	rank := c.z.Next()
	addr := lineAddr(c.base, rank)
	kind := mem.Store
	pc := pcAt(c.pcBase, 1)
	if c.rng.Chance(c.readRatio) {
		kind = mem.Load
		pc = pcAt(c.pcBase, 0)
	}
	return addr, kind, pc
}

// writeOnceComp writes a fresh line every access and never returns to it:
// output buffers, logs, streamed results. Its footprint parameter bounds
// the region; the write cursor wraps after Lines distinct lines, which is
// effectively "never" for realistically large regions, and even when it
// wraps the reuse distance is far beyond any cache.
type writeOnceComp struct {
	base   mem.Addr
	lines  int
	pos    int
	rng    *xrand.RNG
	pcBase mem.Addr
}

func (c *writeOnceComp) next() (mem.Addr, mem.Kind, mem.Addr) {
	addr := lineAddr(c.base, c.pos)
	c.pos = (c.pos + 1) % c.lines
	return addr, mem.Store, pcAt(c.pcBase, c.rng.Intn(pcPoolSize))
}

// prodConsComp writes a block of lines, then reads blocks produced
// earlier (lag one ring slot) readPasses times: freshly written (dirty)
// lines that serve future reads — the workload class whose read hits live
// in RWP's dirty partition.
type prodConsComp struct {
	base       mem.Addr
	ringBlocks int
	blockLines int
	readPasses int
	lag        int
	pcBase     mem.Addr

	block   int // current ring slot being produced
	phase   int // 0 = producing, 1 = consuming
	pos     int // line within block
	pass    int // consume pass
	consume int // ring slot being consumed
}

func newProdConsComp(base mem.Addr, lines, blockLines, readPasses, lag int, pcBase mem.Addr) *prodConsComp {
	ring := lines / blockLines
	if ring < 2 {
		ring = 2
	}
	if lag < 0 {
		lag = 0
	}
	if lag >= ring {
		lag = ring - 1
	}
	return &prodConsComp{
		base: base, ringBlocks: ring, blockLines: blockLines,
		readPasses: readPasses, lag: lag, pcBase: pcBase,
	}
}

func (c *prodConsComp) next() (mem.Addr, mem.Kind, mem.Addr) {
	if c.phase == 0 {
		addr := lineAddr(c.base, c.block*c.blockLines+c.pos)
		c.pos++
		if c.pos >= c.blockLines {
			c.pos = 0
			c.phase = 1
			c.pass = 0
			// Consume the block produced lag slots ago (dirty lines whose
			// reuse distance is the lag footprint).
			c.consume = (c.block - c.lag + c.ringBlocks) % c.ringBlocks
			c.block = (c.block + 1) % c.ringBlocks
		}
		return addr, mem.Store, pcAt(c.pcBase, 1)
	}
	addr := lineAddr(c.base, c.consume*c.blockLines+c.pos)
	c.pos++
	if c.pos >= c.blockLines {
		c.pos = 0
		c.pass++
		if c.pass >= c.readPasses {
			c.phase = 0
		}
	}
	return addr, mem.Load, pcAt(c.pcBase, 0)
}

// stackComp models call-stack traffic: a drifting stack pointer where
// pushes write and pops read the just-written lines — small footprint,
// high locality, dirty lines immediately re-read.
type stackComp struct {
	base   mem.Addr
	depth  int
	sp     int
	rng    *xrand.RNG
	pcBase mem.Addr
}

func (c *stackComp) next() (mem.Addr, mem.Kind, mem.Addr) {
	push := c.rng.Chance(0.5)
	if c.sp <= 0 {
		push = true
	}
	if c.sp >= c.depth-1 {
		push = false
	}
	if push {
		c.sp++
		return lineAddr(c.base, c.sp), mem.Store, pcAt(c.pcBase, 1)
	}
	addr := lineAddr(c.base, c.sp)
	c.sp--
	return addr, mem.Load, pcAt(c.pcBase, 0)
}
