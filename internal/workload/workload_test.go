package workload

import (
	"testing"

	"rwp/internal/mem"
	"rwp/internal/trace"
	"rwp/internal/xrand"
)

func TestAllProfilesValidate(t *testing.T) {
	if len(All()) < 20 {
		t.Fatalf("only %d profiles registered; want a SPEC-scale suite", len(All()))
	}
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestSensitiveSubsetNonEmpty(t *testing.T) {
	s := SensitiveNames()
	if len(s) < 8 {
		t.Fatalf("sensitive subset has %d profiles, want >= 8", len(s))
	}
	if len(s) >= len(All()) {
		t.Fatal("every profile marked sensitive; insensitive set empty")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("not-a-benchmark"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	p, err := Get("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("Get(mcf) = %+v, %v", p, err)
	}
}

func TestDeterministicStreams(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "povray", "cactusADM"} {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := trace.Collect(trace.NewLimit(p.NewSource(), 5000))
		if err != nil {
			t.Fatal(err)
		}
		b, err := trace.Collect(trace.NewLimit(p.NewSource(), 5000))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: access %d differs between runs", name, i)
			}
		}
	}
}

func TestResetRestartsStream(t *testing.T) {
	p, err := Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	src := p.NewSource()
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	src.Reset()
	again, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("Reset did not restart: %v vs %v", first, again)
	}
}

func TestICMonotone(t *testing.T) {
	for _, name := range Names() {
		p, _ := Get(name)
		src := p.NewSource()
		prev := uint64(0)
		for i := 0; i < 2000; i++ {
			a, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if a.IC <= prev {
				t.Fatalf("%s: IC not strictly increasing at access %d", name, i)
			}
			prev = a.IC
		}
	}
}

func TestMemIntensityApproximatelyHonored(t *testing.T) {
	for _, name := range []string{"mcf", "povray", "lbm"} {
		p, _ := Get(name)
		src := p.NewSource()
		var last mem.Access
		const n = 50000
		for i := 0; i < n; i++ {
			a, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			last = a
		}
		got := float64(n) / float64(last.IC)
		if got < p.MemIntensity*0.7 || got > p.MemIntensity*1.3 {
			t.Errorf("%s: measured intensity %.3f vs declared %.3f", name, got, p.MemIntensity)
		}
	}
}

func TestReadWriteMixesDiffer(t *testing.T) {
	ratio := func(name string) float64 {
		p, _ := Get(name)
		st, err := trace.Summarize(trace.NewLimit(p.NewSource(), 50000))
		if err != nil {
			t.Fatal(err)
		}
		return st.ReadRatio()
	}
	// lbm is write-heavy; namd is read-dominated.
	if lbm, namd := ratio("lbm"), ratio("namd"); lbm >= namd {
		t.Fatalf("lbm read ratio %.2f >= namd %.2f", lbm, namd)
	}
	if r := ratio("lbm"); r > 0.55 {
		t.Errorf("lbm read ratio %.2f, want write-heavy (<= 0.55)", r)
	}
	if r := ratio("namd"); r < 0.8 {
		t.Errorf("namd read ratio %.2f, want read-heavy (>= 0.8)", r)
	}
}

func TestFootprintsMatchSensitivityClass(t *testing.T) {
	footprint := func(name string) uint64 {
		p, _ := Get(name)
		st, err := trace.Summarize(trace.NewLimit(p.NewSource(), 200000))
		if err != nil {
			t.Fatal(err)
		}
		return st.Lines
	}
	// Tiny compute-bound profile stays under L2 scale.
	if f := footprint("povray"); f > 4096 {
		t.Errorf("povray footprint %d lines, want < 4096", f)
	}
	// Streaming profile exceeds LLC scale (32768 lines) quickly.
	if f := footprint("libquantum"); f < 32768 {
		t.Errorf("libquantum footprint %d lines, want >= 32768", f)
	}
	// Sensitive profile lands in the around-LLC band.
	if f := footprint("sphinx3"); f < 16384 {
		t.Errorf("sphinx3 footprint %d lines, want >= 16384", f)
	}
}

func TestChaseComponentIsCycle(t *testing.T) {
	// The pointer chase must visit every line exactly once per lap.
	c := newChaseComp(newTestRNG(), 0, 1000, 0x400000)
	seen := make(map[mem.Addr]int)
	for i := 0; i < 2000; i++ {
		a, kind, _ := c.next()
		if kind != mem.Load {
			t.Fatal("chase emitted a store")
		}
		seen[a]++
	}
	if len(seen) != 1000 {
		t.Fatalf("chase visited %d distinct lines, want 1000", len(seen))
	}
	for a, n := range seen {
		if n != 2 {
			t.Fatalf("line %v visited %d times in two laps", a, n)
		}
	}
}

func TestWriteOnceNeverRereferencesSoon(t *testing.T) {
	c := &writeOnceComp{base: 0, lines: 1 << 20, rng: newTestRNG(), pcBase: 0x400000}
	seen := make(map[mem.Addr]bool)
	for i := 0; i < 100000; i++ {
		a, kind, _ := c.next()
		if kind != mem.Store {
			t.Fatal("write-once emitted a load")
		}
		if seen[a] {
			t.Fatalf("write-once revisited %v within horizon", a)
		}
		seen[a] = true
	}
}

func TestProdConsReadsFollowWrites(t *testing.T) {
	// Every read from the producer-consumer component must target a line
	// that was previously written (once the ring has wrapped past lag).
	c := newProdConsComp(0, 4096, 64, 1, 4, 0x400000)
	written := make(map[mem.Addr]bool)
	coldReads, reads := 0, 0
	for i := 0; i < 50000; i++ {
		a, kind, _ := c.next()
		if kind == mem.Store {
			written[a] = true
			continue
		}
		reads++
		if !written[a] {
			coldReads++
		}
	}
	if reads == 0 {
		t.Fatal("prod-cons produced no reads")
	}
	// Only the startup transient (first lag blocks) may read cold lines.
	if coldReads > 4*64 {
		t.Fatalf("%d cold reads of %d, want <= startup transient", coldReads, reads)
	}
}

func TestStackStaysInBounds(t *testing.T) {
	c := &stackComp{base: 0, depth: 64, rng: newTestRNG(), pcBase: 0x400000}
	for i := 0; i < 100000; i++ {
		a, _, _ := c.next()
		if a >= 64*64 {
			t.Fatalf("stack escaped its region: %v", a)
		}
	}
	if c.sp < 0 || c.sp >= 64 {
		t.Fatalf("stack pointer %d out of bounds", c.sp)
	}
}

func TestPCPoolsDistinguishComponents(t *testing.T) {
	// Reads and writes from different components must use disjoint PCs so
	// PC-indexed predictors (RRP) can separate behaviors.
	p, _ := Get("mcf")
	src := p.NewSource()
	pcsByKind := map[mem.Kind]map[mem.Addr]bool{
		mem.Load: {}, mem.Store: {},
	}
	for i := 0; i < 20000; i++ {
		a, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		pcsByKind[a.Kind][a.PC] = true
	}
	if len(pcsByKind[mem.Load]) < 2 {
		t.Fatal("too few distinct load PCs")
	}
	for pc := range pcsByKind[mem.Store] {
		if pcsByKind[mem.Load][pc] {
			t.Fatalf("PC %v used for both loads and stores in mcf", pc)
		}
	}
}

func newTestRNG() *xrand.RNG { return xrand.New(42) }
