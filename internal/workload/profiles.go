package workload

// SPEC-CPU2006-inspired profiles. Footprints are stated in 64 B cache
// lines and sized relative to the default single-core LLC of the
// experiments (2 MiB = 32768 lines; L2 = 4096 lines; L1D = 512 lines):
//
//   - "fits" profiles stay well inside the LLC (cache-insensitive),
//   - "sensitive" profiles hold read working sets around 1–2× LLC
//     capacity, often competing with write-once output traffic (RWP's
//     target scenario) or with producer-consumer lag rings whose dirty
//     lines serve LLC reads,
//   - "streaming" profiles sweep footprints far beyond any cache
//     (insensitive: no policy can help).
//
// Seeds are fixed per profile so every run of the suite is bit-identical.

func init() {
	// ---- Cache-sensitive profiles (the paper's 14 %-speedup subset) ----

	register(Profile{
		Name: "mcf", Seed: 101, MemIntensity: 0.22, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.12, Behavior: PointerChase, Lines: 6000},
			{Weight: 0.58, Behavior: Zipf, Lines: 26000, ReadRatio: 0.92, ZipfS: 0.7},
			{Weight: 0.30, Behavior: WriteOnce, Lines: 4_000_000},
		},
	})
	register(Profile{
		Name: "omnetpp", Seed: 102, MemIntensity: 0.30, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.45, Behavior: Zipf, Lines: 22000, ReadRatio: 0.8, ZipfS: 0.7},
			{Weight: 0.30, Behavior: WriteOnce, Lines: 3_000_000},
			{Weight: 0.25, Behavior: ProducerConsumer, Lines: 12288, BlockLines: 256, LagBlocks: 20, ReadPasses: 1},
		},
	})
	register(Profile{
		Name: "xalancbmk", Seed: 103, MemIntensity: 0.19, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.10, Behavior: PointerChase, Lines: 5000},
			{Weight: 0.60, Behavior: Zipf, Lines: 28000, ReadRatio: 0.88, ZipfS: 0.65},
			{Weight: 0.30, Behavior: WriteOnce, Lines: 2_000_000},
		},
	})
	register(Profile{
		Name: "soplex", Seed: 104, MemIntensity: 0.24, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.45, Behavior: Stream, Lines: 26000, ReadRatio: 0.85},
			{Weight: 0.25, Behavior: Zipf, Lines: 4000, ReadRatio: 0.9, ZipfS: 0.85},
			{Weight: 0.30, Behavior: WriteOnce, Lines: 2_500_000},
		},
	})
	register(Profile{
		Name: "sphinx3", Seed: 105, MemIntensity: 0.21, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.55, Behavior: Zipf, Lines: 24000, ReadRatio: 0.98, ZipfS: 0.75},
			{Weight: 0.09, Behavior: WriteOnce, Lines: 1_500_000},
			{Weight: 0.36, Behavior: Stream, Lines: 6000, ReadRatio: 1.0},
		},
	})
	register(Profile{
		Name: "astar", Seed: 106, MemIntensity: 0.25, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.15, Behavior: PointerChase, Lines: 20000},
			{Weight: 0.35, Behavior: Zipf, Lines: 24000, ReadRatio: 0.97, ZipfS: 0.6},
			{Weight: 0.25, Behavior: Zipf, Lines: 8000, ReadRatio: 0.97, ZipfS: 0.9},
			{Weight: 0.25, Behavior: WriteOnce, Lines: 1_200_000},
		},
	})
	register(Profile{
		Name: "bzip2", Seed: 107, MemIntensity: 0.26, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.45, Behavior: Zipf, Lines: 18000, ReadRatio: 0.72, ZipfS: 0.8},
			{Weight: 0.35, Behavior: ProducerConsumer, Lines: 16384, BlockLines: 512, LagBlocks: 12, ReadPasses: 1},
			{Weight: 0.20, Behavior: WriteOnce, Lines: 1_000_000},
		},
	})
	register(Profile{
		Name: "gcc", Seed: 108, MemIntensity: 0.24, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.40, Behavior: Zipf, Lines: 24000, ReadRatio: 0.82, ZipfS: 0.75},
			{Weight: 0.20, Behavior: Stack, Lines: 256},
			{Weight: 0.40, Behavior: WriteOnce, Lines: 2_200_000},
		},
	})
	register(Profile{
		Name: "dealII", Seed: 109, MemIntensity: 0.20, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.45, Behavior: Zipf, Lines: 24000, ReadRatio: 0.97, ZipfS: 0.7},
			{Weight: 0.35, Behavior: Stream, Lines: 8000, ReadRatio: 0.97},
			{Weight: 0.20, Behavior: WriteOnce, Lines: 1_400_000},
		},
	})
	register(Profile{
		Name: "GemsFDTD", Seed: 110, MemIntensity: 0.33, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.45, Behavior: Stream, Lines: 20000, ReadRatio: 0.78},
			{Weight: 0.35, Behavior: ProducerConsumer, Lines: 20480, BlockLines: 512, LagBlocks: 16, ReadPasses: 1},
			{Weight: 0.20, Behavior: WriteOnce, Lines: 1_800_000},
		},
	})
	register(Profile{
		Name: "cactusADM", Seed: 111, MemIntensity: 0.29, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.55, Behavior: ProducerConsumer, Lines: 18432, BlockLines: 256, LagBlocks: 30, ReadPasses: 2},
			{Weight: 0.25, Behavior: Zipf, Lines: 9000, ReadRatio: 0.85, ZipfS: 0.9},
			{Weight: 0.20, Behavior: WriteOnce, Lines: 1_600_000},
		},
	})
	register(Profile{
		Name: "zeusmp", Seed: 112, MemIntensity: 0.31, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.40, Behavior: Stream, Lines: 20000, ReadRatio: 0.72},
			{Weight: 0.35, Behavior: ProducerConsumer, Lines: 14336, BlockLines: 512, LagBlocks: 10, ReadPasses: 1},
			{Weight: 0.25, Behavior: WriteOnce, Lines: 2_000_000},
		},
	})
	register(Profile{
		Name: "leslie3d", Seed: 113, MemIntensity: 0.30, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.65, Behavior: Stream, Lines: 26000, ReadRatio: 0.76},
			{Weight: 0.35, Behavior: WriteOnce, Lines: 2_400_000},
		},
	})
	register(Profile{
		Name: "wrf", Seed: 114, MemIntensity: 0.17, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.40, Behavior: Zipf, Lines: 30000, ReadRatio: 1.0, ZipfS: 0.55},
			{Weight: 0.40, Behavior: Zipf, Lines: 7000, ReadRatio: 1.0, ZipfS: 0.9},
			{Weight: 0.20, Behavior: WriteOnce, Lines: 900_000},
		},
	})

	// ---- Fits-in-cache profiles (insensitive: high hit rates) ----

	register(Profile{
		Name: "perlbench", Seed: 201, MemIntensity: 0.20, CacheSensitive: true,
		Components: []ComponentSpec{
			{Weight: 0.55, Behavior: Zipf, Lines: 12000, ReadRatio: 0.8, ZipfS: 1.0},
			{Weight: 0.30, Behavior: Stack, Lines: 512},
			{Weight: 0.15, Behavior: WriteOnce, Lines: 600_000},
		},
	})
	register(Profile{
		Name: "gobmk", Seed: 202, MemIntensity: 0.16,
		Components: []ComponentSpec{
			{Weight: 0.70, Behavior: Zipf, Lines: 8000, ReadRatio: 0.85, ZipfS: 1.0},
			{Weight: 0.30, Behavior: Stack, Lines: 1024},
		},
	})
	register(Profile{
		Name: "sjeng", Seed: 203, MemIntensity: 0.14,
		Components: []ComponentSpec{
			{Weight: 0.80, Behavior: Zipf, Lines: 6000, ReadRatio: 0.9, ZipfS: 1.1},
			{Weight: 0.20, Behavior: Stack, Lines: 384},
		},
	})
	register(Profile{
		Name: "h264ref", Seed: 204, MemIntensity: 0.18,
		Components: []ComponentSpec{
			{Weight: 0.60, Behavior: Stream, Lines: 4000, ReadRatio: 0.7},
			{Weight: 0.40, Behavior: Zipf, Lines: 4000, ReadRatio: 0.8, ZipfS: 0.9},
		},
	})
	register(Profile{
		Name: "hmmer", Seed: 205, MemIntensity: 0.12,
		Components: []ComponentSpec{
			{Weight: 0.90, Behavior: Stream, Lines: 2000, ReadRatio: 0.88},
			{Weight: 0.10, Behavior: Stack, Lines: 128},
		},
	})
	register(Profile{
		Name: "gromacs", Seed: 206, MemIntensity: 0.10,
		Components: []ComponentSpec{
			{Weight: 0.80, Behavior: Zipf, Lines: 2500, ReadRatio: 0.82, ZipfS: 1.0},
			{Weight: 0.20, Behavior: Stream, Lines: 1200, ReadRatio: 0.75},
		},
	})
	register(Profile{
		Name: "namd", Seed: 207, MemIntensity: 0.08,
		Components: []ComponentSpec{
			{Weight: 1.0, Behavior: Zipf, Lines: 1500, ReadRatio: 0.9, ZipfS: 1.0},
		},
	})
	register(Profile{
		Name: "povray", Seed: 208, MemIntensity: 0.06,
		Components: []ComponentSpec{
			{Weight: 0.85, Behavior: Zipf, Lines: 800, ReadRatio: 0.85, ZipfS: 1.1},
			{Weight: 0.15, Behavior: Stack, Lines: 256},
		},
	})
	register(Profile{
		Name: "gamess", Seed: 209, MemIntensity: 0.07,
		Components: []ComponentSpec{
			{Weight: 1.0, Behavior: Zipf, Lines: 1000, ReadRatio: 0.9, ZipfS: 1.0},
		},
	})
	register(Profile{
		Name: "tonto", Seed: 211, MemIntensity: 0.08,
		Components: []ComponentSpec{
			{Weight: 0.70, Behavior: Zipf, Lines: 2000, ReadRatio: 0.88, ZipfS: 1.0},
			{Weight: 0.30, Behavior: Stack, Lines: 192},
		},
	})
	register(Profile{
		Name: "calculix", Seed: 210, MemIntensity: 0.09,
		Components: []ComponentSpec{
			{Weight: 0.75, Behavior: Stream, Lines: 3000, ReadRatio: 0.85},
			{Weight: 0.25, Behavior: Zipf, Lines: 1500, ReadRatio: 0.85, ZipfS: 1.0},
		},
	})

	// ---- Streaming profiles (insensitive: footprints ≫ any cache) ----

	register(Profile{
		Name: "libquantum", Seed: 301, MemIntensity: 0.38,
		Components: []ComponentSpec{
			{Weight: 1.0, Behavior: Stream, Lines: 2_000_000, ReadRatio: 0.75},
		},
	})
	register(Profile{
		Name: "lbm", Seed: 302, MemIntensity: 0.40,
		Components: []ComponentSpec{
			{Weight: 0.55, Behavior: Stream, Lines: 1_500_000, ReadRatio: 0.5},
			{Weight: 0.45, Behavior: WriteOnce, Lines: 5_000_000},
		},
	})
	register(Profile{
		Name: "milc", Seed: 303, MemIntensity: 0.34,
		Components: []ComponentSpec{
			{Weight: 0.70, Behavior: Stream, Lines: 800_000, ReadRatio: 0.7},
			{Weight: 0.30, Behavior: WriteOnce, Lines: 3_000_000},
		},
	})
	register(Profile{
		Name: "bwaves", Seed: 304, MemIntensity: 0.36,
		Components: []ComponentSpec{
			{Weight: 0.80, Behavior: Stream, Lines: 1_000_000, ReadRatio: 0.8},
			{Weight: 0.20, Behavior: Zipf, Lines: 4000, ReadRatio: 0.9, ZipfS: 1.0},
		},
	})
}
