// Package workload synthesizes SPEC-CPU2006-like memory reference streams.
//
// The paper drives its simulator with Pin traces of the 29 SPEC CPU2006
// benchmarks; those traces are not redistributable, so this package
// substitutes parameterized generators that control exactly the properties
// RWP's behavior depends on:
//
//   - the read/write mix per cache line (read-reused, write-only,
//     written-then-read),
//   - the reuse-distance distribution of clean vs dirty lines relative to
//     LLC capacity, and
//   - overall memory intensity (references per instruction).
//
// Each named profile composes weighted behavioral components (streaming,
// pointer chasing, Zipf hot/cold, write-once output, producer-consumer,
// stack). Profiles are deterministic for a fixed seed. The "benchmark"
// names are SPEC-inspired labels for the behavior being mimicked, not
// claims of instruction-level fidelity; see DESIGN.md §4.
package workload

import (
	"fmt"
	"sort"

	"rwp/internal/mem"
	"rwp/internal/trace"
	"rwp/internal/xrand"
)

// component produces one access worth of (address, kind, pc) at a time.
// Components are infinite and deterministic given their RNG.
type component interface {
	next() (addr mem.Addr, kind mem.Kind, pc mem.Addr)
}

// weighted pairs a component with its selection weight.
type weighted struct {
	w float64
	c component
}

// Source generates the access stream of one profile. It implements
// trace.Source (never returning trace.ErrEnd — wrap with trace.Limit) and
// trace.Resetter.
type Source struct {
	prof  Profile
	rng   *xrand.RNG
	comps []weighted
	total float64
	ic    uint64
	gapHi uint64
}

var _ trace.Source = (*Source)(nil)
var _ trace.Resetter = (*Source)(nil)

// NewSource instantiates the profile's generator.
func (p Profile) NewSource() *Source {
	s := &Source{prof: p}
	s.Reset()
	return s
}

// Reset implements trace.Resetter: the stream restarts from access zero.
func (s *Source) Reset() {
	p := s.prof
	s.rng = xrand.New(p.Seed)
	s.comps = s.comps[:0]
	s.total = 0
	for i, cs := range p.Components {
		comp := cs.build(p.Seed+uint64(i)*0x9e37, i)
		s.comps = append(s.comps, weighted{w: cs.Weight, c: comp})
		s.total += cs.Weight
	}
	s.ic = 0
	// Mean IC gap between references is 1/MemIntensity; draw uniformly
	// over [1, 2*mean-1] for the same mean with jitter.
	mean := 1.0 / p.MemIntensity
	s.gapHi = uint64(2*mean - 1)
	if s.gapHi < 1 {
		s.gapHi = 1
	}
}

// Next implements trace.Source.
func (s *Source) Next() (mem.Access, error) {
	gap := uint64(1)
	if s.gapHi > 1 {
		gap = 1 + s.rng.Uint64n(s.gapHi)
	}
	s.ic += gap
	// Weighted component pick.
	x := s.rng.Float64() * s.total
	var c component
	for _, wc := range s.comps {
		if x < wc.w {
			c = wc.c
			break
		}
		x -= wc.w
	}
	if c == nil {
		c = s.comps[len(s.comps)-1].c
	}
	addr, kind, pc := c.next()
	if s.rng.Chance(sharedPCFraction) {
		// Attribute this access to shared library code.
		slot := mem.Addr(s.rng.Intn(sharedPCPool)) * 4
		if kind.IsRead() {
			pc = sharedLoadPCBase + slot
		} else {
			pc = sharedStorePCBase + slot
		}
	}
	return mem.Access{PC: pc, Addr: addr, IC: s.ic, Kind: kind}, nil
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC-inspired label.
	Name string
	// Seed drives all randomness in the profile.
	Seed uint64
	// MemIntensity is memory references per instruction (0 < x <= 1).
	MemIntensity float64
	// Components is the weighted behavior mix.
	Components []ComponentSpec
	// CacheSensitive marks profiles whose LLC behavior responds to
	// capacity — the paper's "cache-sensitive benchmarks" subset for the
	// 14 % headline number. (Verified empirically by the E1/E6 harness.)
	CacheSensitive bool
}

// WithSeed returns a copy of the profile whose random streams are offset
// by delta: the same behaviors and footprints, a different concrete
// access sequence. Statistical robustness checks run the suite at
// several deltas; delta 0 is the canonical profile.
func (p Profile) WithSeed(delta uint64) Profile {
	p.Seed += delta
	p.Components = append([]ComponentSpec(nil), p.Components...)
	return p
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	if p.MemIntensity <= 0 || p.MemIntensity > 1 {
		return fmt.Errorf("workload %s: MemIntensity %v out of (0,1]", p.Name, p.MemIntensity)
	}
	if len(p.Components) == 0 {
		return fmt.Errorf("workload %s: no components", p.Name)
	}
	sum := 0.0
	for i, c := range p.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("workload %s: component %d weight %v must be positive", p.Name, i, c.Weight)
		}
		if err := c.validate(); err != nil {
			return fmt.Errorf("workload %s: component %d: %w", p.Name, i, err)
		}
		sum += c.Weight
	}
	if sum <= 0 {
		return fmt.Errorf("workload %s: zero total weight", p.Name)
	}
	return nil
}

// Behavior names the access-pattern primitive of a component.
type Behavior uint8

const (
	// Stream scans a region sequentially, wrapping around.
	Stream Behavior = iota
	// PointerChase follows a fixed random permutation cycle (dependent
	// reads).
	PointerChase
	// Zipf draws lines from a skewed popularity distribution.
	Zipf
	// WriteOnce writes fresh lines that are never referenced again.
	WriteOnce
	// ProducerConsumer writes blocks that are read back after a lag.
	ProducerConsumer
	// Stack pushes (writes) and pops (reads) around a drifting stack
	// pointer.
	Stack
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Stream:
		return "stream"
	case PointerChase:
		return "chase"
	case Zipf:
		return "zipf"
	case WriteOnce:
		return "write-once"
	case ProducerConsumer:
		return "prod-cons"
	case Stack:
		return "stack"
	default:
		return fmt.Sprintf("behavior(%d)", uint8(b))
	}
}

// ComponentSpec declares one weighted behavior in a profile.
type ComponentSpec struct {
	// Weight is the relative share of accesses from this component.
	Weight float64
	// Behavior selects the primitive.
	Behavior Behavior
	// Lines is the footprint in cache lines (region size, chase cycle
	// length, zipf population, producer ring, or stack depth).
	Lines int
	// ReadRatio is the fraction of reads for behaviors that mix
	// (Stream, Zipf). Ignored by PointerChase (all reads), WriteOnce
	// (all writes), ProducerConsumer and Stack (structurally determined).
	ReadRatio float64
	// ZipfS is the Zipf exponent (Zipf only; <= 0 means 0.99).
	ZipfS float64
	// BlockLines sizes producer-consumer blocks (ProducerConsumer only;
	// <= 0 means 64).
	BlockLines int
	// ReadPasses is how many times each produced block is consumed
	// (ProducerConsumer only; <= 0 means 1).
	ReadPasses int
	// LagBlocks is how many blocks behind production consumption runs
	// (ProducerConsumer only; 0 consumes the just-produced block). A lag
	// footprint larger than the L2 pushes the consuming reads down to
	// the LLC, where they hit dirty lines — the behavior that populates
	// RWP's dirty partition with read hits.
	LagBlocks int
	// Stride is the line stride for Stream (<= 0 means 1).
	Stride int
}

func (c ComponentSpec) validate() error {
	if c.Lines <= 0 {
		return fmt.Errorf("lines %d must be positive", c.Lines)
	}
	switch c.Behavior {
	case Stream, Zipf:
		if c.ReadRatio < 0 || c.ReadRatio > 1 {
			return fmt.Errorf("read ratio %v out of [0,1]", c.ReadRatio)
		}
	case PointerChase, WriteOnce, ProducerConsumer, Stack:
		// structurally determined
	default:
		return fmt.Errorf("unknown behavior %d", c.Behavior)
	}
	return nil
}

// regionGap separates component address regions (lines). Large enough
// that no realistic footprint overlaps its neighbor.
const regionGap = 1 << 26 // 64 M lines = 4 GiB per region

// pcPoolSize is how many distinct synthetic PCs each component uses.
const pcPoolSize = 8

// Shared "library code" PCs: real programs funnel a sizeable fraction of
// their references through generic routines (memcpy, allocators, STL
// internals) whose PCs see wildly mixed reuse behavior. sharedPCFraction
// of every component's accesses are attributed to these pools instead of
// the component's own PCs, which keeps PC-indexed predictors (RRP, SHiP)
// honest: their training signal is realistically noisy rather than
// perfectly separable.
const (
	sharedPCFraction  = 0.20
	sharedLoadPCBase  = mem.Addr(0x7f0000)
	sharedStorePCBase = mem.Addr(0x7f8000)
	sharedPCPool      = 8
)

// build instantiates the component with a derived seed; idx picks the
// address region and PC pool.
func (c ComponentSpec) build(seed uint64, idx int) component {
	rng := xrand.New(seed)
	base := mem.Addr(uint64(idx+1) * regionGap * mem.DefaultLineSize)
	pcBase := mem.Addr(0x400000 + uint64(idx)*0x1000)
	switch c.Behavior {
	case Stream:
		stride := c.Stride
		if stride <= 0 {
			stride = 1
		}
		return &streamComp{base: base, lines: c.Lines, stride: stride,
			readRatio: c.ReadRatio, rng: rng, pcBase: pcBase}
	case PointerChase:
		return newChaseComp(rng, base, c.Lines, pcBase)
	case Zipf:
		s := c.ZipfS
		if s <= 0 {
			s = 0.99
		}
		return &zipfComp{base: base, z: xrand.NewZipf(rng, c.Lines, s),
			readRatio: c.ReadRatio, rng: rng, pcBase: pcBase}
	case WriteOnce:
		return &writeOnceComp{base: base, lines: c.Lines, rng: rng, pcBase: pcBase}
	case ProducerConsumer:
		bl := c.BlockLines
		if bl <= 0 {
			bl = 64
		}
		rp := c.ReadPasses
		if rp <= 0 {
			rp = 1
		}
		return newProdConsComp(base, c.Lines, bl, rp, c.LagBlocks, pcBase)
	case Stack:
		return &stackComp{base: base, depth: c.Lines, rng: rng, pcBase: pcBase}
	default:
		panic(fmt.Sprintf("workload: unknown behavior %d", c.Behavior))
	}
}

// Registry of named profiles.
var profiles = map[string]Profile{}

// register adds a profile, panicking on duplicates or invalid specs
// (init-time bug).
func register(p Profile) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := profiles[p.Name]; dup {
		panic("workload: duplicate profile " + p.Name)
	}
	profiles[p.Name] = p
}

// Get returns the named profile.
func Get(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown profile %q (known: %v)", name, Names())
	}
	return p, nil
}

// Names returns the sorted profile names.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SensitiveNames returns the names of the cache-sensitive subset.
func SensitiveNames() []string {
	var names []string
	for n, p := range profiles {
		if p.CacheSensitive {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// All returns every profile sorted by name.
func All() []Profile {
	names := Names()
	out := make([]Profile, 0, len(names))
	for _, n := range names {
		out = append(out, profiles[n])
	}
	return out
}
