package core

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
)

func newRWPBCache(t *testing.T, ways int, cfg Config) (*cache.Cache, *RWPB) {
	t.Helper()
	p := NewBypass(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 64 * ways * 8, Ways: ways, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestRWPBRegistered(t *testing.T) {
	p, err := policy.New("rwpb")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "rwpb" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestRWPBBypassesWritebacksAtZeroTarget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 1 << 62
	cfg.InitialDirtyTarget = 0
	c, p := newRWPBCache(t, 4, cfg)
	// Writeback misses must bypass.
	res := c.Access(1, 0, cache.Writeback, 0)
	if !res.Bypassed {
		t.Fatal("writeback not bypassed at target 0")
	}
	if p.Bypasses() != 1 {
		t.Fatalf("bypass counter = %d", p.Bypasses())
	}
	// Loads still allocate.
	res = c.Access(2, 0, cache.DemandLoad, 0)
	if res.Bypassed {
		t.Fatal("load bypassed")
	}
	if _, _, ok := c.Lookup(2); !ok {
		t.Fatal("load fill missing")
	}
}

func TestRWPBAllocatesWritebacksAtNonzeroTarget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 1 << 62
	cfg.InitialDirtyTarget = 2
	c, p := newRWPBCache(t, 4, cfg)
	res := c.Access(1, 0, cache.Writeback, 0)
	if res.Bypassed {
		t.Fatal("writeback bypassed despite non-zero target")
	}
	if p.Bypasses() != 0 {
		t.Fatalf("bypass counter = %d", p.Bypasses())
	}
	if _, _, ok := c.Lookup(1); !ok {
		t.Fatal("writeback not allocated")
	}
}

func TestRWPBMatchesRWPOnReadOnlyStreams(t *testing.T) {
	// Without writebacks the two mechanisms must be indistinguishable.
	run := func(p cache.Policy) uint64 {
		c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 8192, Ways: 4, LineSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50000; i++ {
			c.Access(mem.LineAddr(i%150), 0, cache.DemandLoad, 0)
		}
		return c.Stats().ReadMisses()
	}
	cfg := DefaultConfig()
	cfg.Interval = 1000
	cfg.SamplerSets = 4
	if a, b := run(New(cfg)), run(NewBypass(cfg)); a != b {
		t.Fatalf("read-only behavior differs: rwp=%d rwpb=%d", a, b)
	}
}

func TestRWPBReducesWriteOnceChurn(t *testing.T) {
	// Write-once pollution with a hot read set: RWPB should suffer no
	// more read misses than RWP (bypass only helps) once trained.
	run := func(p cache.Policy) uint64 {
		c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 16384, Ways: 8, LineSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		wr := mem.LineAddr(1 << 20)
		for i := 0; i < 200000; i++ {
			c.Access(mem.LineAddr(i%224), 0, cache.DemandLoad, 0)
			if i%2 == 0 {
				c.Access(wr, 0, cache.Writeback, 0)
				wr++
			}
		}
		return c.Stats().ReadMisses()
	}
	cfg := DefaultConfig()
	cfg.Interval = 5000
	cfg.SamplerSets = 8
	rwpMisses := run(New(cfg))
	rwpbMisses := run(NewBypass(cfg))
	if rwpbMisses > rwpMisses {
		t.Fatalf("rwpb read misses %d > rwp %d", rwpbMisses, rwpMisses)
	}
}
