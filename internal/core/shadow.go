package core

import "rwp/internal/mem"

// shadowSet is the sampler state for one shadowed cache set: two
// full-associativity LRU stacks of line addresses, one for lines whose
// shadow copy is clean and one for dirty. Together they let the predictor
// ask "how many read hits would a clean partition of size c and a dirty
// partition of size d have captured?" for every (c, d) split at once.
type shadowSet struct {
	clean shadowStack
	dirty shadowStack
}

func newShadowSet(ways int) *shadowSet {
	return &shadowSet{
		clean: shadowStack{cap: ways},
		dirty: shadowStack{cap: ways},
	}
}

// access processes one reference to the shadowed set, crediting read hits
// into the distance histograms.
//
// Membership semantics mirror the refetch economics of the real policy:
//
//   - A read hit in the dirty stack is credited to the dirty histogram.
//     If the line was written only once, it then migrates to the clean
//     stack: had the dirty partition evicted it instead, the line would
//     have been written back and returned as a *clean* fill on this very
//     read, so every later read is a clean-partition hit either way —
//     crediting them to dirty would drastically over-value dirty capacity
//     for lightly-written hot data (and starve knife-edge read sets).
//   - A line that is written *again* (rewritten) loses that escape hatch:
//     it re-dirties right after any refill, so all its read hits genuinely
//     depend on dirty capacity and it stays in the dirty stack.
func (s *shadowSet) access(line mem.LineAddr, isRead bool, cleanHist, dirtyHist []uint64) {
	if isRead {
		if d := s.clean.find(line); d >= 0 {
			cleanHist[d]++
			s.clean.touch(d)
			return
		}
		if d := s.dirty.find(line); d >= 0 {
			dirtyHist[d]++
			if s.dirty.entries[d].rewritten {
				s.dirty.touch(d)
				return
			}
			s.dirty.remove(d)
			s.clean.insertMRU(line, true) // everWritten: a rewrite re-dirties for good
			return
		}
		// Read miss: the line would be filled clean (and unwritten).
		s.clean.insertMRU(line, false)
		return
	}
	// Write: the line belongs to the dirty stack afterwards.
	if d := s.clean.find(line); d >= 0 {
		rewritten := s.clean.entries[d].rewritten // carried everWritten flag
		s.clean.remove(d)
		s.dirty.insertMRU(line, rewritten)
		return
	}
	if d := s.dirty.find(line); d >= 0 {
		s.dirty.entries[d].rewritten = true
		s.dirty.touch(d)
		return
	}
	s.dirty.insertMRU(line, false)
}

// shadowEntry is one tracked line. In the clean stack the flag means
// "was ever written" (so a future write counts as a rewrite); in the
// dirty stack it means "written more than once".
type shadowEntry struct {
	line      mem.LineAddr
	rewritten bool
}

// shadowStack is a bounded LRU stack of shadow entries, MRU first.
type shadowStack struct {
	cap     int
	entries []shadowEntry
}

// find returns the stack distance of line (0 = MRU) or -1.
func (st *shadowStack) find(line mem.LineAddr) int {
	for i := range st.entries {
		if st.entries[i].line == line {
			return i
		}
	}
	return -1
}

// touch promotes the entry at distance d to MRU.
func (st *shadowStack) touch(d int) {
	e := st.entries[d]
	copy(st.entries[1:d+1], st.entries[:d])
	st.entries[0] = e
}

// remove deletes the entry at distance d.
func (st *shadowStack) remove(d int) {
	st.entries = append(st.entries[:d], st.entries[d+1:]...)
}

// insertMRU pushes line at MRU with the given flag, evicting the LRU
// entry if full.
func (st *shadowStack) insertMRU(line mem.LineAddr, flag bool) {
	if len(st.entries) >= st.cap {
		copy(st.entries[1:], st.entries[:st.cap-1]) // drop the LRU tail
	} else {
		st.entries = append(st.entries, shadowEntry{})
		copy(st.entries[1:], st.entries[:len(st.entries)-1])
	}
	st.entries[0] = shadowEntry{line: line, rewritten: flag}
}

// size returns the number of shadow entries.
func (st *shadowStack) size() int { return len(st.entries) }
