package core

import (
	"testing"
	"testing/quick"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

func TestWrittenFlagsMatchCountsQuick(t *testing.T) {
	// Property: writtenCount[set] always equals the number of set's
	// written flags, and written lines are a subset of valid lines.
	f := func(ops []uint16) bool {
		cfg := DefaultConfig()
		cfg.Interval = 500
		cfg.SamplerSets = 2
		p := New(cfg)
		c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 2048, Ways: 4,
			LineSize: 64, StoreFillsClean: true}, p)
		if err != nil {
			return false
		}
		for _, op := range ops {
			line := mem.LineAddr(op % 256)
			c.Access(line, mem.Addr(op), cache.Class(op%3), 0)
		}
		ways := c.Ways()
		for s := 0; s < c.NumSets(); s++ {
			n := 0
			for w := 0; w < ways; w++ {
				if p.written[s*ways+w] {
					n++
					if !c.State(s, w).Valid {
						return false // written flag on an invalid way
					}
				}
			}
			if n != int(p.writtenCount[s]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestWrittenLeadsDirtyBitUnderRFO(t *testing.T) {
	// Under lower-level semantics, an RFO fill is clean in the tag store
	// but must already count against the dirty partition.
	cfg := DefaultConfig()
	cfg.Interval = 1 << 62
	cfg.InitialDirtyTarget = 2
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 64 * 4, Ways: 4,
		LineSize: 64, StoreFillsClean: true}, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1, 0x10, cache.DemandStore, 0)
	set, way, _ := c.Lookup(1)
	if c.State(set, way).Dirty {
		t.Fatal("RFO fill dirtied the tag store")
	}
	if p.writtenCount[set] != 1 {
		t.Fatalf("written count %d; RFO fill must join the dirty partition", p.writtenCount[set])
	}
}

func TestHistoryGrowsOnlyAtIntervals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 1000
	cfg.SamplerSets = 2
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 8192, Ways: 4, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5500; i++ {
		c.Access(mem.LineAddr(i%300), 0, cache.DemandLoad, 0)
	}
	if got := len(p.History()); got != 5 {
		t.Fatalf("history has %d entries after 5.5 intervals, want 5", got)
	}
}

func TestDecayHalvesHistograms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 100
	cfg.SamplerSets = 1
	cfg.DecayShift = 1
	p := New(cfg)
	_, err := cache.New(cache.Config{Name: "llc", SizeBytes: 64 * 4, Ways: 4, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	p.cleanHist[0] = 100
	p.dirtyHist[3] = 7
	p.repartition()
	ch, dh := p.Histograms()
	if ch[0] != 50 || dh[3] != 3 {
		t.Fatalf("decay wrong: clean[0]=%d dirty[3]=%d", ch[0], dh[3])
	}
}
