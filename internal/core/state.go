package core

import (
	"fmt"

	"rwp/internal/mem"
	"rwp/internal/recency"
)

// State is a deep copy of an RWP instance's predictor and partition
// state — everything the policy carries besides the recency table and
// the per-line written bits, which a restorer reconstructs by
// replaying OnFill per resident line (the written bit is a pure
// function of each line's fill/hit access classes, and the live cache
// keeps it equal to the entry's dirty bit). Exporting plain exported
// fields keeps the snapshot codec (internal/snap) free of any
// dependency on core's private layout.
type State struct {
	// TargetDirty is the current dirty-partition target in ways.
	TargetDirty int
	// Accesses is the interval clock (observe() calls so far).
	Accesses uint64
	// Intervals counts completed repartitionings; the three Retarget*
	// counters always sum to it, and History has exactly one entry per
	// interval.
	Intervals    uint64
	RetargetUp   uint64
	RetargetDown uint64
	RetargetSame uint64
	// History is the target chosen at each interval boundary.
	History []int
	// CleanHist and DirtyHist are the decayed read-hit stack-distance
	// histograms, one bucket per way.
	CleanHist []uint64
	DirtyHist []uint64
	// Samplers holds the shadow-stack state of every shadowed set, in
	// ascending set order.
	Samplers []SamplerState
}

// SamplerState is one shadowed set's pair of shadow LRU stacks.
type SamplerState struct {
	Clean []SamplerEntry
	Dirty []SamplerEntry
}

// SamplerEntry is one tracked line, MRU first within its stack.
type SamplerEntry struct {
	Line      uint64
	Rewritten bool
}

// Validate checks a State against a geometry before any of it is
// installed, so a restore either applies completely or not at all.
// ways is the set associativity; samplers is the expected shadowed-set
// count (RWP.SamplerSetCount on the target instance).
func (st *State) Validate(ways, samplers int) error {
	if st.TargetDirty < 0 || st.TargetDirty > ways {
		return fmt.Errorf("rwp: state target %d outside [0,%d]", st.TargetDirty, ways)
	}
	if len(st.CleanHist) != ways || len(st.DirtyHist) != ways {
		return fmt.Errorf("rwp: state histogram lengths %d/%d, want %d", len(st.CleanHist), len(st.DirtyHist), ways)
	}
	if st.RetargetUp+st.RetargetDown+st.RetargetSame != st.Intervals {
		return fmt.Errorf("rwp: state retarget directions sum %d, want %d intervals",
			st.RetargetUp+st.RetargetDown+st.RetargetSame, st.Intervals)
	}
	if uint64(len(st.History)) != st.Intervals {
		return fmt.Errorf("rwp: state history length %d, want %d intervals", len(st.History), st.Intervals)
	}
	for i, t := range st.History {
		if t < 0 || t > ways {
			return fmt.Errorf("rwp: state history[%d] = %d outside [0,%d]", i, t, ways)
		}
	}
	if len(st.Samplers) != samplers {
		return fmt.Errorf("rwp: state has %d samplers, want %d", len(st.Samplers), samplers)
	}
	for i := range st.Samplers {
		if n := len(st.Samplers[i].Clean); n > ways {
			return fmt.Errorf("rwp: state sampler %d clean stack %d exceeds %d ways", i, n, ways)
		}
		if n := len(st.Samplers[i].Dirty); n > ways {
			return fmt.Errorf("rwp: state sampler %d dirty stack %d exceeds %d ways", i, n, ways)
		}
	}
	return nil
}

// ExportState deep-copies the policy's predictor and partition state.
// The policy must be attached.
func (p *RWP) ExportState() State {
	st := State{
		TargetDirty:  p.targetDirty,
		Accesses:     p.accesses,
		Intervals:    p.intervals,
		RetargetUp:   p.retargetUp,
		RetargetDown: p.retargetDown,
		RetargetSame: p.retargetSame,
		History:      append([]int(nil), p.history...),
		CleanHist:    append([]uint64(nil), p.cleanHist...),
		DirtyHist:    append([]uint64(nil), p.dirtyHist...),
	}
	for s := range p.samplers {
		if sh := p.samplers[s]; sh != nil {
			st.Samplers = append(st.Samplers, SamplerState{
				Clean: exportStack(&sh.clean),
				Dirty: exportStack(&sh.dirty),
			})
		}
	}
	return st
}

// RestoreState installs a deep copy of st into an attached policy.
// Validation runs before any mutation, so a rejected state leaves the
// policy untouched. The recency table and written bits are not part of
// State: the caller replays OnFill for every resident line first (or
// after — RestoreState does not read them).
func (p *RWP) RestoreState(st State) error {
	if p.r == nil {
		return fmt.Errorf("rwp: RestoreState before Attach")
	}
	if err := st.Validate(p.r.Ways(), p.samplerCount); err != nil {
		return err
	}
	p.targetDirty = st.TargetDirty
	p.accesses = st.Accesses
	p.intervals = st.Intervals
	p.retargetUp = st.RetargetUp
	p.retargetDown = st.RetargetDown
	p.retargetSame = st.RetargetSame
	p.history = append([]int(nil), st.History...)
	copy(p.cleanHist, st.CleanHist)
	copy(p.dirtyHist, st.DirtyHist)
	i := 0
	for s := range p.samplers {
		if sh := p.samplers[s]; sh != nil {
			restoreStack(&sh.clean, st.Samplers[i].Clean)
			restoreStack(&sh.dirty, st.Samplers[i].Dirty)
			i++
		}
	}
	return nil
}

func exportStack(st *shadowStack) []SamplerEntry {
	if len(st.entries) == 0 {
		return nil
	}
	out := make([]SamplerEntry, len(st.entries))
	for i, e := range st.entries {
		out[i] = SamplerEntry{Line: uint64(e.line), Rewritten: e.rewritten}
	}
	return out
}

func restoreStack(st *shadowStack, entries []SamplerEntry) {
	st.entries = st.entries[:0]
	for _, e := range entries {
		st.entries = append(st.entries, shadowEntry{line: mem.LineAddr(e.Line), rewritten: e.Rewritten})
	}
}

// Recency exposes the recency table for snapshot iteration and tests,
// mirroring policy.LRU's accessor.
func (p *RWP) Recency() *recency.Table { return p.tab }
