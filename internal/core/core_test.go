package core

import (
	"testing"
	"testing/quick"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
)

func newRWPCache(t *testing.T, sizeBytes, ways int, cfg Config) (*cache.Cache, *RWP) {
	t.Helper()
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: sizeBytes, Ways: ways, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Interval = 1000
	cfg.SamplerSets = 4
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.SamplerSets = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sampler sets accepted")
	}
	bad = DefaultConfig()
	bad.Interval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestRegisteredInPolicyRegistry(t *testing.T) {
	p, err := policy.New("rwp")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "rwp" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestBestDirtyWaysExhaustive(t *testing.T) {
	// Property: BestDirtyWays returns the argmax over all d, preferring
	// the smallest d on ties, verified against a brute-force evaluation.
	f := func(seed int64, ch, dh [8]uint16) bool {
		clean := make([]uint64, 8)
		dirty := make([]uint64, 8)
		for i := 0; i < 8; i++ {
			clean[i] = uint64(ch[i] % 100)
			dirty[i] = uint64(dh[i] % 100)
		}
		got := BestDirtyWays(clean, dirty)
		hits := func(d int) uint64 {
			var h uint64
			for i := 0; i < 8-d; i++ {
				h += clean[i]
			}
			for i := 0; i < d; i++ {
				h += dirty[i]
			}
			return h
		}
		best := hits(got)
		for d := 0; d <= 8; d++ {
			if hits(d) > best {
				return false
			}
			if hits(d) == best && d < got {
				return false // tie must prefer smaller d
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBestDirtyWaysCorners(t *testing.T) {
	// All read hits clean → d = 0.
	if d := BestDirtyWays([]uint64{5, 5, 5, 5}, []uint64{0, 0, 0, 0}); d != 0 {
		t.Fatalf("all-clean hits → d = %d, want 0", d)
	}
	// All read hits dirty → d = assoc.
	if d := BestDirtyWays([]uint64{0, 0, 0, 0}, []uint64{5, 5, 5, 5}); d != 4 {
		t.Fatalf("all-dirty hits → d = %d, want 4", d)
	}
	// No hits at all → d = 0 (prefer clean).
	if d := BestDirtyWays(make([]uint64, 4), make([]uint64, 4)); d != 0 {
		t.Fatalf("no hits → d = %d, want 0", d)
	}
	// Clean hits near MRU, dirty hits far: small dirty partition wins.
	if d := BestDirtyWays([]uint64{10, 10, 0, 0}, []uint64{0, 0, 0, 10}); d != 0 {
		t.Fatalf("near-clean far-dirty → d = %d, want 0", d)
	}
}

func TestTargetWithinRangeAlways(t *testing.T) {
	cfg := smallCfg()
	c, p := newRWPCache(t, 8192, 4, cfg) // 32 sets
	for i := 0; i < 50000; i++ {
		line := mem.LineAddr(i * 31 % 4096)
		class := cache.Class(i % 3)
		c.Access(line, mem.Addr(i), class, 0)
		if p.TargetDirty() < 0 || p.TargetDirty() > 4 {
			t.Fatalf("target %d out of [0,4]", p.TargetDirty())
		}
	}
	if p.Intervals() == 0 {
		t.Fatal("no repartitionings happened")
	}
	if uint64(len(p.History())) != p.Intervals() {
		t.Fatal("history length disagrees with interval count")
	}
}

// TestRetargetDirsConserved: every repartitioning is classified as
// exactly one of up/down/same, the counts agree with the recorded
// history, and they sum to the interval count — the conservation law
// the live telemetry's per-set aggregation relies on.
func TestRetargetDirsConserved(t *testing.T) {
	cfg := smallCfg()
	c, p := newRWPCache(t, 8192, 4, cfg)
	for i := 0; i < 50000; i++ {
		c.Access(mem.LineAddr(i*31%4096), mem.Addr(i), cache.Class(i%3), 0)
	}
	up, down, same := p.RetargetDirs()
	if up+down+same != p.Intervals() {
		t.Fatalf("up %d + down %d + same %d != intervals %d", up, down, same, p.Intervals())
	}
	var wantUp, wantDown, wantSame uint64
	prev := 4 / 2 // Attach's initial target: ways/2
	for _, d := range p.History() {
		switch {
		case d > prev:
			wantUp++
		case d < prev:
			wantDown++
		default:
			wantSame++
		}
		prev = d
	}
	if up != wantUp || down != wantDown || same != wantSame {
		t.Fatalf("dirs (%d,%d,%d) disagree with history replay (%d,%d,%d)",
			up, down, same, wantUp, wantDown, wantSame)
	}
	if p.Intervals() == 0 {
		t.Fatal("no repartitionings happened — conservation check is vacuous")
	}
}

func TestPartitionGrowsDirtyWhenDirtyServesReads(t *testing.T) {
	// Workload: a producer-consumer ring — every line is written and then
	// read back 64 writes later, so a written line must survive in the
	// dirty partition across its write→first-read window (≈2 ways per
	// set). A never-reused clean scan competes for the same capacity.
	// The predictor must grow the dirty partition.
	cfg := smallCfg()
	_, p := newRWPCacheWithRun(t, cfg, func(c *cache.Cache) {
		const ring, lag = 256, 64
		scan := mem.LineAddr(1 << 20)
		for i := 0; i < 60000; i++ {
			c.Access(mem.LineAddr(i%ring), 0, cache.DemandStore, 0)
			c.Access(mem.LineAddr((i-lag+ring*256)%ring), 0, cache.DemandLoad, 0)
			c.Access(scan, 0, cache.DemandLoad, 0) // clean, never reused
			scan++
		}
	})
	if p.TargetDirty() < 2 {
		t.Fatalf("dirty-read workload → target %d, want >= 2", p.TargetDirty())
	}
}

func TestPartitionShrinksDirtyWhenWritesAreUseless(t *testing.T) {
	// Workload: a write-only stream (never read) plus a hot read-only
	// set. The predictor must shrink the dirty partition toward zero.
	cfg := smallCfg()
	_, p := newRWPCacheWithRun(t, cfg, func(c *cache.Cache) {
		wr := mem.LineAddr(1 << 20)
		for i := 0; i < 30000; i++ {
			c.Access(mem.LineAddr(i%96), 0, cache.DemandLoad, 0) // hot clean reads
			c.Access(wr, 0, cache.DemandStore, 0)                // write-once
			wr++
		}
	})
	if p.TargetDirty() != 0 {
		t.Fatalf("write-only workload → target %d, want 0", p.TargetDirty())
	}
}

func newRWPCacheWithRun(t *testing.T, cfg Config, run func(*cache.Cache)) (*cache.Cache, *RWP) {
	t.Helper()
	c, p := newRWPCache(t, 8192, 4, cfg)
	run(c)
	return c, p
}

func TestRWPBeatsLRUOnWriteOnceReadMany(t *testing.T) {
	// The paper's motivating scenario: a read working set slightly larger
	// than what LRU retains, competing against write-once lines that are
	// never read. RWP should suffer fewer read misses than LRU.
	run := func(p cache.Policy) uint64 {
		c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 16384, Ways: 8, LineSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		wr := mem.LineAddr(1 << 20)
		for i := 0; i < 200000; i++ {
			c.Access(mem.LineAddr(i%224), 0, cache.DemandLoad, 0) // 224 of 256 lines
			if i%2 == 0 {
				c.Access(wr, 0, cache.Writeback, 0) // write-only traffic
				wr++
			}
		}
		return c.Stats().ReadMisses()
	}
	cfg := DefaultConfig()
	cfg.Interval = 5000
	cfg.SamplerSets = 8
	rwpMisses := run(New(cfg))
	lru, err := policy.New("lru")
	if err != nil {
		t.Fatal(err)
	}
	lruMisses := run(lru)
	if rwpMisses >= lruMisses {
		t.Fatalf("RWP read misses %d >= LRU %d on write-once/read-many mix", rwpMisses, lruMisses)
	}
	// The gap should be substantial (paper-shape: large).
	if float64(rwpMisses) > 0.8*float64(lruMisses) {
		t.Logf("warning: RWP %d vs LRU %d — smaller gap than expected", rwpMisses, lruMisses)
	}
}

func TestVictimRespectsPartition(t *testing.T) {
	// Force a known target and verify victim class selection directly.
	cfg := smallCfg()
	cfg.Interval = 1 << 62 // never repartition
	cfg.InitialDirtyTarget = 1
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 64 * 4, Ways: 4, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fill: 2 dirty, 2 clean. Dirty count (2) > target (1) → evict dirty LRU.
	c.Access(1, 0, cache.DemandStore, 0) // dirty, oldest dirty
	c.Access(2, 0, cache.DemandLoad, 0)  // clean
	c.Access(3, 0, cache.DemandStore, 0) // dirty
	c.Access(4, 0, cache.DemandLoad, 0)  // clean
	res := c.Access(5, 0, cache.DemandLoad, 0)
	if !res.Writeback || res.WritebackLine != 1 {
		t.Fatalf("expected eviction of dirty LRU line 1, got %+v", res)
	}
	// Now 1 dirty (line 3) == target 1 → still evict dirty LRU (at quota).
	res = c.Access(6, 0, cache.DemandLoad, 0)
	if !res.Writeback || res.WritebackLine != 3 {
		t.Fatalf("expected eviction of dirty line 3, got %+v", res)
	}
	// Now 0 dirty < target → evict clean LRU (line 2).
	c.Access(7, 0, cache.DemandLoad, 0)
	if _, _, ok := c.Lookup(2); ok {
		t.Fatal("clean LRU line 2 not evicted when dirty partition under quota")
	}
}

func TestVictimFallsBackAcrossPartitions(t *testing.T) {
	cfg := smallCfg()
	cfg.Interval = 1 << 62
	cfg.InitialDirtyTarget = 4 // want all-dirty
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 64 * 2, Ways: 2, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	// All-clean set; dirty (0) < target → clean LRU eviction must work.
	c.Access(1, 0, cache.DemandLoad, 0)
	c.Access(2, 0, cache.DemandLoad, 0)
	c.Access(3, 0, cache.DemandLoad, 0)
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("clean fallback failed to evict LRU")
	}
	// All-dirty set with target 0 via a fresh cache.
	cfg.InitialDirtyTarget = 0
	p2 := New(cfg)
	c2, err := cache.New(cache.Config{Name: "llc", SizeBytes: 64 * 2, Ways: 2, LineSize: 64}, p2)
	if err != nil {
		t.Fatal(err)
	}
	c2.Access(1, 0, cache.DemandStore, 0)
	c2.Access(2, 0, cache.DemandStore, 0)
	c2.Access(3, 0, cache.DemandStore, 0)
	if _, _, ok := c2.Lookup(1); ok {
		t.Fatal("dirty eviction with target 0 failed")
	}
}

func TestShadowStackBehavior(t *testing.T) {
	st := shadowStack{cap: 3}
	st.insertMRU(10, false)
	st.insertMRU(20, false)
	st.insertMRU(30, false)
	if st.size() != 3 {
		t.Fatalf("size = %d", st.size())
	}
	if d := st.find(10); d != 2 {
		t.Fatalf("find(10) = %d, want 2 (LRU)", d)
	}
	st.insertMRU(40, false) // evicts 10
	if st.find(10) != -1 {
		t.Fatal("LRU entry not evicted on overflow")
	}
	if st.size() != 3 {
		t.Fatalf("size after overflow = %d", st.size())
	}
	// Touch 20 (now LRU) to MRU.
	d := st.find(20)
	st.touch(d)
	if st.find(20) != 0 {
		t.Fatal("touch did not promote to MRU")
	}
	// Remove the middle entry.
	d = st.find(40)
	st.remove(d)
	if st.find(40) != -1 || st.size() != 2 {
		t.Fatal("remove failed")
	}
}

func TestShadowSetCleanToDirtyMigration(t *testing.T) {
	sh := newShadowSet(4)
	ch := make([]uint64, 4)
	dh := make([]uint64, 4)
	sh.access(100, true, ch, dh) // read miss → clean stack
	if sh.clean.find(100) != 0 {
		t.Fatal("read miss not inserted clean")
	}
	sh.access(100, false, ch, dh) // write → migrates to dirty
	if sh.clean.find(100) != -1 || sh.dirty.find(100) != 0 {
		t.Fatal("write did not migrate line to dirty stack")
	}
	sh.access(100, true, ch, dh) // read hit in dirty at distance 0
	if dh[0] != 1 {
		t.Fatalf("dirty read hit not counted: %v", dh)
	}
	if ch[0] != 0 {
		t.Fatalf("clean histogram polluted: %v", ch)
	}
}

func TestShadowSetReadDistances(t *testing.T) {
	sh := newShadowSet(4)
	ch := make([]uint64, 4)
	dh := make([]uint64, 4)
	// Insert 3 clean lines: 1 (LRU-most), 2, 3 (MRU).
	sh.access(1, true, ch, dh)
	sh.access(2, true, ch, dh)
	sh.access(3, true, ch, dh)
	// Reading 1 hits at distance 2.
	sh.access(1, true, ch, dh)
	if ch[2] != 1 {
		t.Fatalf("distance-2 hit not counted: %v", ch)
	}
	// 1 is now MRU; reading it again hits at distance 0.
	sh.access(1, true, ch, dh)
	if ch[0] != 1 {
		t.Fatalf("distance-0 hit not counted: %v", ch)
	}
}

func TestSamplerSetCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SamplerSets = 32
	c, p := newRWPCache(t, 2*1024*1024, 16, cfg) // 2048 sets
	_ = c
	if got := p.SamplerSetCount(); got != 32 {
		t.Fatalf("sampler sets = %d, want 32", got)
	}
	// More samplers than sets: clamped.
	cfg.SamplerSets = 1024
	_, p2 := newRWPCache(t, 64*4*8, 4, cfg) // 8 sets
	if got := p2.SamplerSetCount(); got != 8 {
		t.Fatalf("clamped sampler sets = %d, want 8", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		cfg := smallCfg()
		c, p := newRWPCache(t, 8192, 4, cfg)
		for i := 0; i < 30000; i++ {
			line := mem.LineAddr(i * 17 % 777)
			class := cache.Class(i % 3)
			c.Access(line, mem.Addr(i), class, 0)
		}
		return c.Stats().ReadMisses(), p.TargetDirty()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", m1, t1, m2, t2)
	}
}

func TestHistogramsAccessorCopies(t *testing.T) {
	_, p := newRWPCache(t, 8192, 4, smallCfg())
	ch, dh := p.Histograms()
	ch[0] = 999
	dh[0] = 999
	ch2, dh2 := p.Histograms()
	if ch2[0] == 999 || dh2[0] == 999 {
		t.Fatal("Histograms returned internal state, not copies")
	}
}
