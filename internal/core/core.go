// Package core implements Read-Write Partitioning (RWP), the primary
// contribution of Khan et al., HPCA 2014.
//
// RWP logically splits every cache set into a clean partition and a dirty
// partition. A line is in the dirty partition once it has been written
// (demand store or writeback); partitions are bounded by a single global
// target size for the dirty partition, recomputed periodically by a
// predictor that maximizes expected *read* hits:
//
//   - A small number of sampler sets maintain two full-associativity
//     shadow LRU stacks per set — one for clean lines, one for dirty
//     lines — and histogram the stack distance of every read hit in each.
//   - At the end of each interval, for every candidate dirty size
//     d ∈ [0, assoc], predicted read hits are the clean-stack read hits at
//     distances < assoc−d plus the dirty-stack read hits at distances < d.
//     The d maximizing this sum becomes the target; counters then decay.
//   - On replacement, the victim is the LRU line of whichever partition
//     is over its target (dirty if the set holds ≥ target dirty lines,
//     else clean), falling back to the other partition when the chosen
//     one is empty.
//
// Because write misses are off the critical path, sacrificing write-only
// lines to keep read-serving lines resident converts write hits into
// cheap writebacks and read misses into read hits — the paper's 5 %
// (all-suite) / 14 % (cache-sensitive) single-core speedups over LRU.
package core

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/policy"
	"rwp/internal/probe"
	"rwp/internal/recency"
)

// Config parameterizes RWP.
type Config struct {
	// SamplerSets is the number of sets shadowed by the predictor
	// (paper-scale: 32). Clamped to the cache's set count.
	SamplerSets int
	// Interval is the number of LLC accesses between repartitionings.
	Interval uint64
	// DecayShift halves (shift=1) or quarters (shift=2) the histogram
	// counters at each repartitioning, giving the predictor hysteresis.
	DecayShift uint
	// InitialDirtyTarget seeds the partition before the first interval
	// completes; -1 selects assoc/2.
	InitialDirtyTarget int
}

// DefaultConfig returns the configuration used throughout the paper-shape
// experiments.
func DefaultConfig() Config {
	return Config{
		SamplerSets:        32,
		Interval:           100_000,
		DecayShift:         1,
		InitialDirtyTarget: -1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SamplerSets <= 0 {
		return fmt.Errorf("rwp: SamplerSets %d must be positive", c.SamplerSets)
	}
	if c.Interval == 0 {
		return fmt.Errorf("rwp: Interval must be positive")
	}
	return nil
}

// RWP is the read-write partitioning replacement policy. It implements
// cache.Policy.
type RWP struct {
	cfg Config

	r   cache.StateReader
	tab *recency.Table

	// Dirty-partition target in ways, shared by all sets.
	targetDirty int

	// written tracks partition membership per line: true once the line
	// was filled by a write (demand store / writeback) or written while
	// resident. This deliberately leads the LLC dirty bit: a store-miss
	// RFO fill is clean in the data array until the upper level writes
	// back, but the paper's partition criterion is "has been written",
	// so the line belongs to the dirty partition from the fill on.
	written      []bool
	writtenCount []int16 // per-set count of written lines

	// Sampler state: samplers[set] is non-nil for shadowed sets.
	samplerStride int
	samplers      []*shadowSet
	samplerCount  int
	cleanHist     []uint64 // read hits by clean stack distance
	dirtyHist     []uint64 // read hits by dirty stack distance
	accesses      uint64
	intervals     uint64

	// Retarget-decision direction counters: how often a repartitioning
	// grew, shrank, or kept the dirty-partition target. Plain sums, so
	// aggregating them across sets (internal/live's telemetry) is
	// order-independent; intervals == up+down+same always.
	retargetUp   uint64
	retargetDown uint64
	retargetSame uint64

	// history records the target chosen at each interval boundary, for
	// the partition-dynamics experiment (E8).
	history []int

	// probe receives retarget events; nil disables them.
	probe probe.Probe
}

// SetProbe implements probe.Instrumentable.
func (p *RWP) SetProbe(pr probe.Probe) { p.probe = pr }

// New returns an RWP policy with the given configuration.
func New(cfg Config) *RWP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RWP{cfg: cfg}
}

// Name implements cache.Policy.
func (p *RWP) Name() string { return "rwp" }

// Attach implements cache.Policy.
func (p *RWP) Attach(r cache.StateReader) {
	p.r = r
	sets, ways := r.NumSets(), r.Ways()
	p.tab = recency.NewTable(sets, ways)
	n := p.cfg.SamplerSets
	if n > sets {
		n = sets
	}
	p.samplerStride = sets / n
	if p.samplerStride < 1 {
		p.samplerStride = 1
	}
	p.samplers = make([]*shadowSet, sets)
	for s := 0; s < sets; s += p.samplerStride {
		p.samplers[s] = newShadowSet(ways)
		p.samplerCount++
	}
	p.cleanHist = make([]uint64, ways)
	p.dirtyHist = make([]uint64, ways)
	p.written = make([]bool, sets*ways)
	p.writtenCount = make([]int16, sets)
	if p.cfg.InitialDirtyTarget >= 0 && p.cfg.InitialDirtyTarget <= ways {
		p.targetDirty = p.cfg.InitialDirtyTarget
	} else {
		p.targetDirty = ways / 2
	}
}

// TargetDirty returns the current dirty-partition target in ways.
func (p *RWP) TargetDirty() int { return p.targetDirty }

// History returns the target chosen at every interval boundary so far.
func (p *RWP) History() []int { return p.history }

// Intervals returns how many repartitionings have happened.
func (p *RWP) Intervals() uint64 { return p.intervals }

// RetargetDirs returns the repartition-decision direction counts: how
// many decisions raised, lowered, or kept the dirty-partition target.
// The three always sum to Intervals().
func (p *RWP) RetargetDirs() (up, down, same uint64) {
	return p.retargetUp, p.retargetDown, p.retargetSame
}

// observe feeds the sampler and advances the interval clock. It runs on
// every access (hit or miss) so sampler sets see the same stream the real
// sets do.
func (p *RWP) observe(set int, ai cache.AccessInfo) {
	if sh := p.samplers[set]; sh != nil {
		sh.access(ai.Line, ai.Class.IsRead(), p.cleanHist, p.dirtyHist)
	}
	p.accesses++
	if p.accesses%p.cfg.Interval == 0 {
		p.repartition()
	}
}

// repartition picks the dirty-partition size maximizing predicted read
// hits and decays the histograms.
func (p *RWP) repartition() {
	prev := p.targetDirty
	p.targetDirty = BestDirtyWays(p.cleanHist, p.dirtyHist)
	switch {
	case p.targetDirty > prev:
		p.retargetUp++
	case p.targetDirty < prev:
		p.retargetDown++
	default:
		p.retargetSame++
	}
	p.intervals++
	p.history = append(p.history, p.targetDirty)
	if p.probe != nil {
		p.probe.Retarget(probe.RetargetEvent{Interval: p.intervals, Target: p.targetDirty, Accesses: p.accesses})
	}
	for i := range p.cleanHist {
		p.cleanHist[i] >>= p.cfg.DecayShift
		p.dirtyHist[i] >>= p.cfg.DecayShift
	}
}

// BestDirtyWays returns the dirty-partition size d ∈ [0, len(hist)] that
// maximizes clean read hits at distance < A−d plus dirty read hits at
// distance < d. Ties prefer the smaller d (a larger clean partition),
// since clean lines can only ever serve reads.
//
// It is exported for the predictor's property tests and for offline
// analysis tools.
func BestDirtyWays(cleanHist, dirtyHist []uint64) int {
	ways := len(cleanHist)
	if len(dirtyHist) != ways {
		panic("rwp: histogram length mismatch")
	}
	// Prefix sums: cleanPfx[k] = hits with distance < k.
	cleanPfx := make([]uint64, ways+1)
	dirtyPfx := make([]uint64, ways+1)
	for i := 0; i < ways; i++ {
		cleanPfx[i+1] = cleanPfx[i] + cleanHist[i]
		dirtyPfx[i+1] = dirtyPfx[i] + dirtyHist[i]
	}
	best, bestHits := 0, uint64(0)
	for d := 0; d <= ways; d++ {
		h := cleanPfx[ways-d] + dirtyPfx[d]
		if h > bestHits {
			best, bestHits = d, h
		}
	}
	return best
}

// OnHit implements cache.Policy.
func (p *RWP) OnHit(set, way int, ai cache.AccessInfo) {
	p.observe(set, ai)
	p.tab.Touch(set, way)
	if ai.Class.IsWrite() {
		i := set*p.r.Ways() + way
		if !p.written[i] {
			p.written[i] = true
			p.writtenCount[set]++
		}
	}
}

// Victim implements cache.Policy: evict from the over-quota partition.
func (p *RWP) Victim(set int, ai cache.AccessInfo) (int, bool) {
	p.observe(set, ai)
	ways := p.r.Ways()
	if p.r.ValidWays(set) < ways {
		for w := 0; w < ways; w++ {
			if !p.r.State(set, w).Valid {
				return w, false
			}
		}
	}
	dirtyWays := int(p.writtenCount[set])
	base := set * ways
	dirty := func(w int) bool { return p.written[base+w] }
	clean := func(w int) bool { return !p.written[base+w] }
	if dirtyWays >= p.targetDirty {
		// Dirty partition at or over quota: evict its LRU line.
		if w := p.tab.LeastRecent(set, dirty); w >= 0 {
			return w, false
		}
		// No dirty lines at all (possible when target is 0): clean LRU.
		return p.tab.LeastRecent(set, clean), false
	}
	// Dirty partition under quota: shrink the clean partition.
	if w := p.tab.LeastRecent(set, clean); w >= 0 {
		return w, false
	}
	return p.tab.LeastRecent(set, dirty), false
}

// OnEvict implements cache.Policy.
func (p *RWP) OnEvict(set, way int, _ cache.AccessInfo) {
	i := set*p.r.Ways() + way
	if p.written[i] {
		p.written[i] = false
		p.writtenCount[set]--
	}
}

// OnFill implements cache.Policy: MRU insertion, with partition
// membership decided by the filling access class.
func (p *RWP) OnFill(set, way int, ai cache.AccessInfo) {
	p.tab.Touch(set, way)
	i := set*p.r.Ways() + way
	if ai.Class.IsWrite() {
		if !p.written[i] {
			p.written[i] = true
			p.writtenCount[set]++
		}
	} else if p.written[i] {
		p.written[i] = false
		p.writtenCount[set]--
	}
}

// Histograms returns copies of the current clean/dirty read-hit
// histograms (for reports and tests).
func (p *RWP) Histograms() (clean, dirty []uint64) {
	clean = append([]uint64(nil), p.cleanHist...)
	dirty = append([]uint64(nil), p.dirtyHist...)
	return clean, dirty
}

// SamplerSetCount returns how many sets are shadowed.
func (p *RWP) SamplerSetCount() int { return p.samplerCount }

func init() {
	policy.Register("rwp", func() cache.Policy { return New(DefaultConfig()) })
}
