package core

import (
	"rwp/internal/cache"
	"rwp/internal/policy"
	"rwp/internal/probe"
)

// RWPB is the bypass extension of RWP sketched in the paper's discussion
// of RRP: when the partition predictor concludes that dirty lines serve
// no reads at all (target = 0), incoming writebacks are not even
// allocated — they stream straight to memory, sparing the clean
// partition the churn of transient dirty fills. With a non-zero target
// the mechanism degenerates to plain RWP.
//
// RWPB needs no additional state over RWP: the bypass verdict reuses the
// existing dirty-partition target.
type RWPB struct {
	*RWP
	bypasses uint64
}

// NewBypass returns an RWPB policy over the given RWP configuration.
func NewBypass(cfg Config) *RWPB { return &RWPB{RWP: New(cfg)} }

// Name implements cache.Policy.
func (p *RWPB) Name() string { return "rwpb" }

// Victim implements cache.Policy: writeback misses bypass while the
// predictor sizes the dirty partition at zero.
func (p *RWPB) Victim(set int, ai cache.AccessInfo) (int, bool) {
	if ai.Class == cache.Writeback && p.TargetDirty() == 0 {
		p.observe(set, ai) // the sampler still sees the access
		p.bypasses++
		if p.probe != nil {
			p.probe.Policy(probe.PolicyEvent{Policy: "rwpb", Kind: "bypass", Value: int64(p.bypasses)})
		}
		return 0, true
	}
	return p.RWP.Victim(set, ai)
}

// Bypasses returns how many writebacks were routed around the cache.
func (p *RWPB) Bypasses() uint64 { return p.bypasses }

func init() {
	policy.Register("rwpb", func() cache.Policy { return NewBypass(DefaultConfig()) })
}
