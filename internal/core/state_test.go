package core

import (
	"reflect"
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

// stateReader is a minimal StateReader for driving the policy directly.
type stateReader struct {
	sets, ways int
	valid      []bool
	dirty      []bool
}

func (r *stateReader) NumSets() int { return r.sets }
func (r *stateReader) Ways() int    { return r.ways }
func (r *stateReader) State(set, way int) cache.LineState {
	i := set*r.ways + way
	return cache.LineState{Valid: r.valid[i], Dirty: r.dirty[i]}
}
func (r *stateReader) ValidWays(set int) int {
	n := 0
	for w := 0; w < r.ways; w++ {
		if r.valid[set*r.ways+w] {
			n++
		}
	}
	return n
}
func (r *stateReader) DirtyWays(set int) int {
	n := 0
	for w := 0; w < r.ways; w++ {
		if r.dirty[set*r.ways+w] {
			n++
		}
	}
	return n
}

func newStateReader(sets, ways int) *stateReader {
	return &stateReader{sets: sets, ways: ways, valid: make([]bool, sets*ways), dirty: make([]bool, sets*ways)}
}

// drive feeds n deterministic accesses through the policy, filling
// invalid ways as a real cache would.
func drive(p *RWP, r *stateReader, n int, seed uint64) {
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		set := int(x>>33) % r.sets //rwplint:allow ctrwidth — PRNG bits folded into a tiny set index; truncation is the point
		line := mem.LineAddr(x >> 8)
		class := cache.DemandLoad
		if x&3 == 0 {
			class = cache.DemandStore
		}
		ai := cache.AccessInfo{Line: line, Class: class}
		// Hit an arbitrary valid way half the time, else fill.
		if x&4 == 0 && r.valid[set*r.ways] {
			p.OnHit(set, 0, ai)
			continue
		}
		way, _ := p.Victim(set, ai)
		i0 := set*r.ways + way
		if r.valid[i0] {
			p.OnEvict(set, way, ai)
		}
		r.valid[i0] = true
		r.dirty[i0] = class.IsWrite()
		p.OnFill(set, way, ai)
	}
}

func exportCfg() Config {
	return Config{SamplerSets: 2, Interval: 64, DecayShift: 1, InitialDirtyTarget: -1}
}

func TestExportRestoreRoundTrip(t *testing.T) {
	r := newStateReader(8, 4)
	p := New(exportCfg())
	p.Attach(r)
	drive(p, r, 1000, 12345)

	st := p.ExportState()
	// Validate passes for a genuine export.
	if err := st.Validate(4, p.SamplerSetCount()); err != nil {
		t.Fatalf("Validate(export): %v", err)
	}

	// A fresh attached policy, restored, must export the identical state.
	q := New(exportCfg())
	q.Attach(newStateReader(8, 4))
	if err := q.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got := q.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatalf("restored export differs:\ngot  %+v\nwant %+v", got, st)
	}

	// And the export is a deep copy: mutating it must not touch p.
	before := p.TargetDirty()
	st.History = append(st.History, 99)
	st.CleanHist[0] += 100
	if p.TargetDirty() != before || uint64(len(p.History())) != p.Intervals() {
		t.Fatal("export aliases live state")
	}
}

func TestRestoredPolicyBehavesIdentically(t *testing.T) {
	// Two policies: one driven straight through, one exported/restored
	// midway. Identical tail behavior pins that State is complete.
	rA := newStateReader(8, 4)
	pA := New(exportCfg())
	pA.Attach(rA)
	drive(pA, rA, 700, 7)

	rB := newStateReader(8, 4)
	pB := New(exportCfg())
	pB.Attach(rB)
	drive(pB, rB, 700, 7)
	st := pB.ExportState()
	rC := newStateReader(8, 4)
	copy(rC.valid, rB.valid)
	copy(rC.dirty, rB.dirty)
	pC := New(exportCfg())
	pC.Attach(rC)
	// Rebuild recency + written bits the way the live cache does: replay
	// fills for resident lines (ascending is enough for this check since
	// both sides share it), then install the state.
	for s := 0; s < 8; s++ {
		for w := 0; w < 4; w++ {
			if rC.valid[s*4+w] {
				cl := cache.DemandLoad
				if rC.dirty[s*4+w] {
					cl = cache.DemandStore
				}
				pC.OnFill(s, w, cache.AccessInfo{Line: mem.LineAddr(s*4 + w), Class: cl})
			}
		}
	}
	if err := pC.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}

	drive(pA, rA, 700, 99)
	drive(pC, rC, 700, 99)
	if pA.TargetDirty() != pC.TargetDirty() || pA.Intervals() != pC.Intervals() {
		t.Fatalf("diverged: target %d/%d intervals %d/%d",
			pA.TargetDirty(), pC.TargetDirty(), pA.Intervals(), pC.Intervals())
	}
	ca, da := pA.Histograms()
	cc, dc := pC.Histograms()
	if !reflect.DeepEqual(ca, cc) || !reflect.DeepEqual(da, dc) {
		t.Fatal("histograms diverged after restore")
	}
	upA, downA, sameA := pA.RetargetDirs()
	upC, downC, sameC := pC.RetargetDirs()
	if upA != upC || downA != downC || sameA != sameC {
		t.Fatal("retarget direction counters diverged after restore")
	}
}

func TestRestoreStateRejects(t *testing.T) {
	r := newStateReader(8, 4)
	p := New(exportCfg())
	p.Attach(r)
	drive(p, r, 500, 3)
	good := p.ExportState()

	fresh := func() *RWP {
		q := New(exportCfg())
		q.Attach(newStateReader(8, 4))
		return q
	}
	cases := []struct {
		name string
		mut  func(st *State)
	}{
		{"target too big", func(st *State) { st.TargetDirty = 5 }},
		{"target negative", func(st *State) { st.TargetDirty = -1 }},
		{"short clean hist", func(st *State) { st.CleanHist = st.CleanHist[:3] }},
		{"long dirty hist", func(st *State) { st.DirtyHist = append(st.DirtyHist, 0) }},
		{"direction sum broken", func(st *State) { st.RetargetUp++ }},
		{"history length mismatch", func(st *State) { st.History = append(st.History, 1) }},
		{"history out of range", func(st *State) {
			st.History = append(st.History[:0:0], st.History...)
			if len(st.History) > 0 {
				st.History[0] = 9
			} else {
				st.History = nil
			}
		}},
		{"sampler count mismatch", func(st *State) { st.Samplers = st.Samplers[:1] }},
		{"sampler stack overflow", func(st *State) {
			ss := make([]SamplerEntry, 5)
			st.Samplers = append([]SamplerState(nil), st.Samplers...)
			st.Samplers[0].Clean = ss
		}},
	}
	for _, tc := range cases {
		st := good
		// Deep-enough copies so mutations don't leak between cases.
		st.History = append([]int(nil), good.History...)
		st.CleanHist = append([]uint64(nil), good.CleanHist...)
		st.DirtyHist = append([]uint64(nil), good.DirtyHist...)
		st.Samplers = append([]SamplerState(nil), good.Samplers...)
		tc.mut(&st)
		if tc.name == "history out of range" && len(st.History) == 0 {
			continue // no intervals elapsed; nothing to corrupt
		}
		q := fresh()
		if err := q.RestoreState(st); err == nil {
			t.Errorf("%s: RestoreState accepted a corrupt state", tc.name)
		}
		// Rejection must leave the policy untouched.
		if got := q.ExportState(); !reflect.DeepEqual(got, fresh().ExportState()) {
			t.Errorf("%s: rejected restore mutated the policy", tc.name)
		}
	}

	var unattached RWP
	if err := unattached.RestoreState(good); err == nil {
		t.Error("RestoreState before Attach accepted")
	}
}
