package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadDirExportTestHelpers regression-tests the test-variant import
// rule: internal/live's external test package calls a helper defined in
// an in-package export_test.go file, and internal/live/loadgen (also
// imported by those tests) must resolve to the same type-identical
// package. A loader that type-checks external tests against the
// base-only variant fails this load.
func TestLoadDirExportTestHelpers(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.Root, "internal", "live")
	pkgs, err := loader.LoadDirs([]string{dir})
	if err != nil {
		t.Fatalf("loading internal/live: %v", err)
	}
	var sawBase, sawExt bool
	for _, p := range pkgs {
		switch p.Path {
		case "rwp/internal/live":
			sawBase = true
		case "rwp/internal/live_test":
			sawExt = true
		}
	}
	if !sawBase || !sawExt {
		t.Fatalf("expected base and external test packages, got %d packages", len(pkgs))
	}
}

// TestLoadDirsKeepsBaseVariantForOthers: after loading a package with
// external tests, unrelated loads must still see the base-only variant
// (the transient override must not leak).
func TestLoadDirsKeepsBaseVariantForOthers(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	live := filepath.Join(loader.Root, "internal", "live")
	if _, err := loader.LoadDirs([]string{live}); err != nil {
		t.Fatal(err)
	}
	if len(loader.override) != 0 {
		t.Fatalf("override leaked: %d entries", len(loader.override))
	}
	serve := filepath.Join(loader.Root, "cmd", "rwpserve")
	if _, err := loader.LoadDirs([]string{serve}); err != nil {
		t.Fatalf("loading cmd/rwpserve after internal/live: %v", err)
	}
}
