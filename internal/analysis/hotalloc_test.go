package analysis

import "testing"

func TestHotAllocOnlyMarkedFunctions(t *testing.T) {
	// The same allocating body: flagged under the directive, ignored
	// without it.
	src := `package fix

// hot is on the serving fast path.
//
//rwplint:hotpath — fixture
func hot(n int) []byte {
	return make([]byte, n)
}

func cold(n int) []byte {
	return make([]byte, n)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	wantFindings(t, findings, "hotalloc", 7)
}

func TestHotAllocAppendIdioms(t *testing.T) {
	src := `package fix

//rwplint:hotpath
func copyOut(dst, src []byte) []byte {
	return append([]byte(nil), src...)
}

//rwplint:hotpath
func reuse(buf, src []byte) []byte {
	buf = append(buf[:0], src...)
	return buf
}

//rwplint:hotpath
func amortized(buf, src []byte) []byte {
	buf = append(buf, src...)
	return buf
}

//rwplint:hotpath
func freshBase(buf, src []byte) []byte {
	out := append(buf, src...)
	return out
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	wantFindings(t, findings, "hotalloc", 5, 22)
}

func TestHotAllocConversions(t *testing.T) {
	src := `package fix

//rwplint:hotpath
func toString(b []byte) string {
	return string(b)
}

//rwplint:hotpath
func toBytes(s string) []byte {
	return []byte(s)
}

//rwplint:hotpath
func widen(n int32) int64 {
	return int64(n)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	wantFindings(t, findings, "hotalloc", 5, 10)
}

func TestHotAllocFmtAndClosure(t *testing.T) {
	src := `package fix

import "fmt"

//rwplint:hotpath
func report(n int) string {
	f := func() int { return n * 2 }
	return fmt.Sprintf("n=%d", f())
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	// Line 7: the closure. Line 8: fmt.Sprintf (the boxing of its
	// operands is subsumed by the fmt finding).
	wantFindings(t, findings, "hotalloc", 7, 8)
}

func TestHotAllocInterfaceBoxing(t *testing.T) {
	src := `package fix

type sink interface {
	accept(v any)
}

type counter struct{ n int }

//rwplint:hotpath
func feed(s sink, c *counter, n int) {
	s.accept(n)
	s.accept(c)
	var v any = n
	_ = v
}

//rwplint:hotpath
func crash(n int) {
	if n < 0 {
		panic(n)
	}
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	// s.accept(n) boxes the int (line 11); s.accept(c) passes a
	// pointer, which fits the interface word (line 12, clean); panic's
	// operand is the crash path (clean). The var-assignment boxing on
	// line 13 is an implicit conversion the walker does not model —
	// the rule targets calls, where hot-path boxing actually happens.
	wantFindings(t, findings, "hotalloc", 11)
}

func TestHotAllocFloatingDirective(t *testing.T) {
	src := `package fix

func plain(n int) int {
	//rwplint:hotpath
	return n * 2
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	wantFindings(t, findings, "hotalloc", 4)
}

func TestHotAllocSuppression(t *testing.T) {
	src := `package fix

// copyOut's single allocation is the API contract.
//
//rwplint:hotpath
func copyOut(src []byte) []byte {
	//rwplint:allow hotalloc — copy-out is the Get contract; pinned by AllocsPerRun
	return append([]byte(nil), src...)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, HotAlloc)
	if len(Unsuppressed(findings)) != 0 {
		t.Fatalf("suppression did not apply: %v", findings)
	}
	if len(findings) != 1 || !findings[0].Suppressed {
		t.Fatalf("suppressed finding should be retained: %v", findings)
	}
}
