package analysis

import "testing"

func TestFloatEqFlagsEqualityOnFloats(t *testing.T) {
	src := `package fix

type ipc float64

func f(a, b float64, c, d ipc) bool {
	if a == b {
		return true
	}
	return c != d
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, FloatEq)
	wantFindings(t, findings, "floateq", 6, 9)
}

func TestFloatEqCleanOnIntsAndTolerance(t *testing.T) {
	src := `package fix

import "math"

func f(a, b float64, i, j int) bool {
	if i == j {
		return false
	}
	return math.Abs(a-b) <= 1e-9
}

const exact = 0.5 == 0.25*2
`
	findings := checkSrc(t, "rwp/internal/fix", src, FloatEq)
	wantFindings(t, findings, "floateq")
}
