package analysis

import (
	"go/ast"
	"go/token"
)

// LockPair checks that every sync.Mutex/RWMutex Lock()/RLock() in a
// function is released before the function can exit: either a `defer
// Unlock()`/`defer RUnlock()` on the same receiver, or an explicit
// unlock on every return path. A lock that leaks past one early return
// wedges its shard forever — the kind of bug that survives light
// testing because the leaking path is the rare one (an error return, a
// validation reject).
//
// The walk is path-sensitive within one function: branches are
// explored separately, early returns are checked where they occur, and
// a lock acquired inside a loop body must be released by the end of
// that body (the next iteration's Lock would self-deadlock). RLock is
// matched only by RUnlock and Lock only by Unlock. A deferred function
// literal releases the locks it unlocks. Paths ending in panic() are
// not checked — only a deferred unlock can release across a panic, and
// in this codebase panics are crash-stops, not control flow.
//
// Like lockheld, the analysis is per-function: helpers that lock in
// one function and unlock in another are not modeled (and are exactly
// the style these rules exist to discourage).
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "every Lock/RLock must have a defer Unlock/RUnlock or an explicit unlock on all exit paths",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body != nil {
					w := &pairWalker{pass: pass, reported: map[token.Pos]bool{}}
					held, terminated := w.stmts(body.List, nil)
					if !terminated {
						w.checkExit(held, body.Rbrace)
					}
				}
				return true // nested FuncLits get their own walk
			})
		}
	},
}

// lockEntry is one acquisition that has not yet been released.
type lockEntry struct {
	expr     string    // receiver expression, e.g. "sh.mu"
	op       string    // acquiring method: Lock or RLock
	unlockOp string    // releasing method: Unlock or RUnlock
	pos      token.Pos // position of the acquiring call
}

type pairWalker struct {
	pass *Pass
	// reported dedupes findings per acquisition site: a lock leaking
	// past three returns is one bug, not three.
	reported map[token.Pos]bool
}

// stmts walks a statement list. It returns the outstanding locks at
// fall-through and whether every path through the list transfers
// control away (so there is no fall-through).
func (w *pairWalker) stmts(list []ast.Stmt, held []lockEntry) ([]lockEntry, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = w.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *pairWalker) stmt(s ast.Stmt, held []lockEntry) ([]lockEntry, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if expr, op, isMu := mutexOp(w.pass, call); isMu {
				switch op {
				case "Lock":
					return append(cloneEntries(held), lockEntry{expr, op, "Unlock", call.Pos()}), false
				case "RLock":
					return append(cloneEntries(held), lockEntry{expr, op, "RUnlock", call.Pos()}), false
				default:
					return releaseEntry(held, expr, op), false
				}
			}
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return held, true // crash-stop: only defers run; not checked
			}
		}
		return held, false
	case *ast.DeferStmt:
		return w.applyDefer(s, held), false
	case *ast.ReturnStmt:
		w.checkExit(held, s.Pos())
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; the
		// conservative choice is to stop tracking this path rather
		// than misattribute its state to the fall-through.
		return held, true
	case *ast.GoStmt:
		return held, false // the goroutine's unlocks are its own
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		var fallthroughs [][]lockEntry
		if out, term := w.stmts(s.Body.List, cloneEntries(held)); !term {
			fallthroughs = append(fallthroughs, out)
		}
		if s.Else != nil {
			if out, term := w.stmt(s.Else, cloneEntries(held)); !term {
				fallthroughs = append(fallthroughs, out)
			}
		} else {
			fallthroughs = append(fallthroughs, held)
		}
		if len(fallthroughs) == 0 {
			return held, true
		}
		return unionEntries(fallthroughs), false
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.loopBody(s.Body, held)
		return held, false
	case *ast.RangeStmt:
		w.loopBody(s.Body, held)
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		return w.caseBodies(held, switchClauses(s.Body), switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		return w.caseBodies(held, switchClauses(s.Body), switchHasDefault(s.Body))
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
		// A select always executes exactly one clause: no implicit
		// fall-through with the incoming state unless there are no
		// clauses at all.
		return w.caseBodies(held, bodies, len(bodies) > 0)
	default:
		return held, false
	}
}

// loopBody walks a loop body in isolation: a lock acquired inside and
// still outstanding at the body's end would self-deadlock on the next
// iteration, so it is reported there. Locks from outside the loop are
// assumed unchanged across it (unlocking a caller-scope lock inside a
// loop body is not a pattern this rule models).
func (w *pairWalker) loopBody(body *ast.BlockStmt, held []lockEntry) {
	out, terminated := w.stmts(body.List, cloneEntries(held))
	if terminated {
		return
	}
	for _, e := range out {
		if !containsEntry(held, e) && !w.reported[e.pos] {
			w.reported[e.pos] = true
			w.pass.Reportf(e.pos, "%s.%s() inside a loop body is not released by the end of the iteration; the next %s would deadlock", e.expr, e.op, e.op)
		}
	}
}

// caseBodies walks each clause body from the incoming state and merges
// the fall-through states. exhaustive marks constructs where exactly
// one clause always runs (switch with default, any select).
func (w *pairWalker) caseBodies(held []lockEntry, bodies [][]ast.Stmt, exhaustive bool) ([]lockEntry, bool) {
	var fallthroughs [][]lockEntry
	for _, body := range bodies {
		if out, term := w.stmts(body, cloneEntries(held)); !term {
			fallthroughs = append(fallthroughs, out)
		}
	}
	if !exhaustive {
		fallthroughs = append(fallthroughs, held)
	}
	if len(fallthroughs) == 0 {
		return held, true
	}
	return unionEntries(fallthroughs), false
}

// applyDefer releases the locks unlocked by a deferred call: either a
// direct `defer mu.Unlock()` or unlock statements inside a deferred
// function literal.
func (w *pairWalker) applyDefer(s *ast.DeferStmt, held []lockEntry) []lockEntry {
	if expr, op, isMu := mutexOp(w.pass, s.Call); isMu {
		if op == "Unlock" || op == "RUnlock" {
			return releaseEntry(held, expr, op)
		}
		return held
	}
	lit, isLit := s.Call.Fun.(*ast.FuncLit)
	if !isLit {
		return held
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, isInner := n.(*ast.FuncLit); isInner {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall {
			if expr, op, isMu := mutexOp(w.pass, call); isMu && (op == "Unlock" || op == "RUnlock") {
				held = releaseEntry(held, expr, op)
			}
		}
		return true
	})
	return held
}

// checkExit reports every lock still outstanding at an exit point.
func (w *pairWalker) checkExit(held []lockEntry, at token.Pos) {
	exit := w.pass.Fset.Position(at)
	for _, e := range held {
		if w.reported[e.pos] {
			continue
		}
		w.reported[e.pos] = true
		w.pass.Reportf(e.pos, "%s.%s() is not released on the exit path at line %d; add defer %s.%s() or unlock before returning", e.expr, e.op, exit.Line, e.expr, e.unlockOp)
	}
}

// releaseEntry removes the most recent entry matching the receiver
// expression and releasing method.
func releaseEntry(held []lockEntry, expr, unlockOp string) []lockEntry {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].expr == expr && held[i].unlockOp == unlockOp {
			out := make([]lockEntry, 0, len(held)-1)
			out = append(out, held[:i]...)
			return append(out, held[i+1:]...)
		}
	}
	return held
}

func containsEntry(held []lockEntry, e lockEntry) bool {
	for _, h := range held {
		if h.pos == e.pos {
			return true
		}
	}
	return false
}

func cloneEntries(held []lockEntry) []lockEntry {
	return append([]lockEntry(nil), held...)
}

// unionEntries merges branch fall-through states: an acquisition
// outstanding on any incoming path is outstanding after the merge.
func unionEntries(states [][]lockEntry) []lockEntry {
	var out []lockEntry
	for _, st := range states {
		for _, e := range st {
			if !containsEntry(out, e) {
				out = append(out, e)
			}
		}
	}
	return out
}

// switchClauses extracts the case bodies of a switch body.
func switchClauses(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

// switchHasDefault reports whether a switch body has a default clause.
func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if c.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}
