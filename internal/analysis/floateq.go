package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. IPC,
// miss-rate, and speedup comparisons accumulate rounding error; exact
// equality silently flips with evaluation order and compiler version.
// Compare with a tolerance instead (internal/stats keeps the metric
// helpers). Comparisons where both sides are compile-time constants are
// exact by the spec and not flagged.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point operands; compare with a tolerance",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				tx, okx := pass.Info.Types[b.X]
				ty, oky := pass.Info.Types[b.Y]
				if !okx || !oky {
					return true
				}
				if !isFloat(tx.Type) && !isFloat(ty.Type) {
					return true
				}
				if tx.Value != nil && ty.Value != nil {
					return true // constant-folded: exact by definition
				}
				pass.Reportf(b.OpPos, "floating-point %s comparison; use a tolerance (e.g. math.Abs(a-b) <= eps)", b.Op)
				return true
			})
		}
	},
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
