package analysis

import "testing"

func TestNoWallClockFlagsTimeReads(t *testing.T) {
	src := `package fix

import "time"

func f() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoWallClock)
	wantFindings(t, findings, "nowallclock", 6, 7, 8)
}

func TestNoWallClockAllowsDurationsAndCmd(t *testing.T) {
	// time.Duration values and constants are pure data — only clock
	// reads are banned.
	src := `package fix

import "time"

const tick = 10 * time.Millisecond

func f(d time.Duration) float64 { return d.Seconds() }
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoWallClock)
	wantFindings(t, findings, "nowallclock")

	cmdSrc := `package main

import "time"

func main() { _ = time.Now() }
`
	findings = checkSrc(t, "rwp/cmd/demo", cmdSrc, NoWallClock)
	wantFindings(t, findings, "nowallclock")
}
