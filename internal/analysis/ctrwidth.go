package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctrWidthPkgs are the internal packages whose uint64 access/hit/miss
// counters the rule protects. Long runs overflow 32-bit counters
// (2M accesses × many experiments); a narrowing conversion reintroduces
// silent truncation exactly where the statistics are computed.
var ctrWidthPkgs = map[string]bool{
	"stats": true,
	"cache": true,
	"core":  true,
}

// CtrWidth flags narrowing conversions of uint64 values to int-family
// types narrower than 64 bits in internal/stats, internal/cache, and
// internal/core. Where a conversion is provably bounded (e.g. a masked
// set index), suppress it with //rwplint:allow ctrwidth and say why.
var CtrWidth = &Analyzer{
	Name: "ctrwidth",
	Doc:  "flag narrowing uint64→int/int32/uint32 conversions in internal/{stats,cache,core}",
	Run: func(pass *Pass) {
		// Scoped by the first segment under internal/ (covers
		// subpackages of the protected three) and by the last segment
		// (covers testdata fixtures named after them).
		sub := internalPkg(pass.Path)
		if sub == "" {
			return
		}
		segs := strings.Split(sub, "/")
		root := strings.TrimSuffix(segs[0], "_test")
		leaf := strings.TrimSuffix(segs[len(segs)-1], "_test")
		if !ctrWidthPkgs[root] && !ctrWidthPkgs[leaf] {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				dst, ok := tv.Type.Underlying().(*types.Basic)
				if !ok || !narrowIntKind(dst.Kind()) {
					return true
				}
				argT, ok := pass.Info.Types[call.Args[0]]
				if !ok || argT.Type == nil {
					return true
				}
				src, ok := argT.Type.Underlying().(*types.Basic)
				if !ok || src.Kind() != types.Uint64 {
					return true
				}
				pass.Reportf(call.Pos(), "narrowing conversion %s(uint64) may truncate a 64-bit counter; keep uint64 or justify with //rwplint:allow", dst.Name())
				return true
			})
		}
	},
}

// narrowIntKind reports integer kinds narrower than 64 bits (int is
// included: it is 32-bit on 32-bit platforms).
func narrowIntKind(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32,
		types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}
