package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc lints functions marked hot. The directive
//
//	//rwplint:hotpath — <optional note>
//
// in a function's doc comment declares that the function is on a
// serving fast path (the live Get-hit path, the proto frame reader)
// where per-call heap allocations are a throughput bug, not a style
// choice. Inside a hotpath function the following constructs are
// findings:
//
//   - make / new;
//   - append, unless it follows a reuse idiom: appending to x[:0] or
//     assigning back to the same expression that was appended to
//     (amortized growth of a caller-owned buffer);
//   - string ↔ []byte conversions (each copies);
//   - any fmt.* call (fmt allocates for formatting state and boxing);
//   - function literals (closures capture their environment on the
//     heap once the compiler cannot prove otherwise);
//   - passing a concrete non-pointer value where an interface or `any`
//     parameter is expected, and conversions to interface types —
//     boxing allocates. panic() is exempt: it is the crash path.
//
// Intentional allocations are suppressed like any other finding, with
// a written reason — the point is that every allocation on a hot path
// is a decision someone wrote down, pinned by the AllocsPerRun tests
// next to the code. A hotpath directive anywhere other than a
// function's doc comment is itself reported: a floating directive
// guards nothing.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs inside //rwplint:hotpath functions",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			hot := hotpathComments(f)
			for _, decl := range f.Decls {
				fn, isFn := decl.(*ast.FuncDecl)
				if !isFn || fn.Doc == nil || fn.Body == nil {
					continue
				}
				marked := false
				for _, c := range fn.Doc.List {
					if hot[c] {
						delete(hot, c)
						marked = true
					}
				}
				if marked {
					w := &allocWalker{pass: pass, fn: fn.Name.Name}
					w.walk(fn.Body)
				}
			}
			// Any hotpath comment not consumed above is floating: not a
			// doc comment of any function declaration.
			for c := range hot {
				pass.Reportf(c.Pos(), "//rwplint:hotpath must be in a function's doc comment; here it marks nothing")
			}
		}
	},
}

// hotpathComments collects the comments in f that are hotpath
// directives.
func hotpathComments(f *ast.File) map[*ast.Comment]bool {
	out := map[*ast.Comment]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if hotpathRE.MatchString(text) {
				out[c] = true
			}
		}
	}
	return out
}

// allocWalker flags allocating constructs in one hotpath function.
type allocWalker struct {
	pass *Pass
	fn   string
	// reuse marks append calls whose result is assigned back to their
	// own base — the amortized caller-owned-buffer idiom, not flagged.
	reuse map[*ast.CallExpr]bool
}

func (w *allocWalker) walk(body *ast.BlockStmt) {
	w.reuse = map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if call, isCall := rhs.(*ast.CallExpr); isCall && isAppend(w.pass, call) && w.appendReusesBase(call, assign.Lhs[i]) {
				w.reuse[call] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.pass.Reportf(n.Pos(), "closure in hotpath %s: captured variables escape to the heap", w.fn)
			return false // the literal is the finding; don't double-report its body
		case *ast.CallExpr:
			w.checkCall(n)
		}
		return true
	})
}

func (w *allocWalker) checkCall(call *ast.CallExpr) {
	if w.reuse[call] {
		return
	}
	// Conversions: T(x) where T is a type.
	if tv, isTyped := w.pass.Info.Types[call.Fun]; isTyped && tv.IsType() && len(call.Args) == 1 {
		w.checkConversion(call, tv.Type)
		return
	}
	if id, isIdent := unparenIdent(call.Fun); isIdent {
		if b, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make in hotpath %s allocates per call; reuse a caller-owned buffer", w.fn)
			case "new":
				w.pass.Reportf(call.Pos(), "new in hotpath %s allocates per call", w.fn)
			case "append":
				if !w.appendBaseIsReset(call) {
					w.pass.Reportf(call.Pos(), "append in hotpath %s may grow a fresh backing array; append to x[:0] or assign back to the base", w.fn)
				}
			case "panic":
				return // crash path: boxing the argument is irrelevant
			}
			return
		}
	}
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		if fn, isFn := w.pass.Info.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			w.pass.Reportf(call.Pos(), "fmt.%s in hotpath %s allocates (formatting state and boxed operands)", fn.Name(), w.fn)
			return
		}
	}
	w.checkBoxing(call)
}

// checkConversion flags string↔[]byte conversions and conversions to
// interface types.
func (w *allocWalker) checkConversion(call *ast.CallExpr, target types.Type) {
	argT := w.pass.Info.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	if isString(target) && isByteSlice(argT) {
		w.pass.Reportf(call.Pos(), "[]byte→string conversion in hotpath %s copies the bytes", w.fn)
		return
	}
	if isByteSlice(target) && isString(argT) {
		w.pass.Reportf(call.Pos(), "string→[]byte conversion in hotpath %s copies the bytes", w.fn)
		return
	}
	if types.IsInterface(target.Underlying()) && !types.IsInterface(argT.Underlying()) {
		w.pass.Reportf(call.Pos(), "conversion to interface in hotpath %s boxes the value", w.fn)
	}
}

// checkBoxing flags concrete non-pointer arguments passed to interface
// parameters — each such call boxes the value on the heap.
func (w *allocWalker) checkBoxing(call *ast.CallExpr) {
	tv, isTyped := w.pass.Info.Types[call.Fun]
	if !isTyped || tv.Type == nil {
		return
	}
	sig, isSig := tv.Type.Underlying().(*types.Signature)
	if !isSig || sig.TypeParams().Len() > 0 {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := w.pass.Info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit the interface word without copying
		}
		if bt, isBasic := at.Underlying().(*types.Basic); isBasic && bt.Kind() == types.UntypedNil {
			continue
		}
		w.pass.Reportf(arg.Pos(), "passing %s to an interface parameter in hotpath %s boxes the value", at.String(), w.fn)
	}
}

// appendBaseIsReset reports whether an append call's base is the
// x[:0]-style reset of an existing buffer.
func (w *allocWalker) appendBaseIsReset(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, isSlice := call.Args[0].(*ast.SliceExpr)
	if !isSlice || sl.High == nil {
		return false
	}
	lit, isLit := sl.High.(*ast.BasicLit)
	return isLit && lit.Value == "0" && sl.Low == nil
}

// appendReusesBase reports whether `lhs = append(base, ...)` writes the
// result back to its own base (amortized caller-owned growth).
func (w *allocWalker) appendReusesBase(call *ast.CallExpr, lhs ast.Expr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if w.appendBaseIsReset(call) {
		return true
	}
	return types.ExprString(call.Args[0]) == types.ExprString(lhs)
}

// isAppend reports whether call is the append builtin.
func isAppend(pass *Pass, call *ast.CallExpr) bool {
	id, isIdent := unparenIdent(call.Fun)
	if !isIdent {
		return false
	}
	b, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && b.Name() == "append"
}

func unparenIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		p, isParen := e.(*ast.ParenExpr)
		if !isParen {
			break
		}
		e = p.X
	}
	id, isIdent := e.(*ast.Ident)
	return id, isIdent
}

func isString(t types.Type) bool {
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, isSlice := t.Underlying().(*types.Slice)
	if !isSlice {
		return false
	}
	b, isBasic := s.Elem().Underlying().(*types.Basic)
	return isBasic && b.Kind() == types.Uint8
}
