package analysis

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRwplintCLIOnViolatingPackage builds cmd/rwplint and points it at
// the deliberately broken fixture package under testdata/. The CLI must
// exit non-zero and print one `file:line rule: message` finding per
// violated rule.
func TestRwplintCLIOnViolatingPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess")
	}
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "rwplint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rwplint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rwplint: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "./internal/analysis/testdata/stats")
	cmd.Dir = root
	out, err := cmd.Output()
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("rwplint on violating package: err = %v, want non-zero exit; output:\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, exitErr.Stderr)
	}

	lineRE := regexp.MustCompile(`^internal/analysis/testdata/stats/bad\.go:\d+ [a-z]+: .+$`)
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("malformed finding line %q, want file:line rule: message", line)
			continue
		}
		rule := strings.SplitN(strings.Fields(line)[1], ":", 2)[0]
		seen[rule] = true
	}
	for _, rule := range []string{"norand", "nowallclock", "maporder", "floateq", "ctrwidth"} {
		if !seen[rule] {
			t.Errorf("fixture violation for rule %s not reported; output:\n%s", rule, out)
		}
	}

	// The same binary over the real module must be clean.
	clean := exec.Command(bin, "./...")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Errorf("rwplint over the module should be clean: %v\n%s", err, out)
	}
}
