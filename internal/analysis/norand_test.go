package analysis

import "testing"

func TestNoRandFlagsBannedImports(t *testing.T) {
	src := `package fix

import (
	"crypto/rand"
	mrand "math/rand"
)

var _ = mrand.Int
var _ = rand.Reader
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	wantFindings(t, findings, "norand", 4, 5)
}

func TestNoRandCleanOutsideInternal(t *testing.T) {
	// cmd/ may use the stdlib generators (e.g. for shuffling CLI demo
	// input); only internal/ is scoped.
	src := `package main

import "math/rand"

func main() { _ = rand.Int() }
`
	findings := checkSrc(t, "rwp/cmd/demo", src, NoRand)
	wantFindings(t, findings, "norand")
}

func TestNoRandCleanOnXrandUse(t *testing.T) {
	src := `package fix

import "sort"

func sorted(xs []string) { sort.Strings(xs) }
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	wantFindings(t, findings, "norand")
}
