package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one in-memory source file as package path and
// runs the given analyzers over it, returning all findings (suppressed
// included). Fixtures may import the standard library only.
func checkSrc(t *testing.T, path, src string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var errs []error
	conf := types.Config{
		Importer: newStdImporter(fset),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, []*ast.File{file}, info)
	if len(errs) > 0 {
		t.Fatalf("type-checking fixture: %v", errs[0])
	}
	pkg := &Package{Path: path, Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
	return Run(analyzers, []*Package{pkg})
}

// wantFindings asserts the unsuppressed findings hit exactly the given
// rule at the given lines (order-insensitive on equal lines).
func wantFindings(t *testing.T, findings []Finding, rule string, lines ...int) {
	t.Helper()
	un := Unsuppressed(findings)
	if len(un) != len(lines) {
		t.Fatalf("got %d unsuppressed findings, want %d: %v", len(un), len(lines), un)
	}
	for i, f := range un {
		if f.Rule != rule || f.Pos.Line != lines[i] {
			t.Errorf("finding %d = %s:%d %s, want line %d rule %s", i, f.Pos.Filename, f.Pos.Line, f.Rule, lines[i], rule)
		}
	}
}

func TestSuppressionSameLine(t *testing.T) {
	src := `package fix

import "math/rand" //rwplint:allow norand — fixture exercising same-line suppression

var _ = rand.Int
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	if len(Unsuppressed(findings)) != 0 {
		t.Fatalf("same-line directive did not suppress: %v", findings)
	}
	if len(findings) != 1 || !findings[0].Suppressed {
		t.Fatalf("suppressed finding should be retained: %v", findings)
	}
}

func TestSuppressionPrecedingLine(t *testing.T) {
	src := `package fix

//rwplint:allow norand — fixture exercising preceding-line suppression
import "math/rand"

var _ = rand.Int
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	if len(Unsuppressed(findings)) != 0 {
		t.Fatalf("preceding-line directive did not suppress: %v", findings)
	}
}

func TestSuppressionWrongRuleDoesNotApply(t *testing.T) {
	src := `package fix

import "math/rand" //rwplint:allow floateq — wrong rule on purpose

var _ = rand.Int
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	wantFindings(t, findings, "norand", 3)
}

func TestSuppressionAdjacentRules(t *testing.T) {
	// One line trips two rules; the preceding-line directive suppresses
	// one, the same-line directive the other. Adjacent directives must
	// not shadow or consume each other.
	src := `package fix

import "time"

//rwplint:allow nowallclock — fixture: first of two rules on the next line
var _ = float64(time.Now().Unix()) == 0.5 //rwplint:allow floateq — fixture: second rule, same line
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoWallClock, FloatEq)
	if un := Unsuppressed(findings); len(un) != 0 {
		t.Fatalf("adjacent directives did not both apply: %v", un)
	}
	byRule := map[string]bool{}
	for _, f := range findings {
		if f.Suppressed {
			byRule[f.Rule] = true
		}
	}
	if !byRule["nowallclock"] || !byRule["floateq"] {
		t.Fatalf("want both rules suppressed (retained), got %v", findings)
	}
}

func TestSuppressionMultiLineStatement(t *testing.T) {
	// A directive above a statement that spans several lines covers the
	// finding, which is reported at the statement's first line.
	src := `package fix

import "time"

//rwplint:allow nowallclock — fixture: statement below spans three lines
var _ = time.Now().
	Add(time.Second).
	Unix()
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoWallClock)
	if un := Unsuppressed(findings); len(un) != 0 {
		t.Fatalf("directive above a multi-line statement did not suppress: %v", un)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings at all; it should violate norand")
	}
}

func TestSuppressionUnknownRuleReported(t *testing.T) {
	// A directive naming a rule no analyzer owns suppresses nothing —
	// and must say so, not vanish: a typo in a rule name that silently
	// disabled a suppression would be invisible until the finding it
	// was meant to cover resurfaced.
	src := `package fix

//rwplint:allow nosuchrule — fixture: rule name matches no analyzer
var X = 1
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	un := Unsuppressed(findings)
	if len(un) != 1 || un[0].Rule != "directive" {
		t.Fatalf("unknown-rule directive should yield one directive finding, got %v", un)
	}
	if !strings.Contains(un[0].Message, "nosuchrule") || !strings.Contains(un[0].Message, "unknown rule") {
		t.Fatalf("directive finding should name the unknown rule: %v", un[0])
	}
}

func TestSuppressionKnowsDefaultSuite(t *testing.T) {
	// The unknown-rule check must recognize every Default-suite rule
	// even when only a subset of analyzers is running — a lockpair
	// suppression is not a typo just because this pass runs norand.
	src := `package fix

//rwplint:allow lockpair — fixture: valid rule, not in the running subset
var X = 1
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	if len(Unsuppressed(findings)) != 0 {
		t.Fatalf("suite-rule directive flagged as unknown: %v", findings)
	}
}

func TestHotpathDirectiveNotMalformed(t *testing.T) {
	// The function-scoped hotpath directive must parse cleanly as a
	// directive (placement checks belong to hotalloc, which is not
	// running here).
	src := `package fix

//rwplint:hotpath — fast path
func F(n int) int { return n * 2 }
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	if len(findings) != 0 {
		t.Fatalf("hotpath directive misparsed: %v", findings)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	src := `package fix

//rwplint:allow norand
import "math/rand"

var _ = rand.Int
`
	findings := checkSrc(t, "rwp/internal/fix", src, NoRand)
	un := Unsuppressed(findings)
	if len(un) != 2 {
		t.Fatalf("want norand + directive findings, got %v", un)
	}
	var rules []string
	for _, f := range un {
		rules = append(rules, f.Rule)
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, "directive") || !strings.Contains(joined, "norand") {
		t.Fatalf("reason-less directive must not suppress and must be reported: %v", un)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:     token.Position{Filename: "internal/x/x.go", Line: 7},
		Rule:    "norand",
		Message: "boom",
	}
	if got, want := f.String(), "internal/x/x.go:7 norand: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestPathScopeHelpers(t *testing.T) {
	cases := []struct {
		path  string
		under bool
		sub   string
	}{
		{"rwp/internal/cache", true, "cache"},
		{"rwp/internal/analysis/testdata/badpkg", true, "analysis/testdata/badpkg"},
		{"rwp/cmd/rwpexp", false, ""},
		{"rwp", false, ""},
		{"internal/x", true, "x"},
	}
	for _, c := range cases {
		if underInternal(c.path) != c.under {
			t.Errorf("underInternal(%q) = %v, want %v", c.path, !c.under, c.under)
		}
		if got := internalPkg(c.path); got != c.sub {
			t.Errorf("internalPkg(%q) = %q, want %q", c.path, got, c.sub)
		}
	}
}
