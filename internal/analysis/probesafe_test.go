package analysis

import "testing"

// probeFixture declares a local Probe interface mirroring
// rwp/internal/probe's shape, so fixtures type-check without imports.
const probeFixture = `package fix

type Probe interface {
	Event(x int)
	Window() uint64
}

type AccessEvent struct{ Hit bool }

type Recorder struct{ n int }

func (r *Recorder) Event(x int)   { r.n += x }
func (r *Recorder) Window() uint64 { return 0 }

type cache struct {
	probe Probe
	hits  int
}
`

func TestProbesafeGuardedCalls(t *testing.T) {
	src := probeFixture + `
func (c *cache) access() {
	if c.probe != nil {
		c.probe.Event(1)
	}
}

func run(p Probe, n int) {
	if p != nil && n > 0 {
		p.Event(n)
	}
	if p != nil {
		for i := 0; i < n; i++ {
			p.Event(i)
		}
	}
	if (p != nil) && (n > 0 || n < -1) {
		_ = p.Window()
	}
}
`
	wantFindings(t, checkSrc(t, "rwp/internal/fix", src, Probesafe), "probesafe")
}

func TestProbesafeUnguardedCalls(t *testing.T) {
	src := probeFixture + `
func (c *cache) bad() {
	c.probe.Event(1)
}

func alsoBad(p Probe, c *cache) {
	if c.probe != nil {
		p.Event(2)
	}
	if p == nil {
		return
	}
	p.Event(3)
}

func orIsNotProof(p Probe, n int) {
	if p != nil || n > 0 {
		p.Event(4)
	}
}
`
	wantFindings(t, checkSrc(t, "rwp/internal/fix", src, Probesafe),
		"probesafe", 21, 26, 31, 36)
}

func TestProbesafeConcreteRecorderExempt(t *testing.T) {
	// Calls on the concrete *Recorder are not interface dispatch and
	// cannot hit a nil probe: they must not be flagged.
	src := probeFixture + `
func aggregate(r *Recorder) {
	r.Event(1)
	_ = r.Window()
}
`
	wantFindings(t, checkSrc(t, "rwp/internal/fix", src, Probesafe), "probesafe")
}

func TestProbesafeScope(t *testing.T) {
	src := probeFixture + `
func bad(p Probe) { p.Event(1) }
`
	// cmd/ is out of scope: tools attach probes they just constructed.
	wantFindings(t, checkSrc(t, "rwp/cmd/rwpstat", src, Probesafe), "probesafe")
	// The probe package itself (and its tests) is exempt.
	wantFindings(t, checkSrc(t, "rwp/internal/probe", src, Probesafe), "probesafe")
	wantFindings(t, checkSrc(t, "rwp/internal/probe_test", src, Probesafe), "probesafe")
	// Other internal packages are in scope.
	wantFindings(t, checkSrc(t, "rwp/internal/fix", src, Probesafe), "probesafe", 20)
}

// TestProbesafeFamilySuffix: the rule covers every interface named
// *Probe — the request recorder's ReqProbe included — while leaving
// unrelated interfaces (and names merely containing "Probe") alone.
func TestProbesafeFamilySuffix(t *testing.T) {
	src := probeFixture + `
type ReqProbe interface {
	ReqEvent(x int)
}

type ProbeLike interface {
	Poke()
}

type logger struct {
	reqs  ReqProbe
	other ProbeLike
}

func (l *logger) bad() {
	l.reqs.ReqEvent(1)
}

func (l *logger) good() {
	if l.reqs != nil {
		l.reqs.ReqEvent(2)
	}
	l.other.Poke()
}
`
	// Line 34 is the unguarded l.reqs.ReqEvent(1); the guarded call and
	// the ProbeLike call (suffix mismatch) are clean.
	wantFindings(t, checkSrc(t, "rwp/internal/fix", src, Probesafe),
		"probesafe", 34)
}

func TestProbesafeAllowDirective(t *testing.T) {
	src := probeFixture + `
func checked(p Probe) {
	//rwplint:allow probesafe — caller guarantees a non-nil probe
	p.Event(1)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, Probesafe)
	if len(findings) != 1 || !findings[0].Suppressed {
		t.Fatalf("want one suppressed finding, got %v", findings)
	}
	wantFindings(t, findings, "probesafe")
}
