package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for … range` over a map whose body has
// order-sensitive effects. Go randomizes map iteration order, so any
// observable sequence produced inside such a loop (slice appends,
// writes to a stream, assignments into result fields) varies from run
// to run and breaks the bit-identical-Results guarantee.
//
// The canonical collect-then-sort idiom is recognized and allowed: a
// loop whose only effects are appends to variables that are passed to a
// sort.* / slices.Sort* call later in the same block is deterministic
// overall and reports nothing.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-sensitive effects unless the result is sorted afterwards",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				for i, stmt := range block.List {
					rs, ok := stmt.(*ast.RangeStmt)
					if !ok {
						continue
					}
					tv, ok := pass.Info.Types[rs.X]
					if !ok || tv.Type == nil {
						continue
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						continue
					}
					effects := collectEffects(pass, rs.Body)
					if len(effects) == 0 {
						continue
					}
					if appendsSortedAfter(pass, effects, block.List[i+1:]) {
						continue
					}
					pass.Reportf(rs.Pos(), "iteration over map %s has order-sensitive effects (%s); iterate sorted keys or sort the collected result", types.ExprString(rs.X), effects[0].kind)
				}
				return true
			})
		}
	},
}

// effect is one order-sensitive operation found in a range body.
type effect struct {
	kind string
	// target is the appended-to variable for kind "append" (nil when
	// the append target is not a plain variable).
	target types.Object
}

// collectEffects scans a map-range body for operations whose outcome
// depends on iteration order.
func collectEffects(pass *Pass, body *ast.BlockStmt) []effect {
	var effects []effect
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if e, ok := appendEffect(pass, n); ok {
				effects = append(effects, e)
				return true
			}
			for _, lhs := range n.Lhs {
				switch lhs := lhs.(type) {
				case *ast.SelectorExpr:
					effects = append(effects, effect{kind: "struct field assignment"})
				case *ast.IndexExpr:
					if tv, ok := pass.Info.Types[lhs.X]; ok && tv.Type != nil {
						switch tv.Type.Underlying().(type) {
						case *types.Slice, *types.Array, *types.Pointer:
							effects = append(effects, effect{kind: "indexed slice assignment"})
						}
					}
				}
			}
		case *ast.SendStmt:
			effects = append(effects, effect{kind: "channel send"})
		case *ast.CallExpr:
			if name, ok := writeCall(pass, n); ok {
				effects = append(effects, effect{kind: name + " write"})
			}
		}
		return true
	})
	return effects
}

// appendEffect matches `x = append(x, …)` (or :=) and returns the
// append target.
func appendEffect(pass *Pass, as *ast.AssignStmt) (effect, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return effect{}, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return effect{}, false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return effect{}, false
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return effect{}, false
	}
	e := effect{kind: "append"}
	if id, ok := as.Lhs[0].(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			e.target = obj
		} else if obj := pass.Info.Defs[id]; obj != nil {
			e.target = obj
		}
	}
	return e, true
}

// writeCall reports calls that emit to a stream: fmt print functions
// and Write*/Print* methods (io.Writer, strings.Builder, …).
func writeCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if hasPrefixAny(name, "Print", "Fprint") {
			return "fmt." + name, true
		}
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil && hasPrefixAny(name, "Write", "Print") {
		return "." + name, true
	}
	return "", false
}

// appendsSortedAfter reports whether every effect is an append to a
// variable that a later statement in the enclosing block sorts.
func appendsSortedAfter(pass *Pass, effects []effect, rest []ast.Stmt) bool {
	for _, e := range effects {
		if e.kind != "append" || e.target == nil {
			return false
		}
		if !sortedIn(pass, e.target, rest) {
			return false
		}
	}
	return true
}

// sortedIn reports whether stmts contain a sort.* or slices.Sort* call
// whose first argument is the given variable.
func sortedIn(pass *Pass, target types.Object, stmts []ast.Stmt) bool {
	found := false
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
			default:
				return true
			}
			if id, ok := call.Args[0].(*ast.Ident); ok && pass.Info.Uses[id] == target {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// hasPrefixAny reports whether s starts with any of the prefixes.
func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}
