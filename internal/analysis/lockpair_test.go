package analysis

import "testing"

func TestLockPairDeferIsClean(t *testing.T) {
	src := `package fix

import "sync"

type c struct {
	mu sync.Mutex
	n  int
}

func (x *c) bump() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n++
	return x.n
}

func (x *c) explicit() int {
	x.mu.Lock()
	n := x.n
	x.mu.Unlock()
	return n
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair")
}

func TestLockPairLeakOnEarlyReturn(t *testing.T) {
	src := `package fix

import "sync"

type c struct {
	mu sync.Mutex
	m  map[string]int
}

func (x *c) leaky(key string) (int, bool) {
	x.mu.Lock()
	v, ok := x.m[key]
	if !ok {
		return 0, false
	}
	x.mu.Unlock()
	return v, true
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair", 11)
}

func TestLockPairLeakAtFallthrough(t *testing.T) {
	src := `package fix

import "sync"

type c struct {
	mu sync.Mutex
	n  int
}

func (x *c) forgot() {
	x.mu.Lock()
	x.n++
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair", 11)
}

func TestLockPairRWLockMatchedSeparately(t *testing.T) {
	// RLock released by Unlock is NOT a release: the read lock leaks
	// (and the write side would corrupt the reader count at runtime).
	src := `package fix

import "sync"

type c struct {
	mu sync.RWMutex
	n  int
}

func (x *c) wrongPair() int {
	x.mu.RLock()
	n := x.n
	x.mu.Unlock()
	return n
}

func (x *c) rightPair() int {
	x.mu.RLock()
	n := x.n
	x.mu.RUnlock()
	return n
}

func (x *c) deferRead() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.n
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair", 11)
}

func TestLockPairUnlockInsideDeferredClosure(t *testing.T) {
	src := `package fix

import "sync"

type c struct {
	mu sync.Mutex
	n  int
}

func (x *c) closureRelease() {
	x.mu.Lock()
	defer func() {
		x.n++
		x.mu.Unlock()
	}()
	x.n++
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair")
}

func TestLockPairLoopIteration(t *testing.T) {
	// Per-iteration lock/unlock is the invariant-checker pattern and is
	// clean; forgetting the unlock self-deadlocks on iteration two.
	src := `package fix

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

func sum(shards []*shard) int {
	total := 0
	for _, sh := range shards {
		sh.mu.Lock()
		total += sh.n
		sh.mu.Unlock()
	}
	return total
}

func leakPerIteration(shards []*shard) int {
	total := 0
	for _, sh := range shards {
		sh.mu.Lock()
		total += sh.n
	}
	return total
}

func unlockBeforeErrorReturn(shards []*shard) int {
	for _, sh := range shards {
		sh.mu.Lock()
		if sh.n < 0 {
			sh.mu.Unlock()
			return -1
		}
		sh.mu.Unlock()
	}
	return 0
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair", 23)
}

func TestLockPairPanicPathNotChecked(t *testing.T) {
	// panic() is a crash-stop here, not control flow: only a deferred
	// unlock could release across it, and demanding one on every
	// assertion-style panic would be noise.
	src := `package fix

import "sync"

type c struct {
	mu sync.Mutex
	n  int
}

func (x *c) assertPositive() {
	x.mu.Lock()
	if x.n < 0 {
		panic("negative count")
	}
	x.mu.Unlock()
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair")
}

func TestLockPairBranchLeak(t *testing.T) {
	// Released in one arm, leaked in the other: one finding, at the
	// acquisition site.
	src := `package fix

import "sync"

type c struct {
	mu sync.Mutex
	n  int
}

func (x *c) halfReleased(cond bool) {
	x.mu.Lock()
	if cond {
		x.mu.Unlock()
		return
	}
	x.n++
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockPair)
	wantFindings(t, findings, "lockpair", 11)
}
