// Package stats (a testdata fixture, not rwp/internal/stats)
// deliberately violates every rwplint rule. It lives
// under testdata/ so the module walker skips it; the CLI regression
// test lints it explicitly and asserts rwplint exits non-zero with
// file:line-formatted findings for each rule.
package stats

import (
	"fmt"
	"math/rand"
	"time"
)

// Counters mimics the stats-package shape the ctrwidth rule protects.
type Counters struct {
	Hits, Misses uint64
}

// Report trips norand, nowallclock, maporder, floateq, and ctrwidth.
func Report(m map[string]Counters, ipc, base float64) int {
	start := time.Now() // nowallclock
	for name, c := range m {
		fmt.Println(name, c.Hits) // maporder: stream write in map range
	}
	if ipc == base { // floateq
		fmt.Println("tie")
	}
	total := int(m["x"].Misses) // ctrwidth (fixture path ends in /stats)
	total += rand.Intn(8)       // norand (import)
	_ = time.Since(start)
	return total
}
