// Package locks (a testdata fixture) deliberately violates the
// concurrency and hot-path rules: lockheld, lockpair, and hotalloc.
// It lives under testdata/ so the module walker skips it; the CLI
// regression tests lint it explicitly and assert rwplint exits
// non-zero with a finding for each rule.
package locks

import (
	"fmt"
	"sync"
)

// Loader mimics the live cache's backing-store hook; lockheld keys on
// the type name.
type Loader func(key string) []byte

// Shard mimics the live cache's shard shape.
type Shard struct {
	mu     sync.Mutex
	loader Loader
	m      map[string][]byte
	events chan string
}

// Fill trips lockheld three ways: a Loader fetch and a channel send
// under the shard lock, then a second shard's lock while the first is
// still held (the cluster-fan-out ordering hazard).
func (s *Shard) Fill(peer *Shard, key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.loader(key) // lockheld: backing-store fetch under the shard lock
	s.events <- key    // lockheld: channel send under the shard lock
	peer.mu.Lock()     // lockheld: second shard lock while one is held
	peer.m[key] = v
	peer.mu.Unlock()
	s.m[key] = v
	return v
}

// Peek trips lockpair: the miss path returns with the lock held.
func (s *Shard) Peek(key string) ([]byte, bool) {
	s.mu.Lock()
	v, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.mu.Unlock()
	return v, true
}

// Render trips hotalloc: a declared-hot function that allocates per
// call.
//
//rwplint:hotpath — fixture
func (s *Shard) Render(key string) string {
	v := s.m[key]
	out := make([]byte, len(v)) // hotalloc: make per call
	copy(out, v)
	return fmt.Sprintf("%s=%s", key, out) // hotalloc: fmt on the hot path
}
