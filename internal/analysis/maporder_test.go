package analysis

import "testing"

func TestMapOrderFlagsOrderSensitiveBodies(t *testing.T) {
	src := `package fix

import "fmt"

type result struct{ total int }

func f(m map[string]int, res *result, out []int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	for _, v := range m {
		fmt.Println(v)
	}
	for i, v := range m {
		_ = i
		res.total = v
	}
	return names
}
`
	// Three findings: unsorted append (line 9), fmt write (12), struct
	// field assignment (15).
	findings := checkSrc(t, "rwp/internal/fix", src, MapOrder)
	wantFindings(t, findings, "maporder", 9, 12, 15)
}

func TestMapOrderAllowsCollectThenSort(t *testing.T) {
	// The registry idiom used across the repo: collect keys, sort, use.
	src := `package fix

import "sort"

func names(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func nested(m map[string]bool) []string {
	var out []string
	for k, keep := range m {
		if keep {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, MapOrder)
	wantFindings(t, findings, "maporder")
}

func TestMapOrderAllowsCommutativeBodies(t *testing.T) {
	// Pure accumulation and map-to-map writes are order-insensitive.
	src := `package fix

func g(m map[string]int) (int, map[string]int) {
	sum := 0
	inv := make(map[string]int, len(m))
	for k, v := range m {
		sum += v
		inv[k] = v * 2
	}
	return sum, inv
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, MapOrder)
	wantFindings(t, findings, "maporder")
}

func TestMapOrderSliceRangesNotFlagged(t *testing.T) {
	src := `package fix

import "fmt"

func h(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, MapOrder)
	wantFindings(t, findings, "maporder")
}
