package analysis

import "testing"

func TestLockHeldLoaderUnderLock(t *testing.T) {
	src := `package fix

import "sync"

type Loader func(key string) []byte

type shard struct {
	mu     sync.Mutex
	loader Loader
	m      map[string][]byte
}

func (s *shard) get(key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		return v
	}
	v := s.loader(key)
	s.m[key] = v
	return v
}

func (s *shard) getOutside(key string) []byte {
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		return v
	}
	return s.loader(key)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	wantFindings(t, findings, "lockheld", 19)
}

func TestLockHeldLoaderInterface(t *testing.T) {
	src := `package fix

import "sync"

type Loader interface {
	Load(key string) ([]byte, error)
}

type cache struct {
	mu sync.Mutex
	l  Loader
}

func (c *cache) fill(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.l.Load(key)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	wantFindings(t, findings, "lockheld", 17)
}

func TestLockHeldBlockingCalls(t *testing.T) {
	src := `package fix

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"time"
)

type s struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	conn net.Conn
}

func (x *s) bad() {
	x.mu.Lock()
	time.Sleep(time.Millisecond)
	x.conn.Write([]byte("hi"))
	fmt.Println("held")
	x.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (x *s) good() {
	x.mu.Lock()
	x.buf.WriteString("in-memory is fine")
	x.mu.Unlock()
	x.conn.Write([]byte("after unlock"))
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	wantFindings(t, findings, "lockheld", 19, 20, 21)
}

func TestLockHeldChannelOps(t *testing.T) {
	src := `package fix

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

func (x *q) sendHeld() {
	x.mu.Lock()
	x.ch <- 1
	x.mu.Unlock()
}

func (x *q) recvHeld() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return <-x.ch
}

func (x *q) selectNoDefault() {
	x.mu.Lock()
	defer x.mu.Unlock()
	select {
	case v := <-x.ch:
		_ = v
	}
}

func (x *q) selectDefault() {
	x.mu.Lock()
	defer x.mu.Unlock()
	select {
	case x.ch <- 1:
	default:
	}
}

func (x *q) goroutineDoesNotInherit() {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func() {
		x.ch <- 2
	}()
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	// selectNoDefault reports once, at the select itself (the comm
	// clauses are what make it blocking, so they are not re-reported);
	// selectDefault reports nothing: ready-or-skip cannot stall.
	wantFindings(t, findings, "lockheld", 12, 19, 25)
}

func TestLockHeldNestedLocks(t *testing.T) {
	src := `package fix

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ordering() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) selfDeadlock() {
	p.a.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.a.Unlock()
}

func (p *pair) sequential() {
	p.a.Lock()
	p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	wantFindings(t, findings, "lockheld", 12, 19)
}

func TestLockHeldBranchMerge(t *testing.T) {
	// The lock is released only on the if-branch; after the merge it
	// may still be held, so the Sleep is flagged.
	src := `package fix

import (
	"sync"
	"time"
)

type m struct {
	mu sync.Mutex
}

func (x *m) partialRelease(cond bool) {
	x.mu.Lock()
	if cond {
		x.mu.Unlock()
	}
	time.Sleep(time.Millisecond)
}

func (x *m) fullRelease(cond bool) {
	x.mu.Lock()
	if cond {
		x.mu.Unlock()
	} else {
		x.mu.Unlock()
	}
	time.Sleep(time.Millisecond)
}

func (x *m) earlyReturn(cond bool) {
	x.mu.Lock()
	if cond {
		x.mu.Unlock()
		return
	}
	x.mu.Unlock()
	time.Sleep(time.Millisecond)
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	wantFindings(t, findings, "lockheld", 17)
}

func TestLockHeldRangeOverChannel(t *testing.T) {
	src := `package fix

import "sync"

type r struct {
	mu sync.Mutex
	ch chan int
	m  map[int]int
}

func (x *r) drainHeld() {
	x.mu.Lock()
	defer x.mu.Unlock()
	for v := range x.ch {
		x.m[v]++
	}
}

func (x *r) mapRangeFine() {
	x.mu.Lock()
	defer x.mu.Unlock()
	for k := range x.m {
		x.m[k]++
	}
}
`
	findings := checkSrc(t, "rwp/internal/fix", src, LockHeld)
	wantFindings(t, findings, "lockheld", 14)
}
