package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or depend on
// the wall clock. Simulated time lives in internal/cpu cycle counters;
// any wall-clock read under internal/ makes a run's behavior depend on
// host speed and scheduling.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClock forbids wall-clock access under internal/. Wall-clock
// progress reporting belongs in cmd/ (see cmd/rwpexp's stopwatch).
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Sleep (and friends) under internal/; simulated time only",
	Run: func(pass *Pass) {
		if !underInternal(pass.Path) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; internal/ must use simulated time (cycle counters)", fn.Name())
				return true
			})
		}
	},
}
