package analysis

import (
	"go/ast"
	"go/types"
)

// LockHeld flags blocking or out-of-shard work performed while a
// sync.Mutex or sync.RWMutex is provably held. A shard mutex guards a
// few in-memory structures; holding it across a backing-store fetch, a
// socket write, a sleep, or a channel operation turns one slow peer
// into a stalled shard (the classic "cache misses overload the DB"
// failure), and acquiring a second lock while one is held is the
// lock-ordering hazard that deadlocks multi-shard fan-out.
//
// Flagged while a lock is held:
//
//   - calling a value or interface method of a type named "Loader"
//     (the live cache's backing-store hook);
//   - package-level calls into net / net/http, the io copy/read
//     helpers, and blocking-shaped methods (Read*/Write*/Flush/Close/
//     Accept/Serve/Shutdown/Dial/Do) on net/io/bufio/os/net/http types;
//   - fmt.Print*/Fprint* (stream writes) — when the lock exists solely
//     to serialize that stream, suppress with a reason;
//   - time.Sleep and sync.WaitGroup.Wait;
//   - channel sends, receives, range-over-channel, and select
//     statements without a default case;
//   - acquiring any mutex (re-acquiring the held one is an immediate
//     deadlock; a different one is an ordering hazard).
//
// The analysis is per-function and syntactic: a lock is "held" from a
// Lock()/RLock() statement until the matching Unlock()/RUnlock()
// statement on the same receiver expression; `defer Unlock()` keeps it
// held to the end of the function. Function literals are analyzed as
// their own functions (a goroutine body does not inherit the spawner's
// locks), and calls into other functions are not followed — a helper
// that blocks internally needs its own locks, or a review.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flag blocking work (Loader fills, net/io writes, time.Sleep, channel ops, nested locks) while a mutex is held",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body != nil {
					w := &heldWalker{pass: pass}
					w.stmts(body.List, nil)
				}
				return true // nested FuncLits are visited (and walked) separately
			})
		}
	},
}

// heldWalker tracks which mutex expressions are held across a
// statement walk of one function body.
type heldWalker struct {
	pass *Pass
}

// mutexOp classifies call as a sync.Mutex/RWMutex lock-state method
// call, returning the receiver expression and the method name.
func mutexOp(pass *Pass, call *ast.CallExpr) (expr, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	t := recv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// stmts walks a statement list with the held-lock set (in acquisition
// order) and returns the set at fall-through.
func (w *heldWalker) stmts(list []ast.Stmt, held []string) []string {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// stmt processes one statement, reporting blocking work if any lock is
// held, and returns the updated held set.
func (w *heldWalker) stmt(s ast.Stmt, held []string) []string {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if expr, op, isMu := mutexOp(w.pass, call); isMu {
				switch op {
				case "Lock", "RLock":
					if len(held) > 0 {
						if contains(held, expr) {
							w.pass.Reportf(call.Pos(), "%s.%s while %s is already held: guaranteed self-deadlock", expr, op, expr)
						} else {
							w.pass.Reportf(call.Pos(), "acquiring %s while %s is held: lock-ordering hazard (release one lock before taking another)", expr, held[len(held)-1])
						}
					}
					return appendNew(held, expr)
				default: // Unlock, RUnlock
					return remove(held, expr)
				}
			}
		}
		w.checkBlocking(s, held)
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(s.Pos(), "channel send while %s is held; a full channel stalls the lock domain", held[len(held)-1])
		}
		w.checkBlocking(s.Chan, held)
		w.checkBlocking(s.Value, held)
		return held
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.ReturnStmt:
		w.checkBlocking(s, held)
		return held
	case *ast.DeferStmt:
		// A deferred Unlock releases at function exit: the lock stays
		// held for the remainder of the walk. Other deferred calls run
		// after this statement's region and are not analyzed here.
		return held
	case *ast.GoStmt:
		// The spawned goroutine does not hold this function's locks;
		// its FuncLit body is walked as its own function.
		return held
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.checkBlocking(s.Cond, held)
		var fallthroughs [][]string
		if out, falls := w.branch(s.Body.List, held); falls {
			fallthroughs = append(fallthroughs, out)
		}
		if s.Else != nil {
			if out, falls := w.branch([]ast.Stmt{s.Else}, held); falls {
				fallthroughs = append(fallthroughs, out)
			}
		} else {
			fallthroughs = append(fallthroughs, held)
		}
		return union(fallthroughs)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkBlocking(s.Cond, held)
		}
		out := w.stmts(s.Body.List, cloneHeld(held))
		return union([][]string{held, out})
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, isTyped := w.pass.Info.Types[s.X]; isTyped && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.pass.Reportf(s.Pos(), "range over channel while %s is held blocks the lock domain on the sender", held[len(held)-1])
				}
			}
		}
		w.checkBlocking(s.X, held)
		out := w.stmts(s.Body.List, cloneHeld(held))
		return union([][]string{held, out})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return w.clauses(s, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefaultClause(s.Body.List) {
			w.pass.Reportf(s.Pos(), "select without default while %s is held blocks the lock domain", held[len(held)-1])
		}
		var fallthroughs [][]string
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			if out, falls := w.branch(comm.Body, held); falls {
				fallthroughs = append(fallthroughs, out)
			}
		}
		if len(fallthroughs) == 0 {
			return held
		}
		return union(fallthroughs)
	default:
		return held
	}
}

// clauses walks the case bodies of a switch or type switch.
func (w *heldWalker) clauses(s ast.Stmt, held []string) []string {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkBlocking(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	}
	var fallthroughs [][]string
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if out, falls := w.branch(cc.Body, held); falls {
			fallthroughs = append(fallthroughs, out)
		}
	}
	if !hasDefault {
		fallthroughs = append(fallthroughs, held)
	}
	if len(fallthroughs) == 0 {
		return held
	}
	return union(fallthroughs)
}

// branch walks one branch body and reports whether control can fall
// through to the statement after the enclosing construct.
func (w *heldWalker) branch(list []ast.Stmt, held []string) ([]string, bool) {
	out := w.stmts(list, cloneHeld(held))
	return out, !terminates(list)
}

// terminates reports whether a statement list definitely transfers
// control away (return, panic, break/continue, goto) at its end.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, isCall := last.X.(*ast.CallExpr); isCall {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// checkBlocking inspects one statement or expression for blocking
// operations, reporting each when locks are held. Function literals
// are not descended: their bodies run later, as their own functions.
func (w *heldWalker) checkBlocking(n ast.Node, held []string) {
	if len(held) == 0 || n == nil {
		return
	}
	holder := held[len(held)-1]
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.pass.Reportf(n.Pos(), "channel receive while %s is held blocks the lock domain on the sender", holder)
			}
		case *ast.CallExpr:
			if _, _, isMu := mutexOp(w.pass, n); isMu {
				return true // handled by the statement walk
			}
			if desc, blocking := w.blockingCall(n); blocking {
				w.pass.Reportf(n.Pos(), "%s while %s is held; move the blocking work outside the critical section", desc, holder)
			}
		}
		return true
	})
}

// ioPackages are the packages whose blocking-shaped calls are flagged
// under a held lock. bytes/strings buffers are deliberately absent:
// in-memory writes do not block.
var ioPackages = map[string]bool{
	"net":      true,
	"net/http": true,
	"io":       true,
	"bufio":    true,
	"os":       true,
}

// ioFuncs are package-level io helpers that read or write streams.
var ioFuncs = map[string]bool{
	"Copy":       true,
	"CopyN":      true,
	"CopyBuffer": true,
	"ReadAll":    true,
	"ReadAtLeast": true,
	"ReadFull":   true,
	"WriteString": true,
}

// osFuncs are package-level os calls that touch the filesystem.
var osFuncs = map[string]bool{
	"ReadFile":  true,
	"WriteFile": true,
	"Open":      true,
	"OpenFile":  true,
	"Create":    true,
	"Rename":    true,
	"Remove":    true,
	"RemoveAll": true,
}

// blockingCall classifies a call as blocking work that must not run
// under a shard lock.
func (w *heldWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	// A call through a value or field whose type is named "Loader" is a
	// backing-store fetch, whatever package defines it.
	if tv, isTyped := w.pass.Info.Types[call.Fun]; isTyped && tv.Type != nil {
		if named := namedOf(tv.Type); named != nil && named.Obj().Name() == "Loader" {
			if _, isSig := named.Underlying().(*types.Signature); isSig {
				return "Loader fill (backing-store fetch)", true
			}
		}
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	// Method call on an interface named "Loader".
	if tv, isTyped := w.pass.Info.Types[sel.X]; isTyped && tv.Type != nil {
		if named := namedOf(tv.Type); named != nil && named.Obj().Name() == "Loader" {
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				return "Loader." + sel.Sel.Name + " (backing-store fetch)", true
			}
		}
	}
	fn, isFn := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig := fn.Type().(*types.Signature)
	switch pkg {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if name == "Wait" {
			return "sync WaitGroup/Cond Wait", true
		}
	case "fmt":
		if hasPrefixAny(name, "Print", "Fprint") {
			return "fmt." + name + " (stream write)", true
		}
	}
	if !ioPackages[pkg] {
		return "", false
	}
	if sig.Recv() == nil {
		switch pkg {
		case "net", "net/http":
			return pkg + "." + name, true
		case "io":
			if ioFuncs[name] {
				return "io." + name, true
			}
		case "os":
			if osFuncs[name] {
				return "os." + name, true
			}
		}
		return "", false
	}
	if blockingMethodName(name) {
		return pkg + " " + name + " method", true
	}
	return "", false
}

// blockingMethodName reports whether a method name on a net/io-family
// type is read/write/connection-lifecycle shaped.
func blockingMethodName(name string) bool {
	if hasPrefixAny(name, "Read", "Write", "Accept", "Serve", "Dial") {
		return true
	}
	switch name {
	case "Flush", "Close", "Shutdown", "Do", "Sync":
		return true
	}
	return false
}

// namedOf unwraps pointers to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil
	}
	return named
}

// hasDefaultClause reports whether a select body has a default case.
func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if comm, isComm := c.(*ast.CommClause); isComm && comm.Comm == nil {
			return true
		}
	}
	return false
}

// contains reports whether held includes expr.
func contains(held []string, expr string) bool {
	for _, h := range held {
		if h == expr {
			return true
		}
	}
	return false
}

// appendNew returns held plus expr (copy-on-write: branches share
// prefixes).
func appendNew(held []string, expr string) []string {
	out := make([]string, 0, len(held)+1)
	out = append(out, held...)
	return append(out, expr)
}

// remove returns held without the most recent occurrence of expr.
func remove(held []string, expr string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == expr {
			out := make([]string, 0, len(held)-1)
			out = append(out, held[:i]...)
			return append(out, held[i+1:]...)
		}
	}
	return held
}

// cloneHeld copies the held set for branch-local mutation.
func cloneHeld(held []string) []string {
	return append([]string(nil), held...)
}

// union merges fall-through branch states in first-seen order: a lock
// held on any incoming path is treated as held.
func union(states [][]string) []string {
	var out []string
	for _, st := range states {
		for _, e := range st {
			if !contains(out, e) {
				out = append(out, e)
			}
		}
	}
	return out
}
