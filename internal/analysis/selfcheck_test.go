package analysis

import "testing"

// TestSelfCheck runs the full analyzer suite over the whole module and
// fails on any unsuppressed finding. This is the enforcement point that
// makes the determinism rules part of the tier-1 gate: `go test ./...`
// cannot pass while internal/ imports math/rand, reads the wall clock,
// iterates a map into an ordered result, compares floats exactly, or
// narrows a 64-bit counter — unless the site carries a justified
// //rwplint:allow directive.
func TestSelfCheck(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	// A silent load failure would vacuously pass; the module has ~30
	// packages (test packages included), so anything below 20 means the
	// walker or type-checker lost packages.
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost packages", len(pkgs))
	}
	findings := Run(Default(), pkgs)
	for _, f := range Unsuppressed(findings) {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Log("fix the finding or suppress it with //rwplint:allow <rule> — <reason> (see DESIGN.md, Determinism guarantees)")
	}
}
