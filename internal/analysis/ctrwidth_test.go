package analysis

import "testing"

func TestCtrWidthFlagsNarrowingInScopedPkgs(t *testing.T) {
	src := `package stats

func f(misses uint64) (int, uint32) {
	a := int(misses)
	b := uint32(misses)
	return a, b
}
`
	findings := checkSrc(t, "rwp/internal/stats", src, CtrWidth)
	wantFindings(t, findings, "ctrwidth", 4, 5)
}

func TestCtrWidthCleanOnWideningAndOtherPkgs(t *testing.T) {
	// Widening and 64-bit destinations are fine in scoped packages.
	src := `package cache

func f(misses uint64, ways int16) (uint64, int64, int) {
	return misses, int64(misses), int(ways)
}
`
	findings := checkSrc(t, "rwp/internal/cache", src, CtrWidth)
	wantFindings(t, findings, "ctrwidth")

	// Packages outside internal/{stats,cache,core} are out of scope.
	outSrc := `package report

func f(misses uint64) int { return int(misses) }
`
	findings = checkSrc(t, "rwp/internal/report", outSrc, CtrWidth)
	wantFindings(t, findings, "ctrwidth")
}
