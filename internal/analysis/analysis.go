// Package analysis is rwp's repo-specific static-analysis framework:
// a small, stdlib-only analogue of golang.org/x/tools/go/analysis that
// machine-checks the simulator's determinism and correctness invariants
// (see DESIGN.md "Determinism guarantees").
//
// The headline guarantee — the same sim.Options produce bit-identical
// Results — is only as strong as its weakest code path. Each Analyzer
// encodes one invariant as a syntactic/type-based rule; the full suite
// runs over every package in the module both from the cmd/rwplint CLI
// and from the tier-1 test gate (selfcheck_test.go), so a violation
// fails `go test ./...` before it can corrupt recorded results.
//
// Findings can be suppressed, one line at a time, with a justified
// directive comment:
//
//	//rwplint:allow <rule> — <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory: a directive without one does not suppress and is
// itself reported (rule "directive").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed is true when a valid //rwplint:allow directive covers
	// the finding. Suppressed findings are retained (cmd/rwplint -v
	// lists them) but do not fail the run.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// An Analyzer checks one invariant over a single type-checked package.
type Analyzer struct {
	// Name is the rule name used in reports and allow directives.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Run inspects the pass and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (e.g. "rwp/internal/cache").
	// External test packages get the conventional "_test" suffix.
	Path string
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	findings *[]Finding
}

// Reportf records a finding of the pass's rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Default returns the full analyzer suite in reporting order.
func Default() []*Analyzer {
	return []*Analyzer{
		NoRand,
		NoWallClock,
		MapOrder,
		FloatEq,
		CtrWidth,
		Probesafe,
		LockHeld,
		LockPair,
		HotAlloc,
	}
}

// Run applies every analyzer to every package, resolves allow
// directives, and returns all findings sorted by position. Suppressed
// findings are included with Suppressed set; Unsuppressed filters them.
//
// An allow directive naming a rule that matches no analyzer — neither
// one in the running set nor one in the Default suite — is reported
// (rule "directive") rather than silently ignored: a typo in a rule
// name must not quietly disable a suppression.
func Run(analyzers []*Analyzer, pkgs []*Package) []Finding {
	known := map[string]bool{"directive": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range Default() {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				findings: &findings,
			}
			a.Run(pass)
		}
		findings = append(findings, applyDirectives(pkg, &findings, known)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return findings
}

// Unsuppressed returns the findings not covered by an allow directive.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// directiveRE matches "rwplint:allow <rule> <reason>" inside a comment.
// The reason may be separated by an em/en dash or given directly.
var directiveRE = regexp.MustCompile(`^rwplint:allow\s+([A-Za-z0-9_-]+)\s*(?:[—–:-]+\s*)?(.*)$`)

// hotpathRE matches the "rwplint:hotpath" function directive (an
// optional dash-separated note may follow). It is consumed by the
// hotalloc analyzer, which requires it to sit in a function's doc
// comment; parseDirectives only has to recognize it as well-formed.
var hotpathRE = regexp.MustCompile(`^rwplint:hotpath\s*(?:[—–:-]+\s*(.*))?$`)

// directive is one parsed //rwplint:allow comment.
type directive struct {
	rule   string
	reason string
	file   string
	// lines covered: the directive's own line and, for a
	// comment that stands alone on its line, the following line.
	lines [2]int
}

// parseDirectives extracts the allow directives from a file's comments.
// Malformed directives (no reason) are reported as rule "directive".
func parseDirectives(fset *token.FileSet, file *ast.File, report func(Finding)) []directive {
	var dirs []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "rwplint:") {
				continue
			}
			if hotpathRE.MatchString(text) {
				continue // function directive; hotalloc owns placement checks
			}
			m := directiveRE.FindStringSubmatch(text)
			pos := fset.Position(c.Pos())
			if m == nil || strings.TrimSpace(m[2]) == "" {
				report(Finding{
					Pos:     pos,
					Rule:    "directive",
					Message: "malformed rwplint directive: want //rwplint:allow <rule> — <reason> or //rwplint:hotpath",
				})
				continue
			}
			dirs = append(dirs, directive{
				rule:   m[1],
				reason: strings.TrimSpace(m[2]),
				file:   pos.Filename,
				lines:  [2]int{pos.Line, pos.Line + 1},
			})
		}
	}
	return dirs
}

// applyDirectives marks findings in pkg covered by a directive as
// suppressed and returns any directive-parse findings to append
// (malformed directives and allow directives naming unknown rules).
func applyDirectives(pkg *Package, findings *[]Finding, known map[string]bool) []Finding {
	var extra []Finding
	var dirs []directive
	for _, f := range pkg.Files {
		dirs = append(dirs, parseDirectives(pkg.Fset, f, func(f Finding) {
			extra = append(extra, f)
		})...)
	}
	for _, d := range dirs {
		if !known[d.rule] {
			extra = append(extra, Finding{
				Pos:     token.Position{Filename: d.file, Line: d.lines[0]},
				Rule:    "directive",
				Message: fmt.Sprintf("allow directive names unknown rule %q; it suppresses nothing", d.rule),
			})
		}
	}
	if len(dirs) == 0 {
		return extra
	}
	for i := range *findings {
		f := &(*findings)[i]
		if f.Suppressed {
			continue
		}
		for _, d := range dirs {
			if d.rule != f.Rule || d.file != f.Pos.Filename {
				continue
			}
			if f.Pos.Line == d.lines[0] || f.Pos.Line == d.lines[1] {
				f.Suppressed = true
				break
			}
		}
	}
	return extra
}

// underInternal reports whether an import path has an "internal" path
// segment — the scope of the determinism rules (cmd/ and examples/ may
// talk to the OS; the simulator core may not).
func underInternal(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// internalPkg returns the path portion after the first "internal/"
// segment ("rwp/internal/cache" → "cache"), or "" when the path is not
// under internal/.
func internalPkg(path string) string {
	segs := strings.Split(path, "/")
	for i, seg := range segs {
		if seg == "internal" && i+1 < len(segs) {
			return strings.Join(segs[i+1:], "/")
		}
	}
	return ""
}
