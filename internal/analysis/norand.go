package analysis

import "strings"

// bannedRandImports are the stdlib randomness sources that break
// seed-reproducibility: math/rand's global state is shared and
// crypto/rand is non-deterministic by design.
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// NoRand forbids stdlib randomness under internal/. Every stochastic
// component must draw from rwp/internal/xrand, whose seeded SplitMix64
// streams make whole-simulation results bit-reproducible.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand, math/rand/v2, and crypto/rand imports under internal/ (use internal/xrand)",
	Run: func(pass *Pass) {
		if !underInternal(pass.Path) {
			return
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if bannedRandImports[path] {
					pass.Reportf(imp.Pos(), "import of %s is forbidden under internal/; use rwp/internal/xrand for deterministic randomness", path)
				}
			}
		}
	},
}
