package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Probesafe enforces the probe layer's zero-overhead contract: under
// internal/, every method call on a value of a probe-family interface
// type (a named interface ending in "Probe": Probe, ReqProbe) must be
// inside an `if x != nil { … }` guard for that same expression.
// An unguarded call either panics on the nil (disabled) probe or forces
// the caller to construct event structs unconditionally — both defeat
// the "nil probe costs one branch" guarantee documented in
// internal/probe.
//
// The guard is matched syntactically: the call's receiver expression
// must appear as `<expr> != nil` in the condition of an enclosing if
// statement (conjuncts of && are searched, parentheses unwrapped). The
// probe package itself is exempt — its concrete Recorder implements the
// interface and may of course call itself.
var Probesafe = &Analyzer{
	Name: "probesafe",
	Doc:  "flag Probe interface method calls not guarded by `if <recv> != nil`",
	Run: func(pass *Pass) {
		if !underInternal(pass.Path) {
			return
		}
		if internalPkg(strings.TrimSuffix(pass.Path, "_test")) == "probe" {
			return
		}
		for _, f := range pass.Files {
			guards := collectNilGuards(f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if !isProbeInterface(pass, sel.X) {
					return true
				}
				recv := types.ExprString(sel.X)
				if !guards.covers(recv, call.Pos()) {
					pass.Reportf(call.Pos(), "call %s.%s on a possibly-nil Probe; guard with `if %s != nil { … }`", recv, sel.Sel.Name, recv)
				}
				return true
			})
		}
	},
}

// nilGuard is one `if … <expr> != nil …` body region.
type nilGuard struct {
	expr       string
	start, end token.Pos
}

type nilGuards []nilGuard

// covers reports whether pos lies inside a guard body for expr.
func (gs nilGuards) covers(expr string, pos token.Pos) bool {
	for _, g := range gs {
		if g.expr == expr && g.start <= pos && pos < g.end {
			return true
		}
	}
	return false
}

// collectNilGuards records, for every if statement, which expressions
// its condition proves non-nil, and the body range that proof covers.
func collectNilGuards(f *ast.File) nilGuards {
	var gs nilGuards
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, expr := range nonNilConjuncts(ifs.Cond) {
			gs = append(gs, nilGuard{expr: expr, start: ifs.Body.Pos(), end: ifs.Body.End()})
		}
		return true
	})
	return gs
}

// nonNilConjuncts returns the expressions X for every `X != nil`
// conjunct of cond (descending through && and parentheses; an || arm
// proves nothing and is not descended).
func nonNilConjuncts(cond ast.Expr) []string {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return append(nonNilConjuncts(e.X), nonNilConjuncts(e.Y)...)
		case token.NEQ:
			if isNilIdent(e.Y) {
				return []string{types.ExprString(ast.Unparen(e.X))}
			}
			if isNilIdent(e.X) {
				return []string{types.ExprString(ast.Unparen(e.Y))}
			}
		}
	}
	return nil
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isProbeInterface reports whether the expression's type is a named
// interface whose name ends in "Probe" (any package: fixtures define
// their own). The suffix match covers the whole probe family — Probe
// for cache events, ReqProbe for the request-stream recorder — so new
// capture hooks inherit the guard discipline without touching the rule.
func isProbeInterface(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "Probe")
}
