package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("rwp/internal/cache"); external test
	// packages carry a "_test" suffix.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module using only the
// standard library (go/parser + go/types). Standard-library imports are
// resolved from compiled export data when available and from GOROOT
// source otherwise; module-internal imports are type-checked on demand
// from source.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	Fset   *token.FileSet

	std      types.Importer
	imports  map[string]*types.Package // import-resolution packages (base files only)
	override map[string]*types.Package // transient test-variant overrides (see loadDir)
	checking map[string]bool           // cycle detection
	sizes    types.Sizes
}

// NewLoader locates the module root at or above dir and returns a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     root,
		Module:   mod,
		Fset:     fset,
		std:      newStdImporter(fset),
		imports:  make(map[string]*types.Package),
		override: make(map[string]*types.Package),
		checking: make(map[string]bool),
		sizes:    types.SizesFor("gc", runtime.GOARCH),
	}, nil
}

// LoadModule loads every package in the module, test files included,
// skipping testdata and hidden directories. The result is sorted by
// import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return l.LoadDirs(dirs)
}

// LoadDirs loads the packages rooted at the given directories (each
// directory is one package). Directories under the module root get
// their real import path; testdata fixtures are included when named
// explicitly.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		path, err := l.importPath(abs)
		if err != nil {
			return nil, err
		}
		loaded, err := l.loadDir(abs, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPath maps an absolute directory to its module import path.
func (l *Loader) importPath(abs string) (string, error) {
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses one directory and returns its analysis packages: the
// base package merged with in-package test files, plus (when present)
// the external "_test" package.
func (l *Loader) loadDir(dir, path string) ([]*Package, error) {
	base, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 && len(extTest) == 0 {
		return nil, nil
	}
	var out []*Package
	if len(extTest) > 0 {
		// `go test` compiles the external test package against the base
		// package's *test variant* (in-package test files included), so
		// helpers from export_test.go-style files resolve — and it keeps
		// type identity consistent by building the variant, the external
		// test package, and every dependency they share in one import
		// universe. Mirror that: check the variant AND the external test
		// package inside one fresh memo (with the variant installed as
		// an importer override), so a dependency like internal/live
		// resolves to the same *types.Package instance from both, and
		// intermediate dependents of the package under test are
		// re-checked against the variant rather than a stale base-only
		// instance.
		saved := l.imports
		l.imports = make(map[string]*types.Package)
		defer func() { l.imports = saved }()
	}
	if len(base)+len(inTest) > 0 {
		pkg, err := l.check(path, dir, append(append([]*ast.File{}, base...), inTest...))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if len(extTest) > 0 {
			l.override[path] = pkg.Types
			defer delete(l.override, path)
		}
	}
	if len(extTest) > 0 {
		pkg, err := l.check(path+"_test", dir, extTest)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// parseDir parses every .go file in dir and splits the files into base
// package, in-package tests, and external-test package.
func (l *Loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	pkgName := ""
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		isTest := strings.HasSuffix(name, "_test.go")
		fp := file.Name.Name
		switch {
		case isTest && strings.HasSuffix(fp, "_test"):
			extTest = append(extTest, file)
		case isTest:
			inTest = append(inTest, file)
		default:
			if pkgName == "" {
				pkgName = fp
			}
			if fp != pkgName {
				return nil, nil, nil, fmt.Errorf("analysis: %s: mixed packages %q and %q", dir, pkgName, fp)
			}
			base = append(base, file)
		}
	}
	return base, inTest, extTest, nil
}

// check type-checks files as package path and returns its Package.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Sizes:    l.sizes,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v (%d errors)", path, errs[0], len(errs))
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// importFor resolves an import path during type-checking: module
// packages are checked from source (base files only, memoized), and
// everything else is delegated to the standard-library importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	if pkg, ok := l.override[path]; ok {
		return pkg, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer func() { l.checking[path] = false }()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	base, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var errs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Sizes:    l.sizes,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, base, nil)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v (%d errors)", path, errs[0], len(errs))
	}
	l.imports[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newStdImporter returns an importer for non-module packages: compiled
// export data when the toolchain provides it, GOROOT source otherwise.
func newStdImporter(fset *token.FileSet) types.Importer {
	return &stdImporter{
		gc:    importer.Default(),
		src:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}
}

type stdImporter struct {
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	pkg, err := s.gc.Import(path)
	if err != nil {
		pkg, err = s.src.Import(path)
	}
	if err != nil {
		return nil, err
	}
	s.cache[path] = pkg
	return pkg, nil
}

// hasGoFiles reports whether dir directly contains a .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		abs = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}
