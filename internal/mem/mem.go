// Package mem defines the fundamental address and access types shared by
// every layer of the simulator: physical addresses, cache-line geometry,
// and the memory-access records that traces, caches and core models
// exchange.
//
// The package is deliberately tiny and allocation-free; all higher layers
// (traces, caches, timing models) are built on these value types.
package mem

import "fmt"

// Addr is a byte-granular physical address.
type Addr uint64

// LineAddr is an address with the block offset stripped: the unit at which
// caches are tagged. Two accesses share a LineAddr iff they touch the same
// cache line.
type LineAddr uint64

// DefaultLineSize is the cache-line size used throughout the paper's
// configuration (64 bytes).
const DefaultLineSize = 64

// DefaultLineShift is log2(DefaultLineSize).
const DefaultLineShift = 6

// Line converts a byte address to its line address for the given line size
// shift (log2 of line size in bytes).
func (a Addr) Line(shift uint) LineAddr { return LineAddr(uint64(a) >> shift) }

// DefaultLine converts a byte address to its line address using the
// default 64-byte line size.
func (a Addr) DefaultLine() LineAddr { return a.Line(DefaultLineShift) }

// Offset returns the byte offset within the line for the given shift.
func (a Addr) Offset(shift uint) uint64 { return uint64(a) & ((1 << shift) - 1) }

// Addr returns the first byte address of the line for the given shift.
func (l LineAddr) Addr(shift uint) Addr { return Addr(uint64(l) << shift) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// String renders the line address in hex.
func (l LineAddr) String() string { return fmt.Sprintf("L0x%x", uint64(l)) }

// Kind distinguishes the two access classes whose criticality the paper
// contrasts: loads (reads) stall the pipeline on a miss; stores (writes)
// are normally buffered and off the critical path.
type Kind uint8

const (
	// Load is a demand read (critical on miss).
	Load Kind = iota
	// Store is a demand write (buffered on miss).
	Store
	// numKinds counts the access kinds; kept unexported, used for
	// validation and array sizing.
	numKinds
)

// Valid reports whether k is a defined access kind.
func (k Kind) Valid() bool { return k < numKinds }

// IsRead reports whether the access is a read (Load).
func (k Kind) IsRead() bool { return k == Load }

// IsWrite reports whether the access is a write (Store).
func (k Kind) IsWrite() bool { return k == Store }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Access is one memory reference as observed by the cache hierarchy.
//
// PC is the address of the instruction issuing the access; the RRP
// predictor (internal/rrp) is indexed by it. IC is the dynamic instruction
// count at which the access occurs; the core timing model uses gaps in IC
// to charge non-memory work between references.
type Access struct {
	PC   Addr
	Addr Addr
	IC   uint64
	Kind Kind
}

// LineAddr returns the access's cache-line address for the given shift.
func (a Access) LineAddr(shift uint) LineAddr { return a.Addr.Line(shift) }

// String implements fmt.Stringer.
func (a Access) String() string {
	return fmt.Sprintf("%s %s pc=%s ic=%d", a.Kind, a.Addr, a.PC, a.IC)
}
