package mem

import (
	"testing"
	"testing/quick"
)

func TestLineRoundTrip(t *testing.T) {
	const shift = DefaultLineShift
	cases := []Addr{0, 1, 63, 64, 65, 4095, 4096, 1 << 40, (1 << 40) + 17}
	for _, a := range cases {
		l := a.Line(shift)
		base := l.Addr(shift)
		if base > a {
			t.Errorf("line base %v exceeds addr %v", base, a)
		}
		if uint64(a)-uint64(base) != a.Offset(shift) {
			t.Errorf("offset mismatch for %v: base=%v off=%d", a, base, a.Offset(shift))
		}
		if a.Offset(shift) >= DefaultLineSize {
			t.Errorf("offset %d out of range for %v", a.Offset(shift), a)
		}
	}
}

func TestDefaultLineMatchesExplicitShift(t *testing.T) {
	f := func(a uint64) bool {
		return Addr(a).DefaultLine() == Addr(a).Line(DefaultLineShift)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameLinePropertyQuick(t *testing.T) {
	// Two addresses within the same 64-byte block always map to the same
	// line; addresses 64 bytes apart never do.
	f := func(a uint64, off uint8) bool {
		base := Addr(a &^ uint64(DefaultLineSize-1))
		in := base + Addr(off%DefaultLineSize)
		out := base + DefaultLineSize
		return in.DefaultLine() == base.DefaultLine() &&
			out.DefaultLine() != base.DefaultLine()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if !Load.IsRead() || Load.IsWrite() {
		t.Error("Load predicates wrong")
	}
	if !Store.IsWrite() || Store.IsRead() {
		t.Error("Store predicates wrong")
	}
	if !Load.Valid() || !Store.Valid() {
		t.Error("defined kinds must be valid")
	}
	if Kind(250).Valid() {
		t.Error("undefined kind must be invalid")
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" {
		t.Errorf("Load.String() = %q", Load.String())
	}
	if Store.String() != "store" {
		t.Errorf("Store.String() = %q", Store.String())
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("Kind(9).String() = %q", Kind(9).String())
	}
}

func TestAccessLineAddr(t *testing.T) {
	a := Access{PC: 0x400000, Addr: 0x12345, Kind: Load, IC: 7}
	if a.LineAddr(DefaultLineShift) != Addr(0x12345).DefaultLine() {
		t.Error("Access.LineAddr disagrees with Addr.DefaultLine")
	}
}

func TestAccessString(t *testing.T) {
	a := Access{PC: 0x10, Addr: 0x40, Kind: Store, IC: 3}
	got := a.String()
	want := "store 0x40 pc=0x10 ic=3"
	if got != want {
		t.Errorf("Access.String() = %q, want %q", got, want)
	}
}
