package cpu

import (
	"testing"
	"testing/quick"
)

func TestFinishBelowIssuedIsSafe(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	c.Load(1000, 3) // advances issue to 1000
	st := c.Finish(500)
	if st.Cycles == 0 {
		t.Fatal("no cycles after Finish")
	}
	if st.Instructions != 500 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
}

func TestCyclesMonotoneQuick(t *testing.T) {
	// Property: the core's clock never runs backwards under any access
	// pattern, and IPC never exceeds the issue width.
	f := func(ops []uint16) bool {
		c, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		ic := uint64(0)
		prev := uint64(0)
		for _, op := range ops {
			ic += uint64(op%7) + 1
			lat := uint64(op%400) + 1
			if op%3 == 0 {
				c.Store(ic, lat)
			} else {
				c.Load(ic, lat)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		st := c.Finish(ic + 1)
		if st.Cycles < prev {
			return false
		}
		return st.IPC() <= float64(DefaultConfig().Width)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowBoundsOutstandingWork(t *testing.T) {
	// With a tiny window, a single slow load gates everything: the run
	// takes at least the load latency.
	c := mustNew(t, Config{Width: 4, Window: 4, MSHRs: 16, StoreBuffer: 32})
	c.Load(10, 1000)
	st := c.Finish(100)
	if st.Cycles < 1000 {
		t.Fatalf("cycles = %d; tiny window should expose the full latency", st.Cycles)
	}
}
