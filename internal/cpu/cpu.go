// Package cpu implements the trace-driven core timing model that makes
// the paper's read-write criticality asymmetry real:
//
//   - Loads enter an MSHR-bounded outstanding queue. The core keeps
//     issuing instructions until the reorder window fills behind the
//     oldest incomplete load, so short latencies and overlapping misses
//     (MLP) are hidden but long read misses stall retirement.
//   - Stores retire into a finite store buffer immediately; their miss
//     latency is only felt when the buffer fills faster than it drains.
//
// The model is CMP$im-class: not cycle-accurate microarchitecture, but it
// reproduces the first-order mechanism the paper's evaluation relies on —
// read misses cost ~full memory latency, write misses cost ~nothing until
// write pressure saturates buffering.
package cpu

import "fmt"

// Config describes the core.
type Config struct {
	// Width is the issue width in instructions per cycle.
	Width int
	// Window is the reorder-buffer size in instructions: how far the
	// core can run ahead of the oldest incomplete load.
	Window int
	// MSHRs bounds concurrently outstanding load misses (the MLP cap).
	MSHRs int
	// StoreBuffer is the number of in-flight stores tolerated before
	// stores stall the core.
	StoreBuffer int
}

// DefaultConfig returns the paper-scale core: 4-wide, 128-entry window,
// 16 MSHRs, 32-entry store buffer.
func DefaultConfig() Config {
	return Config{Width: 4, Window: 128, MSHRs: 16, StoreBuffer: 32}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 1 {
		return fmt.Errorf("cpu: Width %d must be positive", c.Width)
	}
	if c.Window < 1 {
		return fmt.Errorf("cpu: Window %d must be positive", c.Window)
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("cpu: MSHRs %d must be positive", c.MSHRs)
	}
	if c.StoreBuffer < 1 {
		return fmt.Errorf("cpu: StoreBuffer %d must be positive", c.StoreBuffer)
	}
	return nil
}

// inflight is one outstanding load.
type inflight struct {
	ic   uint64 // instruction count at issue
	done uint64 // completion cycle
}

// Stats summarizes a core's execution.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	LoadStalls   uint64 // cycles lost waiting on loads (window or MSHR)
	StoreStalls  uint64 // cycles lost waiting on the store buffer
}

// IPC returns instructions per cycle (0 for an idle core).
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core is the timing model for one hardware context.
type Core struct {
	cfg Config

	cycle   uint64
	issued  uint64 // instructions issued so far (IC high-water mark)
	frac    uint64 // sub-cycle issue residue, in instructions
	loads   []inflight
	stores  []uint64 // completion cycles of buffered stores, FIFO
	stats   Stats
	started bool
}

// New returns a core at cycle zero.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg}, nil
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.cycle }

// advanceTo issues instructions up to dynamic count target, honoring the
// issue width and the reorder window behind incomplete loads.
func (c *Core) advanceTo(target uint64) {
	if target <= c.issued {
		return
	}
	for c.issued < target {
		// The window bounds how far past the oldest incomplete load we
		// may issue.
		limit := target
		if len(c.loads) > 0 {
			winEnd := c.loads[0].ic + uint64(c.cfg.Window)
			if winEnd < limit {
				limit = winEnd
			}
		}
		if limit <= c.issued {
			// Window full: stall until the oldest load completes.
			head := c.loads[0]
			if head.done > c.cycle {
				c.stats.LoadStalls += head.done - c.cycle
				c.cycle = head.done
			}
			c.loads = c.loads[1:]
			continue
		}
		n := limit - c.issued
		c.issued = limit
		// Issue n instructions at Width per cycle, with residue carry.
		c.frac += n
		c.cycle += c.frac / uint64(c.cfg.Width)
		c.frac %= uint64(c.cfg.Width)
		// Retire any loads that completed in the meantime.
		for len(c.loads) > 0 && c.loads[0].done <= c.cycle {
			c.loads = c.loads[1:]
		}
	}
}

// Load records a demand load at dynamic instruction ic whose data arrives
// `latency` cycles after issue. The caller obtains latency from the
// memory hierarchy using the cycle returned by Now *after* calling
// AdvanceTo(ic) — see Run in internal/sim for the canonical sequence.
func (c *Core) Load(ic uint64, latency uint64) {
	c.advanceTo(ic)
	// MSHR full: the miss cannot even be issued until one frees up.
	if len(c.loads) >= c.cfg.MSHRs {
		head := c.loads[0]
		if head.done > c.cycle {
			c.stats.LoadStalls += head.done - c.cycle
			c.cycle = head.done
		}
		c.loads = c.loads[1:]
	}
	c.loads = append(c.loads, inflight{ic: ic, done: c.cycle + latency})
	c.stats.Loads++
}

// AdvanceTo exposes instruction-issue progress so the driver can read the
// issue cycle before querying the hierarchy.
func (c *Core) AdvanceTo(ic uint64) { c.advanceTo(ic) }

// Store records a store at instruction ic that completes (leaves the
// store buffer) `latency` cycles after issue. Stores only stall when the
// buffer is full.
func (c *Core) Store(ic uint64, latency uint64) {
	c.advanceTo(ic)
	if len(c.stores) >= c.cfg.StoreBuffer {
		head := c.stores[0]
		if head > c.cycle {
			c.stats.StoreStalls += head - c.cycle
			c.cycle = head
		}
		c.stores = c.stores[1:]
	} else {
		// Lazily retire any stores that already completed.
		for len(c.stores) > 0 && c.stores[0] <= c.cycle {
			c.stores = c.stores[1:]
		}
	}
	c.stores = append(c.stores, c.cycle+latency)
	c.stats.Stores++
}

// Finish drains all in-flight work and finalizes the cycle count for
// `totalInstructions` retired instructions. It returns the final stats.
func (c *Core) Finish(totalInstructions uint64) Stats {
	c.advanceTo(totalInstructions)
	for _, l := range c.loads {
		if l.done > c.cycle {
			c.stats.LoadStalls += l.done - c.cycle
			c.cycle = l.done
		}
	}
	c.loads = nil
	// Stores drain in the background; the last one bounds completion.
	for _, s := range c.stores {
		if s > c.cycle {
			// Not a stall charged to stores: the core is done, the
			// machine just finishes the drain.
			c.cycle = s
		}
	}
	c.stores = nil
	c.stats.Instructions = totalInstructions
	c.stats.Cycles = c.cycle
	return c.stats
}

// Stats returns a snapshot of the counters accumulated so far (Cycles and
// Instructions are only final after Finish).
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.cycle
	s.Instructions = c.issued
	return s
}
