package cpu

import "testing"

func mustNew(t *testing.T, cfg Config) *Core {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []Config{
		{Width: 0, Window: 128, MSHRs: 16, StoreBuffer: 32},
		{Width: 4, Window: 0, MSHRs: 16, StoreBuffer: 32},
		{Width: 4, Window: 128, MSHRs: 0, StoreBuffer: 32},
		{Width: 4, Window: 128, MSHRs: 16, StoreBuffer: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestIdealIPCWithoutMemory(t *testing.T) {
	c := mustNew(t, Config{Width: 4, Window: 128, MSHRs: 16, StoreBuffer: 32})
	st := c.Finish(4000)
	if st.Cycles != 1000 {
		t.Fatalf("4000 instructions at width 4 took %d cycles, want 1000", st.Cycles)
	}
	if ipc := st.IPC(); ipc != 4.0 { //rwplint:allow floateq — exact: 4000/1000 divides exactly
		t.Fatalf("IPC = %v, want 4", ipc)
	}
}

func TestShortLoadsAreHidden(t *testing.T) {
	// L1-hit loads (3 cycles) spaced out never stall a 128-entry window.
	c := mustNew(t, DefaultConfig())
	for ic := uint64(10); ic <= 4000; ic += 10 {
		c.Load(ic, 3)
	}
	st := c.Finish(4100)
	if st.LoadStalls != 0 {
		t.Fatalf("short loads caused %d stall cycles", st.LoadStalls)
	}
	if st.Cycles > 4100/4+10 {
		t.Fatalf("cycles = %d; short loads should be fully hidden", st.Cycles)
	}
}

func TestLongLoadMissStallsWindow(t *testing.T) {
	// A single 200-cycle miss with little work behind it costs ~the full
	// latency minus the window's worth of issue.
	c := mustNew(t, Config{Width: 4, Window: 128, MSHRs: 16, StoreBuffer: 32})
	c.Load(100, 200)
	st := c.Finish(10_000)
	// Without the miss: 2500 cycles. The window covers 128 instructions
	// = 32 cycles of issue, so the stall is roughly 200-32.
	if st.Cycles < 2600 || st.Cycles > 2750 {
		t.Fatalf("cycles = %d, want ~2500+170", st.Cycles)
	}
	if st.LoadStalls == 0 {
		t.Fatal("no load stalls recorded")
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// Two independent misses close together should overlap: total cost
	// far below 2× latency.
	solo := mustNew(t, DefaultConfig())
	solo.Load(100, 200)
	cyclesSolo := solo.Finish(200).Cycles

	pair := mustNew(t, DefaultConfig())
	pair.Load(100, 200)
	pair.Load(101, 200)
	cyclesPair := pair.Finish(200).Cycles

	if cyclesPair > cyclesSolo+20 {
		t.Fatalf("two overlapping misses cost %d vs %d for one; no MLP", cyclesPair, cyclesSolo)
	}
}

func TestMSHRLimitSerializesMisses(t *testing.T) {
	// With 1 MSHR, back-to-back misses serialize: ~2× latency.
	c := mustNew(t, Config{Width: 4, Window: 128, MSHRs: 1, StoreBuffer: 32})
	c.Load(10, 200)
	c.Load(11, 200)
	st := c.Finish(100)
	if st.Cycles < 390 {
		t.Fatalf("cycles = %d; 1-MSHR misses must serialize (~400)", st.Cycles)
	}
}

func TestStoresAreBuffered(t *testing.T) {
	// A burst of store misses within buffer capacity costs ~nothing.
	c := mustNew(t, Config{Width: 4, Window: 128, MSHRs: 16, StoreBuffer: 32})
	for i := 0; i < 32; i++ {
		c.Store(uint64(10+i), 200)
	}
	st := c.Finish(1000)
	if st.StoreStalls != 0 {
		t.Fatalf("buffered stores caused %d stall cycles", st.StoreStalls)
	}
	if st.Cycles > 1000/4+250 {
		t.Fatalf("cycles = %d; stores should be off the critical path", st.Cycles)
	}
}

func TestStoreBufferOverflowStalls(t *testing.T) {
	c := mustNew(t, Config{Width: 4, Window: 128, MSHRs: 16, StoreBuffer: 4})
	for i := 0; i < 64; i++ {
		c.Store(uint64(10+i), 200)
	}
	st := c.Finish(100)
	if st.StoreStalls == 0 {
		t.Fatal("store-buffer overflow produced no stalls")
	}
}

func TestReadVsWriteCriticalityAsymmetry(t *testing.T) {
	// The paper's Figure-2 mechanism in miniature: N long-latency loads
	// cost far more than N long-latency stores.
	const n = 200
	loads := mustNew(t, DefaultConfig())
	for i := 0; i < n; i++ {
		loads.Load(uint64(i*50+10), 200)
	}
	loadCycles := loads.Finish(n * 50).Cycles

	stores := mustNew(t, DefaultConfig())
	for i := 0; i < n; i++ {
		stores.Store(uint64(i*50+10), 200)
	}
	storeCycles := stores.Finish(n * 50).Cycles

	if float64(loadCycles) < 1.5*float64(storeCycles) {
		t.Fatalf("loads %d cycles vs stores %d: asymmetry too weak", loadCycles, storeCycles)
	}
}

func TestICRegressionIsIgnored(t *testing.T) {
	// advanceTo with a target behind the issue point must be a no-op.
	c := mustNew(t, DefaultConfig())
	c.Load(100, 3)
	c.Load(50, 3) // out-of-order IC: tolerated, no time travel
	st := c.Finish(200)
	if st.Cycles == 0 {
		t.Fatal("no cycles recorded")
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	c.Load(10, 3)
	c.Store(20, 3)
	st := c.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	if (Stats{}).IPC() != 0 { //rwplint:allow floateq — exact: idle-core IPC is exactly 0
		t.Fatal("IPC of idle core must be 0")
	}
}
