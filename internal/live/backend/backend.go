// Package backend provides real backing stores behind the live
// cache's read-allocate Loader hook, beside the synthetic
// loadgen.Loader: an in-memory map store and a file-backed store.
//
// Both are deterministic (no wall clock, no randomness, no map-order
// effects) and safe for concurrent use, and both follow the look-aside
// discipline the memcache architecture prescribes: the application
// writes the store first, then updates or invalidates the cache, so a
// cache miss always refills with the latest committed value. The
// cluster tests use exactly that to prove read-your-write across
// replica churn — a freshly added replica starts cold and must refill
// through one of these stores.
package backend

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rwp/internal/fsatomic"
	"rwp/internal/live"
)

// Map is an in-memory key-value store. The zero value is not usable;
// call NewMap.
type Map struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMap returns an empty store.
func NewMap() *Map { return &Map{m: make(map[string][]byte)} }

// Put stores a copy of val under key.
func (s *Map) Put(key string, val []byte) {
	v := append([]byte(nil), val...)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// Get returns a copy of key's value, or nil when absent.
func (s *Map) Get(key string) []byte {
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return append([]byte(nil), v...)
}

// Delete removes key.
func (s *Map) Delete(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Len returns the number of stored keys.
func (s *Map) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Loader adapts the store to the cache's read-allocate hook: a Get
// miss refills with the store's current value (nil when the key is
// absent — the cache then reports a plain miss).
func (s *Map) Loader() live.Loader { return s.Get }

// File is a file-backed store: one file per key under a directory.
// Writes are atomic (fsatomic.WriteFile: unique temp file, then
// rename), so a concurrent Loader read sees either the old or the new
// value, never a torn one. No lock is held across filesystem calls:
// temp names are unique per writer, and rename/remove are atomic on
// their own.
type File struct {
	dir string
}

// maxFileKey bounds the key length the file store accepts: the hex
// file name must stay under common 255-byte filename limits.
const maxFileKey = 120

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &File{dir: dir}, nil
}

// path maps a key to its file. Keys are hex-encoded so any byte
// sequence — separators, dots, NULs — yields a flat, collision-free
// file name; the encoding is total and injective, so distinct keys
// never share a file.
func (s *File) path(key string) (string, error) {
	if len(key) > maxFileKey {
		return "", fmt.Errorf("backend: key length %d exceeds file-store max %d", len(key), maxFileKey)
	}
	return filepath.Join(s.dir, hex.EncodeToString([]byte(key))+".v"), nil
}

// Put stores val under key.
func (s *File) Put(key string, val []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(p, val, 0o644)
}

// Get returns key's value, or nil when absent. Unexpected filesystem
// errors are also reported as absent — the Loader contract has no
// error channel — so Put is the only place store health surfaces.
func (s *File) Get(key string) []byte {
	p, err := s.path(key)
	if err != nil {
		return nil
	}
	v, err := os.ReadFile(p)
	if err != nil {
		return nil
	}
	return v
}

// Delete removes key; deleting an absent key is a no-op.
func (s *File) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Loader adapts the store to the cache's read-allocate hook.
func (s *File) Loader() live.Loader { return s.Get }
