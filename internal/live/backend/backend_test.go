package backend

import (
	"bytes"
	"strings"
	"testing"

	"rwp/internal/live"
)

func TestMapStoreBasics(t *testing.T) {
	s := NewMap()
	if got := s.Get("missing"); got != nil {
		t.Fatalf("Get on empty store = %q, want nil", got)
	}
	s.Put("k", []byte("v1"))
	if got := s.Get("k"); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Get = %q, want v1", got)
	}
	s.Put("k", []byte("v2"))
	if got := s.Get("k"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("Get after overwrite = %q, want v2", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Delete("k")
	if got := s.Get("k"); got != nil {
		t.Fatalf("Get after Delete = %q, want nil", got)
	}
}

// TestMapStoreCopies pins the aliasing contract: the store never
// shares buffers with callers in either direction.
func TestMapStoreCopies(t *testing.T) {
	s := NewMap()
	in := []byte("value")
	s.Put("k", in)
	in[0] = 'X'
	out := s.Get("k")
	if !bytes.Equal(out, []byte("value")) {
		t.Fatalf("store aliased caller's Put buffer: %q", out)
	}
	out[0] = 'Y'
	if got := s.Get("k"); !bytes.Equal(got, []byte("value")) {
		t.Fatalf("store aliased Get result buffer: %q", got)
	}
}

func TestFileStoreBasics(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Get("missing"); got != nil {
		t.Fatalf("Get on empty store = %q, want nil", got)
	}
	if err := s.Put("a/b.c", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("a/b.c"); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Get = %q, want v1", got)
	}
	if err := s.Put("a/b.c", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("a/b.c"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("Get after overwrite = %q, want v2", got)
	}
	// Distinct keys that only differ in bytes hostile to file names.
	if err := s.Put("a.b/c", []byte("other")); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("a/b.c"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("sibling key clobbered a/b.c: %q", got)
	}
	if err := s.Delete("a/b.c"); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("a/b.c"); got != nil {
		t.Fatalf("Get after Delete = %q, want nil", got)
	}
	if err := s.Delete("a/b.c"); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
}

func TestFileStoreKeyLengthLimit(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("k", maxFileKey+1)
	if err := s.Put(long, []byte("v")); err == nil {
		t.Fatal("Put accepted an over-limit key")
	}
	if got := s.Get(long); got != nil {
		t.Fatalf("Get of over-limit key = %q, want nil", got)
	}
	ok := strings.Repeat("k", maxFileKey)
	if err := s.Put(ok, []byte("v")); err != nil {
		t.Fatalf("Put at the limit: %v", err)
	}
}

// TestReadYourWriteThroughCache drives the look-aside pattern the
// cluster relies on: write the store, invalidate nothing (the cache is
// cold), and a cache Get must fill with the store's latest value —
// including after the cache's sets are reset, which is exactly what
// happens when a shard replica is re-added.
func TestReadYourWriteThroughCache(t *testing.T) {
	stores := map[string]interface {
		Loader() live.Loader
	}{}
	stores["map"] = NewMap()
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["file"] = fs

	put := func(name string, s interface{ Loader() live.Loader }, key string, val []byte) {
		switch st := s.(type) {
		case *Map:
			st.Put(key, val)
		case *File:
			if err := st.Put(key, val); err != nil {
				t.Fatalf("%s: Put: %v", name, err)
			}
		}
	}

	for _, name := range []string{"map", "file"} {
		s := stores[name]
		cfg := live.Config{Sets: 64, Ways: 4, Shards: 4, Policy: "lru", Loader: s.Loader()}
		c, err := live.New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		put(name, s, "k", []byte("v1"))
		if v, _ := c.Get("k"); !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("%s: cold Get = %q, want fill v1", name, v)
		}
		// The store moves on while the cache still holds v1; resetting the
		// cache (the replica re-add path) must expose the newer value.
		put(name, s, "k", []byte("v2"))
		if v, _ := c.Get("k"); !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("%s: cached Get = %q, want stale v1 (look-aside)", name, v)
		}
		c.ResetRange(0, 64)
		if v, _ := c.Get("k"); !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("%s: Get after reset = %q, want refill v2", name, v)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants after reset: %v", name, err)
		}
	}
}
