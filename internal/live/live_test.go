package live

import (
	"fmt"
	"testing"
)

// tinyConfig is a 2-set × 2-way single-shard cache for semantics tests.
func tinyConfig(policy string) Config {
	cfg := DefaultConfig()
	cfg.Sets = 2
	cfg.Ways = 2
	cfg.Shards = 1
	cfg.Policy = policy
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 2, Shards: 1, Policy: "lru"},
		{Sets: 3, Ways: 2, Shards: 1, Policy: "lru"},
		{Sets: 4, Ways: 0, Shards: 1, Policy: "lru"},
		{Sets: 4, Ways: 2, Shards: 0, Policy: "lru"},
		{Sets: 4, Ways: 2, Shards: 3, Policy: "lru"},
		{Sets: 4, Ways: 2, Shards: 1, Policy: "fifo"},
		{Sets: 4, Ways: 2, Shards: 1, Policy: "rwp"}, // zero RWP config
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: Validate accepted %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New accepted %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, pol := range []string{"lru", "rwp"} {
		c := mustNew(t, tinyConfig(pol))
		if v, hit := c.Get("a"); hit || v != nil {
			t.Fatalf("%s: Get on empty cache = (%v, %v)", pol, v, hit)
		}
		if !c.Put("a", []byte("alpha")) {
			t.Fatalf("%s: first Put(a) not an insert", pol)
		}
		if c.Put("a", []byte("alpha2")) {
			t.Fatalf("%s: second Put(a) reported insert", pol)
		}
		v, hit := c.Get("a")
		if !hit || string(v) != "alpha2" {
			t.Fatalf("%s: Get(a) = (%q, %v), want (alpha2, true)", pol, v, hit)
		}
		s := c.Stats()
		if s.Gets != 2 || s.GetHits != 1 || s.GetMisses != 1 {
			t.Errorf("%s: gets=%d hits=%d misses=%d, want 2/1/1", pol, s.Gets, s.GetHits, s.GetMisses)
		}
		if s.Puts != 2 || s.PutHits != 1 || s.PutInserts != 1 {
			t.Errorf("%s: puts=%d hits=%d inserts=%d, want 2/1/1", pol, s.Puts, s.PutHits, s.PutInserts)
		}
		if s.Entries != 1 || s.DirtyEntries != 1 {
			t.Errorf("%s: entries=%d dirty=%d, want 1/1", pol, s.Entries, s.DirtyEntries)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestLoaderBackfillIsCleanFill(t *testing.T) {
	cfg := tinyConfig("rwp")
	loads := 0
	cfg.Loader = func(key string) []byte {
		loads++
		return []byte("v:" + key)
	}
	c := mustNew(t, cfg)
	v, hit := c.Get("k")
	if hit || string(v) != "v:k" {
		t.Fatalf("Get miss with loader = (%q, %v), want (v:k, false)", v, hit)
	}
	if loads != 1 {
		t.Fatalf("loader called %d times, want 1", loads)
	}
	s := c.Stats()
	if s.Loads != 1 || s.Fills != 1 || s.FillsDirty != 0 {
		t.Fatalf("loads=%d fills=%d fillsDirty=%d, want 1/1/0", s.Loads, s.Fills, s.FillsDirty)
	}
	if s.Entries != 1 || s.DirtyEntries != 0 {
		t.Fatalf("backfill installed dirty: entries=%d dirty=%d", s.Entries, s.DirtyEntries)
	}
	// The backfilled line is resident now.
	if v, hit := c.Get("k"); !hit || string(v) != "v:k" {
		t.Fatalf("Get after backfill = (%q, %v)", v, hit)
	}
	if loads != 1 {
		t.Fatalf("loader re-called on a hit (%d calls)", loads)
	}
	// A Put dirties the resident clean line.
	c.Put("k", []byte("w"))
	if s := c.Stats(); s.DirtyEntries != 1 || s.PutHits != 1 {
		t.Fatalf("overwrite: dirty=%d putHits=%d, want 1/1", s.DirtyEntries, s.PutHits)
	}
}

func TestReturnedValueIsACopy(t *testing.T) {
	c := mustNew(t, tinyConfig("lru"))
	buf := []byte("orig")
	c.Put("k", buf)
	buf[0] = 'X' // caller mutates its slice after Put
	v, _ := c.Get("k")
	if string(v) != "orig" {
		t.Fatalf("Put did not copy: got %q", v)
	}
	v[0] = 'Y' // caller mutates the returned slice
	v2, _ := c.Get("k")
	if string(v2) != "orig" {
		t.Fatalf("Get did not copy: got %q", v2)
	}
}

func TestEvictionAccounting(t *testing.T) {
	cfg := tinyConfig("lru")
	cfg.Sets, cfg.Shards = 1, 1 // one set of two ways: third insert evicts
	c := mustNew(t, cfg)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	s := c.Stats()
	if s.Fills != 5 || s.Evictions != 3 || s.DirtyEvictions != 3 {
		t.Fatalf("fills=%d evictions=%d dirtyEvictions=%d, want 5/3/3", s.Fills, s.Evictions, s.DirtyEvictions)
	}
	if s.Entries != 2 {
		t.Fatalf("entries=%d, want 2 (capacity)", s.Entries)
	}
	// LRU: the two most recent keys survive.
	if _, hit := c.Get("k4"); !hit {
		t.Error("k4 (MRU) evicted")
	}
	if _, hit := c.Get("k0"); hit {
		t.Error("k0 (LRU) survived 3 evictions in a 2-way set")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRWPRetargetsByOperationCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 4, 4, 2
	cfg.RWP.Interval = 64
	cfg.Loader = func(key string) []byte { return []byte(key) }
	c := mustNew(t, cfg)
	// Mixed read/write traffic over a footprint larger than capacity.
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("k%d", i%64)
		if i%4 == 0 {
			c.Put(key, []byte("w"))
		} else {
			c.Get(key)
		}
	}
	s := c.Stats()
	if s.Retargets == 0 {
		t.Fatal("no repartitionings after 4096 ops with interval 64")
	}
	if len(s.TargetHist) != cfg.Ways+1 {
		t.Fatalf("TargetHist len %d, want %d", len(s.TargetHist), cfg.Ways+1)
	}
	var sets uint64
	for _, n := range s.TargetHist {
		sets += n
	}
	if sets != uint64(cfg.Sets) {
		t.Fatalf("TargetHist covers %d sets, want %d", sets, cfg.Sets)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	cfg := tinyConfig("rwp")
	cfg.Record = true
	c := mustNew(t, cfg)
	c.Put("k", []byte("v"))
	c.Get("k")
	c.ResetStats()
	s := c.Stats()
	if s.Gets != 0 || s.Puts != 0 || s.Fills != 0 {
		t.Fatalf("counters survived reset: %+v", s.Counters)
	}
	if s.Entries != 1 {
		t.Fatalf("reset dropped contents: entries=%d", s.Entries)
	}
	if v, hit := c.Get("k"); !hit || string(v) != "v" {
		t.Fatalf("Get after reset = (%q, %v)", v, hit)
	}
	pr := c.ProbeStats()
	if pr == nil {
		t.Fatal("ProbeStats nil with Record set")
	}
	if got := pr.Classes[0].Accesses; got != 1 {
		t.Fatalf("probe load accesses after reset = %d, want 1 (the post-reset Get)", got)
	}
}

func TestProbeStatsMirrorsCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 16, 4, 4
	cfg.Record = true
	cfg.Loader = func(key string) []byte { return []byte(key) }
	c := mustNew(t, cfg)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i%90)
		if i%3 == 0 {
			c.Put(key, []byte("v"))
		} else {
			c.Get(key)
		}
	}
	s := c.Stats()
	pr := c.ProbeStats()
	if pr.Classes[0].Accesses != s.Gets || pr.Classes[0].Hits != s.GetHits {
		t.Errorf("probe load counters %+v disagree with stats gets=%d hits=%d", pr.Classes[0], s.Gets, s.GetHits)
	}
	if pr.Classes[1].Accesses != s.Puts || pr.Classes[1].Hits != s.PutHits {
		t.Errorf("probe store counters %+v disagree with stats puts=%d hits=%d", pr.Classes[1], s.Puts, s.PutHits)
	}
	if pr.Classes[0].Fills+pr.Classes[1].Fills != s.Fills {
		t.Errorf("probe fills %d+%d != stats fills %d", pr.Classes[0].Fills, pr.Classes[1].Fills, s.Fills)
	}
	if pr.Evictions() != s.Evictions || pr.EvictDirty != s.DirtyEvictions {
		t.Errorf("probe evictions %d/%d disagree with stats %d/%d",
			pr.Evictions(), pr.EvictDirty, s.Evictions, s.DirtyEvictions)
	}
	if c.ProbeStats() == nil {
		t.Error("ProbeStats became nil")
	}
	cNoRec := mustNew(t, tinyConfig("lru"))
	if cNoRec.ProbeStats() != nil {
		t.Error("ProbeStats non-nil without Record")
	}
}

func TestHashKeyStable(t *testing.T) {
	// Pin a few values: the hash decides set placement, so a silent
	// change would reshuffle every deployment's key layout.
	pinned := map[string]uint64{
		"":    0xf52a15e9a9b5e89b,
		"a":   0x02c0bdbf481420f8,
		"key": 0x487eb6f7e0ea7e7c,
	}
	for k, want := range pinned {
		if got := HashKey(k); got != want {
			t.Errorf("HashKey(%q) = %#x, want %#x", k, got, want)
		}
	}
	if HashKey("a") == HashKey("b") {
		t.Error("trivial collision")
	}
}

func TestCapacityAndConfig(t *testing.T) {
	cfg := tinyConfig("lru")
	c := mustNew(t, cfg)
	if c.Capacity() != 4 {
		t.Errorf("Capacity = %d, want 4", c.Capacity())
	}
	if got := c.Config().Policy; got != "lru" {
		t.Errorf("Config().Policy = %q", got)
	}
}
