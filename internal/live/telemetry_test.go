package live

import (
	"bytes"
	"reflect"
	"strconv"
	"testing"

	"rwp/internal/probe"
)

// sinkProbe collects request events in arrival order (test double for
// probe.ReqLogWriter). Values are copied: the capture contract says
// sinks must not retain the caller's slice.
type sinkProbe struct {
	evs []probe.ReqEvent
}

func (s *sinkProbe) ReqEvent(ev probe.ReqEvent) {
	ev.Value = append([]byte(nil), ev.Value...)
	s.evs = append(s.evs, ev)
}

// TestCostConservation: every completed Get and Put observes exactly
// one cost, so the histogram's N equals the op count — at any shard
// count, with identical buckets (the cost model reads only set-level
// state).
func TestCostConservation(t *testing.T) {
	var ref probe.CostHist
	for _, shards := range []int{1, 4, 16} {
		cfg := rangeTestConfig()
		cfg.Shards = shards
		c := mustNew(t, cfg)
		fillRangeTest(c, 20000)
		s := c.Stats()
		if got, want := s.CostHist.N(), s.Gets+s.Puts; got != want {
			t.Fatalf("shards=%d: hist N %d != gets+puts %d", shards, got, want)
		}
		if shards == 1 {
			ref = s.CostHist
			if ref.N() == 0 {
				t.Fatal("stream observed no costs")
			}
			continue
		}
		if !reflect.DeepEqual(s.CostHist.Buckets, ref.Buckets) {
			t.Fatalf("shards=%d: cost histogram differs from shards=1:\n%+v\n%+v",
				shards, s.CostHist.Buckets, ref.Buckets)
		}
	}
}

// TestRetargetDirectionSplit: the direction counters partition the
// retarget count, and survive range partitioning like every other
// field.
func TestRetargetDirectionSplit(t *testing.T) {
	c := mustNew(t, rangeTestConfig())
	fillRangeTest(c, 40000)
	s := c.Stats()
	if s.Retargets == 0 {
		t.Fatal("stream triggered no retargets")
	}
	if s.RetargetUp+s.RetargetDown+s.RetargetSame != s.Retargets {
		t.Fatalf("up %d + down %d + same %d != retargets %d",
			s.RetargetUp, s.RetargetDown, s.RetargetSame, s.Retargets)
	}
	var sum Stats
	for lo := 0; lo < 64; lo += 16 {
		sum.Add(c.StatsRange(lo, lo+16))
	}
	if sum.RetargetUp != s.RetargetUp || sum.RetargetDown != s.RetargetDown ||
		sum.RetargetSame != s.RetargetSame {
		t.Fatalf("range partition changed direction counters: %+v vs %+v",
			sum, s)
	}
	if !reflect.DeepEqual(sum.CostHist.Buckets, s.CostHist.Buckets) {
		t.Fatal("range partition changed the cost histogram")
	}
}

// TestProbeStatsCarriesCosts: the merged recorder's Costs equals the
// stats document's histogram — the node-journal path and the /stats
// path must tell one story.
func TestProbeStatsCarriesCosts(t *testing.T) {
	c := mustNew(t, rangeTestConfig())
	fillRangeTest(c, 10000)
	rec := c.ProbeStats()
	if rec == nil {
		t.Fatal("Record=true but no recorder")
	}
	if !reflect.DeepEqual(rec.Costs.Buckets, c.Stats().CostHist.Buckets) {
		t.Fatalf("recorder costs %+v != stats costs %+v", rec.Costs.Buckets, c.Stats().CostHist.Buckets)
	}
}

// TestResetStatsClearsCosts: ResetStats starts a fresh measurement
// region — op counters and cost observations go to zero together.
func TestResetStatsClearsCosts(t *testing.T) {
	c := mustNew(t, rangeTestConfig())
	fillRangeTest(c, 5000)
	c.ResetStats()
	s := c.Stats()
	if s.CostHist.N() != 0 {
		t.Fatalf("cost histogram survived ResetStats: N=%d", s.CostHist.N())
	}
	fillRangeTest(c, 1000)
	s = c.Stats()
	if s.CostHist.N() != s.Gets+s.Puts {
		t.Fatalf("post-reset conservation broken: N %d, ops %d", s.CostHist.N(), s.Gets+s.Puts)
	}
}

// TestReqLogCapture pins the capture hooks end to end: one event per
// op in stream order, outcomes matching the API results, Put values
// recorded, the global set index shard-layout independent, and —
// crucial for the replay equivalence proof — capture does not perturb
// the stats document.
func TestReqLogCapture(t *testing.T) {
	stream := func(c *Cache) {
		for i := 0; i < 3000; i++ {
			key := "k" + strconv.Itoa(i%70)
			if i%3 == 0 {
				c.Put(key, []byte("v"+strconv.Itoa(i)))
			} else {
				c.Get(key)
			}
		}
	}

	var captured [][]probe.ReqEvent
	var statsWith, statsWithout []byte
	for _, shards := range []int{1, 8} {
		cfg := rangeTestConfig()
		cfg.Shards = shards
		sink := &sinkProbe{}
		cfg.ReqLog = sink
		c := mustNew(t, cfg)
		stream(c)
		captured = append(captured, sink.evs)
		if shards == 1 {
			js, err := c.StatsJSON()
			if err != nil {
				t.Fatal(err)
			}
			statsWith = js
		}
	}
	// Same stream, no sink: the stats bytes must be identical (capture
	// is observe-only).
	{
		c := mustNew(t, rangeTestConfig())
		stream(c)
		js, err := c.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		statsWithout = js
	}
	if !bytes.Equal(statsWith, statsWithout) {
		t.Fatal("attaching a ReqLog sink changed the stats document")
	}
	if !reflect.DeepEqual(captured[0], captured[1]) {
		t.Fatal("captured event stream differs across shard counts")
	}

	evs := captured[0]
	if len(evs) != 3000 {
		t.Fatalf("captured %d events for 3000 ops", len(evs))
	}
	// Replaying the captured stream into a fresh cache reproduces the
	// original stats — the recorder→replayer contract at the API level.
	c2 := mustNew(t, rangeTestConfig())
	for _, ev := range evs {
		if ev.Put {
			c2.Put(ev.Key, ev.Value)
		} else {
			c2.Get(ev.Key)
		}
	}
	js2, err := c2.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js2, statsWith) {
		t.Fatal("replaying the captured stream produced different stats bytes")
	}
	// Spot-check event shape: sets in range, outcomes legal, costs
	// positive, Put events carry values.
	for i, ev := range evs {
		if ev.Set < 0 || ev.Set >= 64 {
			t.Fatalf("event %d: set %d out of range", i, ev.Set)
		}
		if ev.Cost <= 0 {
			t.Fatalf("event %d: cost %d", i, ev.Cost)
		}
		switch ev.Outcome {
		case probe.OutcomeHit, probe.OutcomeMiss, probe.OutcomeFill:
			if ev.Put {
				t.Fatalf("event %d: put with get outcome %q", i, ev.Outcome)
			}
		case probe.OutcomeInsert, probe.OutcomeOverwrite:
			if !ev.Put || ev.Value == nil {
				t.Fatalf("event %d: bad put event %+v", i, ev)
			}
		default:
			t.Fatalf("event %d: unknown outcome %q", i, ev.Outcome)
		}
	}
}

// TestReqLogCaptureWithLoader: loader fills are captured as "fill"
// with the miss cost, and the capture happens after the fill resolves.
func TestReqLogCaptureWithLoader(t *testing.T) {
	cfg := tinyConfig("rwp")
	cfg.Loader = func(key string) []byte { return []byte("loaded:" + key) }
	sink := &sinkProbe{}
	cfg.ReqLog = sink
	c := mustNew(t, cfg)
	c.Get("a")
	c.Get("a")
	if len(sink.evs) != 2 {
		t.Fatalf("%d events", len(sink.evs))
	}
	if sink.evs[0].Outcome != probe.OutcomeFill || sink.evs[0].Cost < CostMiss {
		t.Fatalf("loader miss event %+v", sink.evs[0])
	}
	if sink.evs[1].Outcome != probe.OutcomeHit || sink.evs[1].Cost != CostHit {
		t.Fatalf("hit event %+v", sink.evs[1])
	}
}
