package live

import (
	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/probe"
)

// This file is the live cache's stampede defense: what happens on a
// Get miss when Config.Coalesce and/or Config.NegOps are set. The
// look-aside design's classic failure mode is a miss storm — many
// clients miss on one key at once and fan out as that many concurrent
// Loader calls, overloading the very backend the cache exists to
// shield. Three mechanisms close it:
//
//   - Singleflight coalescing (Coalesce): the first miss on a key
//     registers a fillCall in its shard's fills map and becomes the
//     leader — the only goroutine that calls the Loader. Misses that
//     arrive while the call is in flight block on the fillCall's done
//     channel and share its result (counted CoalescedLoads). A miss
//     that relocks and finds the key already resident joins the
//     just-landed fill the same way — the storm's tail.
//   - Negative caching (NegOps): when the Loader reports a key absent
//     (nil), the set remembers that verdict for NegOps operations on
//     the set's own op-count clock (counted NegInserts); Gets inside
//     the window are answered locally (NegHits). A Put of the key, or
//     a Loader fill, invalidates the entry immediately, so negative
//     answers never shadow a write. The op-count clock — never wall
//     clock — keeps expiry deterministic and shard-count invariant.
//   - Lease tokens (LeaseOps): a fillCall's registration op-count is
//     its lease. If the leader's Loader call outlives LeaseOps set
//     operations (stuck backend, dead goroutine), the next missing Get
//     deposes it (LeaseExpires), registers a fresh fillCall, and
//     fetches itself; the deposed leader's install is then demoted to
//     a LoadRace by the ordinary resident-recheck.
//
// Counter conservation: with a Loader configured, every Get miss
// resolves to exactly one of Loads, LoadRaces, LoadAbsents,
// CoalescedLoads, NegHits, or NegInserts, so at rest
//
//	GetMisses == Loads + LoadRaces + LoadAbsents
//	           + CoalescedLoads + NegHits + NegInserts
//
// — the law the stress tests assert and CheckInvariants bounds (while
// a fill is in flight its miss is counted but not yet resolved, so the
// right side may trail, never lead).
//
// Determinism: all of this engages only on the miss-with-Loader path
// and only collapses genuinely concurrent work, so a single-goroutine
// run with Coalesce on is bit-identical to one with it off; negative
// caching changes behavior (that is its job) but deterministically —
// same stream in, same counters out, at any shard count.
//
// Reentrancy caveat: with Coalesce on, a Loader that reentrantly Gets
// the key it was asked to load would wait on its own fillCall —
// deadlock. Reentrant Puts (the TestReentrantLoader contract) remain
// fine: Put never touches the fills map.

// fillCall is one in-flight coalesced Loader call.
type fillCall struct {
	born uint64        // the set's op-count at registration (the lease clock)
	done chan struct{} // closed by the leader once val is final
	val  []byte        // the Loader's result; immutable after done closes
}

// negEntry is one negative-cache verdict: key was absent from the
// backing store, believed until the set's op-count reaches exp.
type negEntry struct {
	key string
	exp uint64
}

// opCount is the set's operation clock: total completed-or-started
// Gets and Puts. Pure set-local state, so everything timed by it is
// shard-count invariant by construction.
func (s *lset) opCount() uint64 { return s.ops.Gets + s.ops.Puts }

// negLookup reports whether key is negatively cached right now, lazily
// dropping the entry if its window has passed. Linear scan, like find:
// the slice is bounded by the set's associativity.
func (s *lset) negLookup(key string) bool {
	now := s.opCount()
	for i := range s.negs {
		if s.negs[i].key != key {
			continue
		}
		if now < s.negs[i].exp {
			return true
		}
		s.negs = append(s.negs[:i], s.negs[i+1:]...)
		return false
	}
	return false
}

// negInsert records (or refreshes) an absence verdict expiring at exp.
// The slice is capped at limit entries; when full, the soonest-expiring
// entry makes room (ties break to the oldest slot, deterministically).
func (s *lset) negInsert(key string, exp uint64, limit int) {
	for i := range s.negs {
		if s.negs[i].key == key {
			s.negs[i].exp = exp
			return
		}
	}
	if len(s.negs) >= limit {
		victim := 0
		for i := 1; i < len(s.negs); i++ {
			if s.negs[i].exp < s.negs[victim].exp {
				victim = i
			}
		}
		s.negs = append(s.negs[:victim], s.negs[victim+1:]...)
	}
	s.negs = append(s.negs, negEntry{key: key, exp: exp})
}

// negDelete drops key's absence verdict, if any — called whenever the
// key provably exists again (a Put insert or a Loader fill). A no-op
// on the nil slice, so undefended configurations pay nothing.
func (s *lset) negDelete(key string) {
	for i := range s.negs {
		if s.negs[i].key == key {
			s.negs = append(s.negs[:i], s.negs[i+1:]...)
			return
		}
	}
}

// missDefended finishes a Get miss with the stampede defenses engaged.
// Get has already counted the miss (Gets, GetMisses, the probe miss
// event) and released the shard lock; this function owns the rest of
// the operation — it takes and releases the lock itself and does all
// remaining cost/telemetry accounting. Exactly one of the six
// conservation counters is incremented on every path.
func (c *Cache) missDefended(sh *shard, ls *lset, key string, set int, h uint64, ai cache.AccessInfo) ([]byte, bool) {
	sh.mu.Lock()
	if way := ls.find(key); way >= 0 {
		// The key landed between Get's miss probe and here — a writer
		// or another miss's fill. Join the just-landed fill instead of
		// fetching again: this is the tail of a storm, and exactly the
		// duplicate Loader call the undefended path issues (then counts
		// as a LoadRace). Unreachable single-goroutine: the window
		// between unlock and relock is empty without concurrency.
		e := &ls.entries[way]
		ls.ops.CoalescedLoads++
		ls.costs.Observe(CostCoalesced)
		ls.costsClean.Observe(CostCoalesced)
		//rwplint:allow hotalloc — copy-out is the Get API contract, as on the hit path
		v := append([]byte(nil), e.val...)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeFill, CostCoalesced)
		return v, false
	}
	if c.cfg.NegOps > 0 && ls.negLookup(key) {
		ls.ops.NegHits++
		ls.costs.Observe(CostNegHit)
		ls.costsClean.Observe(CostNegHit)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeMiss, CostNegHit)
		return nil, false
	}
	if c.cfg.Coalesce {
		if fc, ok := sh.fills[key]; ok {
			if c.cfg.LeaseOps == 0 || ls.opCount()-fc.born < c.cfg.LeaseOps {
				// A fill for this key is in flight and its lease is
				// live: wait for the leader's result instead of issuing
				// a second backend call.
				ls.ops.CoalescedLoads++
				sh.mu.Unlock()
				<-fc.done
				v := cloneBytes(fc.val)
				outcome := probe.OutcomeFill
				if v == nil {
					outcome = probe.OutcomeMiss
				}
				sh.mu.Lock()
				ls.costs.Observe(CostCoalesced)
				ls.costsClean.Observe(CostCoalesced)
				sh.mu.Unlock()
				c.logGet(key, set, outcome, CostCoalesced)
				return v, false
			}
			// The leader's lease ran out: depose it so a stuck or dead
			// fill cannot park the key forever. Our fresh fillCall
			// replaces the map entry; the old leader's install guard
			// (fills[key] == fc) keeps it from deleting ours, and the
			// resident-recheck demotes whichever fetch lands second to
			// a LoadRace.
			ls.ops.LeaseExpires++
		}
	}
	var fc *fillCall
	if c.cfg.Coalesce {
		fc = &fillCall{born: ls.opCount(), done: make(chan struct{})}
		sh.fills[key] = fc
	}
	sh.mu.Unlock()
	v := c.cfg.Loader(key)
	sh.mu.Lock()
	if fc != nil {
		// Publish before waking waiters: the val write is ordered
		// before close(done), and nothing writes val afterwards.
		fc.val = v
		if sh.fills[key] == fc {
			delete(sh.fills, key)
		}
		close(fc.done)
	}
	if ls.find(key) >= 0 {
		// Lost the install race to a concurrent writer (or to the
		// leader that replaced an expired lease of ours): the resident
		// entry wins, exactly as on the undefended path.
		ls.ops.LoadRaces++
		ls.costs.Observe(CostMiss)
		ls.costsClean.Observe(CostMiss)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeFill, CostMiss)
		return v, false
	}
	if v == nil {
		// The backend says absent: nothing installs (absence is not a
		// value). With NegOps the verdict is remembered, so the next
		// NegOps ops on this set answer locally; without it this is an
		// ordinary absent fetch, same as the undefended path.
		if c.cfg.NegOps > 0 {
			ls.ops.NegInserts++
			ls.negInsert(key, ls.opCount()+c.cfg.NegOps, c.cfg.Ways)
		} else {
			ls.ops.LoadAbsents++
		}
		ls.costs.Observe(CostMiss)
		ls.costsClean.Observe(CostMiss)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeMiss, CostMiss)
		return nil, false
	}
	ls.ops.Loads++
	ls.negDelete(key)
	cost := CostMiss
	if ls.fill(sh, key, mem.LineAddr(h), v, ai, false) {
		cost += CostDirtyEvict
	}
	ls.costs.Observe(cost)
	ls.costsClean.Observe(cost)
	sh.mu.Unlock()
	c.logGet(key, set, probe.OutcomeFill, cost)
	return v, false
}

// cloneBytes copies a waiter's view of the leader's value (nil stays
// nil: an absent key is absent for every waiter).
func cloneBytes(v []byte) []byte {
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}
