package live

import (
	"strconv"
	"testing"
)

func rangeTestConfig() Config {
	return Config{
		Sets: 64, Ways: 4, Shards: 4,
		Policy: "rwp", RWP: DefaultRWPConfig(),
		Record: true,
	}
}

// fillRangeTest drives a deterministic mixed stream so every stats
// field is nonzero.
func fillRangeTest(c *Cache, ops int) {
	for i := 0; i < ops; i++ {
		key := "k" + strconv.Itoa(i%500)
		if i%3 == 0 {
			c.Put(key, []byte("v"))
		} else {
			c.Get(key)
		}
	}
}

// TestStatsRangePartition pins the identity the cluster's merged
// document rests on: summing StatsRange over any partition of [0,
// Sets) reproduces Stats() exactly, whatever the partition's grain and
// however it aligns with the lock shards.
func TestStatsRangePartition(t *testing.T) {
	c, err := New(rangeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	fillRangeTest(c, 40000)
	want := c.Stats()
	for _, step := range []int{1, 4, 16, 64} {
		var sum Stats
		for lo := 0; lo < 64; lo += step {
			part := c.StatsRange(lo, lo+step)
			sum.Add(part)
		}
		if sum.Counters != want.Counters ||
			sum.Entries != want.Entries || sum.DirtyEntries != want.DirtyEntries ||
			sum.Retargets != want.Retargets {
			t.Fatalf("step %d: summed ranges %+v != Stats %+v", step, sum, want)
		}
		if len(sum.TargetHist) != len(want.TargetHist) {
			t.Fatalf("step %d: TargetHist lengths %d vs %d", step, len(sum.TargetHist), len(want.TargetHist))
		}
		for d := range want.TargetHist {
			if sum.TargetHist[d] != want.TargetHist[d] {
				t.Fatalf("step %d: TargetHist[%d] = %d, want %d", step, d, sum.TargetHist[d], want.TargetHist[d])
			}
		}
	}
	if want.Entries == 0 || want.DirtyEntries == 0 || want.Retargets == 0 {
		t.Fatalf("stream left stats fields zero (%+v) — partition check is weak", want)
	}
}

func TestStatsRangeBounds(t *testing.T) {
	c, err := New(rangeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 8}, {0, 65}, {8, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StatsRange(%d, %d) did not panic", r[0], r[1])
				}
			}()
			c.StatsRange(r[0], r[1])
		}()
	}
}

// TestResetRange pins the replica-add cold-start path: the purged
// range empties (occupancy and policy state back to initial), other
// sets are untouched, cumulative op counters survive, and the cache
// keeps its invariants.
func TestResetRange(t *testing.T) {
	c, err := New(rangeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	fillRangeTest(c, 5000)
	before := c.Stats()
	if before.Entries == 0 {
		t.Fatal("stream filled nothing")
	}
	loEntries := c.StatsRange(0, 32).Entries
	hiBefore := c.StatsRange(32, 64)

	purged := c.ResetRange(0, 32)
	if purged != loEntries {
		t.Fatalf("purged %d entries, range held %d", purged, loEntries)
	}
	lo := c.StatsRange(0, 32)
	if lo.Entries != 0 || lo.DirtyEntries != 0 {
		t.Fatalf("reset range still occupied: %+v", lo)
	}
	if lo.Retargets != 0 {
		t.Fatalf("reset range kept policy state: %d retargets", lo.Retargets)
	}
	if lo.Counters != c.StatsRange(0, 32).Counters {
		t.Fatal("stats not stable across back-to-back reads")
	}
	// Cumulative op history survives the purge (the counters are a log,
	// not contents).
	if lo.Counters.Gets == 0 && lo.Counters.Puts == 0 {
		t.Fatal("ResetRange wiped the op counters; they must be cumulative")
	}
	hi := c.StatsRange(32, 64)
	if hi.Entries != hiBefore.Entries || hi.Counters != hiBefore.Counters {
		t.Fatalf("untouched range changed: %+v vs %+v", hi, hiBefore)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reset: %v", err)
	}

	// The reset sets behave like a fresh cache: a key hashing into the
	// purged range misses, refills, and the policy machinery restarts.
	fillRangeTest(c, 5000)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after refill: %v", err)
	}
	if got := c.StatsRange(0, 32).Entries; got == 0 {
		t.Fatal("purged range did not refill")
	}
}

func TestResetRangeBounds(t *testing.T) {
	c, err := New(rangeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("ResetRange out of bounds did not panic")
		}
	}()
	c.ResetRange(0, 128)
}

// TestStatsAddOrderIndependent pins the merge algebra: Add is
// commutative and nil TargetHists are absorbed.
func TestStatsAddOrderIndependent(t *testing.T) {
	a := Stats{Entries: 3, DirtyEntries: 1, Retargets: 2, TargetHist: []uint64{1, 0, 2}}
	a.Gets, a.GetHits = 10, 4
	b := Stats{Entries: 5, TargetHist: []uint64{0, 3, 1}}
	b.Gets, b.Puts = 7, 6
	c := Stats{Entries: 1} // nil TargetHist (LRU contribution)

	var ab Stats
	ab.Add(a)
	ab.Add(b)
	ab.Add(c)
	var ba Stats
	ba.Add(c)
	ba.Add(b)
	ba.Add(a)
	if ab.Counters != ba.Counters || ab.Entries != ba.Entries ||
		ab.DirtyEntries != ba.DirtyEntries || ab.Retargets != ba.Retargets {
		t.Fatalf("Add not commutative: %+v vs %+v", ab, ba)
	}
	for d := range ab.TargetHist {
		if ab.TargetHist[d] != ba.TargetHist[d] {
			t.Fatalf("TargetHist[%d] differs across merge order", d)
		}
	}
	if ab.Gets != 17 || ab.Entries != 9 || ab.TargetHist[1] != 3 {
		t.Fatalf("merge wrong: %+v", ab)
	}
}
