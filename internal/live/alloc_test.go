package live

import (
	"bytes"
	"testing"
)

// TestGetHitAllocs pins the Get-hit path at exactly one heap
// allocation per call: the copy-out of the value, which is the API
// contract (callers own what Get returns). The hotalloc lint suppresses
// exactly that append in Get; this test is the runtime half of the same
// agreement — if either side drifts (a new allocation sneaks in, or the
// copy is eliminated without updating the contract), one of the two
// fails.
func TestGetHitAllocs(t *testing.T) {
	for _, pol := range []string{"lru", "rwp"} {
		c := mustNew(t, tinyConfig(pol))
		c.Put("k", []byte("value-bytes"))
		if _, hit := c.Get("k"); !hit {
			t.Fatalf("%s: warmup Get missed", pol)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, hit := c.Get("k"); !hit {
				t.Fatal("Get missed inside AllocsPerRun")
			}
		})
		//rwplint:allow floateq — AllocsPerRun yields an exact small-integer float; the pin is exact by design
		if allocs != 1 {
			t.Errorf("%s: Get hit allocates %.1f objects/op, want exactly 1 (the copy-out)", pol, allocs)
		}
	}
}

// TestGetMissNoLoaderAllocs pins the other cheap path: a miss without a
// Loader returns (nil, false) and must not allocate at all.
func TestGetMissNoLoaderAllocs(t *testing.T) {
	c := mustNew(t, tinyConfig("rwp"))
	allocs := testing.AllocsPerRun(200, func() {
		if v, hit := c.Get("absent"); hit || v != nil {
			t.Fatal("unexpected hit for absent key")
		}
	})
	//rwplint:allow floateq — AllocsPerRun yields an exact small-integer float; the pin is exact by design
	if allocs != 0 {
		t.Errorf("Get miss (no loader) allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReentrantLoader locks in the new Loader contract: the fetch runs
// with no shard lock held, so a Loader may call back into the cache —
// even installing the very key it was asked to load. Before the
// Loader-outside-lock refactor this deadlocked on the shard mutex.
func TestReentrantLoader(t *testing.T) {
	var c *Cache
	loads := 0
	cfg := tinyConfig("rwp")
	cfg.Loader = func(key string) []byte {
		loads++
		// Reentrant write of the same key: the cache must survive it,
		// and the resident entry it installs must win the race.
		c.Put(key, []byte("from-put"))
		return []byte("from-loader")
	}
	c = mustNew(t, cfg)

	v, hit := c.Get("k")
	if hit {
		t.Fatal("first Get reported a hit on an empty cache")
	}
	// The miss returns what the Loader fetched...
	if !bytes.Equal(v, []byte("from-loader")) {
		t.Fatalf("Get returned %q, want the loaded value", v)
	}
	// ...but the reentrant Put's value stays resident.
	v, hit = c.Get("k")
	if !hit || !bytes.Equal(v, []byte("from-put")) {
		t.Fatalf("second Get = (%q, %v), want the Put-installed value", v, hit)
	}

	s := c.Stats()
	if loads != 1 || s.Loads != 0 || s.LoadRaces != 1 {
		t.Errorf("loads=%d stats.Loads=%d stats.LoadRaces=%d, want 1/0/1 (fetch happened, install lost the race)", loads, s.Loads, s.LoadRaces)
	}
	if s.GetMisses != s.Loads+s.LoadRaces {
		t.Errorf("conservation broken: misses %d != loads %d + races %d", s.GetMisses, s.Loads, s.LoadRaces)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLoaderValueOwnership: the value a miss returns is owned by the
// caller — mutating it must not corrupt the cached copy.
func TestLoaderValueOwnership(t *testing.T) {
	cfg := tinyConfig("lru")
	cfg.Loader = func(key string) []byte { return []byte("fresh") }
	c := mustNew(t, cfg)

	v, _ := c.Get("k")
	v[0] = 'X'
	got, hit := c.Get("k")
	if !hit || !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("cached value corrupted through the miss return: %q (hit=%v)", got, hit)
	}
	// Same ownership rule on the hit path.
	got[0] = 'Y'
	again, _ := c.Get("k")
	if !bytes.Equal(again, []byte("fresh")) {
		t.Fatalf("cached value corrupted through the hit return: %q", again)
	}
}
