// Package live is a sharded, thread-safe, set-associative in-memory
// key-value cache whose per-set replacement policy is the repo's RWP
// mechanism (internal/core) — the paper's clean/dirty partitioning,
// lifted out of the trace-driven simulator and put in front of real
// concurrent get/put traffic.
//
// The mapping from KV operations onto the paper's access classes:
//
//   - Get is a demand load. A hit touches the line; a miss optionally
//     fetches the value from a backing-store Loader and installs it as
//     a *clean* fill (read-allocate), exactly like a demand-load fill
//     in the simulator.
//   - Put is a demand store. A hit overwrites the value and dirties
//     the line; a miss installs the line dirty (write-allocate).
//
// Sharding vs determinism. The cache is split into Shards independent
// lock domains, but the unit of replacement and of RWP's predictor is
// the *set*: every set owns its own policy instance (shadow stacks,
// histograms, dirty-partition target) whose interval clock is the
// set's own operation count — never the wall clock, never a global
// counter. A key maps to a global set index by hash, and a shard is
// just a contiguous run of sets sharing one mutex. Consequently a
// single-goroutine run is bit-identical across repeated runs AND
// across shard counts: resharding moves lock boundaries, not behavior.
// Under concurrent load the per-shard locks serialize each set's
// stream, so all structural invariants hold (stress-tested with
// -race); only the interleaving — and therefore the exact counter
// values — is scheduling-dependent, as for any concurrent cache.
//
// Observability reuses internal/probe: with Config.Record set, each
// shard owns a probe.Recorder (guarded by the shard mutex) that
// receives the same AccessEvent/FillEvent/EvictEvent stream the
// simulator's cache model emits, plus RWP retarget events from the
// per-set policies. ProbeStats merges them order-independently, so
// the /stats payload served by cmd/rwpserve is also shard-count
// invariant.
package live

import (
	"fmt"
	"sync"

	"rwp/internal/cache"
	"rwp/internal/core"
	"rwp/internal/mem"
	"rwp/internal/policy"
	"rwp/internal/probe"
)

// Loader fetches the backing-store value for a key (read-allocate on
// Get misses). It must be deterministic and safe for concurrent use.
// It is called with no shard lock held — a slow backing store stalls
// only the Gets that actually miss, never the whole shard — so a
// Loader may itself call back into the cache (e.g. warm a sibling
// key). If another writer installs the key while the Loader runs, the
// fetched value is still returned but not installed (see Get and the
// LoadRaces counter).
type Loader func(key string) []byte

// Config parameterizes a live cache.
type Config struct {
	// Sets is the total number of sets across all shards (a power of
	// two; capacity = Sets*Ways entries).
	Sets int
	// Ways is the associativity of every set.
	Ways int
	// Shards is the number of independent lock domains; it must divide
	// Sets. More shards means less lock contention, identical behavior.
	Shards int
	// Policy selects the per-set replacement mechanism: "lru" or "rwp".
	Policy string
	// RWP configures the per-set predictor when Policy is "rwp".
	// Interval counts operations on one set between repartitionings.
	RWP core.Config
	// Loader, when non-nil, backfills Get misses with a clean fill.
	Loader Loader
	// Record attaches one probe.Recorder per shard; ProbeStats merges
	// them. Off by default: the disabled path is a nil check per event.
	Record bool
	// ReqLog, when non-nil, receives one probe.ReqEvent per completed
	// Get/Put — the request-stream recorder behind rwpserve -record.
	// Events are emitted with no shard lock held, after the operation's
	// outcome is decided; batch ops (MGET/MPUT) arrive decomposed into
	// per-key events, which is what makes recorded journals
	// transport-invariant. The sink must not retain event values.
	ReqLog probe.ReqProbe
	// Coalesce enables singleflight fill coalescing (fill.go): when
	// several Gets miss on one key concurrently, exactly one calls the
	// Loader and the rest wait for its result (counted CoalescedLoads).
	// Coalescing only collapses genuinely concurrent fills, so
	// single-goroutine behavior — and its bit-identity across runs and
	// shard counts — is unchanged. Requires a Loader to matter.
	Coalesce bool
	// NegOps enables negative caching of Loader misses: a key the
	// Loader reported absent (nil) is remembered for NegOps operations
	// on its set (the set's own op-count clock, never wall clock), and
	// Gets inside that window are answered without consulting the
	// backend (counted NegHits). A Put of the key invalidates the entry
	// immediately. 0 disables; the clock choice keeps expiry
	// deterministic and shard-count invariant.
	NegOps uint64
	// LeaseOps bounds a coalesced fill's lease: once a leader's Loader
	// call has been in flight for LeaseOps operations on its set, the
	// next missing Get deposes it (counted LeaseExpires) and fetches
	// itself, so a stuck or dead lease holder cannot park a key forever.
	// 0 means leases never expire. Requires Coalesce.
	LeaseOps uint64
}

// Modeled per-operation service costs, in abstract backend-work units.
// They are a pure function of the op's outcome and the victim's dirty
// bit — set-level state — so cost streams are deterministic and
// shard-count invariant, and they encode the paper's asymmetry: a read
// miss pays a backing-store round trip, a write allocates locally, and
// evicting a dirty line adds a writeback. RWP's larger read-hit rate
// therefore shows up directly in the cost percentiles /stats reports.
const (
	// CostHit: served from a resident entry (Get hit or Put overwrite).
	CostHit = 1
	// CostMiss: a Get miss — the backing-store round trip, whether it
	// returns a value (Loader fill) or not (404).
	CostMiss = 16
	// CostInsert: a Put installing a new entry (write-allocate; no
	// backing-store read).
	CostInsert = 2
	// CostDirtyEvict: surcharge when the op's fill evicts a dirty
	// entry, modeling the victim's writeback.
	CostDirtyEvict = 4
	// CostCoalesced: a Get miss served by another Get's in-flight (or
	// just-landed) fill of the same key — no backend trip of its own.
	CostCoalesced = 1
	// CostNegHit: a Get miss answered by the negative cache — also no
	// backend trip. Both equal CostHit on purpose: the stampede defenses
	// turn backend round trips into local answers, and the cost stream
	// is where that shows up.
	CostNegHit = 1
)

// DefaultRWPConfig returns the per-set predictor configuration: the
// set itself is the (only) sampler set, and the repartition interval
// is short because it is measured in per-set operations, not global
// accesses (1024 sets at the default geometry each see 1/1024th of
// the traffic).
func DefaultRWPConfig() core.Config {
	return core.Config{
		SamplerSets:        1,
		Interval:           256,
		DecayShift:         1,
		InitialDirtyTarget: -1,
	}
}

// DefaultConfig returns a 16k-entry RWP cache split into 8 shards.
func DefaultConfig() Config {
	return Config{
		Sets:   1024,
		Ways:   16,
		Shards: 8,
		Policy: "rwp",
		RWP:    DefaultRWPConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("live: Sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("live: Ways %d must be positive", c.Ways)
	}
	if c.Shards <= 0 || c.Sets%c.Shards != 0 {
		return fmt.Errorf("live: Shards %d must be positive and divide Sets %d", c.Shards, c.Sets)
	}
	switch c.Policy {
	case "lru":
	case "rwp":
		if err := c.RWP.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("live: unknown policy %q (want lru or rwp)", c.Policy)
	}
	if c.LeaseOps > 0 && !c.Coalesce {
		return fmt.Errorf("live: LeaseOps %d without Coalesce (leases bound coalesced fills)", c.LeaseOps)
	}
	return nil
}

// entry is one resident key-value pair.
type entry struct {
	key   string
	val   []byte
	line  mem.LineAddr // key hash: the policy's line identity
	valid bool
	dirty bool // written at fill or since (RWP's partition criterion)
}

// lset is one cache set. It implements cache.StateReader as a
// single-set view so the simulator's policies plug in unchanged.
type lset struct {
	entries    []entry
	pol        cache.Policy
	rwp        *core.RWP // non-nil iff the policy is RWP
	validCount int
	dirtyCount int
	ops        Counters
	// splits are the partition-attribution counters (hit splits by the
	// line's dirty bit, bypass splits by access class). They exist so a
	// snapshot restore can rebuild the probe recorders exactly, and are
	// maintained unconditionally — like ops, they are cumulative
	// history: ResetRange preserves them, ResetStats clears them.
	splits splitCounters
	// costs is the set's service-cost histogram (one observation per
	// completed Get/Put). Per-set — not per-shard — so StatsRange can
	// attribute costs to ring-shard set ranges and the cluster's merged
	// document stays exact. Like ops, it is cumulative history:
	// ResetRange preserves it, ResetStats clears it.
	costs probe.CostHist
	// costsClean and costsDirty split costs by the partition that
	// served or received the op's line: a Get hit goes by the entry's
	// dirty bit, every other Get (miss, loader fill, race) is clean
	// service — a read miss is or would be a clean fill — and every Put
	// is dirty service, since a write dirties the line. The three
	// histograms conserve: costs == costsClean + costsDirty.
	costsClean probe.CostHist
	costsDirty probe.CostHist
	// negs is the set's negative cache (fill.go): keys the Loader
	// recently reported absent, with op-count expiry deadlines. A
	// bounded slice, not a map — lookups are linear like find, and
	// nothing ever iterates it in map order. Nil unless Config.NegOps.
	negs []negEntry
}

// splitCounters refine the Counters hit/bypass totals by partition.
// Each pair sums to its Counters total (GetHits, PutHits, Bypasses).
type splitCounters struct {
	GetHitsClean uint64 // Get hits on a clean line
	GetHitsDirty uint64 // Get hits on a dirty line
	PutHitsClean uint64 // Put overwrites of a clean line (pre-write state)
	PutHitsDirty uint64 // Put overwrites of an already-dirty line
	BypassLoads  uint64 // bypassed read-allocate fills
	BypassStores uint64 // bypassed write-allocate fills
}

// NumSets implements cache.StateReader.
func (s *lset) NumSets() int { return 1 }

// Ways implements cache.StateReader.
func (s *lset) Ways() int { return len(s.entries) }

// State implements cache.StateReader.
func (s *lset) State(_, way int) cache.LineState {
	e := &s.entries[way]
	return cache.LineState{Tag: e.line, Valid: e.valid, Dirty: e.dirty}
}

// ValidWays implements cache.StateReader.
func (s *lset) ValidWays(int) int { return s.validCount }

// DirtyWays implements cache.StateReader.
func (s *lset) DirtyWays(int) int { return s.dirtyCount }

// find returns the way holding key, or -1.
//
//rwplint:hotpath — linear probe on every Get/Put; must stay allocation-free
func (s *lset) find(key string) int {
	for w := range s.entries {
		if e := &s.entries[w]; e.valid && e.key == key {
			return w
		}
	}
	return -1
}

// shard is one lock domain: a contiguous run of sets plus an optional
// probe recorder, all guarded by mu.
type shard struct {
	mu   sync.Mutex
	sets []lset
	rec  *probe.Recorder // nil unless Config.Record
	// fills tracks in-flight coalesced Loader calls by key (fill.go).
	// Guarded by mu like everything else; nil unless Config.Coalesce.
	// Per shard, not per set: entries are keyed lookups only (never
	// iterated), so the coarser map costs nothing in determinism.
	fills map[string]*fillCall
}

// Cache is the sharded live key-value cache.
type Cache struct {
	cfg      Config
	mask     uint64
	perShard int
	shards   []*shard
	// stampede is true when any miss-storm defense is configured; the
	// Get miss path then detours through missDefended (fill.go).
	stampede bool
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:      cfg,
		mask:     uint64(cfg.Sets - 1),
		perShard: cfg.Sets / cfg.Shards,
		shards:   make([]*shard, cfg.Shards),
	}
	c.stampede = cfg.Loader != nil && (cfg.Coalesce || cfg.NegOps > 0)
	for si := range c.shards {
		sh := &shard{sets: make([]lset, c.perShard)}
		if cfg.Record {
			sh.rec = probe.NewRecorder(0)
		}
		if cfg.Coalesce {
			sh.fills = make(map[string]*fillCall)
		}
		for i := range sh.sets {
			initSet(&sh.sets[i], cfg, sh.rec)
		}
		c.shards[si] = sh
	}
	return c, nil
}

// initSet (re)builds one set to its freshly-constructed state: empty
// entries, zero occupancy, a brand-new policy instance wired to rec.
// The entries backing array is reused when already allocated. The
// operation counters are deliberately left untouched — they are
// cumulative history, and ResetRange must not un-count work that
// happened.
func initSet(ls *lset, cfg Config, rec *probe.Recorder) {
	if ls.entries == nil {
		ls.entries = make([]entry, cfg.Ways)
	} else {
		for w := range ls.entries {
			ls.entries[w] = entry{}
		}
	}
	ls.validCount, ls.dirtyCount = 0, 0
	// The negative cache is content, not history: a reset set starts
	// cold on both sides (ResetRange's read-your-write rule would be
	// violated by a stale "absent" verdict outliving a purge).
	ls.negs = nil
	ls.rwp = nil
	switch cfg.Policy {
	case "rwp":
		p := core.New(cfg.RWP)
		if rec != nil {
			p.SetProbe(rec)
		}
		ls.rwp = p
		ls.pol = p
	default: // "lru", by Validate
		ls.pol = policy.NewLRU()
	}
	ls.pol.Attach(ls)
}

// ResetRange drops every resident entry in the global sets [lo, hi)
// and rebuilds each set's replacement policy from scratch, returning
// the number of entries purged. Operation counters are preserved (they
// are cumulative history); occupancy and policy state (RWP predictor
// histograms, dirty targets, LRU stacks) restart cold, exactly as at
// construction.
//
// The cluster layer calls it when a shard replica is (re)added to a
// node: a node that served the shard before and was dropped may hold
// values that missed writes issued in between, so the replica must
// start cold and refill through its Loader — the read-your-write rule
// for replica churn. It panics if the range is out of bounds.
func (c *Cache) ResetRange(lo, hi int) (purged int) {
	if lo < 0 || hi > c.cfg.Sets || lo > hi {
		panic("live: ResetRange out of bounds")
	}
	for si, sh := range c.shards {
		base := si * c.perShard
		if base+c.perShard <= lo || base >= hi {
			continue
		}
		sh.mu.Lock()
		for i := range sh.sets {
			if g := base + i; g >= lo && g < hi {
				purged += sh.sets[i].validCount
				initSet(&sh.sets[i], c.cfg, sh.rec)
			}
		}
		sh.mu.Unlock()
	}
	return purged
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Capacity returns the number of entries the cache can hold.
func (c *Cache) Capacity() int { return c.cfg.Sets * c.cfg.Ways }

// locate maps a key hash to its shard and set.
func (c *Cache) locate(h uint64) (*shard, *lset) {
	global := int(h & c.mask)
	sh := c.shards[global/c.perShard]
	return sh, &sh.sets[global%c.perShard]
}

// Get looks up key, returning a copy of the value and whether it was
// resident. On a miss with a Loader configured, the value is fetched —
// with no shard lock held — and installed as a clean fill
// (read-allocate) before returning, so the returned value is non-nil
// but hit is false. If a concurrent writer (or the Loader itself,
// reentrantly) installs the key during the fetch, the resident entry
// wins: the fetched value is returned but not installed, and the event
// is counted as a LoadRace. Single-goroutine runs with a
// non-reentrant Loader never race, so their behavior and counters are
// bit-identical across runs and shard counts.
//
// With any stampede defense configured (Config.Coalesce / NegOps) the
// miss detours through missDefended in fill.go: concurrent misses on
// one key share a single Loader call, and Loader-reported absences are
// remembered for an op-count window. The detour engages only on the
// miss-with-Loader path, and only collapses genuinely concurrent
// fills, so hit-path cost and single-goroutine behavior are untouched.
//
//rwplint:hotpath — the serving read path; every allocation here is a written-down decision
func (c *Cache) Get(key string) (val []byte, hit bool) {
	h := HashKey(key)
	set := int(h & c.mask)
	sh, ls := c.locate(h)
	ai := cache.AccessInfo{Line: mem.LineAddr(h), Class: cache.DemandLoad}
	sh.mu.Lock()
	ls.ops.Gets++
	if way := ls.find(key); way >= 0 {
		e := &ls.entries[way]
		ls.ops.GetHits++
		if e.dirty {
			ls.splits.GetHitsDirty++
		} else {
			ls.splits.GetHitsClean++
		}
		if sh.rec != nil {
			sh.rec.CacheAccess(probe.AccessEvent{Level: LevelName, Class: probe.Load, Hit: true, LineDirty: e.dirty})
		}
		ls.costs.Observe(CostHit)
		if e.dirty {
			ls.costsDirty.Observe(CostHit)
		} else {
			ls.costsClean.Observe(CostHit)
		}
		ls.pol.OnHit(0, way, ai)
		// Copy while the entry is stable, then release before returning:
		// the caller must never see bytes a later Put could overwrite.
		//rwplint:allow hotalloc — copy-out is the Get API contract (one alloc, pinned by TestGetHitAllocs)
		v := append([]byte(nil), e.val...)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeHit, CostHit)
		return v, true
	}
	ls.ops.GetMisses++
	if sh.rec != nil {
		sh.rec.CacheAccess(probe.AccessEvent{Level: LevelName, Class: probe.Load, Hit: false})
	}
	if c.cfg.Loader == nil {
		ls.costs.Observe(CostMiss)
		ls.costsClean.Observe(CostMiss)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeMiss, CostMiss)
		return nil, false
	}
	if c.stampede {
		// Stampede defenses are on: the rest of this miss — negative
		// cache, singleflight coalescing, lease bookkeeping, the Loader
		// call, all cost accounting — lives in missDefended (fill.go),
		// which takes the lock back itself (no helper ever inherits a
		// held lock across the call boundary).
		sh.mu.Unlock()
		return c.missDefended(sh, ls, key, set, h, ai)
	}
	// The backing-store fetch runs outside the lock: a slow Loader
	// stalls only this Get, not every key in the shard (and a reentrant
	// Loader does not self-deadlock).
	sh.mu.Unlock()
	v := c.cfg.Loader(key)
	sh.mu.Lock()
	if ls.find(key) >= 0 {
		// Lost the race: someone installed the key while we were
		// loading. Keep the resident entry (it may hold a newer Put);
		// return the value this miss actually fetched. The cost is the
		// round trip alone — no fill, no eviction.
		ls.ops.LoadRaces++
		ls.costs.Observe(CostMiss)
		ls.costsClean.Observe(CostMiss)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeFill, CostMiss)
		return v, false
	}
	if v == nil {
		// The backing store has no such key. A look-aside cache stores
		// values, not absences — nothing installs, the miss stands, and
		// the next Get pays another round trip (Config.NegOps bounds
		// that with an explicit expiring verdict instead).
		ls.ops.LoadAbsents++
		ls.costs.Observe(CostMiss)
		ls.costsClean.Observe(CostMiss)
		sh.mu.Unlock()
		c.logGet(key, set, probe.OutcomeMiss, CostMiss)
		return nil, false
	}
	ls.ops.Loads++
	cost := CostMiss
	if ls.fill(sh, key, mem.LineAddr(h), v, ai, false) {
		cost += CostDirtyEvict
	}
	ls.costs.Observe(cost)
	ls.costsClean.Observe(cost)
	sh.mu.Unlock()
	c.logGet(key, set, probe.OutcomeFill, cost)
	// No defensive copy on the way out: the Loader handed us a fresh
	// value and fill stored its own copy, so the caller owns v.
	return v, false
}

// logGet emits one Get capture event; a no-op without a recorder. It
// runs with no shard lock held (the reqlog sink does its own I/O).
func (c *Cache) logGet(key string, set int, outcome string, cost int) {
	if c.cfg.ReqLog != nil {
		c.cfg.ReqLog.ReqEvent(probe.ReqEvent{Key: key, Set: set, Outcome: outcome, Cost: cost})
	}
}

// logPut is logGet's Put twin; val is the caller's payload (the sink
// must not retain it).
func (c *Cache) logPut(key string, val []byte, set int, outcome string, cost int) {
	if c.cfg.ReqLog != nil {
		c.cfg.ReqLog.ReqEvent(probe.ReqEvent{Put: true, Key: key, Value: val, Set: set, Outcome: outcome, Cost: cost})
	}
}

// Put stores val under key: a dirty hit when resident (overwrite), a
// dirty fill otherwise (write-allocate). It reports whether the key
// was newly inserted.
func (c *Cache) Put(key string, val []byte) (inserted bool) {
	h := HashKey(key)
	set := int(h & c.mask)
	sh, ls := c.locate(h)
	ai := cache.AccessInfo{Line: mem.LineAddr(h), Class: cache.DemandStore}
	sh.mu.Lock()
	ls.ops.Puts++
	if way := ls.find(key); way >= 0 {
		e := &ls.entries[way]
		ls.ops.PutHits++
		if e.dirty {
			ls.splits.PutHitsDirty++
		} else {
			ls.splits.PutHitsClean++
		}
		if sh.rec != nil {
			sh.rec.CacheAccess(probe.AccessEvent{Level: LevelName, Class: probe.Store, Hit: true, LineDirty: e.dirty})
		}
		if !e.dirty {
			e.dirty = true
			ls.dirtyCount++
		}
		e.val = append(e.val[:0], val...)
		ls.costs.Observe(CostHit)
		ls.costsDirty.Observe(CostHit)
		ls.pol.OnHit(0, way, ai)
		sh.mu.Unlock()
		c.logPut(key, val, set, probe.OutcomeOverwrite, CostHit)
		return false
	}
	ls.ops.PutInserts++
	// A write proves the key exists now: drop any negative-cache entry
	// before the fill installs it (no-op unless NegOps is configured).
	ls.negDelete(key)
	if sh.rec != nil {
		sh.rec.CacheAccess(probe.AccessEvent{Level: LevelName, Class: probe.Store, Hit: false})
	}
	cost := CostInsert
	if ls.fill(sh, key, mem.LineAddr(h), val, ai, true) {
		cost += CostDirtyEvict
	}
	ls.costs.Observe(cost)
	ls.costsDirty.Observe(cost)
	sh.mu.Unlock()
	c.logPut(key, val, set, probe.OutcomeInsert, cost)
	return true
}

// LevelName labels live-cache probe events (the simulator uses cache
// level names like "LLC" here).
const LevelName = "live"

// fill installs (key, val) into the set, evicting the policy's victim
// if the set is full. Called with the shard lock held. It reports
// whether the fill evicted a dirty entry — the cost model's writeback
// surcharge trigger.
func (ls *lset) fill(sh *shard, key string, line mem.LineAddr, val []byte, ai cache.AccessInfo, dirty bool) (evictedDirty bool) {
	way, bypass := ls.pol.Victim(0, ai)
	if bypass {
		// Neither LRU nor RWP ever bypasses; kept for policy-interface
		// completeness.
		ls.ops.Bypasses++
		if dirty {
			ls.splits.BypassStores++
		} else {
			ls.splits.BypassLoads++
		}
		if sh.rec != nil {
			sh.rec.CacheBypass(probe.BypassEvent{Level: LevelName, Class: probe.Class(ai.Class)})
		}
		return false
	}
	e := &ls.entries[way]
	if e.valid {
		ls.ops.Evictions++
		if e.dirty {
			evictedDirty = true
			ls.ops.DirtyEvictions++
			ls.dirtyCount--
		}
		if sh.rec != nil {
			sh.rec.CacheEvict(probe.EvictEvent{Level: LevelName, Class: probe.Class(ai.Class), Dirty: e.dirty})
		}
		ls.pol.OnEvict(0, way, ai)
	} else {
		ls.validCount++
	}
	*e = entry{key: key, val: append([]byte(nil), val...), line: line, valid: true, dirty: dirty}
	if dirty {
		ls.dirtyCount++
	}
	ls.ops.Fills++
	if dirty {
		ls.ops.FillsDirty++
	}
	if sh.rec != nil {
		sh.rec.CacheFill(probe.FillEvent{Level: LevelName, Class: probe.Class(ai.Class), Dirty: dirty})
	}
	ls.pol.OnFill(0, way, ai)
	return evictedDirty
}

// HashKey is the deterministic 64-bit key hash used for set selection
// and as the policy-visible line identity: FNV-1a with a SplitMix64
// finalizer so the low bits (the set index) are well mixed.
//
//rwplint:hotpath — hashed once per operation; pure arithmetic, zero allocations
func HashKey(key string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}
