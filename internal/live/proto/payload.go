package proto

import (
	"encoding/binary"
	"fmt"
)

// GetStatus classifies a Get outcome on the wire; it mirrors the HTTP
// surface's X-Cache header exactly (miss/hit/fill), so the transports
// are distinguishable only by framing, never by semantics.
type GetStatus byte

const (
	StatusMiss GetStatus = 0 // not resident, no loader value
	StatusHit  GetStatus = 1 // resident
	StatusFill GetStatus = 2 // loader backfill: value returned, hit=false
)

// String names the status as the HTTP header would.
func (s GetStatus) String() string {
	switch s {
	case StatusMiss:
		return "miss"
	case StatusHit:
		return "hit"
	case StatusFill:
		return "fill"
	}
	return fmt.Sprintf("GetStatus(%d)", byte(s))
}

// GetResult is one key's Get outcome: the decoded form of a GET
// response element. In results decoded by the Parse* functions, Value
// is nil exactly when Status is StatusMiss — a zero-length value on a
// hit or fill decodes as a non-nil empty slice. (On the encode side
// nil and empty are interchangeable: both frame as length 0.)
type GetResult struct {
	Status GetStatus
	Value  []byte
}

// KV is one key-value pair of an MPUT batch.
type KV struct {
	Key   string
	Value []byte
}

// appendString appends a uvarint length-prefixed byte string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBytes appends a uvarint length-prefixed byte slice.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// parser consumes a payload left to right, validating every declared
// length against the configured limit and the bytes remaining before
// touching them.
type parser struct {
	buf []byte
}

// uvarint decodes one uvarint.
func (p *parser) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(p.buf)
	if n <= 0 {
		return 0, wireErrf(ErrPayload, "truncated %s uvarint", what)
	}
	p.buf = p.buf[n:]
	return v, nil
}

// chunk decodes one length-prefixed byte string of at most max bytes.
// The returned slice aliases the payload.
func (p *parser) chunk(what string, max int) ([]byte, error) {
	n, err := p.uvarint(what + " length")
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, wireErrf(ErrTooLarge, "%s length %d > max %d", what, n, max)
	}
	if n > uint64(len(p.buf)) {
		return nil, wireErrf(ErrPayload, "%s length %d exceeds remaining payload %d", what, n, len(p.buf))
	}
	b := p.buf[:n]
	p.buf = p.buf[n:]
	return b, nil
}

// count decodes a batch element count (≤ MaxBatch).
func (p *parser) count() (int, error) {
	n, err := p.uvarint("batch count")
	if err != nil {
		return 0, err
	}
	if n > MaxBatch {
		return 0, wireErrf(ErrTooLarge, "batch count %d > max %d", n, MaxBatch)
	}
	return int(n), nil
}

// done verifies the payload was consumed exactly.
func (p *parser) done() error {
	if len(p.buf) != 0 {
		return wireErrf(ErrPayload, "%d trailing bytes", len(p.buf))
	}
	return nil
}

// byte1 decodes a single fixed byte (a status).
func (p *parser) byte1(what string) (byte, error) {
	if len(p.buf) == 0 {
		return 0, wireErrf(ErrPayload, "missing %s byte", what)
	}
	b := p.buf[0]
	p.buf = p.buf[1:]
	return b, nil
}

// --- GET ---

// AppendGetReq appends a GET request payload (one key).
func AppendGetReq(dst []byte, key string) ([]byte, error) {
	if len(key) > MaxKey {
		return nil, wireErrf(ErrTooLarge, "key length %d > max %d", len(key), MaxKey)
	}
	return appendString(dst, key), nil
}

// ParseGetReq decodes a GET request payload. The key is copied (it
// must outlive the reader's scratch buffer on the server side).
func ParseGetReq(payload []byte) (key string, err error) {
	p := parser{payload}
	k, err := p.chunk("key", MaxKey)
	if err != nil {
		return "", err
	}
	if err := p.done(); err != nil {
		return "", err
	}
	return string(k), nil
}

// appendGetItem appends one Get outcome (status, then value unless
// miss) — the element of both GET and MGET responses.
func appendGetItem(dst []byte, res GetResult) []byte {
	dst = append(dst, byte(res.Status))
	if res.Status == StatusMiss {
		return dst
	}
	return appendBytes(dst, res.Value)
}

// parseGetItem decodes one Get outcome; the value aliases the payload.
func (p *parser) parseGetItem() (GetResult, error) {
	s, err := p.byte1("get status")
	if err != nil {
		return GetResult{}, err
	}
	st := GetStatus(s)
	if st > StatusFill {
		return GetResult{}, wireErrf(ErrPayload, "invalid get status %d", s)
	}
	if st == StatusMiss {
		return GetResult{Status: st}, nil
	}
	v, err := p.chunk("value", MaxValue)
	if err != nil {
		return GetResult{}, err
	}
	return GetResult{Status: st, Value: v}, nil
}

// AppendGetResp appends a GET response payload.
func AppendGetResp(dst []byte, res GetResult) []byte { return appendGetItem(dst, res) }

// ParseGetResp decodes a GET response payload; the value is copied.
func ParseGetResp(payload []byte) (GetResult, error) {
	p := parser{payload}
	res, err := p.parseGetItem()
	if err != nil {
		return GetResult{}, err
	}
	if err := p.done(); err != nil {
		return GetResult{}, err
	}
	res.Value = cloneBytes(res.Value)
	return res, nil
}

// --- PUT ---

// AppendPutReq appends a PUT request payload (key, value).
func AppendPutReq(dst []byte, key string, val []byte) ([]byte, error) {
	if len(key) > MaxKey {
		return nil, wireErrf(ErrTooLarge, "key length %d > max %d", len(key), MaxKey)
	}
	if len(val) > MaxValue {
		return nil, wireErrf(ErrTooLarge, "value length %d > max %d", len(val), MaxValue)
	}
	return appendBytes(appendString(dst, key), val), nil
}

// ParsePutReq decodes a PUT request payload. The key is copied; the
// value aliases the payload (the cache copies on store).
func ParsePutReq(payload []byte) (key string, val []byte, err error) {
	p := parser{payload}
	k, err := p.chunk("key", MaxKey)
	if err != nil {
		return "", nil, err
	}
	v, err := p.chunk("value", MaxValue)
	if err != nil {
		return "", nil, err
	}
	if err := p.done(); err != nil {
		return "", nil, err
	}
	return string(k), v, nil
}

// AppendPutResp appends a PUT response payload (1 = inserted,
// 0 = overwrote a resident key).
func AppendPutResp(dst []byte, inserted bool) []byte {
	if inserted {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// ParsePutResp decodes a PUT response payload.
func ParsePutResp(payload []byte) (inserted bool, err error) {
	p := parser{payload}
	b, err := p.byte1("put status")
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, wireErrf(ErrPayload, "invalid put status %d", b)
	}
	if err := p.done(); err != nil {
		return false, err
	}
	return b == 1, nil
}

// --- MGET ---

// AppendMGetReq appends an MGET request payload (count, then keys).
func AppendMGetReq(dst []byte, keys []string) ([]byte, error) {
	if len(keys) > MaxBatch {
		return nil, wireErrf(ErrTooLarge, "batch count %d > max %d", len(keys), MaxBatch)
	}
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		if len(k) > MaxKey {
			return nil, wireErrf(ErrTooLarge, "key length %d > max %d", len(k), MaxKey)
		}
		dst = appendString(dst, k)
	}
	return dst, nil
}

// ParseMGetReq decodes an MGET request payload; keys are copied.
func ParseMGetReq(payload []byte) ([]string, error) {
	p := parser{payload}
	n, err := p.count()
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		k, err := p.chunk("key", MaxKey)
		if err != nil {
			return nil, err
		}
		keys = append(keys, string(k))
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return keys, nil
}

// AppendMGetResp appends an MGET response payload (count, then
// per-key Get outcomes in request order).
func AppendMGetResp(dst []byte, results []GetResult) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(results)))
	for _, r := range results {
		dst = appendGetItem(dst, r)
	}
	return dst
}

// ParseMGetResp decodes an MGET response payload; values are copied.
func ParseMGetResp(payload []byte) ([]GetResult, error) {
	p := parser{payload}
	n, err := p.count()
	if err != nil {
		return nil, err
	}
	results := make([]GetResult, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		r, err := p.parseGetItem()
		if err != nil {
			return nil, err
		}
		r.Value = cloneBytes(r.Value)
		results = append(results, r)
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return results, nil
}

// --- MPUT ---

// AppendMPutReq appends an MPUT request payload (count, then key+value
// pairs).
func AppendMPutReq(dst []byte, kvs []KV) ([]byte, error) {
	if len(kvs) > MaxBatch {
		return nil, wireErrf(ErrTooLarge, "batch count %d > max %d", len(kvs), MaxBatch)
	}
	dst = binary.AppendUvarint(dst, uint64(len(kvs)))
	for _, kv := range kvs {
		if len(kv.Key) > MaxKey {
			return nil, wireErrf(ErrTooLarge, "key length %d > max %d", len(kv.Key), MaxKey)
		}
		if len(kv.Value) > MaxValue {
			return nil, wireErrf(ErrTooLarge, "value length %d > max %d", len(kv.Value), MaxValue)
		}
		dst = appendBytes(appendString(dst, kv.Key), kv.Value)
	}
	return dst, nil
}

// ParseMPutReq decodes an MPUT request payload; keys are copied,
// values alias the payload.
func ParseMPutReq(payload []byte) ([]KV, error) {
	p := parser{payload}
	n, err := p.count()
	if err != nil {
		return nil, err
	}
	kvs := make([]KV, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		k, err := p.chunk("key", MaxKey)
		if err != nil {
			return nil, err
		}
		v, err := p.chunk("value", MaxValue)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, KV{Key: string(k), Value: v})
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return kvs, nil
}

// AppendMPutResp appends an MPUT response payload (count, then per-key
// inserted flags in request order).
func AppendMPutResp(dst []byte, inserted []bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(inserted)))
	for _, ins := range inserted {
		if ins {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// ParseMPutResp decodes an MPUT response payload.
func ParseMPutResp(payload []byte) ([]bool, error) {
	p := parser{payload}
	n, err := p.count()
	if err != nil {
		return nil, err
	}
	inserted := make([]bool, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		b, err := p.byte1("mput status")
		if err != nil {
			return nil, err
		}
		if b > 1 {
			return nil, wireErrf(ErrPayload, "invalid mput status %d", b)
		}
		inserted = append(inserted, b == 1)
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return inserted, nil
}

// cloneBytes copies b. nil stays nil and a non-nil empty slice stays
// non-nil, preserving the Value-nil-iff-miss contract for zero-length
// values (append to a nil slice would collapse empty to nil).
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append(make([]byte, 0, len(b)), b...)
}
