package proto

import "encoding/binary"

// Range-management wire formats: RESET purges a set range, SNAP streams
// a range's state snapshot out, RESTORE streams one in. They exist so
// the cluster manager (cmd/rwpcluster -connect) and the warm-restart
// tooling can drive remote rwpserve nodes over the same connection the
// data path uses.
//
// RESET is an ordinary one-frame request/response and may be pipelined.
// SNAP and RESTORE move payloads far past MaxPayload, so they are
// chunked: each frame carries a flag byte and up to SnapChunk snapshot
// bytes, and the reassembled total is bounded by MaxSnapshot on both
// sides.
//
//	RESET   req: uvarint lo, uvarint hi      resp: uvarint purged
//	SNAP    req: uvarint lo, uvarint hi      resp: 1+ frames, each
//	         flag (0 more / 1 last) + chunk; or flag 2 + message —
//	         a server-side refusal that keeps the connection usable.
//	RESTORE req: 1+ frames, flag (0 more / 1 last) + chunk
//	        resp (after the last chunk only): status 0 + message
//	         (refused, cache untouched, connection usable) or
//	         status 1 + uvarint purged.

// SNAP/RESTORE chunk flags.
const (
	ChunkMore = 0 // more chunks follow
	ChunkLast = 1 // final chunk: the transfer is complete
	ChunkErr  = 2 // SNAP response only: refusal message instead of bytes
)

// AppendRangeReq appends a RESET/SNAP request payload (a set range).
func AppendRangeReq(dst []byte, lo, hi int) ([]byte, error) {
	if lo < 0 || hi < lo {
		return nil, wireErrf(ErrPayload, "invalid set range [%d,%d)", lo, hi)
	}
	dst = binary.AppendUvarint(dst, uint64(lo))
	return binary.AppendUvarint(dst, uint64(hi)), nil
}

// ParseRangeReq decodes a RESET/SNAP request payload. Bounds against
// the serving cache's set count are the server's job — the codec only
// guarantees a well-ordered range that fits in int.
func ParseRangeReq(payload []byte) (lo, hi int, err error) {
	p := parser{payload}
	l, err := p.uvarint("range lo")
	if err != nil {
		return 0, 0, err
	}
	h, err := p.uvarint("range hi")
	if err != nil {
		return 0, 0, err
	}
	const maxSets = 1 << 30
	if l > maxSets || h > maxSets || l > h {
		return 0, 0, wireErrf(ErrPayload, "invalid set range [%d,%d)", l, h)
	}
	if err := p.done(); err != nil {
		return 0, 0, err
	}
	return int(l), int(h), nil
}

// AppendResetResp appends a RESET response payload.
func AppendResetResp(dst []byte, purged int) []byte {
	return binary.AppendUvarint(dst, uint64(purged))
}

// ParseResetResp decodes a RESET response payload.
func ParseResetResp(payload []byte) (purged int, err error) {
	p := parser{payload}
	n, err := p.uvarint("purged count")
	if err != nil {
		return 0, err
	}
	if n > MaxSnapshot { // far beyond any real cache's entry count
		return 0, wireErrf(ErrPayload, "implausible purged count %d", n)
	}
	if err := p.done(); err != nil {
		return 0, err
	}
	return int(n), nil
}

// AppendChunk appends one SNAP-response / RESTORE-request chunk frame
// payload: the flag byte, then the chunk bytes (a refusal message for
// ChunkErr). The chunk must not exceed SnapChunk.
func AppendChunk(dst []byte, flag byte, chunk []byte) []byte {
	if len(chunk) > SnapChunk {
		panic("proto: chunk exceeds SnapChunk")
	}
	dst = append(dst, flag)
	return append(dst, chunk...)
}

// ParseChunk decodes a chunk frame payload; the chunk aliases the
// payload.
func ParseChunk(payload []byte) (flag byte, chunk []byte, err error) {
	p := parser{payload}
	flag, err = p.byte1("chunk flag")
	if err != nil {
		return 0, nil, err
	}
	if flag > ChunkErr {
		return 0, nil, wireErrf(ErrPayload, "invalid chunk flag %d", flag)
	}
	if len(p.buf) > SnapChunk {
		return 0, nil, wireErrf(ErrTooLarge, "chunk %d bytes > max %d", len(p.buf), SnapChunk)
	}
	return flag, p.buf, nil
}

// AppendRestoreResp appends a RESTORE response payload: refused (status
// 0 + message) or applied (status 1 + uvarint purged).
func AppendRestoreResp(dst []byte, purged int, refusal string) []byte {
	if refusal != "" {
		dst = append(dst, 0)
		return append(dst, refusal...)
	}
	dst = append(dst, 1)
	return binary.AppendUvarint(dst, uint64(purged))
}

// ParseRestoreResp decodes a RESTORE response payload. A refusal comes
// back as (0, message, nil) — a server-side rejection, not a wire
// error; the connection stays usable.
func ParseRestoreResp(payload []byte) (purged int, refusal string, err error) {
	p := parser{payload}
	b, err := p.byte1("restore status")
	if err != nil {
		return 0, "", err
	}
	switch b {
	case 0:
		return 0, string(p.buf), nil
	case 1:
		n, err := p.uvarint("purged count")
		if err != nil {
			return 0, "", err
		}
		if n > MaxSnapshot {
			return 0, "", wireErrf(ErrPayload, "implausible purged count %d", n)
		}
		if err := p.done(); err != nil {
			return 0, "", err
		}
		return int(n), "", nil
	default:
		return 0, "", wireErrf(ErrPayload, "invalid restore status %d", b)
	}
}
