package proto_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"rwp/internal/live"
	"rwp/internal/live/proto"
)

// liveBackend adapts a real live.Cache (the production path) with a
// fixed stats document.
type liveBackend struct {
	*live.Cache
}

func (b liveBackend) StatsJSON() ([]byte, error) {
	s := b.Stats()
	return []byte(fmt.Sprintf("{\"gets\":%d,\"puts\":%d}\n", s.Gets, s.Puts)), nil
}

// failingStats exercises the STATS error path.
type failingStats struct{ liveBackend }

func (failingStats) StatsJSON() ([]byte, error) { return nil, errors.New("stats exploded") }

func newLiveBackend(t *testing.T, loader bool) liveBackend {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 64, 4, 4
	if loader {
		cfg.Loader = func(key string) []byte { return []byte("fill:" + key) }
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return liveBackend{c}
}

// startConn wires a client to a ServeConn goroutine over an in-memory
// pipe and returns the client plus a channel carrying the server
// loop's exit error.
func startConn(t *testing.T, b proto.Backend) (*proto.Client, net.Conn, chan error) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- proto.ServeConn(sc, b)
		close(done) // the buffered error stays receivable; extra reads see nil
		sc.Close()
	}()
	t.Cleanup(func() { cc.Close(); <-done })
	return proto.NewClient(cc), cc, done
}

// TestClientServerOps exercises every op synchronously against a real
// live.Cache backend.
func TestClientServerOps(t *testing.T) {
	b := newLiveBackend(t, true)
	cli, cc, _ := startConn(t, b)

	// Put: insert then overwrite.
	ins, err := cli.Put("a", []byte("v1"))
	if err != nil || !ins {
		t.Fatalf("first put: %v %v", ins, err)
	}
	ins, err = cli.Put("a", []byte("v2"))
	if err != nil || ins {
		t.Fatalf("second put: %v %v", ins, err)
	}
	// Get: hit with latest value.
	res, err := cli.Get("a")
	if err != nil || res.Status != proto.StatusHit || string(res.Value) != "v2" {
		t.Fatalf("get hit: %+v %v", res, err)
	}
	// Get: loader fill.
	res, err = cli.Get("zz")
	if err != nil || res.Status != proto.StatusFill || string(res.Value) != "fill:zz" {
		t.Fatalf("get fill: %+v %v", res, err)
	}
	// MGet in request order.
	results, err := cli.MGet([]string{"a", "zz", "new"})
	if err != nil || len(results) != 3 {
		t.Fatalf("mget: %+v %v", results, err)
	}
	if results[0].Status != proto.StatusHit || results[1].Status != proto.StatusHit ||
		results[2].Status != proto.StatusFill {
		t.Fatalf("mget statuses: %v %v %v", results[0].Status, results[1].Status, results[2].Status)
	}
	// MPut in request order: duplicate key in one batch must see its
	// own earlier insert.
	inserts, err := cli.MPut(KV("b", "1", "c", "2", "b", "3"))
	if err != nil || len(inserts) != 3 {
		t.Fatalf("mput: %v %v", inserts, err)
	}
	if !inserts[0] || !inserts[1] || inserts[2] {
		t.Fatalf("mput order broken: %v", inserts)
	}
	// Stats document comes from the backend verbatim.
	doc, err := cli.Stats()
	if err != nil || !bytes.Contains(doc, []byte("\"gets\"")) {
		t.Fatalf("stats: %q %v", doc, err)
	}
	// Ping echoes.
	echo, err := cli.Ping([]byte("are you there"))
	if err != nil || string(echo) != "are you there" {
		t.Fatalf("ping: %q %v", echo, err)
	}
	// Clean shutdown: closing the client side ends ServeConn with nil.
	cc.Close()
}

// KV builds a []proto.KV from alternating key/value strings.
func KV(pairs ...string) []proto.KV {
	kvs := make([]proto.KV, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, proto.KV{Key: pairs[i], Value: []byte(pairs[i+1])})
	}
	return kvs
}

// TestPipelinedFlush queues a mixed burst and checks replies arrive in
// request order with the right shapes.
func TestPipelinedFlush(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, _ := startConn(t, b)

	if err := cli.QueuePut("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueGet("x"); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueGet("absent"); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueMPut(KV("y", "2")); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueMGet([]string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueStats(); err != nil {
		t.Fatal(err)
	}
	if got := cli.Depth(); got != 6 {
		t.Fatalf("depth %d, want 6", got)
	}
	replies, err := cli.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 6 || cli.Depth() != 0 {
		t.Fatalf("replies %d, depth %d", len(replies), cli.Depth())
	}
	if !replies[0].Inserted {
		t.Error("put reply")
	}
	if replies[1].Get.Status != proto.StatusHit || string(replies[1].Get.Value) != "1" {
		t.Errorf("get reply: %+v", replies[1].Get)
	}
	if replies[2].Get.Status != proto.StatusMiss || replies[2].Get.Value != nil {
		t.Errorf("miss reply: %+v", replies[2].Get)
	}
	if len(replies[3].Inserts) != 1 || !replies[3].Inserts[0] {
		t.Errorf("mput reply: %+v", replies[3].Inserts)
	}
	if len(replies[4].Gets) != 2 || replies[4].Gets[0].Status != proto.StatusHit ||
		replies[4].Gets[1].Status != proto.StatusHit {
		t.Errorf("mget reply: %+v", replies[4].Gets)
	}
	if !bytes.Contains(replies[5].Data, []byte("\"puts\":2")) {
		t.Errorf("stats reply: %q", replies[5].Data)
	}
}

// TestServerRejectsMalformed sends garbage and checks the server
// answers with an ERR frame, closes, and reports a wire error.
func TestServerRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte // written verbatim to the connection
	}{
		{"garbage", []byte("GET /get?key=a HTTP/1.1\r\n")},
		{"bad crc", func() []byte {
			f := proto.AppendFrame(nil, proto.OpPing, []byte("x"))
			f[len(f)-1] ^= 0xff
			return f
		}()},
		{"err op request", proto.AppendFrame(nil, proto.OpErr, []byte("hi"))},
		{"malformed get payload", proto.AppendFrame(nil, proto.OpGet, []byte{0x09})},
		{"malformed mput payload", proto.AppendFrame(nil, proto.OpMPut, []byte{0x01, 0x01, 'a'})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newLiveBackend(t, false)
			cc, sc := net.Pipe()
			done := make(chan error, 1)
			go func() {
				done <- proto.ServeConn(sc, b)
				sc.Close()
			}()
			defer cc.Close()
			go cc.Write(tc.raw) // net.Pipe writes block on the reader
			r := proto.NewReader(cc)
			op, payload, err := r.ReadFrame()
			if err != nil {
				t.Fatalf("reading error reply: %v", err)
			}
			if op != proto.OpErr || len(payload) == 0 {
				t.Fatalf("got (%v, %q), want ERR frame", op, payload)
			}
			serr := <-done
			if serr == nil {
				t.Fatal("server loop exited nil on malformed input")
			}
			if !proto.IsWireError(serr) {
				t.Fatalf("server error %v is not a wire error", serr)
			}
		})
	}
}

// bigValues is a backend whose every Get hits with the same large
// value — the cheapest way to drive an MGET response past MaxPayload
// with a perfectly well-formed request.
type bigValues struct{ val []byte }

func (b bigValues) Get(string) ([]byte, bool)  { return b.val, true }
func (b bigValues) Put(string, []byte) bool    { return false }
func (b bigValues) StatsJSON() ([]byte, error) { return []byte("{}\n"), nil }

// TestMGetResponseTooLarge sends a valid MGET whose response would
// exceed MaxPayload (5 keys × 1 MiB values) and checks the server
// refuses with an ERR frame instead of panicking in AppendFrame —
// previously a remote crash of the whole process.
func TestMGetResponseTooLarge(t *testing.T) {
	b := bigValues{val: make([]byte, proto.MaxValue)}
	cli, _, done := startConn(t, b)
	keys := []string{"a", "b", "c", "d", "e"}
	if _, err := cli.MGet(keys); err == nil ||
		!strings.Contains(err.Error(), "length exceeds limit") {
		t.Fatalf("oversized mget: %v", err)
	}
	if serr := <-done; !errors.Is(serr, proto.ErrTooLarge) {
		t.Fatalf("server loop error %v, want ErrTooLarge", serr)
	}
}

// TestEmptyValueHit pins the Value-nil-iff-miss contract for
// zero-length values: a hit on an empty value must decode as a non-nil
// empty slice, distinguishable from a miss.
func TestEmptyValueHit(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, _ := startConn(t, b)
	if _, err := cli.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != proto.StatusHit || res.Value == nil || len(res.Value) != 0 {
		t.Fatalf("empty-value hit: status=%v value=%#v", res.Status, res.Value)
	}
	// MGET path shares the decoder but clones per element.
	results, err := cli.MGet([]string{"empty"})
	if err != nil || len(results) != 1 {
		t.Fatalf("mget: %+v %v", results, err)
	}
	if results[0].Status != proto.StatusHit || results[0].Value == nil {
		t.Fatalf("empty-value mget hit: %+v", results[0])
	}
}

// TestShutdownNudgeClosesCleanly expires the server-side read deadline
// — exactly what tcpServer.shutdown does to idle connections — and
// checks ServeConn exits with the deadline error without writing a
// spurious ERR frame: the well-behaved peer sees a clean close.
func TestShutdownNudgeClosesCleanly(t *testing.T) {
	b := newLiveBackend(t, false)
	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- proto.ServeConn(sc, b)
		sc.Close()
	}()
	defer cc.Close()
	cli := proto.NewClient(cc)
	if _, err := cli.Ping([]byte("x")); err != nil {
		t.Fatal(err)
	}
	sc.SetReadDeadline(time.Unix(1, 0)) // long expired: the nudge fires at once
	if serr := <-done; !errors.Is(serr, os.ErrDeadlineExceeded) {
		t.Fatalf("server loop error %v, want deadline exceeded", serr)
	}
	// No ERR frame was written: the next read sees only the close.
	if op, payload, err := proto.NewReader(cc).ReadFrame(); err != io.EOF {
		t.Fatalf("after nudge got (%v, %q, %v), want clean EOF", op, payload, err)
	}
}

// TestServerStatsFailure covers the backend StatsJSON error path.
func TestServerStatsFailure(t *testing.T) {
	b := failingStats{newLiveBackend(t, false)}
	cli, _, done := startConn(t, b)
	if _, err := cli.Stats(); err == nil || !strings.Contains(err.Error(), "stats exploded") {
		t.Fatalf("stats error: %v", err)
	}
	if serr := <-done; serr == nil {
		t.Fatal("server kept serving after stats failure")
	}
}

// TestClientReplyMismatch covers the client's defense against a server
// answering with the wrong opcode.
func TestClientReplyMismatch(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	go func() {
		// Read whatever arrives, then answer a GET with a PUT reply.
		buf := make([]byte, 1024)
		sc.Read(buf)
		sc.Write(proto.AppendFrame(nil, proto.OpPut, proto.AppendPutResp(nil, true)))
		sc.Close()
	}()
	cli := proto.NewClient(cc)
	if _, err := cli.Get("k"); !errors.Is(err, proto.ErrOp) {
		t.Fatalf("mismatched reply: %v", err)
	}
}
