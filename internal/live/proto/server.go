package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Backend is what a connection serves: the live cache's operation
// surface plus the rendered stats document. *live.Cache satisfies it
// directly — its StatsJSON is the same renderer the HTTP /stats
// endpoint uses, which is what makes the transports byte-comparable
// end to end.
type Backend interface {
	// Get looks up key. hit=false with val non-nil is a loader
	// backfill (StatusFill), matching live.Cache.Get.
	Get(key string) (val []byte, hit bool)
	// Put stores val under key, reporting whether it was newly
	// inserted.
	Put(key string, val []byte) (inserted bool)
	// StatsJSON renders the stats document — byte-identical to the
	// HTTP /stats body.
	StatsJSON() ([]byte, error)
}

// RangeBackend is the optional management surface behind the RESET,
// SNAP, and RESTORE ops. *live.Cache satisfies it directly; ServeConn
// discovers it by type assertion, so a minimal Backend (a test double,
// a proxy) still serves the data path and refuses management ops
// cleanly.
type RangeBackend interface {
	Backend
	// Sets returns the global set count, bounding every range request.
	Sets() int
	// ResetRange purges the sets in [lo, hi), returning entries purged.
	// The range is pre-validated against Sets by the server loop.
	ResetRange(lo, hi int) int
	// SnapBytes encodes a state snapshot of the sets in [lo, hi).
	SnapBytes(lo, hi int) ([]byte, error)
	// RestoreBytes decodes and applies a snapshot with catch-up
	// (RestoreRange) semantics, returning entries purged. A rejected
	// snapshot must leave the cache untouched.
	RestoreBytes(data []byte) (int, error)
}

// ServeConn runs the pipelined request loop for one connection until
// the peer closes it (clean: returns nil) or violates the protocol
// (writes one ERR frame with the reason, then returns the error — the
// caller closes the connection). Batch ops issue their per-key
// Gets/Puts in request order, so a request stream has identical cache
// semantics through this loop and through the HTTP handlers.
//
// Pipelining: responses are buffered and flushed only when the read
// side has no complete buffered request left, so a burst of n requests
// costs one writev, not n.
func ServeConn(conn io.ReadWriter, b Backend) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	r := NewReader(br)
	rb, _ := b.(RangeBackend) // nil: management ops are refused
	var restoreBuf []byte     // RESTORE chunks accumulated so far
	var payload, frame []byte // response scratch, reused across requests
	for {
		// Flush before a read that would block: everything the peer
		// pipelined has been answered.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		op, req, err := r.ReadFrame()
		if err != nil {
			if err == io.EOF {
				return bw.Flush() // clean close at a frame boundary
			}
			// A read deadline firing (the graceful-shutdown nudge in
			// cmd/rwpserve) is not a peer mistake: flush what is owed
			// and hang up without a spurious ERR frame.
			var to interface{ Timeout() bool }
			if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &to) && to.Timeout()) {
				bw.Flush()
				return err
			}
			// Best effort: tell the peer why before hanging up.
			bw.Write(AppendFrame(nil, OpErr, []byte(err.Error())))
			bw.Flush()
			return err
		}
		payload = payload[:0]
		switch op {
		case OpGet:
			key, perr := ParseGetReq(req)
			if perr != nil {
				return refuse(bw, perr)
			}
			payload = AppendGetResp(payload, backendGet(b, key))
		case OpPut:
			key, val, perr := ParsePutReq(req)
			if perr != nil {
				return refuse(bw, perr)
			}
			payload = AppendPutResp(payload, b.Put(key, val))
		case OpMGet:
			keys, perr := ParseMGetReq(req)
			if perr != nil {
				return refuse(bw, perr)
			}
			// Encode each outcome as its Get is issued (request order:
			// the semantics contract) and bound the growing response: a
			// batch of large values can push the payload past
			// MaxPayload even when every per-element limit holds, and
			// AppendFrame panics rather than frame it. Refusing
			// mid-batch leaves the remaining Gets unissued, which is
			// fine — the connection is closing anyway.
			payload = binary.AppendUvarint(payload, uint64(len(keys)))
			for _, k := range keys {
				payload = appendGetItem(payload, backendGet(b, k))
				if len(payload) > MaxPayload {
					return refuse(bw, wireErrf(ErrTooLarge, "mget response exceeds max payload %d", MaxPayload))
				}
			}
		case OpMPut:
			kvs, perr := ParseMPutReq(req)
			if perr != nil {
				return refuse(bw, perr)
			}
			inserted := make([]bool, len(kvs))
			for i, kv := range kvs {
				inserted[i] = b.Put(kv.Key, kv.Value)
			}
			payload = AppendMPutResp(payload, inserted)
		case OpStats:
			doc, serr := b.StatsJSON()
			if serr != nil {
				return refuse(bw, serr)
			}
			if len(doc) > MaxPayload {
				return refuse(bw, wireErrf(ErrTooLarge, "stats document %d bytes", len(doc)))
			}
			payload = append(payload, doc...)
		case OpPing:
			payload = append(payload, req...)
		case OpReset:
			lo, hi, perr := ParseRangeReq(req)
			if perr != nil {
				return refuse(bw, perr)
			}
			if rb == nil {
				return refuse(bw, wireErrf(ErrOp, "backend does not support RESET"))
			}
			if hi > rb.Sets() {
				return refuse(bw, wireErrf(ErrPayload, "reset range [%d,%d) out of bounds (sets %d)", lo, hi, rb.Sets()))
			}
			payload = AppendResetResp(payload, rb.ResetRange(lo, hi))
		case OpSnap:
			// Chunked response: write the frames here and skip the
			// single-frame tail. Refusals travel as a ChunkErr frame, not
			// an ERR frame — the connection stays usable so the caller
			// (cluster catch-up) can fall back to RESET on it.
			lo, hi, perr := ParseRangeReq(req)
			if perr != nil {
				return refuse(bw, perr)
			}
			if err := writeSnapFrames(bw, rb, lo, hi); err != nil {
				return err
			}
			continue
		case OpRestore:
			flag, chunk, perr := ParseChunk(req)
			if perr != nil || flag == ChunkErr {
				if perr == nil {
					perr = wireErrf(ErrPayload, "restore chunk with error flag")
				}
				return refuse(bw, perr)
			}
			if len(restoreBuf)+len(chunk) > MaxSnapshot {
				return refuse(bw, wireErrf(ErrTooLarge, "restore exceeds max snapshot %d", MaxSnapshot))
			}
			restoreBuf = append(restoreBuf, chunk...)
			if flag == ChunkMore {
				continue // reply comes after the last chunk
			}
			data := restoreBuf
			restoreBuf = nil
			payload = appendRestoreOutcome(payload, rb, data)
		default: // OpErr from a peer is itself a protocol violation
			return refuse(bw, wireErrf(ErrOp, "unexpected %v request", op))
		}
		frame = AppendFrame(frame[:0], op, payload)
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
}

// writeSnapFrames answers one SNAP request: the snapshot bytes chunked
// into SnapChunk-sized frames, or a single ChunkErr frame carrying the
// refusal. Only transport failures are returned — a refused snapshot is
// the peer's problem, not the connection's.
func writeSnapFrames(bw *bufio.Writer, rb RangeBackend, lo, hi int) error {
	refusal := ""
	var data []byte
	switch {
	case rb == nil:
		refusal = "backend does not support SNAP"
	case hi > rb.Sets():
		refusal = fmt.Sprintf("snap range [%d,%d) out of bounds (sets %d)", lo, hi, rb.Sets())
	default:
		var err error
		if data, err = rb.SnapBytes(lo, hi); err != nil {
			refusal = err.Error()
		} else if len(data) > MaxSnapshot {
			refusal = fmt.Sprintf("snapshot %d bytes > max %d", len(data), MaxSnapshot)
		}
	}
	if refusal != "" {
		_, err := bw.Write(AppendFrame(nil, OpSnap, AppendChunk(nil, ChunkErr, []byte(refusal))))
		return err
	}
	for off := 0; ; off += SnapChunk {
		end, flag := off+SnapChunk, byte(ChunkMore)
		if end >= len(data) {
			end, flag = len(data), ChunkLast
		}
		if _, err := bw.Write(AppendFrame(nil, OpSnap, AppendChunk(nil, flag, data[off:end]))); err != nil {
			return err
		}
		if flag == ChunkLast {
			return nil
		}
	}
}

// appendRestoreOutcome applies a fully reassembled RESTORE transfer and
// encodes the outcome. A decode/validation failure is a refusal, not a
// wire error: the backend guarantees the cache is untouched, and the
// connection stays usable.
func appendRestoreOutcome(payload []byte, rb RangeBackend, data []byte) []byte {
	if rb == nil {
		return AppendRestoreResp(payload, 0, "backend does not support RESTORE")
	}
	purged, err := rb.RestoreBytes(data)
	if err != nil {
		return AppendRestoreResp(payload, 0, err.Error())
	}
	return AppendRestoreResp(payload, purged, "")
}

// backendGet maps the cache's (val, hit) pair onto the wire status.
func backendGet(b Backend, key string) GetResult {
	val, hit := b.Get(key)
	switch {
	case hit:
		return GetResult{Status: StatusHit, Value: val}
	case val != nil:
		return GetResult{Status: StatusFill, Value: val}
	default:
		return GetResult{Status: StatusMiss}
	}
}

// refuse reports err to the peer as an ERR frame and returns it.
func refuse(bw *bufio.Writer, err error) error {
	bw.Write(AppendFrame(nil, OpErr, []byte(err.Error())))
	bw.Flush()
	return err
}

// IsWireError reports whether err is a protocol violation (as opposed
// to a transport failure) — the server logs the two differently.
func IsWireError(err error) bool {
	var we *WireError
	return errors.As(err, &we)
}
