package proto_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/proto"
)

// bareBackend implements only Backend — no range surface — to pin the
// refusal paths for minimal backends.
type bareBackend struct{ c *live.Cache }

func (b bareBackend) Get(key string) ([]byte, bool)   { return b.c.Get(key) }
func (b bareBackend) Put(key string, val []byte) bool { return b.c.Put(key, val) }
func (b bareBackend) StatsJSON() ([]byte, error)      { return []byte("{}\n"), nil }

// TestRangeOpsOverWire round-trips a multi-chunk snapshot between two
// real caches over the wire: SNAP on a warm node, RESTORE onto a cold
// one, then a byte-exact fixed-point check and a RESET.
func TestRangeOpsOverWire(t *testing.T) {
	warm := newLiveBackend(t, false)
	cold := newLiveBackend(t, false)
	warmCli, _, _ := startConn(t, warm)
	coldCli, _, _ := startConn(t, cold)

	// ~2 MiB of values so the snapshot spans multiple SnapChunk frames.
	big := bytes.Repeat([]byte("x"), 8<<10)
	for i := 0; i < 256; i++ {
		if _, err := warmCli.Put(fmt.Sprintf("key-%04d", i), big); err != nil {
			t.Fatal(err)
		}
	}
	sets := warm.Cache.Sets()
	data, err := warmCli.SnapRange(0, sets)
	if err != nil {
		t.Fatalf("SnapRange: %v", err)
	}
	if len(data) <= proto.SnapChunk {
		t.Fatalf("snapshot only %d bytes; test never exercises chunking", len(data))
	}

	if _, err := coldCli.Restore(data); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The wire restore is catch-up semantics: entries and policy state
	// transfer, the target's own counters stay (here: zero). So the
	// restored node's snapshot differs from the warm node's in counters
	// only — and restoring IT onto a third node must reproduce it
	// byte-exactly (idempotence pins that no entry/policy state leaks).
	again, err := coldCli.SnapRange(0, sets)
	if err != nil {
		t.Fatal(err)
	}
	third := newLiveBackend(t, false)
	thirdCli, _, _ := startConn(t, third)
	if _, err := thirdCli.Restore(again); err != nil {
		t.Fatalf("second-hop Restore: %v", err)
	}
	again2, err := thirdCli.SnapRange(0, sets)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, again2) {
		t.Fatalf("wire catch-up is not idempotent: %d vs %d bytes", len(again), len(again2))
	}
	res, err := coldCli.Get("key-0000")
	if err != nil || res.Status != proto.StatusHit || !bytes.Equal(res.Value, big) {
		t.Fatalf("restored key: status %v err %v", res.Status, err)
	}

	// Hashing spreads 256 keys unevenly over 64×4 slots, so occupancy —
	// not the key count — is the exact purge expectation.
	occupancy := cold.Cache.Stats().Entries
	purged, err := coldCli.ResetRange(0, sets)
	if err != nil {
		t.Fatalf("ResetRange: %v", err)
	}
	if purged != occupancy || purged == 0 {
		t.Fatalf("reset purged %d entries, want occupancy %d", purged, occupancy)
	}
	if res, err := coldCli.Get("key-0000"); err != nil || res.Status != proto.StatusMiss {
		t.Fatalf("key survived reset: %v %v", res.Status, err)
	}
}

// TestSnapRefusalKeepsConnection: a refused SNAP (bad range, or a
// backend without the range surface) errors without poisoning the
// connection — the cluster's catch-up fallback depends on that.
func TestSnapRefusalKeepsConnection(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, _ := startConn(t, b)
	if _, err := cli.SnapRange(0, b.Cache.Sets()+1); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("oversized range: err = %v", err)
	}
	if _, err := cli.Ping([]byte("still-alive")); err != nil {
		t.Fatalf("connection poisoned after snap refusal: %v", err)
	}

	bare, _, _ := startConn(t, bareBackend{b.Cache})
	if _, err := bare.SnapRange(0, 1); err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("bare backend: err = %v", err)
	}
	if _, err := bare.Ping([]byte("still-alive")); err != nil {
		t.Fatalf("connection poisoned after bare refusal: %v", err)
	}
}

// TestRestoreRefusalKeepsState: corrupt snapshot bytes are refused with
// the cache untouched and the connection usable.
func TestRestoreRefusalKeepsState(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, _ := startConn(t, b)
	if _, err := cli.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	good, err := cli.SnapRange(0, b.Cache.Sets())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x20
	if _, err := cli.Restore(bad); err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("corrupt restore: err = %v", err)
	}
	if res, err := cli.Get("k"); err != nil || res.Status != proto.StatusHit {
		t.Fatalf("refused restore disturbed the cache: %v %v", res.Status, err)
	}
	// The connection survives and a good restore still applies.
	if _, err := cli.Restore(good); err != nil {
		t.Fatalf("good restore after refusal: %v", err)
	}
}

// TestResetRefusals: RESET protocol violations are fatal (they come
// from a manager, not a peer worth keeping), and a queued RESET rides
// the ordinary pipeline.
func TestResetRefusals(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, done := startConn(t, b)
	if _, err := cli.ResetRange(0, b.Cache.Sets()+1); err == nil {
		t.Fatal("out-of-bounds reset accepted")
	}
	if err := <-done; err == nil {
		t.Fatal("server kept serving after reset violation")
	}

	bare, _, bdone := startConn(t, bareBackend{b.Cache})
	if _, err := bare.ResetRange(0, 1); err == nil {
		t.Fatal("bare backend accepted RESET")
	}
	<-bdone
}

// TestPipelinedReset: RESET interleaves with data ops in one flush.
func TestPipelinedReset(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, _ := startConn(t, b)
	if err := cli.QueuePut("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueReset(0, b.Cache.Sets()); err != nil {
		t.Fatal(err)
	}
	if err := cli.QueueGet("a"); err != nil {
		t.Fatal(err)
	}
	replies, err := cli.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 || !replies[0].Inserted || replies[1].Purged != 1 || replies[2].Get.Status != proto.StatusMiss {
		t.Fatalf("pipelined reset replies: %+v", replies)
	}
}

// TestChunkedOpsNeedEmptyPipeline: the multi-frame exchanges refuse to
// start while replies are owed.
func TestChunkedOpsNeedEmptyPipeline(t *testing.T) {
	b := newLiveBackend(t, false)
	cli, _, _ := startConn(t, b)
	if err := cli.QueueGet("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.SnapRange(0, 1); err == nil || !strings.Contains(err.Error(), "empty pipeline") {
		t.Fatalf("SnapRange mid-pipeline: err = %v", err)
	}
	if _, err := cli.Restore(nil); err == nil || !strings.Contains(err.Error(), "empty pipeline") {
		t.Fatalf("Restore mid-pipeline: err = %v", err)
	}
	if _, err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
}
