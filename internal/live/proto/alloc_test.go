package proto

import (
	"bytes"
	"testing"
)

// loopReader replays the same frame bytes forever without allocating,
// so AllocsPerRun sees only ReadFrame's own allocations.
type loopReader struct {
	frame []byte
	off   int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.frame) {
		l.off = 0
	}
	n := copy(p, l.frame[l.off:])
	l.off += n
	return n, nil
}

// TestReadFrameAllocs pins ReadFrame at zero heap allocations per
// frame in the steady state: the scratch buffer is warmed to the
// high-water payload by the first read and reused after that. This is
// the runtime half of the hotalloc lint on ReadFrame — every
// allocation left in that function is suppressed as one-time,
// amortized, or error-path, and this test proves the happy path really
// hits none of them.
func TestReadFrameAllocs(t *testing.T) {
	frame := AppendFrame(nil, OpGet, bytes.Repeat([]byte("k"), 512))
	r := NewReader(&loopReader{frame: frame})
	// Warm the scratch buffer to the stream's payload size.
	if _, _, err := r.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		op, payload, err := r.ReadFrame()
		if err != nil || op != OpGet || len(payload) != 512 {
			t.Fatalf("ReadFrame = (%v, %d bytes, %v)", op, len(payload), err)
		}
	})
	//rwplint:allow floateq — AllocsPerRun yields an exact small-integer float; the pin is exact by design
	if allocs != 0 {
		t.Errorf("steady-state ReadFrame allocates %.1f objects/frame, want 0", allocs)
	}
}

// TestAppendFrameAllocs pins the encode side: with a dst slice of
// sufficient capacity, AppendFrame must not allocate at all.
func TestAppendFrameAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("v"), 256)
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		out := AppendFrame(dst[:0], OpPut, payload)
		if len(out) == 0 {
			t.Fatal("empty frame")
		}
	})
	//rwplint:allow floateq — AllocsPerRun yields an exact small-integer float; the pin is exact by design
	if allocs != 0 {
		t.Errorf("AppendFrame into a sized buffer allocates %.1f objects/frame, want 0", allocs)
	}
}
