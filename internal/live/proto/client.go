package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// ErrClosed is returned by every Client method after Close. It is a
// typed sentinel (match with errors.Is) so multi-connection callers —
// the cluster router keeps one Client per node — can tell an
// orderly-shutdown race from a wire failure.
var ErrClosed = errors.New("proto: client closed")

// Client speaks the binary protocol over one connection (any
// io.ReadWriter: a net.Conn in production, a net.Pipe or loopback
// socket in tests). It is not safe for concurrent use — one client per
// goroutine, like a database/sql connection.
//
// Two modes share the connection:
//
//   - Synchronous: Get/Put/MGet/MPut/Stats/Ping each write one frame,
//     flush, and read the reply.
//   - Pipelined: Queue* methods buffer request frames locally; Flush
//     writes them all in one burst and reads the replies in order. The
//     pipeline depth is simply how many requests were queued.
//
// Both modes preserve request order end to end, which is what lets the
// differential tests demand byte-identical stats at any depth.
type Client struct {
	conn    io.ReadWriter
	bw      *bufio.Writer
	r       *Reader
	pending []Op  // ops queued since the last Flush, in order
	queued  int   // request bytes framed since the last Flush
	err     error // first write failure; poisons the client (see Flush)
	closed  bool
}

// NewClient wraps conn.
func NewClient(conn io.ReadWriter) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		r:    NewReader(bufio.NewReaderSize(conn, 64<<10)),
	}
}

// Close marks the client unusable — every later call returns ErrClosed
// — and closes the underlying connection when it is an io.Closer.
// Closing twice is a no-op returning ErrClosed.
func (c *Client) Close() error {
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// check gates every operation on the client's liveness: ErrClosed
// after Close, else the sticky first write error. A client that saw a
// write fail mid-queue holds frames it could not finish framing, so
// letting a later Flush write-and-read would report a confusing
// downstream read error (or hang) instead of the root cause.
func (c *Client) check() error {
	if c.closed {
		return ErrClosed
	}
	return c.err
}

// Reply is one response in Flush order. Exactly the fields implied by
// Op are meaningful.
type Reply struct {
	Op       Op
	Get      GetResult   // OpGet
	Inserted bool        // OpPut
	Gets     []GetResult // OpMGet, in request order
	Inserts  []bool      // OpMPut, in request order
	Data     []byte      // OpStats (JSON document) / OpPing (echo)
	Purged   int         // OpReset: entries dropped by the range reset
}

// queue frames one request. A write failure (the buffered writer only
// hits the connection when a burst overflows its buffer) is recorded
// as the client's sticky error so Flush reports it instead of a
// downstream read error.
func (c *Client) queue(op Op, payload []byte) error {
	if err := c.check(); err != nil {
		return err
	}
	frame := AppendFrame(nil, op, payload)
	if _, err := c.bw.Write(frame); err != nil {
		c.err = err
		return err
	}
	c.pending = append(c.pending, op)
	c.queued += len(frame)
	return nil
}

// QueueGet pipelines a GET.
func (c *Client) QueueGet(key string) error {
	p, err := AppendGetReq(nil, key)
	if err != nil {
		return err
	}
	return c.queue(OpGet, p)
}

// QueuePut pipelines a PUT.
func (c *Client) QueuePut(key string, val []byte) error {
	p, err := AppendPutReq(nil, key, val)
	if err != nil {
		return err
	}
	return c.queue(OpPut, p)
}

// QueueMGet pipelines a batch GET.
func (c *Client) QueueMGet(keys []string) error {
	p, err := AppendMGetReq(nil, keys)
	if err != nil {
		return err
	}
	return c.queue(OpMGet, p)
}

// QueueMPut pipelines a batch PUT.
func (c *Client) QueueMPut(kvs []KV) error {
	p, err := AppendMPutReq(nil, kvs)
	if err != nil {
		return err
	}
	return c.queue(OpMPut, p)
}

// QueueReset pipelines a RESET of the global sets [lo, hi).
func (c *Client) QueueReset(lo, hi int) error {
	p, err := AppendRangeReq(nil, lo, hi)
	if err != nil {
		return err
	}
	return c.queue(OpReset, p)
}

// QueueStats pipelines a STATS request.
func (c *Client) QueueStats() error { return c.queue(OpStats, nil) }

// QueuePing pipelines a PING carrying payload.
func (c *Client) QueuePing(payload []byte) error { return c.queue(OpPing, payload) }

// Depth returns the number of requests queued since the last Flush.
func (c *Client) Depth() int { return len(c.pending) }

// QueuedBytes returns the request bytes framed since the last Flush.
// Use it to bound a burst — see Flush for why the bound matters.
func (c *Client) QueuedBytes() int { return c.queued }

// Flush writes every queued request in one burst and reads their
// replies in order. On a protocol error (including an ERR frame from
// the server) the connection is no longer usable.
//
// Bound your bursts: Flush writes every queued frame before reading
// any reply. If the queued request bytes plus the responses they
// elicit exceed what the two sockets' kernel buffers (plus the
// server's 64 KiB write buffer, which force-flushes when full) can
// hold in flight, both ends block on write and the connection
// deadlocks. Keep QueuedBytes plus the expected response bytes of one
// Flush in the tens of KiB — split deeper pipelines across multiple
// Flushes.
func (c *Client) Flush() ([]Reply, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		// The write side is broken: report the write error now (and on
		// every later call) rather than letting the reply reads surface
		// a later, less diagnostic read error.
		c.err = err
		return nil, err
	}
	want := c.pending
	c.pending = c.pending[:0]
	c.queued = 0
	replies := make([]Reply, 0, len(want))
	for _, sent := range want {
		op, payload, err := c.r.ReadFrame()
		if err != nil {
			return replies, c.fail(err)
		}
		if op == OpErr {
			return replies, c.fail(wireErrf(ErrPayload, "server error: %s", payload))
		}
		if op != sent {
			return replies, c.fail(wireErrf(ErrOp, "reply op %v for %v request", op, sent))
		}
		rep := Reply{Op: op}
		switch op {
		case OpGet:
			rep.Get, err = ParseGetResp(payload)
		case OpPut:
			rep.Inserted, err = ParsePutResp(payload)
		case OpMGet:
			rep.Gets, err = ParseMGetResp(payload)
		case OpMPut:
			rep.Inserts, err = ParseMPutResp(payload)
		case OpStats, OpPing:
			rep.Data = cloneBytes(payload)
		case OpReset:
			rep.Purged, err = ParseResetResp(payload)
		}
		if err != nil {
			return replies, c.fail(err)
		}
		replies = append(replies, rep)
	}
	return replies, nil
}

// fail records the first fatal error as the client's sticky error —
// once the reply stream is out of sync with the request stream the
// connection is unusable, and every later call reports the root cause.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// flushOne runs a single queued request synchronously.
func (c *Client) flushOne() (Reply, error) {
	replies, err := c.Flush()
	if err != nil {
		return Reply{}, err
	}
	return replies[0], nil
}

// Get looks up one key.
func (c *Client) Get(key string) (GetResult, error) {
	if err := c.QueueGet(key); err != nil {
		return GetResult{}, err
	}
	rep, err := c.flushOne()
	return rep.Get, err
}

// Put stores one key, reporting whether it was newly inserted.
func (c *Client) Put(key string, val []byte) (bool, error) {
	if err := c.QueuePut(key, val); err != nil {
		return false, err
	}
	rep, err := c.flushOne()
	return rep.Inserted, err
}

// MGet looks up a batch of keys in one frame; results are in request
// order.
func (c *Client) MGet(keys []string) ([]GetResult, error) {
	if err := c.QueueMGet(keys); err != nil {
		return nil, err
	}
	rep, err := c.flushOne()
	return rep.Gets, err
}

// MPut stores a batch of pairs in one frame; inserted flags are in
// request order.
func (c *Client) MPut(kvs []KV) ([]bool, error) {
	if err := c.QueueMPut(kvs); err != nil {
		return nil, err
	}
	rep, err := c.flushOne()
	return rep.Inserts, err
}

// Stats fetches the stats JSON document — byte-identical to the HTTP
// /stats body for the same cache state.
func (c *Client) Stats() ([]byte, error) {
	if err := c.QueueStats(); err != nil {
		return nil, err
	}
	rep, err := c.flushOne()
	return rep.Data, err
}

// Ping round-trips payload.
func (c *Client) Ping(payload []byte) ([]byte, error) {
	if err := c.QueuePing(payload); err != nil {
		return nil, err
	}
	rep, err := c.flushOne()
	return rep.Data, err
}

// ResetRange purges the remote cache's global sets [lo, hi), returning
// the number of entries dropped. The signature matches
// live.Cache.ResetRange's error-free shape plus the transport error, so
// the cluster layer can use either as a node's Resetter.
func (c *Client) ResetRange(lo, hi int) (int, error) {
	if err := c.QueueReset(lo, hi); err != nil {
		return 0, err
	}
	rep, err := c.flushOne()
	return rep.Purged, err
}

// needEmptyPipeline gates the chunked transfers: their multi-frame
// exchanges cannot interleave with the one-reply-per-request pipeline.
func (c *Client) needEmptyPipeline(op Op) error {
	if err := c.check(); err != nil {
		return err
	}
	if len(c.pending) != 0 {
		return wireErrf(ErrOp, "%v requires an empty pipeline (%d requests queued)", op, len(c.pending))
	}
	return nil
}

// SnapRange fetches a state snapshot of the remote cache's global sets
// [lo, hi), reassembled from the server's chunked SNAP frames. A
// server-side refusal (bad range, unsupported backend) returns an error
// but leaves the connection usable; only transport failures poison the
// client.
func (c *Client) SnapRange(lo, hi int) ([]byte, error) {
	if err := c.needEmptyPipeline(OpSnap); err != nil {
		return nil, err
	}
	p, err := AppendRangeReq(nil, lo, hi)
	if err != nil {
		return nil, err
	}
	if _, err := c.bw.Write(AppendFrame(nil, OpSnap, p)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(err)
	}
	var data []byte
	for {
		op, payload, err := c.r.ReadFrame()
		if err != nil {
			return nil, c.fail(err)
		}
		if op == OpErr {
			return nil, c.fail(wireErrf(ErrPayload, "server error: %s", payload))
		}
		if op != OpSnap {
			return nil, c.fail(wireErrf(ErrOp, "reply op %v for SNAP request", op))
		}
		flag, chunk, err := ParseChunk(payload)
		if err != nil {
			return nil, c.fail(err)
		}
		if flag == ChunkErr {
			return nil, fmt.Errorf("proto: snap refused: %s", chunk)
		}
		if len(data)+len(chunk) > MaxSnapshot {
			return nil, c.fail(wireErrf(ErrTooLarge, "snapshot exceeds max %d", MaxSnapshot))
		}
		data = append(data, chunk...)
		if flag == ChunkLast {
			return data, nil
		}
	}
}

// Restore streams a state snapshot to the remote cache in chunked
// RESTORE frames and applies it with catch-up semantics, returning the
// number of previously-resident entries dropped. A refusal (corrupt or
// mismatched snapshot) returns an error with the remote cache untouched
// and the connection usable.
func (c *Client) Restore(data []byte) (int, error) {
	if err := c.needEmptyPipeline(OpRestore); err != nil {
		return 0, err
	}
	if len(data) > MaxSnapshot {
		return 0, wireErrf(ErrTooLarge, "snapshot %d bytes > max %d", len(data), MaxSnapshot)
	}
	for off := 0; ; off += SnapChunk {
		end, flag := off+SnapChunk, byte(ChunkMore)
		if end >= len(data) {
			end, flag = len(data), ChunkLast
		}
		if _, err := c.bw.Write(AppendFrame(nil, OpRestore, AppendChunk(nil, flag, data[off:end]))); err != nil {
			return 0, c.fail(err)
		}
		// Flush per chunk: the server replies only after the last one,
		// so bounding the in-flight bytes costs nothing and keeps large
		// transfers from overrunning the write buffer in one burst.
		if err := c.bw.Flush(); err != nil {
			return 0, c.fail(err)
		}
		if flag == ChunkLast {
			break
		}
	}
	op, payload, err := c.r.ReadFrame()
	if err != nil {
		return 0, c.fail(err)
	}
	if op == OpErr {
		return 0, c.fail(wireErrf(ErrPayload, "server error: %s", payload))
	}
	if op != OpRestore {
		return 0, c.fail(wireErrf(ErrOp, "reply op %v for RESTORE request", op))
	}
	purged, refusal, err := ParseRestoreResp(payload)
	if err != nil {
		return 0, c.fail(err)
	}
	if refusal != "" {
		return 0, fmt.Errorf("proto: restore refused: %s", refusal)
	}
	return purged, nil
}
