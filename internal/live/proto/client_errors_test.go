package proto

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// brokenConn fails every Write with writeErr after okBytes bytes and
// blocks nothing on Read (reads return readErr), modelling a peer that
// vanished mid-burst: the write side dies first, and any read the
// client attempts afterwards would report a different, less
// diagnostic error.
type brokenConn struct {
	okBytes  int
	writeErr error
	readErr  error
	closed   bool
}

func (b *brokenConn) Write(p []byte) (int, error) {
	if b.okBytes >= len(p) {
		b.okBytes -= len(p)
		return len(p), nil
	}
	n := b.okBytes
	b.okBytes = 0
	return n, b.writeErr
}

func (b *brokenConn) Read(p []byte) (int, error) { return 0, b.readErr }

func (b *brokenConn) Close() error {
	b.closed = true
	return nil
}

// TestFlushBrokenConnReturnsWriteError pins the hardening contract:
// when the connection's write side is broken, Flush reports the
// underlying write error — not the read error a reply fetch would hit.
func TestFlushBrokenConnReturnsWriteError(t *testing.T) {
	writeErr := errors.New("connection reset by peer (write)")
	readErr := errors.New("unrelated read failure")
	conn := &brokenConn{writeErr: writeErr, readErr: readErr}
	c := NewClient(conn)
	if err := c.QueueGet("k"); err != nil {
		t.Fatalf("QueueGet buffered write failed: %v", err)
	}
	if _, err := c.Flush(); !errors.Is(err, writeErr) {
		t.Fatalf("Flush error = %v, want the write error %v", err, writeErr)
	}
	// The client is poisoned: later calls keep reporting the root cause.
	if _, err := c.Flush(); !errors.Is(err, writeErr) {
		t.Fatalf("second Flush error = %v, want sticky write error", err)
	}
	if err := c.QueuePut("k", []byte("v")); !errors.Is(err, writeErr) {
		t.Fatalf("QueuePut after failure = %v, want sticky write error", err)
	}
}

// TestQueueWriteErrorSticks drives enough queued bytes through a
// broken connection that the bufio layer hits the wire mid-queue; the
// failure must surface on the queueing call and stick, so a later
// Flush reports the write error instead of hanging on replies that
// will never come.
func TestQueueWriteErrorSticks(t *testing.T) {
	writeErr := errors.New("broken pipe")
	conn := &brokenConn{writeErr: writeErr, readErr: io.EOF}
	c := NewClient(conn)
	big := strings.Repeat("x", 32<<10)
	var qerr error
	for i := 0; i < 8 && qerr == nil; i++ {
		qerr = c.QueuePing([]byte(big)) // 8 x 32 KiB overflows the 64 KiB buffer
	}
	if !errors.Is(qerr, writeErr) {
		t.Fatalf("queueing past the buffer = %v, want %v", qerr, writeErr)
	}
	if _, err := c.Flush(); !errors.Is(err, writeErr) {
		t.Fatalf("Flush after mid-queue failure = %v, want the write error", err)
	}
}

// TestClientUseAfterClose pins the typed ErrClosed sentinel on every
// entry point and that Close propagates to the underlying connection.
func TestClientUseAfterClose(t *testing.T) {
	conn := &brokenConn{readErr: io.EOF}
	c := NewClient(conn)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !conn.closed {
		t.Fatal("Close did not close the underlying connection")
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	checks := []struct {
		name string
		call func() error
	}{
		{"QueueGet", func() error { return c.QueueGet("k") }},
		{"QueuePut", func() error { return c.QueuePut("k", nil) }},
		{"QueueMGet", func() error { return c.QueueMGet([]string{"k"}) }},
		{"QueueMPut", func() error { return c.QueueMPut([]KV{{Key: "k"}}) }},
		{"QueueStats", c.QueueStats},
		{"QueuePing", func() error { return c.QueuePing(nil) }},
		{"Flush", func() error { _, err := c.Flush(); return err }},
		{"Get", func() error { _, err := c.Get("k"); return err }},
		{"Put", func() error { _, err := c.Put("k", nil); return err }},
		{"MGet", func() error { _, err := c.MGet([]string{"k"}); return err }},
		{"MPut", func() error { _, err := c.MPut([]KV{{Key: "k"}}); return err }},
		{"Stats", func() error { _, err := c.Stats(); return err }},
		{"Ping", func() error { _, err := c.Ping(nil); return err }},
	}
	for _, tc := range checks {
		if err := tc.call(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close = %v, want ErrClosed", tc.name, err)
		}
	}
}

// TestCloseOnNonCloserConn covers clients over plain io.ReadWriters
// (tests use net.Pipe halves wrapped in buffers): Close still poisons
// the client even when there is nothing to close.
func TestCloseOnNonCloserConn(t *testing.T) {
	c := NewClient(struct {
		io.Reader
		io.Writer
	}{strings.NewReader(""), io.Discard})
	if err := c.Close(); err != nil {
		t.Fatalf("Close on non-Closer conn: %v", err)
	}
	if err := c.QueueGet("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("QueueGet after Close = %v, want ErrClosed", err)
	}
}
