// Package proto is the live cache's binary wire protocol: a
// length-prefixed, CRC-guarded frame format plus a pipelined client
// (client.go) and the per-connection server loop (server.go) that
// cmd/rwpserve mounts behind its -tcp listener.
//
// The HTTP surface in cmd/rwpserve makes the transport, not the cache,
// the bottleneck under load: one TCP round trip, one request parse and
// one response header per operation. This protocol removes all three
// costs — frames are cheap to parse, many requests ride one write
// (pipelining), and MGET/MPUT batch many keys into one frame — while
// keeping the cache semantics bit-identical: a batch maps to per-key
// live.Cache Gets/Puts issued in request order, so a single-goroutine
// stream produces byte-identical /stats through either transport (the
// differential tests in cmd/rwpserve enforce exactly that).
//
// # Frame layout
//
// Every message — request or response — is one frame:
//
//	offset  size      field
//	0       2         magic "RW" (0x52 0x57)
//	2       1         version (currently 1)
//	3       1         opcode
//	4       1..5      payload length (uvarint, ≤ MaxPayload)
//	…       length    payload (opcode-specific, see payload.go)
//	…       4         CRC-32C (Castagnoli) of every preceding byte,
//	                  little-endian
//
// The CRC covers the header as well as the payload, so a bit flip
// anywhere in the frame is detected. Within payloads, keys and values
// are uvarint length-prefixed byte strings and batch payloads carry a
// uvarint element count; every declared length is validated against
// MaxKey/MaxValue/MaxBatch and against the bytes actually present
// before any allocation, so a malicious length cannot make the reader
// allocate unboundedly (the fuzz targets pin this down).
//
// Determinism: this package is pure codec + blocking I/O — no wall
// clock, no randomness, no map iteration — so it is rwplint-clean
// under the same rules as the rest of internal/ and adds nothing to
// the nondeterminism surface beyond the sockets it reads.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op is a frame opcode. Responses reuse the request's opcode (a
// pipelined client matches replies to requests purely by order); Err
// is response-only and reports a protocol-level failure before the
// server closes the connection.
type Op byte

const (
	OpGet   Op = 1 // one key → status + value
	OpPut   Op = 2 // one key+value → inserted/overwrote
	OpMGet  Op = 3 // batch of keys → per-key status + value
	OpMPut  Op = 4 // batch of key+value → per-key inserted
	OpStats Op = 5 // no payload → the /stats JSON document
	OpPing  Op = 6 // payload echoed back verbatim
	OpErr   Op = 7 // response-only: error message, connection closes

	// Range-management ops (see range.go). They serve the cluster
	// manager and warm-restart tooling, not the data path.
	OpReset   Op = 8  // set range → entries purged
	OpSnap    Op = 9  // set range → snapshot bytes, chunked across frames
	OpRestore Op = 10 // snapshot bytes, chunked across frames → entries purged
)

// String names the opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpMGet:
		return "MGET"
	case OpMPut:
		return "MPUT"
	case OpStats:
		return "STATS"
	case OpPing:
		return "PING"
	case OpErr:
		return "ERR"
	case OpReset:
		return "RESET"
	case OpSnap:
		return "SNAP"
	case OpRestore:
		return "RESTORE"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Valid reports whether o is an opcode a conforming peer may send.
func (o Op) Valid() bool { return o >= OpGet && o <= OpRestore }

// Wire-format constants. The limits bound the memory any single frame
// can make a reader allocate; the Append* payload builders enforce
// them on the encode side, so well-formed batches stay under
// MaxPayload by construction.
const (
	Magic0  = 'R'
	Magic1  = 'W'
	Version = 1

	// MaxPayload caps a frame's payload length.
	MaxPayload = 4 << 20
	// MaxKey caps one key's length.
	MaxKey = 1 << 16
	// MaxValue caps one value's length.
	MaxValue = 1 << 20
	// MaxBatch caps the element count of an MGET/MPUT frame.
	MaxBatch = 1 << 16

	// SnapChunk is the snapshot bytes carried per SNAP/RESTORE frame —
	// comfortably under MaxPayload so the flag byte and framing fit.
	SnapChunk = 1 << 20
	// MaxSnapshot caps the reassembled size of a chunked snapshot on
	// both sides, bounding what one transfer can make a peer hold.
	MaxSnapshot = 64 << 20

	// headerSize is the fixed prefix before the length uvarint.
	headerSize = 4
	// crcSize trails every frame.
	crcSize = 4
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Protocol errors. ErrCRC and friends wrap into *WireError with
// context; errors.Is still matches the sentinels.
var (
	ErrMagic    = errors.New("proto: bad magic")
	ErrVersion  = errors.New("proto: unsupported version")
	ErrOp       = errors.New("proto: invalid opcode")
	ErrTooLarge = errors.New("proto: length exceeds limit")
	ErrCRC      = errors.New("proto: CRC mismatch")
	ErrPayload  = errors.New("proto: malformed payload")
)

// WireError is a protocol violation with frame context.
type WireError struct {
	Kind error  // one of the sentinel errors above
	Msg  string // human detail
}

// Error implements error.
func (e *WireError) Error() string { return e.Kind.Error() + ": " + e.Msg }

// Unwrap lets errors.Is match the sentinel.
func (e *WireError) Unwrap() error { return e.Kind }

// wireErrf builds a *WireError.
func wireErrf(kind error, format string, args ...any) error {
	return &WireError{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// AppendFrame appends one complete frame (header, payload, CRC) to dst
// and returns the extended slice. It panics if payload exceeds
// MaxPayload — callers construct payloads through the Encode helpers,
// which enforce the limits with errors first.
//
//rwplint:hotpath — runs once per frame on the serving path; appends amortize into dst
func AppendFrame(dst []byte, op Op, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic("proto: AppendFrame payload exceeds MaxPayload")
	}
	start := len(dst)
	dst = append(dst, Magic0, Magic1, Version, byte(op))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// Reader decodes frames from a byte stream. It reads exactly one
// frame's bytes per call — it never over-reads past the CRC — so it
// can share the underlying reader with nothing else but needs no
// pushback. Memory is bounded: the payload buffer grows to the largest
// declared (and validated) payload seen, never past MaxPayload.
type Reader struct {
	r   io.Reader
	buf []byte // reused scratch: header + payload + crc of the current frame
	// lenb is the single-byte scratch for the length-uvarint read loop.
	// As a field it stays on the Reader; as a loop-local it escaped into
	// the io.Reader call and cost one heap allocation per length byte.
	lenb [1]byte
}

// NewReader wraps r. For a net.Conn, wrap in a bufio.Reader first if
// you also need Buffered() for pipelined flushing (server.go does).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads and verifies the next frame, returning its opcode
// and payload. The payload aliases an internal buffer that is
// overwritten by the next call — copy it to retain it. io.EOF is
// returned only at a clean frame boundary; a frame truncated mid-way
// yields io.ErrUnexpectedEOF.
//
// Steady state it allocates nothing (pinned by TestReadFrameAllocs):
// the scratch buffer grows to the connection's high-water payload and
// is reused; the remaining allocations below are one-time, amortized,
// or on error paths that end the connection.
//
//rwplint:hotpath — runs once per frame on the serving path
func (r *Reader) ReadFrame() (Op, []byte, error) {
	// Fixed header: magic, version, opcode.
	if cap(r.buf) < headerSize {
		//rwplint:allow hotalloc — one-time scratch init on a Reader's first frame
		r.buf = make([]byte, 64)
	}
	hdr := r.buf[:headerSize]
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, nil, err // clean boundary: nothing read
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		return 0, nil, truncated(err)
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		//rwplint:allow hotalloc — error path: the connection is about to close
		return 0, nil, wireErrf(ErrMagic, "got %#02x %#02x", hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		//rwplint:allow hotalloc — error path: the connection is about to close
		return 0, nil, wireErrf(ErrVersion, "got %d, want %d", hdr[2], Version)
	}
	op := Op(hdr[3])
	if !op.Valid() {
		//rwplint:allow hotalloc — error path: the connection is about to close
		return 0, nil, wireErrf(ErrOp, "opcode %d", hdr[3])
	}

	// Payload length: uvarint read byte by byte so we never consume
	// past the frame.
	frame := append(r.buf[:0], hdr...)
	var plen uint64
	for shift := uint(0); ; shift += 7 {
		if _, err := io.ReadFull(r.r, r.lenb[:]); err != nil {
			return 0, nil, truncated(err)
		}
		b := r.lenb[0]
		frame = append(frame, b)
		plen |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		if shift >= 28 { // > 5 bytes cannot stay under MaxPayload
			return 0, nil, wireErrf(ErrTooLarge, "payload length uvarint overflows")
		}
	}
	if plen > MaxPayload {
		//rwplint:allow hotalloc — error path: the connection is about to close
		return 0, nil, wireErrf(ErrTooLarge, "payload %d > max %d", plen, MaxPayload)
	}

	// Payload + CRC.
	n := len(frame)
	need := n + int(plen) + crcSize
	if cap(frame) < need {
		//rwplint:allow hotalloc — amortized: scratch grows to the high-water payload, then is reused
		grown := make([]byte, need)
		copy(grown, frame)
		frame = grown[:n]
	}
	frame = frame[:need]
	if _, err := io.ReadFull(r.r, frame[n:]); err != nil {
		return 0, nil, truncated(err)
	}
	r.buf = frame[:0]
	body, crc := frame[:need-crcSize], frame[need-crcSize:]
	want := binary.LittleEndian.Uint32(crc)
	if got := crc32.Checksum(body, castagnoli); got != want {
		//rwplint:allow hotalloc — error path: the connection is about to close
		return 0, nil, wireErrf(ErrCRC, "got %#08x, want %#08x", got, want)
	}
	return op, body[n:], nil
}

// truncated maps an io error inside a frame to ErrUnexpectedEOF.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
