package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip encodes a frame per opcode and decodes the
// concatenated stream back.
func TestFrameRoundTrip(t *testing.T) {
	frames := []struct {
		op      Op
		payload []byte
	}{
		{OpGet, []byte("\x03abc")},
		{OpPut, nil},
		{OpMGet, bytes.Repeat([]byte{0xaa}, 300)}, // 2-byte length uvarint
		{OpStats, []byte("{}")},
		{OpPing, []byte{}},
		{OpErr, []byte("boom")},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f.op, f.payload)
	}
	r := NewReader(bytes.NewReader(wire))
	for i, f := range frames {
		op, payload, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if op != f.op || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: got (%v, %x), want (%v, %x)", i, op, payload, f.op, f.payload)
		}
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestReadFrameErrors drives each malformed-input class through the
// reader and checks it fails with the right sentinel, never a panic.
func TestReadFrameErrors(t *testing.T) {
	valid := AppendFrame(nil, OpPing, []byte("hello"))
	corrupt := func(i int, delta byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= delta
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"magic", corrupt(0, 0xff), ErrMagic},
		{"magic2", corrupt(1, 0x01), ErrMagic},
		{"version", corrupt(2, 0x07), ErrVersion},
		{"opcode zero", corrupt(3, byte(OpPing)), ErrOp},
		{"opcode high", corrupt(3, 0xf0), ErrOp},
		{"payload bit flip", corrupt(7, 0x10), ErrCRC},
		{"crc bit flip", corrupt(len(valid)-1, 0x01), ErrCRC},
		{"truncated header", valid[:2], io.ErrUnexpectedEOF},
		{"truncated payload", valid[:7], io.ErrUnexpectedEOF},
		{"truncated crc", valid[:len(valid)-2], io.ErrUnexpectedEOF},
		{"oversized length", append(append([]byte(nil), valid[:4]...),
			0xff, 0xff, 0xff, 0xff, 0x7f), ErrTooLarge},
		{"runaway length uvarint", append(append([]byte(nil), valid[:4]...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff), ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := NewReader(bytes.NewReader(tc.in)).ReadFrame()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestReaderScratchReuse checks the reader's scratch buffer survives
// frames of growing and shrinking sizes (the aliasing contract).
func TestReaderScratchReuse(t *testing.T) {
	var wire []byte
	sizes := []int{0, 1000, 3, 100_000, 5}
	for _, n := range sizes {
		wire = AppendFrame(wire, OpPing, bytes.Repeat([]byte{byte(n)}, n))
	}
	r := NewReader(bytes.NewReader(wire))
	for _, n := range sizes {
		_, payload, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) != n {
			t.Fatalf("payload size %d, want %d", len(payload), n)
		}
	}
}

// TestPayloadRoundTrips round-trips every op-specific payload codec.
func TestPayloadRoundTrips(t *testing.T) {
	// GET
	gp, err := AppendGetReq(nil, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if k, err := ParseGetReq(gp); err != nil || k != "key-1" {
		t.Fatalf("get req: %q, %v", k, err)
	}
	for _, res := range []GetResult{
		{Status: StatusMiss},
		{Status: StatusHit, Value: []byte("v")},
		{Status: StatusFill, Value: []byte{}},
	} {
		got, err := ParseGetResp(AppendGetResp(nil, res))
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != res.Status || !bytes.Equal(got.Value, res.Value) {
			t.Fatalf("get resp: %+v, want %+v", got, res)
		}
	}
	// PUT
	pp, err := AppendPutReq(nil, "k", []byte("val"))
	if err != nil {
		t.Fatal(err)
	}
	if k, v, err := ParsePutReq(pp); err != nil || k != "k" || string(v) != "val" {
		t.Fatalf("put req: %q %q %v", k, v, err)
	}
	for _, ins := range []bool{true, false} {
		got, err := ParsePutResp(AppendPutResp(nil, ins))
		if err != nil || got != ins {
			t.Fatalf("put resp: %v %v, want %v", got, err, ins)
		}
	}
	// MGET
	keys := []string{"a", "bb", "", "dddd"}
	mp, err := AppendMGetReq(nil, keys)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys, err := ParseMGetReq(mp)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != len(keys) {
		t.Fatalf("mget req count %d, want %d", len(gotKeys), len(keys))
	}
	for i := range keys {
		if gotKeys[i] != keys[i] {
			t.Fatalf("mget req key %d: %q, want %q", i, gotKeys[i], keys[i])
		}
	}
	results := []GetResult{{Status: StatusHit, Value: []byte("x")}, {Status: StatusMiss}}
	gotRes, err := ParseMGetResp(AppendMGetResp(nil, results))
	if err != nil || len(gotRes) != 2 || gotRes[0].Status != StatusHit || gotRes[1].Status != StatusMiss {
		t.Fatalf("mget resp: %+v, %v", gotRes, err)
	}
	// MPUT
	kvs := []KV{{Key: "a", Value: []byte("1")}, {Key: "b", Value: nil}}
	mpp, err := AppendMPutReq(nil, kvs)
	if err != nil {
		t.Fatal(err)
	}
	gotKVs, err := ParseMPutReq(mpp)
	if err != nil || len(gotKVs) != 2 || gotKVs[0].Key != "a" || string(gotKVs[0].Value) != "1" || gotKVs[1].Key != "b" {
		t.Fatalf("mput req: %+v, %v", gotKVs, err)
	}
	gotIns, err := ParseMPutResp(AppendMPutResp(nil, []bool{true, false, true}))
	if err != nil || len(gotIns) != 3 || !gotIns[0] || gotIns[1] || !gotIns[2] {
		t.Fatalf("mput resp: %v, %v", gotIns, err)
	}
}

// TestPayloadLimits checks every limit is enforced on both encode and
// decode.
func TestPayloadLimits(t *testing.T) {
	bigKey := string(bytes.Repeat([]byte{'k'}, MaxKey+1))
	if _, err := AppendGetReq(nil, bigKey); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized key encode: %v", err)
	}
	if _, err := AppendPutReq(nil, "k", make([]byte, MaxValue+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value encode: %v", err)
	}
	if _, err := AppendMGetReq(nil, make([]string, MaxBatch+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized mget batch encode: %v", err)
	}
	if _, err := AppendMPutReq(nil, make([]KV, MaxBatch+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized mput batch encode: %v", err)
	}
	// Decode side: a declared key length larger than the payload.
	if _, err := ParseGetReq([]byte{0x05, 'a'}); !errors.Is(err, ErrPayload) {
		t.Errorf("short key decode: %v", err)
	}
	// Declared length over the limit (uvarint for MaxKey+1).
	if _, err := ParseGetReq([]byte{0x81, 0x80, 0x04}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-limit key decode: %v", err)
	}
	// Trailing garbage.
	gp, _ := AppendGetReq(nil, "k")
	if _, err := ParseGetReq(append(gp, 0x00)); !errors.Is(err, ErrPayload) {
		t.Errorf("trailing bytes decode: %v", err)
	}
	// Batch count over the limit.
	if _, err := ParseMGetReq([]byte{0xff, 0xff, 0x7f}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-limit batch count: %v", err)
	}
	// Invalid status bytes.
	if _, err := ParseGetResp([]byte{9}); !errors.Is(err, ErrPayload) {
		t.Errorf("bad get status: %v", err)
	}
	if _, err := ParsePutResp([]byte{7}); !errors.Is(err, ErrPayload) {
		t.Errorf("bad put status: %v", err)
	}
	if _, err := ParseMPutResp([]byte{0x01, 7}); !errors.Is(err, ErrPayload) {
		t.Errorf("bad mput status: %v", err)
	}
	// Empty payloads where content is mandatory.
	if _, err := ParseGetResp(nil); !errors.Is(err, ErrPayload) {
		t.Errorf("empty get resp: %v", err)
	}
	if _, _, err := ParsePutReq(nil); !errors.Is(err, ErrPayload) {
		t.Errorf("empty put req: %v", err)
	}
	if _, err := ParseMPutReq([]byte{0x02, 0x01, 'a'}); !errors.Is(err, ErrPayload) {
		t.Errorf("truncated mput req: %v", err)
	}
	if _, err := ParseMGetResp([]byte{0x01}); !errors.Is(err, ErrPayload) {
		t.Errorf("truncated mget resp: %v", err)
	}
	if _, err := ParseMPutResp([]byte{0x02, 0x01}); !errors.Is(err, ErrPayload) {
		t.Errorf("truncated mput resp: %v", err)
	}
}

// TestOpString covers the diagnostics stringer.
func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpGet: "GET", OpPut: "PUT", OpMGet: "MGET", OpMPut: "MPUT",
		OpStats: "STATS", OpPing: "PING", OpErr: "ERR", Op(99): "Op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", byte(op), got, want)
		}
	}
	for st, want := range map[GetStatus]string{
		StatusMiss: "miss", StatusHit: "hit", StatusFill: "fill", GetStatus(9): "GetStatus(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("GetStatus(%d).String() = %q, want %q", byte(st), got, want)
		}
	}
}
