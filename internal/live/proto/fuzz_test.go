package proto_test

import (
	"bytes"
	"io"
	"testing"

	"rwp/internal/live/proto"
)

// frameSeeds are the shared seed corpus for the frame-level fuzz
// targets: valid frames of each opcode, boundary sizes, and classic
// corruptions. testdata/fuzz/ holds additional checked-in seeds in the
// native go-fuzz corpus format.
func frameSeeds(f *testing.F) {
	add := func(b []byte) { f.Add(b) }
	add(proto.AppendFrame(nil, proto.OpPing, nil))
	add(proto.AppendFrame(nil, proto.OpStats, nil))
	gp, _ := proto.AppendGetReq(nil, "key")
	add(proto.AppendFrame(nil, proto.OpGet, gp))
	pp, _ := proto.AppendPutReq(nil, "key", []byte("value"))
	add(proto.AppendFrame(nil, proto.OpPut, pp))
	mg, _ := proto.AppendMGetReq(nil, []string{"a", "b", "c"})
	add(proto.AppendFrame(nil, proto.OpMGet, mg))
	mp, _ := proto.AppendMPutReq(nil, []proto.KV{{Key: "a", Value: []byte("1")}})
	add(proto.AppendFrame(nil, proto.OpMPut, mp))
	// Two frames back to back: resync behavior after a good frame.
	add(proto.AppendFrame(proto.AppendFrame(nil, proto.OpPing, []byte("x")), proto.OpStats, nil))
	// Corruptions.
	flipped := proto.AppendFrame(nil, proto.OpPing, []byte("flip me"))
	flipped[len(flipped)/2] ^= 0x40
	add(flipped)
	add([]byte("RW"))                                                                      // truncated header
	add([]byte{'R', 'W', proto.Version, 0xff})                                             // bad opcode
	add(bytes.Repeat([]byte{0xff}, 32))                                                    // noise
	add([]byte{'R', 'W', proto.Version, byte(proto.OpPing), 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge length
	add([]byte{})
}

// FuzzReadFrame hardens the frame reader: arbitrary bytes must never
// panic, never allocate past MaxPayload, and either yield frames or
// fail cleanly. Decoded frame count is bounded by the input size (the
// minimum frame is 9 bytes), so a decoding loop always terminates.
func FuzzReadFrame(f *testing.F) {
	frameSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := proto.NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			op, payload, err := r.ReadFrame()
			if err != nil {
				if err == io.EOF && len(payload) != 0 {
					t.Fatal("EOF with payload")
				}
				return
			}
			if !op.Valid() {
				t.Fatalf("decoded invalid opcode %v", op)
			}
			if len(payload) > proto.MaxPayload {
				t.Fatalf("payload %d exceeds MaxPayload", len(payload))
			}
			if i > len(data)/9 {
				t.Fatalf("decoded more frames than %d input bytes can hold", len(data))
			}
		}
	})
}

// FuzzFrameRoundTrip: whatever opcode/payload the writer accepts must
// decode back bit-exactly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(proto.OpGet), []byte("\x03abc"))
	f.Add(byte(proto.OpPing), []byte{})
	f.Add(byte(proto.OpErr), bytes.Repeat([]byte{0x80}, 200))
	f.Fuzz(func(t *testing.T, opByte byte, payload []byte) {
		op := proto.Op(opByte)
		if !op.Valid() || len(payload) > proto.MaxPayload {
			return // AppendFrame's contract excludes these
		}
		wire := proto.AppendFrame(nil, op, payload)
		gotOp, gotPayload, err := proto.NewReader(bytes.NewReader(wire)).ReadFrame()
		if err != nil {
			t.Fatalf("decoding own frame: %v", err)
		}
		if gotOp != op || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: (%v, %x) -> (%v, %x)", op, payload, gotOp, gotPayload)
		}
		// And the stream ends cleanly right after.
		if _, _, err := proto.NewReader(bytes.NewReader(wire)).ReadFrame(); err != nil {
			t.Fatal(err)
		}
	})
}

// fuzzBackend is a deterministic in-memory Backend for FuzzServeConn.
type fuzzBackend struct{ m map[string][]byte }

func (b *fuzzBackend) Get(key string) ([]byte, bool) {
	v, ok := b.m[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

func (b *fuzzBackend) Put(key string, val []byte) bool {
	_, existed := b.m[key]
	b.m[key] = append([]byte(nil), val...)
	return !existed
}

func (b *fuzzBackend) StatsJSON() ([]byte, error) { return []byte("{}\n"), nil }

// FuzzServeConn feeds the pipelined server loop arbitrary connection
// bytes. The loop must never panic, must answer only with valid
// frames, and must close cleanly: nil on EOF at a frame boundary, a
// wire/transport error otherwise (after an ERR frame).
func FuzzServeConn(f *testing.F) {
	frameSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var out bytes.Buffer
		conn := struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), &out}
		err := proto.ServeConn(conn, &fuzzBackend{m: map[string][]byte{}})
		if err != nil && err != io.ErrUnexpectedEOF && !proto.IsWireError(err) {
			t.Fatalf("unexpected error class: %v", err)
		}
		// Every byte the server wrote must parse as valid frames, the
		// last possibly an ERR.
		r := proto.NewReader(bytes.NewReader(out.Bytes()))
		for {
			op, _, rerr := r.ReadFrame()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				t.Fatalf("server wrote an unparseable frame: %v", rerr)
			}
			if op == proto.OpErr && err == nil {
				t.Fatal("ERR frame written but ServeConn returned nil")
			}
		}
	})
}
