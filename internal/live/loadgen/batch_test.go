package loadgen_test

import (
	"reflect"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
)

// TestBatchEqualsNext: Batch is exactly n Next calls.
func TestBatchEqualsNext(t *testing.T) {
	g1, err := loadgen.New("mcf", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := loadgen.New("mcf", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	batch := g1.Batch(500)
	for i := range batch {
		if want := g2.Next(); !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("op %d: batch %+v, stream %+v", i, batch[i], want)
		}
	}
}

// TestRunsPartition: runs are same-kind, within the size cap, and
// concatenate back to the original stream.
func TestRunsPartition(t *testing.T) {
	g, err := loadgen.New("xalancbmk", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	ops := g.Batch(2000)
	for _, max := range []int{0, 1, 7, 64} {
		runs := loadgen.Runs(ops, max)
		var flat []loadgen.Op
		for _, run := range runs {
			if len(run) == 0 {
				t.Fatalf("max=%d: empty run", max)
			}
			if max > 0 && len(run) > max {
				t.Fatalf("max=%d: run of %d ops", max, len(run))
			}
			for _, op := range run {
				if op.Put != run[0].Put {
					t.Fatalf("max=%d: mixed-kind run", max)
				}
			}
			flat = append(flat, run...)
		}
		if !reflect.DeepEqual(flat, ops) {
			t.Fatalf("max=%d: concatenated runs differ from the stream", max)
		}
	}
	// Unbounded runs must be maximal: adjacent runs alternate kind.
	runs := loadgen.Runs(ops, 0)
	for i := 1; i < len(runs); i++ {
		if runs[i][0].Put == runs[i-1][0].Put {
			t.Fatalf("runs %d and %d have the same kind (not maximal)", i-1, i)
		}
	}
	if got := loadgen.Runs(nil, 4); got != nil {
		t.Fatalf("Runs(nil) = %v", got)
	}
}

// TestApplyAllMatchesRun: replaying a batch gives the same cache state
// and hit count as the op-by-op loop.
func TestApplyAllMatchesRun(t *testing.T) {
	mk := func() *live.Cache {
		cfg := live.DefaultConfig()
		cfg.Sets, cfg.Ways, cfg.Shards = 64, 4, 4
		cfg.Loader = loadgen.Loader(8)
		c, err := live.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	const n = 3000
	c1 := mk()
	g1, _ := loadgen.New("mcf", 0, 8)
	loadgen.Run(c1, g1, n)

	c2 := mk()
	g2, _ := loadgen.New("mcf", 0, 8)
	hits := loadgen.ApplyAll(c2, g2.Batch(n))

	s1, s2 := c1.Stats(), c2.Stats()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverge:\n%+v\n%+v", s1, s2)
	}
	if uint64(hits) != s2.GetHits {
		t.Fatalf("ApplyAll hits %d, stats GetHits %d", hits, s2.GetHits)
	}
}
