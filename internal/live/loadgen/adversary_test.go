package loadgen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// advProfiles are the adversarial stream names under test.
var advProfiles = []string{AdvZipf, AdvFlash, AdvScan, AdvWrite}

func mustStream(t *testing.T, profile string, seed uint64) Stream {
	t.Helper()
	s, err := NewStream(profile, seed, 8)
	if err != nil {
		t.Fatalf("NewStream(%q, %d): %v", profile, seed, err)
	}
	return s
}

// opSig compresses an op to a comparable signature ("G key" / "P key");
// Put values are checked separately against Value.
func opSig(op Op) string {
	if op.Put {
		return "P " + op.Key
	}
	return "G " + op.Key
}

// TestAdversaryGolden pins the head of every adversarial stream at two
// seeds: the streams are a pure function of (profile, seed), and these
// exact sequences are part of the contract — a generator change that
// moves them is a behavior change, not a refactor.
func TestAdversaryGolden(t *testing.T) {
	golden := []struct {
		prof string
		seed uint64
		want []string
	}{
		{AdvFlash, 0, []string{"G bg:431", "G bg:335", "G bg:155", "G bg:225", "G bg:195", "G bg:265"}},
		{AdvFlash, 1, []string{"G bg:193", "G bg:350", "G bg:441", "G bg:165", "G bg:424", "G bg:353"}},
		{AdvScan, 0, []string{"G absent:0", "G absent:1", "G absent:2", "G absent:3", "G absent:4", "G absent:5"}},
		{AdvScan, 1, []string{"G absent:2481", "G absent:2482", "G absent:2483", "G absent:2484", "G absent:2485", "G absent:2486"}},
		{AdvWrite, 0, []string{"P wr:431", "G wr:335", "P wr:155", "P wr:737", "G wr:707", "P wr:265"}},
		{AdvWrite, 1, []string{"P wr:193", "P wr:350", "P wr:441", "P wr:165", "P wr:424", "P wr:865"}},
		{AdvZipf, 0, []string{"P hot:1", "G cold:1179", "G hot:7", "G cold:3337", "G hot:3", "G hot:2"}},
		{AdvZipf, 1, []string{"G hot:6", "G hot:2", "G hot:2", "G hot:1", "G hot:2", "G hot:4"}},
	}
	for _, tc := range golden {
		ops := Take(mustStream(t, tc.prof, tc.seed), len(tc.want))
		var got []string
		for _, op := range ops {
			got = append(got, opSig(op))
			if op.Put && !bytes.Equal(op.Value, Value(op.Key, 8)) {
				t.Errorf("%s seed %d: Put %q value is not Value(key)", tc.prof, tc.seed, op.Key)
			}
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s seed %d:\n got %v\nwant %v", tc.prof, tc.seed, got, tc.want)
		}
	}
}

// TestAdversarySeedSensitivity: seeds must matter for every profile
// (otherwise the pure-function property is vacuous).
func TestAdversarySeedSensitivity(t *testing.T) {
	for _, prof := range advProfiles {
		a := Take(mustStream(t, prof, 0), 200)
		b := Take(mustStream(t, prof, 1), 200)
		if reflect.DeepEqual(a, b) {
			t.Errorf("%s: seeds 0 and 1 generate identical streams", prof)
		}
	}
}

// TestAdversaryTakeEqualsNext: Take is exactly n Next calls, and two
// independently built streams with one seed are the same stream — the
// Batch/stream equivalence contract extended to every new profile.
func TestAdversaryTakeEqualsNext(t *testing.T) {
	const n = 600
	for _, prof := range advProfiles {
		batched := Take(mustStream(t, prof, 7), n)
		byOne := mustStream(t, prof, 7)
		for i, want := range batched {
			if got := byOne.Next(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: op %d: Take %+v != Next %+v", prof, i, want, got)
			}
		}
	}
}

// TestAdversaryRunsConcat: splitting any adversarial stream into
// same-kind runs and concatenating them reproduces the stream — the
// property that lets the batching transports (MGET/MPUT frames) carry
// these profiles unchanged.
func TestAdversaryRunsConcat(t *testing.T) {
	for _, prof := range advProfiles {
		ops := Take(mustStream(t, prof, 11), 500)
		var cat []Op
		for _, run := range Runs(ops, 64) {
			for j := 1; j < len(run); j++ {
				if run[j].Put != run[0].Put {
					t.Fatalf("%s: mixed-kind run", prof)
				}
			}
			cat = append(cat, run...)
		}
		if !reflect.DeepEqual(cat, ops) {
			t.Errorf("%s: concatenated runs differ from the stream", prof)
		}
	}
}

// TestFlashConvergenceIndex pins the flash crowd exactly: for every
// seed, ops FlashPeriod*e+FlashPeriod-FlashBurst .. FlashPeriod*e+
// FlashPeriod-1 are Gets of FlashKey(e), and their neighbors are not.
// The burst indices are seed-independent by construction — that is
// what makes independently seeded clients a crowd.
func TestFlashConvergenceIndex(t *testing.T) {
	for _, seed := range []uint64{0, 3, 99} {
		ops := Take(mustStream(t, AdvFlash, seed), 2*FlashPeriod)
		for e := uint64(0); e < 2; e++ {
			lo := int(e)*FlashPeriod + FlashPeriod - FlashBurst
			for i := lo; i < lo+FlashBurst; i++ {
				if op := ops[i]; op.Put || op.Key != FlashKey(e) {
					t.Fatalf("seed %d op %d = %+v, want Get %s", seed, i, op, FlashKey(e))
				}
			}
			if ops[lo-1].Key == FlashKey(e) {
				t.Fatalf("seed %d op %d converged early", seed, lo-1)
			}
		}
		if int(FlashPeriod)*2 != len(ops) {
			t.Fatal("short take")
		}
	}
}

// TestScanCycleAndPhase: adv:scan sweeps the whole absent keyspace
// cyclically (op i and op i+scanKeys name the same key), every key is
// absent-prefixed, and the seed only rotates the phase.
func TestScanCycleAndPhase(t *testing.T) {
	ops := Take(mustStream(t, AdvScan, 5), scanKeys+10)
	for i := 0; i < 10; i++ {
		if ops[i].Key != ops[scanKeys+i].Key {
			t.Fatalf("op %d and op %d differ: scan is not a %d-cycle", i, scanKeys+i, scanKeys)
		}
	}
	seen := map[string]bool{}
	for _, op := range ops[:scanKeys] {
		if op.Put || !strings.HasPrefix(op.Key, AbsentPrefix) {
			t.Fatalf("scan emitted %+v, want absent-keyspace Gets only", op)
		}
		seen[op.Key] = true
	}
	if len(seen) != scanKeys {
		t.Fatalf("one cycle visited %d distinct keys, want %d", len(seen), scanKeys)
	}
}

// TestWriteStormShape: adv:write is overwhelmingly Puts on the wr:
// keyspace.
func TestWriteStormShape(t *testing.T) {
	ops := Take(mustStream(t, AdvWrite, 0), 2000)
	puts := 0
	for _, op := range ops {
		if !strings.HasPrefix(op.Key, "wr:") {
			t.Fatalf("write storm touched %q", op.Key)
		}
		if op.Put {
			puts++
		}
	}
	if puts < 1800 {
		t.Fatalf("write storm made only %d/2000 Puts", puts)
	}
}

// TestAbsentLoader: absent-prefixed keys are reported missing, all
// others serve the same bytes as the plain Loader — drop-in for every
// stream that stays out of the absent namespace.
func TestAbsentLoader(t *testing.T) {
	al, l := AbsentLoader(16), Loader(16)
	if v := al(AbsentKey(7)); v != nil {
		t.Fatalf("AbsentLoader(%q) = %q, want nil", AbsentKey(7), v)
	}
	for _, key := range []string{"bg:1", "hot:0", "deadbeef"} {
		if !bytes.Equal(al(key), l(key)) {
			t.Fatalf("AbsentLoader(%q) differs from Loader", key)
		}
	}
}

// TestNewStreamDispatch: adv:* names resolve here, unknown adv names
// fail, and non-adv names still go through the workload registry.
func TestNewStreamDispatch(t *testing.T) {
	if _, err := NewStream("adv:nope", 0, 0); err == nil {
		t.Error("unknown adversarial profile accepted")
	}
	if _, err := NewStream("no-such-workload", 0, 0); err == nil {
		t.Error("unknown workload profile accepted")
	}
	if s, err := NewStream("mcf", 0, 0); err != nil || s == nil {
		t.Errorf("workload profile rejected: %v", err)
	}
}
