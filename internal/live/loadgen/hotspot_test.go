package loadgen

import (
	"testing"
)

func hotCfg() HotspotConfig {
	return HotspotConfig{
		HotKeys: 8, ColdKeys: 4096,
		HotFrac: 0.9, WriteFrac: 0.1,
		ValueSize: 32, Seed: 42,
	}
}

// TestHotspotDeterministic pins the stream contract: equal configs
// yield bit-identical op streams.
func TestHotspotDeterministic(t *testing.T) {
	a, err := NewHotspot(hotCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHotspot(hotCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		x, y := a.Next(), b.Next()
		if x.Put != y.Put || x.Key != y.Key || string(x.Value) != string(y.Value) {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

// TestHotspotSkew checks the stream has the advertised shape: the hot
// population dominates, rank 0 is the hottest key, and the write
// fraction is near the configured rate.
func TestHotspotSkew(t *testing.T) {
	h, err := NewHotspot(hotCfg())
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	hits := make(map[string]int)
	hot, writes := 0, 0
	for i := 0; i < n; i++ {
		op := h.Next()
		hits[op.Key]++
		if len(op.Key) >= 4 && op.Key[:4] == "hot:" {
			hot++
		}
		if op.Put {
			writes++
		}
	}
	if frac := float64(hot) / n; frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction %.3f, want ~0.9", frac)
	}
	if frac := float64(writes) / n; frac < 0.07 || frac > 0.13 {
		t.Errorf("write fraction %.3f, want ~0.1", frac)
	}
	top := HotKey(0)
	for i := 1; i < 8; i++ {
		if hits[HotKey(i)] > hits[top] {
			t.Errorf("hot rank %d (%d hits) beats rank 0 (%d hits)", i, hits[HotKey(i)], hits[top])
		}
	}
}

// TestHotspotValuesMatchLoader pins that Put payloads equal what the
// synthetic Loader would refill — the property the cluster differential
// tests rely on when replicas refill after a reset.
func TestHotspotValuesMatchLoader(t *testing.T) {
	h, err := NewHotspot(hotCfg())
	if err != nil {
		t.Fatal(err)
	}
	load := Loader(32)
	for i := 0; i < 1000; i++ {
		op := h.Next()
		if !op.Put {
			continue
		}
		if want := load(op.Key); string(op.Value) != string(want) {
			t.Fatalf("Put value for %q differs from Loader value", op.Key)
		}
	}
}

// TestHotspotHotNames pins the name-override path: ranks map onto the
// provided names (rank 0 hottest) and the stream is otherwise shaped
// exactly like the default-named one.
func TestHotspotHotNames(t *testing.T) {
	cfg := hotCfg()
	cfg.HotKeys = 0 // derived from HotNames
	cfg.HotNames = []string{"shard7:a", "shard7:b", "shard7:c"}
	h, err := NewHotspot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits := make(map[string]int)
	for i := 0; i < 20000; i++ {
		op := h.Next()
		hits[op.Key]++
		if len(op.Key) >= 4 && op.Key[:4] == "hot:" {
			t.Fatalf("op %d used default hot name %q despite HotNames", i, op.Key)
		}
	}
	if hits["shard7:a"] == 0 || hits["shard7:b"] == 0 || hits["shard7:c"] == 0 {
		t.Fatalf("some hot names never drawn: %v", hits)
	}
	if hits["shard7:a"] < hits["shard7:b"] || hits["shard7:b"] < hits["shard7:c"] {
		t.Errorf("zipf rank order not reflected in hot name frequencies: %v", hits)
	}
}

func TestHotspotConfigValidation(t *testing.T) {
	bad := []HotspotConfig{
		{HotKeys: 0, ColdKeys: 1},
		{HotKeys: 1, ColdKeys: 0},
		{HotKeys: 1, ColdKeys: 1, HotFrac: 1.5},
		{HotKeys: 1, ColdKeys: 1, WriteFrac: -0.1},
		{HotKeys: 1, ColdKeys: 1, ZipfS: -1},
	}
	for i, cfg := range bad {
		if _, err := NewHotspot(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
