package loadgen

import "rwp/internal/live"

// Batch returns the next n operations of g as a slice — the batched
// form of the request stream that transports with batch support
// (proto MGET/MPUT) consume. Semantically it is exactly n calls to
// Next: replaying the slice in order against a cache is bit-identical
// to issuing the stream op by op.
func (g *Gen) Batch(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// Runs splits ops into maximal runs of same-kind operations (all Gets
// or all Puts), each at most max long. Concatenating the runs yields
// ops unchanged, so a transport that maps every run onto one batch
// frame (MGET for a Get run, MPUT for a Put run) and issues runs in
// order preserves the stream's per-key operation order exactly — the
// property the differential tests pin down. max <= 0 means unbounded.
func Runs(ops []Op, max int) [][]Op {
	var runs [][]Op
	start := 0
	for i := 1; i <= len(ops); i++ {
		if i == len(ops) || ops[i].Put != ops[start].Put || (max > 0 && i-start >= max) {
			runs = append(runs, ops[start:i])
			start = i
		}
	}
	return runs
}

// ApplyAll issues ops against c in order, returning the Get hit count
// (the single-goroutine replay loop shared by tests and benches).
func ApplyAll(c *live.Cache, ops []Op) (hits int) {
	for _, op := range ops {
		if Apply(c, op) {
			hits++
		}
	}
	return hits
}
