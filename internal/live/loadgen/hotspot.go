package loadgen

import (
	"strconv"

	"rwp/internal/xrand"
)

// HotspotConfig shapes a Hotspot stream. The zero value is not usable;
// fill every field (NewHotspot validates).
type HotspotConfig struct {
	// HotKeys and ColdKeys size the two key populations. Hot keys are
	// few and drawn Zipf-skewed; cold keys are many and drawn uniformly.
	HotKeys  int
	ColdKeys int
	// HotNames, when non-empty, overrides the hot population's key
	// names (and HotKeys is taken as len(HotNames)). The cluster bench
	// uses it to concentrate the hot set on one ring shard — the
	// hot-shard scenario replication exists for.
	HotNames []string
	// HotFrac is the probability an op targets the hot population.
	HotFrac float64
	// WriteFrac is the probability an op is a Put (applied to both
	// populations).
	WriteFrac float64
	// ZipfS is the hot population's Zipf exponent (> 0; 0.99 is the
	// YCSB-style default when callers pass 0).
	ZipfS float64
	// ValueSize is the Put payload size (<= 0 selects DefaultValueSize).
	ValueSize int
	// Seed seeds the stream; equal configs yield bit-identical streams.
	Seed uint64
}

// Hotspot generates the cluster bench's skewed op stream: a small
// Zipf-hot key population that concentrates load on a handful of ring
// shards, over a uniform cold background. That is exactly the shape
// the shard manager exists for — replicating the hot shards' reads
// spreads them across nodes while the cold shards stay at one replica.
// Unlike Gen it is keyed directly (no workload profile behind it), so
// the hot-shard placement is controlled by key names alone.
type Hotspot struct {
	cfg  HotspotConfig
	rng  *xrand.RNG
	zipf *xrand.Zipf
}

// NewHotspot validates cfg and builds the generator.
func NewHotspot(cfg HotspotConfig) (*Hotspot, error) {
	if len(cfg.HotNames) > 0 {
		cfg.HotKeys = len(cfg.HotNames)
	}
	if cfg.HotKeys <= 0 || cfg.ColdKeys <= 0 {
		return nil, errHotspot("HotKeys and ColdKeys must be positive")
	}
	if cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		return nil, errHotspot("HotFrac outside [0,1]")
	}
	if cfg.WriteFrac < 0 || cfg.WriteFrac > 1 {
		return nil, errHotspot("WriteFrac outside [0,1]")
	}
	switch {
	case cfg.ZipfS < 0:
		return nil, errHotspot("ZipfS must be positive")
	case cfg.ZipfS < 1e-9: // unset: the YCSB-style default
		cfg.ZipfS = 0.99
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = DefaultValueSize
	}
	rng := xrand.New(cfg.Seed)
	return &Hotspot{cfg: cfg, rng: rng, zipf: xrand.NewZipf(rng, cfg.HotKeys, cfg.ZipfS)}, nil
}

type errHotspot string

func (e errHotspot) Error() string { return "loadgen: hotspot: " + string(e) }

// HotKey names hot rank i; ranks are stable across runs so rank 0 is
// always the hottest key.
func HotKey(i int) string { return "hot:" + strconv.Itoa(i) }

// ColdKey names cold index i.
func ColdKey(i int) string { return "cold:" + strconv.Itoa(i) }

// Next returns the next operation. The stream is infinite and a pure
// function of the config.
func (h *Hotspot) Next() Op {
	var key string
	if h.rng.Chance(h.cfg.HotFrac) {
		rank := h.zipf.Next()
		if len(h.cfg.HotNames) > 0 {
			key = h.cfg.HotNames[rank]
		} else {
			key = HotKey(rank)
		}
	} else {
		key = ColdKey(h.rng.Intn(h.cfg.ColdKeys))
	}
	if h.rng.Chance(h.cfg.WriteFrac) {
		return Op{Put: true, Key: key, Value: Value(key, h.cfg.ValueSize)}
	}
	return Op{Key: key}
}

// Ops returns the stream's next n operations.
func (h *Hotspot) Ops(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = h.Next()
	}
	return ops
}
