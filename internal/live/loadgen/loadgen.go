// Package loadgen turns the repo's synthetic SPEC-like workload
// profiles (internal/workload) into deterministic key-value operation
// streams for the live cache (internal/live).
//
// The mapping preserves exactly the properties RWP's advantage depends
// on: each profile's memory-reference stream is generated as in the
// simulator (same seeds, same component mix), then every reference
// becomes one KV operation on the key of its cache line — loads become
// Gets, stores become Puts. Zipf-popular read lines become hot Get
// keys; write-once output streams become Put floods of never-reread
// keys; producer-consumer rings become Put-then-Get key reuse. Values
// are derived from the key alone (seeded SplitMix64), so the whole
// stream — keys, values, op kinds — is a pure function of (profile,
// seed delta): bit-identical on every run.
package loadgen

import (
	"strconv"

	"rwp/internal/live"
	"rwp/internal/mem"
	"rwp/internal/workload"
	"rwp/internal/xrand"
)

// Op is one key-value operation.
type Op struct {
	// Put selects the operation: false is a Get.
	Put bool
	// Key is the target key.
	Key string
	// Value is the payload for Puts (nil for Gets).
	Value []byte
}

// Gen produces the deterministic operation stream of one profile.
type Gen struct {
	src     *workload.Source
	valSize int
}

// DefaultValueSize is the synthetic payload size in bytes.
const DefaultValueSize = 64

// New builds a generator for the named profile. seed offsets the
// profile's random streams (0 is the canonical stream, as in
// rwp.Config.Seed); valSize is the Put payload size (<= 0 selects
// DefaultValueSize).
func New(profile string, seed uint64, valSize int) (*Gen, error) {
	prof, err := workload.Get(profile)
	if err != nil {
		return nil, err
	}
	prof = prof.WithSeed(seed)
	if valSize <= 0 {
		valSize = DefaultValueSize
	}
	return &Gen{src: prof.NewSource(), valSize: valSize}, nil
}

// Next returns the next operation. The stream is infinite.
func (g *Gen) Next() Op {
	a, err := g.src.Next()
	if err != nil {
		// Workload sources never end or fail; a change there must not
		// be silently absorbed into the op stream.
		panic("loadgen: workload source failed: " + err.Error())
	}
	key := Key(a.Addr.DefaultLine())
	if a.Kind.IsWrite() {
		return Op{Put: true, Key: key, Value: Value(key, g.valSize)}
	}
	return Op{Key: key}
}

// Key names the cache line's key: the line address in hex. Distinct
// lines map to distinct keys, so the KV working set mirrors the
// profile's line working set one-to-one.
func Key(line mem.LineAddr) string {
	return strconv.FormatUint(uint64(line), 16)
}

// Value derives a key's deterministic payload: size bytes drawn from a
// SplitMix64 stream seeded with the key's hash. Both the loadgen Put
// payloads and the backing-store Loader use it, so a Get backfill and
// an earlier Put of the same key store identical bytes.
func Value(key string, size int) []byte {
	rng := xrand.New(live.HashKey(key))
	v := make([]byte, size)
	for i := 0; i < size; i += 8 {
		w := rng.Uint64()
		for j := i; j < i+8 && j < size; j++ {
			v[j] = byte(w)
			w >>= 8
		}
	}
	return v
}

// Loader returns a live.Loader serving Value(key, size) — the
// deterministic synthetic backing store behind read-allocate fills.
func Loader(size int) live.Loader {
	if size <= 0 {
		size = DefaultValueSize
	}
	return func(key string) []byte { return Value(key, size) }
}

// Apply issues op against c, reporting whether it was a Get hit.
func Apply(c *live.Cache, op Op) (hit bool) {
	if op.Put {
		c.Put(op.Key, op.Value)
		return false
	}
	_, hit = c.Get(op.Key)
	return hit
}

// Run issues the next n operations of g against c.
func Run(c *live.Cache, g *Gen, n int) {
	for i := 0; i < n; i++ {
		Apply(c, g.Next())
	}
}
