package loadgen

import (
	"bytes"
	"reflect"
	"testing"

	"rwp/internal/live"
	"rwp/internal/workload"
)

func TestNewUnknownProfile(t *testing.T) {
	if _, err := New("no-such-profile", 0, 0); err == nil {
		t.Fatal("New accepted an unknown profile")
	}
}

// TestSameSeedSameStream: the op stream is a pure function of
// (profile, seed).
func TestSameSeedSameStream(t *testing.T) {
	g1, err := New("mcf", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New("mcf", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		a, b := g1.Next(), g2.Next()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
	// A different seed must diverge somewhere early.
	g3, err := New("mcf", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1b, _ := New("mcf", 7, 0)
	same := true
	for i := 0; i < 2000; i++ {
		if !reflect.DeepEqual(g1b.Next(), g3.Next()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 2000-op prefixes")
	}
}

// TestOpMapping: the stream mirrors the profile's reference stream —
// loads become Gets, stores become Puts with a deterministic payload.
func TestOpMapping(t *testing.T) {
	prof, err := workload.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	src := prof.WithSeed(3).NewSource()
	g, err := New("mcf", 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	gets, puts := 0, 0
	for i := 0; i < 3000; i++ {
		a, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		op := g.Next()
		wantKey := Key(a.Addr.DefaultLine())
		if op.Key != wantKey {
			t.Fatalf("op %d: key %q, want %q", i, op.Key, wantKey)
		}
		if op.Put != a.Kind.IsWrite() {
			t.Fatalf("op %d: put=%v for kind %v", i, op.Put, a.Kind)
		}
		if op.Put {
			puts++
			if !bytes.Equal(op.Value, Value(op.Key, 16)) {
				t.Fatalf("op %d: value not Value(key)", i)
			}
		} else {
			gets++
			if op.Value != nil {
				t.Fatalf("op %d: Get carries a value", i)
			}
		}
	}
	if gets == 0 || puts == 0 {
		t.Fatalf("degenerate stream: %d gets, %d puts", gets, puts)
	}
}

func TestValueDeterministicAndSized(t *testing.T) {
	v1 := Value("k", 64)
	v2 := Value("k", 64)
	if !bytes.Equal(v1, v2) {
		t.Fatal("Value not deterministic")
	}
	if len(v1) != 64 {
		t.Fatalf("len %d, want 64", len(v1))
	}
	if bytes.Equal(Value("k", 64), Value("j", 64)) {
		t.Fatal("distinct keys share a value")
	}
	if got := len(Value("k", 13)); got != 13 {
		t.Fatalf("odd size: len %d, want 13", got)
	}
}

// TestLoaderMatchesPut: a Get backfill and a Put of the same key store
// identical bytes, at default and explicit sizes.
func TestLoaderMatchesPut(t *testing.T) {
	ld := Loader(0)
	if !bytes.Equal(ld("abc"), Value("abc", DefaultValueSize)) {
		t.Fatal("Loader(0) disagrees with Value at DefaultValueSize")
	}
	if !bytes.Equal(Loader(8)("abc"), Value("abc", 8)) {
		t.Fatal("Loader(8) disagrees with Value(·, 8)")
	}
}

func TestApplyAndRun(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 64, 4, 4
	cfg.Loader = Loader(0)
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit := Apply(c, Op{Put: true, Key: "x", Value: []byte("v")}); hit {
		t.Error("Put reported a Get hit")
	}
	if hit := Apply(c, Op{Key: "x"}); !hit {
		t.Error("Get after Put missed")
	}
	g, err := New("astar", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	Run(c, g, 1000)
	s := c.Stats()
	if s.Gets+s.Puts != 1002 {
		t.Fatalf("ops = %d, want 1002", s.Gets+s.Puts)
	}
}
