package loadgen

import (
	"fmt"
	"strconv"
	"strings"

	"rwp/internal/live"
	"rwp/internal/xrand"
)

// This file is the adversarial half of loadgen: deterministic op
// streams shaped like the traffic that breaks look-aside caches, for
// scoring the stampede defenses (live.Config.Coalesce / NegOps) and
// RWP-vs-LRU under hostile skew. Like every generator in this package,
// each stream is a pure function of (profile, seed): bit-identical on
// every run, at every shard count, on every host.
//
// The four profiles:
//
//	adv:zipf   zipfian hot-key skew (delegates to Hotspot): a handful
//	           of keys absorb most reads — the shared-hot-set shape of
//	           the data-sharing workloads in PAPERS.md.
//	adv:flash  flash crowd: mostly a uniform read-heavy background,
//	           but the last FlashBurst ops of every FlashPeriod-op
//	           window all hit one fresh never-seen key. Every client
//	           running the stream converges on that key at the same
//	           op index — the miss storm fill coalescing exists for.
//	adv:scan   scan flood: an endless cyclic sweep over AbsentKeys the
//	           backing store does not have. Without negative caching
//	           every op is a backend round trip; with it, all but the
//	           first probe per key per window answer locally.
//	adv:write  write storm: almost all Puts over a small keyspace —
//	           the dirty-partition pressure case.

// Stream is the common face of this package's deterministic op
// generators — an infinite seeded stream; *Gen, *Hotspot, and
// *Adversary all implement it.
type Stream interface {
	Next() Op
}

// Adversarial profile names, accepted by NewStream (and therefore by
// rwpserve -profile).
const (
	AdvZipf  = "adv:zipf"
	AdvFlash = "adv:flash"
	AdvScan  = "adv:scan"
	AdvWrite = "adv:write"
)

// Flash-crowd shape: each FlashPeriod-op window ends with FlashBurst
// consecutive Gets of that window's FlashKey. Exported so tests and
// the stampede bench can pin the exact convergence indices.
const (
	FlashPeriod = 256
	FlashBurst  = 16
)

// ScanKeys is adv:scan's cycle length: the flood sweeps this many
// distinct absent keys before repeating. Exported so the stampede
// bench can check the cache geometry against it (a set needs
// ScanKeys/Sets ≤ Ways negative-cache slots to remember one sweep).
const ScanKeys = 4096

const (
	flashBgKeys    = 512  // uniform background keyspace of adv:flash
	flashWriteFrac = 0.05 // background Put fraction of adv:flash
	scanKeys       = ScanKeys
	writeKeys      = 1024 // keyspace of adv:write
	writeFrac      = 0.95 // Put fraction of adv:write
	zipfHotKeys    = 16   // adv:zipf hot population
	zipfColdKeys   = 4096 // adv:zipf cold population
	zipfHotFrac    = 0.9  // adv:zipf hot-traffic fraction
	zipfWriteFrac  = 0.1  // adv:zipf Put fraction
)

// AbsentPrefix marks keys AbsentLoader reports as not in the backing
// store. adv:scan draws all its keys from this namespace.
const AbsentPrefix = "absent:"

// AbsentKey names absent-keyspace index i.
func AbsentKey(i int) string { return AbsentPrefix + strconv.Itoa(i) }

// FlashKey names the key a flash-crowd window converges on. Epochs
// never repeat, so every flash key is cold when its storm begins.
func FlashKey(epoch uint64) string { return "flash:" + strconv.FormatUint(epoch, 10) }

// BgKey names adv:flash's background keyspace index i.
func BgKey(i int) string { return "bg:" + strconv.Itoa(i) }

// WriteKey names adv:write's keyspace index i.
func WriteKey(i int) string { return "wr:" + strconv.Itoa(i) }

// AbsentLoader is Loader with a hole: keys in the AbsentPrefix
// namespace are reported absent (nil), everything else is served
// Value(key, size) as usual. It is a drop-in replacement — streams
// that never touch the absent namespace see identical bytes — and it
// is what gives adv:scan true backend misses to negatively cache.
func AbsentLoader(size int) live.Loader {
	if size <= 0 {
		size = DefaultValueSize
	}
	return func(key string) []byte {
		if strings.HasPrefix(key, AbsentPrefix) {
			return nil
		}
		return Value(key, size)
	}
}

// NewStream resolves a profile name to its generator: adv:* names
// build adversarial streams, everything else is New's workload-backed
// Gen. seed and valSize mean what they mean in New.
func NewStream(profile string, seed uint64, valSize int) (Stream, error) {
	if !strings.HasPrefix(profile, "adv:") {
		return New(profile, seed, valSize)
	}
	if valSize <= 0 {
		valSize = DefaultValueSize
	}
	if profile == AdvZipf {
		h, err := NewHotspot(HotspotConfig{
			HotKeys: zipfHotKeys, ColdKeys: zipfColdKeys,
			HotFrac: zipfHotFrac, WriteFrac: zipfWriteFrac,
			ValueSize: valSize, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return h, nil
	}
	switch profile {
	case AdvFlash, AdvScan, AdvWrite:
	default:
		return nil, fmt.Errorf("loadgen: unknown adversarial profile %q", profile)
	}
	return &Adversary{
		kind: profile,
		rng:  xrand.New(seed),
		// A seed-dependent phase into the scan cycle, so differently
		// seeded scan clients sweep the same keyspace out of step.
		off:     seed * 2654435761 % scanKeys,
		valSize: valSize,
	}, nil
}

// Adversary generates adv:flash, adv:scan, and adv:write (adv:zipf is
// Hotspot). Keyed directly like Hotspot — no workload profile behind
// it — so each stream's hostile shape is exact by construction.
type Adversary struct {
	kind    string
	rng     *xrand.RNG
	i       uint64 // op index: drives the flash epochs and the scan cycle
	off     uint64 // seed-derived scan phase
	valSize int
}

// Next returns the next operation. The stream is infinite and a pure
// function of (kind, seed).
func (a *Adversary) Next() Op {
	i := a.i
	a.i++
	switch a.kind {
	case AdvFlash:
		if i%FlashPeriod >= FlashPeriod-FlashBurst {
			// The crowd: ops with these indices Get the epoch's key, in
			// every client's stream at once. No rng draw — the burst
			// must not shift the background stream's phase.
			return Op{Key: FlashKey(i / FlashPeriod)}
		}
		key := BgKey(a.rng.Intn(flashBgKeys))
		if a.rng.Chance(flashWriteFrac) {
			return Op{Put: true, Key: key, Value: Value(key, a.valSize)}
		}
		return Op{Key: key}
	case AdvScan:
		return Op{Key: AbsentKey(int((i + a.off) % scanKeys))}
	default: // AdvWrite, by NewStream
		key := WriteKey(a.rng.Intn(writeKeys))
		if a.rng.Chance(writeFrac) {
			return Op{Put: true, Key: key, Value: Value(key, a.valSize)}
		}
		return Op{Key: key}
	}
}

// Take returns the next n operations of s — Batch generalized to any
// Stream, with the same semantics: replaying the slice in order is
// bit-identical to issuing the stream op by op.
func Take(s Stream, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = s.Next()
	}
	return ops
}

// RunStream issues the next n operations of s against c (Run, for any
// Stream).
func RunStream(c *live.Cache, s Stream, n int) {
	for i := 0; i < n; i++ {
		Apply(c, s.Next())
	}
}
