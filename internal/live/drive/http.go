package drive

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
)

// Backend is the operation surface Handler serves — *live.Cache
// directly, or a wrapper that forwards to one (rwpserve's
// checkpointing snapshot wrapper). It is the same shape as
// proto.Backend, so one wrapper covers both transports.
type Backend interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) bool
	StatsJSON() ([]byte, error)
}

// Handler wires the cache's HTTP surface: /get, /put, /stats. This is
// the exact handler rwpserve serves; the HTTP target wraps it around a
// loopback listener so driving "http" exercises the same code an
// external client hits.
func Handler(c Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		v, hit := c.Get(key)
		switch {
		case hit:
			w.Header().Set("X-Cache", "hit")
		case v != nil:
			w.Header().Set("X-Cache", "fill") // loader backfill
		default:
			w.Header().Set("X-Cache", "miss")
			http.Error(w, "key not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(v)
	})
	mux.HandleFunc("/put", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut && r.Method != http.MethodPost {
			http.Error(w, "use PUT or POST", http.StatusMethodNotAllowed)
			return
		}
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if c.Put(key, val) {
			w.Header().Set("X-Cache", "insert")
		} else {
			w.Header().Set("X-Cache", "overwrite")
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		data, err := c.StatsJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	return mux
}

// HTTP drives the HTTP surface: one request per op, exactly like an
// external client of /get and /put, against a loopback server the
// target owns.
type HTTP struct {
	srv    *http.Server
	url    string
	client *http.Client
	done   chan struct{}
}

// NewHTTP spins a loopback HTTP server over Handler(c) and a client
// for it.
func NewHTTP(c *live.Cache) (*HTTP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &HTTP{
		srv:    &http.Server{Handler: Handler(c)},
		url:    "http://" + ln.Addr().String(),
		client: &http.Client{},
		done:   make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		t.srv.Serve(ln) // returns ErrServerClosed after Close
	}()
	return t, nil
}

// Replay implements Target.
func (t *HTTP) Replay(ops []loadgen.Op) error {
	for i := range ops {
		if err := t.Do(&ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Do issues one op as one HTTP request — also the unit the proto bench
// times for HTTP latency samples.
func (t *HTTP) Do(op *loadgen.Op) error {
	if op.Put {
		req, err := http.NewRequest(http.MethodPut,
			t.url+"/put?key="+op.Key, bytes.NewReader(op.Value))
		if err != nil {
			return err
		}
		resp, err := t.client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("put %q: status %d", op.Key, resp.StatusCode)
		}
		return nil
	}
	resp, err := t.client.Get(t.url + "/get?key=" + op.Key)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("get %q: status %d", op.Key, resp.StatusCode)
	}
	return nil
}

// StatsJSON implements Target.
func (t *HTTP) StatsJSON() ([]byte, error) {
	resp, err := t.client.Get(t.url + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Close implements Target.
func (t *HTTP) Close() error {
	err := t.srv.Close()
	<-t.done
	return err
}
