package drive

import (
	"net"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
)

// TCP drives the binary protocol over a real loopback socket: the
// stream is split into same-kind runs of at most `batch` ops, each run
// becomes one MGET/MPUT frame, and up to `depth` frames ride one
// pipelined flush. Run order equals stream order, so semantics match
// op-by-op replay.
//
// The target owns a single-connection server loop: *live.Cache
// satisfies proto.Backend directly, so the loop is just
// proto.ServeConn over the accepted conn.
type TCP struct {
	ln    net.Listener
	conn  net.Conn
	cli   *proto.Client
	batch int
	depth int
	done  chan struct{} // server goroutine exit

	keys []string   // reused MGET scratch
	kvs  []proto.KV // reused MPUT scratch
}

// NewTCP binds a loopback listener serving c and connects one
// pipelined client to it.
func NewTCP(c *live.Cache, batch, depth int) (*TCP, error) {
	if batch <= 0 {
		batch = 1
	}
	if depth <= 0 {
		depth = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc, err := ln.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		proto.ServeConn(sc, c)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		<-done
		return nil, err
	}
	return &TCP{ln: ln, conn: conn, cli: proto.NewClient(conn), batch: batch, depth: depth, done: done}, nil
}

// Client exposes the pipelined binary client (the proto bench times
// its Flush round trips directly).
func (t *TCP) Client() *proto.Client { return t.cli }

// Replay implements Target.
func (t *TCP) Replay(ops []loadgen.Op) error {
	for _, run := range loadgen.Runs(ops, t.batch) {
		if err := t.QueueRun(run); err != nil {
			return err
		}
		if t.cli.Depth() >= t.depth {
			if _, err := t.cli.Flush(); err != nil {
				return err
			}
		}
	}
	_, err := t.cli.Flush()
	return err
}

// QueueRun frames one same-kind run as a single MGET or MPUT request.
func (t *TCP) QueueRun(run []loadgen.Op) error {
	if run[0].Put {
		t.kvs = t.kvs[:0]
		for _, op := range run {
			t.kvs = append(t.kvs, proto.KV{Key: op.Key, Value: op.Value})
		}
		return t.cli.QueueMPut(t.kvs)
	}
	t.keys = t.keys[:0]
	for _, op := range run {
		t.keys = append(t.keys, op.Key)
	}
	return t.cli.QueueMGet(t.keys)
}

// StatsJSON implements Target.
func (t *TCP) StatsJSON() ([]byte, error) { return t.cli.Stats() }

// Close implements Target.
func (t *TCP) Close() error {
	t.conn.Close()
	t.ln.Close()
	<-t.done
	return nil
}
