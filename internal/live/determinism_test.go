package live_test

import (
	"reflect"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
)

// runProfile drives n single-goroutine loadgen operations for one
// profile (workload or adversarial) against a fresh cache with the
// given shard count and returns the observable state. mutate, if
// non-nil, adjusts the config before construction — how the tests
// below switch the stampede defenses on.
func runProfile(t *testing.T, profile string, shards, n int, mutate func(*live.Config)) (live.Stats, [2]uint64) {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.Sets = 256
	cfg.Ways = 8
	cfg.Shards = shards
	cfg.RWP.Interval = 32 // ~78 ops/set over n=20k: default 256 would never fire
	cfg.Record = true
	cfg.Loader = loadgen.Loader(0)
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.NewStream(profile, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.RunStream(c, g, n)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	pr := c.ProbeStats()
	return c.Stats(), [2]uint64{pr.Classes[0].Hits, pr.Classes[1].Hits}
}

// TestDeterministicAcrossRuns: the whole observable state — operation
// counters, occupancy, RWP targets, merged probe counters — is
// bit-identical when the same seeded stream is replayed.
func TestDeterministicAcrossRuns(t *testing.T) {
	const n = 20_000
	s1, p1 := runProfile(t, "mcf", 8, n, nil)
	s2, p2 := runProfile(t, "mcf", 8, n, nil)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if p1 != p2 {
		t.Fatalf("probe hit counters differ across identical runs: %v vs %v", p1, p2)
	}
	if s1.Gets == 0 || s1.Puts == 0 {
		t.Fatalf("degenerate stream: %+v", s1.Counters)
	}
}

// TestDeterministicAcrossShardCounts: resharding moves lock
// boundaries, not behavior — a single-goroutine run is bit-identical
// for every shard count.
func TestDeterministicAcrossShardCounts(t *testing.T) {
	const n = 20_000
	base, pbase := runProfile(t, "xalancbmk", 1, n, nil)
	for _, shards := range []int{2, 4, 16, 256} {
		s, p := runProfile(t, "xalancbmk", shards, n, nil)
		if !reflect.DeepEqual(base, s) {
			t.Errorf("shards=%d: stats differ from shards=1:\n%+v\n%+v", shards, base, s)
		}
		if p != pbase {
			t.Errorf("shards=%d: probe counters differ from shards=1: %v vs %v", shards, p, pbase)
		}
	}
	if base.Retargets == 0 {
		t.Error("RWP never repartitioned over 20k ops (interval clock broken?)")
	}
}

// TestDeterministicSeedSensitivity: different seeds must actually
// change the stream (otherwise the invariance tests prove nothing).
func TestDeterministicSeedSensitivity(t *testing.T) {
	mk := func(seed uint64) live.Stats {
		cfg := live.DefaultConfig()
		cfg.Sets, cfg.Ways, cfg.Shards = 64, 4, 4
		cfg.Loader = loadgen.Loader(0)
		c, err := live.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := loadgen.New("mcf", seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		loadgen.Run(c, g, 5000)
		return c.Stats()
	}
	if reflect.DeepEqual(mk(0), mk(1)) {
		t.Fatal("seed 0 and seed 1 produced identical stats")
	}
}

// TestCoalesceSingleGoroutineIdentical: fill coalescing only collapses
// genuinely concurrent misses, so a single-goroutine run with Coalesce
// on is bit-identical — every counter, every probe histogram — to the
// same run with it off, at every shard count. This is the determinism
// contract that lets the bit-identity gates in scripts/check.sh keep
// running with the defense enabled.
func TestCoalesceSingleGoroutineIdentical(t *testing.T) {
	const n = 20_000
	coalesce := func(cfg *live.Config) { cfg.Coalesce = true; cfg.LeaseOps = 64 }
	base, pbase := runProfile(t, "mcf", 8, n, nil)
	for _, shards := range []int{1, 8, 32} {
		s, p := runProfile(t, "mcf", shards, n, coalesce)
		if !reflect.DeepEqual(base, s) {
			t.Errorf("shards=%d: coalesce-on stats differ from coalesce-off:\n%+v\n%+v", shards, base, s)
		}
		if p != pbase {
			t.Errorf("shards=%d: coalesce-on probe counters differ: %v vs %v", shards, p, pbase)
		}
	}
	if base.CoalescedLoads != 0 || base.LeaseExpires != 0 {
		t.Errorf("single-goroutine run coalesced %d / expired %d, want 0/0", base.CoalescedLoads, base.LeaseExpires)
	}
}

// TestNegCacheDeterministic: negative caching changes behavior — that
// is its job — but deterministically: an adversarial scan flood over
// the absent keyspace produces bit-identical counters on every run and
// at every shard count, because verdict expiry runs on the set's own
// op-count clock, never wall time.
func TestNegCacheDeterministic(t *testing.T) {
	const n = 20_000
	neg := func(cfg *live.Config) {
		cfg.NegOps = 64
		cfg.Coalesce = true
		cfg.Loader = loadgen.AbsentLoader(0)
	}
	base, pbase := runProfile(t, loadgen.AdvScan, 1, n, neg)
	for _, shards := range []int{2, 32} {
		s, p := runProfile(t, loadgen.AdvScan, shards, n, neg)
		if !reflect.DeepEqual(base, s) {
			t.Errorf("shards=%d: neg-cache stats differ from shards=1:\n%+v\n%+v", shards, base, s)
		}
		if p != pbase {
			t.Errorf("shards=%d: neg-cache probe counters differ: %v vs %v", shards, p, pbase)
		}
	}
	if s2, _ := runProfile(t, loadgen.AdvScan, 1, n, neg); !reflect.DeepEqual(base, s2) {
		t.Errorf("neg-cache stats differ across identical runs:\n%+v\n%+v", base, s2)
	}
	if base.NegInserts == 0 {
		t.Error("scan flood never inserted a negative verdict")
	}
	if base.Loads != 0 {
		t.Errorf("scan flood loaded %d absent keys (AbsentLoader should return nil for all of them)", base.Loads)
	}
}
