package live_test

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rwp/internal/live"
)

// Tests for the stampede defenses (fill.go): singleflight coalescing,
// negative caching, and lease tokens. The concurrent tests here are
// choreographed — loaders block on channels or spin on observable
// counters — so every assertion is exact, not statistical, and all of
// them hold under -race (scripts/check.sh runs them so).

// defendedConfig is the shared starting point: small, single-shard by
// default so choreography is simple, LRU so Sets=1 is legal.
func defendedConfig() live.Config {
	cfg := live.DefaultConfig()
	cfg.Sets = 64
	cfg.Ways = 4
	cfg.Shards = 1
	cfg.Policy = "lru"
	return cfg
}

// assertLaw checks the stampede conservation law at rest: every Get
// miss resolved to exactly one of the six counters.
func assertLaw(t *testing.T, s live.Stats) {
	t.Helper()
	resolved := s.Loads + s.LoadRaces + s.LoadAbsents + s.CoalescedLoads + s.NegHits + s.NegInserts
	if resolved != s.GetMisses {
		t.Errorf("conservation broken: loads %d + races %d + absents %d + coalesced %d + neg hits %d + neg inserts %d != get misses %d",
			s.Loads, s.LoadRaces, s.LoadAbsents, s.CoalescedLoads, s.NegHits, s.NegInserts, s.GetMisses)
	}
}

// TestStormSingleLoad is the acceptance test for the tentpole: a flash
// crowd of 8 concurrent clients missing on one cold key issues exactly
// one Loader call. The loader refuses to return until the other seven
// misses have coalesced (CoalescedLoads is incremented under the shard
// lock before a waiter blocks), so the storm is total by construction:
// all eight Gets are in flight on the same key at once.
func TestStormSingleLoad(t *testing.T) {
	const clients = 8
	want := []byte("storm-value")
	var calls atomic.Uint64
	var c *live.Cache
	cfg := defendedConfig()
	cfg.Coalesce = true
	cfg.Loader = func(key string) []byte {
		calls.Add(1)
		for c.Stats().CoalescedLoads != clients-1 {
			runtime.Gosched()
		}
		return append([]byte(nil), want...)
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = c.Get("storm")
		}(i)
	}
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("storm of %d clients issued %d Loader calls, want exactly 1", clients, n)
	}
	for i, v := range got {
		if !bytes.Equal(v, want) {
			t.Fatalf("client %d got %q, want %q", i, v, want)
		}
	}
	s := c.Stats()
	if s.GetMisses != clients || s.Loads != 1 || s.CoalescedLoads != clients-1 {
		t.Fatalf("misses %d / loads %d / coalesced %d, want %d / 1 / %d",
			s.GetMisses, s.Loads, s.CoalescedLoads, clients, clients-1)
	}
	assertLaw(t, s)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateLoadRegression pins the failure mode the tentpole
// exists to remove. The undefended unlocked-fill path (PR-6) lets two
// concurrent misses on one key both reach the Loader — the test holds
// the first call open until the second arrives, proving the duplicate
// is real, not a timing accident. The coalesced subtest replays the
// same choreography and shows the second miss waits instead.
func TestDuplicateLoadRegression(t *testing.T) {
	t.Run("undefended-duplicates", func(t *testing.T) {
		var calls atomic.Uint64
		entered1 := make(chan struct{})
		entered2 := make(chan struct{})
		release := make(chan struct{})
		cfg := defendedConfig()
		cfg.Loader = func(key string) []byte {
			switch calls.Add(1) {
			case 1:
				close(entered1)
			case 2:
				close(entered2)
			}
			<-release
			return []byte("dup")
		}
		c, err := live.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Get("k") }()
		<-entered1 // first miss is inside the Loader
		go func() { defer wg.Done(); c.Get("k") }()
		<-entered2 // second miss joined it: the stampede, pinned
		close(release)
		wg.Wait()

		s := c.Stats()
		if calls.Load() != 2 || s.Loads != 1 || s.LoadRaces != 1 {
			t.Fatalf("undefended path: %d calls, loads %d, races %d; want 2 duplicate calls resolving as 1 load + 1 race",
				calls.Load(), s.Loads, s.LoadRaces)
		}
		assertLaw(t, s)
	})

	t.Run("coalesced-single", func(t *testing.T) {
		var calls atomic.Uint64
		entered := make(chan struct{})
		release := make(chan struct{})
		cfg := defendedConfig()
		cfg.Coalesce = true
		cfg.Loader = func(key string) []byte {
			if calls.Add(1) == 1 {
				close(entered)
			}
			<-release
			return []byte("dup")
		}
		c, err := live.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Get("k") }()
		<-entered // leader is inside the Loader
		go func() { defer wg.Done(); c.Get("k") }()
		// The second miss must coalesce, never load: wait until it has
		// (the counter moves before it blocks on the fill).
		for c.Stats().CoalescedLoads == 0 {
			runtime.Gosched()
		}
		close(release)
		wg.Wait()

		s := c.Stats()
		if calls.Load() != 1 || s.Loads != 1 || s.CoalescedLoads != 1 || s.LoadRaces != 0 {
			t.Fatalf("coalesced path: %d calls, loads %d, coalesced %d, races %d; want 1/1/1/0",
				calls.Load(), s.Loads, s.CoalescedLoads, s.LoadRaces)
		}
		assertLaw(t, s)
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// leaseCache builds a Sets=1 cache (every key shares one op-count
// clock) whose loader blocks its first call until released and answers
// later calls immediately — the shape of a stuck backend fetch.
func leaseCache(t *testing.T, leaseOps uint64) (c *live.Cache, calls *atomic.Uint64, entered, release chan struct{}) {
	t.Helper()
	calls = new(atomic.Uint64)
	entered = make(chan struct{})
	release = make(chan struct{})
	cfg := defendedConfig()
	cfg.Sets = 1
	cfg.Coalesce = true
	cfg.LeaseOps = leaseOps
	cfg.Loader = func(key string) []byte {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
			return []byte("stale")
		}
		return []byte("fresh")
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, calls, entered, release
}

// TestLeaseExpiry: a leader whose Loader call outlives LeaseOps set
// operations is deposed — the next miss fetches for itself — and the
// deposed leader's late install demotes to a LoadRace, exactly as a
// lost install race does on the undefended path.
func TestLeaseExpiry(t *testing.T) {
	c, calls, entered, release := leaseCache(t, 5)
	var wg sync.WaitGroup
	wg.Add(1)
	var stale []byte
	go func() { defer wg.Done(); stale, _ = c.Get("k") }()
	<-entered // leader stuck in the Loader, lease clock at op 1
	// Advance the set's op-count past the lease while the fetch hangs.
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		c.Put(k, []byte("x"))
	}
	// This miss finds the in-flight fill over-lease, deposes it, and
	// fetches for itself — without blocking on the stuck leader.
	fresh, _ := c.Get("k")
	if !bytes.Equal(fresh, []byte("fresh")) {
		t.Fatalf("deposing Get returned %q, want the fresh fetch", fresh)
	}
	close(release)
	wg.Wait()
	if !bytes.Equal(stale, []byte("stale")) {
		t.Fatalf("deposed leader returned %q, want its own fetch", stale)
	}

	s := c.Stats()
	if calls.Load() != 2 || s.LeaseExpires != 1 || s.Loads != 1 || s.LoadRaces != 1 || s.CoalescedLoads != 0 {
		t.Fatalf("calls %d, lease expires %d, loads %d, races %d, coalesced %d; want 2/1/1/1/0",
			calls.Load(), s.LeaseExpires, s.Loads, s.LoadRaces, s.CoalescedLoads)
	}
	assertLaw(t, s)
	// The fresh value, not the deposed leader's, is resident.
	if v, hit := c.Get("k"); !hit || !bytes.Equal(v, []byte("fresh")) {
		t.Fatalf("resident value %q (hit=%v), want the deposing fetch's", v, hit)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseHolds is the control: the same choreography inside the
// lease window coalesces instead of deposing.
func TestLeaseHolds(t *testing.T) {
	c, calls, entered, release := leaseCache(t, 100)
	var wg sync.WaitGroup
	wg.Add(2)
	var got [2][]byte
	go func() { defer wg.Done(); got[0], _ = c.Get("k") }()
	<-entered
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		c.Put(k, []byte("x"))
	}
	go func() { defer wg.Done(); got[1], _ = c.Get("k") }()
	for c.Stats().CoalescedLoads == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	s := c.Stats()
	if calls.Load() != 1 || s.LeaseExpires != 0 || s.CoalescedLoads != 1 {
		t.Fatalf("calls %d, lease expires %d, coalesced %d; want 1/0/1 inside the lease window",
			calls.Load(), s.LeaseExpires, s.CoalescedLoads)
	}
	for i, v := range got {
		if !bytes.Equal(v, []byte("stale")) {
			t.Fatalf("client %d got %q, want the leader's result", i, v)
		}
	}
	assertLaw(t, s)
}

// negCache builds a single-shard cache whose loader counts calls and
// reports keys under "absent:" missing; everything else loads "present".
func negCache(t *testing.T, cfg live.Config) (*live.Cache, *atomic.Uint64) {
	t.Helper()
	calls := new(atomic.Uint64)
	cfg.Loader = func(key string) []byte {
		calls.Add(1)
		if len(key) >= 7 && key[:7] == "absent:" {
			return nil
		}
		return []byte("present")
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, calls
}

// TestNegativeCacheWindow: an absence verdict is believed for exactly
// NegOps operations on the set's own clock, then re-verified. With one
// key on one set the schedule is exact: Get 1 inserts (clock 1, expiry
// 11), Gets 2..10 answer locally, Get 11 reaches the backend again.
func TestNegativeCacheWindow(t *testing.T) {
	cfg := defendedConfig()
	cfg.NegOps = 10
	c, calls := negCache(t, cfg)
	for i := 0; i < 11; i++ {
		if v, hit := c.Get("absent:0"); v != nil || hit {
			t.Fatalf("Get %d: absent key answered %q, hit=%v", i+1, v, hit)
		}
	}
	s := c.Stats()
	if calls.Load() != 2 || s.NegInserts != 2 || s.NegHits != 9 {
		t.Fatalf("calls %d, neg inserts %d, neg hits %d; want 2 backend probes and 9 local answers over 11 Gets",
			calls.Load(), s.NegInserts, s.NegHits)
	}
	if s.Loads != 0 || s.GetMisses != 11 {
		t.Fatalf("loads %d, misses %d; want 0 loads (key truly absent), 11 misses", s.Loads, s.GetMisses)
	}
	assertLaw(t, s)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeCachePutInvalidates: a write of a negged key kills the
// verdict immediately — negative answers never shadow a Put.
func TestNegativeCachePutInvalidates(t *testing.T) {
	cfg := defendedConfig()
	cfg.NegOps = 1 << 20
	c, calls := negCache(t, cfg)
	c.Get("absent:0")
	c.Get("absent:0")
	if calls.Load() != 1 {
		t.Fatalf("window not engaged: %d backend calls", calls.Load())
	}
	c.Put("absent:0", []byte("written"))
	if v, hit := c.Get("absent:0"); !hit || !bytes.Equal(v, []byte("written")) {
		t.Fatalf("Get after Put = %q, hit=%v; negative verdict shadowed the write", v, hit)
	}
	s := c.Stats()
	if s.NegHits != 1 || s.NegInserts != 1 {
		t.Fatalf("neg hits %d, inserts %d, want 1/1", s.NegHits, s.NegInserts)
	}
	assertLaw(t, s)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeCacheFillInvalidates: when the backend recovers (starts
// returning the key), the expired verdict is replaced by a real fill
// and the entry is never both resident and negged (CheckInvariants).
func TestNegativeCacheFillInvalidates(t *testing.T) {
	cfg := defendedConfig()
	cfg.NegOps = 4
	var calls atomic.Uint64
	cfg.Loader = func(key string) []byte {
		if calls.Add(1) == 1 {
			return nil // first probe: backend outage
		}
		return []byte("recovered")
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // insert at clock 1 (expiry 5), neg hits at 2..4
		c.Get("k")
	}
	if v, hit := c.Get("k"); hit || !bytes.Equal(v, []byte("recovered")) {
		t.Fatalf("Get past the window = %q (hit=%v), want the recovered fill", v, hit)
	}
	if v, hit := c.Get("k"); !hit || !bytes.Equal(v, []byte("recovered")) {
		t.Fatalf("fill did not install: %q, hit=%v", v, hit)
	}
	s := c.Stats()
	if calls.Load() != 2 || s.NegInserts != 1 || s.NegHits != 3 || s.Loads != 1 {
		t.Fatalf("calls %d, inserts %d, hits %d, loads %d; want 2/1/3/1", calls.Load(), s.NegInserts, s.NegHits, s.Loads)
	}
	assertLaw(t, s)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeCacheBounded: the per-set verdict slice is capped at the
// set's associativity; overflow evicts the soonest-expiring verdict,
// whose key then costs one more backend probe.
func TestNegativeCacheBounded(t *testing.T) {
	cfg := defendedConfig()
	cfg.Sets = 1
	cfg.Ways = 2
	cfg.NegOps = 100
	c, calls := negCache(t, cfg)
	for _, k := range []string{"absent:0", "absent:1", "absent:2", "absent:3"} {
		c.Get(k) // 2-entry cap: 2 and 3 evict the verdicts for 0 and 1
	}
	c.Get("absent:0") // evicted: backend again
	c.Get("absent:3") // retained: local
	s := c.Stats()
	if calls.Load() != 5 || s.NegInserts != 5 || s.NegHits != 1 {
		t.Fatalf("calls %d, inserts %d, hits %d; want 5 backend probes and 1 local answer",
			calls.Load(), s.NegInserts, s.NegHits)
	}
	assertLaw(t, s)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
