package live_test

import (
	"sync"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
)

// TestStressConcurrent hammers one cache from many goroutines (run
// under -race by scripts/check.sh) and then checks that the per-set
// counters are conserved exactly: every operation is accounted for,
// whatever the interleaving.
func TestStressConcurrent(t *testing.T) {
	const (
		workers = 8
		opsPer  = 5_000
	)
	for _, pol := range []string{"lru", "rwp"} {
		t.Run(pol, func(t *testing.T) {
			cfg := live.DefaultConfig()
			cfg.Sets = 128
			cfg.Ways = 4
			cfg.Shards = 8
			cfg.Policy = pol
			cfg.Record = true
			cfg.Loader = loadgen.Loader(0)
			c, err := live.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					g, err := loadgen.New("mcf", seed, 0)
					if err != nil {
						panic(err)
					}
					loadgen.Run(c, g, opsPer)
				}(uint64(w))
			}
			// Concurrent readers exercise Stats/ProbeStats against the
			// writers (the race detector checks the locking).
			stop := make(chan struct{})
			var rg sync.WaitGroup
			rg.Add(1)
			go func() {
				defer rg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = c.Stats()
						_ = c.ProbeStats()
					}
				}
			}()
			wg.Wait()
			close(stop)
			rg.Wait()

			s := c.Stats()
			if got := s.Gets + s.Puts; got != workers*opsPer {
				t.Fatalf("ops lost: gets+puts = %d, want %d", got, workers*opsPer)
			}
			if s.GetHits+s.GetMisses != s.Gets {
				t.Errorf("get split broken: %d+%d != %d", s.GetHits, s.GetMisses, s.Gets)
			}
			if s.PutHits+s.PutInserts != s.Puts {
				t.Errorf("put split broken: %d+%d != %d", s.PutHits, s.PutInserts, s.Puts)
			}
			// Every miss fetched from the loader; fetches that lost the
			// install race to a concurrent writer are counted apart.
			if s.Loads+s.LoadRaces != s.GetMisses {
				t.Errorf("loader misses: loads %d + races %d != get misses %d", s.Loads, s.LoadRaces, s.GetMisses)
			}
			if s.Fills != s.PutInserts+s.Loads {
				t.Errorf("fill conservation broken: %d != %d+%d", s.Fills, s.PutInserts, s.Loads)
			}
			if got := uint64(s.Entries); got != s.Fills-s.Evictions {
				t.Errorf("occupancy broken: entries %d != fills %d - evictions %d", s.Entries, s.Fills, s.Evictions)
			}
			if s.Entries > c.Capacity() {
				t.Errorf("entries %d exceed capacity %d", s.Entries, c.Capacity())
			}
			pr := c.ProbeStats()
			if pr.Classes[0].Accesses != s.Gets || pr.Classes[1].Accesses != s.Puts {
				t.Errorf("probe access totals %d/%d disagree with %d/%d",
					pr.Classes[0].Accesses, pr.Classes[1].Accesses, s.Gets, s.Puts)
			}
			if pr.Evictions() != s.Evictions {
				t.Errorf("probe evictions %d != stats %d", pr.Evictions(), s.Evictions)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
