package live_test

import (
	"sync"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
)

// TestStressConcurrent hammers one cache from many goroutines (run
// under -race by scripts/check.sh) and then checks that the per-set
// counters are conserved exactly: every operation is accounted for,
// whatever the interleaving.
func TestStressConcurrent(t *testing.T) {
	const (
		workers = 8
		opsPer  = 5_000
	)
	for _, pol := range []string{"lru", "rwp"} {
		t.Run(pol, func(t *testing.T) {
			cfg := live.DefaultConfig()
			cfg.Sets = 128
			cfg.Ways = 4
			cfg.Shards = 8
			cfg.Policy = pol
			cfg.Record = true
			cfg.Loader = loadgen.Loader(0)
			c, err := live.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					g, err := loadgen.New("mcf", seed, 0)
					if err != nil {
						panic(err)
					}
					loadgen.Run(c, g, opsPer)
				}(uint64(w))
			}
			// Concurrent readers exercise Stats/ProbeStats against the
			// writers (the race detector checks the locking).
			stop := make(chan struct{})
			var rg sync.WaitGroup
			rg.Add(1)
			go func() {
				defer rg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = c.Stats()
						_ = c.ProbeStats()
					}
				}
			}()
			wg.Wait()
			close(stop)
			rg.Wait()

			s := c.Stats()
			if got := s.Gets + s.Puts; got != workers*opsPer {
				t.Fatalf("ops lost: gets+puts = %d, want %d", got, workers*opsPer)
			}
			if s.GetHits+s.GetMisses != s.Gets {
				t.Errorf("get split broken: %d+%d != %d", s.GetHits, s.GetMisses, s.Gets)
			}
			if s.PutHits+s.PutInserts != s.Puts {
				t.Errorf("put split broken: %d+%d != %d", s.PutHits, s.PutInserts, s.Puts)
			}
			// The stampede conservation law: every miss resolved to
			// exactly one of the six counters (the defense counters are
			// zero here — the defenses are off — but the law is the same).
			if s.Loads+s.LoadRaces+s.LoadAbsents+s.CoalescedLoads+s.NegHits+s.NegInserts != s.GetMisses {
				t.Errorf("loader misses: loads %d + races %d + absents %d + coalesced %d + neg %d/%d != get misses %d",
					s.Loads, s.LoadRaces, s.LoadAbsents, s.CoalescedLoads, s.NegHits, s.NegInserts, s.GetMisses)
			}
			if s.Fills != s.PutInserts+s.Loads {
				t.Errorf("fill conservation broken: %d != %d+%d", s.Fills, s.PutInserts, s.Loads)
			}
			if got := uint64(s.Entries); got != s.Fills-s.Evictions {
				t.Errorf("occupancy broken: entries %d != fills %d - evictions %d", s.Entries, s.Fills, s.Evictions)
			}
			if s.Entries > c.Capacity() {
				t.Errorf("entries %d exceed capacity %d", s.Entries, c.Capacity())
			}
			pr := c.ProbeStats()
			if pr.Classes[0].Accesses != s.Gets || pr.Classes[1].Accesses != s.Puts {
				t.Errorf("probe access totals %d/%d disagree with %d/%d",
					pr.Classes[0].Accesses, pr.Classes[1].Accesses, s.Gets, s.Puts)
			}
			if pr.Evictions() != s.Evictions {
				t.Errorf("probe evictions %d != stats %d", pr.Evictions(), s.Evictions)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStressConcurrentDefended hammers a cache with every stampede
// defense on: half the workers replay flash crowds (independently
// seeded, converging on the same key every FlashPeriod ops — the
// coalescing case), half replay scan floods over the absent keyspace
// (the negative-caching case). Under -race this exercises the
// fills-map and negs-slice locking; afterwards the six-term
// conservation law must hold exactly.
func TestStressConcurrentDefended(t *testing.T) {
	const (
		workers = 8
		opsPer  = 5_000
	)
	cfg := live.DefaultConfig()
	cfg.Sets = 128
	cfg.Ways = 4
	cfg.Shards = 8
	cfg.Record = true
	cfg.Coalesce = true
	cfg.NegOps = 64
	cfg.LeaseOps = 1 << 20 // present but never expiring: loads here are fast
	cfg.Loader = loadgen.AbsentLoader(0)
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w == 0 {
				// One worker hammers a single absent key: whatever the
				// interleaving, most of its Gets land inside a live
				// verdict window, so both neg counters provably move.
				for i := 0; i < opsPer; i++ {
					c.Get(loadgen.AbsentKey(0))
				}
				return
			}
			profile := loadgen.AdvFlash
			if w%2 == 1 {
				profile = loadgen.AdvScan
			}
			s, err := loadgen.NewStream(profile, uint64(w), 0)
			if err != nil {
				panic(err)
			}
			loadgen.RunStream(c, s, opsPer)
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	if got := s.Gets + s.Puts; got != workers*opsPer {
		t.Fatalf("ops lost: gets+puts = %d, want %d", got, workers*opsPer)
	}
	if s.Loads+s.LoadRaces+s.LoadAbsents+s.CoalescedLoads+s.NegHits+s.NegInserts != s.GetMisses {
		t.Errorf("conservation broken: loads %d + races %d + absents %d + coalesced %d + neg %d/%d != get misses %d",
			s.Loads, s.LoadRaces, s.LoadAbsents, s.CoalescedLoads, s.NegHits, s.NegInserts, s.GetMisses)
	}
	if s.Fills != s.PutInserts+s.Loads {
		t.Errorf("fill conservation broken: %d != %d+%d", s.Fills, s.PutInserts, s.Loads)
	}
	// The absent-key hammer guarantees both negative-cache counters
	// moved under any interleaving; the scan flood adds cap-eviction
	// churn on top. (Coalesced fills need a concurrent window and
	// cannot be asserted nonzero here, only conserved — the
	// choreographed tests in fill_test.go pin them exactly.)
	if s.NegInserts == 0 || s.NegHits == 0 {
		t.Errorf("absent-key traffic never engaged the negative cache: inserts %d, hits %d", s.NegInserts, s.NegHits)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
