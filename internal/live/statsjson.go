package live

import (
	"encoding/json"
	"io"

	"rwp/internal/probe"
)

// StatsPayload is the stats JSON document every transport serves: the
// HTTP /stats body, the binary protocol's STATS frame, and rwpserve's
// -selftest output all render exactly this struct through
// WritePayload, which is what makes them byte-comparable. The cluster
// layer (internal/cluster) renders its merged view through the same
// struct, so a replication-factor-1 cluster run over a stream produces
// the same bytes as a single-node run.
//
// Every field is an order-independent aggregate, so the payload is
// shard-count invariant for a deterministic operation stream. Note:
// the lock-shard count is deliberately absent — it is a lock layout
// detail, and keeping it out lets the determinism smokes compare
// payloads across shard counts byte for byte.
type StatsPayload struct {
	Policy   string     `json:"policy"`
	Sets     int        `json:"sets"`
	Ways     int        `json:"ways"`
	Capacity int        `json:"capacity"`
	Stats    Stats      `json:"stats"`
	Probe    *ProbeView `json:"probe,omitempty"`
}

// ProbeView is the merged probe-recorder section of the payload.
type ProbeView struct {
	Load       probe.ClassCounters `json:"load"`
	Store      probe.ClassCounters `json:"store"`
	EvictClean uint64              `json:"evictClean"`
	EvictDirty uint64              `json:"evictDirty"`
}

// NewProbeView extracts the payload's probe section from a merged
// recorder; nil in, nil out (the section is omitted).
func NewProbeView(r *probe.Recorder) *ProbeView {
	if r == nil {
		return nil
	}
	return &ProbeView{
		Load:       r.Classes[probe.Load],
		Store:      r.Classes[probe.Store],
		EvictClean: r.EvictClean,
		EvictDirty: r.EvictDirty,
	}
}

// StatsSnapshot assembles the cache's stats document. (The state
// snapshot for warm restarts is Cache.Snapshot, in snapshot.go.)
func (c *Cache) StatsSnapshot() StatsPayload {
	return StatsPayload{
		Policy:   c.cfg.Policy,
		Sets:     c.cfg.Sets,
		Ways:     c.cfg.Ways,
		Capacity: c.Capacity(),
		Stats:    c.Stats(),
		Probe:    NewProbeView(c.ProbeStats()),
	}
}

// WritePayload renders p as the canonical indented JSON document.
func WritePayload(w io.Writer, p StatsPayload) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// StatsJSON renders the cache's stats document — the exact bytes of
// the HTTP /stats body (it satisfies proto.Backend's StatsJSON).
func (c *Cache) StatsJSON() ([]byte, error) {
	var buf jsonBuffer
	if err := WritePayload(&buf, c.StatsSnapshot()); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// jsonBuffer is a minimal bytes.Buffer stand-in (avoids importing
// bytes for one Write sink).
type jsonBuffer struct{ b []byte }

// Write implements io.Writer.
func (j *jsonBuffer) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}
