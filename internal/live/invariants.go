package live

import "fmt"

// CheckInvariants recounts every set's structural state from scratch
// and compares it with the incrementally maintained counters. It takes
// every shard lock, so it is safe (if slow) on a live cache; the
// stress and determinism tests — including cmd/rwpserve's TCP race
// stress — call it after hammering the cache.
func (c *Cache) CheckInvariants() error {
	for si, sh := range c.shards {
		sh.mu.Lock()
		for i := range sh.sets {
			ls := &sh.sets[i]
			global := si*c.perShard + i
			valid, dirty := 0, 0
			seen := map[string]bool{}
			for w := range ls.entries {
				e := &ls.entries[w]
				if !e.valid {
					continue
				}
				valid++
				if e.dirty {
					dirty++
				}
				if seen[e.key] {
					sh.mu.Unlock()
					return fmt.Errorf("set %d: duplicate key %q", global, e.key)
				}
				seen[e.key] = true
				if got := int(HashKey(e.key) & c.mask); got != global {
					sh.mu.Unlock()
					return fmt.Errorf("set %d holds key %q that hashes to set %d", global, e.key, got)
				}
				if e.line != 0 && uint64(e.line) != HashKey(e.key) {
					sh.mu.Unlock()
					return fmt.Errorf("set %d key %q: stale line identity", global, e.key)
				}
			}
			if valid != ls.validCount || dirty != ls.dirtyCount {
				sh.mu.Unlock()
				return fmt.Errorf("set %d: counted valid=%d dirty=%d, cached valid=%d dirty=%d",
					global, valid, dirty, ls.validCount, ls.dirtyCount)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}
