package live

import "fmt"

// CheckInvariants recounts every set's structural state from scratch
// and compares it with the incrementally maintained counters. It takes
// every shard lock, so it is safe (if slow) on a live cache; the
// stress and determinism tests — including cmd/rwpserve's TCP race
// stress — call it after hammering the cache.
func (c *Cache) CheckInvariants() error {
	for si, sh := range c.shards {
		sh.mu.Lock()
		for i := range sh.sets {
			ls := &sh.sets[i]
			global := si*c.perShard + i
			valid, dirty := 0, 0
			seen := map[string]bool{}
			for w := range ls.entries {
				e := &ls.entries[w]
				if !e.valid {
					continue
				}
				valid++
				if e.dirty {
					dirty++
				}
				if seen[e.key] {
					sh.mu.Unlock()
					return fmt.Errorf("set %d: duplicate key %q", global, e.key)
				}
				seen[e.key] = true
				if got := int(HashKey(e.key) & c.mask); got != global {
					sh.mu.Unlock()
					return fmt.Errorf("set %d holds key %q that hashes to set %d", global, e.key, got)
				}
				if e.line != 0 && uint64(e.line) != HashKey(e.key) {
					sh.mu.Unlock()
					return fmt.Errorf("set %d key %q: stale line identity", global, e.key)
				}
			}
			if valid != ls.validCount || dirty != ls.dirtyCount {
				sh.mu.Unlock()
				return fmt.Errorf("set %d: counted valid=%d dirty=%d, cached valid=%d dirty=%d",
					global, valid, dirty, ls.validCount, ls.dirtyCount)
			}
			if err := checkSetCounters(global, ls, seen, c.cfg.Ways, c.mask); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// checkSetCounters verifies one set's counter conservation and its
// negative-cache structure, under the shard lock. Each asserted pair
// is updated inside a single lock hold on the operation paths, so the
// equalities hold at every observable instant, concurrent load or not;
// the miss-resolution law alone is an inequality, because a miss is
// counted when it probes but resolved (Loads / LoadRaces /
// LoadAbsents / CoalescedLoads / NegHits / NegInserts) only after its unlocked
// Loader window closes.
func checkSetCounters(global int, ls *lset, resident map[string]bool, ways int, mask uint64) error {
	o, sp := &ls.ops, &ls.splits
	switch {
	case o.GetHits+o.GetMisses != o.Gets:
		return fmt.Errorf("set %d: get split %d+%d != %d", global, o.GetHits, o.GetMisses, o.Gets)
	case o.PutHits+o.PutInserts != o.Puts:
		return fmt.Errorf("set %d: put split %d+%d != %d", global, o.PutHits, o.PutInserts, o.Puts)
	case sp.GetHitsClean+sp.GetHitsDirty != o.GetHits:
		return fmt.Errorf("set %d: get-hit partition split does not sum to GetHits", global)
	case sp.PutHitsClean+sp.PutHitsDirty != o.PutHits:
		return fmt.Errorf("set %d: put-hit partition split does not sum to PutHits", global)
	case sp.BypassLoads+sp.BypassStores != o.Bypasses:
		return fmt.Errorf("set %d: bypass split does not sum to Bypasses", global)
	case o.Fills+o.Bypasses != o.PutInserts+o.Loads:
		return fmt.Errorf("set %d: fills %d + bypasses %d != put-inserts %d + loads %d",
			global, o.Fills, o.Bypasses, o.PutInserts, o.Loads)
	case o.DirtyEvictions > o.Evictions:
		return fmt.Errorf("set %d: more dirty evictions than evictions", global)
	case o.Loads+o.LoadRaces+o.LoadAbsents+o.CoalescedLoads+o.NegHits+o.NegInserts > o.GetMisses:
		return fmt.Errorf("set %d: resolved misses %d+%d+%d+%d+%d+%d exceed GetMisses %d",
			global, o.Loads, o.LoadRaces, o.LoadAbsents, o.CoalescedLoads, o.NegHits, o.NegInserts, o.GetMisses)
	}
	if len(ls.negs) > ways {
		return fmt.Errorf("set %d: negative cache holds %d entries, cap is %d ways", global, len(ls.negs), ways)
	}
	for i := range ls.negs {
		key := ls.negs[i].key
		if got := int(HashKey(key) & mask); got != global {
			return fmt.Errorf("set %d: negative-cache key %q hashes to set %d", global, key, got)
		}
		if resident[key] {
			return fmt.Errorf("set %d: key %q is both resident and negatively cached", global, key)
		}
		for j := 0; j < i; j++ {
			if ls.negs[j].key == key {
				return fmt.Errorf("set %d: duplicate negative-cache key %q", global, key)
			}
		}
	}
	return nil
}
