package live

import "rwp/internal/probe"

// Counters are the per-set operation counters. Every field is a sum
// over events, so aggregating them across sets is order-independent —
// the root of the shard-count invariance guarantee.
type Counters struct {
	Gets           uint64 // Get operations
	GetHits        uint64
	GetMisses      uint64
	Puts           uint64 // Put operations
	PutHits        uint64 // overwrites of a resident key
	PutInserts     uint64 // write-allocate fills
	Loads          uint64 // backing-store fetches installed as fills (read-allocate)
	LoadRaces      uint64 // fetches discarded because a writer installed the key first
	LoadAbsents    uint64 // fetches the backing store answered "no such key": nothing installed, miss returned
	CoalescedLoads uint64 // misses served by another Get's in-flight or just-landed fill (no Loader call of their own)
	NegHits        uint64 // misses answered by the negative cache (no Loader call)
	NegInserts     uint64 // Loader misses recorded in the negative cache instead of filled
	LeaseExpires   uint64 // fill leases deposed after LeaseOps set ops (waiter re-fetched)
	Fills          uint64
	FillsDirty     uint64
	Bypasses       uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// add accumulates o into c.
func (c *Counters) add(o Counters) {
	c.Gets += o.Gets
	c.GetHits += o.GetHits
	c.GetMisses += o.GetMisses
	c.Puts += o.Puts
	c.PutHits += o.PutHits
	c.PutInserts += o.PutInserts
	c.Loads += o.Loads
	c.LoadRaces += o.LoadRaces
	c.LoadAbsents += o.LoadAbsents
	c.CoalescedLoads += o.CoalescedLoads
	c.NegHits += o.NegHits
	c.NegInserts += o.NegInserts
	c.LeaseExpires += o.LeaseExpires
	c.Fills += o.Fills
	c.FillsDirty += o.FillsDirty
	c.Bypasses += o.Bypasses
	c.Evictions += o.Evictions
	c.DirtyEvictions += o.DirtyEvictions
}

// ReadHitRate returns GetHits/Gets (0 when no Gets) — the quantity RWP
// raises over LRU.
func (c Counters) ReadHitRate() float64 {
	if c.Gets == 0 {
		return 0
	}
	return float64(c.GetHits) / float64(c.Gets)
}

// Stats is a point-in-time aggregate over every set.
type Stats struct {
	Counters
	// Entries and DirtyEntries are the current occupancy totals.
	Entries      int
	DirtyEntries int
	// Retargets counts RWP repartitionings summed over all sets (0 for
	// LRU).
	Retargets uint64
	// TargetHist[d] counts the sets whose current dirty-partition
	// target is d ways (nil for LRU).
	TargetHist []uint64
	// RetargetUp/Down/Same split Retargets by decision direction
	// (raised, lowered, or kept the dirty target); their sum equals
	// Retargets. Zero for LRU.
	RetargetUp   uint64
	RetargetDown uint64
	RetargetSame uint64
	// CostHist is the histogram of modeled per-op service costs (see
	// the Cost* constants), exact and sparse. Bucket-wise merging is
	// commutative, so it aggregates order-independently like every
	// other field; percentiles come from probe.CostHist.Percentile.
	CostHist probe.CostHist
	// CostHistClean and CostHistDirty split CostHist by the partition
	// that served or received each op: Get hits by the line's dirty
	// bit, all other Gets clean (a read miss is or would be a clean
	// fill), all Puts dirty (a write dirties the line). They conserve:
	// CostHist == CostHistClean + CostHistDirty bucket-wise, which is
	// what lets the restart benchmark show dirty-eviction cost recovery
	// per partition.
	CostHistClean probe.CostHist
	CostHistDirty probe.CostHist
}

// Add accumulates o into s field by field. Every component is an
// order-independent sum (TargetHist adds element-wise; a nil histogram
// on either side is treated as all-zero), so merging per-range or
// per-node snapshots in any order yields the same aggregate — the
// property the cluster layer's merged stats document rests on.
func (s *Stats) Add(o Stats) {
	s.Counters.add(o.Counters)
	s.Entries += o.Entries
	s.DirtyEntries += o.DirtyEntries
	s.Retargets += o.Retargets
	if o.TargetHist != nil {
		if s.TargetHist == nil {
			s.TargetHist = make([]uint64, len(o.TargetHist))
		}
		for d := range o.TargetHist {
			s.TargetHist[d] += o.TargetHist[d]
		}
	}
	s.RetargetUp += o.RetargetUp
	s.RetargetDown += o.RetargetDown
	s.RetargetSame += o.RetargetSame
	s.CostHist.Add(o.CostHist)
	s.CostHistClean.Add(o.CostHistClean)
	s.CostHistDirty.Add(o.CostHistDirty)
}

// addSet accumulates one set's counters and policy state into s.
// Called with the set's shard lock held.
func (s *Stats) addSet(ls *lset) {
	s.Counters.add(ls.ops)
	s.Entries += ls.validCount
	s.DirtyEntries += ls.dirtyCount
	if ls.rwp != nil {
		s.Retargets += ls.rwp.Intervals()
		s.TargetHist[ls.rwp.TargetDirty()]++
		up, down, same := ls.rwp.RetargetDirs()
		s.RetargetUp += up
		s.RetargetDown += down
		s.RetargetSame += same
	}
	s.CostHist.Add(ls.costs)
	s.CostHistClean.Add(ls.costsClean)
	s.CostHistDirty.Add(ls.costsDirty)
}

// Stats aggregates the per-set counters and policy state. It locks one
// shard at a time, so under concurrent load the aggregate is a
// consistent sum of per-set snapshots, not a global atomic snapshot.
func (c *Cache) Stats() Stats {
	var s Stats
	if c.cfg.Policy == "rwp" {
		s.TargetHist = make([]uint64, c.cfg.Ways+1)
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for i := range sh.sets {
			s.addSet(&sh.sets[i])
		}
		sh.mu.Unlock()
	}
	return s
}

// StatsRange aggregates exactly the global sets in [lo, hi). The
// cluster layer assigns each ring shard a contiguous set range, so a
// node's contribution to the merged cluster stats is the sum of
// StatsRange over the shards it serves; summing every shard's range
// over its serving node covers each set exactly once, which makes the
// merged Stats of a replication-factor-1 cluster equal the single-node
// Stats field for field (untouched sets contribute identically on
// both sides). It panics if the range is out of bounds.
func (c *Cache) StatsRange(lo, hi int) Stats {
	if lo < 0 || hi > c.cfg.Sets || lo > hi {
		panic("live: StatsRange out of bounds")
	}
	var s Stats
	if c.cfg.Policy == "rwp" {
		s.TargetHist = make([]uint64, c.cfg.Ways+1)
	}
	for si, sh := range c.shards {
		base := si * c.perShard
		if base+c.perShard <= lo || base >= hi {
			continue
		}
		sh.mu.Lock()
		for i := range sh.sets {
			if g := base + i; g >= lo && g < hi {
				s.addSet(&sh.sets[i])
			}
		}
		sh.mu.Unlock()
	}
	return s
}

// ProbeStats merges the per-shard probe recorders into one Recorder
// holding the order-independent aggregates (class counters and the
// eviction split; retarget sequences stay per-shard because their
// interleaving depends on the shard layout). It returns nil when the
// cache was built without Config.Record.
func (c *Cache) ProbeStats() *probe.Recorder {
	if !c.cfg.Record {
		return nil
	}
	m := probe.NewRecorder(0)
	for _, sh := range c.shards {
		sh.mu.Lock()
		for cl := probe.Class(0); cl < probe.NumClasses; cl++ {
			m.Classes[cl].Add(sh.rec.Classes[cl])
		}
		m.EvictClean += sh.rec.EvictClean
		m.EvictDirty += sh.rec.EvictDirty
		// Service costs live per set (so StatsRange can split them by
		// ring shard); the merged recorder carries their union so node
		// journals (cluster.WriteNodeJournals) get a costs record.
		for i := range sh.sets {
			m.Costs.Add(sh.sets[i].costs)
		}
		sh.mu.Unlock()
	}
	return m
}

// ResetStats zeroes the operation counters and probe recorders (e.g.
// after warmup), leaving cache contents and policy state untouched —
// the same warmup/measure split the simulator uses.
func (c *Cache) ResetStats() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for i := range sh.sets {
			sh.sets[i].ops = Counters{}
			sh.sets[i].splits = splitCounters{}
			sh.sets[i].costs.Reset()
			sh.sets[i].costsClean.Reset()
			sh.sets[i].costsDirty.Reset()
		}
		if sh.rec != nil {
			rec := probe.NewRecorder(0)
			sh.rec = rec
			for i := range sh.sets {
				if sh.sets[i].rwp != nil {
					sh.sets[i].rwp.SetProbe(rec)
				}
			}
		}
		sh.mu.Unlock()
	}
}
