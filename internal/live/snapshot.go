package live

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
	"rwp/internal/probe"
	"rwp/internal/recency"
	"rwp/internal/snap"
)

// This file is the live cache's half of the warm-restart subsystem
// (internal/snap holds the format). Two restore semantics exist on
// purpose:
//
//   - RestoreSnapshot is the full warm restart: entries, policy state,
//     op/cost counters, and a probe-recorder rebuild, so the restored
//     server's /stats document and all future behavior are
//     byte-identical to a never-restarted run.
//   - RestoreRange is cluster replica catch-up: entries and policy
//     state only, for the snapshot's set range. The target node keeps
//     its own counters — they are its cumulative history, and the
//     cluster's merged document sums every node's counters, so copying
//     the primary's would double-count.
//
// Restores validate the whole snapshot against the cache geometry
// before mutating anything, so a rejected snapshot leaves the cache
// exactly as it was — never partially restored.
//
// Stampede-defense state: the defense counters (LoadAbsents,
// CoalescedLoads, NegHits, NegInserts, LeaseExpires) travel in the Ops record (schema
// v2). The negative cache and in-flight fillCalls deliberately do not
// — both are transient op-clocked state, and starting them cold after
// a restore only means re-consulting the backend for a few keys; a
// stale absence verdict is never served. Consequently restart
// bit-equivalence is exact for NegOps == 0 configurations, and
// counter-conserving (never stale) otherwise; see DESIGN.md §16.
//
// Why the format can omit way indices: every fill (LRU's and RWP's
// Victim alike) takes the lowest invalid way first, so a set holding K
// entries has exactly ways 0..K-1 valid, and restore can replay the
// recorded MRU→LRU entries as OnFill calls into ways 0..K-1 (LRU
// first). OnFill bypasses the policy's observe() — the interval clock
// and sampler state transfer via core.State instead — and the fill
// class (DemandStore for dirty entries) reproduces RWP's written bits,
// which the live cache keeps equal to the entry dirty bits.

// Sets returns the global set count (part of proto.RangeBackend).
func (c *Cache) Sets() int { return c.cfg.Sets }

// Snapshot captures the whole cache as a restorable state snapshot.
// (The stats document is StatsSnapshot.)
func (c *Cache) Snapshot() *snap.Snapshot { return c.SnapshotRange(0, c.cfg.Sets) }

// SnapshotRange captures the global sets [lo, hi). It locks one shard
// at a time; under concurrent load the snapshot is a consistent
// per-set composite, not a global atomic point. It panics if the range
// is out of bounds, like StatsRange.
func (c *Cache) SnapshotRange(lo, hi int) *snap.Snapshot {
	if lo < 0 || hi > c.cfg.Sets || lo > hi {
		panic("live: SnapshotRange out of bounds")
	}
	s := &snap.Snapshot{
		Policy: c.cfg.Policy,
		Sets:   c.cfg.Sets,
		Ways:   c.cfg.Ways,
		RWP:    c.cfg.RWP,
		Lo:     lo,
		Hi:     hi,
	}
	if hi > lo {
		s.Records = make([]snap.SetRecord, 0, hi-lo)
	}
	// Shards are contiguous ascending set ranges, so this emits records
	// in ascending global-set order — the canonical record order.
	for si, sh := range c.shards {
		base := si * c.perShard
		if base+c.perShard <= lo || base >= hi {
			continue
		}
		sh.mu.Lock()
		for i := range sh.sets {
			if g := base + i; g >= lo && g < hi {
				s.Records = append(s.Records, snapSet(g, &sh.sets[i]))
			}
		}
		sh.mu.Unlock()
	}
	return s
}

// snapSet captures one set under its shard lock.
func snapSet(g int, ls *lset) snap.SetRecord {
	r := snap.SetRecord{
		Set:        g,
		Ops:        opsToSnap(ls),
		Costs:      cloneHist(ls.costs),
		CostsClean: cloneHist(ls.costsClean),
		CostsDirty: cloneHist(ls.costsDirty),
	}
	tab := ls.recencyOrder()
	for pos := 0; pos < len(ls.entries); pos++ {
		way := tab.At(0, pos)
		e := &ls.entries[way]
		if !e.valid {
			// Invalid ways sit together at the recency bottom; nothing
			// valid follows.
			break
		}
		r.Entries = append(r.Entries, snap.Entry{
			Key:   e.key,
			Value: append([]byte(nil), e.val...),
			Dirty: e.dirty,
		})
	}
	if ls.rwp != nil {
		st := ls.rwp.ExportState()
		r.RWP = &st
	}
	return r
}

// recencyOrder exposes the set's recency table for snapshot iteration.
func (ls *lset) recencyOrder() *recency.Table {
	if ls.rwp != nil {
		return ls.rwp.Recency()
	}
	return ls.pol.(*policy.LRU).Recency()
}

func cloneHist(h probe.CostHist) probe.CostHist {
	var o probe.CostHist
	o.Add(h)
	return o
}

// RestoreSnapshot performs a full warm restart from a whole-cache
// snapshot: entries, policy state, counters, cost histograms, and a
// probe-recorder rebuild. The snapshot must cover [0, Sets) and match
// the cache's policy, geometry, and RWP configuration exactly —
// restart equivalence is only meaningful against the same
// configuration. On error the cache is untouched.
func (c *Cache) RestoreSnapshot(s *snap.Snapshot) error {
	if s.Lo != 0 || s.Hi != c.cfg.Sets {
		return fmt.Errorf("live: restore covers sets [%d,%d), want the whole cache [0,%d)", s.Lo, s.Hi, c.cfg.Sets)
	}
	if err := c.checkSnapshot(s); err != nil {
		return err
	}
	c.applyRange(s, true)
	c.rebuildRecorders()
	return nil
}

// RestoreRange installs a snapshot's entries and policy state for its
// set range [s.Lo, s.Hi), preserving this cache's own counters and
// cost histograms — the cluster catch-up semantics (ResetRange with
// the primary's warm state instead of cold sets). It returns the
// number of previously-resident entries dropped. On error the cache is
// untouched.
func (c *Cache) RestoreRange(s *snap.Snapshot) (purged int, err error) {
	if err := c.checkSnapshot(s); err != nil {
		return 0, err
	}
	return c.applyRange(s, false), nil
}

// checkSnapshot validates s against this cache completely — config
// match, record coverage, per-set entry counts, key-to-set hashing,
// key uniqueness, RWP state shape — before any mutation. snap.Decode
// already enforces the self-contained invariants for snapshots read
// from bytes; in-memory snapshots get the same scrutiny here.
func (c *Cache) checkSnapshot(s *snap.Snapshot) error {
	if s.Policy != c.cfg.Policy || s.Sets != c.cfg.Sets || s.Ways != c.cfg.Ways {
		return fmt.Errorf("live: snapshot of %s %dx%d does not match cache %s %dx%d",
			s.Policy, s.Sets, s.Ways, c.cfg.Policy, c.cfg.Sets, c.cfg.Ways)
	}
	if s.Policy == "rwp" && s.RWP != c.cfg.RWP {
		return fmt.Errorf("live: snapshot RWP config %+v does not match cache %+v", s.RWP, c.cfg.RWP)
	}
	if s.Lo < 0 || s.Hi > c.cfg.Sets || s.Lo > s.Hi {
		return fmt.Errorf("live: snapshot range [%d,%d) out of bounds", s.Lo, s.Hi)
	}
	if len(s.Records) != s.Hi-s.Lo {
		return fmt.Errorf("live: snapshot has %d records for range [%d,%d)", len(s.Records), s.Lo, s.Hi)
	}
	for i := range s.Records {
		r := &s.Records[i]
		if r.Set != s.Lo+i {
			return fmt.Errorf("live: snapshot record %d is set %d, want %d", i, r.Set, s.Lo+i)
		}
		if len(r.Entries) > c.cfg.Ways {
			return fmt.Errorf("live: set %d holds %d entries, cache has %d ways", r.Set, len(r.Entries), c.cfg.Ways)
		}
		for j := range r.Entries {
			e := &r.Entries[j]
			if g := int(HashKey(e.Key) & c.mask); g != r.Set {
				return fmt.Errorf("live: key %q hashes to set %d but was recorded in set %d", e.Key, g, r.Set)
			}
			for k := 0; k < j; k++ {
				if r.Entries[k].Key == e.Key {
					return fmt.Errorf("live: duplicate key %q in set %d", e.Key, r.Set)
				}
			}
		}
		if (r.RWP != nil) != (c.cfg.Policy == "rwp") {
			return fmt.Errorf("live: set %d policy state does not match policy %q", r.Set, c.cfg.Policy)
		}
		if r.RWP != nil {
			// Per-set policies always have exactly one sampler.
			if err := r.RWP.Validate(c.cfg.Ways, 1); err != nil {
				return fmt.Errorf("live: set %d: %w", r.Set, err)
			}
		}
	}
	return nil
}

// applyRange installs the (pre-validated) snapshot records. full also
// restores counters and cost histograms; catch-up keeps the target's.
// Infallible by construction: every failure mode was checked.
func (c *Cache) applyRange(s *snap.Snapshot, full bool) (purged int) {
	for si, sh := range c.shards {
		base := si * c.perShard
		if base+c.perShard <= s.Lo || base >= s.Hi {
			continue
		}
		sh.mu.Lock()
		for i := range sh.sets {
			if g := base + i; g >= s.Lo && g < s.Hi {
				ls := &sh.sets[i]
				purged += ls.validCount
				restoreSet(ls, c.cfg, sh.rec, &s.Records[g-s.Lo], full)
			}
		}
		sh.mu.Unlock()
	}
	return purged
}

// restoreSet rebuilds one set from its record: a fresh policy (wired
// to the shard's current recorder), then the recorded entries replayed
// as fills LRU-first into ways 0..K-1, then the policy state.
func restoreSet(ls *lset, cfg Config, rec *probe.Recorder, r *snap.SetRecord, full bool) {
	initSet(ls, cfg, rec)
	n := len(r.Entries)
	for i := n - 1; i >= 0; i-- {
		way := n - 1 - i
		e := &r.Entries[i]
		h := HashKey(e.Key)
		ls.entries[way] = entry{
			key:   e.Key,
			val:   append([]byte(nil), e.Value...),
			line:  mem.LineAddr(h),
			valid: true,
			dirty: e.Dirty,
		}
		ls.validCount++
		class := cache.DemandLoad
		if e.Dirty {
			ls.dirtyCount++
			class = cache.DemandStore
		}
		// OnFill, not fill(): policy bookkeeping (recency touch, RWP
		// written bits) without advancing the interval clock, emitting
		// probe events, or counting ops — those all transfer as state.
		ls.pol.OnFill(0, way, cache.AccessInfo{Line: mem.LineAddr(h), Class: class})
	}
	if ls.rwp != nil {
		if err := ls.rwp.RestoreState(*r.RWP); err != nil {
			// checkSnapshot validated this exact state; failing here is
			// a programming error, not an input condition.
			panic("live: pre-validated RWP state rejected: " + err.Error())
		}
	}
	if full {
		ls.ops = opsFromSnap(&r.Ops)
		ls.splits = splitsFromSnap(&r.Ops)
		ls.costs = cloneHist(r.Costs)
		ls.costsClean = cloneHist(r.CostsClean)
		ls.costsDirty = cloneHist(r.CostsDirty)
	}
}

// rebuildRecorders reconstructs each shard's probe recorder from the
// restored per-set counters. The mapping inverts exactly what the
// Get/Put/fill paths emit: every Get is a Load access (hits split by
// the line's dirty bit, fills are the Loader installs, all clean);
// every Put is a Store access (fills are the write-allocates:
// Fills-Loads, all dirty fills are Puts); evictions split by victim
// dirty bit. Retarget event sequences are not reconstructable (they
// are an event log, not a sum) and no stats document reads them; see
// DESIGN.md §15.
func (c *Cache) rebuildRecorders() {
	if !c.cfg.Record {
		return
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		rec := probe.NewRecorder(0)
		for i := range sh.sets {
			ls := &sh.sets[i]
			load := &rec.Classes[probe.Load]
			load.Accesses += ls.ops.Gets
			load.Hits += ls.ops.GetHits
			load.Misses += ls.ops.GetMisses
			load.HitsClean += ls.splits.GetHitsClean
			load.HitsDirty += ls.splits.GetHitsDirty
			load.Fills += ls.ops.Loads
			load.Bypasses += ls.splits.BypassLoads
			store := &rec.Classes[probe.Store]
			store.Accesses += ls.ops.Puts
			store.Hits += ls.ops.PutHits
			store.Misses += ls.ops.PutInserts
			store.HitsClean += ls.splits.PutHitsClean
			store.HitsDirty += ls.splits.PutHitsDirty
			store.Fills += ls.ops.Fills - ls.ops.Loads
			store.FillsDirty += ls.ops.FillsDirty
			store.Bypasses += ls.splits.BypassStores
			rec.EvictDirty += ls.ops.DirtyEvictions
			rec.EvictClean += ls.ops.Evictions - ls.ops.DirtyEvictions
			if ls.rwp != nil {
				ls.rwp.SetProbe(rec)
			}
		}
		sh.rec = rec
		sh.mu.Unlock()
	}
}

// SnapBytes encodes SnapshotRange for the wire (proto.RangeBackend);
// out-of-bounds ranges error instead of panicking, since they arrive
// from remote peers.
func (c *Cache) SnapBytes(lo, hi int) ([]byte, error) {
	if lo < 0 || hi > c.cfg.Sets || lo > hi {
		return nil, fmt.Errorf("live: snapshot range [%d,%d) out of bounds (sets %d)", lo, hi, c.cfg.Sets)
	}
	return snap.Encode(c.SnapshotRange(lo, hi)), nil
}

// RestoreBytes decodes and applies a wire snapshot with RestoreRange
// (catch-up) semantics, reporting entries purged.
func (c *Cache) RestoreBytes(data []byte) (int, error) {
	s, err := snap.Decode(data)
	if err != nil {
		return 0, err
	}
	return c.RestoreRange(s)
}

func opsToSnap(ls *lset) snap.Ops {
	o, sp := ls.ops, ls.splits
	return snap.Ops{
		Gets: o.Gets, GetHits: o.GetHits, GetMisses: o.GetMisses,
		Puts: o.Puts, PutHits: o.PutHits, PutInserts: o.PutInserts,
		Loads: o.Loads, LoadRaces: o.LoadRaces, LoadAbsents: o.LoadAbsents,
		CoalescedLoads: o.CoalescedLoads, NegHits: o.NegHits,
		NegInserts: o.NegInserts, LeaseExpires: o.LeaseExpires,
		Fills: o.Fills, FillsDirty: o.FillsDirty, Bypasses: o.Bypasses,
		Evictions: o.Evictions, DirtyEvictions: o.DirtyEvictions,
		GetHitsClean: sp.GetHitsClean, GetHitsDirty: sp.GetHitsDirty,
		PutHitsClean: sp.PutHitsClean, PutHitsDirty: sp.PutHitsDirty,
		BypassLoads: sp.BypassLoads, BypassStores: sp.BypassStores,
	}
}

func opsFromSnap(o *snap.Ops) Counters {
	return Counters{
		Gets: o.Gets, GetHits: o.GetHits, GetMisses: o.GetMisses,
		Puts: o.Puts, PutHits: o.PutHits, PutInserts: o.PutInserts,
		Loads: o.Loads, LoadRaces: o.LoadRaces, LoadAbsents: o.LoadAbsents,
		CoalescedLoads: o.CoalescedLoads, NegHits: o.NegHits,
		NegInserts: o.NegInserts, LeaseExpires: o.LeaseExpires,
		Fills: o.Fills, FillsDirty: o.FillsDirty, Bypasses: o.Bypasses,
		Evictions: o.Evictions, DirtyEvictions: o.DirtyEvictions,
	}
}

func splitsFromSnap(o *snap.Ops) splitCounters {
	return splitCounters{
		GetHitsClean: o.GetHitsClean, GetHitsDirty: o.GetHitsDirty,
		PutHitsClean: o.PutHitsClean, PutHitsDirty: o.PutHitsDirty,
		BypassLoads: o.BypassLoads, BypassStores: o.BypassStores,
	}
}
