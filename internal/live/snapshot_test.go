package live_test

import (
	"bytes"
	"reflect"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/snap"
)

// snapTestConfig is the restart-equivalence geometry: small enough for
// fast tests, busy enough that RWP repartitions many times over the
// stream (interval 32 ≈ 78 ops/set at 20k ops over 256 sets).
func snapTestConfig(shards int) live.Config {
	cfg := live.DefaultConfig()
	cfg.Sets = 256
	cfg.Ways = 8
	cfg.Shards = shards
	cfg.RWP.Interval = 32
	cfg.Record = true
	cfg.Loader = loadgen.Loader(0)
	return cfg
}

func newSnapCache(t testing.TB, shards int) *live.Cache {
	t.Helper()
	c, err := live.New(snapTestConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// skippedGen returns an mcf generator advanced past the first n ops —
// the resumed half of a stream split at op n.
func skippedGen(t testing.TB, n int) *loadgen.Gen {
	t.Helper()
	g, err := loadgen.New("mcf", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g.Next()
	}
	return g
}

func statsJSON(t testing.TB, c *live.Cache) []byte {
	t.Helper()
	b, err := c.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRestartEquivalence is the tentpole contract: kill a run at op
// 12000, snapshot, restore into a fresh cache — possibly with a
// different shard count — and replay the rest of the stream. The final
// stats document must be byte-identical to a never-restarted run.
func TestRestartEquivalence(t *testing.T) {
	const total, cut = 20_000, 12_000

	// Never-restarted reference.
	base := newSnapCache(t, 1)
	g, err := loadgen.New("mcf", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.Run(base, g, total)
	baseJSON := statsJSON(t, base)

	// The "killed" run: first half on a 4-shard cache, then a wire
	// round trip of its snapshot.
	warm := newSnapCache(t, 4)
	loadgen.Run(warm, skippedGen(t, 0), cut)
	data := snap.Encode(warm.Snapshot())

	for _, shards := range []int{1, 4, 32} {
		s, err := snap.Decode(data)
		if err != nil {
			t.Fatalf("shards=%d: decode: %v", shards, err)
		}
		c := newSnapCache(t, shards)
		if err := c.RestoreSnapshot(s); err != nil {
			t.Fatalf("shards=%d: restore: %v", shards, err)
		}
		loadgen.Run(c, skippedGen(t, cut), total-cut)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("shards=%d: invariants after restored tail: %v", shards, err)
		}
		if got := statsJSON(t, c); !bytes.Equal(got, baseJSON) {
			t.Errorf("shards=%d: restored run's stats differ from the never-restarted run\ngot  %s\nwant %s",
				shards, got, baseJSON)
		}
	}
}

// TestSnapshotFixedPoint: re-snapshotting a restored cache reproduces
// the input snapshot byte for byte, across a shard-count change — the
// format is set-indexed, never shard-indexed, and restore loses
// nothing the snapshot records.
func TestSnapshotFixedPoint(t *testing.T) {
	warm := newSnapCache(t, 4)
	loadgen.Run(warm, skippedGen(t, 0), 12_000)
	data := snap.Encode(warm.Snapshot())

	s, err := snap.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c := newSnapCache(t, 32)
	if err := c.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	again := snap.Encode(c.Snapshot())
	if !bytes.Equal(data, again) {
		t.Fatalf("re-snapshot is not a fixed point: %d bytes vs %d bytes", len(data), len(again))
	}
}

// TestRestoreSnapshotRejects: every mismatch between snapshot and
// cache is refused up front, and a refused restore leaves the cache
// byte-identical — never partially restored.
func TestRestoreSnapshotRejects(t *testing.T) {
	warm := newSnapCache(t, 4)
	loadgen.Run(warm, skippedGen(t, 0), 3000)

	target := newSnapCache(t, 4)
	loadgen.Run(target, skippedGen(t, 0), 500)
	before := statsJSON(t, target)

	cases := []struct {
		name string
		mut  func(s *snap.Snapshot)
	}{
		{"partial range", func(s *snap.Snapshot) { s.Hi = 128; s.Records = s.Records[:128] }},
		{"wrong sets", func(s *snap.Snapshot) { s.Sets = 512 }},
		{"wrong ways", func(s *snap.Snapshot) { s.Ways = 4 }},
		{"wrong policy", func(s *snap.Snapshot) { s.Policy = "lru" }},
		{"wrong rwp interval", func(s *snap.Snapshot) { s.RWP.Interval = 64 }},
		{"missing record", func(s *snap.Snapshot) { s.Records = s.Records[:len(s.Records)-1] }},
		{"misnumbered record", func(s *snap.Snapshot) { s.Records[7].Set = 9 }},
		{"foreign key", func(s *snap.Snapshot) {
			for i := range s.Records {
				if len(s.Records[i].Entries) > 0 {
					s.Records[i].Entries[0].Key = "not-in-this-set"
					return
				}
			}
			t.Fatal("no resident entries to corrupt")
		}},
		{"corrupt rwp state", func(s *snap.Snapshot) { s.Records[3].RWP.RetargetUp++ }},
	}
	for _, tc := range cases {
		s := warm.Snapshot() // fresh deep snapshot per case
		tc.mut(s)
		if err := target.RestoreSnapshot(s); err == nil {
			t.Errorf("%s: RestoreSnapshot accepted a mismatched snapshot", tc.name)
		}
		if got := statsJSON(t, target); !bytes.Equal(got, before) {
			t.Errorf("%s: rejected restore mutated the cache", tc.name)
		}
	}

	// Corrupt bytes through the wire entry point: decode fails, cache
	// untouched.
	data := snap.Encode(warm.Snapshot())
	data[len(data)/2] ^= 0x40
	if _, err := target.RestoreBytes(data); err == nil {
		t.Error("RestoreBytes accepted corrupt bytes")
	}
	if got := statsJSON(t, target); !bytes.Equal(got, before) {
		t.Error("failed RestoreBytes mutated the cache")
	}
}

// TestRestoreRangePreservesCounters pins the catch-up semantics: a
// range restore installs the primary's entries and policy occupancy
// but keeps the target's own cumulative counters and cost histograms —
// the cluster's merged document sums every node, so copying the
// primary's counters would double-count.
func TestRestoreRangePreservesCounters(t *testing.T) {
	primary := newSnapCache(t, 4)
	loadgen.Run(primary, skippedGen(t, 0), 8000)

	target := newSnapCache(t, 4)
	g, err := loadgen.New("xalancbmk", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.Run(target, g, 2000)

	const lo, hi = 64, 192
	s := primary.SnapshotRange(lo, hi)
	beforeOps := target.Stats().Counters
	beforeCosts := target.Stats().CostHist

	purged, err := target.RestoreRange(s)
	if err != nil {
		t.Fatalf("RestoreRange: %v", err)
	}
	if purged == 0 {
		t.Error("RestoreRange purged nothing; target range was not warm")
	}
	after := target.Stats()
	if !reflect.DeepEqual(after.Counters, beforeOps) {
		t.Errorf("catch-up rewrote op counters:\nbefore %+v\nafter  %+v", beforeOps, after.Counters)
	}
	if !reflect.DeepEqual(after.CostHist, beforeCosts) {
		t.Error("catch-up rewrote the cost histogram")
	}
	if err := target.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Read-your-write: keys the primary held in the range are resident
	// on the target now (no Loader round trip needed to hit).
	checked := 0
	for i := range s.Records {
		for j := range s.Records[i].Entries {
			e := &s.Records[i].Entries[j]
			v, hit := target.Get(e.Key)
			if !hit {
				t.Fatalf("key %q from the primary's snapshot missed after catch-up", e.Key)
			}
			if !bytes.Equal(v, e.Value) {
				t.Fatalf("key %q holds the wrong value after catch-up", e.Key)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("primary snapshot range held no entries; test is vacuous")
	}
}

// TestRestoredGetHitAllocs: restoring must not regress the serving
// path — a Get hit on a restored cache stays at exactly one allocation
// (the copy-out), same as TestGetHitAllocs pins for a cold cache.
func TestRestoredGetHitAllocs(t *testing.T) {
	warm := newSnapCache(t, 4)
	loadgen.Run(warm, skippedGen(t, 0), 4000)
	s := warm.Snapshot()

	c := newSnapCache(t, 4)
	if err := c.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	var key string
	for i := range s.Records {
		if len(s.Records[i].Entries) > 0 {
			key = s.Records[i].Entries[0].Key
			break
		}
	}
	if key == "" {
		t.Fatal("snapshot holds no entries")
	}
	if _, hit := c.Get(key); !hit {
		t.Fatal("warmup Get missed on restored cache")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, hit := c.Get(key); !hit {
			t.Fatal("Get missed inside AllocsPerRun")
		}
	})
	//rwplint:allow floateq — AllocsPerRun yields an exact small-integer float; the pin is exact by design
	if allocs != 1 {
		t.Errorf("restored Get hit allocates %.1f objects/op, want exactly 1", allocs)
	}
}

// BenchmarkSnapshotEncode measures capturing + encoding a warm cache —
// the checkpoint write path minus the fsync.
func BenchmarkSnapshotEncode(b *testing.B) {
	c := newSnapCache(b, 4)
	loadgen.Run(c, skippedGen(b, 0), 12_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(snap.Encode(c.Snapshot())) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkRestoreSnapshot measures decode + full restore into a fresh
// cache — the warm-restart startup cost.
func BenchmarkRestoreSnapshot(b *testing.B) {
	warm := newSnapCache(b, 4)
	loadgen.Run(warm, skippedGen(b, 0), 12_000)
	data := snap.Encode(warm.Snapshot())
	c := newSnapCache(b, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := snap.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.RestoreSnapshot(s); err != nil {
			b.Fatal(err)
		}
	}
}
