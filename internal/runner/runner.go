package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Clock abstracts the wall clock so per-job timing can be observed from
// cmd/ without internal/ ever reading the host clock (the rwplint
// nowallclock rule). The default engine clock returns the zero time:
// durations are then zero and results are unaffected either way — the
// clock feeds observability only, never control flow.
type Clock interface {
	// Now returns the current time. Implementations live in cmd/ (real
	// wall clock) or tests (fake); internal/ only calls through the
	// interface.
	Now() time.Time
}

// zeroClock is the deterministic default: observability off.
type zeroClock struct{}

func (zeroClock) Now() time.Time { return time.Time{} }

// ZeroClock returns the default deterministic clock.
func ZeroClock() Clock { return zeroClock{} }

// Observer receives per-job progress events. Methods are called from
// worker goroutines concurrently and must be safe for concurrent use.
type Observer interface {
	// JobStart fires when a job begins executing (not for cache hits or
	// coalesced duplicates).
	JobStart(k Key)
	// JobDone fires when a job's value becomes available: executed
	// (fromCache=false) or loaded from the disk cache (fromCache=true).
	// elapsed is measured with the engine's injected Clock.
	JobDone(k Key, elapsed time.Duration, fromCache bool)
}

// Stats counts what the engine did. All fields except MaxQueue are
// monotone counters.
type Stats struct {
	// Submitted is the total number of Submit calls.
	Submitted uint64
	// Coalesced counts submissions that attached to an existing entry
	// (singleflight duplicates and memoized re-asks).
	Coalesced uint64
	// Executed counts jobs whose compute function actually ran.
	Executed uint64
	// Done counts jobs whose value was delivered, executed or disk-hit.
	Done uint64
	// DiskHits counts jobs satisfied by a valid disk-cache entry.
	DiskHits uint64
	// DiskPuts counts results durably written to the disk cache.
	DiskPuts uint64
	// DiskErrors counts cache and journal write failures (non-fatal: the
	// result is still delivered, it just will not survive a restart).
	DiskErrors uint64
	// ExecTime is the summed wall time of executed jobs, measured with
	// the engine's injected Clock (zero under the default zero clock).
	ExecTime time.Duration
	// MaxQueue is the high-water mark of jobs waiting for a worker slot
	// — how far submission ran ahead of execution.
	MaxQueue int
}

// Config configures an Engine.
type Config struct {
	// Workers bounds concurrent job execution; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, enables the persistent result cache.
	CacheDir string
	// Clock is the observability clock; nil means the zero clock.
	Clock Clock
	// Observer receives job events; nil disables them.
	Observer Observer
	// MetricsDir, when non-empty, makes every simulation job run with an
	// attached probe.Recorder and write its run journal (canonical JSONL,
	// see internal/probe) into this directory, named <kind>-<key>.jsonl —
	// content-addressed exactly like the result cache. Journals are
	// written only when a job actually executes: a disk-cache hit skips
	// the simulation, so pair -metrics-dir with a cold cache (or none)
	// when journals for every job are wanted.
	MetricsDir string
	// ProbeWindow is the journal's interval width in measured accesses;
	// 0 selects probe.DefaultWindow.
	ProbeWindow uint64
}

// Engine runs jobs on a bounded worker pool, coalescing duplicate keys
// and optionally persisting results content-addressed on disk.
type Engine struct {
	workers     int
	clock       Clock
	obs         Observer
	cache       *Cache
	metricsDir  string
	probeWindow uint64

	// sem bounds the number of concurrently executing jobs.
	sem chan struct{}

	mu      sync.Mutex
	entries map[string]*entry
	stats   Stats
	queued  int // jobs currently waiting for a worker slot
}

// entry is one job's lifecycle: created on first Submit, closed when
// the value (or error) is available. Later Submits of the same key
// share the entry, so each key executes at most once per Engine.
type entry struct {
	key  Key
	done chan struct{}
	val  any
	err  error
}

// New builds an engine. It fails only if the cache directory cannot be
// created.
func New(cfg Config) (*Engine, error) {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:     w,
		clock:       cfg.Clock,
		obs:         cfg.Observer,
		metricsDir:  cfg.MetricsDir,
		probeWindow: cfg.ProbeWindow,
		sem:         make(chan struct{}, w),
		entries:     make(map[string]*entry),
	}
	if e.clock == nil {
		e.clock = zeroClock{}
	}
	if cfg.CacheDir != "" {
		c, err := OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		e.cache = c
	}
	if cfg.MetricsDir != "" {
		if err := os.MkdirAll(cfg.MetricsDir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: metrics dir: %w", err)
		}
	}
	return e, nil
}

// NewDefault returns an engine with default workers, no disk cache, and
// the zero clock. It cannot fail.
func NewDefault() *Engine {
	e, err := New(Config{})
	if err != nil {
		panic("runner: NewDefault: " + err.Error()) // unreachable: no cache dir
	}
	return e
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Future is a handle to a submitted job's eventual result.
type Future[T any] struct {
	ent *entry
}

// Wait blocks until the job completes and returns its result.
func (f *Future[T]) Wait() (T, error) {
	<-f.ent.done
	var zero T
	if f.ent.err != nil {
		return zero, f.ent.err
	}
	v, ok := f.ent.val.(T)
	if !ok {
		// Two kinds hashed to one key with different result types — a
		// programming error (kinds must map 1:1 to result types).
		return zero, fmt.Errorf("runner: job %s: result is %T, caller expects %T", f.ent.key, f.ent.val, zero)
	}
	return v, nil
}

// Failed returns a future that is already resolved to err (for callers
// whose key construction fails before a job can be submitted).
func Failed[T any](err error) *Future[T] {
	ent := &entry{done: make(chan struct{}), err: err}
	close(ent.done)
	return &Future[T]{ent: ent}
}

// Submit enqueues a job. The first submission of a key schedules run on
// the worker pool (after consulting the disk cache); duplicates coalesce
// onto the same in-flight or completed entry. run must be a pure
// function of the key. Results are JSON-encoded for the disk cache, so
// T must round-trip through encoding/json exactly (plain structs of
// integers, strings, slices and finite floats do).
func Submit[T any](e *Engine, key Key, run func() (T, error)) *Future[T] {
	e.mu.Lock()
	e.stats.Submitted++
	if ent, ok := e.entries[key.id]; ok {
		e.stats.Coalesced++
		e.mu.Unlock()
		return &Future[T]{ent: ent}
	}
	ent := &entry{key: key, done: make(chan struct{})}
	e.entries[key.id] = ent
	e.mu.Unlock()

	go e.exec(ent,
		func() (any, error) { return run() },
		func(b []byte) (any, error) {
			var v T
			if err := json.Unmarshal(b, &v); err != nil {
				return nil, err
			}
			return v, nil
		})
	return &Future[T]{ent: ent}
}

// exec resolves one entry on the worker pool: disk-cache probe, then
// compute, then best-effort durable write.
func (e *Engine) exec(ent *entry, run func() (any, error), decode func([]byte) (any, error)) {
	e.count(func(s *Stats) {
		e.queued++
		if e.queued > s.MaxQueue {
			s.MaxQueue = e.queued
		}
	})
	e.sem <- struct{}{}
	e.count(func(*Stats) { e.queued-- })
	defer func() { <-e.sem }()
	defer close(ent.done)

	if e.cache != nil {
		start := e.clock.Now()
		if payload, ok := e.cache.Get(ent.key); ok {
			if v, err := decode(payload); err == nil {
				ent.val = v
				e.count(func(s *Stats) { s.DiskHits++; s.Done++ })
				if e.obs != nil {
					e.obs.JobDone(ent.key, e.clock.Now().Sub(start), true)
				}
				return
			}
			// Undecodable despite a valid checksum: stale schema that
			// slipped past the salt. Recompute; the Put below replaces it.
		}
	}

	if e.obs != nil {
		e.obs.JobStart(ent.key)
	}
	start := e.clock.Now()
	v, err := run()
	elapsed := e.clock.Now().Sub(start)
	ent.val, ent.err = v, err
	e.count(func(s *Stats) { s.Executed++; s.Done++; s.ExecTime += elapsed })
	if e.obs != nil {
		e.obs.JobDone(ent.key, elapsed, false)
	}
	if err != nil || e.cache == nil {
		return
	}
	if payload, jerr := json.Marshal(v); jerr == nil {
		if e.cache.Put(ent.key, payload) == nil {
			e.count(func(s *Stats) { s.DiskPuts++ })
			return
		}
	}
	e.count(func(s *Stats) { s.DiskErrors++ })
}

// count applies one mutation to the stats under the engine lock.
func (e *Engine) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}
