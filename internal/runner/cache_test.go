package runner

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"rwp/internal/sim"
)

func testKey(t *testing.T) Key {
	t.Helper()
	k, err := NewKey("t", "unit", struct{ A int }{7})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte(`{"x":1,"y":"z"}`)
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

// corrupt rewrites a cache entry through f (or deletes the trailing
// half, for f == nil with truncate).
func corruptEntry(t *testing.T, c *Cache, k Key, f func([]byte) []byte) {
	t.Helper()
	path := c.Path(k)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRejectsTruncation(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t)
	if err := c.Put(k, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, c, k, func(b []byte) []byte { return b[:len(b)/2] })
	if _, ok := c.Get(k); ok {
		t.Fatal("truncated entry served")
	}
	if _, err := os.Stat(c.Path(k)); !os.IsNotExist(err) {
		t.Fatal("defective entry not removed")
	}
}

func TestCacheRejectsBitFlip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t)
	if err := c.Put(k, []byte(`{"x":12345}`)); err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the payload: the envelope still parses, only
	// the checksum can catch it.
	corruptEntry(t, c, k, func(b []byte) []byte {
		return []byte(strings.Replace(string(b), "12345", "12845", 1))
	})
	if _, ok := c.Get(k); ok {
		t.Fatal("bit-flipped entry served")
	}
}

func TestCacheRejectsSaltMismatch(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t)
	if err := c.Put(k, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope under a flipped schema salt with a valid
	// checksum: only the salt check can reject it.
	corruptEntry(t, c, k, func(b []byte) []byte {
		var env envelope
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatal(err)
		}
		env.Salt = SchemaSalt + "-stale"
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	if _, ok := c.Get(k); ok {
		t.Fatal("stale-salt entry served")
	}
}

// TestEngineRecomputesDefectiveEntries is the satellite robustness
// check end to end: a sim.Result round-trips through the disk cache,
// and a truncated, bit-flipped, or version-mismatched entry is
// silently recomputed — never a wrong cached result, never a crash.
func TestEngineRecomputesDefectiveEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	opt := fastOptions("rwp")
	run := func() (sim.Result, Stats) {
		e, err := New(Config{Workers: 2, CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Single("sphinx3", opt).Wait()
		if err != nil {
			t.Fatal(err)
		}
		return r, e.Stats()
	}
	want, st := run()
	if st.Executed != 1 || st.DiskPuts != 1 {
		t.Fatalf("cold run stats %+v", st)
	}
	// Warm: served from disk, bit-identical.
	got, st := run()
	if st.Executed != 0 || st.DiskHits != 1 {
		t.Fatalf("warm run stats %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round-trip changed the result:\n  want %+v\n  got  %+v", want, got)
	}

	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, err := NewKey("single", "", singlePayload{Bench: "sphinx3", Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	defects := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"truncation", func(b []byte) []byte { return b[:len(b)*2/3] }},
		{"garbage", func(b []byte) []byte { return []byte("not json at all") }},
		{"salt flip", func(b []byte) []byte {
			var env envelope
			if err := json.Unmarshal(b, &env); err != nil {
				t.Fatal(err)
			}
			env.Salt = "rwp-runner-v0"
			out, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
	}
	for _, d := range defects {
		corruptEntry(t, cache, key, d.f)
		got, st := run()
		if st.Executed != 1 {
			t.Fatalf("%s: executed %d jobs, want 1 (defect must force recompute)", d.name, st.Executed)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: recomputed result differs", d.name)
		}
		// The recompute must have repaired the entry.
		got, st = run()
		if st.Executed != 0 || st.DiskHits != 1 {
			t.Fatalf("%s: repaired entry not served (stats %+v)", d.name, st)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: repaired entry differs", d.name)
		}
	}
}
