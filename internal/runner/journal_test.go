package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rwp/internal/probe"
	"rwp/internal/sim"
)

// journalRuns submits a small single+multi job set with journals enabled
// and returns every journal file's content, keyed by file name.
func journalRuns(t *testing.T, workers int, dir string) map[string][]byte {
	t.Helper()
	e, err := New(Config{Workers: workers, MetricsDir: dir, ProbeWindow: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	singles := []struct{ bench, policy string }{
		{"gcc", "lru"},
		{"astar", "rwp"},
		{"mcf", "rwpb"},
	}
	futs := make([]*Future[sim.Result], len(singles))
	for i, s := range singles {
		futs[i] = e.Single(s.bench, fastOptions(s.policy))
	}
	mopt := fastOptions("rwp")
	mopt.Hier.Cores = 2
	mfut := e.Multi([]string{"sphinx3", "gobmk"}, mopt)
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mfut.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.DiskErrors != 0 {
		t.Fatalf("journal writes failed: %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, ent := range entries {
		b, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[ent.Name()] = b
	}
	return out
}

// TestJournalByteIdentityAcrossWorkers is the runner-level half of the
// observability guarantee: the same job set writes byte-identical
// journal files at -j 1 and -j 4 (content is a pure function of the job
// key, never of scheduling).
func TestJournalByteIdentityAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := journalRuns(t, 1, t.TempDir())
	parallel := journalRuns(t, 4, t.TempDir())
	if len(serial) != 4 {
		t.Fatalf("%d journals, want 4 (3 single + 1 multi)", len(serial))
	}
	if len(parallel) != len(serial) {
		t.Fatalf("worker counts produced different journal sets: %d vs %d", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Fatalf("journal %s missing from parallel run", name)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("journal %s differs between -j 1 and -j 4", name)
		}
	}
}

// TestJournalContent decodes one written journal and pins it to the
// job's delivered result.
func TestJournalContent(t *testing.T) {
	dir := t.TempDir()
	e, err := New(Config{Workers: 1, MetricsDir: dir, ProbeWindow: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions("rwp")
	res, err := e.Single("mcf", opt).Wait()
	if err != nil {
		t.Fatal(err)
	}
	key, err := NewKey("single", "mcf/rwp", singlePayload{Bench: "mcf", Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(JournalPath(dir, key))
	if err != nil {
		t.Fatalf("journal not at its content address: %v", err)
	}
	defer f.Close()
	j, err := probe.ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	if j.Header.Kind != "single" || j.Header.Desc != "mcf/rwp" || j.Header.Window != 20_000 {
		t.Fatalf("header = %+v", j.Header)
	}
	if len(j.Results) != 1 {
		t.Fatalf("%d result records, want 1", len(j.Results))
	}
	r := j.Results[0]
	if r.Workload != res.Workload || r.Policy != res.Policy ||
		r.IPC != res.IPC || r.Instructions != res.Instructions { //rwplint:allow floateq — exact: the journal must reproduce the result bit-for-bit
		t.Fatalf("journal result %+v, sim result %+v", r, res)
	}
	// The measured region is 80k accesses with a 20k window: the time
	// series must be fully populated, and the aggregates must match the
	// delivered result's LLC stats.
	if len(j.Intervals) != 4 {
		t.Fatalf("%d intervals, want 4", len(j.Intervals))
	}
	var hits, misses uint64
	for c := probe.Class(0); c < probe.NumClasses; c++ {
		hits += j.Classes[c].Hits
		misses += j.Classes[c].Misses
	}
	if hits != res.LLC.TotalHits() || misses != res.LLC.TotalMisses() {
		t.Fatalf("journal hits/misses %d/%d, result %d/%d",
			hits, misses, res.LLC.TotalHits(), res.LLC.TotalMisses())
	}
	if j.FinalTarget() < 0 {
		t.Fatal("rwp journal has no retarget history")
	}
}
