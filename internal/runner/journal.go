package runner

import (
	"fmt"
	"os"
	"path/filepath"

	"rwp/internal/probe"
	"rwp/internal/sim"
)

// Run journals: when Config.MetricsDir is set, every simulation job runs
// with a probe.Recorder attached and serializes it as canonical JSONL
// into <metrics-dir>/<kind>-<key>.jsonl. The file name reuses the job's
// content hash, so journals are addressed exactly like cached results;
// the content is a pure function of the key, so two runs of the same job
// — at any worker count — produce byte-identical files (enforced by
// TestJournalByteIdentityAcrossWorkers and the check.sh smoke).

// JournalPath returns the journal file a job would write under dir.
func JournalPath(dir string, k Key) string {
	return filepath.Join(dir, k.kind+"-"+k.id+".jsonl")
}

// resultRecord flattens one core's headline numbers for the journal.
func resultRecord(r sim.Result) probe.ResultRecord {
	return probe.ResultRecord{
		Workload:     r.Workload,
		Policy:       r.Policy,
		IPC:          r.IPC,
		ReadMPKI:     r.ReadMPKI,
		TotalMPKI:    r.TotalMPKI,
		WBPKI:        r.WBPKI,
		Instructions: r.Instructions,
	}
}

// writeJournal persists one job's journal with the cache's temp-file +
// atomic-rename discipline. Failures are non-fatal — the simulation
// result is already in hand — and are counted as DiskErrors.
func (e *Engine) writeJournal(k Key, results []probe.ResultRecord, rec *probe.Recorder) {
	if err := writeJournalFile(JournalPath(e.metricsDir, k), e.metricsDir, k, results, rec); err != nil {
		e.count(func(s *Stats) { s.DiskErrors++ })
	}
}

func writeJournalFile(path, dir string, k Key, results []probe.ResultRecord, rec *probe.Recorder) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: journal %s: %w", k, err)
	}
	werr := probe.WriteJournal(tmp, probe.Header{Kind: k.kind, Desc: k.desc}, results, rec)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: journal %s: %w", k, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: journal %s: %w", k, err)
	}
	return nil
}
