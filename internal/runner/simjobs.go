package runner

import (
	"strings"

	"rwp/internal/probe"
	"rwp/internal/sim"
	"rwp/internal/workload"
)

// The standard job kinds: single- and multi-core simulations, keyed by
// the full sim.Options plus the benchmark name(s). Everything the
// simulator's behavior depends on is in the Options struct (the
// determinism contract machine-checked by rwplint), so the key is a
// complete content address for the result.

// singlePayload is the hashed identity of a single-core run.
type singlePayload struct {
	Bench   string
	Options sim.Options
}

// multiPayload is the hashed identity of a multiprogrammed run.
type multiPayload struct {
	Benches []string
	Options sim.Options
}

// Single submits one single-core simulation.
func (e *Engine) Single(bench string, opt sim.Options) *Future[sim.Result] {
	key, err := NewKey("single", bench+"/"+opt.Hier.LLCPolicy, singlePayload{Bench: bench, Options: opt})
	if err != nil {
		return Failed[sim.Result](err)
	}
	return Submit(e, key, func() (sim.Result, error) {
		prof, err := workload.Get(bench)
		if err != nil {
			return sim.Result{}, err
		}
		if e.metricsDir == "" {
			return sim.RunSingle(prof, opt)
		}
		rec := probe.NewRecorder(e.probeWindow)
		res, err := sim.RunSingleProbe(prof, opt, rec)
		if err != nil {
			return res, err
		}
		e.writeJournal(key, []probe.ResultRecord{resultRecord(res)}, rec)
		return res, nil
	})
}

// Multi submits one multiprogrammed shared-LLC simulation (one workload
// per core, in mix order).
func (e *Engine) Multi(benches []string, opt sim.Options) *Future[sim.MultiResult] {
	desc := strings.Join(benches, "+") + "/" + opt.Hier.LLCPolicy
	key, err := NewKey("multi", desc, multiPayload{Benches: benches, Options: opt})
	if err != nil {
		return Failed[sim.MultiResult](err)
	}
	return Submit(e, key, func() (sim.MultiResult, error) {
		profs := make([]workload.Profile, len(benches))
		for i, b := range benches {
			p, err := workload.Get(b)
			if err != nil {
				return sim.MultiResult{}, err
			}
			profs[i] = p
		}
		if e.metricsDir == "" {
			return sim.RunMulti(profs, opt)
		}
		rec := probe.NewRecorder(e.probeWindow)
		res, err := sim.RunMultiProbe(profs, opt, rec)
		if err != nil {
			return res, err
		}
		records := make([]probe.ResultRecord, len(res.PerCore))
		for i, r := range res.PerCore {
			records[i] = resultRecord(r)
		}
		e.writeJournal(key, records, rec)
		return res, nil
	})
}
