// Package runner is the deterministic parallel experiment engine: a
// job layer (canonical hashable keys over pure compute functions, with
// duplicate submissions coalesced singleflight-style), a bounded worker
// pool, and an optional content-addressed on-disk result cache with
// crash-safe atomic writes.
//
// Determinism argument: every job is a pure function of its key (the
// simulator guarantees bit-identical Results for identical Options; see
// internal/sim and the rwplint rules), jobs share no mutable state, and
// callers aggregate results over their own deterministic key sets —
// never in completion order. Worker count and scheduling therefore
// affect wall-clock only; the value delivered for a key is the same at
// -j 1 and -j N, from a cold run, a coalesced duplicate, or a disk hit.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SchemaSalt versions the key and payload encodings. It is mixed into
// every job hash and stored in every cache entry: bump it whenever the
// meaning of a key's payload or the layout of a cached result changes,
// and all previously cached entries become misses instead of lies.
const SchemaSalt = "rwp-runner-v1"

// Key is a canonical job identity: a kind (one kind maps to exactly one
// result type), a human-readable description for observability, and a
// content hash of the kind, the SchemaSalt, and a stable encoding of
// the job's parameters.
type Key struct {
	kind string
	desc string
	id   string
}

// NewKey builds a key from a stable JSON encoding of payload. The
// payload must marshal deterministically: structs of scalars, strings,
// slices and nested structs are fine; unordered maps are not (Go's
// encoding/json sorts map keys, but the convention here is to keep
// payloads map-free so the encoding is obviously canonical).
func NewKey(kind, desc string, payload any) (Key, error) {
	if kind == "" {
		return Key{}, fmt.Errorf("runner: empty job kind")
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return Key{}, fmt.Errorf("runner: encoding %s key: %w", kind, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", SchemaSalt, kind)
	h.Write(b)
	return Key{kind: kind, desc: desc, id: hex.EncodeToString(h.Sum(nil))}, nil
}

// Kind returns the job kind.
func (k Key) Kind() string { return k.kind }

// Desc returns the human-readable description.
func (k Key) Desc() string { return k.desc }

// ID returns the hex content hash (the cache address).
func (k Key) ID() string { return k.id }

// String renders the key for progress lines and errors.
func (k Key) String() string {
	if k.desc != "" {
		return k.kind + " " + k.desc
	}
	return k.kind + " " + k.id[:12]
}
