package runner

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"rwp/internal/sim"
)

func TestKeyStableAndDiscriminating(t *testing.T) {
	type payload struct {
		Bench string
		N     int
	}
	a1, err := NewKey("k", "a", payload{"gcc", 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewKey("k", "different desc", payload{"gcc", 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID() != a2.ID() {
		t.Error("key hash must depend only on kind+payload, not desc")
	}
	b, err := NewKey("k", "a", payload{"gcc", 2})
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID() == b.ID() {
		t.Error("different payloads must hash differently")
	}
	c, err := NewKey("other", "a", payload{"gcc", 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID() == c.ID() {
		t.Error("different kinds must hash differently")
	}
	if _, err := NewKey("", "", payload{}); err == nil {
		t.Error("empty kind must be rejected")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	e, err := New(Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	key, err := NewKey("count", "", struct{ X int }{1})
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	const submitters = 32
	futs := make([]*Future[int], submitters)
	var wg sync.WaitGroup
	for i := range futs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			futs[i] = Submit(e, key, func() (int, error) {
				executions.Add(1)
				return 42, nil
			})
		}(i)
	}
	wg.Wait()
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			t.Fatalf("future %d: got %d", i, v)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("job executed %d times, want 1", n)
	}
	st := e.Stats()
	if st.Submitted != submitters || st.Executed != 1 || st.Coalesced != submitters-1 {
		t.Fatalf("stats %+v: want submitted=%d executed=1 coalesced=%d", st, submitters, submitters-1)
	}
}

func TestErrorPropagates(t *testing.T) {
	e := NewDefault()
	key, err := NewKey("fail", "", struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	f := Submit(e, key, func() (int, error) { return 0, boom })
	if _, err := f.Wait(); err == nil {
		t.Fatal("error not propagated")
	}
	// A duplicate submission shares the failed entry; the engine does
	// not retry (the job is a pure function — it would fail again).
	f2 := Submit(e, key, func() (int, error) { return 7, nil })
	if _, err := f2.Wait(); err == nil {
		t.Fatal("coalesced duplicate must see the original error")
	}
	if st := e.Stats(); st.Executed != 1 {
		t.Fatalf("executed %d, want 1", st.Executed)
	}
}

func TestResultTypeMismatch(t *testing.T) {
	e := NewDefault()
	key, err := NewKey("mix", "", struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	f1 := Submit(e, key, func() (int, error) { return 1, nil })
	if _, err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
	// Same key, different result type: a kind-contract violation that
	// must surface as an error, not a panic.
	f2 := Submit(e, key, func() (string, error) { return "x", nil })
	if _, err := f2.Wait(); err == nil {
		t.Fatal("type mismatch must error")
	}
}

// fastOptions returns a short single-core configuration.
func fastOptions(policy string) sim.Options {
	opt := sim.DefaultOptions()
	opt.Hier.LLCPolicy = policy
	opt.Warmup = 30_000
	opt.Measure = 80_000
	return opt
}

// engineRuns is the representative job set for the parallel
// bit-identity check: a policy spread plus a duplicate baseline (which
// must coalesce) and one multiprogrammed run.
func engineRuns(t *testing.T, e *Engine) ([]sim.Result, sim.MultiResult) {
	t.Helper()
	singles := []struct{ bench, policy string }{
		{"gcc", "lru"},
		{"astar", "rwp"},
		{"mcf", "dip"},
		{"gcc", "lru"}, // duplicate: coalesces onto the first job
	}
	futs := make([]*Future[sim.Result], len(singles))
	for i, s := range singles {
		futs[i] = e.Single(s.bench, fastOptions(s.policy))
	}
	mopt := fastOptions("rwp")
	mopt.Hier.Cores = 2
	mfut := e.Multi([]string{"sphinx3", "gobmk"}, mopt)
	out := make([]sim.Result, len(futs))
	for i, f := range futs {
		r, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	mr, err := mfut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return out, mr
}

// TestParallelBitIdentity is the engine-level counterpart of
// internal/sim's bit-identity tests: the same job set must produce
// bit-identical Results — every counter, not just headline metrics —
// at any worker count.
func TestParallelBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	type outcome struct {
		singles []sim.Result
		multi   sim.MultiResult
	}
	var base outcome
	for i, workers := range []int{1, 4, 8} {
		e, err := New(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		singles, multi := engineRuns(t, e)
		if st := e.Stats(); st.Executed != 4 || st.Coalesced != 1 {
			t.Fatalf("-j %d: stats %+v, want executed=4 coalesced=1", workers, st)
		}
		got := outcome{singles, multi}
		if i == 0 {
			base = got
			continue
		}
		if !reflect.DeepEqual(got.singles, base.singles) {
			t.Errorf("-j %d: single-core results differ from -j 1", workers)
		}
		if !reflect.DeepEqual(got.multi, base.multi) {
			t.Errorf("-j %d: multi-core result differs from -j 1", workers)
		}
	}
}
