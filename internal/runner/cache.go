package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rwp/internal/fsatomic"
)

// Cache is the content-addressed on-disk result store. An entry's file
// name is its job key's hash, so a key change is automatically a miss;
// the envelope carries the schema salt and a payload checksum, so a
// version bump, a torn write, or bit rot is detected on read and the
// entry is recomputed — a cached value is never trusted on faith.
//
// Writes are crash-safe: the envelope is written to a temp file in the
// same directory and atomically renamed into place, so a killed run
// leaves either the old entry, the new entry, or a stray temp file —
// never a half-written entry that parses.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// envelope is the on-disk entry format.
type envelope struct {
	// Salt is the SchemaSalt the entry was written under.
	Salt string `json:"salt"`
	// Kind is the job kind (redundant with the file name, kept for
	// debuggability of a cache directory).
	Kind string `json:"kind"`
	// Desc is the human-readable job description.
	Desc string `json:"desc"`
	// Sum is the hex SHA-256 of Payload.
	Sum string `json:"sum"`
	// Payload is the JSON-encoded job result.
	Payload json.RawMessage `json:"payload"`
}

// Path returns the entry file for a key.
func (c *Cache) Path(k Key) string {
	return filepath.Join(c.dir, k.kind+"-"+k.id+".json")
}

// Get returns the validated payload for a key. Any defect — missing
// file, unparsable envelope, salt or kind mismatch, checksum mismatch —
// is a miss; defective entries are removed so the recompute's Put
// replaces them.
func (c *Cache) Get(k Key) ([]byte, bool) {
	path := c.Path(k)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		os.Remove(path)
		return nil, false
	}
	if env.Salt != SchemaSalt || env.Kind != k.kind {
		os.Remove(path)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		os.Remove(path)
		return nil, false
	}
	return env.Payload, true
}

// Put durably stores a payload for a key via temp file + atomic rename.
func (c *Cache) Put(k Key, payload []byte) error {
	sum := sha256.Sum256(payload)
	env := envelope{
		Salt:    SchemaSalt,
		Kind:    k.kind,
		Desc:    k.desc,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	}
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("runner: encoding cache entry %s: %w", k, err)
	}
	if err := fsatomic.WriteFile(c.Path(k), b, 0o644); err != nil {
		return fmt.Errorf("runner: cache write %s: %w", k, err)
	}
	return nil
}
