package overhead

import (
	"strings"
	"testing"

	"rwp/internal/cache"
	"rwp/internal/core"
	"rwp/internal/rrp"
)

func paperLLC() cache.Config {
	return cache.Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, LineSize: 64}
}

func TestLog2(t *testing.T) {
	cases := map[int]uint64{1: 0, 2: 1, 3: 2, 4: 2, 16: 4, 17: 5, 1024: 10}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRWPIsSmallFractionOfRRP(t *testing.T) {
	llc := paperLLC()
	rwpB := RWP(llc, core.DefaultConfig())
	rrpB := RRP(llc, rrp.DefaultConfig())
	ratio := Ratio(rwpB, rrpB)
	// Paper: 5.4 %. Our structures land in the same regime; require the
	// order of magnitude (2-10 %).
	if ratio < 0.02 || ratio > 0.10 {
		t.Fatalf("RWP/RRP state ratio = %.4f, want 0.02..0.10 (paper: 0.054)\nRWP:\n%s\nRRP:\n%s",
			ratio, rwpB, rrpB)
	}
}

func TestRWPIsSmallAbsolutely(t *testing.T) {
	// RWP should cost a few KiB on a 2 MiB cache — negligible.
	b := RWP(paperLLC(), core.DefaultConfig())
	if kib := float64(b.TotalBits()) / 8192; kib > 8 {
		t.Fatalf("RWP costs %.1f KiB, want < 8", kib)
	}
}

func TestRRPDominatedByPerLineState(t *testing.T) {
	b := RRP(paperLLC(), rrp.DefaultConfig())
	var perLine uint64
	for _, it := range b.Items {
		if strings.Contains(it.What, "per line") {
			perLine += it.Bits
		}
	}
	if perLine*2 < b.TotalBits() {
		t.Fatalf("per-line state %d of %d bits; expected dominance", perLine, b.TotalBits())
	}
}

func TestOrderingAcrossMechanisms(t *testing.T) {
	llc := paperLLC()
	lru := LRU(llc).TotalBits()
	dip := DIP(llc, 10).TotalBits()
	drrip := DRRIP(llc, 2, 10).TotalBits()
	ship := SHiP(llc, 2, 14, 3).TotalBits()
	rwpB := RWP(llc, core.DefaultConfig()).TotalBits()
	rrpB := RRP(llc, rrp.DefaultConfig()).TotalBits()

	if dip != lru+10 {
		t.Errorf("DIP = LRU + PSEL: got %d vs %d", dip, lru+10)
	}
	if drrip >= lru {
		t.Errorf("DRRIP (%d) should undercut LRU (%d): 2b RRPV vs 4b recency", drrip, lru)
	}
	if ship <= drrip {
		t.Errorf("SHiP (%d) must exceed DRRIP (%d)", ship, drrip)
	}
	// SHiP and RRP both pay per-line signatures; both dwarf DRRIP and RWP.
	if rrpB <= 4*drrip {
		t.Errorf("RRP (%d) must dwarf DRRIP (%d)", rrpB, drrip)
	}
	if rwpB >= ship || rwpB >= rrpB {
		t.Errorf("RWP (%d) must undercut SHiP (%d) and RRP (%d)", rwpB, ship, rrpB)
	}
}

func TestBreakdownString(t *testing.T) {
	s := RWP(paperLLC(), core.DefaultConfig()).String()
	if !strings.Contains(s, "rwp:") || !strings.Contains(s, "histograms") {
		t.Fatalf("breakdown rendering incomplete:\n%s", s)
	}
}

func TestTotalBytesRoundsUp(t *testing.T) {
	b := Breakdown{Name: "x", Items: []Item{{What: "a", Bits: 9}}}
	if b.TotalBytes() != 2 {
		t.Fatalf("TotalBytes(9 bits) = %d, want 2", b.TotalBytes())
	}
}

func TestRatioZeroDenominator(t *testing.T) {
	if Ratio(Breakdown{}, Breakdown{}) != 0 { //rwplint:allow floateq — exact: zero-denominator ratio is exactly 0
		t.Fatal("Ratio with empty denominator must be 0")
	}
}
