// Package overhead computes the hardware state cost, in bits, of every
// mechanism in the repo, from the same configuration structs the
// simulator runs with. It reproduces the paper's headline storage claim:
// RWP needs only ~5 % of RRP's state (paper: 5.4 %), because RRP carries a
// signature and an outcome bit on every cache line while RWP only shadows
// a few sampler sets.
//
// Conventions: tags in samplers are 16-bit partial tags (as in UMON and
// SHiP samplers); full-cache per-line additions are charged at their
// exact width; the baseline true-LRU recency state (log2(ways) bits per
// line) is charged to every policy that orders lines and is reported
// separately so mechanism deltas are comparable.
package overhead

import (
	"fmt"
	"math/bits"
	"strings"

	"rwp/internal/cache"
	"rwp/internal/core"
	"rwp/internal/rrp"
)

// Item is one contributor to a mechanism's storage cost.
type Item struct {
	What string
	Bits uint64
}

// Breakdown is a mechanism's full storage account.
type Breakdown struct {
	Name  string
	Items []Item
}

// TotalBits sums the items.
func (b Breakdown) TotalBits() uint64 {
	var t uint64
	for _, it := range b.Items {
		t += it.Bits
	}
	return t
}

// TotalBytes is TotalBits rounded up to bytes.
func (b Breakdown) TotalBytes() uint64 { return (b.TotalBits() + 7) / 8 }

// String renders a human-readable account.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d bits (%.1f KiB)\n", b.Name, b.TotalBits(), float64(b.TotalBits())/8192)
	for _, it := range b.Items {
		fmt.Fprintf(&sb, "  %-44s %12d bits\n", it.What, it.Bits)
	}
	return sb.String()
}

// log2 returns ceil(log2(n)) for n >= 1.
func log2(n int) uint64 {
	if n <= 1 {
		return 0
	}
	return uint64(bits.Len(uint(n - 1)))
}

// partialTagBits is the sampler partial-tag width (UMON/SHiP convention).
const partialTagBits = 16

// histCounterBits is the RWP read-hit histogram counter width.
const histCounterBits = 16

// LRU returns the baseline recency cost: log2(ways) bits per line. Every
// stack-ordering policy (LRU, DIP, RWP, RRP backends, UCP) pays it.
func LRU(llc cache.Config) Breakdown {
	sets, ways := llc.Sets(), llc.Ways
	return Breakdown{
		Name: "lru",
		Items: []Item{
			{What: fmt.Sprintf("recency state (%d sets × %d ways × %d b)", sets, ways, log2(ways)),
				Bits: uint64(sets) * uint64(ways) * log2(ways)},
		},
	}
}

// DIP returns DIP's cost over LRU: just the PSEL counter (leader sets are
// identified by index decoding, costing no storage).
func DIP(llc cache.Config, pselBits int) Breakdown {
	b := LRU(llc)
	b.Name = "dip"
	b.Items = append(b.Items, Item{What: "PSEL selector", Bits: uint64(pselBits)})
	return b
}

// DRRIP returns DRRIP's cost: RRPV bits per line plus PSEL.
func DRRIP(llc cache.Config, rrpvBits, pselBits int) Breakdown {
	sets, ways := llc.Sets(), llc.Ways
	return Breakdown{
		Name: "drrip",
		Items: []Item{
			{What: fmt.Sprintf("RRPV (%d sets × %d ways × %d b)", sets, ways, rrpvBits),
				Bits: uint64(sets) * uint64(ways) * uint64(rrpvBits)},
			{What: "PSEL selector", Bits: uint64(pselBits)},
		},
	}
}

// SHiP returns SHiP-PC's cost: RRPV per line, signature+outcome per line,
// and the SHCT.
func SHiP(llc cache.Config, rrpvBits, shctBits, shctCounterBits int) Breakdown {
	sets, ways := llc.Sets(), llc.Ways
	lines := uint64(sets) * uint64(ways)
	return Breakdown{
		Name: "ship",
		Items: []Item{
			{What: "RRPV per line", Bits: lines * uint64(rrpvBits)},
			{What: fmt.Sprintf("signature per line (%d b)", partialTagBits-2),
				Bits: lines * (partialTagBits - 2)},
			{What: "outcome bit per line", Bits: lines},
			{What: fmt.Sprintf("SHCT (2^%d × %d b)", shctBits, shctCounterBits),
				Bits: (1 << uint(shctBits)) * uint64(shctCounterBits)},
		},
	}
}

// RWP returns RWP's cost over the baseline LRU+dirty-bit cache: the
// sampler shadow stacks, the two read-hit histograms, and the target
// register. The dirty bit per line is already present in any write-back
// cache and is charged at zero, as the paper does.
func RWP(llc cache.Config, cfg core.Config) Breakdown {
	ways := llc.Ways
	samplers := cfg.SamplerSets
	if s := llc.Sets(); samplers > s {
		samplers = s
	}
	// Each sampler set: two stacks × ways entries × (partial tag + valid
	// + recency position).
	entryBits := uint64(partialTagBits) + 1 + log2(ways)
	samplerBits := uint64(samplers) * 2 * uint64(ways) * entryBits
	return Breakdown{
		Name: "rwp",
		Items: []Item{
			{What: fmt.Sprintf("shadow sampler (%d sets × 2 stacks × %d entries × %d b)",
				samplers, ways, entryBits), Bits: samplerBits},
			{What: fmt.Sprintf("read-hit histograms (2 × %d × %d b)", ways, histCounterBits),
				Bits: 2 * uint64(ways) * histCounterBits},
			{What: "dirty-partition target register", Bits: log2(ways + 1)},
			{What: "interval access counter", Bits: 20},
		},
	}
}

// RRP returns RRP's cost: the predictor table plus a signature and
// outcome bit on every line of the cache (needed to train on evictions),
// which dominates.
func RRP(llc cache.Config, cfg rrp.Config) Breakdown {
	lines := uint64(llc.Sets()) * uint64(llc.Ways)
	sigBits := uint64(cfg.TableBits)
	return Breakdown{
		Name: "rrp",
		Items: []Item{
			{What: fmt.Sprintf("predictor table (2^%d × %d b)", cfg.TableBits, cfg.CounterBits),
				Bits: (1 << uint(cfg.TableBits)) * uint64(cfg.CounterBits)},
			{What: fmt.Sprintf("signature per line (%d lines × %d b)", lines, sigBits),
				Bits: lines * sigBits},
			{What: "was-read bit per line", Bits: lines},
		},
	}
}

// Ratio returns a's state as a fraction of b's.
func Ratio(a, b Breakdown) float64 {
	tb := b.TotalBits()
	if tb == 0 {
		return 0
	}
	return float64(a.TotalBits()) / float64(tb)
}
