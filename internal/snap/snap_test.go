package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rwp/internal/core"
	"rwp/internal/probe"
)

// sample builds a small but fully-populated snapshot: two sets, one
// with entries + RWP state, histograms, history, sampler stacks.
func sample() *Snapshot {
	var costs, clean, dirty probe.CostHist
	costs.Observe(1)
	costs.Observe(16)
	costs.Observe(16)
	clean.Observe(1)
	dirty.Observe(16)
	dirty.Observe(16)
	st := core.State{
		TargetDirty:  2,
		Accesses:     250,
		Intervals:    2,
		RetargetUp:   1,
		RetargetDown: 0,
		RetargetSame: 1,
		History:      []int{3, 2},
		CleanHist:    []uint64{4, 2, 1, 0},
		DirtyHist:    []uint64{1, 0, 0, 2},
		Samplers: []core.SamplerState{{
			Clean: []core.SamplerEntry{{Line: 0xdeadbeef, Rewritten: true}, {Line: 7}},
			Dirty: []core.SamplerEntry{{Line: 42}},
		}},
	}
	st2 := core.State{
		TargetDirty: 1,
		History:     nil,
		CleanHist:   make([]uint64, 4),
		DirtyHist:   make([]uint64, 4),
		Samplers:    []core.SamplerState{{}},
	}
	return &Snapshot{
		Policy: "rwp",
		Sets:   4,
		Ways:   4,
		RWP:    core.Config{SamplerSets: 1, Interval: 100, DecayShift: 1, InitialDirtyTarget: -1},
		Lo:     1,
		Hi:     3,
		Records: []SetRecord{
			{
				Set: 1,
				Entries: []Entry{
					{Key: "k1", Value: []byte("v1"), Dirty: true},
					{Key: "k2", Value: nil, Dirty: false},
				},
				Ops: Ops{
					Gets: 10, GetHits: 6, GetMisses: 4,
					Puts: 5, PutHits: 2, PutInserts: 3,
					Loads: 3, Fills: 6, FillsDirty: 3,
					Evictions: 2, DirtyEvictions: 1,
					GetHitsClean: 4, GetHitsDirty: 2,
					PutHitsClean: 1, PutHitsDirty: 1,
				},
				Costs:      costs,
				CostsClean: clean,
				CostsDirty: dirty,
				RWP:        &st,
			},
			{Set: 2, RWP: &st2},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip differs:\ngot  %+v\nwant %+v", got, s)
	}
	// Encoding is canonical: re-encoding the decode is byte-identical.
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestDecodeWrongSchema(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("rwp-snap-v1\nxxxxxxxxxxxxxxxx"), // pre-stampede-counter schema: rejected, never half-read
		[]byte("rwp-snap-v3\nxxxxxxxxxxxxxxxx"),
		bytes.Repeat([]byte{0xff}, 64),
	} {
		if _, err := Decode(data); !errors.Is(err, ErrSchema) {
			t.Errorf("Decode(%q...) = %v, want ErrSchema", data[:min(8, len(data))], err)
		}
	}
}

func TestDecodeTruncationEverywhere(t *testing.T) {
	data := Encode(sample())
	for n := len(Magic); n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("Decode accepted truncation to %d of %d bytes", n, len(data))
		}
	}
}

func TestDecodeBitFlips(t *testing.T) {
	data := Encode(sample())
	// Flip one bit at a sample of offsets; the CRC must catch each
	// (flipping inside the CRC trailer itself breaks the match too).
	for off := 0; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x10
		if string(mut[:len(Magic)]) == Magic {
			if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", off, err)
			}
		} else if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at %d (magic) accepted", off)
		}
	}
}

// mutate decodes, applies f, re-encodes. Mutations that Encode can
// express (wrong counters, bad ranges) go through this path so the CRC
// is valid and structural checks are exercised.
func mutate(t *testing.T, f func(s *Snapshot)) []byte {
	t.Helper()
	s, err := Decode(Encode(sample()))
	if err != nil {
		t.Fatalf("Decode(sample): %v", err)
	}
	f(s)
	return Encode(s)
}

func TestDecodeStructuralRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *Snapshot)
	}{
		{"duplicate set record", func(s *Snapshot) { s.Records[1] = s.Records[0] }},
		{"out-of-order records", func(s *Snapshot) { s.Records[0], s.Records[1] = s.Records[1], s.Records[0] }},
		{"record outside range", func(s *Snapshot) { s.Records[1].Set = 3 }},
		{"missing record", func(s *Snapshot) { s.Records = s.Records[:1] }},
		{"extra record", func(s *Snapshot) { s.Records = append(s.Records, SetRecord{Set: 3, RWP: s.Records[1].RWP}) }},
		{"entries exceed ways", func(s *Snapshot) {
			r := &s.Records[0]
			for i := 0; i < 5; i++ {
				r.Entries = append(r.Entries, Entry{Key: strings.Repeat("x", i+3)})
			}
		}},
		{"duplicate key in set", func(s *Snapshot) { s.Records[0].Entries[1].Key = s.Records[0].Entries[0].Key }},
		{"inverted range", func(s *Snapshot) { s.Lo, s.Hi = s.Hi, s.Lo; s.Records = nil }},
		{"hi beyond sets", func(s *Snapshot) { s.Hi = 5; s.Records = append(s.Records, SetRecord{Set: 3, RWP: s.Records[1].RWP}, SetRecord{Set: 4, RWP: s.Records[1].RWP}) }},
		{"sets not power of two", func(s *Snapshot) { s.Sets = 3 }},
		{"zero ways", func(s *Snapshot) { s.Ways = 0 }},
		{"get-hit split broken", func(s *Snapshot) { s.Records[0].Ops.GetHitsClean++ }},
		{"put-hit split broken", func(s *Snapshot) { s.Records[0].Ops.PutHitsDirty++ }},
		{"bypass split broken", func(s *Snapshot) { s.Records[0].Ops.BypassLoads++ }},
		{"dirty evictions exceed evictions", func(s *Snapshot) { s.Records[0].Ops.DirtyEvictions = 3 }},
		{"loads exceed fills", func(s *Snapshot) { s.Records[0].Ops.Loads = 7 }},
		{"target beyond ways", func(s *Snapshot) { s.Records[0].RWP.TargetDirty = 5 }},
		{"direction sum broken", func(s *Snapshot) { s.Records[0].RWP.RetargetUp++ }},
		{"history length mismatch", func(s *Snapshot) { s.Records[0].RWP.History = []int{1} }},
		{"history target beyond ways", func(s *Snapshot) { s.Records[0].RWP.History[0] = 9 }},
		{"sampler stack beyond ways", func(s *Snapshot) {
			s.Records[0].RWP.Samplers[0].Clean = make([]core.SamplerEntry, 5)
		}},
	}
	for _, tc := range cases {
		data := mutate(t, tc.mut)
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestDecodeRejectsUnsupportedPolicy(t *testing.T) {
	s := sample()
	s.Policy = "nru"
	for i := range s.Records {
		s.Records[i].RWP = nil
	}
	if _, err := Decode(Encode(s)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsupported policy: %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsPolicyFlagMismatch(t *testing.T) {
	// An "lru" snapshot whose record carries RWP state, and vice versa.
	s := sample()
	s.Policy = "lru"
	if _, err := Decode(Encode(s)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lru with rwp state: %v, want ErrCorrupt", err)
	}
	s = sample()
	s.Records[0].RWP = nil
	if _, err := Decode(Encode(s)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rwp without state: %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := Encode(sample())
	// Pad the body with junk and re-seal with a fresh valid CRC: the
	// structural check, not the checksum, must reject it.
	body := append(append([]byte(nil), data[:len(data)-4]...), 0, 0, 0)
	sealed := binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, crcTab))
	if _, err := Decode(sealed); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v, want ErrCorrupt", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "cache.snap")
	s := sample()
	if err := WriteFile(p, s); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("file round trip differs")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("ReadFile(missing) succeeded")
	}
}
