package snap

import (
	"os"

	"rwp/internal/fsatomic"
)

// WriteFile encodes s and atomically writes it to path (unique temp
// file + rename, like every durable artifact in this repo): a crash
// mid-write leaves the previous snapshot intact, never a torn one.
func WriteFile(path string, s *Snapshot) error {
	return fsatomic.WriteFile(path, Encode(s), 0o644)
}

// ReadFile reads and fully validates the snapshot at path. The caller
// treats any error — unreadable file, wrong schema, failed checksum,
// structural defect — as "no snapshot" and starts cold.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
