// Package snap is the deterministic snapshot format for the live RWP
// cache: schema rwp-snap-v2, a canonical binary encoding with a
// CRC-32C trailer, written atomically (fsatomic). A snapshot is
// set-indexed, never shard-indexed — it records, per global set, the
// resident entries in recency order plus the owning per-set RWP
// predictor state and op/cost counters — so restoring it into a cache
// with any shard count reproduces the same /stats document and the
// same future behavior as the never-restarted run.
//
// Way indices are deliberately absent from the format. Fills always
// take the lowest invalid way, so a set holding K entries has exactly
// ways 0..K-1 valid with the invalid tail at the recency bottom in
// ascending order; replaying the recorded MRU→LRU entries as fills
// into ways 0..K-1 reproduces an observationally identical set, and
// makes re-snapshotting a restored cache a byte-exact fixed point.
//
// Decode validates everything it can see — schema, checksum, bounds,
// ordering, counter conservation — before returning; geometry checks
// that need the target cache (key-to-set hashing, config match) run in
// live.RestoreSnapshot, also before any mutation. A corrupt snapshot
// therefore never installs partial state anywhere.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"rwp/internal/core"
	"rwp/internal/probe"
)

// Magic is the schema identifier leading every snapshot file. v2 added
// the stampede-defense counters (LoadAbsents, CoalescedLoads, NegHits,
// NegInserts, LeaseExpires) to every set record; v1 snapshots are rejected with
// ErrSchema rather than silently restored with those counters zeroed.
// Negative-cache contents and in-flight fill state are deliberately
// NOT in the format: both are transient op-clocked state, and a
// restored cache starting with them cold only re-consults the backend
// — it never serves a stale absence verdict (see DESIGN.md §16).
const Magic = "rwp-snap-v2\n"

// Limits mirror the wire protocol's: a snapshot holds the same keys
// and values the transport carries.
const (
	// MaxKey bounds one key's byte length.
	MaxKey = 1 << 16
	// MaxValue bounds one value's byte length.
	MaxValue = 1 << 20
	// MaxSets bounds the set count a decoder will believe.
	MaxSets = 1 << 24
	// MaxWays bounds associativity (recency tables hold way indices in
	// a byte).
	MaxWays = 256
)

// ErrSchema reports a file that is not an rwp-snap-v2 snapshot at all.
var ErrSchema = errors.New("snap: unrecognized snapshot schema")

// ErrCorrupt reports a snapshot that declares the right schema but
// fails checksum or structural validation.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// Snapshot is the decoded form: the cache geometry it was taken from
// and one record per set in [Lo, Hi), ascending.
type Snapshot struct {
	// Policy is the replacement policy name ("lru" or "rwp").
	Policy string
	// Sets and Ways are the source cache's geometry.
	Sets, Ways int
	// RWP is the policy configuration (ignored for "lru").
	RWP core.Config
	// Lo, Hi delimit the covered global-set range [Lo, Hi).
	Lo, Hi int
	// Records holds exactly Hi-Lo set records; Records[i].Set == Lo+i.
	Records []SetRecord
}

// SetRecord is one global set's full state.
type SetRecord struct {
	// Set is the global set index.
	Set int
	// Entries are the resident lines in recency order, MRU first.
	Entries []Entry
	// Ops are the set's cumulative operation counters.
	Ops Ops
	// Costs, CostsClean, CostsDirty are the set's service-cost
	// histograms: total and the clean/dirty partition split.
	Costs, CostsClean, CostsDirty probe.CostHist
	// RWP is the set's policy state; nil for non-RWP policies.
	RWP *core.State
}

// Entry is one resident line.
type Entry struct {
	Key   string
	Value []byte
	Dirty bool
}

// Ops mirrors the live cache's per-set counters plus the partition
// split counters the probe-recorder rebuild needs.
type Ops struct {
	Gets, GetHits, GetMisses    uint64
	Puts, PutHits, PutInserts   uint64
	Loads, LoadRaces            uint64
	LoadAbsents, CoalescedLoads uint64
	NegHits, NegInserts         uint64
	LeaseExpires                uint64
	Fills, FillsDirty, Bypasses uint64
	Evictions, DirtyEvictions   uint64
	GetHitsClean, GetHitsDirty  uint64
	PutHitsClean, PutHitsDirty  uint64
	BypassLoads, BypassStores   uint64
}

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Encode renders s in the canonical rwp-snap-v2 byte form. The
// encoding is a pure function of s: identical snapshots encode to
// identical bytes, which is what lets check.sh cmp-gate the
// re-snapshot fixed point.
func Encode(s *Snapshot) []byte {
	b := make([]byte, 0, 1<<12)
	b = append(b, Magic...)
	b = appendString(b, s.Policy)
	b = binary.AppendUvarint(b, uint64(s.Sets))
	b = binary.AppendUvarint(b, uint64(s.Ways))
	b = binary.AppendUvarint(b, uint64(s.RWP.SamplerSets))
	b = binary.AppendUvarint(b, s.RWP.Interval)
	b = binary.AppendUvarint(b, uint64(s.RWP.DecayShift))
	b = binary.AppendVarint(b, int64(s.RWP.InitialDirtyTarget))
	b = binary.AppendUvarint(b, uint64(s.Lo))
	b = binary.AppendUvarint(b, uint64(s.Hi))
	for i := range s.Records {
		b = appendRecord(b, &s.Records[i])
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTab))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendRecord(b []byte, r *SetRecord) []byte {
	b = binary.AppendUvarint(b, uint64(r.Set))
	b = binary.AppendUvarint(b, uint64(len(r.Entries)))
	for i := range r.Entries {
		e := &r.Entries[i]
		b = appendString(b, e.Key)
		b = binary.AppendUvarint(b, uint64(len(e.Value)))
		b = append(b, e.Value...)
		b = append(b, boolByte(e.Dirty))
	}
	for _, v := range opsFields(&r.Ops) {
		b = binary.AppendUvarint(b, *v)
	}
	b = appendHist(b, r.Costs)
	b = appendHist(b, r.CostsClean)
	b = appendHist(b, r.CostsDirty)
	if r.RWP == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	st := r.RWP
	b = binary.AppendUvarint(b, uint64(st.TargetDirty))
	b = binary.AppendUvarint(b, st.Accesses)
	b = binary.AppendUvarint(b, st.Intervals)
	b = binary.AppendUvarint(b, st.RetargetUp)
	b = binary.AppendUvarint(b, st.RetargetDown)
	b = binary.AppendUvarint(b, st.RetargetSame)
	for _, t := range st.History {
		b = binary.AppendUvarint(b, uint64(t))
	}
	for _, v := range st.CleanHist {
		b = binary.AppendUvarint(b, v)
	}
	for _, v := range st.DirtyHist {
		b = binary.AppendUvarint(b, v)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Samplers)))
	for i := range st.Samplers {
		b = appendStack(b, st.Samplers[i].Clean)
		b = appendStack(b, st.Samplers[i].Dirty)
	}
	return b
}

func appendHist(b []byte, h probe.CostHist) []byte {
	b = binary.AppendUvarint(b, uint64(len(h.Buckets)))
	for _, bk := range h.Buckets {
		b = binary.AppendUvarint(b, uint64(bk.Cost))
		b = binary.AppendUvarint(b, bk.Count)
	}
	return b
}

func appendStack(b []byte, entries []core.SamplerEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = binary.LittleEndian.AppendUint64(b, e.Line)
		b = append(b, boolByte(e.Rewritten))
	}
	return b
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// opsFields enumerates the 24 counters in canonical encoding order
// (the five stampede-defense counters slot in after LoadRaces, where
// they sit in the conservation law).
func opsFields(o *Ops) [24]*uint64 {
	return [24]*uint64{
		&o.Gets, &o.GetHits, &o.GetMisses,
		&o.Puts, &o.PutHits, &o.PutInserts,
		&o.Loads, &o.LoadRaces,
		&o.LoadAbsents, &o.CoalescedLoads, &o.NegHits, &o.NegInserts, &o.LeaseExpires,
		&o.Fills, &o.FillsDirty, &o.Bypasses,
		&o.Evictions, &o.DirtyEvictions,
		&o.GetHitsClean, &o.GetHitsDirty,
		&o.PutHitsClean, &o.PutHitsDirty,
		&o.BypassLoads, &o.BypassStores,
	}
}

// decoder is a bounds-checked cursor over the snapshot body.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) fail(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), d.pos)
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("truncated %s", what)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("truncated %s", what)
	}
	d.pos += n
	return v, nil
}

// count reads a uvarint bounded by max and by the remaining bytes
// (assuming each counted item costs at least minBytes), so hostile
// declared counts can never drive a large allocation.
func (d *decoder) count(what string, max int, minBytes int) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, d.fail("%s %d exceeds limit %d", what, v, max)
	}
	if minBytes > 0 && v > uint64((len(d.buf)-d.pos)/minBytes) {
		return 0, d.fail("%s %d exceeds remaining input", what, v)
	}
	return int(v), nil
}

func (d *decoder) bytes(what string, n int) ([]byte, error) {
	if n > len(d.buf)-d.pos {
		return nil, d.fail("truncated %s", what)
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) byte1(what string) (byte, error) {
	b, err := d.bytes(what, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) boolByte(what string) (bool, error) {
	b, err := d.byte1(what)
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, d.fail("%s flag byte %d is not 0/1", what, b)
	}
	return b == 1, nil
}

// Decode parses and fully validates a canonical snapshot. Everything
// self-contained is checked here: schema, CRC, bounds, strict set
// ordering over exactly [Lo,Hi), histogram canonical order, counter
// conservation, and RWP-state shape (core's State.Validate). On any
// defect the error wraps ErrSchema or ErrCorrupt and no Snapshot is
// returned.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+4 || string(data[:len(Magic)]) != Magic {
		return nil, ErrSchema
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTab) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{buf: body, pos: len(Magic)}
	s := &Snapshot{}
	n, err := d.count("policy length", 64, 1)
	if err != nil {
		return nil, err
	}
	pb, err := d.bytes("policy", n)
	if err != nil {
		return nil, err
	}
	s.Policy = string(pb)
	if s.Policy != "lru" && s.Policy != "rwp" {
		return nil, d.fail("unsupported policy %q", s.Policy)
	}
	if s.Sets, err = d.count("sets", MaxSets, 0); err != nil {
		return nil, err
	}
	if s.Sets == 0 || s.Sets&(s.Sets-1) != 0 {
		return nil, d.fail("set count %d is not a power of two", s.Sets)
	}
	if s.Ways, err = d.count("ways", MaxWays, 0); err != nil {
		return nil, err
	}
	if s.Ways == 0 {
		return nil, d.fail("zero ways")
	}
	if s.RWP.SamplerSets, err = d.count("sampler sets", MaxSets, 0); err != nil {
		return nil, err
	}
	if s.RWP.Interval, err = d.uvarint("interval"); err != nil {
		return nil, err
	}
	shift, err := d.count("decay shift", 63, 0)
	if err != nil {
		return nil, err
	}
	s.RWP.DecayShift = uint(shift)
	idt, err := d.varint("initial dirty target")
	if err != nil {
		return nil, err
	}
	if idt < -1 || idt > int64(s.Ways) {
		return nil, d.fail("initial dirty target %d outside [-1,%d]", idt, s.Ways)
	}
	s.RWP.InitialDirtyTarget = int(idt)
	if s.Lo, err = d.count("lo", s.Sets, 0); err != nil {
		return nil, err
	}
	if s.Hi, err = d.count("hi", s.Sets, 0); err != nil {
		return nil, err
	}
	if s.Lo > s.Hi {
		return nil, d.fail("range [%d,%d) is inverted", s.Lo, s.Hi)
	}
	for set := s.Lo; set < s.Hi; set++ {
		r, err := d.record(s, set)
		if err != nil {
			return nil, err
		}
		s.Records = append(s.Records, r)
	}
	if d.pos != len(body) {
		return nil, d.fail("%d trailing bytes after last record", len(body)-d.pos)
	}
	return s, nil
}

func (d *decoder) record(s *Snapshot, want int) (SetRecord, error) {
	var r SetRecord
	idx, err := d.uvarint("set index")
	if err != nil {
		return r, err
	}
	if idx != uint64(want) {
		return r, d.fail("set index %d, want %d (records must cover [lo,hi) exactly once, ascending)", idx, want)
	}
	r.Set = want
	k, err := d.count("entry count", s.Ways, 3)
	if err != nil {
		return r, err
	}
	if k > 0 {
		r.Entries = make([]Entry, k)
	}
	for i := 0; i < k; i++ {
		if err := d.entry(&r.Entries[i]); err != nil {
			return r, err
		}
		for j := 0; j < i; j++ {
			if r.Entries[j].Key == r.Entries[i].Key {
				return r, d.fail("duplicate key %q in set %d", r.Entries[i].Key, want)
			}
		}
	}
	for _, v := range opsFields(&r.Ops) {
		if *v, err = d.uvarint("op counter"); err != nil {
			return r, err
		}
	}
	if err := checkOps(&r.Ops); err != nil {
		return r, d.fail("set %d: %v", want, err)
	}
	if r.Costs, err = d.hist("cost histogram"); err != nil {
		return r, err
	}
	if r.CostsClean, err = d.hist("clean cost histogram"); err != nil {
		return r, err
	}
	if r.CostsDirty, err = d.hist("dirty cost histogram"); err != nil {
		return r, err
	}
	flag, err := d.byte1("policy-state flag")
	if err != nil {
		return r, err
	}
	switch {
	case flag == 0 && s.Policy != "rwp":
		return r, nil
	case flag == 1 && s.Policy == "rwp":
		st, err := d.rwpState(s)
		if err != nil {
			return r, err
		}
		r.RWP = &st
		return r, nil
	default:
		return r, d.fail("policy-state flag %d contradicts policy %q", flag, s.Policy)
	}
}

func (d *decoder) entry(e *Entry) error {
	n, err := d.count("key length", MaxKey, 1)
	if err != nil {
		return err
	}
	kb, err := d.bytes("key", n)
	if err != nil {
		return err
	}
	e.Key = string(kb)
	if n, err = d.count("value length", MaxValue, 1); err != nil {
		return err
	}
	vb, err := d.bytes("value", n)
	if err != nil {
		return err
	}
	if n > 0 {
		e.Value = append([]byte(nil), vb...)
	}
	e.Dirty, err = d.boolByte("dirty")
	return err
}

// checkOps rejects counter combinations the live cache can never
// produce, so a recorder rebuilt from them would misreport.
func checkOps(o *Ops) error {
	switch {
	case o.GetHitsClean+o.GetHitsDirty != o.GetHits:
		return errors.New("get-hit split does not sum to GetHits")
	case o.PutHitsClean+o.PutHitsDirty != o.PutHits:
		return errors.New("put-hit split does not sum to PutHits")
	case o.BypassLoads+o.BypassStores != o.Bypasses:
		return errors.New("bypass split does not sum to Bypasses")
	case o.DirtyEvictions > o.Evictions:
		return errors.New("more dirty evictions than evictions")
	case o.Loads > o.Fills:
		return errors.New("more loader fills than fills")
	case o.FillsDirty > o.Fills:
		return errors.New("more dirty fills than fills")
	case o.Loads+o.LoadRaces+o.LoadAbsents+o.CoalescedLoads+o.NegHits+o.NegInserts > o.GetMisses:
		// An inequality, not an equality: a snapshot taken while fills
		// are in flight has counted misses not yet resolved.
		return errors.New("resolved misses exceed GetMisses")
	}
	return nil
}

func (d *decoder) hist(what string) (probe.CostHist, error) {
	var h probe.CostHist
	n, err := d.count(what+" buckets", len(d.buf), 2)
	if err != nil {
		return h, err
	}
	prev := -1
	for i := 0; i < n; i++ {
		cost, err := d.uvarint(what + " cost")
		if err != nil {
			return h, err
		}
		if cost > 1<<32 {
			return h, d.fail("%s cost %d is implausibly large", what, cost)
		}
		cnt, err := d.uvarint(what + " count")
		if err != nil {
			return h, err
		}
		if int(cost) <= prev {
			return h, d.fail("%s costs not strictly ascending", what)
		}
		if cnt == 0 {
			return h, d.fail("%s has an empty bucket", what)
		}
		prev = int(cost)
		h.Buckets = append(h.Buckets, probe.CostBucket{Cost: int(cost), Count: cnt})
	}
	return h, nil
}

func (d *decoder) rwpState(s *Snapshot) (core.State, error) {
	var st core.State
	td, err := d.count("dirty target", s.Ways, 0)
	if err != nil {
		return st, err
	}
	st.TargetDirty = td
	if st.Accesses, err = d.uvarint("accesses"); err != nil {
		return st, err
	}
	if st.Intervals, err = d.uvarint("intervals"); err != nil {
		return st, err
	}
	if st.RetargetUp, err = d.uvarint("retarget up"); err != nil {
		return st, err
	}
	if st.RetargetDown, err = d.uvarint("retarget down"); err != nil {
		return st, err
	}
	if st.RetargetSame, err = d.uvarint("retarget same"); err != nil {
		return st, err
	}
	if st.Intervals > uint64(len(d.buf)-d.pos) {
		return st, d.fail("history of %d intervals exceeds remaining input", st.Intervals)
	}
	if st.Intervals > 0 {
		st.History = make([]int, st.Intervals)
	}
	for i := range st.History {
		t, err := d.count("history target", s.Ways, 0)
		if err != nil {
			return st, err
		}
		st.History[i] = t
	}
	st.CleanHist = make([]uint64, s.Ways)
	st.DirtyHist = make([]uint64, s.Ways)
	for i := range st.CleanHist {
		if st.CleanHist[i], err = d.uvarint("clean histogram"); err != nil {
			return st, err
		}
	}
	for i := range st.DirtyHist {
		if st.DirtyHist[i], err = d.uvarint("dirty histogram"); err != nil {
			return st, err
		}
	}
	ns, err := d.count("sampler count", 1, 0)
	if err != nil {
		return st, err
	}
	// The live cache attaches one RWP per set (NumSets 1), so every
	// set's policy has exactly one sampler.
	if ns != 1 {
		return st, d.fail("sampler count %d, want 1", ns)
	}
	st.Samplers = make([]core.SamplerState, 1)
	if st.Samplers[0].Clean, err = d.stack(s, "clean"); err != nil {
		return st, err
	}
	if st.Samplers[0].Dirty, err = d.stack(s, "dirty"); err != nil {
		return st, err
	}
	if err := st.Validate(s.Ways, 1); err != nil {
		return st, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, nil
}

func (d *decoder) stack(s *Snapshot, which string) ([]core.SamplerEntry, error) {
	n, err := d.count(which+" stack size", s.Ways, 9)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]core.SamplerEntry, n)
	for i := range out {
		lb, err := d.bytes(which+" stack line", 8)
		if err != nil {
			return nil, err
		}
		out[i].Line = binary.LittleEndian.Uint64(lb)
		if out[i].Rewritten, err = d.boolByte(which + " stack flag"); err != nil {
			return nil, err
		}
	}
	return out, nil
}
