// Package dram models main memory as a fixed-latency, bandwidth-limited
// channel with a write queue. Reads occupy the channel and complete after
// the access latency; writes (LLC writebacks and bypassed stores) enter a
// bounded queue and consume channel slots only when the queue overflows —
// which is exactly the paper's premise that writes are off the critical
// path until write bandwidth saturates.
package dram

import "fmt"

// Config describes the memory channel.
type Config struct {
	// Latency is the read access latency in core cycles (paper-scale:
	// 200).
	Latency uint64
	// CyclesPerTransfer is the channel occupancy of one line transfer;
	// its inverse is the peak bandwidth.
	CyclesPerTransfer uint64
	// WriteQueue is the number of buffered writes tolerated before
	// writes steal channel slots from reads.
	WriteQueue int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{Latency: 200, CyclesPerTransfer: 4, WriteQueue: 64}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency == 0 {
		return fmt.Errorf("dram: Latency must be positive")
	}
	if c.CyclesPerTransfer == 0 {
		return fmt.Errorf("dram: CyclesPerTransfer must be positive")
	}
	if c.WriteQueue < 1 {
		return fmt.Errorf("dram: WriteQueue %d must be positive", c.WriteQueue)
	}
	return nil
}

// Stats counts channel activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	WriteStalls  uint64 // writes that had to steal a channel slot eagerly
	BusyCycles   uint64
	QueuedDrains uint64 // writes drained opportunistically into idle gaps
}

// DRAM is a single memory channel. It is not safe for concurrent use; the
// simulator drives it from one goroutine.
type DRAM struct {
	cfg      Config
	nextFree uint64 // first cycle the channel is free
	pending  int    // queued writes not yet drained
	stats    Stats
}

// New returns a channel with the given configuration.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg}, nil
}

// Config returns the channel configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// drainInto uses idle channel time before `now` to retire queued writes.
func (d *DRAM) drainInto(now uint64) {
	for d.pending > 0 && d.nextFree+d.cfg.CyclesPerTransfer <= now {
		d.nextFree += d.cfg.CyclesPerTransfer
		d.pending--
		d.stats.QueuedDrains++
		d.stats.BusyCycles += d.cfg.CyclesPerTransfer
	}
}

// Read issues a read at cycle `now` and returns its completion cycle.
// Reads take priority over queued writes but still wait for the channel.
func (d *DRAM) Read(now uint64) uint64 {
	d.drainInto(now)
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + d.cfg.CyclesPerTransfer
	d.stats.Reads++
	d.stats.BusyCycles += d.cfg.CyclesPerTransfer
	return start + d.cfg.Latency
}

// Write enqueues a writeback at cycle `now`. When the queue is full the
// write drains immediately, consuming a channel slot that future reads
// will contend with — this is how heavy write traffic eventually becomes
// critical.
func (d *DRAM) Write(now uint64) {
	d.drainInto(now)
	d.stats.Writes++
	d.pending++
	if d.pending > d.cfg.WriteQueue {
		start := now
		if d.nextFree > start {
			start = d.nextFree
		}
		d.nextFree = start + d.cfg.CyclesPerTransfer
		d.pending--
		d.stats.WriteStalls++
		d.stats.BusyCycles += d.cfg.CyclesPerTransfer
	}
}

// PendingWrites returns the current write-queue depth.
func (d *DRAM) PendingWrites() int { return d.pending }

// NextFree returns the first free channel cycle (for tests).
func (d *DRAM) NextFree() uint64 { return d.nextFree }
