package dram

import "testing"

func mustNew(t *testing.T, cfg Config) *DRAM {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []Config{
		{Latency: 0, CyclesPerTransfer: 4, WriteQueue: 8},
		{Latency: 100, CyclesPerTransfer: 0, WriteQueue: 8},
		{Latency: 100, CyclesPerTransfer: 4, WriteQueue: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(bad); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestReadLatencyUncontended(t *testing.T) {
	d := mustNew(t, Config{Latency: 200, CyclesPerTransfer: 4, WriteQueue: 8})
	done := d.Read(1000)
	if done != 1200 {
		t.Fatalf("uncontended read completes at %d, want 1200", done)
	}
}

func TestBandwidthSerializesReads(t *testing.T) {
	d := mustNew(t, Config{Latency: 200, CyclesPerTransfer: 4, WriteQueue: 8})
	first := d.Read(0)
	second := d.Read(0) // same cycle: must queue behind the first transfer
	if second <= first {
		t.Fatalf("second read (%d) not delayed behind first (%d)", second, first)
	}
	if second != first+4 {
		t.Fatalf("second read at %d, want first+4 = %d", second, first+4)
	}
}

func TestWritesAreBufferedUntilQueueFull(t *testing.T) {
	d := mustNew(t, Config{Latency: 200, CyclesPerTransfer: 4, WriteQueue: 4})
	for i := 0; i < 4; i++ {
		d.Write(0)
	}
	if d.Stats().WriteStalls != 0 {
		t.Fatal("writes within queue capacity stalled")
	}
	// A read right now should NOT be delayed by buffered writes.
	if done := d.Read(0); done != 200 {
		t.Fatalf("read delayed by buffered writes: done at %d", done)
	}
	// Overflowing the queue steals channel slots.
	for i := 0; i < 10; i++ {
		d.Write(0)
	}
	if d.Stats().WriteStalls == 0 {
		t.Fatal("queue overflow produced no write stalls")
	}
}

func TestIdleGapsDrainWrites(t *testing.T) {
	d := mustNew(t, Config{Latency: 200, CyclesPerTransfer: 4, WriteQueue: 64})
	for i := 0; i < 10; i++ {
		d.Write(0)
	}
	if d.PendingWrites() != 10 {
		t.Fatalf("pending = %d", d.PendingWrites())
	}
	// A long idle gap lets all writes drain.
	d.Read(10_000)
	if d.PendingWrites() != 0 {
		t.Fatalf("pending after idle gap = %d, want 0", d.PendingWrites())
	}
	if d.Stats().QueuedDrains != 10 {
		t.Fatalf("drains = %d, want 10", d.Stats().QueuedDrains)
	}
}

func TestHeavyWriteTrafficDelaysReads(t *testing.T) {
	// Saturating write stream: subsequent reads see queueing delay — the
	// regime where writes become critical.
	d := mustNew(t, Config{Latency: 200, CyclesPerTransfer: 4, WriteQueue: 4})
	for i := 0; i < 1000; i++ {
		d.Write(0)
	}
	done := d.Read(0)
	if done <= 200+4 {
		t.Fatalf("read after write flood completed at %d; expected queueing delay", done)
	}
}

func TestStatsAndReset(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	d.Read(0)
	d.Write(0)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	d.ResetStats()
	if d.Stats().Reads != 0 {
		t.Fatal("ResetStats failed")
	}
}
