package fsatomic

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func listTemps(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return m
}

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.bin")
	want := []byte("hello\x00world")
	if err := WriteFile(p, want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("content = %q, want %q", got, want)
	}
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Fatalf("stray temp files after success: %v", temps)
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.bin")
	if err := WriteFile(p, []byte("old"), 0o644); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := WriteFile(p, []byte("new"), 0o644); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
}

func TestWriteFileEmptyData(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "empty")
	if err := WriteFile(p, nil, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Size() != 0 {
		t.Fatalf("size = %d, want 0", fi.Size())
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "no", "such", "dir", "out")
	if err := WriteFile(p, []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

func TestWriteFileTargetIsDirectory(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "sub")
	if err := os.Mkdir(p, 0o755); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if err := WriteFile(p, []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFile over a directory succeeded")
	}
	// The failed rename must not leave its temp file behind.
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Fatalf("stray temp files after failed rename: %v", temps)
	}
	// And the destination directory is untouched.
	fi, err := os.Stat(p)
	if err != nil || !fi.IsDir() {
		t.Fatalf("destination damaged: fi=%v err=%v", fi, err)
	}
}

func TestWriteFileBareName(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatalf("Getwd: %v", err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatalf("Chdir: %v", err)
	}
	defer os.Chdir(old)
	if err := WriteFile("bare.bin", []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "bare.bin"))
	if err != nil || string(got) != "x" {
		t.Fatalf("bare-name write landed wrong: %q %v", got, err)
	}
}
