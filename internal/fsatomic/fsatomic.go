// Package fsatomic is the one home of the repo's atomic file-write
// idiom: write to a unique temp file in the destination directory,
// then rename into place. A killed or failed writer leaves either the
// old file, the new file, or a stray temp — never a torn destination
// that parses. It backs the runner's result cache, the file-backed
// live store, and the snapshot subsystem.
package fsatomic

import "os"

// WriteFile atomically replaces path with data. The temp file is
// created in path's directory (rename is only atomic within one
// filesystem) with a unique ".tmp-*" name, so concurrent writers never
// collide; on any failure the temp file is removed and the destination
// is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := parentDir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Chmod(perm); werr == nil {
		werr = cerr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// parentDir returns the directory holding path without pulling in
// path/filepath: everything up to the final separator, or "." for a
// bare name (os.CreateTemp maps "" to the system temp dir, which would
// put the temp file on the wrong filesystem).
func parentDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			if i == 0 {
				return string(path[0])
			}
			return path[:i]
		}
	}
	return "."
}
