package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := New(8)
	same := true
	a = New(7)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestChanceFrequency(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.23 || got > 0.27 {
		t.Fatalf("Chance(0.25) frequency = %v", got)
	}
	if r.Chance(0) {
		t.Fatal("Chance(0) returned true")
	}
	if !r.Chance(1) {
		t.Fatal("Chance(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformity(t *testing.T) {
	// Chi-square-ish sanity test over 16 buckets.
	r := New(99)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	want := n / 16
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d of expected %d", i, c, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(5)
	z := NewZipf(r, 1000, 1.0)
	var counts [1000]int
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 99 by roughly its theoretical 100x.
	if counts[0] < counts[99]*20 {
		t.Fatalf("zipf insufficiently skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// Every draw must be in range (implicitly checked by the array), and
	// the head should account for a large share.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.3 {
		t.Fatalf("top-10 share = %v, want > 0.3", float64(head)/n)
	}
}

func TestZipfUniformishWhenSZero(t *testing.T) {
	r := New(6)
	z := NewZipf(r, 10, 0.0)
	var counts [10]int
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("s=0 zipf bucket %d = %d, want ~10000", i, c)
		}
	}
}

func TestInternalMathHelpers(t *testing.T) {
	cases := []float64{0.1, 0.5, 1, 2, 2.718281828, 10, 1000}
	for _, x := range cases {
		if got, want := logf(x), math.Log(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("logf(%v) = %v, want %v", x, got, want)
		}
	}
	for _, x := range []float64{-3, -1, -0.5, 0, 0.5, 1, 3, 10} {
		if got, want := expf(x), math.Exp(x); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("expf(%v) = %v, want %v", x, got, want)
		}
	}
	for _, c := range []struct{ b, e float64 }{{2, 0.5}, {10, 1.2}, {3, 2}} {
		if got, want := pow(c.b, c.e), math.Pow(c.b, c.e); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("pow(%v,%v) = %v, want %v", c.b, c.e, got, want)
		}
	}
}
