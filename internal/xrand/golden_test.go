package xrand

import "testing"

// goldenVectors pins the first 8 SplitMix64 outputs for three seeds:
// 0 and 1 as canonical anchors (the seed-0 sequence matches the
// published SplitMix64 reference output), and the golden-ratio
// increment 0x9e3779b97f4a7c15 because it is the generator's own
// additive constant (its stream is the seed-0 stream shifted by one).
//
// These values must NEVER change. Every recorded table under results/
// and every EXPERIMENTS.md number was produced by these streams; a
// silent generator change would leave the repo claiming reproductions
// it can no longer reproduce. If you intentionally replace the
// generator, rename it, re-record results/, and update these vectors in
// the same change.
var goldenVectors = map[uint64][8]uint64{
	0: {
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4,
		0x06c45d188009454f, 0xf88bb8a8724c81ec,
		0x1b39896a51a8749b, 0x53cb9f0c747ea2ea,
		0x2c829abe1f4532e1, 0xc584133ac916ab3c,
	},
	1: {
		0x910a2dec89025cc1, 0xbeeb8da1658eec67,
		0xf893a2eefb32555e, 0x71c18690ee42c90b,
		0x71bb54d8d101b5b9, 0xc34d0bff90150280,
		0xe099ec6cd7363ca5, 0x85e7bb0f12278575,
	},
	0x9e3779b97f4a7c15: {
		0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
		0x53cb9f0c747ea2ea, 0x2c829abe1f4532e1,
		0xc584133ac916ab3c, 0x3ee5789041c98ac3,
	},
}

func TestGoldenVectors(t *testing.T) {
	for seed, want := range goldenVectors {
		rng := New(seed)
		for i, w := range want {
			if got := rng.Uint64(); got != w {
				t.Errorf("seed %#x output %d = %#016x, want %#016x (RNG changed; recorded results are invalidated)", seed, i, got, w)
			}
		}
	}
}

func TestZeroValueMatchesSeedZero(t *testing.T) {
	// The documented contract: the zero value is a valid generator
	// seeded with 0, so it must emit the seed-0 golden stream.
	var rng RNG
	if got, want := rng.Uint64(), goldenVectors[0][0]; got != want {
		t.Fatalf("zero-value RNG first output = %#016x, want %#016x", got, want)
	}
}
