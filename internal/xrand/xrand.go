// Package xrand provides the simulator's deterministic pseudo-random
// number generator. Every stochastic component (BIP/BRRIP insertion,
// random replacement, workload generators) draws from its own seeded
// instance, so whole-simulation results are bit-reproducible and
// independent of evaluation order.
//
// The generator is xoshiro-style SplitMix64: tiny state, excellent
// statistical quality for simulation purposes, and trivially portable.
package xrand

// RNG is a deterministic 64-bit pseudo-random generator. The zero value
// is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Chance returns true with probability p (clamped to [0,1]).
func (r *RNG) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s,
// using inverse-CDF on a precomputed table. Use NewZipf for repeated
// draws.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s (> 0). Rank 0
// is the most popular element.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow is a minimal positive-base power; avoids importing math for one call
// site in hot setup paths.
func pow(base, exp float64) float64 {
	// exp is typically in (0, 2]; use exp/log via the identity
	// base^exp = e^(exp*ln base), with a small series-free helper.
	return expf(exp * logf(base))
}

// logf computes natural log for positive x via atanh series on the
// mantissa (sufficient accuracy for distribution shaping).
func logf(x float64) float64 {
	if x <= 0 {
		panic("xrand: log of non-positive value")
	}
	// Range-reduce x into [1, 2) by powers of two.
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	// ln(x) = 2*atanh((x-1)/(x+1))
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}

// expf computes e^x by range reduction and Taylor series.
func expf(x float64) float64 {
	neg := false
	if x < 0 {
		neg = true
		x = -x
	}
	// e^x = (e^(x/2^k))^(2^k) with x/2^k < 0.5
	k := 0
	for x > 0.5 {
		x /= 2
		k++
	}
	sum, term := 1.0, 1.0
	for i := 1; i < 20; i++ {
		term *= x / float64(i)
		sum += term
	}
	for i := 0; i < k; i++ {
		sum *= sum
	}
	if neg {
		return 1 / sum
	}
	return sum
}
