package rrp

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
)

func newRRPCache(t *testing.T, sizeBytes, ways int, cfg Config) (*cache.Cache, *RRP) {
	t.Helper()
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: sizeBytes, Ways: ways, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.TableBits = 10
	cfg.TrainSets = 4
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{TableBits: 0, CounterBits: 3, TrainSets: 1, BypassThreshold: 1},
		{TableBits: 14, CounterBits: 0, TrainSets: 1, BypassThreshold: 1},
		{TableBits: 14, CounterBits: 3, TrainSets: 0, BypassThreshold: 1},
		{TableBits: 14, CounterBits: 3, TrainSets: 1, BypassThreshold: 0},
		{TableBits: 14, CounterBits: 3, TrainSets: 1, BypassThreshold: 8},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRegisteredInPolicyRegistry(t *testing.T) {
	p, err := policy.New("rrp")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "rrp" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestLearnsToBypassWriteOnlyPC(t *testing.T) {
	c, p := newRRPCache(t, 8192, 4, smallCfg()) // 32 sets
	writePC := mem.Addr(0xdead0)
	// Stream write-once lines from one PC: never read again.
	line := mem.LineAddr(0)
	for i := 0; i < 20000; i++ {
		c.Access(line, writePC, cache.Writeback, 0)
		line++
	}
	if got := p.Counter(writePC); got != 0 {
		t.Fatalf("write-only PC counter = %d, want 0", got)
	}
	if p.BypassVerdicts() == 0 {
		t.Fatal("no bypasses for a write-only stream")
	}
	// The vast majority of non-training-set fills must have been bypassed.
	st := c.Stats()
	if st.Bypasses < st.Fills {
		t.Fatalf("bypasses %d < fills %d; predictor not engaging", st.Bypasses, st.Fills)
	}
}

func TestKeepsReadReusedLines(t *testing.T) {
	c, p := newRRPCache(t, 8192, 4, smallCfg())
	readPC := mem.Addr(0xbeef0)
	for rep := 0; rep < 500; rep++ {
		for i := 0; i < 96; i++ {
			c.Access(mem.LineAddr(i), readPC, cache.DemandLoad, 0)
		}
	}
	if got := p.Counter(readPC); got == 0 {
		t.Fatal("read-reused PC trained to bypass")
	}
	st := c.Stats()
	if st.Bypasses != 0 {
		t.Fatalf("read-reused stream suffered %d bypasses", st.Bypasses)
	}
	// After warmup the working set fits: hit ratio must be high.
	if st.Hits[cache.DemandLoad] < st.Accesses[cache.DemandLoad]*9/10 {
		t.Fatalf("hits %d of %d", st.Hits[cache.DemandLoad], st.Accesses[cache.DemandLoad])
	}
}

func TestTrainingSetsEnableRecovery(t *testing.T) {
	c, p := newRRPCache(t, 8192, 4, smallCfg())
	pc := mem.Addr(0x1230)
	// Phase 1: write-only behavior drives the counter to 0.
	line := mem.LineAddr(0)
	for i := 0; i < 20000; i++ {
		c.Access(line, pc, cache.Writeback, 0)
		line++
	}
	if p.Counter(pc) != 0 {
		t.Fatal("phase 1 did not train counter to 0")
	}
	// Phase 2: the same PC now writes lines that are read back. Training
	// sets keep allocating, so the counter must recover.
	for rep := 0; rep < 4000; rep++ {
		l := mem.LineAddr(1<<20 + rep%256)
		c.Access(l, pc, cache.Writeback, 0)
		c.Access(l, 0x9990, cache.DemandLoad, 0)
	}
	if p.Counter(pc) == 0 {
		t.Fatal("counter did not recover once lines became read-reused")
	}
}

func TestRRPBeatsLRUOnWriteOnceReadMany(t *testing.T) {
	// Same scenario as the RWP test: RRP should also protect the read
	// working set by bypassing the write-once stream.
	run := func(p cache.Policy) uint64 {
		c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 16384, Ways: 8, LineSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		wr := mem.LineAddr(1 << 20)
		for i := 0; i < 200000; i++ {
			c.Access(mem.LineAddr(i%224), 0x40, cache.DemandLoad, 0)
			if i%2 == 0 {
				c.Access(wr, 0x80, cache.Writeback, 0)
				wr++
			}
		}
		return c.Stats().ReadMisses()
	}
	cfg := smallCfg()
	rrpMisses := run(New(cfg))
	lru, err := policy.New("lru")
	if err != nil {
		t.Fatal(err)
	}
	lruMisses := run(lru)
	if rrpMisses >= lruMisses {
		t.Fatalf("RRP read misses %d >= LRU %d", rrpMisses, lruMisses)
	}
}

func TestWritebackPCPlumbing(t *testing.T) {
	// The PC that dirtied a line must surface on its writeback.
	p, err := policy.New("lru")
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{Name: "l2", SizeBytes: 64 * 2, Ways: 2, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1, 0x100, cache.DemandLoad, 0)  // fill clean, PC 0x100
	c.Access(1, 0x200, cache.DemandStore, 0) // dirty, PC 0x200
	c.Access(2, 0x300, cache.DemandLoad, 0)
	res := c.Access(3, 0x400, cache.DemandLoad, 0) // evicts line 1 (LRU)
	if !res.Writeback || res.WritebackLine != 1 {
		t.Fatalf("expected writeback of line 1, got %+v", res)
	}
	if res.WritebackPC != 0x200 {
		t.Fatalf("WritebackPC = %#x, want 0x200 (the dirtying store)", res.WritebackPC)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		c, p := newRRPCache(t, 8192, 4, smallCfg())
		for i := 0; i < 30000; i++ {
			c.Access(mem.LineAddr(i*13%999), mem.Addr(i%32)*4, cache.Class(i%3), 0)
		}
		return c.Stats().ReadMisses(), p.BypassVerdicts()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("non-deterministic RRP run")
	}
}
