// Package rrp implements the Read Reference Predictor, the paper's
// "new yet complex instruction-address-based technique" that RWP is
// compared against (and performs within 3 % of, at 5.4 % of the state).
//
// RRP predicts, from the PC that fills or last writes a line, whether the
// line will receive any future *read*. Write-filled lines (demand-store
// RFOs and writebacks) predicted read-never are bypassed around the
// cache entirely; the rest are managed with true LRU. Demand-load fills
// always allocate — the triggering access is itself a read request, and
// RRP, like RWP, manages the write side of the reference stream: it is
// the per-line, PC-indexed generalization of RWP's clean/dirty split,
// which is why RWP can approach it so closely at a fraction of the
// state.
//
// Structure (and why it is expensive):
//
//   - A signature history table (SHCT analogue) of saturating counters,
//     indexed by a hashed PC signature, trained on read outcomes.
//   - Every resident line carries its fill signature and a was-read bit so
//     evictions can train the table down — per-line state across the
//     whole cache, the dominant cost.
//   - Writebacks are indexed by the PC of the store that dirtied the line,
//     which must travel with the line from the upper levels
//     (cache.Result.WritebackPC provides that plumbing).
//   - Designated always-allocate sets keep training alive so a PC whose
//     behavior changes can escape the bypass verdict.
package rrp

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
	"rwp/internal/probe"
	"rwp/internal/recency"
)

// Config parameterizes RRP.
type Config struct {
	// TableBits sizes the predictor table (2^TableBits counters).
	TableBits int
	// CounterBits sizes each saturating counter.
	CounterBits int
	// TrainSets is the number of always-allocate sets that keep the
	// predictor training even for bypass-verdict PCs.
	TrainSets int
	// BypassThreshold: counters strictly below it predict "never read"
	// and bypass. 1 means only saturated-down counters bypass.
	BypassThreshold int
}

// DefaultConfig returns the paper-scale configuration: a 16K-entry table
// of 3-bit counters, 64 training sets.
func DefaultConfig() Config {
	return Config{TableBits: 14, CounterBits: 3, TrainSets: 64, BypassThreshold: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TableBits < 1 || c.TableBits > 24 {
		return fmt.Errorf("rrp: TableBits %d out of [1,24]", c.TableBits)
	}
	if c.CounterBits < 1 || c.CounterBits > 8 {
		return fmt.Errorf("rrp: CounterBits %d out of [1,8]", c.CounterBits)
	}
	if c.TrainSets < 1 {
		return fmt.Errorf("rrp: TrainSets %d must be positive", c.TrainSets)
	}
	if c.BypassThreshold < 1 || c.BypassThreshold >= 1<<c.CounterBits {
		return fmt.Errorf("rrp: BypassThreshold %d out of [1, 2^%d)", c.BypassThreshold, c.CounterBits)
	}
	return nil
}

// RRP is the read-reference-predicting bypass policy. It implements
// cache.Policy.
type RRP struct {
	cfg Config

	r   cache.StateReader
	tab *recency.Table

	counters   []uint8
	counterMax uint8

	// Per-line training state across the whole cache.
	sig     []uint16
	wasRead []bool

	trainStride int

	// Telemetry.
	bypassVerdicts uint64
	fills          uint64

	// probe receives bypass-verdict events; nil disables them.
	probe probe.Probe
}

// SetProbe implements probe.Instrumentable.
func (p *RRP) SetProbe(pr probe.Probe) { p.probe = pr }

// New returns an RRP policy.
func New(cfg Config) *RRP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RRP{cfg: cfg}
}

// Name implements cache.Policy.
func (p *RRP) Name() string { return "rrp" }

// Attach implements cache.Policy.
func (p *RRP) Attach(r cache.StateReader) {
	p.r = r
	sets, ways := r.NumSets(), r.Ways()
	p.tab = recency.NewTable(sets, ways)
	p.counters = make([]uint8, 1<<p.cfg.TableBits)
	p.counterMax = uint8(1<<p.cfg.CounterBits - 1)
	for i := range p.counters {
		p.counters[i] = uint8(p.cfg.BypassThreshold) // weakly read-predicted
	}
	n := sets * ways
	p.sig = make([]uint16, n)
	p.wasRead = make([]bool, n)
	ts := p.cfg.TrainSets
	if ts > sets {
		ts = sets
	}
	p.trainStride = sets / ts
	if p.trainStride < 1 {
		p.trainStride = 1
	}
}

// Signature hashes a PC into a table index.
func (p *RRP) Signature(pc mem.Addr) uint16 {
	h := uint64(pc) >> 2
	h ^= h >> uint(p.cfg.TableBits)
	h ^= h >> uint(2*p.cfg.TableBits)
	return uint16(h & uint64(len(p.counters)-1))
}

// Counter returns the current counter value for a PC (for tests/reports).
func (p *RRP) Counter(pc mem.Addr) uint8 { return p.counters[p.Signature(pc)] }

// isTrainSet reports whether set always allocates.
func (p *RRP) isTrainSet(set int) bool { return set%p.trainStride == 0 }

func (p *RRP) idx(set, way int) int { return set*p.r.Ways() + way }

// OnHit implements cache.Policy.
func (p *RRP) OnHit(set, way int, ai cache.AccessInfo) {
	p.tab.Touch(set, way)
	if !ai.Class.IsRead() {
		return
	}
	i := p.idx(set, way)
	if !p.wasRead[i] {
		p.wasRead[i] = true
		if c := &p.counters[p.sig[i]]; *c < p.counterMax {
			*c++
		}
	}
}

// Victim implements cache.Policy: bypass write fills predicted
// read-never, except in training sets. Load fills always allocate.
func (p *RRP) Victim(set int, ai cache.AccessInfo) (int, bool) {
	if ai.Class != cache.DemandLoad && !p.isTrainSet(set) &&
		p.counters[p.Signature(ai.PC)] < uint8(p.cfg.BypassThreshold) {
		p.bypassVerdicts++
		if p.probe != nil {
			p.probe.Policy(probe.PolicyEvent{Policy: "rrp", Kind: "bypass", Value: int64(p.counters[p.Signature(ai.PC)])})
		}
		return 0, true
	}
	if w := p.invalidWay(set); w >= 0 {
		return w, false
	}
	return p.tab.LRU(set), false
}

func (p *RRP) invalidWay(set int) int {
	if p.r.ValidWays(set) >= p.r.Ways() {
		return -1
	}
	for w := 0; w < p.r.Ways(); w++ {
		if !p.r.State(set, w).Valid {
			return w
		}
	}
	return -1
}

// OnEvict implements cache.Policy: a line dying unread trains its
// signature toward "never read".
func (p *RRP) OnEvict(set, way int, _ cache.AccessInfo) {
	i := p.idx(set, way)
	if !p.wasRead[i] {
		if c := &p.counters[p.sig[i]]; *c > 0 {
			*c--
		}
	}
}

// OnFill implements cache.Policy.
func (p *RRP) OnFill(set, way int, ai cache.AccessInfo) {
	p.tab.Touch(set, way)
	i := p.idx(set, way)
	p.sig[i] = p.Signature(ai.PC)
	p.wasRead[i] = false
	p.fills++
}

// BypassVerdicts returns how many fills were bypassed.
func (p *RRP) BypassVerdicts() uint64 { return p.bypassVerdicts }

// Fills returns how many fills were allocated.
func (p *RRP) Fills() uint64 { return p.fills }

func init() {
	policy.Register("rrp", func() cache.Policy { return New(DefaultConfig()) })
}
