package ucp

import (
	"testing"
	"testing/quick"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
)

func newUCPCache(t *testing.T, sizeBytes, ways int, cfg Config) (*cache.Cache, *UCP) {
	t.Helper()
	p := New(cfg)
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: sizeBytes, Ways: ways, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []Config{
		{Cores: 0, SamplerSets: 32, Interval: 1},
		{Cores: 4, SamplerSets: 0, Interval: 1},
		{Cores: 4, SamplerSets: 32, Interval: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRegistered(t *testing.T) {
	p, err := policy.New("ucp")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ucp" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestPartitionProperties(t *testing.T) {
	// Property: allocations sum to ways; every core gets >= 1 when
	// ways >= cores; allocations are non-negative.
	f := func(h1, h2, h3, h4 [16]uint8) bool {
		hits := [][]uint64{make([]uint64, 16), make([]uint64, 16), make([]uint64, 16), make([]uint64, 16)}
		for d := 0; d < 16; d++ {
			hits[0][d] = uint64(h1[d])
			hits[1][d] = uint64(h2[d])
			hits[2][d] = uint64(h3[d])
			hits[3][d] = uint64(h4[d])
		}
		alloc := Partition(hits, 16)
		sum := 0
		for _, a := range alloc {
			if a < 1 {
				return false
			}
			sum += a
		}
		return sum == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionFavorsHighUtility(t *testing.T) {
	// Core 0 has a steep utility curve; core 1 has none. Core 0 should
	// receive nearly everything beyond the 1-way minimum.
	hits := [][]uint64{
		{100, 100, 100, 100, 100, 100, 100, 0},
		{0, 0, 0, 0, 0, 0, 0, 0},
	}
	alloc := Partition(hits, 8)
	if alloc[0] < 7 {
		t.Fatalf("high-utility core got %d of 8 ways", alloc[0])
	}
	if alloc[1] < 1 {
		t.Fatal("minimum allocation violated")
	}
}

func TestPartitionMoreCoresThanWays(t *testing.T) {
	hits := [][]uint64{{1}, {1}, {1}, {1}}
	alloc := Partition(hits, 2)
	sum := 0
	for _, a := range alloc {
		sum += a
	}
	if sum != 2 {
		t.Fatalf("allocations sum to %d, want 2", sum)
	}
}

func TestUCPProtectsCacheSensitiveCore(t *testing.T) {
	// Core 0 reuses a set that fits in ~3/4 of the cache; core 1 streams.
	// Under LRU the stream steals half the space; UCP should contain it
	// and give core 0 fewer misses than LRU does.
	run := func(p cache.Policy) uint64 {
		c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 16384, Ways: 8, LineSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		stream := mem.LineAddr(1 << 20)
		for i := 0; i < 300000; i++ {
			c.Access(mem.LineAddr(i%192), 0x10, cache.DemandLoad, 0) // 192 of 256 lines
			c.Access(stream, 0x20, cache.DemandLoad, 1)
			stream++
		}
		return c.Stats().ReadMisses()
	}
	cfg := DefaultConfig(2)
	cfg.Interval = 5000
	cfg.SamplerSets = 8
	ucpMisses := run(New(cfg))
	lru, err := policy.New("lru")
	if err != nil {
		t.Fatal(err)
	}
	lruMisses := run(lru)
	if ucpMisses >= lruMisses {
		t.Fatalf("UCP read misses %d >= LRU %d", ucpMisses, lruMisses)
	}
}

func TestAllocationsTrackUtility(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Interval = 2000
	cfg.SamplerSets = 8
	c, p := newUCPCache(t, 16384, 8, cfg)
	stream := mem.LineAddr(1 << 20)
	for i := 0; i < 100000; i++ {
		c.Access(mem.LineAddr(i%192), 0x10, cache.DemandLoad, 0)
		c.Access(stream, 0x20, cache.DemandLoad, 1)
		stream++
	}
	alloc := p.Allocations()
	if alloc[0] <= alloc[1] {
		t.Fatalf("reuse core allocation %d <= stream core %d", alloc[0], alloc[1])
	}
	if len(p.History()) == 0 {
		t.Fatal("no repartition history recorded")
	}
}

func TestUmonStack(t *testing.T) {
	st := umonStack{cap: 3}
	if d := st.access(1); d != -1 {
		t.Fatalf("cold access distance %d", d)
	}
	st.access(2)
	st.access(3)
	if d := st.access(1); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	if d := st.access(1); d != 0 {
		t.Fatalf("repeat distance = %d, want 0", d)
	}
	st.access(4) // evicts LRU (2? order: 1,3,2 → evict 2)
	if d := st.access(2); d != -1 {
		t.Fatalf("evicted line hit at %d", d)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		cfg := DefaultConfig(2)
		cfg.Interval = 1000
		cfg.SamplerSets = 4
		c, _ := newUCPCache(t, 8192, 4, cfg)
		for i := 0; i < 30000; i++ {
			c.Access(mem.LineAddr(i*13%999), mem.Addr(i), cache.Class(i%3), i%2)
		}
		return c.Stats().ReadMisses()
	}
	if run() != run() {
		t.Fatal("non-deterministic UCP run")
	}
}
