// Package ucp implements Utility-based Cache Partitioning (Qureshi &
// Patt, MICRO 2006), one of the shared-cache baselines the paper's 4-core
// evaluation compares RWP against.
//
// UCP monitors each core's utility curve — hits it would get at every
// possible allocation — with per-core UMON samplers (full-associativity
// shadow LRU stacks over sampled sets), then periodically partitions the
// ways of the shared cache across cores by greedy marginal utility.
// Enforcement is at victim selection: the victim comes from a core whose
// occupancy in the set exceeds its allocation.
package ucp

import (
	"fmt"

	"rwp/internal/cache"
	"rwp/internal/mem"
	"rwp/internal/policy"
	"rwp/internal/recency"
)

// Config parameterizes UCP.
type Config struct {
	// Cores is the number of partitioning domains sharing the cache.
	Cores int
	// SamplerSets is the number of UMON-shadowed sets.
	SamplerSets int
	// Interval is the number of accesses between repartitionings.
	Interval uint64
	// DecayShift halves (1) the UMON counters at each repartitioning.
	DecayShift uint
}

// DefaultConfig returns a paper-scale 4-core configuration.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, SamplerSets: 32, Interval: 100_000, DecayShift: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("ucp: Cores %d must be positive", c.Cores)
	}
	if c.SamplerSets < 1 {
		return fmt.Errorf("ucp: SamplerSets %d must be positive", c.SamplerSets)
	}
	if c.Interval == 0 {
		return fmt.Errorf("ucp: Interval must be positive")
	}
	return nil
}

// UCP is the utility-based partitioning policy. It implements
// cache.Policy.
type UCP struct {
	cfg Config

	r   cache.StateReader
	tab *recency.Table

	// alloc[i] is core i's way quota; sums to assoc.
	alloc []int

	// UMON state: per core, per sampled set, one shadow stack; hits[i][d]
	// counts core i's hits at stack distance d. shadow[set] is non-nil
	// for shadowed sets.
	stride   int
	shadow   [][]umonStack
	hits     [][]uint64
	accesses uint64
	history  [][]int
}

// New returns a UCP policy for the given configuration.
func New(cfg Config) *UCP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &UCP{cfg: cfg}
}

// Name implements cache.Policy.
func (p *UCP) Name() string { return "ucp" }

// Attach implements cache.Policy.
func (p *UCP) Attach(r cache.StateReader) {
	p.r = r
	sets, ways := r.NumSets(), r.Ways()
	p.tab = recency.NewTable(sets, ways)
	n := p.cfg.SamplerSets
	if n > sets {
		n = sets
	}
	p.stride = sets / n
	if p.stride < 1 {
		p.stride = 1
	}
	p.shadow = make([][]umonStack, sets)
	for s := 0; s < sets; s += p.stride {
		stacks := make([]umonStack, p.cfg.Cores)
		for i := range stacks {
			stacks[i] = umonStack{cap: ways}
		}
		p.shadow[s] = stacks
	}
	p.hits = make([][]uint64, p.cfg.Cores)
	for i := range p.hits {
		p.hits[i] = make([]uint64, ways)
	}
	// Even initial split, remainder to low cores.
	p.alloc = make([]int, p.cfg.Cores)
	for w := 0; w < ways; w++ {
		p.alloc[w%p.cfg.Cores]++
	}
}

// Allocations returns a copy of the current per-core way quotas.
func (p *UCP) Allocations() []int { return append([]int(nil), p.alloc...) }

// History returns the allocation chosen at each interval boundary.
func (p *UCP) History() [][]int { return p.history }

func (p *UCP) observe(set int, ai cache.AccessInfo) {
	if stacks := p.shadow[set]; stacks != nil && ai.Core >= 0 && ai.Core < len(stacks) {
		if d := stacks[ai.Core].access(ai.Line); d >= 0 {
			p.hits[ai.Core][d]++
		}
	}
	p.accesses++
	if p.accesses%p.cfg.Interval == 0 {
		p.repartition()
	}
}

func (p *UCP) repartition() {
	p.alloc = Partition(p.hits, p.r.Ways())
	p.history = append(p.history, append([]int(nil), p.alloc...))
	for i := range p.hits {
		for d := range p.hits[i] {
			p.hits[i][d] >>= p.cfg.DecayShift
		}
	}
}

// Partition allocates ways across cores by greedy marginal utility: each
// way goes to the core whose next stack position holds the most hits.
// Every core receives at least one way when ways >= cores.
//
// Exported for property tests and offline analysis.
func Partition(hits [][]uint64, ways int) []int {
	cores := len(hits)
	alloc := make([]int, cores)
	given := 0
	// Guarantee minimum one way per core (UCP's constraint), as long as
	// capacity allows.
	for i := 0; i < cores && given < ways; i++ {
		alloc[i]++
		given++
	}
	for ; given < ways; given++ {
		best, bestUtil := 0, ^uint64(0)
		first := true
		for i := 0; i < cores; i++ {
			if alloc[i] >= ways {
				continue
			}
			u := hits[i][alloc[i]]
			if first || u > bestUtil {
				best, bestUtil, first = i, u, false
			}
		}
		alloc[best]++
	}
	return alloc
}

// OnHit implements cache.Policy.
func (p *UCP) OnHit(set, way int, ai cache.AccessInfo) {
	p.observe(set, ai)
	p.tab.Touch(set, way)
}

// Victim implements cache.Policy: evict the LRU line of an over-quota
// core; if no core is over quota (e.g. invalid ways exist elsewhere),
// fall back to global LRU.
func (p *UCP) Victim(set int, ai cache.AccessInfo) (int, bool) {
	p.observe(set, ai)
	ways := p.r.Ways()
	if p.r.ValidWays(set) < ways {
		for w := 0; w < ways; w++ {
			if !p.r.State(set, w).Valid {
				return w, false
			}
		}
	}
	occ := make([]int, p.cfg.Cores)
	for w := 0; w < ways; w++ {
		ls := p.r.State(set, w)
		if ls.Core >= 0 && ls.Core < p.cfg.Cores {
			occ[ls.Core]++
		}
	}
	// The requesting core deserves space if under quota: victimize the
	// most-over-quota core's LRU line.
	victimCore := -1
	worst := 0
	for i := 0; i < p.cfg.Cores; i++ {
		if over := occ[i] - p.alloc[i]; over > worst {
			worst, victimCore = over, i
		}
	}
	if victimCore < 0 && ai.Core >= 0 && ai.Core < p.cfg.Cores && occ[ai.Core] >= p.alloc[ai.Core] {
		// Requester at/over quota and nobody else over: recycle its own.
		victimCore = ai.Core
	}
	if victimCore >= 0 {
		if w := p.tab.LeastRecent(set, func(w int) bool {
			ls := p.r.State(set, w)
			return ls.Valid && ls.Core == victimCore
		}); w >= 0 {
			return w, false
		}
	}
	return p.tab.LRU(set), false
}

// OnEvict implements cache.Policy.
func (p *UCP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *UCP) OnFill(set, way int, _ cache.AccessInfo) { p.tab.Touch(set, way) }

// umonStack is a per-core fully-associative shadow LRU stack.
type umonStack struct {
	cap   int
	lines []mem.LineAddr
}

// access looks the line up, returning its stack distance (or -1 on miss)
// and updating the stack.
func (st *umonStack) access(line mem.LineAddr) int {
	for i, l := range st.lines {
		if l == line {
			copy(st.lines[1:i+1], st.lines[:i])
			st.lines[0] = line
			return i
		}
	}
	if len(st.lines) >= st.cap {
		copy(st.lines[1:], st.lines[:st.cap-1])
	} else {
		st.lines = append(st.lines, 0)
		copy(st.lines[1:], st.lines[:len(st.lines)-1])
	}
	st.lines[0] = line
	return -1
}

func init() {
	policy.Register("ucp", func() cache.Policy { return New(DefaultConfig(4)) })
}
