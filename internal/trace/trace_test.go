package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"rwp/internal/mem"
	"rwp/internal/xrand"
)

func sampleTrace(n int, seed uint64) []mem.Access {
	rng := xrand.New(seed)
	recs := make([]mem.Access, n)
	ic := uint64(0)
	for i := range recs {
		ic += uint64(rng.Intn(8))
		k := mem.Load
		if rng.Intn(3) == 0 {
			k = mem.Store
		}
		recs[i] = mem.Access{
			PC:   mem.Addr(0x400000 + rng.Intn(1024)*4),
			Addr: mem.Addr(rng.Intn(1 << 20)),
			IC:   ic,
			Kind: k,
		}
	}
	return recs
}

func TestSliceSource(t *testing.T) {
	recs := sampleTrace(100, 1)
	s := NewSlice(recs)
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("Collect(NewSlice(recs)) != recs")
	}
	if _, err := s.Next(); err != ErrEnd {
		t.Fatalf("exhausted source returned %v, want ErrEnd", err)
	}
	s.Reset()
	a, err := s.Next()
	if err != nil || a != recs[0] {
		t.Fatalf("after Reset got %v, %v", a, err)
	}
}

func TestLimit(t *testing.T) {
	recs := sampleTrace(50, 2)
	got, err := Collect(NewLimit(NewSlice(recs), 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limit yielded %d records, want 10", len(got))
	}
	if !reflect.DeepEqual(got, recs[:10]) {
		t.Fatal("limit changed record content")
	}
	// A limit larger than the trace ends at trace end.
	got, err = Collect(NewLimit(NewSlice(recs), 500))
	if err != nil || len(got) != 50 {
		t.Fatalf("oversized limit: %d records, err %v", len(got), err)
	}
}

func TestConcatRebasesIC(t *testing.T) {
	a := sampleTrace(20, 3)
	b := sampleTrace(20, 4)
	got, err := Collect(NewConcat(NewSlice(a), NewSlice(b)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("concat yielded %d records, want 40", len(got))
	}
	prev := uint64(0)
	for i, r := range got {
		if r.IC < prev {
			t.Fatalf("IC regressed at record %d: %d < %d", i, r.IC, prev)
		}
		prev = r.IC
	}
	// The second half must start strictly after the first half's last IC.
	if got[20].IC <= got[19].IC {
		t.Fatalf("second source not rebased: %d <= %d", got[20].IC, got[19].IC)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleTrace(5000, 5)
	var buf bytes.Buffer
	n, err := WriteAll(&buf, NewSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5000 {
		t.Fatalf("wrote %d records, want 5000", n)
	}
	got, err := Collect(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("decode(encode(trace)) != trace")
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	// Property: arbitrary monotone-IC traces survive a round trip.
	f := func(seed uint64, n uint8) bool {
		recs := sampleTrace(int(n), seed)
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, NewSlice(recs)); err != nil {
			return false
		}
		got, err := Collect(NewReader(&buf))
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSlice(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace decoded to %d records", len(got))
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Collect(NewReader(bytes.NewReader([]byte("not a trace")))); err == nil {
		t.Fatal("garbage input decoded without error")
	}
}

func TestCodecRejectsICRegression(t *testing.T) {
	tw := NewWriter(&bytes.Buffer{})
	if err := tw.Write(mem.Access{IC: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(mem.Access{IC: 5}); err == nil {
		t.Fatal("IC regression accepted")
	}
}

func TestCodecRejectsInvalidKind(t *testing.T) {
	tw := NewWriter(&bytes.Buffer{})
	if err := tw.Write(mem.Access{Kind: mem.Kind(7)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestCodecCompression(t *testing.T) {
	// Delta encoding should beat naive 25-byte records comfortably on a
	// strided trace.
	recs := make([]mem.Access, 10000)
	for i := range recs {
		recs[i] = mem.Access{PC: 0x400100, Addr: mem.Addr(i * 64), IC: uint64(i * 3), Kind: mem.Load}
	}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSlice(recs)); err != nil {
		t.Fatal(err)
	}
	perRec := float64(buf.Len()) / float64(len(recs))
	if perRec > 8 {
		t.Errorf("strided trace costs %.1f bytes/record, want <= 8", perRec)
	}
}

func TestSummarize(t *testing.T) {
	recs := []mem.Access{
		{Addr: 0, Kind: mem.Load, IC: 0},
		{Addr: 32, Kind: mem.Store, IC: 5},  // same line as 0
		{Addr: 128, Kind: mem.Load, IC: 9},  // second line
		{Addr: 130, Kind: mem.Load, IC: 12}, // same second line
		{Addr: 4096, Kind: mem.Store, IC: 20} /* third line */}
	st, err := Summarize(NewSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 5 || st.Loads != 3 || st.Stores != 2 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.Lines != 3 {
		t.Fatalf("lines = %d, want 3", st.Lines)
	}
	if st.Instructions != 21 {
		t.Fatalf("instructions = %d, want 21", st.Instructions)
	}
	if got := st.ReadRatio(); got != 0.6 { //rwplint:allow floateq — exact: one correctly-rounded division of small ints
		t.Fatalf("read ratio = %v, want 0.6", got)
	}
	if st.FootprintBytes() != 3*64 {
		t.Fatalf("footprint = %d", st.FootprintBytes())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st, err := Summarize(NewSlice(nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 0 || st.ReadRatio() != 0 { //rwplint:allow floateq — exact: empty-trace ratio is exactly 0
		t.Fatalf("empty stats wrong: %+v", st)
	}
}
