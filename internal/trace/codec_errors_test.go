package trace

import (
	"bytes"
	"testing"

	"rwp/internal/mem"
)

// truncations of a valid trace must decode cleanly up to the cut and then
// fail (or end) — never panic or fabricate records.
func TestCodecTruncatedInput(t *testing.T) {
	recs := sampleTrace(100, 9)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSlice(recs)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		r := NewReader(bytes.NewReader(full[:cut]))
		n := 0
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
			n++
			if n > len(recs) {
				t.Fatalf("cut %d: decoded more records than written", cut)
			}
		}
	}
}

func TestCodecBadVersion(t *testing.T) {
	raw := append([]byte("RWPT"), 0x7f) // version 127
	if _, err := NewReader(bytes.NewReader(raw)).Next(); err == nil {
		t.Fatal("unsupported version accepted")
	}
}

func TestCodecUndefinedFlagBits(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSlice([]mem.Access{{Addr: 1, Kind: mem.Load}})); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The flags byte of the first record follows "RWPT" + version varint.
	raw[5] |= 0x80
	if _, err := NewReader(bytes.NewReader(raw)).Next(); err == nil {
		t.Fatal("undefined flag bits accepted")
	}
}

func TestWriterCount(t *testing.T) {
	tw := NewWriter(&bytes.Buffer{})
	if tw.Count() != 0 {
		t.Fatal("fresh writer count != 0")
	}
	if err := tw.Write(mem.Access{Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(mem.Access{Addr: 2, IC: 1}); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != 2 {
		t.Fatalf("count = %d", tw.Count())
	}
}

func TestSliceLen(t *testing.T) {
	if NewSlice(sampleTrace(5, 1)).Len() != 5 {
		t.Fatal("Len wrong")
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Accesses: 3, Loads: 2, Stores: 1, Lines: 2, Instructions: 9}
	got := st.String()
	want := "accesses=3 loads=2 stores=1 lines=2 insts=9"
	if got != want {
		t.Fatalf("String() = %q", got)
	}
}

func TestWriteAllPropagatesSourceError(t *testing.T) {
	// A source returning a non-ErrEnd error must abort the write.
	if _, err := WriteAll(&bytes.Buffer{}, badSource{}); err == nil {
		t.Fatal("source error swallowed")
	}
}

type badSource struct{}

func (badSource) Next() (mem.Access, error) { return mem.Access{}, errBad }

var errBad = &traceErr{"synthetic"}

type traceErr struct{ s string }

func (e *traceErr) Error() string { return e.s }
