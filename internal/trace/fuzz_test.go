package trace

import (
	"bytes"
	"testing"

	"rwp/internal/mem"
)

// FuzzReader hardens the binary decoder against arbitrary inputs: it
// must never panic, never allocate absurdly, and either produce records
// or fail cleanly. Run with `go test -fuzz=FuzzReader ./internal/trace`
// for a real fuzzing session; the seed corpus runs in normal test mode.
func FuzzReader(f *testing.F) {
	// Seeds: a valid trace, an empty trace, and a few corruptions.
	var valid bytes.Buffer
	recs := []mem.Access{
		{PC: 0x400000, Addr: 0x1000, IC: 1, Kind: mem.Load},
		{PC: 0x400004, Addr: 0x1040, IC: 5, Kind: mem.Store},
		{PC: 0x400004, Addr: 0x2000, IC: 9, Kind: mem.Load},
	}
	if _, err := WriteAll(&valid, NewSlice(recs)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	if _, err := WriteAll(&empty, NewSlice(nil)); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("RWPT"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		// Bounded drain: inputs of n bytes cannot legitimately encode
		// more than n records.
		for i := 0; i <= len(data); i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
		t.Fatalf("decoded more records than input bytes (%d)", len(data))
	})
}

// FuzzRoundTrip checks that any record sequence the writer accepts
// survives a decode round trip exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), uint64(0x1000), uint64(3), byte(0))
	f.Add(uint64(0), uint64(0), uint64(0), byte(1))
	f.Fuzz(func(t *testing.T, pc, addr, icGap uint64, kind byte) {
		rec := mem.Access{
			PC:   mem.Addr(pc),
			Addr: mem.Addr(addr),
			IC:   icGap % (1 << 40),
			Kind: mem.Kind(kind % 2),
		}
		var buf bytes.Buffer
		tw := NewWriter(&buf)
		if err := tw.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := Collect(NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != rec {
			t.Fatalf("round trip mangled %+v into %+v", rec, got)
		}
	})
}
