// Package trace provides the memory-trace substrate of the simulator:
// streaming access sources, a compact binary on-disk codec, composition
// helpers (limit, concat, interleave) and summary statistics.
//
// Traces are streams of mem.Access records. The paper drives its simulator
// with Pin-captured SPEC CPU2006 traces; this repo's traces come either
// from the synthetic generators in internal/workload or from files written
// with this package's codec. Everything downstream (caches, timing models)
// consumes the Source interface and is agnostic to the origin.
package trace

import (
	"errors"
	"fmt"

	"rwp/internal/mem"
)

// ErrEnd is returned by Source.Next when the trace is exhausted.
var ErrEnd = errors.New("trace: end of trace")

// Source is a stream of memory accesses. Implementations must be
// deterministic: two sources constructed with identical parameters yield
// identical streams.
type Source interface {
	// Next returns the next access, or ErrEnd when the stream is
	// exhausted. Any other error is a malformed-trace condition.
	Next() (mem.Access, error)
}

// Resetter is implemented by sources that can be rewound to their first
// access. Generators and in-memory traces are Resetters; file readers are
// not necessarily.
type Resetter interface {
	Reset()
}

// Slice is an in-memory trace. It implements Source and Resetter.
type Slice struct {
	recs []mem.Access
	pos  int
}

// NewSlice returns a Source over recs. The slice is not copied; the caller
// must not mutate it while the Slice is in use.
func NewSlice(recs []mem.Access) *Slice { return &Slice{recs: recs} }

// Next implements Source.
func (s *Slice) Next() (mem.Access, error) {
	if s.pos >= len(s.recs) {
		return mem.Access{}, ErrEnd
	}
	a := s.recs[s.pos]
	s.pos++
	return a, nil
}

// Reset implements Resetter.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total number of records in the trace.
func (s *Slice) Len() int { return len(s.recs) }

// Collect drains src into a new slice. It is intended for tests and small
// traces; production paths stream instead.
func Collect(src Source) ([]mem.Access, error) {
	var out []mem.Access
	for {
		a, err := src.Next()
		if err == ErrEnd {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}

// Limit wraps src, ending the stream after at most n accesses.
type Limit struct {
	src  Source
	left uint64
}

// NewLimit returns a Source that yields at most n accesses from src.
func NewLimit(src Source, n uint64) *Limit { return &Limit{src: src, left: n} }

// Next implements Source.
func (l *Limit) Next() (mem.Access, error) {
	if l.left == 0 {
		return mem.Access{}, ErrEnd
	}
	a, err := l.src.Next()
	if err != nil {
		return a, err
	}
	l.left--
	return a, nil
}

// Concat chains sources end to end. Instruction counts are rebased so the
// concatenated stream has a monotonically non-decreasing IC.
type Concat struct {
	srcs   []Source
	cur    int
	icBase uint64
	lastIC uint64
}

// NewConcat returns a Source that yields all of each source in turn.
func NewConcat(srcs ...Source) *Concat { return &Concat{srcs: srcs} }

// Next implements Source.
func (c *Concat) Next() (mem.Access, error) {
	for c.cur < len(c.srcs) {
		a, err := c.srcs[c.cur].Next()
		if err == ErrEnd {
			c.cur++
			c.icBase = c.lastIC + 1
			continue
		}
		if err != nil {
			return a, err
		}
		a.IC += c.icBase
		c.lastIC = a.IC
		return a, nil
	}
	return mem.Access{}, ErrEnd
}

// Stats summarizes a trace: counts by kind and the distinct-line footprint.
type Stats struct {
	Accesses uint64
	Loads    uint64
	Stores   uint64
	// Lines is the number of distinct cache lines touched (64 B lines).
	Lines uint64
	// Instructions is the IC of the last access plus one, i.e. the
	// dynamic instruction count the trace spans.
	Instructions uint64
}

// ReadRatio returns loads / accesses, or 0 for an empty trace.
func (s Stats) ReadRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Loads) / float64(s.Accesses)
}

// FootprintBytes returns the touched footprint in bytes (64 B lines).
func (s Stats) FootprintBytes() uint64 { return s.Lines * mem.DefaultLineSize }

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d loads=%d stores=%d lines=%d insts=%d",
		s.Accesses, s.Loads, s.Stores, s.Lines, s.Instructions)
}

// Summarize drains src and returns its Stats.
func Summarize(src Source) (Stats, error) {
	var st Stats
	lines := make(map[mem.LineAddr]struct{})
	for {
		a, err := src.Next()
		if err == ErrEnd {
			st.Lines = uint64(len(lines))
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Accesses++
		if a.Kind.IsRead() {
			st.Loads++
		} else {
			st.Stores++
		}
		lines[a.Addr.DefaultLine()] = struct{}{}
		if a.IC+1 > st.Instructions {
			st.Instructions = a.IC + 1
		}
	}
}
