package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rwp/internal/mem"
)

// Binary trace format
//
//	magic   [4]byte  "RWPT"
//	version uvarint  (currently 1)
//	records:
//	  flags  byte    bit0: kind (0 load, 1 store)
//	                 bit1: PC unchanged from previous record
//	  icGap  uvarint IC delta from previous record (first record: absolute)
//	  pc     uvarint zig-zag delta from previous PC (omitted if bit1 set)
//	  addr   uvarint zig-zag delta from previous Addr
//
// Deltas make typical generated traces 3-6 bytes/record instead of 25.

var magic = [4]byte{'R', 'W', 'P', 'T'}

const codecVersion = 1

const (
	flagStore    = 1 << 0
	flagSamePC   = 1 << 1
	flagsDefined = flagStore | flagSamePC
)

// Writer encodes accesses to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	wrote  bool
	prevPC mem.Addr
	prevA  mem.Addr
	prevIC uint64
	n      uint64
	buf    [3 * binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer that writes the trace header immediately on
// the first Write call.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (tw *Writer) header() error {
	if _, err := tw.w.Write(magic[:]); err != nil {
		return err
	}
	n := binary.PutUvarint(tw.buf[:], codecVersion)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

// Write appends one access to the trace.
func (tw *Writer) Write(a mem.Access) error {
	if !a.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", a.Kind)
	}
	if !tw.wrote {
		if err := tw.header(); err != nil {
			return err
		}
	}
	var flags byte
	if a.Kind.IsWrite() {
		flags |= flagStore
	}
	samePC := tw.wrote && a.PC == tw.prevPC
	if samePC {
		flags |= flagSamePC
	}
	if err := tw.w.WriteByte(flags); err != nil {
		return err
	}
	icGap := a.IC
	if tw.wrote {
		if a.IC < tw.prevIC {
			return fmt.Errorf("trace: IC regressed from %d to %d", tw.prevIC, a.IC)
		}
		icGap = a.IC - tw.prevIC
	}
	n := binary.PutUvarint(tw.buf[:], icGap)
	if !samePC {
		n += binary.PutVarint(tw.buf[n:], int64(a.PC)-int64(tw.prevPC))
	}
	n += binary.PutVarint(tw.buf[n:], int64(a.Addr)-int64(tw.prevA))
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.prevPC, tw.prevA, tw.prevIC, tw.wrote = a.PC, a.Addr, a.IC, true
	tw.n++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes any buffered data to the underlying writer. An empty trace
// still gets a valid header.
func (tw *Writer) Flush() error {
	if !tw.wrote {
		if err := tw.header(); err != nil {
			return err
		}
		tw.wrote = true
	}
	return tw.w.Flush()
}

// Reader decodes a binary trace. It implements Source.
type Reader struct {
	r      *bufio.Reader
	inited bool
	first  bool
	prevPC mem.Addr
	prevA  mem.Addr
	prevIC uint64
}

// NewReader returns a Source reading the binary trace format from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), first: true}
}

func (tr *Reader) init() error {
	var m [4]byte
	if _, err := io.ReadFull(tr.r, m[:]); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("trace: bad magic %q", m[:])
	}
	v, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return fmt.Errorf("trace: reading version: %w", err)
	}
	if v != codecVersion {
		return fmt.Errorf("trace: unsupported version %d", v)
	}
	tr.inited = true
	return nil
}

// Next implements Source.
func (tr *Reader) Next() (mem.Access, error) {
	if !tr.inited {
		if err := tr.init(); err != nil {
			return mem.Access{}, err
		}
	}
	flags, err := tr.r.ReadByte()
	if err == io.EOF {
		return mem.Access{}, ErrEnd
	}
	if err != nil {
		return mem.Access{}, err
	}
	if flags&^byte(flagsDefined) != 0 {
		return mem.Access{}, fmt.Errorf("trace: undefined flag bits 0x%x", flags)
	}
	icGap, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return mem.Access{}, fmt.Errorf("trace: reading IC: %w", err)
	}
	pc := tr.prevPC
	if flags&flagSamePC == 0 {
		d, err := binary.ReadVarint(tr.r)
		if err != nil {
			return mem.Access{}, fmt.Errorf("trace: reading PC: %w", err)
		}
		pc = mem.Addr(int64(tr.prevPC) + d)
	}
	da, err := binary.ReadVarint(tr.r)
	if err != nil {
		return mem.Access{}, fmt.Errorf("trace: reading addr: %w", err)
	}
	addr := mem.Addr(int64(tr.prevA) + da)
	ic := tr.prevIC + icGap
	if tr.first {
		ic = icGap
		tr.first = false
	}
	a := mem.Access{PC: pc, Addr: addr, IC: ic, Kind: mem.Load}
	if flags&flagStore != 0 {
		a.Kind = mem.Store
	}
	tr.prevPC, tr.prevA, tr.prevIC = pc, addr, ic
	return a, nil
}

// WriteAll drains src into w, returning the number of records written.
func WriteAll(w io.Writer, src Source) (uint64, error) {
	tw := NewWriter(w)
	for {
		a, err := src.Next()
		if err == ErrEnd {
			return tw.Count(), tw.Flush()
		}
		if err != nil {
			return tw.Count(), err
		}
		if err := tw.Write(a); err != nil {
			return tw.Count(), err
		}
	}
}
