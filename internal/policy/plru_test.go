package policy

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

func TestPLRUAndFIFORegistered(t *testing.T) {
	for _, n := range []string{"plru", "fifo"} {
		p, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("Name() = %q", p.Name())
		}
	}
}

func TestPLRUNeverEvictsJustTouched(t *testing.T) {
	// Core PLRU property: the victim is never the most recently touched
	// way.
	p := NewPLRU()
	c := singleSet(t, 8, p)
	for line := mem.LineAddr(1); line <= 8; line++ {
		load(c, line)
	}
	for i := 0; i < 1000; i++ {
		hot := mem.LineAddr(i%8) + 1
		if _, _, ok := c.Lookup(hot); ok {
			load(c, hot) // touch
			set, way, _ := c.Lookup(hot)
			if v, bypass := p.Victim(set, cache.AccessInfo{}); bypass || v == way {
				t.Fatalf("PLRU victim %d is the just-touched way %d", v, way)
			}
		}
		load(c, mem.LineAddr(100+i)) // churn
	}
}

func TestPLRUApproximatesLRUHitRate(t *testing.T) {
	run := func(p cache.Policy) uint64 {
		c := newCache(t, 8192, 8, p)
		for i := 0; i < 100000; i++ {
			load(c, mem.LineAddr((i*i+i/3)%100))
		}
		return c.Stats().Hits[cache.DemandLoad]
	}
	plru := run(NewPLRU())
	lru := run(NewLRU())
	// PLRU should land within 10% of true LRU on a fitting mixed pattern.
	if float64(plru) < 0.9*float64(lru) {
		t.Fatalf("PLRU hits %d far below LRU %d", plru, lru)
	}
}

func TestPLRURejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 12-way PLRU")
		}
	}()
	c, err := cache.New(cache.Config{Name: "x", SizeBytes: 64 * 12, Ways: 12, LineSize: 64}, NewPLRU())
	_ = c
	_ = err
}

func TestFIFOEvictsInFillOrder(t *testing.T) {
	c := singleSet(t, 4, NewFIFO())
	for line := mem.LineAddr(1); line <= 4; line++ {
		load(c, line)
	}
	// Hit line 1 heavily; FIFO must still evict it first.
	for i := 0; i < 10; i++ {
		load(c, 1)
	}
	load(c, 5)
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("FIFO kept the oldest line because of hits")
	}
	load(c, 6)
	if _, _, ok := c.Lookup(2); ok {
		t.Fatal("FIFO did not evict in fill order")
	}
}
