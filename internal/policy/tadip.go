package policy

import (
	"rwp/internal/cache"
	"rwp/internal/recency"
	"rwp/internal/xrand"
)

// TADIP is thread-aware DIP (TADIP-F, Jaleel et al., PACT 2008),
// simplified: each core owns a PSEL and its own leader sets, so a
// thrashing thread can be switched to bimodal insertion without
// punishing its cache-friendly neighbors. With one core it degenerates
// to DIP.
type TADIP struct {
	r   cache.StateReader
	tab *recency.Table

	cores   int
	stride  int
	psel    []int
	pselMax int
	eps     float64
	rng     *xrand.RNG
}

// tadipLeaderSets is the total number of leader sets, split across cores
// and the two competing insertion policies.
const tadipLeaderSets = 64

// NewTADIP returns a TADIP policy for the given core count.
func NewTADIP(cores int, seed uint64) *TADIP {
	if cores < 1 {
		cores = 1
	}
	return &TADIP{cores: cores, eps: DefaultBIPEpsilon, rng: xrand.New(seed)}
}

// Name implements cache.Policy.
func (p *TADIP) Name() string { return "tadip" }

// Attach implements cache.Policy.
func (p *TADIP) Attach(r cache.StateReader) {
	p.r = r
	sets := r.NumSets()
	p.tab = recency.NewTable(sets, r.Ways())
	leaders := tadipLeaderSets
	if leaders > sets/2 {
		leaders = sets / 2
	}
	if leaders < 2*p.cores {
		leaders = 2 * p.cores
	}
	p.stride = sets / leaders
	if p.stride < 1 {
		p.stride = 1
	}
	max := (1 << DefaultPSELBits) - 1
	p.psel = make([]int, p.cores)
	for i := range p.psel {
		p.psel[i] = (max + 1) / 2
	}
	p.pselMax = max
}

// role returns (-1,false) for follower sets, else the owning core and
// whether the set leads LRU insertion (true) or BIP insertion (false).
func (p *TADIP) role(set int) (core int, lruLeader bool, isLeader bool) {
	if set%p.stride != 0 {
		return -1, false, false
	}
	idx := set / p.stride
	return idx % p.cores, (idx/p.cores)%2 == 0, true
}

// useLRU reports core c's current follower policy.
func (p *TADIP) useLRU(c int) bool {
	if c < 0 || c >= p.cores {
		c = 0
	}
	return p.psel[c] < (p.pselMax+1)/2
}

// OnHit implements cache.Policy.
func (p *TADIP) OnHit(set, way int, _ cache.AccessInfo) { p.tab.Touch(set, way) }

// Victim implements cache.Policy. Demand misses by a set's owner train
// that owner's PSEL.
func (p *TADIP) Victim(set int, ai cache.AccessInfo) (int, bool) {
	if ai.Class != cache.Writeback {
		if c, lru, ok := p.role(set); ok && c == p.coreOf(ai) {
			if lru {
				if p.psel[c] < p.pselMax {
					p.psel[c]++
				}
			} else if p.psel[c] > 0 {
				p.psel[c]--
			}
		}
	}
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	return p.tab.LRU(set), false
}

func (p *TADIP) coreOf(ai cache.AccessInfo) int {
	if ai.Core < 0 || ai.Core >= p.cores {
		return 0
	}
	return ai.Core
}

// OnEvict implements cache.Policy.
func (p *TADIP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy: the filling core's policy decides the
// insertion position; in its own leader sets the set's pinned policy
// applies.
func (p *TADIP) OnFill(set, way int, ai cache.AccessInfo) {
	c := p.coreOf(ai)
	lru := p.useLRU(c)
	if lc, pinned, ok := p.role(set); ok && lc == c {
		lru = pinned
	}
	if lru || p.rng.Chance(p.eps) {
		p.tab.Touch(set, way)
	} else {
		p.tab.InsertLRU(set, way)
	}
}

// PSEL exposes a core's selector for tests.
func (p *TADIP) PSEL(core int) int { return p.psel[core] }

func init() {
	Register("tadip", func() cache.Policy { return NewTADIP(4, 7) })
}
