// Package policy implements the baseline replacement policies the paper
// evaluates RWP against: true LRU, Random, NRU, the DIP family
// (LIP/BIP/DIP with set dueling), the RRIP family (SRRIP/BRRIP/DRRIP),
// and a SHiP-lite signature policy.
//
// All policies satisfy cache.Policy. Factories (func() cache.Policy) are
// registered by name in Registry so experiment drivers can enumerate
// mechanisms uniformly; internal/core (RWP) and internal/rrp (RRP)
// register themselves into the same registry from their own packages.
package policy

import (
	"fmt"
	"sort"
	"sync"

	"rwp/internal/cache"
)

// Factory constructs a fresh policy instance. Each cache needs its own
// instance; policies are stateful and not safe for sharing.
type Factory func() cache.Policy

var (
	regMu    sync.Mutex
	registry = map[string]Factory{}
)

// Register adds a named policy factory. It panics on duplicates, which
// indicates an init-order bug.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named policy, or an error listing known names.
func New(name string) (cache.Policy, error) {
	regMu.Lock()
	f, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names returns the sorted registered policy names.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("lru", func() cache.Policy { return NewLRU() })
	Register("random", func() cache.Policy { return NewRandom(1) })
	Register("nru", func() cache.Policy { return NewNRU() })
	Register("lip", func() cache.Policy { return NewLIP() })
	Register("bip", func() cache.Policy { return NewBIP(DefaultBIPEpsilon, 2) })
	Register("dip", func() cache.Policy { return NewDIP(3) })
	Register("srrip", func() cache.Policy { return NewSRRIP(DefaultRRPVBits) })
	Register("brrip", func() cache.Policy { return NewBRRIP(DefaultRRPVBits, DefaultBIPEpsilon, 4) })
	Register("drrip", func() cache.Policy { return NewDRRIP(DefaultRRPVBits, 5) })
	Register("ship", func() cache.Policy { return NewSHiP(DefaultRRPVBits, DefaultSHCTBits, 6) })
}
