package policy

import (
	"rwp/internal/cache"
	"rwp/internal/mem"
)

// DefaultSHCTBits sizes the Signature History Counter Table index (14 bits
// → 16K entries in the SHiP paper).
const DefaultSHCTBits = 14

// shctCounterMax is the saturation value of the 3-bit SHCT counters.
const shctCounterMax = 7

// SHiP (Signature-based Hit Predictor, SHiP-PC variant) predicts the
// re-reference behavior of a fill from the PC that caused it. Lines whose
// signature historically never re-hits are inserted at long RRPV; others
// at distant RRPV. An SRRIP backend supplies aging and victim selection.
//
// It serves here as a third state-of-the-art baseline and as the
// structural template for the paper's RRP predictor (internal/rrp), which
// differs by training on reads only and by bypassing instead of
// deprioritizing.
type SHiP struct {
	rripBase
	bits     int
	shctBits int
	seed     uint64

	shct []uint8
	// Per-line training state.
	sig   []uint16 // signature that filled the line
	reref []bool   // line was re-referenced since fill
}

// NewSHiP returns a SHiP-PC policy. seed is unused today but keeps the
// constructor signature uniform with the other stochastic policies.
func NewSHiP(rrpvBits, shctBits int, seed uint64) *SHiP {
	return &SHiP{bits: rrpvBits, shctBits: shctBits, seed: seed}
}

// Name implements cache.Policy.
func (p *SHiP) Name() string { return "ship" }

// Attach implements cache.Policy.
func (p *SHiP) Attach(r cache.StateReader) {
	p.attach(r, p.bits)
	p.shct = make([]uint8, 1<<p.shctBits)
	for i := range p.shct {
		p.shct[i] = 1 // weakly "re-referenced" so cold PCs are not bypass-punished
	}
	n := r.NumSets() * r.Ways()
	p.sig = make([]uint16, n)
	p.reref = make([]bool, n)
}

// Signature folds a PC into an SHCT index.
func (p *SHiP) Signature(pc mem.Addr) uint16 {
	h := uint64(pc) >> 2
	h ^= h >> p.uintShctBits()
	h ^= h >> (2 * p.uintShctBits())
	return uint16(h & uint64(len(p.shct)-1))
}

func (p *SHiP) uintShctBits() uint { return uint(p.shctBits) }

// OnHit implements cache.Policy.
func (p *SHiP) OnHit(set, way int, _ cache.AccessInfo) {
	i := p.idx(set, way)
	p.rrpv[i] = 0
	if !p.reref[i] {
		p.reref[i] = true
		if c := &p.shct[p.sig[i]]; *c < shctCounterMax {
			*c++
		}
	}
}

// Victim implements cache.Policy.
func (p *SHiP) Victim(set int, _ cache.AccessInfo) (int, bool) { return p.victim(set), false }

// OnEvict implements cache.Policy: a line dying without re-reference
// trains its signature down.
func (p *SHiP) OnEvict(set, way int, _ cache.AccessInfo) {
	i := p.idx(set, way)
	if !p.reref[i] {
		if c := &p.shct[p.sig[i]]; *c > 0 {
			*c--
		}
	}
}

// OnFill implements cache.Policy.
func (p *SHiP) OnFill(set, way int, ai cache.AccessInfo) {
	i := p.idx(set, way)
	sig := p.Signature(ai.PC)
	p.sig[i] = sig
	p.reref[i] = false
	if p.shct[sig] == 0 {
		p.rrpv[i] = p.max // predicted dead on arrival
	} else {
		p.rrpv[i] = p.distant
	}
}
