package policy

import (
	"rwp/internal/cache"
	"rwp/internal/xrand"
)

// DefaultRRPVBits is the RRPV width from the RRIP paper (2 bits: values
// 0..3, distant = 2, long = 3).
const DefaultRRPVBits = 2

// rripBase holds the RRPV array and victim scan shared by the RRIP family.
type rripBase struct {
	r       cache.StateReader
	rrpv    []uint8
	max     uint8 // 2^bits - 1 ("long" re-reference interval)
	distant uint8 // max-1
}

func (b *rripBase) attach(r cache.StateReader, bits int) {
	b.r = r
	b.max = uint8(1<<bits - 1)
	b.distant = b.max - 1
	b.rrpv = make([]uint8, r.NumSets()*r.Ways())
	for i := range b.rrpv {
		b.rrpv[i] = b.max
	}
}

func (b *rripBase) idx(set, way int) int { return set*b.r.Ways() + way }

// victim finds the first way with RRPV == max, aging the whole set until
// one exists. Invalid ways win immediately.
func (b *rripBase) victim(set int) int {
	if w := invalidWay(b.r, set); w >= 0 {
		return w
	}
	ways := b.r.Ways()
	for {
		for w := 0; w < ways; w++ {
			if b.rrpv[b.idx(set, w)] == b.max {
				return w
			}
		}
		for w := 0; w < ways; w++ {
			b.rrpv[b.idx(set, w)]++
		}
	}
}

// SRRIP is static RRIP with hit-priority promotion (RRPV=0 on hit) and
// distant insertion (RRPV=max-1 on fill).
type SRRIP struct {
	rripBase
	bits int
}

// NewSRRIP returns an SRRIP policy with the given RRPV width.
func NewSRRIP(bits int) *SRRIP { return &SRRIP{bits: bits} }

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "srrip" }

// Attach implements cache.Policy.
func (p *SRRIP) Attach(r cache.StateReader) { p.attach(r, p.bits) }

// OnHit implements cache.Policy.
func (p *SRRIP) OnHit(set, way int, _ cache.AccessInfo) { p.rrpv[p.idx(set, way)] = 0 }

// Victim implements cache.Policy.
func (p *SRRIP) Victim(set int, _ cache.AccessInfo) (int, bool) { return p.victim(set), false }

// OnEvict implements cache.Policy.
func (p *SRRIP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *SRRIP) OnFill(set, way int, _ cache.AccessInfo) {
	p.rrpv[p.idx(set, way)] = p.distant
}

// BRRIP inserts at long (max) RRPV most of the time and at distant RRPV
// with small probability, the RRIP analogue of BIP.
type BRRIP struct {
	rripBase
	bits    int
	epsilon float64
	rng     *xrand.RNG
}

// NewBRRIP returns a BRRIP policy.
func NewBRRIP(bits int, epsilon float64, seed uint64) *BRRIP {
	return &BRRIP{bits: bits, epsilon: epsilon, rng: xrand.New(seed)}
}

// Name implements cache.Policy.
func (p *BRRIP) Name() string { return "brrip" }

// Attach implements cache.Policy.
func (p *BRRIP) Attach(r cache.StateReader) { p.attach(r, p.bits) }

// OnHit implements cache.Policy.
func (p *BRRIP) OnHit(set, way int, _ cache.AccessInfo) { p.rrpv[p.idx(set, way)] = 0 }

// Victim implements cache.Policy.
func (p *BRRIP) Victim(set int, _ cache.AccessInfo) (int, bool) { return p.victim(set), false }

// OnEvict implements cache.Policy.
func (p *BRRIP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *BRRIP) OnFill(set, way int, _ cache.AccessInfo) {
	if p.rng.Chance(p.epsilon) {
		p.rrpv[p.idx(set, way)] = p.distant
	} else {
		p.rrpv[p.idx(set, way)] = p.max
	}
}

// DRRIP duels SRRIP (A) against BRRIP (B).
type DRRIP struct {
	rripBase
	bits int
	duel *Duel
	eps  float64
	rng  *xrand.RNG
}

// NewDRRIP returns a DRRIP policy with standard parameters.
func NewDRRIP(bits int, seed uint64) *DRRIP {
	return &DRRIP{bits: bits, eps: DefaultBIPEpsilon, rng: xrand.New(seed)}
}

// Name implements cache.Policy.
func (p *DRRIP) Name() string { return "drrip" }

// Attach implements cache.Policy.
func (p *DRRIP) Attach(r cache.StateReader) {
	p.attach(r, p.bits)
	p.duel = NewDuel(r.NumSets(), DefaultLeaderSets, DefaultPSELBits)
}

// OnHit implements cache.Policy.
func (p *DRRIP) OnHit(set, way int, _ cache.AccessInfo) { p.rrpv[p.idx(set, way)] = 0 }

// Victim implements cache.Policy.
func (p *DRRIP) Victim(set int, ai cache.AccessInfo) (int, bool) {
	if ai.Class != cache.Writeback {
		p.duel.Miss(set)
	}
	return p.victim(set), false
}

// OnEvict implements cache.Policy.
func (p *DRRIP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *DRRIP) OnFill(set, way int, _ cache.AccessInfo) {
	if p.duel.PolicyFor(set) { // SRRIP
		p.rrpv[p.idx(set, way)] = p.distant
		return
	}
	if p.rng.Chance(p.eps) { // BRRIP
		p.rrpv[p.idx(set, way)] = p.distant
	} else {
		p.rrpv[p.idx(set, way)] = p.max
	}
}

// Duel exposes the selector for tests and reports.
func (p *DRRIP) Duel() *Duel { return p.duel }
