package policy

import (
	"rwp/internal/cache"
	"rwp/internal/recency"
	"rwp/internal/xrand"
)

// LRU is true least-recently-used replacement with MRU insertion: the
// paper's baseline.
type LRU struct {
	r   cache.StateReader
	tab *recency.Table
}

// NewLRU returns a fresh LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (p *LRU) Name() string { return "lru" }

// Attach implements cache.Policy.
func (p *LRU) Attach(r cache.StateReader) {
	p.r = r
	p.tab = recency.NewTable(r.NumSets(), r.Ways())
}

// OnHit implements cache.Policy.
func (p *LRU) OnHit(set, way int, _ cache.AccessInfo) { p.tab.Touch(set, way) }

// Victim implements cache.Policy: an invalid way first, else the LRU way.
func (p *LRU) Victim(set int, _ cache.AccessInfo) (int, bool) {
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	return p.tab.LRU(set), false
}

// OnEvict implements cache.Policy.
func (p *LRU) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy: insert at MRU.
func (p *LRU) OnFill(set, way int, _ cache.AccessInfo) { p.tab.Touch(set, way) }

// Recency exposes the recency table for samplers and tests.
func (p *LRU) Recency() *recency.Table { return p.tab }

// invalidWay returns the lowest-numbered invalid way of set, or -1. The
// O(1) ValidWays check makes this free once a set is warm.
func invalidWay(r cache.StateReader, set int) int {
	if r.ValidWays(set) >= r.Ways() {
		return -1
	}
	for w := 0; w < r.Ways(); w++ {
		if !r.State(set, w).Valid {
			return w
		}
	}
	return -1
}

// Random evicts a uniformly random way. It is the simplest baseline and a
// useful lower bound in sanity experiments.
type Random struct {
	r   cache.StateReader
	rng *xrand.RNG
}

// NewRandom returns a random-replacement policy with the given seed.
func NewRandom(seed uint64) *Random { return &Random{rng: xrand.New(seed)} }

// Name implements cache.Policy.
func (p *Random) Name() string { return "random" }

// Attach implements cache.Policy.
func (p *Random) Attach(r cache.StateReader) { p.r = r }

// OnHit implements cache.Policy.
func (p *Random) OnHit(int, int, cache.AccessInfo) {}

// Victim implements cache.Policy.
func (p *Random) Victim(set int, _ cache.AccessInfo) (int, bool) {
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	return p.rng.Intn(p.r.Ways()), false
}

// OnEvict implements cache.Policy.
func (p *Random) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *Random) OnFill(int, int, cache.AccessInfo) {}

// NRU is not-recently-used: one reference bit per line; victims are chosen
// among lines with a clear bit, and all bits reset when they saturate.
type NRU struct {
	r    cache.StateReader
	refd []bool // sets*ways
}

// NewNRU returns a fresh NRU policy.
func NewNRU() *NRU { return &NRU{} }

// Name implements cache.Policy.
func (p *NRU) Name() string { return "nru" }

// Attach implements cache.Policy.
func (p *NRU) Attach(r cache.StateReader) {
	p.r = r
	p.refd = make([]bool, r.NumSets()*r.Ways())
}

func (p *NRU) mark(set, way int) {
	ways := p.r.Ways()
	p.refd[set*ways+way] = true
	// If every valid way is referenced, clear all but the current.
	for w := 0; w < ways; w++ {
		if w != way && !p.refd[set*ways+w] {
			return
		}
	}
	for w := 0; w < ways; w++ {
		if w != way {
			p.refd[set*ways+w] = false
		}
	}
}

// OnHit implements cache.Policy.
func (p *NRU) OnHit(set, way int, _ cache.AccessInfo) { p.mark(set, way) }

// Victim implements cache.Policy.
func (p *NRU) Victim(set int, _ cache.AccessInfo) (int, bool) {
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	ways := p.r.Ways()
	for w := 0; w < ways; w++ {
		if !p.refd[set*ways+w] {
			return w, false
		}
	}
	// All referenced (can happen transiently right after Attach): way 0.
	return 0, false
}

// OnEvict implements cache.Policy.
func (p *NRU) OnEvict(set, way int, _ cache.AccessInfo) {
	p.refd[set*p.r.Ways()+way] = false
}

// OnFill implements cache.Policy.
func (p *NRU) OnFill(set, way int, _ cache.AccessInfo) { p.mark(set, way) }
