package policy

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

func newCache(t *testing.T, sizeBytes, ways int, p cache.Policy) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Name: "t", SizeBytes: sizeBytes, Ways: ways, LineSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// singleSet builds a one-set cache of the given associativity.
func singleSet(t *testing.T, ways int, p cache.Policy) *cache.Cache {
	return newCache(t, 64*ways, ways, p)
}

// access touches line with a demand load.
func load(c *cache.Cache, line mem.LineAddr) cache.Result {
	return c.Access(line, mem.Addr(line)*64, cache.DemandLoad, 0)
}

func TestRegistryKnowsAllPolicies(t *testing.T) {
	want := []string{"bip", "brrip", "dip", "drrip", "lip", "lru", "nru", "random", "ship", "srrip"}
	got := Names()
	for _, n := range want {
		found := false
		for _, g := range got {
			if g == n {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q not registered (got %v)", n, got)
		}
	}
	for _, n := range want {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEveryPolicyRunsCleanly(t *testing.T) {
	// Smoke test: every registered policy can drive a cache through a
	// mixed access pattern without panicking and with sane stats.
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		c := newCache(t, 8192, 4, p) // 32 sets, 128-line capacity
		for i := 0; i < 20000; i++ {
			line := mem.LineAddr(i % 96) // fits: short reuse distance
			class := cache.Class(i % 3)
			c.Access(line, mem.Addr(i%64)*4, class, 0)
		}
		st := c.Stats()
		if st.TotalAccesses() != 20000 {
			t.Errorf("%s: accesses = %d", name, st.TotalAccesses())
		}
		if st.TotalHits() == 0 {
			t.Errorf("%s: no hits on a reuse-heavy pattern", name)
		}
		for s := 0; s < c.NumSets(); s++ {
			if c.ValidWays(s) > c.Ways() {
				t.Fatalf("%s: set %d overfull", name, s)
			}
		}
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := singleSet(t, 4, NewLRU())
	for line := mem.LineAddr(1); line <= 4; line++ {
		load(c, line)
	}
	// Touch 1,2,3 so 4 is LRU.
	load(c, 1)
	load(c, 2)
	load(c, 3)
	load(c, 5) // evicts 4
	if _, _, ok := c.Lookup(4); ok {
		t.Fatal("LRU did not evict least-recent line 4")
	}
	for _, l := range []mem.LineAddr{1, 2, 3, 5} {
		if _, _, ok := c.Lookup(l); !ok {
			t.Fatalf("line %d wrongly evicted", l)
		}
	}
}

func TestLRUHitCurveMatchesStackDistance(t *testing.T) {
	// Cyclic access to W lines in a W-way set hits forever after warmup;
	// W+1 lines miss forever (classic LRU pathologies).
	c := singleSet(t, 4, NewLRU())
	for i := 0; i < 400; i++ {
		load(c, mem.LineAddr(i%4)+1)
	}
	st := c.Stats()
	if st.Misses[cache.DemandLoad] != 4 {
		t.Fatalf("fit working set: %d misses, want 4 cold", st.Misses[cache.DemandLoad])
	}
	c2 := singleSet(t, 4, NewLRU())
	for i := 0; i < 400; i++ {
		load(c2, mem.LineAddr(i%5)+1)
	}
	if h := c2.Stats().Hits[cache.DemandLoad]; h != 0 {
		t.Fatalf("thrash working set: %d hits, want 0", h)
	}
}

func TestLIPSurvivesThrash(t *testing.T) {
	// LIP keeps part of a W+1 cyclic working set resident: strictly more
	// hits than LRU's zero.
	c := singleSet(t, 4, NewLIP())
	for i := 0; i < 400; i++ {
		load(c, mem.LineAddr(i%5)+1)
	}
	if h := c.Stats().Hits[cache.DemandLoad]; h == 0 {
		t.Fatal("LIP gained no hits on thrashing pattern")
	}
}

func TestBIPSurvivesThrash(t *testing.T) {
	c := singleSet(t, 4, NewBIP(DefaultBIPEpsilon, 1))
	for i := 0; i < 2000; i++ {
		load(c, mem.LineAddr(i%6)+1)
	}
	if h := c.Stats().Hits[cache.DemandLoad]; h == 0 {
		t.Fatal("BIP gained no hits on thrashing pattern")
	}
}

func TestDIPAdaptsBothWays(t *testing.T) {
	// LRU-friendly pattern: DIP must match plain LRU closely.
	dip := NewDIP(3)
	c := newCache(t, 4096, 4, dip) // 16 sets
	lru := NewLRU()
	cl := newCache(t, 4096, 4, lru)
	for i := 0; i < 50000; i++ {
		line := mem.LineAddr(i % 48) // fits: 48 lines < 64 capacity
		load(c, line)
		load(cl, line)
	}
	dh := c.Stats().Hits[cache.DemandLoad]
	lh := cl.Stats().Hits[cache.DemandLoad]
	if float64(dh) < 0.95*float64(lh) {
		t.Fatalf("DIP on LRU-friendly load: %d hits vs LRU %d", dh, lh)
	}

	// Thrashing pattern: DIP must beat LRU (which gets ~0 hits).
	dip2 := NewDIP(3)
	c2 := newCache(t, 4096, 4, dip2)
	cl2 := newCache(t, 4096, 4, NewLRU())
	for i := 0; i < 50000; i++ {
		line := mem.LineAddr(i % 80) // 80 lines > 64-line capacity, cyclic
		load(c2, line)
		load(cl2, line)
	}
	dh2 := c2.Stats().Hits[cache.DemandLoad]
	lh2 := cl2.Stats().Hits[cache.DemandLoad]
	if dh2 <= lh2 {
		t.Fatalf("DIP on thrashing load: %d hits vs LRU %d", dh2, lh2)
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// Hot lines re-referenced every rep, interleaved with a short burst of
	// fresh scan lines. LRU loses the hot lines to the burst; SRRIP keeps
	// them at RRPV 0 and sacrifices scan lines instead.
	run := func(p cache.Policy) uint64 {
		c := singleSet(t, 4, p)
		next := mem.LineAddr(1000)
		for rep := 0; rep < 500; rep++ {
			load(c, 1)
			load(c, 2)
			load(c, 1)
			load(c, 2)
			for b := 0; b < 3; b++ {
				load(c, next)
				next++
			}
		}
		return c.Stats().Hits[cache.DemandLoad]
	}
	srrip := run(NewSRRIP(DefaultRRPVBits))
	lru := run(NewLRU())
	if srrip <= lru {
		t.Fatalf("SRRIP hits %d <= LRU hits %d on scan+reuse mix", srrip, lru)
	}
}

func TestDRRIPNotWorseThanBothComponents(t *testing.T) {
	mixed := func(p cache.Policy) uint64 {
		c := newCache(t, 4096, 4, p)
		for i := 0; i < 30000; i++ {
			load(c, mem.LineAddr(i%80))
		}
		for i := 0; i < 30000; i++ {
			load(c, mem.LineAddr(i%48))
		}
		return c.Stats().Hits[cache.DemandLoad]
	}
	dr := mixed(NewDRRIP(DefaultRRPVBits, 5))
	sr := mixed(NewSRRIP(DefaultRRPVBits))
	// DRRIP should be within 10% of the better static component here
	// (it pays dueling overhead, so allow slack).
	if float64(dr) < 0.9*float64(sr) {
		t.Fatalf("DRRIP hits %d far below SRRIP %d", dr, sr)
	}
}

func TestSHiPLearnsDeadPC(t *testing.T) {
	// One PC streams never-reused lines; another reuses a hot set. SHiP
	// should protect the hot set better than SRRIP alone, or at least
	// never panic and keep counters in range.
	p := NewSHiP(DefaultRRPVBits, 10, 6)
	c := newCache(t, 4096, 4, p)
	deadPC := mem.Addr(0x1000)
	hotPC := mem.Addr(0x2000)
	for rep := 0; rep < 200; rep++ {
		for pass := 0; pass < 2; pass++ { // re-reference hot lines within a rep
			for i := 0; i < 32; i++ {
				c.Access(mem.LineAddr(i), hotPC, cache.DemandLoad, 0)
			}
		}
		for i := 0; i < 256; i++ {
			c.Access(mem.LineAddr(10000+rep*256+i), deadPC, cache.DemandLoad, 0)
		}
	}
	if p.shct[p.Signature(deadPC)] != 0 {
		t.Fatalf("dead PC counter = %d, want 0", p.shct[p.Signature(deadPC)])
	}
	if p.shct[p.Signature(hotPC)] == 0 {
		t.Fatal("hot PC counter trained to 0")
	}
}

func TestNRUBasic(t *testing.T) {
	c := singleSet(t, 4, NewNRU())
	for line := mem.LineAddr(1); line <= 4; line++ {
		load(c, line)
	}
	for i := 0; i < 100; i++ {
		load(c, 1) // keep 1 hot
		load(c, mem.LineAddr(10+i))
	}
	if _, _, ok := c.Lookup(1); !ok {
		t.Fatal("NRU evicted the constantly-referenced line")
	}
}

func TestRandomCoversAllWays(t *testing.T) {
	c := singleSet(t, 4, NewRandom(7))
	evicted := map[mem.LineAddr]bool{}
	for line := mem.LineAddr(1); line <= 4; line++ {
		load(c, line)
	}
	for i := 0; i < 200; i++ {
		load(c, mem.LineAddr(100+i))
	}
	for line := mem.LineAddr(1); line <= 4; line++ {
		if _, _, ok := c.Lookup(line); !ok {
			evicted[line] = true
		}
	}
	if len(evicted) == 0 {
		t.Fatal("random policy never evicted initial lines")
	}
}

func TestDuelRoles(t *testing.T) {
	d := NewDuel(1024, 32, 10)
	var a, b, f int
	for s := 0; s < 1024; s++ {
		switch d.Role(s) {
		case LeaderA:
			a++
		case LeaderB:
			b++
		default:
			f++
		}
	}
	if a != 32 || b != 32 {
		t.Fatalf("leader counts a=%d b=%d, want 32/32", a, b)
	}
	if f != 1024-64 {
		t.Fatalf("follower count %d", f)
	}
}

func TestDuelSelection(t *testing.T) {
	d := NewDuel(1024, 32, 10)
	if !d.PolicyFor(0) {
		t.Fatal("leader-A set not pinned to A")
	}
	if d.PolicyFor(1) {
		t.Fatal("leader-B set not pinned to B")
	}
	// Hammer misses into A leaders: followers must switch to B.
	for i := 0; i < 2000; i++ {
		d.Miss(0)
	}
	if d.UseA() {
		t.Fatal("PSEL saturated against A but followers still use A")
	}
	if d.PolicyFor(2) {
		t.Fatal("follower did not switch to B")
	}
	// Now hammer B leaders: swing back.
	for i := 0; i < 4000; i++ {
		d.Miss(1)
	}
	if !d.UseA() {
		t.Fatal("followers did not swing back to A")
	}
}

func TestDuelPSELSaturates(t *testing.T) {
	d := NewDuel(64, 2, 4)
	for i := 0; i < 100; i++ {
		d.Miss(0)
	}
	if d.PSEL() != 15 {
		t.Fatalf("PSEL = %d, want 15", d.PSEL())
	}
	for i := 0; i < 100; i++ {
		d.Miss(1)
	}
	if d.PSEL() != 0 {
		t.Fatalf("PSEL = %d, want 0", d.PSEL())
	}
}

func TestWritebacksDoNotTrainDuel(t *testing.T) {
	dip := NewDIP(3)
	c := newCache(t, 4096, 4, dip)
	before := dip.Duel().PSEL()
	// Stream writebacks into a leader-A set (set 0): PSEL must not move.
	for i := 0; i < 100; i++ {
		c.Access(mem.LineAddr(i*16), 0, cache.Writeback, 0) // 16 sets → all map to set 0... i*16 % 16 == 0
	}
	if got := dip.Duel().PSEL(); got != before {
		t.Fatalf("writebacks moved PSEL from %d to %d", before, got)
	}
}
