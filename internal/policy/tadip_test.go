package policy

import (
	"testing"

	"rwp/internal/cache"
	"rwp/internal/mem"
)

func TestTADIPRegistered(t *testing.T) {
	p, err := New("tadip")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "tadip" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestTADIPLeaderLayout(t *testing.T) {
	p := NewTADIP(4, 1)
	c := newCache(t, 1<<20, 16, p) // 1024 sets
	_ = c
	counts := map[[2]interface{}]int{}
	for s := 0; s < 1024; s++ {
		if core, lru, ok := p.role(s); ok {
			counts[[2]interface{}{core, lru}]++
		}
	}
	// Every (core, policy) pair must own leader sets.
	for core := 0; core < 4; core++ {
		for _, lru := range []bool{true, false} {
			if counts[[2]interface{}{core, lru}] == 0 {
				t.Fatalf("no leader sets for core %d lru=%v", core, lru)
			}
		}
	}
}

func TestTADIPPerCoreAdaptation(t *testing.T) {
	// Core 0 runs an LRU-friendly pattern, core 1 thrashes. TADIP must
	// move only core 1 to bimodal insertion.
	p := NewTADIP(2, 2)
	c := newCache(t, 64*1024, 16, p) // 64 sets, 1024-line capacity
	stream := mem.LineAddr(1 << 20)
	for i := 0; i < 400000; i++ {
		c.Access(mem.LineAddr(i%512), mem.Addr(i), cache.DemandLoad, 0) // fits
		c.Access(stream, mem.Addr(i), cache.DemandLoad, 1)              // thrash
		stream = 1<<20 + mem.LineAddr(int(stream-1<<20+1)%2048)
	}
	if !p.useLRU(0) {
		t.Errorf("cache-friendly core 0 pushed off LRU (PSEL=%d)", p.PSEL(0))
	}
	if p.useLRU(1) {
		t.Errorf("thrashing core 1 kept on LRU (PSEL=%d)", p.PSEL(1))
	}
}

func TestTADIPSingleCoreDegeneratesSafely(t *testing.T) {
	p := NewTADIP(1, 3)
	c := newCache(t, 8192, 4, p)
	for i := 0; i < 50000; i++ {
		c.Access(mem.LineAddr(i%96), mem.Addr(i), cache.Class(i%3), 0)
	}
	st := c.Stats()
	if st.TotalHits() == 0 {
		t.Fatal("no hits on fitting pattern")
	}
	// Out-of-range cores are clamped, not a crash.
	c.Access(1, 0, cache.DemandLoad, 99)
}
