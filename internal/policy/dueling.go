package policy

import "rwp/internal/probe"

// Set dueling (Qureshi et al.): a handful of "leader" sets are pinned to
// each of two competing policies; a saturating selector counter tracks
// which leader group misses less, and all "follower" sets adopt the
// winner. DIP, DRRIP and RWP's bypass selector all reuse this helper.

// DuelRole classifies a set for set dueling.
type DuelRole uint8

const (
	// Follower sets use whichever policy currently leads.
	Follower DuelRole = iota
	// LeaderA sets always use policy A.
	LeaderA
	// LeaderB sets always use policy B.
	LeaderB
)

// DefaultLeaderSets is the number of leader sets per policy, matching the
// 32-set convention of the DIP and DRRIP papers.
const DefaultLeaderSets = 32

// DefaultPSELBits sizes the policy selector counter (10 bits in the
// papers).
const DefaultPSELBits = 10

// Duel maps sets to dueling roles and maintains the PSEL counter.
type Duel struct {
	numSets int
	stride  int
	psel    int
	pselMax int

	// probe receives leader-flip events; nil disables them.
	probe probe.Probe
}

// SetProbe implements probe.Instrumentable.
func (d *Duel) SetProbe(p probe.Probe) { d.probe = p }

// NewDuel builds a dueling monitor over numSets sets with leaders leader
// sets per policy and a PSEL counter of pselBits bits. PSEL starts at the
// midpoint. If the cache has too few sets to host 2×leaders, every
// available pair is used.
func NewDuel(numSets, leaders, pselBits int) *Duel {
	if leaders < 1 {
		leaders = 1
	}
	stride := numSets / leaders
	if stride < 2 {
		stride = 2
	}
	max := (1 << pselBits) - 1
	return &Duel{numSets: numSets, stride: stride, psel: (max + 1) / 2, pselMax: max}
}

// Role returns the dueling role of a set. Leader sets for A sit at
// stride-aligned indices; leaders for B immediately follow them, which
// spreads both groups over the index space (constituency selection).
func (d *Duel) Role(set int) DuelRole {
	switch set % d.stride {
	case 0:
		return LeaderA
	case 1:
		return LeaderB
	default:
		return Follower
	}
}

// Miss records a miss in the given set. A miss in an A-leader moves PSEL
// toward B and vice versa; follower misses are ignored.
func (d *Duel) Miss(set int) {
	before := d.UseA()
	switch d.Role(set) {
	case LeaderA:
		if d.psel < d.pselMax {
			d.psel++
		}
	case LeaderB:
		if d.psel > 0 {
			d.psel--
		}
	}
	if d.probe != nil && d.UseA() != before {
		d.probe.Policy(probe.PolicyEvent{Policy: "duel", Kind: "flip", Value: int64(d.psel)})
	}
}

// UseA reports whether followers should currently use policy A: true when
// the A leaders are missing less (PSEL below the midpoint).
func (d *Duel) UseA() bool { return d.psel < (d.pselMax+1)/2 }

// PSEL exposes the selector value for reports and tests.
func (d *Duel) PSEL() int { return d.psel }

// PolicyFor resolves the effective choice for a set: leaders are pinned,
// followers track PSEL.
func (d *Duel) PolicyFor(set int) (useA bool) {
	switch d.Role(set) {
	case LeaderA:
		return true
	case LeaderB:
		return false
	default:
		return d.UseA()
	}
}
