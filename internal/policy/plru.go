package policy

import (
	"fmt"

	"rwp/internal/cache"
)

// PLRU is tree-based pseudo-LRU, the replacement actually shipped in
// most real set-associative caches (true LRU is too expensive beyond a
// few ways). Each set keeps ways-1 tree bits; a touch flips the bits on
// the root-to-leaf path away from the touched way, and the victim is
// found by following the bits. Associativity must be a power of two.
//
// It serves as an ablation baseline: the paper's mechanisms are
// evaluated over true LRU, and PLRU quantifies how much of that is
// idealization.
type PLRU struct {
	r    cache.StateReader
	bits []bool // sets*(ways-1), heap order: node i has children 2i+1, 2i+2
	ways int
}

// NewPLRU returns a fresh PLRU policy.
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements cache.Policy.
func (p *PLRU) Name() string { return "plru" }

// Attach implements cache.Policy.
func (p *PLRU) Attach(r cache.StateReader) {
	w := r.Ways()
	if w&(w-1) != 0 {
		panic(fmt.Sprintf("plru: associativity %d is not a power of two", w))
	}
	p.r = r
	p.ways = w
	p.bits = make([]bool, r.NumSets()*(w-1))
}

// touch updates the tree so the path to `way` is marked most-recent
// (bits point away from it).
func (p *PLRU) touch(set, way int) {
	base := set * (p.ways - 1)
	node := 0
	// Walk from the root; at each level decide by the way's bit.
	for span := p.ways; span > 1; span /= 2 {
		goRight := way%span >= span/2
		// Bit false = next victim on the left; point away from the
		// touched side.
		p.bits[base+node] = !goRight
		if goRight {
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
}

// victimWay follows the tree bits to the pseudo-LRU way.
func (p *PLRU) victimWay(set int) int {
	base := set * (p.ways - 1)
	node := 0
	way := 0
	for span := p.ways; span > 1; span /= 2 {
		if p.bits[base+node] {
			// Bit true: victim on the right half.
			way += span / 2
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
	return way
}

// OnHit implements cache.Policy.
func (p *PLRU) OnHit(set, way int, _ cache.AccessInfo) { p.touch(set, way) }

// Victim implements cache.Policy.
func (p *PLRU) Victim(set int, _ cache.AccessInfo) (int, bool) {
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	return p.victimWay(set), false
}

// OnEvict implements cache.Policy.
func (p *PLRU) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *PLRU) OnFill(set, way int, _ cache.AccessInfo) { p.touch(set, way) }

// FIFO evicts in fill order, ignoring hits entirely — the simplest
// stateful baseline and a useful lower bound between Random and LRU.
type FIFO struct {
	r    cache.StateReader
	next []int32
}

// NewFIFO returns a fresh FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements cache.Policy.
func (p *FIFO) Name() string { return "fifo" }

// Attach implements cache.Policy.
func (p *FIFO) Attach(r cache.StateReader) {
	p.r = r
	p.next = make([]int32, r.NumSets())
}

// OnHit implements cache.Policy.
func (p *FIFO) OnHit(int, int, cache.AccessInfo) {}

// Victim implements cache.Policy.
func (p *FIFO) Victim(set int, _ cache.AccessInfo) (int, bool) {
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	w := int(p.next[set])
	p.next[set] = int32((w + 1) % p.r.Ways())
	return w, false
}

// OnEvict implements cache.Policy.
func (p *FIFO) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy.
func (p *FIFO) OnFill(int, int, cache.AccessInfo) {}

func init() {
	Register("plru", func() cache.Policy { return NewPLRU() })
	Register("fifo", func() cache.Policy { return NewFIFO() })
}
