package policy

import (
	"rwp/internal/cache"
	"rwp/internal/probe"
	"rwp/internal/recency"
	"rwp/internal/xrand"
)

// DefaultBIPEpsilon is BIP's probability of inserting at MRU (1/32 in the
// DIP paper).
const DefaultBIPEpsilon = 1.0 / 32

// LIP (LRU Insertion Policy) manages the stack as LRU but inserts new
// lines at the LRU position, so a line must hit once to be promoted. It
// protects the cache against thrashing scans.
type LIP struct {
	r   cache.StateReader
	tab *recency.Table
}

// NewLIP returns a fresh LIP policy.
func NewLIP() *LIP { return &LIP{} }

// Name implements cache.Policy.
func (p *LIP) Name() string { return "lip" }

// Attach implements cache.Policy.
func (p *LIP) Attach(r cache.StateReader) {
	p.r = r
	p.tab = recency.NewTable(r.NumSets(), r.Ways())
}

// OnHit implements cache.Policy.
func (p *LIP) OnHit(set, way int, _ cache.AccessInfo) { p.tab.Touch(set, way) }

// Victim implements cache.Policy.
func (p *LIP) Victim(set int, _ cache.AccessInfo) (int, bool) {
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	return p.tab.LRU(set), false
}

// OnEvict implements cache.Policy.
func (p *LIP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy: insert at LRU.
func (p *LIP) OnFill(set, way int, _ cache.AccessInfo) { p.tab.InsertLRU(set, way) }

// BIP (Bimodal Insertion Policy) is LIP that inserts at MRU with small
// probability epsilon, letting it retain part of a thrashing working set
// while still adapting to LRU-friendly phases.
type BIP struct {
	LIP
	epsilon float64
	rng     *xrand.RNG
}

// NewBIP returns a BIP policy with the given MRU-insertion probability.
func NewBIP(epsilon float64, seed uint64) *BIP {
	return &BIP{epsilon: epsilon, rng: xrand.New(seed)}
}

// Name implements cache.Policy.
func (p *BIP) Name() string { return "bip" }

// OnFill implements cache.Policy.
func (p *BIP) OnFill(set, way int, _ cache.AccessInfo) {
	if p.rng.Chance(p.epsilon) {
		p.tab.Touch(set, way)
	} else {
		p.tab.InsertLRU(set, way)
	}
}

// DIP (Dynamic Insertion Policy) duels LRU insertion (policy A) against
// BIP insertion (policy B) and applies the winner in follower sets.
type DIP struct {
	r     cache.StateReader
	tab   *recency.Table
	duel  *Duel
	eps   float64
	rng   *xrand.RNG
	probe probe.Probe
}

// SetProbe implements probe.Instrumentable, forwarding to the duel (which
// may be created later, in Attach).
func (p *DIP) SetProbe(pr probe.Probe) {
	p.probe = pr
	if p.duel != nil {
		p.duel.SetProbe(pr)
	}
}

// NewDIP returns a DIP policy with standard parameters.
func NewDIP(seed uint64) *DIP {
	return &DIP{eps: DefaultBIPEpsilon, rng: xrand.New(seed)}
}

// Name implements cache.Policy.
func (p *DIP) Name() string { return "dip" }

// Attach implements cache.Policy.
func (p *DIP) Attach(r cache.StateReader) {
	p.r = r
	p.tab = recency.NewTable(r.NumSets(), r.Ways())
	p.duel = NewDuel(r.NumSets(), DefaultLeaderSets, DefaultPSELBits)
	p.duel.SetProbe(p.probe)
}

// OnHit implements cache.Policy.
func (p *DIP) OnHit(set, way int, _ cache.AccessInfo) { p.tab.Touch(set, way) }

// Victim implements cache.Policy. Demand misses train the duel.
func (p *DIP) Victim(set int, ai cache.AccessInfo) (int, bool) {
	if ai.Class != cache.Writeback {
		p.duel.Miss(set)
	}
	if w := invalidWay(p.r, set); w >= 0 {
		return w, false
	}
	return p.tab.LRU(set), false
}

// OnEvict implements cache.Policy.
func (p *DIP) OnEvict(int, int, cache.AccessInfo) {}

// OnFill implements cache.Policy: LRU insertion (A) or BIP insertion (B)
// per the duel.
func (p *DIP) OnFill(set, way int, _ cache.AccessInfo) {
	if p.duel.PolicyFor(set) {
		p.tab.Touch(set, way) // policy A: classic LRU, MRU insertion
		return
	}
	if p.rng.Chance(p.eps) { // policy B: BIP
		p.tab.Touch(set, way)
	} else {
		p.tab.InsertLRU(set, way)
	}
}

// Duel exposes the selector for tests and reports.
func (p *DIP) Duel() *Duel { return p.duel }
