module rwp

go 1.22
