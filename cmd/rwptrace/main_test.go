package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenInfoDumpRoundTrip drives the CLI end to end: generate a small
// trace, summarize it, and dump its head as text.
func TestGenInfoDumpRoundTrip(t *testing.T) {
	const n = 5000
	path := filepath.Join(t.TempDir(), "mcf.trace")

	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "mcf", "-n", fmt.Sprint(n), "-o", path}, &out, &errb); code != 0 {
		t.Fatalf("gen: exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("gen with -o wrote %d bytes to stdout", out.Len())
	}
	if want := fmt.Sprintf("wrote %d accesses of mcf", n); !strings.Contains(errb.String(), want) {
		t.Errorf("gen stderr missing %q: %s", want, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-info", path}, &out, &errb); code != 0 {
		t.Fatalf("info: exit %d, stderr: %s", code, errb.String())
	}
	info := out.String()
	if want := fmt.Sprintf("accesses:     %d\n", n); !strings.Contains(info, want) {
		t.Errorf("info missing %q:\n%s", want, info)
	}
	for _, field := range []string{"loads:", "stores:", "lines:", "instructions:"} {
		if !strings.Contains(info, field) {
			t.Errorf("info missing %q:\n%s", field, info)
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-dump", path, "-n", "10"}, &out, &errb); code != 0 {
		t.Fatalf("dump: exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("dump -n 10 printed %d lines:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "pc=0x") || !strings.Contains(line, "0x") {
			t.Errorf("dump line %q missing address/pc fields", line)
		}
	}
}

// TestGenDeterministic pins the determinism contract at the CLI level:
// generating the same workload twice yields byte-identical traces.
func TestGenDeterministic(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run([]string{"-gen", "lbm", "-n", "2000"}, &a, &errb); code != 0 {
		t.Fatalf("gen 1: exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-gen", "lbm", "-n", "2000"}, &b, &errb); code != 0 {
		t.Fatalf("gen 2: exit %d, stderr: %s", code, errb.String())
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two -gen runs differ (%d vs %d bytes)", a.Len(), b.Len())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-gen", "no-such-workload"}, &out, &errb); code != 1 {
		t.Errorf("unknown workload: exit %d, want 1", code)
	}
	if code := run([]string{"-info", "/nonexistent/x.trace"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
