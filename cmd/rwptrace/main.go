// Command rwptrace generates and inspects binary memory traces.
//
// Examples:
//
//	rwptrace -gen mcf -n 1000000 -o mcf.trace
//	rwptrace -info mcf.trace
//	rwptrace -dump mcf.trace -n 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"rwp"
	"rwp/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parse flags, dispatch to one mode.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwptrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gen  = fs.String("gen", "", "workload to generate a trace from")
		n    = fs.Uint64("n", 1_000_000, "number of accesses to generate (or dump)")
		out  = fs.String("o", "", "output file (default stdout)")
		info = fs.String("info", "", "trace file to summarize")
		dump = fs.String("dump", "", "trace file to print as text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var err error
	switch {
	case *gen != "":
		err = runGen(stdout, stderr, *gen, *n, *out)
	case *info != "":
		err = runInfo(stdout, *info)
	case *dump != "":
		err = runDump(stdout, *dump, *n)
	default:
		fmt.Fprintln(stderr, "rwptrace: need -gen or -info")
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "rwptrace:", err)
		return 1
	}
	return 0
}

// runGen writes n accesses of the named workload to out (or stdout
// when out is empty).
func runGen(stdout, stderr io.Writer, workload string, n uint64, out string) error {
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	count, err := rwp.WriteTrace(w, workload, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "rwptrace: wrote %d accesses of %s\n", count, workload)
	return nil
}

// runInfo prints the one-pass summary of a trace file.
func runInfo(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := rwp.ReadTraceSummary(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "accesses:     %d\n", sum.Accesses)
	fmt.Fprintf(stdout, "loads:        %d (%.1f%%)\n", sum.Loads, sum.ReadRatio*100)
	fmt.Fprintf(stdout, "stores:       %d\n", sum.Stores)
	fmt.Fprintf(stdout, "lines:        %d (%.1f MiB footprint)\n", sum.Lines, float64(sum.Lines)*64/(1<<20))
	fmt.Fprintf(stdout, "instructions: %d\n", sum.Instructions)
	return nil
}

// runDump prints the first n accesses of a trace file as text.
func runDump(stdout io.Writer, path string, n uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(stdout)
	src := trace.NewLimit(trace.NewReader(f), n)
	for {
		a, err := src.Next()
		if err == trace.ErrEnd {
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d %s %#x pc=%#x\n", a.IC, a.Kind, uint64(a.Addr), uint64(a.PC))
	}
	return w.Flush()
}
