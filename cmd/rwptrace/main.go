// Command rwptrace generates and inspects binary memory traces.
//
// Examples:
//
//	rwptrace -gen mcf -n 1000000 -o mcf.trace
//	rwptrace -info mcf.trace
//	rwptrace -dump mcf.trace -n 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rwp"
	"rwp/internal/trace"
)

func main() {
	var (
		gen  = flag.String("gen", "", "workload to generate a trace from")
		n    = flag.Uint64("n", 1_000_000, "number of accesses to generate (or dump)")
		out  = flag.String("o", "", "output file (default stdout)")
		info = flag.String("info", "", "trace file to summarize")
		dump = flag.String("dump", "", "trace file to print as text")
	)
	flag.Parse()

	switch {
	case *gen != "":
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}()
			w = f
		}
		count, err := rwp.WriteTrace(w, *gen, *n)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rwptrace: wrote %d accesses of %s\n", count, *gen)
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sum, err := rwp.ReadTraceSummary(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("accesses:     %d\n", sum.Accesses)
		fmt.Printf("loads:        %d (%.1f%%)\n", sum.Loads, sum.ReadRatio*100)
		fmt.Printf("stores:       %d\n", sum.Stores)
		fmt.Printf("lines:        %d (%.1f MiB footprint)\n", sum.Lines, float64(sum.Lines)*64/(1<<20))
		fmt.Printf("instructions: %d\n", sum.Instructions)
	case *dump != "":
		f, err := os.Open(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := bufio.NewWriter(os.Stdout)
		src := trace.NewLimit(trace.NewReader(f), *n)
		for {
			a, err := src.Next()
			if err == trace.ErrEnd {
				break
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "%d %s %#x pc=%#x\n", a.IC, a.Kind, uint64(a.Addr), uint64(a.PC))
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "rwptrace: need -gen or -info")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rwptrace:", err)
	os.Exit(1)
}
