package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, want := range []string{"E1", "E11", "A1", "A4"} {
		if !strings.Contains(s, want) {
			t.Errorf("-list output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"bad scale", []string{"-scale", "medium"}, 2},
		{"unknown experiment", []string{"-exp", "E99", "-scale", "quick"}, 2},
	} {
		var out, errbuf bytes.Buffer
		if code := run(tc.args, &out, &errbuf); code != tc.want {
			t.Errorf("%s: run = %d, want %d (stderr: %s)", tc.name, code, tc.want, errbuf.String())
		}
	}
}

// TestRunSingleExperiment exercises the whole wiring — engine, suite,
// table render, CSV output — on the smallest real experiment slice.
func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	csvDir := t.TempDir()
	var out, errbuf bytes.Buffer
	args := []string{"-exp", "E3", "-scale", "quick", "-benches", "mcf,xalancbmk", "-csv", csvDir}
	if code := run(args, &out, &errbuf); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, want := range []string{"mcf", "xalancbmk"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(errbuf.String(), "engine:") {
		t.Errorf("engine summary missing from stderr:\n%s", errbuf.String())
	}
}
